package sieve

import (
	"strings"
	"testing"
)

// TestPublicAPIShareLatexPipeline exercises the full public surface on a
// short ShareLatex run: capture, reduce, identify, and policy synthesis.
func TestPublicAPIShareLatexPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	app, err := NewShareLatex(42)
	if err != nil {
		t.Fatal(err)
	}
	artifact, capture, err := Run(app, RandomLoad(1, 240, 200, 2500), DefaultPipelineOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Reduction must be at least ~5x (the paper reports 10-100x on the
	// real deployment; the simulator's metric families are narrower).
	before, after := artifact.Reduction.TotalBefore(), artifact.Reduction.TotalAfter()
	if before < 800 {
		t.Errorf("captured %d metrics, want ~889", before)
	}
	if after*5 > before {
		t.Errorf("reduction too weak: %d -> %d", before, after)
	}

	// The dependency graph must connect components and name a guiding
	// metric.
	if len(artifact.Graph.Edges) == 0 {
		t.Fatal("no dependencies inferred")
	}
	key, n := artifact.Graph.MostFrequentMetric()
	if key == "" || n == 0 {
		t.Fatal("no guiding metric")
	}

	rules, guided, err := SieveScalingPolicy(artifact, 1400, 1120, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 || guided != key {
		t.Errorf("policy = %d rules guided by %q (want %q)", len(rules), guided, key)
	}

	// Monitoring accounting must be populated for Table 3 style math.
	st := capture.DB.Stats()
	if st.Points == 0 || st.NetworkInBytes == 0 || st.IngestCPU <= 0 {
		t.Errorf("db stats = %+v", st)
	}
}

// TestPublicAPIOpenStackRCA exercises the RCA path end to end on short
// correct/faulty OpenStack runs.
func TestPublicAPIOpenStackRCA(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	opts := DefaultPipelineOptions()

	correctApp, err := NewOpenStack(7, false)
	if err != nil {
		t.Fatal(err)
	}
	correct, _, err := Run(correctApp, RandomLoad(2, 240, 100, 1200), opts)
	if err != nil {
		t.Fatal(err)
	}

	faultyApp, err := NewOpenStack(7, true)
	if err != nil {
		t.Fatal(err)
	}
	faulty, _, err := Run(faultyApp, RandomLoad(2, 240, 100, 1200), opts)
	if err != nil {
		t.Fatal(err)
	}

	report, err := Diagnose(correct, faulty, RCAOptions{SimilarityThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	// The fault lives in Nova/Neutron: both must rank among the suspects,
	// and nova-api must be near the top (it has the largest novelty).
	if len(report.Rankings) == 0 {
		t.Fatal("no suspects")
	}
	rankOf := map[string]int{}
	for _, rc := range report.Rankings {
		rankOf[rc.Component] = rc.Rank
	}
	if r, ok := rankOf["nova-api"]; !ok || r > 2 {
		t.Errorf("nova-api rank = %d (present=%v), want top-2", r, ok)
	}
	if _, ok := rankOf["neutron-server"]; !ok {
		t.Errorf("neutron-server missing from suspects: %v", rankOf)
	}

	// The headline metric pair must surface in the final metric lists.
	foundError := false
	for _, rc := range report.Rankings {
		for _, m := range rc.Metrics {
			if strings.Contains(m, "nova_instances_in_state_ERROR") {
				foundError = true
			}
		}
	}
	if !foundError {
		t.Error("nova_instances_in_state_ERROR not surfaced in suspect metrics")
	}
}
