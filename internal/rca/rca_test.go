package rca

import (
	"testing"

	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/timeseries"
)

// synthArtifact builds a hand-crafted artifact for unit-level tests.
func synthArtifact(metricsByComp map[string][]string, clusters map[string][]core.Cluster, edges []core.DependencyEdge) *core.Artifact {
	ds := &core.Dataset{
		App:    "synth",
		StepMS: 500,
		Series: map[string]map[string]*timeseries.Regular{},
	}
	red := core.Reduction{}
	for comp, names := range metricsByComp {
		ds.Series[comp] = map[string]*timeseries.Regular{}
		for _, n := range names {
			ds.Series[comp][n] = &timeseries.Regular{Name: n, StepMS: 500, Values: []float64{0, 1}}
		}
		cr := &core.ComponentReduction{
			Component:   comp,
			Total:       len(names),
			Assignments: map[string]int{},
		}
		for _, c := range clusters[comp] {
			cr.Clusters = append(cr.Clusters, c)
			for _, m := range c.Metrics {
				cr.Assignments[m] = c.ID
			}
		}
		cr.K = len(cr.Clusters)
		red[comp] = cr
	}
	ds.CallGraph = callgraph.New()
	return &core.Artifact{
		App:       "synth",
		Dataset:   ds,
		Reduction: red,
		Graph:     &core.DependencyGraph{Edges: edges},
	}
}

func correctAndFaulty() (*core.Artifact, *core.Artifact) {
	correct := synthArtifact(
		map[string][]string{
			"api": {"m_ok", "m_shared"},
			"db":  {"d1", "d2"},
		},
		map[string][]core.Cluster{
			"api": {{ID: 0, Metrics: []string{"m_ok", "m_shared"}, Representative: "m_shared"}},
			"db":  {{ID: 0, Metrics: []string{"d1", "d2"}, Representative: "d1"}},
		},
		[]core.DependencyEdge{
			{From: "api", To: "db", FromMetric: "m_shared", ToMetric: "d1", LagMS: 500, PValue: 0.01},
		},
	)
	faulty := synthArtifact(
		map[string][]string{
			"api": {"m_err", "m_shared"},
			"db":  {"d1", "d2"},
		},
		map[string][]core.Cluster{
			"api": {{ID: 0, Metrics: []string{"m_err", "m_shared"}, Representative: "m_shared"}},
			"db":  {{ID: 0, Metrics: []string{"d1", "d2"}, Representative: "d1"}},
		},
		[]core.DependencyEdge{
			{From: "api", To: "db", FromMetric: "m_shared", ToMetric: "d1", LagMS: 1000, PValue: 0.01},
		},
	)
	return correct, faulty
}

func TestComponentDiffAndRanking(t *testing.T) {
	correct, faulty := correctAndFaulty()
	rep, err := Diagnose(correct, faulty, Options{SimilarityThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Components) != 2 {
		t.Fatalf("components = %+v", rep.Components)
	}
	api := rep.Components[0]
	if api.Component != "api" || api.Novelty != 2 || api.Rank != 1 {
		t.Errorf("api diff = %+v", api)
	}
	if len(api.New) != 1 || api.New[0] != "m_err" {
		t.Errorf("api new = %v", api.New)
	}
	if len(api.Discarded) != 1 || api.Discarded[0] != "m_ok" {
		t.Errorf("api discarded = %v", api.Discarded)
	}
	db := rep.Components[1]
	if db.Novelty != 0 || db.Rank != 0 {
		t.Errorf("db diff = %+v", db)
	}
}

func TestClusterNoveltyAndSimilarity(t *testing.T) {
	correct, faulty := correctAndFaulty()
	rep, err := Diagnose(correct, faulty, Options{SimilarityThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var apiCluster *ClusterDiff
	for i := range rep.Clusters {
		if rep.Clusters[i].Component == "api" {
			apiCluster = &rep.Clusters[i]
		}
	}
	if apiCluster == nil {
		t.Fatal("api cluster diff missing")
	}
	// S = |{m_shared}| / |{m_ok, m_shared}| = 0.5.
	if apiCluster.Similarity != 0.5 {
		t.Errorf("similarity = %g, want 0.5", apiCluster.Similarity)
	}
	if apiCluster.Novelty != 2 || apiCluster.Kind != ClusterNewAndDiscarded {
		t.Errorf("cluster diff = %+v", apiCluster)
	}
	counts := rep.ClusterKindCounts()
	if counts[ClusterNewAndDiscarded] != 1 || counts[ClusterUnchanged] != 1 {
		t.Errorf("cluster kind counts = %v", counts)
	}
}

func TestEdgeLagChangeDetected(t *testing.T) {
	correct, faulty := correctAndFaulty()
	rep, err := Diagnose(correct, faulty, Options{SimilarityThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != 1 {
		t.Fatalf("edges = %+v", rep.Edges)
	}
	e := rep.Edges[0]
	if e.Kind != EdgeLagChanged {
		t.Errorf("kind = %v, want lag-changed", e.Kind)
	}
	if e.CorrectLagMS != 500 || e.FaultyLagMS != 1000 {
		t.Errorf("lags = %d -> %d", e.CorrectLagMS, e.FaultyLagMS)
	}
	if !e.InvolvesNovelCluster {
		t.Error("edge must be marked as touching the novel api cluster")
	}
}

func TestEdgeNewAndDiscarded(t *testing.T) {
	correct, faulty := correctAndFaulty()
	// Faulty version: replace the edge with a different direction pair.
	faulty.Graph.Edges = []core.DependencyEdge{
		{From: "db", To: "api", FromMetric: "d1", ToMetric: "m_shared", LagMS: 500, PValue: 0.01},
	}
	rep, err := Diagnose(correct, faulty, Options{SimilarityThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.EdgeKindCounts()
	if counts[EdgeDiscarded] != 1 || counts[EdgeNew] != 1 {
		t.Errorf("edge counts = %v, want one discarded + one new", counts)
	}
}

func TestUnchangedEdgesFilteredWithoutNovelty(t *testing.T) {
	// Identical versions: nothing survives the filter.
	correct, _ := correctAndFaulty()
	same, _ := correctAndFaulty()
	same.Dataset.Series["api"] = correct.Dataset.Series["api"]
	// Make faulty identical to correct.
	rep, err := Diagnose(correct, correct, Options{SimilarityThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != 0 {
		t.Errorf("identical versions produced edge events: %+v", rep.Edges)
	}
	if len(rep.Rankings) != 0 {
		t.Errorf("identical versions produced suspects: %+v", rep.Rankings)
	}
	_ = same
}

func TestFinalRankingsPointAtRootCause(t *testing.T) {
	correct, faulty := correctAndFaulty()
	rep, err := Diagnose(correct, faulty, Options{SimilarityThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rankings) != 1 {
		t.Fatalf("rankings = %+v", rep.Rankings)
	}
	top := rep.Rankings[0]
	if top.Component != "api" || top.Rank != 1 {
		t.Errorf("top suspect = %+v", top)
	}
	if !containsStr(top.Metrics, "m_err") || !containsStr(top.Metrics, "m_ok") {
		t.Errorf("suspect metrics = %v, want the novel pair", top.Metrics)
	}
	comps, clusters, metricCount := rep.SurvivingCounts()
	if comps != 2 || clusters == 0 || metricCount == 0 {
		t.Errorf("surviving counts = %d/%d/%d", comps, clusters, metricCount)
	}
}

func TestSimilarityThresholdFiltersWeakEdges(t *testing.T) {
	correct, faulty := correctAndFaulty()
	// Remove the api novelty so only the similarity gate applies: make
	// faulty api identical to correct.
	faulty.Dataset.Series["api"] = correct.Dataset.Series["api"]
	faulty.Reduction["api"] = correct.Reduction["api"]
	rep, err := Diagnose(correct, faulty, Options{SimilarityThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// The lag-changed edge sits between clusters with similarity 1.0 (db)
	// and 1.0 (api now identical): kept even at 0.9.
	if counts := rep.EdgeKindCounts(); counts[EdgeLagChanged] != 1 {
		t.Errorf("edge counts = %v", counts)
	}
}

func TestDiagnoseValidation(t *testing.T) {
	correct, _ := correctAndFaulty()
	if _, err := Diagnose(nil, correct, Options{}); err == nil {
		t.Error("expected error for nil artifact")
	}
	bad := &core.Artifact{}
	if _, err := Diagnose(correct, bad, Options{}); err == nil {
		t.Error("expected error for artifact without dataset")
	}
}

func TestKindStrings(t *testing.T) {
	if ClusterNew.String() != "new" || EdgeLagChanged.String() != "lag-changed" {
		t.Error("kind names wrong")
	}
	if ClusterKind(99).String() == "" || EdgeKind(99).String() == "" {
		t.Error("unknown kinds must format")
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
