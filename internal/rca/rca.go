// Package rca implements the paper's second case study (§4.2, §6.3): a
// root-cause-analysis engine that diffs the Sieve artifacts of a correct
// (C) and a faulty (F) application version through five steps — metric
// presence analysis, component novelty ranking, cluster novelty and
// similarity scoring, dependency-edge filtering, and a final ranked list
// of {component, metric list} pairs that localizes the anomaly.
package rca

import (
	"errors"
	"fmt"
	"sort"

	"github.com/sieve-microservices/sieve/internal/core"
)

// Options tunes the engine.
type Options struct {
	// SimilarityThreshold is the minimum inter-version cluster similarity
	// for an edge event to count as "between similar clusters" (the paper
	// evaluates 0, 0.5, 0.6, 0.7 and settles on 0.5).
	SimilarityThreshold float64
	// NoveltyThreshold is the minimum cluster novelty score (new +
	// discarded members) for a cluster to count as novel; default 1.
	NoveltyThreshold int
}

func (o Options) withDefaults() Options {
	if o.NoveltyThreshold <= 0 {
		o.NoveltyThreshold = 1
	}
	return o
}

// ComponentDiff is the step-1/2 view of one component.
type ComponentDiff struct {
	// Component names the microservice.
	Component string
	// New and Discarded list metrics present only in F / only in C.
	New, Discarded []string
	// Novelty = len(New) + len(Discarded).
	Novelty int
	// Total is the union metric population across versions.
	Total int
	// Rank is the novelty rank (1 = most novel); 0 when Novelty is 0.
	Rank int
}

// ClusterKind classifies a cluster diff (Fig. 7a).
type ClusterKind int

// Cluster diff kinds.
const (
	// ClusterUnchanged: same membership, no novel metrics.
	ClusterUnchanged ClusterKind = iota + 1
	// ClusterNew: contains new metrics only.
	ClusterNew
	// ClusterDiscarded: contains discarded metrics only.
	ClusterDiscarded
	// ClusterNewAndDiscarded: contains both.
	ClusterNewAndDiscarded
	// ClusterChanged: membership shuffled without novel metrics.
	ClusterChanged
)

// String names the kind.
func (k ClusterKind) String() string {
	switch k {
	case ClusterUnchanged:
		return "unchanged"
	case ClusterNew:
		return "new"
	case ClusterDiscarded:
		return "discarded"
	case ClusterNewAndDiscarded:
		return "new+discarded"
	case ClusterChanged:
		return "changed"
	default:
		return fmt.Sprintf("ClusterKind(%d)", int(k))
	}
}

// ClusterDiff is the step-3 view of one correct-version cluster matched
// against the faulty version.
type ClusterDiff struct {
	// Component owns the cluster.
	Component string
	// CorrectID is the cluster ID in the C artifact; FaultyID the best
	// match in F (-1 when no faulty cluster overlaps).
	CorrectID, FaultyID int
	// Similarity is the paper's modified Jaccard S = |Mc ∩ Mf| / |Mc|.
	Similarity float64
	// NewMetrics and DiscardedMetrics are the novel members.
	NewMetrics, DiscardedMetrics []string
	// Novelty = len(NewMetrics) + len(DiscardedMetrics).
	Novelty int
	// Kind classifies the diff.
	Kind ClusterKind
}

// EdgeKind classifies a dependency-edge diff (Fig. 7b).
type EdgeKind int

// Edge diff kinds.
const (
	// EdgeUnchanged: present in both versions with the same lag.
	EdgeUnchanged EdgeKind = iota + 1
	// EdgeNew: present only in the faulty version.
	EdgeNew
	// EdgeDiscarded: present only in the correct version.
	EdgeDiscarded
	// EdgeLagChanged: present in both versions with different lags.
	EdgeLagChanged
)

// String names the kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeUnchanged:
		return "unchanged"
	case EdgeNew:
		return "new"
	case EdgeDiscarded:
		return "discarded"
	case EdgeLagChanged:
		return "lag-changed"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// EdgeDiff is one step-4 edge event surviving the filter.
type EdgeDiff struct {
	// Kind classifies the event.
	Kind EdgeKind
	// From and To are the components; FromMetric/ToMetric the
	// representative metrics of the defining version (F for new edges, C
	// otherwise).
	From, To             string
	FromMetric, ToMetric string
	// CorrectLagMS and FaultyLagMS are the per-version lags (0 when the
	// edge is absent in that version).
	CorrectLagMS, FaultyLagMS int64
	// InvolvesNovelCluster marks event type 1 (an endpoint cluster has a
	// high novelty score).
	InvolvesNovelCluster bool
	// EndpointSimilarity is the smaller of the two endpoint cluster
	// similarities.
	EndpointSimilarity float64
	// FromClusterID and ToClusterID are the endpoint clusters in
	// correct-version ID space (-1 when the endpoint only exists in F).
	FromClusterID, ToClusterID int
}

// RankedComponent is one row of the step-5 final list.
type RankedComponent struct {
	// Component names the suspect.
	Component string
	// Rank is its final position (1 = strongest suspect).
	Rank int
	// Metrics is the reduced metric list pointing at the root cause.
	Metrics []string
}

// Report is the full engine output.
type Report struct {
	// Components is the step-1/2 diff, sorted by novelty (desc).
	Components []ComponentDiff
	// Clusters is the step-3 diff for every correct-version cluster.
	Clusters []ClusterDiff
	// Edges is the step-4 filtered edge set.
	Edges []EdgeDiff
	// Rankings is the step-5 final list.
	Rankings []RankedComponent
	// Options echoes the thresholds used.
	Options Options
}

// ClusterKindCounts tallies the step-3 cluster classifications (Fig. 7a).
func (r *Report) ClusterKindCounts() map[ClusterKind]int {
	out := map[ClusterKind]int{}
	for _, cd := range r.Clusters {
		out[cd.Kind]++
	}
	return out
}

// EdgeKindCounts tallies the step-4 edge events (Fig. 7b).
func (r *Report) EdgeKindCounts() map[EdgeKind]int {
	out := map[EdgeKind]int{}
	for _, e := range r.Edges {
		out[e.Kind]++
	}
	return out
}

// SurvivingCounts returns how many components, clusters and metrics
// remain for the developer to inspect after edge filtering (Fig. 7c).
func (r *Report) SurvivingCounts() (components, clusters, metricCount int) {
	comps := map[string]bool{}
	clusterSet := map[clusterKey]bool{}
	for _, e := range r.Edges {
		comps[e.From] = true
		comps[e.To] = true
		if e.FromClusterID >= 0 {
			clusterSet[clusterKey{e.From, e.FromClusterID}] = true
		}
		if e.ToClusterID >= 0 {
			clusterSet[clusterKey{e.To, e.ToClusterID}] = true
		}
	}
	for _, rc := range r.Rankings {
		metricCount += len(rc.Metrics)
	}
	return len(comps), len(clusterSet), metricCount
}

// Diagnose runs the five-step RCA over two pipeline artifacts.
func Diagnose(correct, faulty *core.Artifact, opts Options) (*Report, error) {
	if correct == nil || faulty == nil {
		return nil, errors.New("rca: nil artifact")
	}
	if correct.Dataset == nil || faulty.Dataset == nil || correct.Graph == nil || faulty.Graph == nil {
		return nil, errors.New("rca: artifacts must carry datasets and dependency graphs")
	}
	opts = opts.withDefaults()
	r := &Report{Options: opts}

	// Steps 1-2: metric presence diff and component novelty ranking.
	r.Components = componentDiffs(correct, faulty)

	// Step 3: cluster novelty and similarity.
	r.Clusters = clusterDiffs(correct, faulty, r.Components)

	// Step 4: edge filtering.
	r.Edges = edgeDiffs(correct, faulty, r.Clusters, opts)

	// Step 5: final rankings.
	r.Rankings = finalRankings(r)
	return r, nil
}

func componentDiffs(correct, faulty *core.Artifact) []ComponentDiff {
	names := map[string]bool{}
	for _, c := range correct.Dataset.Components() {
		names[c] = true
	}
	for _, c := range faulty.Dataset.Components() {
		names[c] = true
	}

	var out []ComponentDiff
	for name := range names {
		cSet := toSet(correct.Dataset.MetricNames(name))
		fSet := toSet(faulty.Dataset.MetricNames(name))
		d := ComponentDiff{Component: name}
		for m := range fSet {
			if !cSet[m] {
				d.New = append(d.New, m)
			}
		}
		for m := range cSet {
			if !fSet[m] {
				d.Discarded = append(d.Discarded, m)
			}
		}
		sort.Strings(d.New)
		sort.Strings(d.Discarded)
		d.Novelty = len(d.New) + len(d.Discarded)
		d.Total = len(union(cSet, fSet))
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Novelty != out[j].Novelty {
			return out[i].Novelty > out[j].Novelty
		}
		return out[i].Component < out[j].Component
	})
	rank := 0
	for i := range out {
		if out[i].Novelty > 0 {
			rank++
			out[i].Rank = rank
		}
	}
	return out
}

func clusterDiffs(correct, faulty *core.Artifact, comps []ComponentDiff) []ClusterDiff {
	novelByComp := map[string]*ComponentDiff{}
	for i := range comps {
		novelByComp[comps[i].Component] = &comps[i]
	}

	var out []ClusterDiff
	for _, comp := range correct.Dataset.Components() {
		cRed := correct.Reduction[comp]
		fRed := faulty.Reduction[comp]
		if cRed == nil {
			continue
		}
		diff := novelByComp[comp]
		newSet := map[string]bool{}
		discardedSet := map[string]bool{}
		if diff != nil {
			newSet = toSet(diff.New)
			discardedSet = toSet(diff.Discarded)
		}

		for _, cc := range cRed.Clusters {
			cd := ClusterDiff{
				Component: comp,
				CorrectID: cc.ID,
				FaultyID:  -1,
			}
			cSet := toSet(cc.Metrics)

			// Best-matching faulty cluster by the modified Jaccard score.
			if fRed != nil {
				for _, fc := range fRed.Clusters {
					s := overlap(cSet, toSet(fc.Metrics)) / float64(len(cSet))
					if s > cd.Similarity || cd.FaultyID < 0 && s > 0 {
						cd.Similarity = s
						cd.FaultyID = fc.ID
					}
				}
			}

			// Novel members: discarded metrics that lived in this cluster,
			// plus new metrics that joined the matched faulty cluster.
			for m := range cSet {
				if discardedSet[m] {
					cd.DiscardedMetrics = append(cd.DiscardedMetrics, m)
				}
			}
			if cd.FaultyID >= 0 && fRed != nil {
				for _, fc := range fRed.Clusters {
					if fc.ID != cd.FaultyID {
						continue
					}
					for _, m := range fc.Metrics {
						if newSet[m] {
							cd.NewMetrics = append(cd.NewMetrics, m)
						}
					}
				}
			}
			sort.Strings(cd.NewMetrics)
			sort.Strings(cd.DiscardedMetrics)
			cd.Novelty = len(cd.NewMetrics) + len(cd.DiscardedMetrics)
			cd.Kind = classifyCluster(cd)
			out = append(out, cd)
		}
	}
	return out
}

func classifyCluster(cd ClusterDiff) ClusterKind {
	hasNew := len(cd.NewMetrics) > 0
	hasDiscarded := len(cd.DiscardedMetrics) > 0
	switch {
	case hasNew && hasDiscarded:
		return ClusterNewAndDiscarded
	case hasNew:
		return ClusterNew
	case hasDiscarded:
		return ClusterDiscarded
	case cd.Similarity < 1:
		return ClusterChanged
	default:
		return ClusterUnchanged
	}
}

// clusterKey identifies a cluster by component and the version-local ID.
type clusterKey struct {
	comp string
	id   int
}

func edgeDiffs(correct, faulty *core.Artifact, clusters []ClusterDiff, opts Options) []EdgeDiff {
	// Index cluster diffs: similarity + novelty per correct cluster, and
	// map faulty clusters back to their matched correct cluster.
	simByCorrect := map[clusterKey]float64{}
	noveltyByCorrect := map[clusterKey]int{}
	correctByFaulty := map[clusterKey]clusterKey{}
	for _, cd := range clusters {
		ck := clusterKey{cd.Component, cd.CorrectID}
		simByCorrect[ck] = cd.Similarity
		noveltyByCorrect[ck] = cd.Novelty
		if cd.FaultyID >= 0 {
			correctByFaulty[clusterKey{cd.Component, cd.FaultyID}] = ck
		}
	}

	// Map each dependency edge to its endpoint clusters (via the
	// representative metric's assignment), keyed for cross-version match.
	type edgeInfo struct {
		e        core.DependencyEdge
		fromKey  clusterKey // in correct-version cluster space
		toKey    clusterKey
		resolved bool
	}
	resolve := func(art *core.Artifact, e core.DependencyEdge, faultySide bool) (clusterKey, clusterKey, bool) {
		fromRed := art.Reduction[e.From]
		toRed := art.Reduction[e.To]
		if fromRed == nil || toRed == nil {
			return clusterKey{}, clusterKey{}, false
		}
		fromID, okF := fromRed.Assignments[e.FromMetric]
		toID, okT := toRed.Assignments[e.ToMetric]
		if !okF || !okT {
			return clusterKey{}, clusterKey{}, false
		}
		fk := clusterKey{e.From, fromID}
		tk := clusterKey{e.To, toID}
		if faultySide {
			// Translate faulty cluster IDs into correct-version space.
			var ok bool
			if fk, ok = correctByFaulty[fk]; !ok {
				return clusterKey{}, clusterKey{}, false
			}
			if tk, ok = correctByFaulty[tk]; !ok {
				return clusterKey{}, clusterKey{}, false
			}
		}
		return fk, tk, true
	}

	cEdges := map[[2]clusterKey]edgeInfo{}
	for _, e := range correct.Graph.Edges {
		fk, tk, ok := resolve(correct, e, false)
		if !ok {
			continue
		}
		cEdges[[2]clusterKey{fk, tk}] = edgeInfo{e: e, fromKey: fk, toKey: tk, resolved: true}
	}
	fEdges := map[[2]clusterKey]edgeInfo{}
	for _, e := range faulty.Graph.Edges {
		fk, tk, ok := resolve(faulty, e, true)
		if !ok {
			// An edge whose endpoint cluster has no correct-version
			// counterpart is inherently novel; key it uniquely.
			fk = clusterKey{e.From, -100 - len(fEdges)}
			tk = clusterKey{e.To, -200 - len(fEdges)}
		}
		fEdges[[2]clusterKey{fk, tk}] = edgeInfo{e: e, fromKey: fk, toKey: tk, resolved: ok}
	}

	minSim := func(a, b clusterKey) float64 {
		sa, okA := simByCorrect[a]
		sb, okB := simByCorrect[b]
		if !okA || !okB {
			return 0
		}
		if sa < sb {
			return sa
		}
		return sb
	}
	isNovel := func(a, b clusterKey) bool {
		return noveltyByCorrect[a] >= opts.NoveltyThreshold || noveltyByCorrect[b] >= opts.NoveltyThreshold
	}

	var out []EdgeDiff
	// Matched and discarded edges (iterate correct side).
	for key, ci := range cEdges {
		fi, matched := fEdges[key]
		sim := minSim(key[0], key[1])
		novel := isNovel(key[0], key[1])
		var ed EdgeDiff
		switch {
		case !matched:
			ed = EdgeDiff{Kind: EdgeDiscarded, From: ci.e.From, To: ci.e.To,
				FromMetric: ci.e.FromMetric, ToMetric: ci.e.ToMetric,
				CorrectLagMS: ci.e.LagMS}
		case ci.e.LagMS != fi.e.LagMS:
			ed = EdgeDiff{Kind: EdgeLagChanged, From: ci.e.From, To: ci.e.To,
				FromMetric: ci.e.FromMetric, ToMetric: ci.e.ToMetric,
				CorrectLagMS: ci.e.LagMS, FaultyLagMS: fi.e.LagMS}
		default:
			ed = EdgeDiff{Kind: EdgeUnchanged, From: ci.e.From, To: ci.e.To,
				FromMetric: ci.e.FromMetric, ToMetric: ci.e.ToMetric,
				CorrectLagMS: ci.e.LagMS, FaultyLagMS: fi.e.LagMS}
		}
		ed.InvolvesNovelCluster = novel
		ed.EndpointSimilarity = sim
		ed.FromClusterID = key[0].id
		ed.ToClusterID = key[1].id
		if keepEdge(ed, opts) {
			out = append(out, ed)
		}
	}
	// New edges (faulty side without a correct match).
	for key, fi := range fEdges {
		if _, matched := cEdges[key]; matched {
			continue
		}
		ed := EdgeDiff{Kind: EdgeNew, From: fi.e.From, To: fi.e.To,
			FromMetric: fi.e.FromMetric, ToMetric: fi.e.ToMetric,
			FaultyLagMS: fi.e.LagMS, FromClusterID: -1, ToClusterID: -1}
		if fi.resolved {
			ed.EndpointSimilarity = minSim(key[0], key[1])
			ed.InvolvesNovelCluster = isNovel(key[0], key[1])
			ed.FromClusterID = key[0].id
			ed.ToClusterID = key[1].id
		} else {
			// Unmatched endpoint clusters are novel by construction.
			ed.InvolvesNovelCluster = true
		}
		if keepEdge(ed, opts) {
			out = append(out, ed)
		}
	}

	sort.Slice(out, func(i, j int) bool {
		ei, ej := out[i], out[j]
		if ei.From != ej.From {
			return ei.From < ej.From
		}
		if ei.To != ej.To {
			return ei.To < ej.To
		}
		if ei.Kind != ej.Kind {
			return ei.Kind < ej.Kind
		}
		return ei.FromMetric < ej.FromMetric
	})
	return out
}

// keepEdge implements the paper's three step-4 events: (1) the edge
// touches a novel cluster; (2) a new/discarded edge between similar
// clusters; (3) a lag change between similar clusters.
func keepEdge(ed EdgeDiff, opts Options) bool {
	if ed.InvolvesNovelCluster {
		return true
	}
	if ed.EndpointSimilarity < opts.SimilarityThreshold {
		return false
	}
	switch ed.Kind {
	case EdgeNew, EdgeDiscarded, EdgeLagChanged:
		return true
	default:
		return false
	}
}

func finalRankings(r *Report) []RankedComponent {
	// Components surviving step 4 (appearing on a kept edge).
	involved := map[string]bool{}
	for _, e := range r.Edges {
		involved[e.From] = true
		involved[e.To] = true
	}
	// Metric lists: novel cluster members plus kept-edge representatives.
	metricsByComp := map[string]map[string]bool{}
	add := func(comp, metric string) {
		if metricsByComp[comp] == nil {
			metricsByComp[comp] = map[string]bool{}
		}
		metricsByComp[comp][metric] = true
	}
	for _, cd := range r.Clusters {
		if cd.Novelty == 0 {
			continue
		}
		for _, m := range cd.NewMetrics {
			add(cd.Component, m)
		}
		for _, m := range cd.DiscardedMetrics {
			add(cd.Component, m)
		}
	}
	for _, e := range r.Edges {
		add(e.From, e.FromMetric)
		add(e.To, e.ToMetric)
	}

	var out []RankedComponent
	rank := 0
	for _, cd := range r.Components {
		if cd.Novelty == 0 || !involved[cd.Component] {
			continue
		}
		rank++
		rc := RankedComponent{Component: cd.Component, Rank: rank}
		for m := range metricsByComp[cd.Component] {
			rc.Metrics = append(rc.Metrics, m)
		}
		sort.Strings(rc.Metrics)
		out = append(out, rc)
	}
	return out
}

func toSet(xs []string) map[string]bool {
	out := make(map[string]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func overlap(a, b map[string]bool) float64 {
	n := 0
	for k := range a {
		if b[k] {
			n++
		}
	}
	return float64(n)
}
