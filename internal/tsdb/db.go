package tsdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrUnknownSeries is wrapped by Query errors for series the store has
// never seen; callers that merge several point sources use it to tell
// "not here" apart from real failures.
var ErrUnknownSeries = errors.New("tsdb: unknown series")

// ErrStorage is wrapped by ingest errors that originate on the storage
// side (a WAL append or fsync failure) rather than in the client's
// payload: the request was well-formed and may succeed once the disk
// recovers, so HTTP front ends map it to a 5xx, not a 4xx.
var ErrStorage = errors.New("tsdb: storage failure")

// blockSize is the number of points buffered per series before the tail
// is compressed into a Gorilla block.
const blockSize = 512

// Stats summarizes a DB's resource consumption; these are the quantities
// Table 3 of the paper compares before/after metric reduction.
type Stats struct {
	// Points is the total number of stored observations.
	Points int
	// Series is the number of distinct component/metric series.
	Series int
	// StorageBytes is the on-"disk" footprint: compressed blocks plus the
	// uncompressed tails.
	StorageBytes int
	// NetworkInBytes counts wire bytes received by Write.
	NetworkInBytes int
	// NetworkOutBytes counts bytes sent back to clients (acks and query
	// responses).
	NetworkOutBytes int
	// IngestCPU is the cumulative wall time spent parsing and storing
	// writes (a proxy for the monitoring stack's CPU overhead).
	IngestCPU time.Duration
	// CheckpointFailures counts checkpoint attempts that failed on a
	// durable store since it was opened (always 0 for in-memory stores).
	// The background flusher retries every FlushInterval, so a growing
	// count means blocks are not being written and WAL segments are
	// accumulating without bound (e.g. the disk is full).
	CheckpointFailures int
	// LastCheckpointError is the most recent checkpoint failure message,
	// cleared once a later checkpoint succeeds.
	LastCheckpointError string
}

// memChunk is one sealed, Gorilla-compressed run of a series, carrying
// the same summary the on-disk chunk index keeps: reads skip chunks whose
// [MinT, MaxT] is disjoint from the query range without decompressing
// them, and aggregated queries consume whole in-bucket chunks from the
// summary alone (see chunkAgg in queryengine.go).
type memChunk struct {
	data []byte
	agg  chunkAgg
}

// series holds one component/metric stream: sealed compressed chunks plus
// an uncompressed tail.
type series struct {
	chunks    []memChunk
	blockPts  int
	tail      []Point
	compBytes int
}

// scanRange streams the series' points with T in [from, to) to sink in
// storage order: sealed chunks in seal order, then the tail. Chunks whose
// time range is disjoint from [from, to) are skipped without decoding;
// chunks that lie entirely inside the range are first offered to the sink
// as a summary (an aggregating sink may consume them without decoding —
// see pointSink). Callers own synchronization (a shard lock, or exclusive
// access to a stolen snapshot).
// tel, when non-nil, receives the scan's chunk-fate counts (skipped /
// summarized / decoded), accumulated in locals and flushed once at the
// end so the per-chunk loop never touches an atomic.
func (sr *series) scanRange(from, to int64, sink pointSink, tel *StoreTelemetry) error {
	var it chunkIter
	var skipped, summarized, decoded int
	for _, c := range sr.chunks {
		if c.agg.MaxT < from || c.agg.MinT >= to {
			skipped++
			continue
		}
		if c.agg.MinT >= from && c.agg.MaxT < to && sink.chunk(c.agg) {
			summarized++
			continue
		}
		decoded++
		if err := scanChunkWith(&it, c.data, from, to, sink); err != nil {
			return err
		}
	}
	tel.noteChunks(skipped, summarized, decoded)
	for _, p := range sr.tail {
		if p.T >= from && p.T < to {
			sink.add(p)
		}
	}
	return nil
}

// pointsInRange collects the series' points with T in [from, to) in
// storage order (a rawSink over scanRange).
func (sr *series) pointsInRange(from, to int64, tel *StoreTelemetry) ([]Point, error) {
	var out rawSink
	if err := sr.scanRange(from, to, &out, tel); err != nil {
		return nil, err
	}
	return out.pts, nil
}

// DB is an in-memory time-series store with InfluxDB-like write/query
// semantics and explicit resource accounting. It is safe for concurrent
// use.
type DB struct {
	mu     sync.Mutex
	data   map[string]*series // key: component/metric
	stats  Stats
	maxT   int64
	sealed bool

	// wal, when non-nil, is the shard's write-ahead log: set only by
	// OpenSharded, appended to (under mu, before the memory insert) on
	// the appendSamples path that Sharded routes ingest through.
	wal *walWriter

	// tel, when non-nil, receives chunk-fate counts from scans; set via
	// setTelemetry (under mu) before the store serves traffic.
	tel *StoreTelemetry
}

// New creates an empty DB.
func New() *DB {
	return &DB{data: map[string]*series{}}
}

// ackBytes is the fixed response size per write batch (status line),
// counted as network-out traffic like a real HTTP 204 from InfluxDB.
const ackBytes = 32

// Write ingests a line-protocol payload, returning the number of samples
// stored. Wire size, ack size, and parse/store CPU time are accounted.
func (db *DB) Write(payload []byte) (int, error) {
	start := time.Now()
	samples, err := ParseLineProtocol(payload)
	if err != nil {
		return 0, err
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range samples {
		db.insertLocked(s)
	}
	db.stats.Points += len(samples)
	db.stats.NetworkInBytes += len(payload)
	db.stats.NetworkOutBytes += ackBytes
	db.stats.IngestCPU += time.Since(start)
	return len(samples), nil
}

// WriteSamples ingests samples that are already decoded (used by
// in-process collectors that still want the wire cost accounted: pass the
// encoded size explicitly).
func (db *DB) WriteSamples(samples []Sample, wireBytes int) error {
	start := time.Now()
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range samples {
		db.insertLocked(s)
	}
	db.stats.Points += len(samples)
	db.stats.NetworkInBytes += wireBytes
	db.stats.NetworkOutBytes += ackBytes
	db.stats.IngestCPU += time.Since(start)
	return nil
}

// appendSamples ingests decoded samples with point and CPU accounting
// but no network accounting: the entry point used by Sharded, whose
// front door owns the wire-level counters. On a durable store the batch
// goes to the WAL first; a WAL write failure rejects the whole batch so
// memory never holds points the log's file does not cover. The WAL
// write and the memory insert happen under one lock hold — that
// atomicity is what lets a checkpoint cut (which rotates the WAL and
// drains memory under the same lock) never split a batch between a
// pruned segment and post-cut memory. Under FsyncAlways the durability
// wait happens after the lock is released, through the WAL's
// group-commit queue: concurrent appenders queue behind one in-flight
// fsync and the next leader commits them all with a single sync, so the
// request still returns only once its own batch is durable but the
// fsync count scales with coalesced groups, not with requests.
func (db *DB) appendSamples(samples []Sample) error {
	start := time.Now()
	db.mu.Lock()
	var seq uint64
	if db.wal != nil {
		var err error
		if seq, err = db.wal.append(samples); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	for _, s := range samples {
		db.insertLocked(s)
	}
	db.stats.Points += len(samples)
	db.stats.IngestCPU += time.Since(start)
	db.mu.Unlock()
	if db.wal != nil && db.wal.policy == FsyncAlways {
		// A commitWait error means durability is unconfirmed, not that
		// the batch was dropped: the frames are in the log and the points
		// are in memory, but the fsync covering them failed. Callers see
		// a storage error; a crash before a later successful fsync loses
		// the batch, a client retry may duplicate it.
		return db.wal.commitWait(seq)
	}
	return nil
}

// replaySamples re-inserts WAL-recovered samples: memory and counters
// update as on ingest, but nothing is re-logged — the records are already
// in the segments being replayed.
func (db *DB) replaySamples(samples []Sample) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range samples {
		db.insertLocked(s)
	}
	db.stats.Points += len(samples)
}

func (db *DB) insertLocked(s Sample) {
	key := s.Key()
	sr := db.data[key]
	if sr == nil {
		sr = &series{}
		db.data[key] = sr
		db.stats.Series++
	}
	sr.tail = append(sr.tail, Point{T: s.T, V: s.V})
	if s.T > db.maxT {
		db.maxT = s.T
	}
	if len(sr.tail) >= blockSize {
		db.sealLocked(sr)
	}
}

// MaxTime returns the largest timestamp ingested so far (0 when empty),
// the high-water mark sliding-window readers anchor to.
func (db *DB) MaxTime() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.maxT
}

// sealLocked compresses the tail into a chunk, recording its time range
// and value summary so reads can skip it (or aggregate it) without
// decompressing. Errors (unordered timestamps) leave the tail
// uncompressed; storage accounting then counts it raw, which only
// overstates our footprint.
func (db *DB) sealLocked(sr *series) {
	// Points may arrive slightly out of order across scrape batches; sort
	// the tail before sealing, as real TSDBs do per block.
	sort.SliceStable(sr.tail, func(i, j int) bool { return sr.tail[i].T < sr.tail[j].T })
	block, err := CompressBlock(sr.tail)
	if err != nil {
		return
	}
	sr.chunks = append(sr.chunks, memChunk{data: block, agg: summarizeChunk(sr.tail)})
	sr.blockPts += len(sr.tail)
	sr.compBytes += len(block)
	sr.tail = sr.tail[:0]
}

// cutSnapshot is the shard half of a durable checkpoint: under one lock
// hold it rotates the WAL and steals every series structure into `into`,
// leaving the shard empty. The work under the lock is O(series) slice
// moves — no decompression — so queries stall only for the handover, not
// for the decode. The stolen structures are immutable from here on (the
// shard allocates fresh ones for new arrivals), so the caller may read
// them without locking. The returned sequence number is the cut: all
// stolen points live in WAL segments below it, all later appends in
// segments at or above it. On error the shard is left untouched.
func (db *DB) cutSnapshot(into map[string]*series) (cutSeq uint64, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	cutSeq, err = db.wal.rotate()
	if err != nil {
		return 0, err
	}
	for key, sr := range db.data {
		if sr.blockPts+len(sr.tail) > 0 {
			into[key] = sr
		}
	}
	db.data = map[string]*series{}
	return cutSeq, nil
}

// reinsertSeries splices a stolen snapshot back after a failed block
// write, in front of whatever arrived during the flush: the merged
// series reads back as snapshot blocks, snapshot tail, then the current
// data — the original arrival order, so equal-timestamp points keep
// their pre-flush query order. Series counters were never reset by the
// cut (Stats.Series is recomputed at the Sharded level for durable
// stores), so only the raw data returns.
func (db *DB) reinsertSeries(key string, old *series) {
	db.mu.Lock()
	defer db.mu.Unlock()
	cur := db.data[key]
	if cur == nil {
		db.data[key] = old
		if len(old.tail) >= blockSize {
			db.sealLocked(old)
		}
		return
	}
	merged := &series{
		chunks:    old.chunks,
		blockPts:  old.blockPts,
		compBytes: old.compBytes,
		tail:      old.tail,
	}
	if len(merged.tail) > 0 {
		// Seal the snapshot's tail so the newer chunks can follow it.
		db.sealLocked(merged)
	}
	merged.chunks = append(merged.chunks, cur.chunks...)
	merged.blockPts += cur.blockPts
	merged.compBytes += cur.compBytes
	merged.tail = cur.tail
	db.data[key] = merged
}

// Flush seals every series' tail so Stats reflects compressed storage.
func (db *DB) Flush() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, sr := range db.data {
		if len(sr.tail) > 0 {
			db.sealLocked(sr)
		}
	}
}

// Query returns the points of component/metric with T in [from, to),
// merged across blocks and tail in time order. The response size is
// charged to network-out.
func (db *DB) Query(component, metric string, from, to int64) ([]Point, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := component + "/" + metric
	sr := db.data[key]
	if sr == nil {
		return nil, fmt.Errorf("%w %q", ErrUnknownSeries, key)
	}
	out, err := sr.pointsInRange(from, to, db.tel)
	if err != nil {
		return nil, fmt.Errorf("tsdb: corrupt block in %q: %w", key, err)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	// 16 bytes per point on the wire (timestamp + float64).
	db.stats.NetworkOutBytes += 16 * len(out)
	return out, nil
}

// scanSeries streams one series' in-memory points with T in [from, to)
// to sink in storage order (sealed chunks, then tail), skipping chunks
// disjoint from the range. A key the shard has never seen is simply an
// empty scan — the query engine enumerates keys up front, and the
// persisted side may own all of this one's points.
func (db *DB) scanSeries(key string, from, to int64, sink pointSink) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	sr := db.data[key]
	if sr == nil {
		return nil
	}
	if err := sr.scanRange(from, to, sink, db.tel); err != nil {
		return fmt.Errorf("tsdb: corrupt block in %q: %w", key, err)
	}
	return nil
}

// SeriesKeys returns all component/metric keys in sorted order.
func (db *DB) SeriesKeys() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	keys := make([]string, 0, len(db.data))
	for k := range db.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Stats returns a snapshot of the accounting counters; StorageBytes is
// recomputed from current blocks and tails.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := db.stats
	storage := 0
	for _, sr := range db.data {
		storage += sr.compBytes + 16*len(sr.tail)
	}
	s.StorageBytes = storage
	return s
}
