package tsdb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecompressArbitraryBytesNeverPanics feeds random garbage to the
// block decoder: it must return an error or a (possibly nonsensical)
// point list, never panic — corrupted storage must not take the store
// down.
func TestDecompressArbitraryBytesNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		_, _ = DecompressBlock(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDecompressBitFlips corrupts single bits of valid blocks: decoding
// must never panic and never loop forever.
func TestDecompressBitFlips(t *testing.T) {
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point{T: int64(i) * 500, V: float64(i % 5)}
	}
	block, err := CompressBlock(pts)
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(block)*8; bit += 7 {
		corrupted := append([]byte(nil), block...)
		corrupted[bit/8] ^= 1 << (bit % 8)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on bit flip %d: %v", bit, r)
				}
			}()
			_, _ = DecompressBlock(corrupted)
		}()
	}
}

// TestParseLineProtocolArbitraryBytesNeverPanics does the same for the
// wire decoder.
func TestParseLineProtocolArbitraryBytesNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, rng.Intn(300))
		rng.Read(buf)
		_, _ = ParseLineProtocol(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
