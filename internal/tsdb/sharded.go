package tsdb

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// Sharded is a hash-partitioned store: series keys are FNV-hashed onto N
// independent DB shards, each with its own lock, so concurrent writers
// contend only when they touch the same shard instead of serializing on
// one global mutex. Every series lives entirely inside one shard, so
// query results and stored points are identical to a single DB at any
// shard count — sharding changes scheduling, never data.
type Sharded struct {
	shards []*DB

	// Wire-level accounting lives at the front door (the shards see only
	// decoded samples); atomics keep the hot write path lock-free here.
	netIn     atomic.Int64
	netOut    atomic.Int64
	ingestCPU atomic.Int64 // nanoseconds spent parsing+partitioning
}

// NewSharded creates a store with n shards; n <= 0 uses GOMAXPROCS.
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{shards: make([]*DB, n)}
	for i := range s.shards {
		s.shards[i] = New()
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// shardIndex hashes a series key onto a shard (FNV-1a).
func (s *Sharded) shardIndex(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(len(s.shards)))
}

// partition groups samples by destination shard with a counting sort
// into one backing array (two allocations regardless of batch size),
// preserving arrival order within each shard — and therefore within each
// series, since a series maps to exactly one shard. parts[i] is a
// sub-slice of the backing array; empty shards get a nil slice.
func (s *Sharded) partition(samples []Sample) [][]Sample {
	n := len(s.shards)
	idx := make([]uint32, len(samples))
	counts := make([]int, n+1)
	for k, smp := range samples {
		i := s.shardIndex(smp.Key())
		idx[k] = uint32(i)
		counts[i+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	backing := make([]Sample, len(samples))
	next := make([]int, n)
	copy(next, counts[:n])
	for k, smp := range samples {
		i := idx[k]
		backing[next[i]] = smp
		next[i]++
	}
	parts := make([][]Sample, n)
	for i := 0; i < n; i++ {
		if counts[i+1] > counts[i] {
			parts[i] = backing[counts[i]:counts[i+1]]
		}
	}
	return parts
}

func (s *Sharded) ingest(samples []Sample, wireBytes int, start time.Time) {
	if len(s.shards) == 1 {
		// Single shard: nothing to partition.
		s.ingestCPU.Add(int64(time.Since(start)))
		s.shards[0].appendSamples(samples)
	} else {
		parts := s.partition(samples)
		s.ingestCPU.Add(int64(time.Since(start)))
		for i, part := range parts {
			if len(part) > 0 {
				s.shards[i].appendSamples(part)
			}
		}
	}
	s.netIn.Add(int64(wireBytes))
	s.netOut.Add(ackBytes)
}

// Write ingests a line-protocol payload, returning the number of samples
// stored. Parsing and partitioning happen outside any shard lock.
func (s *Sharded) Write(payload []byte) (int, error) {
	start := time.Now()
	samples, err := ParseLineProtocol(payload)
	if err != nil {
		return 0, err
	}
	s.ingest(samples, len(payload), start)
	return len(samples), nil
}

// WriteSamples ingests already-decoded samples, accounting wireBytes as
// network-in traffic.
func (s *Sharded) WriteSamples(samples []Sample, wireBytes int) {
	s.ingest(samples, wireBytes, time.Now())
}

// Query returns the points of component/metric with T in [from, to) from
// the owning shard.
func (s *Sharded) Query(component, metric string, from, to int64) ([]Point, error) {
	return s.shards[s.shardIndex(component+"/"+metric)].Query(component, metric, from, to)
}

// SeriesKeys returns all component/metric keys across shards in sorted
// order.
func (s *Sharded) SeriesKeys() []string {
	var keys []string
	for _, sh := range s.shards {
		keys = append(keys, sh.SeriesKeys()...)
	}
	sort.Strings(keys)
	return keys
}

// MaxTime returns the largest timestamp ingested across shards (0 when
// empty).
func (s *Sharded) MaxTime() int64 {
	var max int64
	for _, sh := range s.shards {
		if t := sh.MaxTime(); t > max {
			max = t
		}
	}
	return max
}

// Flush seals every shard's tails so Stats reflects compressed storage.
func (s *Sharded) Flush() {
	for _, sh := range s.shards {
		sh.Flush()
	}
}

// Stats sums the per-shard accounting and adds the front door's wire
// counters. Query-side network-out is charged inside the shards.
func (s *Sharded) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		out.Points += st.Points
		out.Series += st.Series
		out.StorageBytes += st.StorageBytes
		out.NetworkInBytes += st.NetworkInBytes
		out.NetworkOutBytes += st.NetworkOutBytes
		out.IngestCPU += st.IngestCPU
	}
	out.NetworkInBytes += int(s.netIn.Load())
	out.NetworkOutBytes += int(s.netOut.Load())
	out.IngestCPU += time.Duration(s.ingestCPU.Load())
	return out
}
