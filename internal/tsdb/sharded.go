package tsdb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sieve-microservices/sieve/internal/parallel"
)

// Sharded is a hash-partitioned store: series keys are FNV-hashed onto N
// independent DB shards, each with its own lock, so concurrent writers
// contend only when they touch the same shard instead of serializing on
// one global mutex. Every series lives entirely inside one shard, so
// query results and stored points are identical to a single DB at any
// shard count — sharding changes scheduling, never data.
type Sharded struct {
	shards []*DB

	// Wire-level accounting lives at the front door (the shards see only
	// decoded samples); atomics keep the hot write path lock-free here.
	netIn     atomic.Int64
	netOut    atomic.Int64
	ingestCPU atomic.Int64 // nanoseconds spent parsing+partitioning

	// dur is the storage engine of a store opened with OpenSharded: WAL
	// segments hang off the shards, dur owns the immutable block files,
	// checkpoints, and retention. nil for a pure in-memory store.
	dur *durable

	// scratchPool recycles the partition scratch (index, counts, backing
	// array, per-shard error slots) across ingests, so steady-state
	// ingest allocation is flat in batch size. Safe to reuse after an
	// ingest returns: nothing downstream retains the partitioned
	// sub-slices — the WAL copies bytes and the shards copy points.
	scratchPool sync.Pool
}

// ingestScratch is one ingest's reusable partition + fan-out state.
type ingestScratch struct {
	idx     []uint32
	counts  []int
	next    []int
	backing []Sample
	parts   [][]Sample
	order   []int // indices of the non-empty shards, ascending
	errs    []error
}

// NewSharded creates a store with n shards; n <= 0 uses GOMAXPROCS.
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{shards: make([]*DB, n)}
	for i := range s.shards {
		s.shards[i] = New()
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// shardIndex hashes a series key onto a shard (FNV-1a).
func (s *Sharded) shardIndex(key string) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(len(s.shards)))
}

// getScratch takes an ingestScratch from the pool (or makes one).
func (s *Sharded) getScratch() *ingestScratch {
	if sc, ok := s.scratchPool.Get().(*ingestScratch); ok {
		return sc
	}
	return &ingestScratch{}
}

// partitionInto groups samples by destination shard with a counting sort
// into the scratch's backing array (allocation-free once the scratch has
// grown to the workload's steady-state batch size), preserving arrival
// order within each shard — and therefore within each series, since a
// series maps to exactly one shard. sc.parts[i] is a sub-slice of the
// backing array; empty shards get a nil slice.
func (s *Sharded) partitionInto(sc *ingestScratch, samples []Sample) [][]Sample {
	n := len(s.shards)
	if cap(sc.idx) < len(samples) {
		sc.idx = make([]uint32, len(samples))
	}
	idx := sc.idx[:len(samples)]
	if cap(sc.counts) < n+1 {
		sc.counts = make([]int, n+1)
		sc.next = make([]int, n)
		sc.parts = make([][]Sample, n)
		sc.errs = make([]error, n)
	}
	counts := sc.counts[:n+1]
	for i := range counts {
		counts[i] = 0
	}
	for k, smp := range samples {
		i := s.shardIndex(smp.Key())
		idx[k] = uint32(i)
		counts[i+1]++
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	if cap(sc.backing) < len(samples) {
		sc.backing = make([]Sample, len(samples))
	}
	backing := sc.backing[:len(samples)]
	next := sc.next[:n]
	copy(next, counts[:n])
	for k, smp := range samples {
		i := idx[k]
		backing[next[i]] = smp
		next[i]++
	}
	parts := sc.parts[:n]
	for i := 0; i < n; i++ {
		if counts[i+1] > counts[i] {
			parts[i] = backing[counts[i]:counts[i+1]]
		} else {
			parts[i] = nil
		}
	}
	return parts
}

// parallelIngestMinBatch is the batch size below which a CPU-bound
// multi-shard append stays serial: fanning goroutines out costs more
// than walking a small batch's shards inline. Durability-bound appends
// (FsyncAlways) always fan out — their wait is disk latency, and
// overlapping the per-shard commit waits is the point.
const parallelIngestMinBatch = 256

// fsyncAlways reports whether appends block on an inline durability
// wait (the group-commit path).
func (s *Sharded) fsyncAlways() bool {
	return s.dur != nil && s.dur.opts.Fsync == FsyncAlways
}

// ingest partitions and appends a decoded batch, returning how many
// samples were confirmed stored: on a multi-shard durable store one
// shard's WAL failure drops only that shard's sub-batch, so stored can
// be anywhere in [0, len(samples)] alongside a non-nil error. Non-empty
// sub-batches append in parallel when it pays — always under
// FsyncAlways, where the per-shard commit waits overlap on the same
// group fsyncs, and for large batches on multi-core hosts otherwise —
// with deterministic aggregation: stored counts sum over shards and the
// reported error is the lowest-indexed shard's, exactly what the serial
// walk produced. Results are bit-identical either way because a series
// lives entirely inside one shard and arrival order within each shard
// is the partition order.
func (s *Sharded) ingest(samples []Sample, wireBytes int, start time.Time) (int, error) {
	var stored int
	var err error
	if len(samples) == 0 {
		s.ingestCPU.Add(int64(time.Since(start)))
	} else if len(s.shards) == 1 {
		// Single shard: nothing to partition.
		s.ingestCPU.Add(int64(time.Since(start)))
		if err = s.shards[0].appendSamples(samples); err == nil {
			stored = len(samples)
		}
	} else {
		sc := s.getScratch()
		parts := s.partitionInto(sc, samples)
		s.ingestCPU.Add(int64(time.Since(start)))
		order := sc.order[:0]
		for i := range parts {
			if len(parts[i]) > 0 {
				order = append(order, i)
			}
		}
		sc.order = order
		fanOut := len(order) > 1 &&
			(s.fsyncAlways() || (len(samples) >= parallelIngestMinBatch && runtime.GOMAXPROCS(0) > 1))
		if fanOut {
			// Tasks record their outcome per slot and never fail the pool:
			// one shard's WAL trouble must not cancel a healthy sibling's
			// append (the serial walk kept going too). Under FsyncAlways
			// the workers are fsync-bound, not CPU-bound, so one worker
			// per sub-batch regardless of core count.
			_ = parallel.ForEach(context.Background(), len(order), len(order), func(_ context.Context, k int) error {
				sc.errs[k] = s.shards[order[k]].appendSamples(parts[order[k]])
				return nil
			})
			for k, i := range order {
				if sc.errs[k] != nil {
					if err == nil {
						err = sc.errs[k]
					}
					sc.errs[k] = nil
				} else {
					stored += len(parts[i])
				}
			}
		} else {
			for _, i := range order {
				if aerr := s.shards[i].appendSamples(parts[i]); aerr != nil {
					if err == nil {
						err = aerr
					}
				} else {
					stored += len(parts[i])
				}
			}
		}
		s.scratchPool.Put(sc)
	}
	s.netIn.Add(int64(wireBytes))
	s.netOut.Add(ackBytes)
	if err != nil {
		// Append failures are storage-side (WAL write/fsync), never a
		// payload problem: mark them so front ends report a server error.
		err = fmt.Errorf("%w: %w", ErrStorage, err)
	}
	return stored, err
}

// Write ingests a line-protocol payload, returning the number of samples
// stored. Parsing and partitioning happen outside any shard lock. On a
// durable store a WAL append failure fails the write; with multiple
// shards the failure can be partial — sub-batches routed to healthy
// shards are stored, only the failing shard's samples are dropped (the
// partial-write semantics of real TSDBs: per-shard atomicity, not
// per-batch). The returned count is the samples that were stored even
// when err is non-nil. The stored subset is hash-determined (whichever
// samples routed to healthy shards), NOT a prefix of the payload, so
// the count is an accounting signal, not a resume cursor: resending any
// part of the payload duplicates the stored points. A client that needs
// exactness after a partial failure must reconcile via Query.
func (s *Sharded) Write(payload []byte) (int, error) {
	start := time.Now()
	samples, err := ParseLineProtocol(payload)
	if err != nil {
		return 0, err
	}
	return s.ingest(samples, len(payload), start)
}

// WriteSamples ingests already-decoded samples, accounting wireBytes as
// network-in traffic. Like Write, a multi-shard failure can be partial;
// callers that need the stored count use Write.
func (s *Sharded) WriteSamples(samples []Sample, wireBytes int) error {
	_, err := s.ingest(samples, wireBytes, time.Now())
	return err
}

// IngestParsed is Write for callers that parsed the payload themselves
// (sieved's /write handler does, so it can count parse rejects and
// enforce the reserved self-scrape component before anything is
// stored): identical storage path and partial-failure semantics,
// returning the stored count. parseStart anchors the ingest-CPU
// accounting at the moment parsing began, so Stats charges the same
// work Write would.
func (s *Sharded) IngestParsed(samples []Sample, wireBytes int, parseStart time.Time) (int, error) {
	return s.ingest(samples, wireBytes, parseStart)
}

// Query returns the points of component/metric with T in [from, to): the
// owning shard's in-memory points merged, on a durable store, with every
// overlapping persisted block (and any drained set mid-checkpoint).
func (s *Sharded) Query(component, metric string, from, to int64) ([]Point, error) {
	if s.dur != nil {
		// Hold the cut lock across both reads so a concurrent checkpoint
		// cannot drain memory between them (points missed) or publish a
		// block between them (points duplicated).
		s.dur.cutMu.RLock()
		defer s.dur.cutMu.RUnlock()
	}
	return s.queryKeyLocked(component+"/"+metric, component, metric, from, to)
}

// queryKeyLocked is Query's body, factored out so the query engine's
// fan-out (which already holds cutMu for all its series) can reuse the
// exact single-series read path. Caller holds cutMu on durable stores.
func (s *Sharded) queryKeyLocked(key, component, metric string, from, to int64) ([]Point, error) {
	pts, err := s.shards[s.shardIndex(key)].Query(component, metric, from, to)
	if err != nil && !errors.Is(err, ErrUnknownSeries) {
		return nil, err
	}
	if s.dur == nil {
		return pts, err
	}
	memKnown := err == nil
	blkPts, blkKnown, berr := s.dur.queryBlocks(key, from, to)
	if berr != nil {
		return nil, berr
	}
	if !memKnown && !blkKnown {
		return nil, err // the shard's ErrUnknownSeries
	}
	if len(blkPts) > 0 {
		// Persisted points were drained earlier than anything still in
		// memory; keeping them first and sorting stably preserves arrival
		// order among equal timestamps, so results match the pre-flush
		// (and pre-restart) store byte for byte.
		s.netOut.Add(16 * int64(len(blkPts)))
		pts = append(blkPts, pts...)
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
	}
	return pts, nil
}

// SeriesKeys returns all component/metric keys across shards — and, on a
// durable store, persisted blocks — in sorted order.
func (s *Sharded) SeriesKeys() []string {
	if s.dur == nil {
		var keys []string
		for _, sh := range s.shards {
			keys = append(keys, sh.SeriesKeys()...)
		}
		sort.Strings(keys)
		return keys
	}
	set := s.seriesKeySet()
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// seriesKeySet unions in-memory and persisted series keys.
func (s *Sharded) seriesKeySet() map[string]struct{} {
	if s.dur != nil {
		s.dur.cutMu.RLock()
		defer s.dur.cutMu.RUnlock()
	}
	return s.seriesKeySetLocked()
}

// seriesKeySetLocked is seriesKeySet for callers already holding cutMu
// (an RWMutex read lock must not be re-acquired while a writer waits).
func (s *Sharded) seriesKeySetLocked() map[string]struct{} {
	set := map[string]struct{}{}
	for _, sh := range s.shards {
		for _, k := range sh.SeriesKeys() {
			set[k] = struct{}{}
		}
	}
	if s.dur != nil {
		s.dur.addSeriesKeys(set)
	}
	return set
}

// MaxTime returns the largest timestamp ingested across shards and, on a
// durable store, persisted blocks (0 when empty) — so a restarted store
// anchors its sliding window exactly where the previous life did.
func (s *Sharded) MaxTime() int64 {
	var max int64
	for _, sh := range s.shards {
		if t := sh.MaxTime(); t > max {
			max = t
		}
	}
	if s.dur != nil {
		if t := s.dur.maxTime(); t > max {
			max = t
		}
	}
	return max
}

// Flush seals every shard's tails so Stats reflects compressed storage.
func (s *Sharded) Flush() {
	for _, sh := range s.shards {
		sh.Flush()
	}
}

// Stats sums the per-shard accounting and adds the front door's wire
// counters. Query-side network-out is charged inside the shards. On a
// durable store, Points also counts points recovered from blocks (prior
// lives' ingests), Series is the union of in-memory and persisted keys
// (a series does not double-count when it spans both), and StorageBytes
// adds the on-disk block chunks and live WAL segments.
func (s *Sharded) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		out.Points += st.Points
		out.Series += st.Series
		out.StorageBytes += st.StorageBytes
		out.NetworkInBytes += st.NetworkInBytes
		out.NetworkOutBytes += st.NetworkOutBytes
		out.IngestCPU += st.IngestCPU
	}
	out.NetworkInBytes += int(s.netIn.Load())
	out.NetworkOutBytes += int(s.netOut.Load())
	out.IngestCPU += time.Duration(s.ingestCPU.Load())
	if s.dur != nil {
		blockBytes, basePoints, _ := s.dur.diskStats()
		out.Points += basePoints
		out.StorageBytes += int(blockBytes)
		for _, sh := range s.shards {
			out.StorageBytes += int(sh.wal.sizeBytes())
		}
		out.Series = len(s.seriesKeySet())
		out.CheckpointFailures, out.LastCheckpointError = s.dur.checkpointStats()
	}
	return out
}

// Durable reports whether the store persists to disk.
func (s *Sharded) Durable() bool { return s.dur != nil }

// DataDir returns the data directory of a durable store ("" otherwise).
func (s *Sharded) DataDir() string {
	if s.dur == nil {
		return ""
	}
	return s.dur.opts.Dir
}

// Checkpoint seals all in-memory data into an immutable Gorilla block
// directory, prunes the WAL segments it covers, and enforces retention.
// No-op on an in-memory store.
func (s *Sharded) Checkpoint() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.checkpoint(s)
}

// Compact runs one synchronous compaction pass: adjacent small blocks
// are merged into larger ones (identical point set, identical query
// bytes) and, with DurabilityOptions.Downsample set, missing 5m/1h
// downsampled companions are built. The same pass runs in the
// background every CompactInterval; this entry point exists for tests
// and operational tooling. No-op on an in-memory store.
func (s *Sharded) Compact() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.compact()
}

// Close stops the background fsync/flush tickers, checkpoints remaining
// in-memory data, and closes WAL and block files. Safe to call twice;
// no-op on an in-memory store. A store killed without Close recovers on
// the next OpenSharded from blocks plus the WAL.
func (s *Sharded) Close() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.shutdown(s)
}

// routeReplay inserts WAL-recovered samples by the current key hash:
// replay is positional on disk (one directory per previous-life shard)
// but placement must follow today's shard count, which may differ.
func (s *Sharded) routeReplay(samples []Sample) {
	if len(s.shards) == 1 {
		s.shards[0].replaySamples(samples)
		return
	}
	sc := s.getScratch()
	for i, part := range s.partitionInto(sc, samples) {
		if len(part) > 0 {
			s.shards[i].replaySamples(part)
		}
	}
	s.scratchPool.Put(sc)
}

// reinsert splices stolen series snapshots back into their owning
// shards after a failed cut or block write.
func (s *Sharded) reinsert(snap map[string]*series) {
	for key, sr := range snap {
		s.shards[s.shardIndex(key)].reinsertSeries(key, sr)
	}
}
