package tsdb

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Point is one stored observation.
type Point struct {
	// T is the timestamp in milliseconds.
	T int64
	// V is the value.
	V float64
}

// CompressBlock encodes a time-ordered batch of points with the Gorilla
// scheme (Pelkonen et al., VLDB 2015): the first timestamp and value are
// stored raw, timestamp deltas are encoded as delta-of-delta with
// variable-width buckets, and values are XORed against their predecessor
// with leading/trailing-zero windows. Points must be in non-decreasing
// time order (enforced); an empty batch encodes to an empty block.
func CompressBlock(points []Point) ([]byte, error) {
	if len(points) == 0 {
		return nil, nil
	}
	w := &bitWriter{}

	// Header: count (32 bits), first timestamp (64), first value (64).
	w.writeBits(uint64(len(points)), 32)
	w.writeBits(uint64(points[0].T), 64)
	w.writeBits(math.Float64bits(points[0].V), 64)

	prevT := points[0].T
	var prevDelta int64
	prevV := math.Float64bits(points[0].V)
	prevLeading, prevTrailing := -1, -1

	for i := 1; i < len(points); i++ {
		p := points[i]
		if p.T < prevT {
			return nil, fmt.Errorf("tsdb: timestamps not ordered at index %d (%d < %d)", i, p.T, prevT)
		}

		// Timestamp: delta-of-delta bucket encoding.
		delta := p.T - prevT
		dod := delta - prevDelta
		switch {
		case dod == 0:
			w.writeBit(false)
		case dod >= -63 && dod <= 64:
			w.writeBits(0b10, 2)
			w.writeBits(uint64(dod+63), 7)
		case dod >= -255 && dod <= 256:
			w.writeBits(0b110, 3)
			w.writeBits(uint64(dod+255), 9)
		case dod >= -2047 && dod <= 2048:
			w.writeBits(0b1110, 4)
			w.writeBits(uint64(dod+2047), 12)
		default:
			w.writeBits(0b1111, 4)
			w.writeBits(uint64(dod), 64)
		}
		prevT, prevDelta = p.T, delta

		// Value: XOR encoding.
		cur := math.Float64bits(p.V)
		xor := cur ^ prevV
		switch {
		case xor == 0:
			w.writeBit(false)
		default:
			w.writeBit(true)
			leading := bits.LeadingZeros64(xor)
			trailing := bits.TrailingZeros64(xor)
			if leading > 31 {
				leading = 31 // 5-bit field
			}
			if prevLeading >= 0 && leading >= prevLeading && trailing >= prevTrailing {
				// Fits inside the previous meaningful window.
				w.writeBit(false)
				meaningful := 64 - prevLeading - prevTrailing
				w.writeBits(xor>>uint(prevTrailing), meaningful)
			} else {
				w.writeBit(true)
				meaningful := 64 - leading - trailing
				w.writeBits(uint64(leading), 5)
				// meaningful is in 1..64; store 64 as 0 to fit 6 bits.
				w.writeBits(uint64(meaningful&63), 6)
				w.writeBits(xor>>uint(trailing), meaningful)
				prevLeading, prevTrailing = leading, trailing
			}
		}
		prevV = cur
	}
	return w.bytes(), nil
}

// chunkIter streams a compressed chunk point by point, so readers that
// only need an aggregate (or a sub-range) never materialize the decoded
// []Point slice. The zero cost per point is the same as DecompressBlock's
// inner loop; the iterator is just that loop with its state lifted out.
type chunkIter struct {
	r     bitReader
	count uint64
	i     uint64

	prevT                     int64
	prevDelta                 int64
	prevV                     uint64
	prevLeading, prevTrailing int

	// cur is the current point, valid after next returns true.
	cur Point
}

// reset re-arms the iterator on a new chunk, validating the header and
// positioning before the first point. It returns false for an empty
// chunk (no points, no error), matching DecompressBlock on an empty
// block. The iterator is a plain value — callers that scan many chunks
// keep one on the stack and reset it per chunk, so the hot decode path
// allocates nothing.
func (it *chunkIter) reset(chunk []byte) (bool, error) {
	if len(chunk) == 0 {
		return false, nil
	}
	r := bitReader{buf: chunk}
	count, err := r.readBits(32)
	if err != nil {
		return false, err
	}
	if count == 0 {
		return false, errors.New("tsdb: block with zero count")
	}
	// Plausibility bound against corrupted headers: every point after the
	// first costs at least 2 bits (one timestamp control bit + one value
	// control bit), so the claimed count cannot exceed what the buffer
	// can physically hold. Without this check a flipped header bit could
	// demand a multi-gigabyte allocation.
	maxPoints := uint64(len(chunk))*8/2 + 1
	if count > maxPoints {
		return false, fmt.Errorf("tsdb: block claims %d points but holds at most %d", count, maxPoints)
	}
	t0, err := r.readBits(64)
	if err != nil {
		return false, err
	}
	v0, err := r.readBits(64)
	if err != nil {
		return false, err
	}
	*it = chunkIter{
		r:            r,
		count:        count,
		prevT:        int64(t0),
		prevV:        v0,
		prevLeading:  -1,
		prevTrailing: -1,
	}
	return true, nil
}

// newChunkIter validates the chunk header and positions a fresh
// iterator before the first point. An empty chunk yields a nil iterator
// (no points, no error).
func newChunkIter(chunk []byte) (*chunkIter, error) {
	it := new(chunkIter)
	ok, err := it.reset(chunk)
	if err != nil || !ok {
		return nil, err
	}
	return it, nil
}

// next advances to the following point, reporting false at the end of
// the chunk. After a true return, it.cur holds the point.
func (it *chunkIter) next() (bool, error) {
	if it.i >= it.count {
		return false, nil
	}
	if it.i == 0 {
		it.i++
		it.cur = Point{T: it.prevT, V: math.Float64frombits(it.prevV)}
		return true, nil
	}
	dod, err := readDoD(&it.r)
	if err != nil {
		return false, err
	}
	delta := it.prevDelta + dod
	t := it.prevT + delta
	it.prevT, it.prevDelta = t, delta

	v, leading, trailing, err := readXORValue(&it.r, it.prevV, it.prevLeading, it.prevTrailing)
	if err != nil {
		return false, err
	}
	it.prevV = v
	if leading >= 0 {
		it.prevLeading, it.prevTrailing = leading, trailing
	}
	it.i++
	it.cur = Point{T: t, V: math.Float64frombits(v)}
	return true, nil
}

// DecompressBlock decodes a block produced by CompressBlock.
func DecompressBlock(block []byte) ([]Point, error) {
	it, err := newChunkIter(block)
	if err != nil || it == nil {
		return nil, err
	}
	out := make([]Point, 0, it.count)
	for {
		ok, err := it.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, it.cur)
	}
}

// readDoD decodes one delta-of-delta bucket.
func readDoD(r *bitReader) (int64, error) {
	bit, err := r.readBit()
	if err != nil {
		return 0, err
	}
	if !bit {
		return 0, nil
	}
	// Count additional prefix ones (up to 3 more).
	prefix := 1
	for prefix < 4 {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if !b {
			break
		}
		prefix++
	}
	switch prefix {
	case 1: // '10'
		v, err := r.readBits(7)
		if err != nil {
			return 0, err
		}
		return int64(v) - 63, nil
	case 2: // '110'
		v, err := r.readBits(9)
		if err != nil {
			return 0, err
		}
		return int64(v) - 255, nil
	case 3: // '1110'
		v, err := r.readBits(12)
		if err != nil {
			return 0, err
		}
		return int64(v) - 2047, nil
	default: // '1111'
		v, err := r.readBits(64)
		if err != nil {
			return 0, err
		}
		return int64(v), nil
	}
}

// readXORValue decodes one XOR-encoded value; it returns the new window
// when the control bits establish one (leading >= 0), else -1s.
func readXORValue(r *bitReader, prevV uint64, prevLeading, prevTrailing int) (v uint64, leading, trailing int, err error) {
	bit, err := r.readBit()
	if err != nil {
		return 0, -1, -1, err
	}
	if !bit {
		return prevV, -1, -1, nil
	}
	ctrl, err := r.readBit()
	if err != nil {
		return 0, -1, -1, err
	}
	if !ctrl {
		// Reuse the previous window.
		if prevLeading < 0 {
			return 0, -1, -1, errors.New("tsdb: window reuse before any window was set")
		}
		meaningful := 64 - prevLeading - prevTrailing
		mbits, err := r.readBits(meaningful)
		if err != nil {
			return 0, -1, -1, err
		}
		return prevV ^ (mbits << uint(prevTrailing)), -1, -1, nil
	}
	lead, err := r.readBits(5)
	if err != nil {
		return 0, -1, -1, err
	}
	mlen, err := r.readBits(6)
	if err != nil {
		return 0, -1, -1, err
	}
	meaningful := int(mlen)
	if meaningful == 0 {
		meaningful = 64
	}
	trail := 64 - int(lead) - meaningful
	if trail < 0 {
		return 0, -1, -1, errors.New("tsdb: corrupt XOR window")
	}
	mbits, err := r.readBits(meaningful)
	if err != nil {
		return 0, -1, -1, err
	}
	return prevV ^ (mbits << uint(trail)), int(lead), trail, nil
}
