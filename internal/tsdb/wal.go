package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/sieve-microservices/sieve/internal/telemetry"
)

// FsyncPolicy controls when WAL appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval (the default) leaves appends in the OS page cache and
	// fsyncs from a background ticker, bounding the post-crash loss window
	// to DurabilityOptions.FsyncInterval of writes.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs after every appended batch: zero loss on power
	// failure, at the cost of one disk flush per write.
	FsyncAlways
	// FsyncNever never fsyncs explicitly; durability is whatever the OS
	// provides. Survives process crashes but not host crashes.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("tsdb: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// castagnoli is the CRC-32C table shared by WAL records and block chunks.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walRecordHeader is [4B payload length][4B CRC-32C of payload], both
// little-endian, preceding every record.
const walRecordHeader = 8

// appendWALSamples encodes a batch of samples as one WAL record payload:
// a uvarint count followed by, per sample, length-prefixed component and
// metric strings, a zigzag-varint timestamp, and the raw float64 bits.
func appendWALSamples(buf []byte, samples []Sample) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(samples)))
	for _, s := range samples {
		buf = binary.AppendUvarint(buf, uint64(len(s.Component)))
		buf = append(buf, s.Component...)
		buf = binary.AppendUvarint(buf, uint64(len(s.Metric)))
		buf = append(buf, s.Metric...)
		buf = binary.AppendVarint(buf, s.T)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.V))
	}
	return buf
}

// decodeWALSamples decodes one record payload written by appendWALSamples.
func decodeWALSamples(payload []byte) ([]Sample, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("tsdb: wal record: bad sample count")
	}
	payload = payload[n:]
	// Each sample costs at least 2 length bytes + 1 timestamp byte + 8
	// value bytes, so a corrupt count cannot force a huge allocation.
	if count > uint64(len(payload)/11)+1 {
		return nil, fmt.Errorf("tsdb: wal record claims %d samples in %d bytes", count, len(payload))
	}
	readStr := func() (string, error) {
		l, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload)-n) < l {
			return "", fmt.Errorf("tsdb: wal record: truncated string")
		}
		s := string(payload[n : n+int(l)])
		payload = payload[n+int(l):]
		return s, nil
	}
	out := make([]Sample, 0, count)
	for i := uint64(0); i < count; i++ {
		var s Sample
		var err error
		if s.Component, err = readStr(); err != nil {
			return nil, err
		}
		if s.Metric, err = readStr(); err != nil {
			return nil, err
		}
		t, n := binary.Varint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("tsdb: wal record: truncated timestamp")
		}
		payload = payload[n:]
		if len(payload) < 8 {
			return nil, fmt.Errorf("tsdb: wal record: truncated value")
		}
		s.T = t
		s.V = math.Float64frombits(binary.LittleEndian.Uint64(payload))
		payload = payload[8:]
		out = append(out, s)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("tsdb: wal record: %d trailing bytes", len(payload))
	}
	return out, nil
}

// walSegmentName formats a segment sequence number as its file name.
func walSegmentName(seq uint64) string { return fmt.Sprintf("%08d.wal", seq) }

// listWALSegments returns the segment sequence numbers in dir, ascending.
func listWALSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "%08d.wal", &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// walWriter appends CRC-framed sample batches to numbered segment files
// in one directory (one walWriter per store shard). Appends happen under
// the owning shard's lock; the internal mutex only coordinates with the
// background fsync ticker and with segment rotation.
type walWriter struct {
	dir      string
	policy   FsyncPolicy
	segMax   int64 // roll to a new segment beyond this many bytes
	mu       sync.Mutex
	f        *os.File
	seq      uint64 // sequence number of the open segment
	size     int64  // bytes written to the open segment
	retained int64  // bytes in older, still-live segments
	dirty    bool   // unsynced appends (consulted by the fsync ticker)
	syncErr  error  // pending background-fsync failure, surfaced by the next append
	// pendingTrunc records a failed rollback of a rejected record: the
	// phantom bytes (a complete, CRC-valid frame the client was told
	// failed) are still in the segment past w.size, and nothing may
	// append, roll, or close after them until they are cut out — replay
	// would otherwise resurrect the failed write.
	pendingTrunc bool
	buf          []byte // encode scratch, reused across appends

	// appendHist/syncHist, when non-nil, time successful appends and
	// fsyncs. Set via setTelemetry (under mu, before traffic) and read
	// only under mu, so installation is ordered against the fsync
	// ticker.
	appendHist *telemetry.Histogram
	syncHist   *telemetry.Histogram

	// segments counts live segment files (older retained ones plus the
	// open one), maintained by roll/remove so the gauge needs no readdir.
	segments int
}

// setTelemetry installs the append/fsync latency histograms.
func (w *walWriter) setTelemetry(appendH, syncH *telemetry.Histogram) {
	w.mu.Lock()
	w.appendHist = appendH
	w.syncHist = syncH
	w.mu.Unlock()
}

// segmentCount reports the number of live segment files.
func (w *walWriter) segmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segments
}

// syncFileLocked fsyncs the open segment, timing it when instrumented.
// Caller holds w.mu.
func (w *walWriter) syncFileLocked() error {
	if w.syncHist == nil {
		return w.f.Sync()
	}
	start := time.Now()
	err := w.f.Sync()
	w.syncHist.ObserveSince(start)
	return err
}

// openWALWriter opens dir (creating it) and starts a fresh segment after
// the highest existing one; existing segments are left for replay and
// later truncation by checkpoints.
func openWALWriter(dir string, policy FsyncPolicy, segMax int64) (*walWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := listWALSegments(dir)
	if err != nil {
		return nil, err
	}
	var next uint64 = 1
	var retained int64
	for _, seq := range seqs {
		if seq >= next {
			next = seq + 1
		}
		if fi, err := os.Stat(filepath.Join(dir, walSegmentName(seq))); err == nil {
			retained += fi.Size()
		}
	}
	w := &walWriter{dir: dir, policy: policy, segMax: segMax, seq: next, retained: retained, segments: len(seqs) + 1}
	if w.f, err = w.create(next); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *walWriter) create(seq uint64) (*os.File, error) {
	return os.OpenFile(filepath.Join(w.dir, walSegmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// append frames and writes one batch as a single record, rolling the
// segment first when it is full. With FsyncAlways the record is on stable
// storage when append returns.
func (w *walWriter) append(samples []Sample) error {
	if len(samples) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.syncErr != nil {
		// A background fsync failed since the last append: the writes it
		// covered may not be durable. Fail one write loudly instead of
		// letting the store keep acknowledging on a sinking log.
		err := w.syncErr
		w.syncErr = nil
		return fmt.Errorf("tsdb: wal fsync (background): %w", err)
	}
	if err := w.clearPendingTruncLocked(); err != nil {
		return err
	}
	var start time.Time
	if w.appendHist != nil {
		start = time.Now()
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	w.buf = appendWALSamples(w.buf, samples)
	payload := w.buf[walRecordHeader:]
	binary.LittleEndian.PutUint32(w.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[4:8], crc32.Checksum(payload, castagnoli))

	if w.size > 0 && w.size+int64(len(w.buf)) > w.segMax {
		if err := w.rollLocked(); err != nil {
			return err
		}
	}
	if n, err := w.f.Write(w.buf); err != nil {
		// Roll the torn record back so the next append starts on a clean
		// frame boundary: garbage mid-segment would otherwise stop replay
		// there and discard every later (even fsynced) record.
		if n > 0 && w.f.Truncate(w.size) != nil {
			w.pendingTrunc = true
		}
		return fmt.Errorf("tsdb: wal append: %w", err)
	}
	if w.policy == FsyncAlways {
		if err := w.syncFileLocked(); err != nil {
			// The batch is rejected: it never reaches memory and the
			// client sees an error. Cut the record back out of the segment
			// so a later replay cannot resurrect a write the client was
			// told failed (a retry would then duplicate it). If the same
			// sick disk also fails the cut, remember it: the next append,
			// roll, or close must retry before anything lands after the
			// phantom record.
			if w.f.Truncate(w.size) != nil {
				w.pendingTrunc = true
			}
			return fmt.Errorf("tsdb: wal fsync: %w", err)
		}
	} else {
		w.dirty = true
	}
	w.size += int64(len(w.buf))
	if w.appendHist != nil {
		w.appendHist.ObserveSince(start)
	}
	return nil
}

// clearPendingTruncLocked retries a previously failed rollback of a
// rejected record; until it succeeds the segment must not accept
// appends, roll, or seal on close — the phantom frame past w.size is
// CRC-valid and replay would resurrect it.
func (w *walWriter) clearPendingTruncLocked() error {
	if !w.pendingTrunc {
		return nil
	}
	if err := w.f.Truncate(w.size); err != nil {
		return fmt.Errorf("tsdb: wal: cutting rejected record: %w", err)
	}
	w.pendingTrunc = false
	return nil
}

// rollLocked closes the open segment (fsyncing it unless the policy is
// never) and starts the next one.
func (w *walWriter) rollLocked() error {
	if err := w.clearPendingTruncLocked(); err != nil {
		return err
	}
	if w.policy != FsyncNever {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.retained += w.size
	w.seq++
	w.size = 0
	w.dirty = false
	f, err := w.create(w.seq)
	if err != nil {
		return err
	}
	w.f = f
	w.segments++
	return nil
}

// rotate rolls to a fresh segment and returns its sequence number: every
// record appended before rotate lives in a segment numbered below the
// returned value, the cut checkpoints rely on. Callers must hold the
// owning shard's lock so no append can interleave with the cut.
func (w *walWriter) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.rollLocked(); err != nil {
		return 0, err
	}
	return w.seq, nil
}

// sync flushes unsynced appends to disk (the FsyncInterval ticker body).
// On failure the segment stays dirty — the next tick retries — and the
// error is kept for the next append to surface.
func (w *walWriter) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.dirty {
		return nil
	}
	if err := w.syncFileLocked(); err != nil {
		w.syncErr = err
		return err
	}
	w.dirty = false
	return nil
}

// removeSegmentsBelow deletes segments with sequence numbers < seq: their
// records are covered by a persisted block, so replaying them would only
// duplicate data.
func (w *walWriter) removeSegmentsBelow(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	seqs, err := listWALSegments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s >= seq {
			continue
		}
		path := filepath.Join(w.dir, walSegmentName(s))
		if fi, err := os.Stat(path); err == nil {
			w.retained -= fi.Size()
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		w.segments--
	}
	if w.retained < 0 {
		w.retained = 0
	}
	return nil
}

// sizeBytes reports the bytes held by all live segments.
func (w *walWriter) sizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.retained + w.size
}

// close fsyncs (unless the policy is never) and closes the open segment.
func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	// A phantom record that still cannot be cut out is surfaced, but the
	// file is closed either way: holding the fd open cannot fix the disk.
	err := w.clearPendingTruncLocked()
	if w.policy != FsyncNever {
		if serr := w.f.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// pruneWALSegmentsBelow removes segments with sequence numbers < seq
// from a directory no writer has open yet (the recovery-time companion
// of walWriter.removeSegmentsBelow). A missing directory is fine.
func pruneWALSegmentsBelow(dir string, seq uint64) error {
	seqs, err := listWALSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, s := range seqs {
		if s < seq {
			if err := os.Remove(filepath.Join(dir, walSegmentName(s))); err != nil {
				return err
			}
		}
	}
	return nil
}

// walReplayStats summarizes one shard directory's replay.
type walReplayStats struct {
	Segments int
	Records  int
	Samples  int
	// Repaired is true when replay hit a truncated or corrupt record: the
	// segment was truncated at the last good offset and any later
	// segments were discarded, mirroring Prometheus's WAL repair.
	Repaired bool
}

// replayWAL reads every record of every segment in dir in order, calling
// apply per decoded batch. A short or corrupt record ends the replay:
// everything before it is applied, the bad tail is truncated away so the
// next open starts clean, and later segments (written after the
// corruption point, so of unknowable consistency) are removed.
func replayWAL(dir string, apply func([]Sample)) (walReplayStats, error) {
	var st walReplayStats
	seqs, err := listWALSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, err
	}
	for i, seq := range seqs {
		path := filepath.Join(dir, walSegmentName(seq))
		good, recs, samples, err := replaySegment(path, apply)
		st.Records += recs
		st.Samples += samples
		st.Segments++
		if err != nil {
			return st, err
		}
		if good >= 0 {
			// Truncate the bad tail and drop all later segments.
			st.Repaired = true
			if err := os.Truncate(path, good); err != nil {
				return st, err
			}
			for _, later := range seqs[i+1:] {
				if err := os.Remove(filepath.Join(dir, walSegmentName(later))); err != nil {
					return st, err
				}
			}
			return st, nil
		}
	}
	return st, nil
}

// replaySegment applies every whole, checksummed record of one segment.
// It returns goodOffset >= 0 when it stopped at a truncated or corrupt
// record (the offset where the segment should be cut), -1 when the
// segment replayed cleanly to the end. Only a short read (the file
// physically ends mid-record) counts as truncation; a real read error
// aborts the whole recovery instead of destructively "repairing" a
// segment that a transient disk hiccup merely failed to read.
func replaySegment(path string, apply func([]Sample)) (goodOffset int64, records, samples int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return -1, 0, 0, err
	}
	defer f.Close()
	var off int64
	hdr := make([]byte, walRecordHeader)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF {
				return -1, records, samples, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				return off, records, samples, nil // truncated header
			}
			return -1, records, samples, fmt.Errorf("tsdb: reading %s: %w", path, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(length) > 1<<30 { // implausible: corrupt length field
			return off, records, samples, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, records, samples, nil // truncated payload
			}
			return -1, records, samples, fmt.Errorf("tsdb: reading %s: %w", path, err)
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return off, records, samples, nil // corrupt payload
		}
		batch, err := decodeWALSamples(payload)
		if err != nil {
			return off, records, samples, nil // framing ok, content corrupt
		}
		apply(batch)
		records++
		samples += len(batch)
		off += walRecordHeader + int64(length)
	}
}
