package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/sieve-microservices/sieve/internal/telemetry"
)

// FsyncPolicy controls when WAL appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval (the default) leaves appends in the OS page cache and
	// fsyncs from a background ticker, bounding the post-crash loss window
	// to DurabilityOptions.FsyncInterval of writes.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs after every appended batch: zero loss on power
	// failure, at the cost of one disk flush per write.
	FsyncAlways
	// FsyncNever never fsyncs explicitly; durability is whatever the OS
	// provides. Survives process crashes but not host crashes.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("tsdb: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// castagnoli is the CRC-32C table shared by WAL records and block chunks.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walRecordHeader is [4B payload length][4B CRC-32C of payload], both
// little-endian, preceding every record.
const walRecordHeader = 8

// WAL record payload versioning. A v1 payload starts with its uvarint
// sample count, which is never zero (empty batches are not appended), so
// the byte 0x00 is free to mark a versioned v2 payload: 0x00, then a
// record-type byte, then the type's body. Replay switches per record on
// that first byte, which is what makes mixed-version recovery (v1
// segments from an old process next to v2 segments from this one — or
// even both forms inside one directory) seamless.
const (
	walV2Marker = 0x00
	// walRecSeries defines one series for the rest of the segment:
	// uvarint id, then length-prefixed component and metric strings. The
	// writer emits it on a series' first occurrence per segment; ids are
	// assigned sequentially from 0 and die with the segment.
	walRecSeries = 0x01
	// walRecSamples is a sample batch referencing dictionary ids:
	// uvarint count, then per sample uvarint series id, zigzag-varint
	// timestamp delta from the record's previous sample (the first
	// sample's delta is from zero, i.e. the absolute timestamp), raw
	// float64 bits. Collector batches carry one scrape's worth of equal
	// or near-equal timestamps, so the deltas are almost always one
	// byte.
	walRecSamples = 0x02
)

// appendWALSamples encodes a batch as one v1 record payload: a uvarint
// count followed by, per sample, length-prefixed component and metric
// strings, a zigzag-varint timestamp, and the raw float64 bits. The
// writer emits v2 (see appendFramesV2); the v1 encoder is kept because
// replay must keep decoding pre-dictionary segments forever and the
// mixed-version tests need to produce them.
func appendWALSamples(buf []byte, samples []Sample) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(samples)))
	for _, s := range samples {
		buf = binary.AppendUvarint(buf, uint64(len(s.Component)))
		buf = append(buf, s.Component...)
		buf = binary.AppendUvarint(buf, uint64(len(s.Metric)))
		buf = append(buf, s.Metric...)
		buf = binary.AppendVarint(buf, s.T)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.V))
	}
	return buf
}

// decodeWALSamples decodes one record payload written by appendWALSamples.
func decodeWALSamples(payload []byte) ([]Sample, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("tsdb: wal record: bad sample count")
	}
	payload = payload[n:]
	// Each sample costs at least 2 length bytes + 1 timestamp byte + 8
	// value bytes, so a corrupt count cannot force a huge allocation.
	if count > uint64(len(payload)/11)+1 {
		return nil, fmt.Errorf("tsdb: wal record claims %d samples in %d bytes", count, len(payload))
	}
	readStr := func() (string, error) {
		l, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload)-n) < l {
			return "", fmt.Errorf("tsdb: wal record: truncated string")
		}
		s := string(payload[n : n+int(l)])
		payload = payload[n+int(l):]
		return s, nil
	}
	out := make([]Sample, 0, count)
	for i := uint64(0); i < count; i++ {
		var s Sample
		var err error
		if s.Component, err = readStr(); err != nil {
			return nil, err
		}
		if s.Metric, err = readStr(); err != nil {
			return nil, err
		}
		t, n := binary.Varint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("tsdb: wal record: truncated timestamp")
		}
		payload = payload[n:]
		if len(payload) < 8 {
			return nil, fmt.Errorf("tsdb: wal record: truncated value")
		}
		s.T = t
		s.V = math.Float64frombits(binary.LittleEndian.Uint64(payload))
		payload = payload[8:]
		out = append(out, s)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("tsdb: wal record: %d trailing bytes", len(payload))
	}
	return out, nil
}

// seriesIdent is one dictionary entry: the strings a v2 sample record's
// id resolves to.
type seriesIdent struct {
	component string
	metric    string
}

// beginFrame reserves a record header in buf and returns the payload
// start offset; finishFrame fills the header once the payload is built.
func beginFrame(buf []byte) ([]byte, int) {
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	return buf, len(buf)
}

func finishFrame(buf []byte, payloadStart int) []byte {
	payload := buf[payloadStart:]
	binary.LittleEndian.PutUint32(buf[payloadStart-walRecordHeader:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[payloadStart-walRecordHeader+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// appendSeriesFrame appends one complete walRecSeries record (header
// included) defining id -> component/metric.
func appendSeriesFrame(buf []byte, id uint64, component, metric string) []byte {
	buf, start := beginFrame(buf)
	buf = append(buf, walV2Marker, walRecSeries)
	buf = binary.AppendUvarint(buf, id)
	buf = binary.AppendUvarint(buf, uint64(len(component)))
	buf = append(buf, component...)
	buf = binary.AppendUvarint(buf, uint64(len(metric)))
	buf = append(buf, metric...)
	return finishFrame(buf, start)
}

// appendSamplesFrameV2 appends one complete walRecSamples record whose
// samples reference ids via lookup (every series must already be in the
// dictionary).
func appendSamplesFrameV2(buf []byte, samples []Sample, lookup func(component, metric string) uint64) []byte {
	buf, start := beginFrame(buf)
	buf = append(buf, walV2Marker, walRecSamples)
	buf = binary.AppendUvarint(buf, uint64(len(samples)))
	var prevT int64
	for i := range samples {
		s := &samples[i]
		buf = binary.AppendUvarint(buf, lookup(s.Component, s.Metric))
		buf = binary.AppendVarint(buf, s.T-prevT)
		prevT = s.T
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.V))
	}
	return finishFrame(buf, start)
}

// walDecoder holds one segment's replay-side series dictionary,
// rebuilt from walRecSeries records as the segment streams by.
type walDecoder struct {
	dict []seriesIdent
}

// decodeWALRecord decodes one record payload of either version. A v1
// payload decodes standalone; a v2 series record extends the decoder's
// dictionary and yields no samples; a v2 sample record resolves its ids
// against the dictionary built so far. Any malformed byte — including a
// series id the segment never defined or a non-sequential definition —
// is an error, which replay treats like any other corrupt record.
func (d *walDecoder) decodeWALRecord(payload []byte) ([]Sample, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("tsdb: wal record: empty payload")
	}
	if payload[0] != walV2Marker {
		return decodeWALSamples(payload)
	}
	if len(payload) < 2 {
		return nil, fmt.Errorf("tsdb: wal record: truncated v2 header")
	}
	body := payload[2:]
	switch payload[1] {
	case walRecSeries:
		id, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("tsdb: wal series record: bad id")
		}
		if id != uint64(len(d.dict)) {
			return nil, fmt.Errorf("tsdb: wal series record: id %d out of sequence (have %d)", id, len(d.dict))
		}
		body = body[n:]
		readStr := func() (string, error) {
			l, n := binary.Uvarint(body)
			if n <= 0 || uint64(len(body)-n) < l {
				return "", fmt.Errorf("tsdb: wal series record: truncated string")
			}
			s := string(body[n : n+int(l)])
			body = body[n+int(l):]
			return s, nil
		}
		var ident seriesIdent
		var err error
		if ident.component, err = readStr(); err != nil {
			return nil, err
		}
		if ident.metric, err = readStr(); err != nil {
			return nil, err
		}
		if len(body) != 0 {
			return nil, fmt.Errorf("tsdb: wal series record: %d trailing bytes", len(body))
		}
		d.dict = append(d.dict, ident)
		return nil, nil
	case walRecSamples:
		count, n := binary.Uvarint(body)
		if n <= 0 {
			return nil, fmt.Errorf("tsdb: wal record: bad sample count")
		}
		body = body[n:]
		// Each sample costs at least 1 id byte + 1 timestamp byte + 8
		// value bytes, so a corrupt count cannot force a huge allocation.
		if count > uint64(len(body)/10)+1 {
			return nil, fmt.Errorf("tsdb: wal record claims %d samples in %d bytes", count, len(body))
		}
		out := make([]Sample, 0, count)
		var prevT int64
		for i := uint64(0); i < count; i++ {
			id, n := binary.Uvarint(body)
			if n <= 0 {
				return nil, fmt.Errorf("tsdb: wal record: truncated series id")
			}
			if id >= uint64(len(d.dict)) {
				return nil, fmt.Errorf("tsdb: wal record: undefined series id %d", id)
			}
			body = body[n:]
			dt, n := binary.Varint(body)
			if n <= 0 {
				return nil, fmt.Errorf("tsdb: wal record: truncated timestamp")
			}
			body = body[n:]
			if len(body) < 8 {
				return nil, fmt.Errorf("tsdb: wal record: truncated value")
			}
			prevT += dt
			ident := &d.dict[id]
			out = append(out, Sample{
				Component: ident.component,
				Metric:    ident.metric,
				T:         prevT,
				V:         math.Float64frombits(binary.LittleEndian.Uint64(body)),
			})
			body = body[8:]
		}
		if len(body) != 0 {
			return nil, fmt.Errorf("tsdb: wal record: %d trailing bytes", len(body))
		}
		return out, nil
	}
	return nil, fmt.Errorf("tsdb: wal record: unknown v2 record type 0x%02x", payload[1])
}

// walSegmentName formats a segment sequence number as its file name.
func walSegmentName(seq uint64) string { return fmt.Sprintf("%08d.wal", seq) }

// listWALSegments returns the segment sequence numbers in dir, ascending.
func listWALSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "%08d.wal", &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// walWriter appends CRC-framed sample batches to numbered segment files
// in one directory (one walWriter per store shard). Appends happen under
// the owning shard's lock; the internal mutex only coordinates with the
// background fsync ticker and with segment rotation.
type walWriter struct {
	dir      string
	policy   FsyncPolicy
	segMax   int64 // roll to a new segment beyond this many bytes
	mu       sync.Mutex
	f        *os.File
	seq      uint64 // sequence number of the open segment
	size     int64  // bytes written to the open segment
	retained int64  // bytes in older, still-live segments
	dirty    bool   // unsynced appends (consulted by the fsync ticker)
	syncErr  error  // pending background-fsync failure, surfaced by the next append
	// pendingTrunc records a failed rollback of a rejected record: the
	// phantom bytes (a complete, CRC-valid frame the client was told
	// failed) are still in the segment past w.size, and nothing may
	// append, roll, or close after them until they are cut out — replay
	// would otherwise resurrect the failed write.
	pendingTrunc bool
	buf          []byte // encode scratch, reused across appends

	// dict is the open segment's series dictionary (component -> metric
	// -> id): a series gets a walRecSeries record and a sequential id on
	// its first appearance, and sample records reference ids from then
	// on. Two-level so the hot-path lookup never concatenates a key.
	// Reset on every roll — the dictionary's lifetime is the segment, so
	// replay of any single segment is self-contained. newSeries is the
	// per-append rollback scratch: ids assigned by an append whose write
	// fails must leave the dictionary again, or a later sample record
	// would reference an id that never reached disk.
	dict      map[string]map[string]uint64
	nextID    uint64
	newSeries []seriesIdent

	// appendHist/syncHist, when non-nil, time successful appends and
	// fsyncs. Set via setTelemetry (under mu, before traffic) and read
	// only under mu, so installation is ordered against the fsync
	// ticker.
	appendHist *telemetry.Histogram
	syncHist   *telemetry.Histogram
	// bytesCounter, when non-nil, counts WAL bytes written (frames
	// including headers), under mu like the histograms.
	bytesCounter *telemetry.Counter

	// segments counts live segment files (older retained ones plus the
	// open one), maintained by roll/remove so the gauge needs no readdir.
	segments int

	// Group-commit state, guarded by cmu (never held while acquiring
	// mu; mu-holders may take cmu briefly). Every append is assigned a
	// sequence number after its write syscall completes; syncedSeq is
	// the highest append known to be on stable storage — advanced by a
	// commit leader's fsync, by segment rolls (which fsync the old file
	// before closing it), and by close. commitWait blocks an FsyncAlways
	// appender until its seq is covered: the first waiter to find no
	// fsync in flight becomes the leader and syncs everyone queued so
	// far with one fsync (leader/follower group commit).
	cmu       sync.Mutex
	ccond     *sync.Cond
	appendSeq uint64
	syncedSeq uint64
	syncing   bool
	// failSeq/failErr deliver a failed group fsync to its cohort: every
	// waiter at or below failSeq whose data a later fsync has not since
	// covered gets failErr. Appends after the failure start a fresh
	// group, so a recovered disk resumes service without restart.
	failSeq uint64
	failErr error
	// groupHist observes appends-per-fsync; savedCounter counts fsyncs
	// avoided by coalescing. Set via setTelemetry before traffic, read
	// under cmu.
	groupHist    *telemetry.Histogram
	savedCounter *telemetry.Counter
}

// setTelemetry installs the append/fsync latency histograms, the
// group-commit instruments, and the bytes-written counter.
func (w *walWriter) setTelemetry(appendH, syncH, groupH *telemetry.Histogram, saved, bytes *telemetry.Counter) {
	w.mu.Lock()
	w.appendHist = appendH
	w.syncHist = syncH
	w.bytesCounter = bytes
	w.mu.Unlock()
	w.cmu.Lock()
	w.groupHist = groupH
	w.savedCounter = saved
	w.cmu.Unlock()
}

// segmentCount reports the number of live segment files.
func (w *walWriter) segmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segments
}

// syncFileLocked fsyncs the open segment, timing it when instrumented.
// Caller holds w.mu.
func (w *walWriter) syncFileLocked() error {
	if w.syncHist == nil {
		return w.f.Sync()
	}
	start := time.Now()
	err := w.f.Sync()
	w.syncHist.ObserveSince(start)
	return err
}

// openWALWriter opens dir (creating it) and starts a fresh segment after
// the highest existing one; existing segments are left for replay and
// later truncation by checkpoints.
func openWALWriter(dir string, policy FsyncPolicy, segMax int64) (*walWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := listWALSegments(dir)
	if err != nil {
		return nil, err
	}
	var next uint64 = 1
	var retained int64
	for _, seq := range seqs {
		if seq >= next {
			next = seq + 1
		}
		if fi, err := os.Stat(filepath.Join(dir, walSegmentName(seq))); err == nil {
			retained += fi.Size()
		}
	}
	w := &walWriter{dir: dir, policy: policy, segMax: segMax, seq: next, retained: retained, segments: len(seqs) + 1,
		dict: map[string]map[string]uint64{}}
	w.ccond = sync.NewCond(&w.cmu)
	if w.f, err = w.create(next); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *walWriter) create(seq uint64) (*os.File, error) {
	return os.OpenFile(filepath.Join(w.dir, walSegmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// encodeFramesLocked rebuilds w.buf with this batch's v2 frames: one
// walRecSeries frame per series the open segment has not defined yet,
// then one walRecSamples frame referencing dictionary ids. Newly
// assigned ids are recorded in w.newSeries so a failed write can take
// them back out of the dictionary. Caller holds w.mu.
func (w *walWriter) encodeFramesLocked(samples []Sample) {
	w.buf = w.buf[:0]
	w.newSeries = w.newSeries[:0]
	for i := range samples {
		s := &samples[i]
		byMetric := w.dict[s.Component]
		if byMetric == nil {
			byMetric = map[string]uint64{}
			w.dict[s.Component] = byMetric
		}
		if _, ok := byMetric[s.Metric]; !ok {
			id := w.nextID
			w.nextID++
			byMetric[s.Metric] = id
			w.buf = appendSeriesFrame(w.buf, id, s.Component, s.Metric)
			w.newSeries = append(w.newSeries, seriesIdent{component: s.Component, metric: s.Metric})
		}
	}
	w.buf = appendSamplesFrameV2(w.buf, samples, func(component, metric string) uint64 {
		return w.dict[component][metric]
	})
}

// rollbackDictLocked removes the ids the current append assigned: its
// series frames are not on disk (or are being truncated away), so later
// sample records must not reference them.
func (w *walWriter) rollbackDictLocked() {
	for _, ident := range w.newSeries {
		delete(w.dict[ident.component], ident.metric)
	}
	w.nextID -= uint64(len(w.newSeries))
	w.newSeries = w.newSeries[:0]
}

// append encodes and writes one batch as v2 frames (series definitions
// first, then the sample record), rolling the segment first when it is
// full. The write is buffered: durability comes from the background
// ticker (FsyncInterval), the OS (FsyncNever), or commitWait
// (FsyncAlways — the returned sequence number is the handle to wait
// on). On a write failure the frames are truncated back out and the
// dictionary rolled back, so the segment stays on a clean frame
// boundary and no id escapes that replay could not resolve.
func (w *walWriter) append(samples []Sample) (uint64, error) {
	if len(samples) == 0 {
		w.cmu.Lock()
		seq := w.appendSeq
		w.cmu.Unlock()
		return seq, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.syncErr != nil {
		// A background fsync failed since the last append: the writes it
		// covered may not be durable. Fail one write loudly instead of
		// letting the store keep acknowledging on a sinking log.
		err := w.syncErr
		w.syncErr = nil
		return 0, fmt.Errorf("tsdb: wal fsync (background): %w", err)
	}
	if err := w.clearPendingTruncLocked(); err != nil {
		return 0, err
	}
	var start time.Time
	if w.appendHist != nil {
		start = time.Now()
	}
	w.encodeFramesLocked(samples)
	if w.size > 0 && w.size+int64(len(w.buf)) > w.segMax {
		// The encode above may have defined series in the dictionary of
		// the segment we are about to leave; rollLocked resets the
		// dictionary, so re-encode against the fresh segment (where every
		// series of the batch is new and gets a definition frame).
		if err := w.rollLocked(); err != nil {
			return 0, err
		}
		w.encodeFramesLocked(samples)
	}
	if n, err := w.f.Write(w.buf); err != nil {
		// Roll the torn frames back so the next append starts on a clean
		// frame boundary: garbage mid-segment would otherwise stop replay
		// there and discard every later (even fsynced) record. If the
		// same sick disk also fails the cut, remember it: the next
		// append, roll, or close must retry before anything lands after
		// the phantom frames.
		if n > 0 && w.f.Truncate(w.size) != nil {
			w.pendingTrunc = true
		}
		w.rollbackDictLocked()
		return 0, fmt.Errorf("tsdb: wal append: %w", err)
	}
	w.dirty = true
	w.size += int64(len(w.buf))
	if w.bytesCounter != nil {
		w.bytesCounter.Add(uint64(len(w.buf)))
	}
	w.cmu.Lock()
	w.appendSeq++
	seq := w.appendSeq
	w.cmu.Unlock()
	if w.appendHist != nil {
		w.appendHist.ObserveSince(start)
	}
	return seq, nil
}

// commitWait blocks until the append identified by seq is on stable
// storage, or until the group fsync that covered it fails — the
// FsyncAlways durability gate. The first waiter that finds no fsync in
// flight becomes the leader: it snapshots the newest completed append,
// fsyncs once outside every lock, and that single fsync commits every
// append queued while the previous one was in flight (its own cohort).
// Followers just wait; each request still returns only once its own
// batch is durable, so the FsyncAlways contract per request is
// unchanged — only the fsync count scales with batches coalesced
// instead of with requests.
//
// On a leader fsync failure every cohort member gets the error. Their
// frames stay in the log and their samples stay in memory (unlike the
// old inline-fsync path there is no single record to truncate away — a
// cohort's frames interleave), so a failed FsyncAlways write means
// "durability unconfirmed", not "not stored": a crash before a later
// successful fsync loses it, a retry may duplicate it. Segment rolls
// fsync the old file before closing it, so a roll racing a leader also
// commits the cohort (the leader detects that and succeeds).
func (w *walWriter) commitWait(seq uint64) error {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	for {
		if w.syncedSeq >= seq {
			return nil
		}
		if w.failErr != nil && w.failSeq >= seq {
			return fmt.Errorf("tsdb: wal fsync: %w", w.failErr)
		}
		if !w.syncing {
			w.syncing = true
			target := w.appendSeq
			prev := w.syncedSeq
			groupHist, saved := w.groupHist, w.savedCounter
			w.cmu.Unlock()

			// Copy the file handle under mu (rolls replace it under mu),
			// then fsync outside every lock so appenders keep queueing
			// behind this flush — that queue is the next leader's cohort.
			w.mu.Lock()
			f := w.f
			syncHist := w.syncHist
			w.mu.Unlock()
			// A nil handle means close already ran; its final fsync either
			// advanced syncedSeq past target (checked below) or failed.
			err := os.ErrClosed
			if f != nil {
				if syncHist != nil {
					start := time.Now()
					err = f.Sync()
					syncHist.ObserveSince(start)
				} else {
					err = f.Sync()
				}
			}

			w.cmu.Lock()
			w.syncing = false
			switch {
			case err == nil:
				if target > w.syncedSeq {
					w.syncedSeq = target
				}
				if batches := target - prev; batches > 0 {
					if groupHist != nil {
						groupHist.Observe(float64(batches))
					}
					if saved != nil && batches > 1 {
						saved.Add(batches - 1)
					}
				}
			case w.syncedSeq >= target:
				// A concurrent roll fsynced and closed the file under us
				// (the usual error here is "file already closed"): the
				// roll's own fsync covered everything up to target, so
				// the cohort is durable and the error is noise.
			default:
				w.failSeq, w.failErr = target, err
			}
			w.ccond.Broadcast()
			continue
		}
		w.ccond.Wait()
	}
}

// clearPendingTruncLocked retries a previously failed rollback of a
// rejected record; until it succeeds the segment must not accept
// appends, roll, or seal on close — the phantom frame past w.size is
// CRC-valid and replay would resurrect it.
func (w *walWriter) clearPendingTruncLocked() error {
	if !w.pendingTrunc {
		return nil
	}
	if err := w.f.Truncate(w.size); err != nil {
		return fmt.Errorf("tsdb: wal: cutting rejected record: %w", err)
	}
	w.pendingTrunc = false
	return nil
}

// rollLocked closes the open segment (fsyncing it unless the policy is
// never) and starts the next one. The dictionary dies with the segment;
// the roll's fsync also commits every append queued on the group-commit
// side, so waiters whose records land in the rolled segment are
// released here rather than by a leader fsync of the new (empty) file.
func (w *walWriter) rollLocked() error {
	if err := w.clearPendingTruncLocked(); err != nil {
		return err
	}
	if w.policy != FsyncNever {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.cmu.Lock()
		if w.appendSeq > w.syncedSeq {
			w.syncedSeq = w.appendSeq
		}
		w.ccond.Broadcast()
		w.cmu.Unlock()
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.retained += w.size
	w.seq++
	w.size = 0
	w.dirty = false
	w.dict = map[string]map[string]uint64{}
	w.nextID = 0
	f, err := w.create(w.seq)
	if err != nil {
		return err
	}
	w.f = f
	w.segments++
	return nil
}

// rotate rolls to a fresh segment and returns its sequence number: every
// record appended before rotate lives in a segment numbered below the
// returned value, the cut checkpoints rely on. Callers must hold the
// owning shard's lock so no append can interleave with the cut.
func (w *walWriter) rotate() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.rollLocked(); err != nil {
		return 0, err
	}
	return w.seq, nil
}

// sync flushes unsynced appends to disk (the FsyncInterval ticker body).
// On failure the segment stays dirty — the next tick retries — and the
// error is kept for the next append to surface.
func (w *walWriter) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.dirty {
		return nil
	}
	if err := w.syncFileLocked(); err != nil {
		w.syncErr = err
		return err
	}
	w.dirty = false
	return nil
}

// removeSegmentsBelow deletes segments with sequence numbers < seq: their
// records are covered by a persisted block, so replaying them would only
// duplicate data.
func (w *walWriter) removeSegmentsBelow(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	seqs, err := listWALSegments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s >= seq {
			continue
		}
		path := filepath.Join(w.dir, walSegmentName(s))
		if fi, err := os.Stat(path); err == nil {
			w.retained -= fi.Size()
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		w.segments--
	}
	if w.retained < 0 {
		w.retained = 0
	}
	return nil
}

// sizeBytes reports the bytes held by all live segments.
func (w *walWriter) sizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.retained + w.size
}

// close fsyncs (unless the policy is never) and closes the open segment.
func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	// A phantom record that still cannot be cut out is surfaced, but the
	// file is closed either way: holding the fd open cannot fix the disk.
	err := w.clearPendingTruncLocked()
	if w.policy != FsyncNever {
		serr := w.f.Sync()
		if serr != nil && err == nil {
			err = serr
		}
		if serr == nil {
			// Release any group-commit waiters the final fsync covered.
			w.cmu.Lock()
			if w.appendSeq > w.syncedSeq {
				w.syncedSeq = w.appendSeq
			}
			w.ccond.Broadcast()
			w.cmu.Unlock()
		}
	}
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// pruneWALSegmentsBelow removes segments with sequence numbers < seq
// from a directory no writer has open yet (the recovery-time companion
// of walWriter.removeSegmentsBelow). A missing directory is fine.
func pruneWALSegmentsBelow(dir string, seq uint64) error {
	seqs, err := listWALSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, s := range seqs {
		if s < seq {
			if err := os.Remove(filepath.Join(dir, walSegmentName(s))); err != nil {
				return err
			}
		}
	}
	return nil
}

// walReplayStats summarizes one shard directory's replay.
type walReplayStats struct {
	Segments int
	Records  int
	Samples  int
	// Repaired is true when replay hit a truncated or corrupt record: the
	// segment was truncated at the last good offset and any later
	// segments were discarded, mirroring Prometheus's WAL repair.
	Repaired bool
}

// replayWAL reads every record of every segment in dir in order, calling
// apply per decoded batch. A short or corrupt record ends the replay:
// everything before it is applied, the bad tail is truncated away so the
// next open starts clean, and later segments (written after the
// corruption point, so of unknowable consistency) are removed.
func replayWAL(dir string, apply func([]Sample)) (walReplayStats, error) {
	var st walReplayStats
	seqs, err := listWALSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, err
	}
	for i, seq := range seqs {
		path := filepath.Join(dir, walSegmentName(seq))
		good, recs, samples, err := replaySegment(path, apply)
		st.Records += recs
		st.Samples += samples
		st.Segments++
		if err != nil {
			return st, err
		}
		if good >= 0 {
			// Truncate the bad tail and drop all later segments.
			st.Repaired = true
			if err := os.Truncate(path, good); err != nil {
				return st, err
			}
			for _, later := range seqs[i+1:] {
				if err := os.Remove(filepath.Join(dir, walSegmentName(later))); err != nil {
					return st, err
				}
			}
			return st, nil
		}
	}
	return st, nil
}

// replaySegment applies every whole, checksummed record of one segment.
// It returns goodOffset >= 0 when it stopped at a truncated or corrupt
// record (the offset where the segment should be cut), -1 when the
// segment replayed cleanly to the end. Only a short read (the file
// physically ends mid-record) counts as truncation; a real read error
// aborts the whole recovery instead of destructively "repairing" a
// segment that a transient disk hiccup merely failed to read.
// The decoder's dictionary starts empty per segment (dictionary
// lifetime is the segment) and grows as walRecSeries records stream by;
// v1 records decode standalone, so segments of either version — or a
// segment mixing both record forms — replay with the same loop.
// Records counts sample-bearing records only, matching appends.
func replaySegment(path string, apply func([]Sample)) (goodOffset int64, records, samples int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return -1, 0, 0, err
	}
	defer f.Close()
	var off int64
	var dec walDecoder
	hdr := make([]byte, walRecordHeader)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF {
				return -1, records, samples, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				return off, records, samples, nil // truncated header
			}
			return -1, records, samples, fmt.Errorf("tsdb: reading %s: %w", path, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(length) > 1<<30 { // implausible: corrupt length field
			return off, records, samples, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, records, samples, nil // truncated payload
			}
			return -1, records, samples, fmt.Errorf("tsdb: reading %s: %w", path, err)
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return off, records, samples, nil // corrupt payload
		}
		batch, err := dec.decodeWALRecord(payload)
		if err != nil {
			return off, records, samples, nil // framing ok, content corrupt
		}
		if len(batch) > 0 {
			apply(batch)
			records++
			samples += len(batch)
		}
		off += walRecordHeader + int64(length)
	}
}
