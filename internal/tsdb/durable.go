package tsdb

import (
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// DurabilityOptions configures the on-disk storage engine of a Sharded
// store opened with OpenSharded.
type DurabilityOptions struct {
	// Dir is the data directory root. It is created if missing; layout:
	//
	//	<dir>/wal/shard-NNNN/MMMMMMMM.wal   per-shard WAL segments
	//	<dir>/blocks/b-<seq>-<minT>-<maxT>/ immutable compressed blocks
	Dir string
	// Fsync is the WAL fsync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the cadence of the background fsync ticker under
	// the FsyncInterval policy (default 200ms).
	FsyncInterval time.Duration
	// FlushInterval is the cadence of the background flusher that
	// checkpoints in-memory data into blocks and prunes the WAL (default
	// 60s; negative disables the background flusher — checkpoints then
	// only happen via Checkpoint and Close).
	FlushInterval time.Duration
	// RetentionMS drops blocks whose newest point is more than this many
	// milliseconds of ingest time behind the store's high-water mark
	// (0 keeps everything). Retention is block-granular: a block is
	// removed only once every point in it is past the horizon.
	RetentionMS int64
	// SegmentBytes is the WAL segment roll threshold (default 8 MiB).
	SegmentBytes int64
	// CompactInterval is the cadence of the background compactor that
	// merges adjacent small blocks and builds downsampled companions
	// (default 5m; negative disables the background passes — compaction
	// then only happens via Sharded.Compact).
	CompactInterval time.Duration
	// CompactMaxBlockBytes caps a merged block's chunk bytes (default
	// 64 MiB): adjacent blocks are merged only while their combined
	// chunk data stays under it, so compaction converges instead of
	// rewriting its own output forever.
	CompactMaxBlockBytes int64
	// Downsample enables the 5m/1h downsampled companion files that
	// aggregated queries with coarse steps consume without touching
	// chunk data.
	Downsample bool
}

func (o DurabilityOptions) withDefaults() DurabilityOptions {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 200 * time.Millisecond
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = 60 * time.Second
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = 5 * time.Minute
	}
	if o.CompactMaxBlockBytes <= 0 {
		o.CompactMaxBlockBytes = 64 << 20
	}
	return o
}

// durable is the persistence side of a Sharded store: the block list,
// the checkpoint machinery, and the background tickers. The per-shard
// WALs live inside the shard DBs, whose locks order every append against
// the checkpoint cut.
type durable struct {
	opts      DurabilityOptions
	blocksDir string

	// mu guards blocks, flushing, and nextSeq. Checkpoints hold flushMu
	// for their whole run, so only one cut is in flight at a time.
	mu     sync.RWMutex
	blocks []*block
	// flushing holds the series structures stolen from the shards by an
	// in-flight checkpoint: still compressed, immutable, and visible to
	// queries while their block is being written.
	flushing map[string]*series
	nextSeq  uint64

	// cutMu excludes readers during the cut itself: a checkpoint holds
	// the write side from the first shard drain until the drained set is
	// published as the flushing overlay (and on the failure path, until
	// the points are back in memory), while Query/SeriesKeys hold the
	// read side across their memory+blocks reads. Without it a reader
	// racing the cut could catch a shard already drained but the overlay
	// not yet visible (missing points), or memory pre-cut and blocks
	// post-publish (duplicated points). Lock order: cutMu, then shard
	// locks, then mu.
	cutMu sync.RWMutex

	// basePoints is the persisted-points balance added to the shards'
	// cumulative counters by Stats: blocks recovered at open add their
	// points (prior lives' ingests the shard counters never saw), and
	// retention-removed blocks subtract theirs — going negative for
	// this-life blocks, offsetting the shard counters — so Points tracks
	// the observations the store actually holds.
	basePoints int

	// Checkpoint health, guarded by mu: ckptFailures counts failed
	// attempts since open, lastCkptErr holds the latest failure message
	// (cleared by the next success), and ckptFailing dedupes the log
	// lines to one per state change — the background flusher retries
	// every FlushInterval, and a persistent failure (disk full) must not
	// stay silent while WAL segments accumulate unboundedly.
	ckptFailures int
	lastCkptErr  string
	ckptFailing  bool

	// tel, when non-nil, receives checkpoint/retention/scan instruments;
	// set via setTelemetry (under mu) before the store serves traffic.
	tel *StoreTelemetry

	// staleWAL maps shard index -> directory for WAL dirs left over from
	// a previous life that ran with a higher shard count. Their records
	// were hash-routed into the current shards at open; the first
	// successful checkpoint seals that data into a block (recording the
	// dirs as fully covered in its meta, so a crash before the removal
	// below cannot replay them again) and deletes the directories.
	staleWAL map[int]string

	flushMu sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	closed  bool
}

// OpenSharded opens (or creates) a durable sharded store at opts.Dir:
// published blocks are indexed for reading, every WAL shard directory is
// replayed into memory — tolerating a truncated or corrupt tail, which
// is cut off Prometheus-style — and background fsync/flush tickers are
// started. A store that was killed without Close reopens to exactly the
// points covered by blocks plus fsynced WAL records.
//
// Replay routes records by the current key hash, not by directory
// position, so the shard count may change between lives (cmd/sieved
// defaults it to GOMAXPROCS, which varies across hosts): directories
// beyond the new count are replayed too and deleted once a checkpoint
// has sealed their data into a block.
//
// The returned store must be Closed to flush the final checkpoint; a
// crash without Close loses nothing that reached the WAL.
func OpenSharded(n int, opts DurabilityOptions) (*Sharded, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("tsdb: OpenSharded: empty data directory")
	}
	s := NewSharded(n)
	// NewSharded resolves n <= 0 to GOMAXPROCS (server.Options.Shards and
	// cmd/sieved's -shards both default to 0). Every directory comparison
	// below must use the resolved count: with the raw 0, each live shard
	// dir would look like leftovers from a bigger previous life and the
	// first checkpoint would delete them out from under their writers.
	n = s.NumShards()
	d := &durable{opts: opts, blocksDir: filepath.Join(opts.Dir, "blocks"), stop: make(chan struct{})}

	blocks, err := openBlocks(d.blocksDir)
	if err != nil {
		return nil, err
	}
	// Until the tickers start, this closes everything opened so far on
	// any failure path: nothing else can, since the store is never
	// returned.
	closeOnErr := func() {
		for _, b := range blocks {
			_ = b.close()
		}
		for _, sh := range s.shards {
			if sh.wal != nil {
				_ = sh.wal.close()
			}
		}
	}
	d.blocks = blocks
	d.nextSeq = 1
	for _, b := range blocks {
		d.basePoints += b.meta.Points
		if b.meta.Seq >= d.nextSeq {
			d.nextSeq = b.meta.Seq + 1
		}
	}

	walRoot := filepath.Join(opts.Dir, "wal")
	dirIdxs, err := listWALShardDirs(walRoot)
	if err != nil {
		closeOnErr()
		return nil, err
	}
	for i := 0; i < n; i++ {
		dirIdxs[i] = struct{}{} // current shards replay (and create) their dirs
	}
	replayOrder := make([]int, 0, len(dirIdxs))
	for i := range dirIdxs {
		replayOrder = append(replayOrder, i)
	}
	sort.Ints(replayOrder) // deterministic replay order across directories
	for _, i := range replayOrder {
		shardDir := walShardDir(walRoot, i)
		// Drop segments already covered by a published block: the cuts
		// recorded in block metas survive a crash between a block's
		// rename and its WAL pruning, so those records never replay on
		// top of the block data they duplicate. Cuts are per directory,
		// so they stay valid across shard-count changes.
		if cut := maxRecordedCut(blocks, i); cut > 0 {
			if err := pruneWALSegmentsBelow(shardDir, cut); err != nil {
				closeOnErr()
				return nil, fmt.Errorf("tsdb: pruning covered wal of shard %d: %w", i, err)
			}
		}
		if _, err := replayWAL(shardDir, s.routeReplay); err != nil {
			closeOnErr()
			return nil, fmt.Errorf("tsdb: replaying %s: %w", shardDir, err)
		}
		if i >= n {
			if d.staleWAL == nil {
				d.staleWAL = map[int]string{}
			}
			d.staleWAL[i] = shardDir
		}
	}
	for i, sh := range s.shards {
		w, err := openWALWriter(walShardDir(walRoot, i), opts.Fsync, opts.SegmentBytes)
		if err != nil {
			closeOnErr()
			return nil, fmt.Errorf("tsdb: opening wal for shard %d: %w", i, err)
		}
		sh.wal = w
	}
	s.dur = d

	if err := d.enforceRetention(s.MaxTime()); err != nil {
		closeOnErr()
		return nil, err
	}

	if opts.Fsync == FsyncInterval {
		d.wg.Add(1)
		go d.fsyncLoop(s)
	}
	if opts.FlushInterval > 0 {
		d.wg.Add(1)
		go d.flushLoop(s)
	}
	if opts.CompactInterval > 0 {
		d.wg.Add(1)
		go d.compactLoop()
	}
	return s, nil
}

// walShardDir formats the WAL directory of one shard index.
func walShardDir(walRoot string, i int) string {
	return filepath.Join(walRoot, fmt.Sprintf("shard-%04d", i))
}

// listWALShardDirs returns the set of shard indices that have WAL
// directories on disk (empty when the wal root does not exist yet).
func listWALShardDirs(walRoot string) (map[int]struct{}, error) {
	idxs := map[int]struct{}{}
	entries, err := os.ReadDir(walRoot)
	if err != nil {
		if os.IsNotExist(err) {
			return idxs, nil
		}
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var i int
		if _, err := fmt.Sscanf(e.Name(), "shard-%04d", &i); err == nil && i >= 0 {
			idxs[i] = struct{}{}
		}
	}
	return idxs, nil
}

// maxRecordedCut returns the highest WAL cut any published block
// recorded for the given shard (0 when none): segments below it are
// fully covered by block data. Retention-expired blocks are gone by the
// time this runs, but their cuts were superseded by every later block's.
func maxRecordedCut(blocks []*block, shard int) uint64 {
	key := fmt.Sprintf("%d", shard)
	var max uint64
	for _, b := range blocks {
		if c := b.meta.WALCuts[key]; c > max {
			max = c
		}
	}
	return max
}

// fsyncLoop flushes dirty WAL segments on a ticker (FsyncInterval policy).
func (d *durable) fsyncLoop(s *Sharded) {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			for _, sh := range s.shards {
				_ = sh.wal.sync()
			}
		}
	}
}

// flushLoop checkpoints on a ticker.
func (d *durable) flushLoop(s *Sharded) {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			// Failures are not dropped: checkpoint records them for Stats
			// and logs state changes, so a wedged flusher is observable.
			_ = s.Checkpoint()
		}
	}
}

// noteCheckpointResult updates the checkpoint-health counters and logs
// once per state change (failing -> recovered and back), never per tick.
func (d *durable) noteCheckpointResult(err error) {
	d.mu.Lock()
	failures := d.ckptFailures
	var failed, recovered bool
	if err != nil {
		d.ckptFailures++
		failures = d.ckptFailures
		d.lastCkptErr = err.Error()
		if !d.ckptFailing {
			d.ckptFailing = true
			failed = true
		}
	} else {
		d.lastCkptErr = ""
		if d.ckptFailing {
			d.ckptFailing = false
			recovered = true
		}
	}
	d.mu.Unlock()
	switch {
	case failed:
		slog.Error("checkpoint failing, WAL segments accumulating until it recovers",
			"retry_every", d.opts.FlushInterval, "failures", failures, "err", err)
	case recovered:
		slog.Info("checkpoint recovered", "failures_while_down", failures)
	}
}

// checkpointStats reports checkpoint health for Stats.
func (d *durable) checkpointStats() (failures int, lastErr string) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.ckptFailures, d.lastCkptErr
}

// checkpoint runs one checkpoint and records its outcome in the health
// counters, whoever triggered it (background flusher, Checkpoint caller,
// or shutdown).
func (d *durable) checkpoint(s *Sharded) error {
	tel := d.telemetry()
	var start time.Time
	if tel != nil {
		start = time.Now()
	}
	err := d.runCheckpoint(s)
	if tel != nil {
		tel.CheckpointSeconds.ObserveSince(start)
	}
	d.noteCheckpointResult(err)
	return err
}

// runCheckpoint seals all in-memory data into one immutable block and prunes
// the WAL segments the block now covers. The cut is consistent: each
// shard rotates its WAL and hands over its series structures under one
// lock hold, so every point is either in the stolen snapshot (and then
// the block) or in the post-rotation WAL — never both, never neither.
// Only the cheap handover happens under the reader-excluding cutMu;
// decoding and compressing the snapshot runs with readers live, served
// by the flushing overlay.
func (d *durable) runCheckpoint(s *Sharded) error {
	d.flushMu.Lock()
	defer d.flushMu.Unlock()

	snap := map[string]*series{}
	cuts := make([]uint64, len(s.shards))
	d.cutMu.Lock()
	for i, sh := range s.shards {
		cut, err := sh.cutSnapshot(snap)
		if err != nil {
			// Shards cut so far are already drained; put their series
			// back so queries keep seeing them (their WAL is untouched).
			s.reinsert(snap)
			d.cutMu.Unlock()
			return fmt.Errorf("tsdb: checkpoint: cutting shard %d: %w", i, err)
		}
		cuts[i] = cut
	}
	var points int
	for _, sr := range snap {
		points += sr.blockPts + len(sr.tail)
	}
	var seq uint64
	if points > 0 {
		d.mu.Lock()
		seq = d.nextSeq
		d.nextSeq++
		d.flushing = snap
		d.mu.Unlock()
	}
	// Readers may run again: the stolen series stay visible through the
	// flushing overlay while the block is built below.
	d.cutMu.Unlock()

	if points > 0 {
		cutsMeta := walCutsMeta(cuts)
		// Stale dirs are quiescent (no writer) and their records are in
		// this cut: mark every segment of theirs as covered, so recovery
		// prunes them even if we crash before the RemoveAll below.
		for idx := range d.staleWAL {
			cutsMeta[fmt.Sprintf("%d", idx)] = ^uint64(0)
		}
		blk, err := buildBlock(d.blocksDir, seq, cutsMeta, snap)
		if err != nil {
			// The stolen series vanished from memory at the cut; splice
			// them back so queries keep seeing them. Their WAL segments
			// were not pruned, so durability is unaffected. The swap from
			// overlay back into memory is atomic for readers: cutMu
			// excludes them until the reinsert is complete.
			d.cutMu.Lock()
			d.mu.Lock()
			d.flushing = nil
			d.mu.Unlock()
			s.reinsert(snap)
			d.cutMu.Unlock()
			return fmt.Errorf("tsdb: checkpoint: %w", err)
		}
		// Atomic swap from overlay to block under mu: a reader sees the
		// flushed points exactly once, from one of the two.
		d.mu.Lock()
		d.flushing = nil
		d.blocks = append(d.blocks, blk)
		if d.tel != nil {
			d.tel.CheckpointPoints.Add(uint64(points))
			d.tel.BlockPublishes.Inc()
		}
		d.mu.Unlock()
	}
	for i, sh := range s.shards {
		if err := sh.wal.removeSegmentsBelow(cuts[i]); err != nil {
			return fmt.Errorf("tsdb: checkpoint: pruning wal of shard %d: %w", i, err)
		}
	}
	// WAL directories inherited from a life with more shards: their
	// records were hash-routed into memory at open, so the cut above
	// captured them and the block (or, with nothing replayed, the empty
	// directories themselves) now covers everything they held.
	for _, dir := range d.staleWAL {
		if err := os.RemoveAll(dir); err != nil {
			return fmt.Errorf("tsdb: checkpoint: removing stale wal dir %s: %w", dir, err)
		}
	}
	d.staleWAL = nil
	return d.enforceRetention(s.MaxTime())
}

// buildBlock decodes a stolen snapshot into time-sorted points and
// persists them as one immutable block.
func buildBlock(blocksDir string, seq uint64, walCuts map[string]uint64, snap map[string]*series) (*block, error) {
	series := make(map[string][]Point, len(snap))
	for key, sr := range snap {
		pts, err := sr.pointsInRange(math.MinInt64, math.MaxInt64, nil)
		if err != nil {
			return nil, fmt.Errorf("decoding snapshot of %q: %w", key, err)
		}
		// Stable by time: preserves arrival order among equal timestamps,
		// so queries after a flush (and after recovery) return the same
		// bytes as before it.
		sort.SliceStable(pts, func(a, b int) bool { return pts[a].T < pts[b].T })
		series[key] = pts
	}
	blk, err := writeBlock(blocksDir, seq, walCuts, series)
	if err != nil {
		return nil, fmt.Errorf("writing block: %w", err)
	}
	return blk, nil
}

// walCutsMeta formats per-shard WAL cut sequences for a block's meta:
// shard index (as a string, JSON maps need string keys) -> first WAL
// segment NOT covered by the block. Recovery uses it to drop stale
// segments whose records the block already holds, even if the
// checkpoint that wrote it crashed before pruning them.
func walCutsMeta(cuts []uint64) map[string]uint64 {
	m := make(map[string]uint64, len(cuts))
	for i, c := range cuts {
		m[fmt.Sprintf("%d", i)] = c
	}
	return m
}

// enforceRetention removes blocks entirely past the retention horizon,
// measured in ingest time against the high-water mark (wall clock never
// enters: replayed historical data ages by its own timeline).
func (d *durable) enforceRetention(maxTime int64) error {
	if d.opts.RetentionMS <= 0 {
		return nil
	}
	horizon := maxTime - d.opts.RetentionMS
	d.mu.Lock()
	defer d.mu.Unlock()
	// Build the surviving list aside and publish it even when a removal
	// fails: an expired block leaves the list the moment its close is
	// attempted, because a half-closed block must never serve queries —
	// and filtering d.blocks in place would otherwise leave a
	// partially-overwritten list (duplicated survivors) on early return.
	// A directory whose removal fails leaks for the rest of this
	// process's life (the block left the list, so nothing here revisits
	// it); the next open re-indexes it and its retention pass sweeps it.
	kept := make([]*block, 0, len(d.blocks))
	var firstErr error
	for _, b := range d.blocks {
		if b.meta.MaxT >= horizon {
			kept = append(kept, b)
			continue
		}
		// Keep the Points balance honest: these observations are gone
		// from the store's view whether or not the files disappear.
		d.basePoints -= b.meta.Points
		if d.tel != nil {
			d.tel.RetentionDroppedBlocks.Inc()
		}
		if err := b.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := os.RemoveAll(b.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.blocks = kept
	return firstErr
}

// queryBlocks returns the persisted points for key with T in [from, to),
// including any stolen snapshot currently being written out by a
// checkpoint, plus whether the key exists anywhere on the persisted side.
func (d *durable) queryBlocks(key string, from, to int64) (pts []Point, known bool, err error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, b := range d.blocks {
		if !b.hasSeries(key) {
			continue
		}
		known = true
		if b.meta.MaxT < from || b.meta.MinT >= to {
			continue
		}
		got, err := b.query(key, from, to, d.tel)
		if err != nil {
			return nil, true, err
		}
		pts = append(pts, got...)
	}
	if sr, ok := d.flushing[key]; ok {
		known = true
		mid, err := sr.pointsInRange(from, to, d.tel)
		if err != nil {
			return nil, true, fmt.Errorf("tsdb: corrupt block in flushing %q: %w", key, err)
		}
		pts = append(pts, mid...)
	}
	return pts, known, nil
}

// scanBlocks streams the persisted points for key with T in [from, to)
// to sink in canonical order: blocks by sequence number, then any stolen
// snapshot a checkpoint is writing out. Blocks whose meta time range is
// disjoint are skipped without touching their chunk index.
func (d *durable) scanBlocks(key string, from, to int64, sink pointSink) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, b := range d.blocks {
		if b.meta.MaxT < from || b.meta.MinT >= to {
			continue
		}
		if !b.hasSeries(key) {
			continue
		}
		if err := b.scan(key, from, to, sink, d.tel); err != nil {
			return err
		}
	}
	if sr, ok := d.flushing[key]; ok {
		if err := sr.scanRange(from, to, sink, d.tel); err != nil {
			return fmt.Errorf("tsdb: corrupt block in flushing %q: %w", key, err)
		}
	}
	return nil
}

// scanBlocksAgg streams the persisted points for key with T in
// [q.From, q.To) into an aggregated query's accumulator, in the same
// canonical order as scanBlocks — but a block whose downsampled
// companion provably reproduces what decoding would feed is consumed
// from the companion's bucket summaries instead of its chunks (see
// scanDownsampled), which is how coarse-step queries over compacted
// history skip chunk reads entirely.
func (d *durable) scanBlocksAgg(key string, q RangeQuery, acc *aggregator) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, b := range d.blocks {
		if b.meta.MaxT < q.From || b.meta.MinT >= q.To {
			continue
		}
		if !b.hasSeries(key) {
			continue
		}
		if scanDownsampled(b, key, q, acc, d.tel) {
			continue
		}
		if err := b.scan(key, q.From, q.To, acc, d.tel); err != nil {
			return err
		}
	}
	if sr, ok := d.flushing[key]; ok {
		if err := sr.scanRange(q.From, q.To, acc, d.tel); err != nil {
			return fmt.Errorf("tsdb: corrupt block in flushing %q: %w", key, err)
		}
	}
	return nil
}

// addSeriesKeys unions the persisted series keys into set.
func (d *durable) addSeriesKeys(set map[string]struct{}) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, b := range d.blocks {
		for k := range b.index {
			set[k] = struct{}{}
		}
	}
	for k := range d.flushing {
		set[k] = struct{}{}
	}
}

// maxTime returns the newest block timestamp. The flushing overlay
// needs no scan: a shard's maxT is cumulative and survives the cut, so
// in-flight snapshots are already covered by the shard side of
// Sharded.MaxTime.
func (d *durable) maxTime() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var max int64
	for _, b := range d.blocks {
		if b.meta.MaxT > max {
			max = b.meta.MaxT
		}
	}
	return max
}

// diskStats reports persisted-side accounting: block bytes and the point
// base recovered from prior lives.
func (d *durable) diskStats() (blockBytes int64, basePoints, blockCount int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, b := range d.blocks {
		blockBytes += b.meta.ChunkBytes
	}
	return blockBytes, d.basePoints, len(d.blocks)
}

// shutdown stops the tickers, runs a final checkpoint so memory reaches
// disk in compressed form, and closes WALs and block files.
func (d *durable) shutdown(s *Sharded) error {
	d.flushMu.Lock()
	if d.closed {
		d.flushMu.Unlock()
		return nil
	}
	d.closed = true
	d.flushMu.Unlock()

	close(d.stop)
	d.wg.Wait()

	err := d.checkpoint(s)
	for _, sh := range s.shards {
		if cerr := sh.wal.close(); err == nil {
			err = cerr
		}
	}
	d.mu.Lock()
	for _, b := range d.blocks {
		if cerr := b.close(); err == nil {
			err = cerr
		}
	}
	d.mu.Unlock()
	return err
}
