// Package tsdb is the time-series store backing Sieve's monitoring
// plane, standing in for the paper's InfluxDB deployment. It speaks a
// line-protocol wire format (lineproto.go), compresses series with the
// Gorilla scheme — delta-of-delta timestamps, XOR-encoded values
// (gorilla.go, Pelkonen et al., VLDB 2015) — and meters the resources
// the paper's Table 3 reports: ingest CPU time, stored bytes, and
// network bytes in and out.
//
// Two stores implement the Store interface: DB, a single-mutex
// in-memory store, and Sharded, which FNV-hashes series keys onto N
// independent DB shards so concurrent writers contend per shard rather
// than on one lock. Stored points and query results are identical at
// any shard count; sharding changes scheduling, never data.
//
// # Durable storage engine
//
// A Sharded store opened with OpenSharded persists to disk with the
// WAL-plus-blocks design of production TSDBs (Prometheus, Facebook
// Gorilla):
//
//	<dir>/wal/shard-NNNN/MMMMMMMM.wal    per-shard write-ahead log
//	<dir>/blocks/b-<seq>-<minT>-<maxT>/  immutable compressed blocks
//	  meta.json                          time range, point/series counts
//	  index.json                         series key -> chunk offsets
//	  chunks.dat                         CRC-framed Gorilla chunks
//
// Every ingested batch is appended to the owning shard's WAL — a
// CRC-32C-framed, segmented log with a configurable fsync policy
// (always / interval / never) — before it becomes visible in memory. A
// background flusher periodically checkpoints: under each shard's lock
// it drains the in-memory points and rotates the WAL in one atomic cut,
// seals the drained data into an immutable block directory (written to
// a tmp- path, fsynced, then renamed), and deletes the WAL segments the
// block now covers. Retention drops whole blocks once every point in
// them is further behind the store's high-water mark than the
// configured horizon, bounding disk while the in-memory head stays
// bounded by the flush cadence.
//
// Recovery in OpenSharded is the reverse: published blocks are indexed
// for reading (leftover tmp- directories from a crashed flush are
// removed; their data is still in the WAL), then each shard's WAL is
// replayed in segment order. A torn or corrupt record ends replay
// Prometheus-style: the bad tail is truncated, later segments are
// discarded, and everything up to the last good record — i.e. all data
// up to the last fsynced entry — is served exactly as before the crash.
// Queries merge block chunks with in-memory points via a stable sort by
// timestamp, so a restarted store answers byte-identically to the store
// that was killed.
//
// # Query engine
//
// The read side (queryengine.go) serves matcher queries — QueryMatch
// and QueryRange over component/metric globs — with chunk-skipping
// reads and aggregation push-down. Every sealed chunk, in memory and in
// a block's index, carries its time range and a value summary: reads
// skip chunks disjoint from the query without decoding them, and
// order-independent aggregations (min/max/count/rate) consume whole
// in-bucket chunks from the summary alone, with no file read or decode.
// Chunks that must be decoded stream point by point through chunkIter
// into the consumer, so aggregated queries never materialize raw-point
// slices. Matched series fan out across an internal/parallel worker
// pool and merge in series-key order; results are byte-identical to a
// naive decode-everything reference at any shard count, parallelism,
// and durability state (queryengine_equiv_test.go, FuzzQueryRange).
package tsdb
