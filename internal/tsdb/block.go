package tsdb

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Block directory layout. A checkpoint writes one immutable directory per
// flushed time range:
//
//	blocks/
//	  b-00000001-0-119999/      b-<seq>-<minT>-<maxT>
//	    meta.json               block-level metadata (time range, counts)
//	    index.json              series key -> []chunkRef into chunks.dat
//	    chunks.dat              CRC-framed Gorilla chunks, back to back
//
// Directories are written under a tmp- prefix and renamed into place, so
// a crash mid-flush leaves only a tmp- directory that the next open
// removes; the data it would have held is still replayable from the WAL,
// whose segments are deleted only after the rename succeeds.

const (
	blockMetaName   = "meta.json"
	blockIndexName  = "index.json"
	blockChunksName = "chunks.dat"
	blockTmpPrefix  = "tmp-"
	// chunkHeader is [4B payload length][4B CRC-32C], as in the WAL.
	chunkHeader = 8
	// maxChunkPoints bounds points per Gorilla chunk so a narrow query
	// does not decompress an arbitrarily large run of one series.
	maxChunkPoints = 4096
)

// blockMeta is the persisted meta.json.
type blockMeta struct {
	Version    int    `json:"version"`
	Seq        uint64 `json:"seq"`
	MinT       int64  `json:"min_t"`
	MaxT       int64  `json:"max_t"`
	Points     int    `json:"points"`
	Series     int    `json:"series"`
	ChunkBytes int64  `json:"chunk_bytes"`
	// WALCuts records, per shard index, the first WAL segment NOT
	// covered by this block: the block holds every record of that
	// shard's lower-numbered segments. Recovery prunes those segments
	// even when the writing checkpoint crashed before deleting them.
	WALCuts map[string]uint64 `json:"wal_cuts,omitempty"`
	// MinSeq and MaxSeq are the checkpoint-sequence range this block
	// covers: a checkpoint-written block covers exactly its own Seq
	// (both fields then omitted, 0 meaning "use Seq"), while a block
	// written by compaction covers the contiguous range of the source
	// blocks it merged. Recovery uses range containment to recognize
	// source blocks a crashed compaction renamed over but did not get
	// to delete. Live blocks always hold pairwise-disjoint ranges.
	MinSeq uint64 `json:"min_seq,omitempty"`
	MaxSeq uint64 `json:"max_seq,omitempty"`
	// Level counts compaction generations: 0 for checkpoint-written
	// blocks, max(source levels)+1 for merged blocks.
	Level int `json:"level,omitempty"`
}

// minSeq/maxSeq resolve the covered checkpoint-sequence range,
// defaulting to Seq for blocks written before compaction existed.
func (m blockMeta) minSeq() uint64 {
	if m.MinSeq != 0 {
		return m.MinSeq
	}
	return m.Seq
}

func (m blockMeta) maxSeq() uint64 {
	if m.MaxSeq != 0 {
		return m.MaxSeq
	}
	return m.Seq
}

// chunkRef locates one Gorilla chunk of one series inside chunks.dat and
// summarizes its contents: the time range lets reads skip disjoint chunks
// without touching the file, and the value summary (version >= 2 blocks)
// lets order-independent aggregations consume a whole in-bucket chunk
// from the index alone — no read, no CRC, no decode.
type chunkRef struct {
	// Offset is the file offset of the chunk's 8-byte frame header.
	Offset int64 `json:"offset"`
	// Length is the framed payload length in bytes.
	Length int   `json:"length"`
	Count  int   `json:"count"`
	MinT   int64 `json:"min_t"`
	MaxT   int64 `json:"max_t"`
	// Value summary over the chunk's points, in storage order: MinV/MaxV
	// are the extrema, FirstV/LastV the first and last stored values
	// (the chunk is time-sorted, so they carry MinT and MaxT). Present
	// since block version 2; version-1 blocks decode instead.
	//
	// NoSummary marks chunks whose summary must not be consumed (they
	// decode instead): chunks containing NaN (order-dependent min/max —
	// see chunkAgg) and chunks with any non-finite summary value, which
	// encoding/json cannot marshal — those persist zeroed placeholders
	// alongside the flag so the index stays writable.
	MinV      float64 `json:"min_v"`
	MaxV      float64 `json:"max_v"`
	FirstV    float64 `json:"first_v"`
	LastV     float64 `json:"last_v"`
	NoSummary bool    `json:"no_summary,omitempty"`
}

// agg converts the persisted ref into the engine's chunk summary form.
func (r chunkRef) agg() chunkAgg {
	return chunkAgg{
		Count: r.Count,
		MinT:  r.MinT, MaxT: r.MaxT,
		MinV: r.MinV, MaxV: r.MaxV,
		FirstV: r.FirstV, LastV: r.LastV,
		NoSummary: r.NoSummary,
	}
}

// blockIndex is the persisted index.json.
type blockIndex struct {
	Series map[string][]chunkRef `json:"series"`
}

// dsRef is one downsampled bucket of one series in a companion file:
// the exact per-bucket facts the aggregation push-down consumes
// (count/min/max/first/last with the bucket's actual first and last
// point timestamps) plus the sequential-fold sum. Unlike chunkRef it
// references no chunk bytes — a downsampled bucket is consumed from the
// summary alone or not at all (see scanDownsampled).
type dsRef struct {
	Count int   `json:"count"`
	MinT  int64 `json:"min_t"`
	MaxT  int64 `json:"max_t"`
	// MinV/MaxV are the extrema, FirstV/LastV the first and last stored
	// values in storage order (carrying MinT and MaxT), SumV the sum
	// folded in storage order. NoSummary marks buckets that must never
	// be consumed (the reader falls back to the raw block): buckets
	// containing NaN, or any non-finite value JSON cannot carry — those
	// persist zeroed placeholders alongside the flag.
	MinV      float64 `json:"min_v"`
	MaxV      float64 `json:"max_v"`
	FirstV    float64 `json:"first_v"`
	LastV     float64 `json:"last_v"`
	SumV      float64 `json:"sum_v"`
	NoSummary bool    `json:"no_summary,omitempty"`
}

// agg converts the persisted bucket into the engine's chunk summary
// form, so the existing aggregator merge rules apply unchanged.
func (r dsRef) agg() chunkAgg {
	return chunkAgg{
		Count: r.Count,
		MinT:  r.MinT, MaxT: r.MaxT,
		MinV: r.MinV, MaxV: r.MaxV,
		FirstV: r.FirstV, LastV: r.LastV,
		NoSummary: r.NoSummary,
	}
}

// dsIndex is the persisted ds-<resolution>.json companion file: one
// bucket list per series, buckets sorted by time and R-aligned on the
// absolute grid (bucket k covers [k*R, (k+1)*R)).
type dsIndex struct {
	Version      int                `json:"version"`
	ResolutionMS int64              `json:"resolution_ms"`
	Series       map[string][]dsRef `json:"series"`
}

// blockVersion is the version written by writeBlock. Version 2 added the
// per-chunk value summaries that aggregation push-down reads; chunks of
// older blocks are decoded instead (hasAggs gates it).
const blockVersion = 2

// block is one opened immutable block: meta and index in memory, chunk
// payloads read on demand.
type block struct {
	dir   string
	meta  blockMeta
	index map[string][]chunkRef
	f     *os.File // chunks.dat, kept open for ReadAt
	// hasAggs reports whether the index's chunk refs carry trustworthy
	// value summaries (blocks written at version >= 2).
	hasAggs bool
	// ds holds the loaded downsampled companions by resolution (ms).
	// The chunk data stays raw-only: a companion is an alternative
	// summary-level view of the same points, attached after publish
	// (atomically, via tmp+rename inside the block directory) and
	// deleted with the directory. Mutated only under the durable
	// engine's mu (attachDownsampled) or before the block is shared.
	ds map[int64]map[string][]dsRef
}

// isFinite reports whether f is neither NaN nor infinite.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// blockDirName formats a block directory name; the time range is in the
// name purely for operators, meta.json is authoritative.
func blockDirName(seq uint64, minT, maxT int64) string {
	return fmt.Sprintf("b-%08d-%d-%d", seq, minT, maxT)
}

// writeBlock persists series -> time-sorted points as one immutable block
// under blocksDir and returns it opened for reading. walCuts records the
// per-shard WAL coverage in the block's meta (nil is fine for tests).
// The write is atomic: everything goes to a tmp- directory whose files
// and entries are fsynced before the rename publishes it.
func writeBlock(blocksDir string, seq uint64, walCuts map[string]uint64, series map[string][]Point) (*block, error) {
	parts := make(map[string][][]Point, len(series))
	for k, pts := range series {
		if len(pts) > 0 {
			parts[k] = [][]Point{pts}
		}
	}
	return writeBlockParts(blocksDir, blockMeta{Seq: seq, WALCuts: walCuts}, parts)
}

// writeBlockParts is the general block writer: each series is given as a
// list of segments, each individually time-sorted, chunked separately so
// no chunk straddles a segment boundary. A checkpoint passes one sorted
// segment per series; compaction passes one segment per monotone run of
// the source-order concatenation, preserving the exact point order a
// scan of the source blocks would produce (chunks only require internal
// time order — chunk-level skip checks handle overlapping chunk ranges).
// meta carries the caller's identity fields (Seq, WALCuts, MinSeq,
// MaxSeq, Level); the content fields are computed here.
func writeBlockParts(blocksDir string, meta blockMeta, series map[string][][]Point) (*block, error) {
	keys := make([]string, 0, len(series))
	for k, segs := range series {
		for _, seg := range segs {
			if len(seg) > 0 {
				keys = append(keys, k)
				break
			}
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("tsdb: writeBlock: no points")
	}
	sort.Strings(keys)

	var chunks []byte
	index := blockIndex{Series: make(map[string][]chunkRef, len(keys))}
	meta.Version = blockVersion
	meta.MinT, meta.MaxT = int64(1)<<62-1, -int64(1)<<62
	meta.Points, meta.Series, meta.ChunkBytes = 0, len(keys), 0
	for _, key := range keys {
		for _, pts := range series[key] {
			for start := 0; start < len(pts); start += maxChunkPoints {
				end := start + maxChunkPoints
				if end > len(pts) {
					end = len(pts)
				}
				part := pts[start:end]
				payload, err := CompressBlock(part)
				if err != nil {
					return nil, fmt.Errorf("tsdb: writeBlock %q: %w", key, err)
				}
				sum := summarizeChunk(part)
				ref := chunkRef{
					Offset: int64(len(chunks)),
					Length: len(payload),
					Count:  len(part),
					MinT:   part[0].T,
					MaxT:   part[len(part)-1].T,
					MinV:   sum.MinV,
					MaxV:   sum.MaxV,
					FirstV: sum.FirstV,
					LastV:  sum.LastV,
				}
				if sum.NoSummary ||
					!isFinite(ref.MinV) || !isFinite(ref.MaxV) ||
					!isFinite(ref.FirstV) || !isFinite(ref.LastV) {
					// JSON cannot carry NaN/Inf; zero the placeholders and
					// flag the ref so they are never consumed.
					ref.NoSummary = true
					ref.MinV, ref.MaxV, ref.FirstV, ref.LastV = 0, 0, 0, 0
				}
				var hdr [chunkHeader]byte
				binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
				binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
				chunks = append(chunks, hdr[:]...)
				chunks = append(chunks, payload...)
				index.Series[key] = append(index.Series[key], ref)
				meta.Points += ref.Count
				if ref.MinT < meta.MinT {
					meta.MinT = ref.MinT
				}
				if ref.MaxT > meta.MaxT {
					meta.MaxT = ref.MaxT
				}
			}
		}
	}
	meta.ChunkBytes = int64(len(chunks))

	tmp := filepath.Join(blocksDir, blockTmpPrefix+blockDirName(meta.Seq, meta.MinT, meta.MaxT))
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, err
	}
	if err := writeFileSync(filepath.Join(tmp, blockChunksName), chunks); err != nil {
		return nil, err
	}
	idxData, err := json.MarshalIndent(&index, "", " ")
	if err != nil {
		return nil, err
	}
	if err := writeFileSync(filepath.Join(tmp, blockIndexName), idxData); err != nil {
		return nil, err
	}
	metaData, err := json.MarshalIndent(&meta, "", " ")
	if err != nil {
		return nil, err
	}
	if err := writeFileSync(filepath.Join(tmp, blockMetaName), metaData); err != nil {
		return nil, err
	}
	// fsync the tmp directory itself: the rename below must not publish
	// a directory whose entries could vanish on power loss — the WAL
	// segments covering this data are deleted once the block is live.
	if err := syncDir(tmp); err != nil {
		return nil, err
	}
	final := filepath.Join(blocksDir, blockDirName(meta.Seq, meta.MinT, meta.MaxT))
	if err := os.Rename(tmp, final); err != nil {
		return nil, err
	}
	if err := syncDir(blocksDir); err != nil {
		return nil, err
	}
	return openBlock(final)
}

// writeFileSync writes data and fsyncs before closing, so the rename that
// publishes the block never exposes half-written files.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// openBlock loads a block's meta and index, opens its chunks file, loads
// any downsampled companion files, and removes tmp- leftovers from a
// companion write that crashed before its rename.
func openBlock(dir string) (*block, error) {
	metaData, err := os.ReadFile(filepath.Join(dir, blockMetaName))
	if err != nil {
		return nil, err
	}
	var meta blockMeta
	if err := json.Unmarshal(metaData, &meta); err != nil {
		return nil, fmt.Errorf("tsdb: block %s: bad meta: %w", dir, err)
	}
	idxData, err := os.ReadFile(filepath.Join(dir, blockIndexName))
	if err != nil {
		return nil, err
	}
	var idx blockIndex
	if err := json.Unmarshal(idxData, &idx); err != nil {
		return nil, fmt.Errorf("tsdb: block %s: bad index: %w", dir, err)
	}
	f, err := os.Open(filepath.Join(dir, blockChunksName))
	if err != nil {
		return nil, err
	}
	b := &block{dir: dir, meta: meta, index: idx.Series, f: f, hasAggs: meta.Version >= 2}
	if err := b.loadDownsampled(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return b, nil
}

// loadDownsampled loads every ds-<resolution>.json companion in the
// block directory into b.ds and deletes tmp- leftovers (a companion
// write that crashed before its rename; the raw chunks still cover the
// data, so nothing is lost).
func (b *block) loadDownsampled() error {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, blockTmpPrefix) {
			if err := os.Remove(filepath.Join(b.dir, name)); err != nil {
				return err
			}
			continue
		}
		res, ok := parseDownsampledName(name)
		if !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(b.dir, name))
		if err != nil {
			return err
		}
		var idx dsIndex
		if err := json.Unmarshal(data, &idx); err != nil {
			return fmt.Errorf("tsdb: block %s: bad companion %s: %w", b.dir, name, err)
		}
		if idx.ResolutionMS != res || idx.ResolutionMS <= 0 {
			return fmt.Errorf("tsdb: block %s: companion %s resolution mismatch (%d)", b.dir, name, idx.ResolutionMS)
		}
		if b.ds == nil {
			b.ds = map[int64]map[string][]dsRef{}
		}
		b.ds[res] = idx.Series
	}
	return nil
}

// covers reports whether b's checkpoint-sequence range contains other's:
// b is (or descends from) a compaction whose sources included every
// checkpoint other covers, so other is a stale leftover the compaction
// did not get to delete.
func (b *block) covers(other *block) bool {
	return b != other &&
		b.meta.minSeq() <= other.meta.minSeq() &&
		other.meta.maxSeq() <= b.meta.maxSeq()
}

// readChunk reads and CRC-checks one chunk's payload.
func (b *block) readChunk(key string, ref chunkRef) ([]byte, error) {
	buf := make([]byte, chunkHeader+ref.Length)
	if _, err := b.f.ReadAt(buf, ref.Offset); err != nil {
		return nil, fmt.Errorf("tsdb: block %s: reading chunk of %q: %w", b.dir, key, err)
	}
	payload := buf[chunkHeader:]
	if got := binary.LittleEndian.Uint32(buf[0:4]); int(got) != ref.Length {
		return nil, fmt.Errorf("tsdb: block %s: chunk length mismatch for %q", b.dir, key)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, fmt.Errorf("tsdb: block %s: chunk CRC mismatch for %q", b.dir, key)
	}
	return payload, nil
}

// scan streams the block's points for key with T in [from, to) to sink
// in chunk order. Chunks disjoint from the range are skipped from the
// index alone; chunks that lie entirely inside the range are offered to
// the sink as a summary first (version >= 2 blocks), so an aggregating
// sink consumes them without a file read; the rest are read, CRC-checked,
// and streamed through the chunk iterator.
func (b *block) scan(key string, from, to int64, sink pointSink, tel *StoreTelemetry) error {
	var skipped, summarized, decoded int
	for _, ref := range b.index[key] {
		if ref.MaxT < from || ref.MinT >= to {
			skipped++
			continue
		}
		if b.hasAggs && ref.MinT >= from && ref.MaxT < to && sink.chunk(ref.agg()) {
			summarized++
			continue
		}
		decoded++
		payload, err := b.readChunk(key, ref)
		if err != nil {
			return err
		}
		if err := scanChunk(payload, from, to, sink); err != nil {
			return fmt.Errorf("tsdb: block %s: corrupt chunk for %q: %w", b.dir, key, err)
		}
	}
	tel.noteChunks(skipped, summarized, decoded)
	return nil
}

// query returns the block's points for key with T in [from, to), reading
// and CRC-checking only the chunks whose time range overlaps.
func (b *block) query(key string, from, to int64, tel *StoreTelemetry) ([]Point, error) {
	var out rawSink
	if err := b.scan(key, from, to, &out, tel); err != nil {
		return nil, err
	}
	return out.pts, nil
}

// hasSeries reports whether the block indexes key.
func (b *block) hasSeries(key string) bool {
	_, ok := b.index[key]
	return ok
}

// close releases the chunks file.
func (b *block) close() error {
	if b.f == nil {
		return nil
	}
	err := b.f.Close()
	b.f = nil
	return err
}

// downsampledName formats the companion file name of one resolution.
func downsampledName(resMS int64) string {
	return fmt.Sprintf("ds-%d.json", resMS)
}

// parseDownsampledName inverts downsampledName.
func parseDownsampledName(name string) (resMS int64, ok bool) {
	if !strings.HasPrefix(name, "ds-") || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	if _, err := fmt.Sscanf(name, "ds-%d.json", &resMS); err != nil || resMS <= 0 {
		return 0, false
	}
	return resMS, true
}

// openBlocks loads every published block under blocksDir (ascending by
// covered checkpoint-sequence range), removes leftover tmp- directories
// from flushes or compactions that crashed before their rename, and
// removes published blocks that a live merged block supersedes — the
// crash window between a compaction's rename and its source deletion,
// which must not double-count (or double-serve) the merged points.
func openBlocks(blocksDir string) ([]*block, error) {
	if err := os.MkdirAll(blocksDir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(blocksDir)
	if err != nil {
		return nil, err
	}
	var blocks []*block
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, blockTmpPrefix) {
			// Crash mid-flush or mid-compaction: the WAL (or the source
			// blocks) still covers this data.
			if err := os.RemoveAll(filepath.Join(blocksDir, name)); err != nil {
				return nil, err
			}
			continue
		}
		if !strings.HasPrefix(name, "b-") {
			continue
		}
		b, err := openBlock(filepath.Join(blocksDir, name))
		if err != nil {
			return nil, fmt.Errorf("tsdb: opening block %s: %w", name, err)
		}
		blocks = append(blocks, b)
	}
	blocks, err = dropSupersededBlocks(blocks)
	if err != nil {
		return nil, err
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].meta.minSeq() < blocks[j].meta.minSeq() })
	return blocks, nil
}

// dropSupersededBlocks closes and deletes every block whose covered
// checkpoint-sequence range lies inside another live block's range:
// those are compaction sources whose deletion a crash interrupted. The
// survivor holds the identical points, so removal is the completion of
// the interrupted compaction, not data loss. Among blocks covering the
// same range (never produced by a healthy sequence of compactions, but
// defended against), the higher compaction level, then the higher
// sequence number, survives.
func dropSupersededBlocks(blocks []*block) ([]*block, error) {
	kept := blocks[:0]
	for _, b := range blocks {
		super := false
		for _, other := range blocks {
			if !other.covers(b) {
				continue
			}
			if b.covers(other) {
				// Identical ranges: deterministic tie-break.
				if other.meta.Level < b.meta.Level ||
					(other.meta.Level == b.meta.Level && other.meta.Seq < b.meta.Seq) {
					continue
				}
			}
			super = true
			break
		}
		if !super {
			kept = append(kept, b)
			continue
		}
		if err := b.close(); err != nil {
			return nil, err
		}
		if err := os.RemoveAll(b.dir); err != nil {
			return nil, err
		}
	}
	return kept, nil
}
