package tsdb

// Unit and fuzz coverage for the compaction internals: bucket
// assignment at extreme timestamps, the downsample fold against a naive
// from-scratch reference, run planning, companion-file naming, and the
// resolution-selection / raw-fallback decision observed through the
// DownsampledBucketsRead telemetry counter.

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"
	"testing"
)

// bigFloorDiv is the overflow-proof reference for bucket assignment:
// big.Int division is Euclidean, which for a positive divisor equals
// floor division, and cannot overflow at any int64 input.
func bigFloorDiv(t, d int64) int64 {
	var q big.Int
	q.Div(big.NewInt(t), big.NewInt(d))
	return q.Int64()
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ t, d int64 }{
		{0, 1}, {7, 3}, {-7, 3}, {6, 3}, {-6, 3}, {1, 300000},
		{-1, 300000}, {299999, 300000}, {300000, 300000}, {-300001, 300000},
		{math.MaxInt64, 300000}, {math.MinInt64, 300000},
		{math.MaxInt64, 3600000}, {math.MinInt64, 3600000},
		{math.MaxInt64, 1}, {math.MinInt64, 1},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		d := []int64{300000, 3600000}[rng.Intn(2)]
		cases = append(cases, struct{ t, d int64 }{rng.Int63() - rng.Int63(), d})
	}
	for _, c := range cases {
		if got, want := floorDiv(c.t, c.d), bigFloorDiv(c.t, c.d); got != want {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c.t, c.d, got, want)
		}
	}
}

// refDownsampleSeries recomputes every per-bucket fact from scratch —
// group points by big.Int bucket assignment, then derive each fact by
// an independent formulation (scan for the extremal timestamps, pick
// first/last carriers by position, comparison-fold the values) — rather
// than mirroring downsampleSeries' single-pass displacement rules.
func refDownsampleSeries(pts []Point, resMS int64) []dsRef {
	groups := map[int64][]Point{}
	for _, p := range pts {
		idx := bigFloorDiv(p.T, resMS)
		groups[idx] = append(groups[idx], p)
	}
	idxs := make([]int64, 0, len(groups))
	for idx := range groups {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	out := make([]dsRef, 0, len(idxs))
	for _, idx := range idxs {
		g := groups[idx]
		r := dsRef{Count: len(g), MinT: g[0].T, MaxT: g[0].T}
		for _, p := range g {
			if p.T < r.MinT {
				r.MinT = p.T
			}
			if p.T > r.MaxT {
				r.MaxT = p.T
			}
		}
		for _, p := range g { // first point carrying the minimum timestamp
			if p.T == r.MinT {
				r.FirstV = p.V
				break
			}
		}
		for _, p := range g { // last point carrying the maximum timestamp
			if p.T == r.MaxT {
				r.LastV = p.V
			}
		}
		r.MinV, r.MaxV = g[0].V, g[0].V
		for _, p := range g {
			if p.V != p.V {
				r.NoSummary = true
			}
			if p.V < r.MinV {
				r.MinV = p.V
			}
			if p.V > r.MaxV {
				r.MaxV = p.V
			}
		}
		for _, p := range g {
			r.SumV += p.V
		}
		if r.NoSummary ||
			!isFinite(r.MinV) || !isFinite(r.MaxV) ||
			!isFinite(r.FirstV) || !isFinite(r.LastV) || !isFinite(r.SumV) {
			r.NoSummary = true
			r.MinV, r.MaxV, r.FirstV, r.LastV, r.SumV = 0, 0, 0, 0, 0
		}
		out = append(out, r)
	}
	return out
}

func dsRefsEqual(a, b dsRef) bool {
	return a.Count == b.Count && a.MinT == b.MinT && a.MaxT == b.MaxT &&
		a.NoSummary == b.NoSummary &&
		math.Float64bits(a.MinV) == math.Float64bits(b.MinV) &&
		math.Float64bits(a.MaxV) == math.Float64bits(b.MaxV) &&
		math.Float64bits(a.FirstV) == math.Float64bits(b.FirstV) &&
		math.Float64bits(a.LastV) == math.Float64bits(b.LastV) &&
		math.Float64bits(a.SumV) == math.Float64bits(b.SumV)
}

// FuzzDownsampleBuckets pins the bucket math against the naive
// reference across feed orders, resolutions, NaN/Inf/huge values, and
// timestamps pushed to the int64 extremes where a multiply-based bucket
// assignment would overflow.
func FuzzDownsampleBuckets(f *testing.F) {
	f.Add(int64(1), uint16(64), uint8(0), uint8(0))
	f.Add(int64(2), uint16(300), uint8(1), uint8(1))
	f.Add(int64(3), uint16(17), uint8(0), uint8(2))
	f.Add(int64(4), uint16(17), uint8(1), uint8(3))
	f.Add(int64(5), uint16(512), uint8(0), uint8(1))
	f.Add(int64(6), uint16(1), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, resIdx, mode uint8) {
		count := int(n)%1024 + 1
		resMS := downsampleResolutions[int(resIdx)%len(downsampleResolutions)]
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, count)
		for i := range pts {
			var ts int64
			switch mode % 4 {
			case 0: // dense positive: many points per bucket
				ts = rng.Int63n(6 * 3600 * 1000)
			case 1: // scattered across the full signed range
				ts = rng.Int63() - rng.Int63()
			case 2: // hugging MaxInt64: k*resMS overflows, floor must not
				ts = math.MaxInt64 - rng.Int63n(4*resMS)
			case 3: // hugging MinInt64: truncation rounds the wrong way
				ts = math.MinInt64 + rng.Int63n(4*resMS)
			}
			v := rng.NormFloat64() * 1000
			switch rng.Intn(16) {
			case 0:
				v = math.NaN()
			case 1:
				v = math.Inf(1)
			case 2:
				v = -math.MaxFloat64 // sum overflow → non-finite fact
			}
			pts[i] = Point{T: ts, V: v}
		}
		got := downsampleSeries(pts, resMS)
		want := refDownsampleSeries(pts, resMS)
		if len(got) != len(want) {
			t.Fatalf("res=%d: %d buckets, reference has %d", resMS, len(got), len(want))
		}
		total := 0
		for i := range got {
			if !dsRefsEqual(got[i], want[i]) {
				t.Fatalf("res=%d bucket %d:\n got %+v\nwant %+v", resMS, i, got[i], want[i])
			}
			total += got[i].Count
			if bigFloorDiv(got[i].MinT, resMS) != bigFloorDiv(got[i].MaxT, resMS) {
				t.Fatalf("res=%d bucket %d spans grid cells: [%d, %d]", resMS, i, got[i].MinT, got[i].MaxT)
			}
			if i > 0 && bigFloorDiv(got[i-1].MaxT, resMS) >= bigFloorDiv(got[i].MinT, resMS) {
				t.Fatalf("res=%d buckets %d/%d out of order or overlapping", resMS, i-1, i)
			}
		}
		if total != count {
			t.Fatalf("res=%d: buckets hold %d points, fed %d", resMS, total, count)
		}
	})
}

func TestPlanCompactRuns(t *testing.T) {
	mk := func(sizes ...int64) []*block {
		bs := make([]*block, len(sizes))
		for i, sz := range sizes {
			bs[i] = &block{meta: blockMeta{Seq: uint64(i + 1), ChunkBytes: sz}}
		}
		return bs
	}
	// seqs flattens planned runs into source Seq lists for comparison.
	seqs := func(runs [][]*block) [][]uint64 {
		var out [][]uint64
		for _, run := range runs {
			var ids []uint64
			for _, b := range run {
				ids = append(ids, b.meta.Seq)
			}
			out = append(out, ids)
		}
		return out
	}
	cases := []struct {
		name     string
		blocks   []*block
		maxBytes int64
		want     [][]uint64
	}{
		{"empty", nil, 100, nil},
		{"single block never merges", mk(10), 100, nil},
		{"all fit one run", mk(10, 10, 10), 100, [][]uint64{{1, 2, 3}}},
		{"cap splits run, lone tail dropped", mk(10, 10, 10), 25, [][]uint64{{1, 2}}},
		{"oversized block ends runs", mk(10, 200, 10, 10), 100, [][]uint64{{3, 4}}},
		{"block exactly at cap stands alone", mk(100, 10, 10), 100, [][]uint64{{2, 3}}},
		{"two full runs", mk(40, 40, 40, 40), 80, [][]uint64{{1, 2}, {3, 4}}},
		{"half-cap neighbors cannot pair", mk(60, 60, 60), 100, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := seqs(planCompactRuns(c.blocks, c.maxBytes))
			if fmt.Sprint(got) != fmt.Sprint(c.want) {
				t.Fatalf("planCompactRuns = %v, want %v", got, c.want)
			}
		})
	}
}

func TestDownsampledNameRoundtrip(t *testing.T) {
	for _, res := range downsampleResolutions {
		name := downsampledName(res)
		got, ok := parseDownsampledName(name)
		if !ok || got != res {
			t.Fatalf("parseDownsampledName(%q) = %d, %v; want %d, true", name, got, ok, res)
		}
	}
	for _, bad := range []string{"meta.json", "chunks.dat", "ds-.json", "ds-abc.json", "ds-300000.txt"} {
		if _, ok := parseDownsampledName(bad); ok {
			t.Fatalf("parseDownsampledName(%q) accepted a non-companion name", bad)
		}
	}
}

// TestDownsampledResolutionSelection drives real queries through a
// compacted store and asserts — via the DownsampledBucketsRead counter —
// exactly which queries answer from summaries: coarse aligned
// min/max/count/rate steps do, sub-resolution steps, unaligned From, and
// sum/avg never do. Every answer is also checked against the naive
// reference, so the counter cannot certify a wrong fast path.
func TestDownsampledResolutionSelection(t *testing.T) {
	// 4 hours at 15s ticks: 48 full 5m buckets per hour, 4 full 1h buckets.
	samples := compactSamples(7, 1, 2, 960, 15_000, false)
	span := maxSampleT(samples) + 1

	s, tel := openCompactable(t, t.TempDir(), 1, FsyncNever, 0)
	defer s.Close()
	const rounds = 6
	per := len(samples) / rounds
	for r := 0; r < rounds; r++ {
		if err := s.WriteSamples(samples[r*per:(r+1)*per], 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	run := func(q RangeQuery) uint64 {
		t.Helper()
		before := tel.DownsampledBucketsRead.Value()
		assertBitIdentical(t, "resolution selection", q, engineQuery(t, s, q), refQueryRange(t, s, q))
		return tel.DownsampledBucketsRead.Value() - before
	}
	base := RangeQuery{Component: "*", Metric: "*", From: 0, To: span}

	sub := base
	sub.Agg, sub.StepMS = AggMax, 60_000 // 1m: divides neither resolution
	if n := run(sub); n != 0 {
		t.Errorf("1m step consumed %d downsampled buckets, want 0", n)
	}

	fine := base
	fine.Agg, fine.StepMS = AggMax, 300_000
	fineN := run(fine)
	if fineN == 0 {
		t.Error("aligned 5m max query consumed no downsampled buckets")
	}

	coarse := base
	coarse.Agg, coarse.StepMS = AggCount, 3_600_000
	coarseN := run(coarse)
	if coarseN == 0 {
		t.Error("aligned 1h count query consumed no downsampled buckets")
	}
	if coarseN >= fineN {
		t.Errorf("1h query read %d buckets, 5m read %d; coarser resolution should read fewer", coarseN, fineN)
	}

	for _, agg := range []Agg{AggSum, AggAvg} {
		q := base
		q.Agg, q.StepMS = agg, 300_000
		if n := run(q); n != 0 {
			t.Errorf("agg %v consumed %d downsampled buckets, want 0 (decodes raw for bit-exactness)", agg, n)
		}
	}

	unaligned := base
	unaligned.Agg, unaligned.StepMS = AggMax, 300_000
	unaligned.From, unaligned.To = 137, span+137 // grid buckets straddle query buckets
	if n := run(unaligned); n != 0 {
		t.Errorf("unaligned From consumed %d downsampled buckets, want 0 (raw fallback)", n)
	}
}
