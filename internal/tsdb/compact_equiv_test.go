package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/sieve-microservices/sieve/internal/telemetry"
)

// Compaction-equivalence suite: /query_range results (raw and every
// aggregation, fine and coarse steps) must be byte-identical before and
// after compaction, with downsampled companions live, across shard
// counts and fsync policies, including NaN chunks and retention. The
// reference is a second durable store fed the identical write/checkpoint
// sequence but never compacted, plus the naive decode-everything
// reference for the final state.

// openCompactable opens a durable store with every background ticker
// disabled, downsampling enabled, and telemetry installed, so tests
// drive checkpoints and compaction passes explicitly.
func openCompactable(t *testing.T, dir string, shards int, fsync FsyncPolicy, retentionMS int64) (*Sharded, *StoreTelemetry) {
	t.Helper()
	s, err := OpenSharded(shards, DurabilityOptions{
		Dir: dir, Fsync: fsync, FlushInterval: -1, CompactInterval: -1,
		RetentionMS: retentionMS, Downsample: true,
	})
	if err != nil {
		t.Fatalf("OpenSharded(%s): %v", dir, err)
	}
	tel := NewStoreTelemetry(telemetry.NewRegistry())
	s.SetTelemetry(tel)
	return s, tel
}

// compactSamples generates a scrape-like dataset wide enough for 5m/1h
// buckets to exist (ticks are tickMS apart), with per-series phase
// offsets, ~10% adjacent arrival swaps (out-of-order data crossing
// checkpoint cuts, so merged blocks carry multiple segments), and — with
// withNaN — periodic NaN values on one series (NoSummary chunks and
// downsampled buckets).
func compactSamples(seed int64, comps, mets, ticks int, tickMS int64, withNaN bool) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, 0, comps*mets*ticks)
	for i := 0; i < ticks; i++ {
		for c := 0; c < comps; c++ {
			for m := 0; m < mets; m++ {
				v := rng.NormFloat64() * 100
				if withNaN && c == 0 && m == 0 && i%97 == 13 {
					v = math.NaN()
				}
				out = append(out, Sample{
					Component: fmt.Sprintf("svc-%02d", c),
					Metric:    fmt.Sprintf("metric_%d", m),
					T:         int64(i)*tickMS + int64((c*31+m*17)%997),
					V:         v,
				})
			}
		}
	}
	for i := 0; i+1 < len(out); i += 2 {
		if rng.Intn(10) == 0 {
			out[i], out[i+1] = out[i+1], out[i]
		}
	}
	return out
}

func maxSampleT(samples []Sample) int64 {
	var span int64
	for _, s := range samples {
		if s.T > span {
			span = s.T
		}
	}
	return span
}

// compactQueries extends the engine equivalence matrix with the coarse
// steps that select downsampled resolutions — aligned From (companions
// consumable), unaligned From (companion buckets straddle query buckets
// and must fall back to raw), and ranges cutting through buckets.
func compactQueries(span int64) []RangeQuery {
	qs := equivQueries(span)
	for _, agg := range []Agg{AggMin, AggMax, AggAvg, AggSum, AggCount, AggRate} {
		for _, step := range []int64{5 * 60_000, 10 * 60_000, 60 * 60_000, 2 * 60 * 60_000} {
			qs = append(qs,
				RangeQuery{Component: "*", Metric: "*", From: 0, To: span + 1, Agg: agg, StepMS: step},
				RangeQuery{Component: "*", Metric: "*", From: 137, To: span - 4321, Agg: agg, StepMS: step},
			)
			if 3*step/2 < span {
				qs = append(qs, RangeQuery{Component: "svc-*", Metric: "metric_?", From: step, To: span - step/2, Agg: agg, StepMS: step})
			}
		}
	}
	return qs
}

// assertBitIdentical compares two result sets point by point on the
// float bit pattern (NaN defeats reflect.DeepEqual, and bit identity is
// the actual contract).
func assertBitIdentical(t *testing.T, label string, q RangeQuery, got, want []SeriesResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %+v: %s != %s", label, q, describeResults(got), describeResults(want))
	}
	for i := range got {
		if got[i].Component != want[i].Component || got[i].Metric != want[i].Metric {
			t.Fatalf("%s %+v: series %d is %s/%s, want %s/%s",
				label, q, i, got[i].Component, got[i].Metric, want[i].Component, want[i].Metric)
		}
		if len(got[i].Points) != len(want[i].Points) {
			t.Fatalf("%s %+v: %s/%s has %d points, want %d",
				label, q, got[i].Component, got[i].Metric, len(got[i].Points), len(want[i].Points))
		}
		for j := range got[i].Points {
			g, w := got[i].Points[j], want[i].Points[j]
			if g.T != w.T || math.Float64bits(g.V) != math.Float64bits(w.V) {
				t.Fatalf("%s %+v: %s/%s point %d: got (%d, %x), want (%d, %x)",
					label, q, got[i].Component, got[i].Metric, j,
					g.T, math.Float64bits(g.V), w.T, math.Float64bits(w.V))
			}
		}
	}
}

func TestCompactionEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, fsync := range []FsyncPolicy{FsyncInterval, FsyncNever} {
			t.Run(fmt.Sprintf("shards=%d,fsync=%s", shards, fsync), func(t *testing.T) {
				t.Parallel()
				testCompactionEquivalence(t, shards, fsync)
			})
		}
	}
}

func testCompactionEquivalence(t *testing.T, shards int, fsync FsyncPolicy) {
	samples := compactSamples(31+int64(shards), 3, 3, 900, 10_000, true)
	span := maxSampleT(samples)
	queries := compactQueries(span)

	s, tel := openCompactable(t, t.TempDir(), shards, fsync, 0)
	ref, _ := openCompactable(t, t.TempDir(), shards, fsync, 0)

	compare := func(label string) {
		t.Helper()
		for _, q := range queries {
			assertBitIdentical(t, label, q, engineQuery(t, s, q), engineQuery(t, ref, q))
		}
	}

	// 12 checkpoint rounds build many small blocks on both stores;
	// compaction fires mid-history (after rounds 4 and 8), so later
	// checkpoints land after merged blocks and the list order logic is
	// exercised, not just the compact-everything-at-the-end case.
	const rounds = 12
	per := len(samples) / rounds
	for r := 0; r < rounds; r++ {
		batch := samples[r*per : (r+1)*per]
		for _, st := range []*Sharded{s, ref} {
			if err := st.WriteSamples(batch, 0); err != nil {
				t.Fatal(err)
			}
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if r == 4 || r == 8 {
			if err := s.Compact(); err != nil {
				t.Fatalf("compact after round %d: %v", r, err)
			}
			compare(fmt.Sprintf("mid-history compact (round %d)", r))
		}
	}
	// A tail beyond the last checkpoint stays in shard memory on both
	// sides: compaction must compose with the memory read path too.
	tail := samples[rounds*per:]
	for _, st := range []*Sharded{s, ref} {
		if err := st.WriteSamples(tail, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	compare("final compact + memory tail")

	// The final state must also match the naive decode-everything
	// reference, not just the twin.
	for _, q := range queries[:12] {
		assertBitIdentical(t, "naive reference", q, engineQuery(t, s, q), refQueryRange(t, s, q))
	}

	// The pass must have actually merged blocks and the coarse queries
	// must actually have consumed downsampled buckets — otherwise this
	// suite silently degrades into testing nothing.
	if got, want := s.BlockCount(), ref.BlockCount(); got >= want {
		t.Errorf("compaction did not reduce blocks: %d vs uncompacted %d", got, want)
	}
	if tel.DownsampledBucketsRead.Value() == 0 {
		t.Error("no downsampled buckets were consumed by the coarse-step queries")
	}

	// Reopen both stores: merged blocks, companions, and checkpoint
	// blocks must reload into the same bytes.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := openCompactable(t, s.DataDir(), shards, fsync, 0)
	ref2, _ := openCompactable(t, ref.DataDir(), shards, fsync, 0)
	defer s2.Close()
	defer ref2.Close()
	for _, q := range queries {
		assertBitIdentical(t, "reopened", q, engineQuery(t, s2, q), engineQuery(t, ref2, q))
	}
}

// TestCompactionEquivalenceRetention runs the suite with a retention
// horizon in play. Retention is block-granular, so a merged block keeps
// its oldest points alive until its newest point expires — the compacted
// store can legitimately retain MORE history than the uncompacted twin.
// The contracts pinned here: above the final horizon (data both stores
// must fully retain) results are byte-identical to the twin, and over
// the full range the compacted store stays byte-identical to its own
// naive decode-everything reference, with Stats.Points matching what it
// actually serves.
func TestCompactionEquivalenceRetention(t *testing.T) {
	samples := compactSamples(77, 3, 2, 600, 10_000, true)
	span := maxSampleT(samples)
	const retention = 45 * 60_000 // 45m of a ~100m span: old blocks expire mid-test
	s, _ := openCompactable(t, t.TempDir(), 4, FsyncNever, retention)
	ref, _ := openCompactable(t, t.TempDir(), 4, FsyncNever, retention)
	defer s.Close()
	defer ref.Close()

	const rounds = 10
	per := len(samples) / rounds
	for r := 0; r < rounds; r++ {
		batch := samples[r*per : (r+1)*per]
		for _, st := range []*Sharded{s, ref} {
			if err := st.WriteSamples(batch, 0); err != nil {
				t.Fatal(err)
			}
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if r%3 == 2 {
			if err := s.Compact(); err != nil {
				t.Fatalf("compact after round %d: %v", r, err)
			}
		}
	}
	// Full-range self-consistency: engine vs naive reference on the
	// compacted store (whatever retention left behind).
	for _, q := range compactQueries(span) {
		assertBitIdentical(t, "retention naive", q, engineQuery(t, s, q), refQueryRange(t, s, q))
	}
	// Twin equality above the horizon: every surviving point there lives
	// in a block with MaxT >= horizon, which neither store has dropped.
	horizon := span - retention
	for _, q := range compactQueries(span - horizon) {
		q.From += horizon
		q.To += horizon
		assertBitIdentical(t, "retention twin", q, engineQuery(t, s, q), engineQuery(t, ref, q))
	}
	// Points accounting matches what each store actually serves.
	for name, st := range map[string]*Sharded{"compacted": s, "twin": ref} {
		served := 0
		for _, r := range engineQuery(t, st, RangeQuery{Component: "*", Metric: "*", From: math.MinInt64, To: math.MaxInt64}) {
			served += len(r.Points)
		}
		if got := st.Stats().Points; got != served {
			t.Errorf("%s: Stats.Points = %d, serves %d", name, got, served)
		}
	}
}

// TestCompactionRetentionAccounting pins Stats.Points and retention
// behavior when compaction has replaced the original publish-order block
// list: the merged block expires as one unit, its points are subtracted
// exactly once, and the accounting survives a reopen. (Block-granular
// retention previously only ever saw checkpoint-published blocks; a
// merged block aging past the horizon is the new shape.)
func TestCompactionRetentionAccounting(t *testing.T) {
	dir := t.TempDir()
	const retention = 200_000 // wider than the ingest span: nothing drops until the final advance
	s, _ := openCompactable(t, dir, 2, FsyncNever, retention)
	written := 0
	for i := 0; i < 10; i++ {
		batch := make([]Sample, 0, 20)
		for j := 0; j < 20; j++ {
			batch = append(batch, Sample{
				Component: "svc", Metric: fmt.Sprintf("m%d", j%4),
				T: int64(i)*10_000 + int64(j)*400, V: float64(i * j),
			})
		}
		if err := s.WriteSamples(batch, 0); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		written += len(batch)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Compaction moves points between blocks but never changes the set.
	if got := s.Stats().Points; got != written {
		t.Fatalf("Stats.Points after compaction = %d, want %d", got, written)
	}
	if got := s.BlockCount(); got != 1 {
		t.Fatalf("BlockCount after compaction = %d, want 1 merged block", got)
	}

	// Advance the high-water mark past the merged block's horizon: the
	// next checkpoint's retention pass must drop it as one unit.
	if err := s.WriteSamples([]Sample{{Component: "svc", Metric: "m0", T: 400_000, V: 1}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.BlockCount(); got != 1 {
		t.Fatalf("BlockCount after retention = %d, want 1 (fresh block only)", got)
	}
	if got := s.Stats().Points; got != 1 {
		t.Fatalf("Stats.Points after retention = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, _ := openCompactable(t, dir, 2, FsyncNever, retention)
	defer re.Close()
	if got := re.Stats().Points; got != 1 {
		t.Fatalf("Stats.Points after reopen = %d, want 1", got)
	}
}
