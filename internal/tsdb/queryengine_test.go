package tsdb

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"web", "web", true},
		{"web", "webs", false},
		{"web*", "web-01", true},
		{"*01", "web-01", true},
		{"w?b", "web", true},
		{"w?b", "wb", false},
		{"*cpu*", "total_cpu_util", true},
		{"*cpu*", "memory", false},
		{"a*b*c", "axxbxxc", true},
		{"a*b*c", "axxcxxb", false},
		{"**", "x", true},
		{"*?*", "", false},
		{"*?*", "x", true},
		// Backtracking: the first '*' must be able to re-expand.
		{"*ab", "aab", true},
		{"*aab*", "aaab", true},
	}
	for _, c := range cases {
		if got := matchGlob(c.pattern, c.s); got != c.want {
			t.Errorf("matchGlob(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestParseRangeQuery(t *testing.T) {
	q, err := ParseRangeQuery("", "", "", "", "", "", 500)
	if err != nil {
		t.Fatal(err)
	}
	if q.Component != "*" || q.Metric != "*" || q.From != 0 || q.To != 500 || q.Agg != AggNone || q.StepMS != 0 {
		t.Fatalf("defaults wrong: %+v", q)
	}
	q, err = ParseRangeQuery("web*", "cpu?", "100", "200", "avg", "50", 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Component != "web*" || q.From != 100 || q.To != 200 || q.Agg != AggAvg || q.StepMS != 50 {
		t.Fatalf("parsed wrong: %+v", q)
	}

	bad := []struct {
		name                                   string
		component, metric, from, to, agg, step string
	}{
		{"inverted range", "*", "*", "10", "5", "", ""},
		{"step without agg", "*", "*", "", "", "", "100"},
		{"agg without step", "*", "*", "", "", "max", ""},
		{"agg with step=0", "*", "*", "", "", "max", "0"},
		{"agg with negative step", "*", "*", "", "", "sum", "-5"},
		{"unknown agg", "*", "*", "", "", "median", "100"},
		{"bad from", "*", "*", "abc", "", "", ""},
		{"bad to", "*", "*", "", "1e9", "", ""},
		{"bad step", "*", "*", "", "", "min", "ten"},
		{"from overflow", "*", "*", "9223372036854775808", "", "", ""},
	}
	for _, c := range bad {
		if _, err := ParseRangeQuery(c.component, c.metric, c.from, c.to, c.agg, c.step, 1000); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestAggRoundTripNames(t *testing.T) {
	for _, a := range []Agg{AggNone, AggMin, AggMax, AggAvg, AggSum, AggCount, AggRate} {
		got, err := ParseAgg(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAgg(%q) = %v, %v; want %v", a.String(), got, err, a)
		}
	}
}

// TestQueryEngineSkipsDisjointChunks pins the chunk-skipping fix by
// corrupting a sealed in-memory chunk outright: a query whose range is
// disjoint from the corrupt chunk must succeed (the chunk was never
// decoded — the old pointsInRange decompressed everything and would
// fail), while a query overlapping it must surface the corruption.
func TestQueryEngineSkipsDisjointChunks(t *testing.T) {
	db := New()
	samples := make([]Sample, 2*blockSize)
	for i := range samples {
		samples[i] = Sample{Component: "web", Metric: "cpu", T: int64(i), V: float64(i)}
	}
	if err := db.WriteSamples(samples, 0); err != nil {
		t.Fatal(err)
	}
	sr := db.data["web/cpu"]
	if len(sr.chunks) != 2 {
		t.Fatalf("want 2 sealed chunks, got %d", len(sr.chunks))
	}
	// Truncate the second chunk's payload so any decode of it errors.
	sr.chunks[1].data = sr.chunks[1].data[:3]

	pts, err := db.Query("web", "cpu", 0, int64(blockSize))
	if err != nil {
		t.Fatalf("query disjoint from corrupt chunk: %v", err)
	}
	if len(pts) != blockSize {
		t.Fatalf("got %d points, want %d", len(pts), blockSize)
	}
	if _, err := db.Query("web", "cpu", 0, int64(blockSize)+1); err == nil {
		t.Fatal("query overlapping corrupt chunk: no error")
	}

	// Index-only aggregation push-down: a whole-chunk max needs neither
	// chunk decoded, so even the corrupt one aggregates from its summary.
	res, err := db.QueryRange(context.Background(), RangeQuery{
		Component: "web", Metric: "cpu",
		From: 0, To: 2 * int64(blockSize),
		Agg: AggMax, StepMS: 4 * int64(blockSize),
	})
	if err != nil {
		t.Fatalf("index-only aggregation over corrupt chunk: %v", err)
	}
	if len(res) != 1 || len(res[0].Points) != 1 || res[0].Points[0].V != float64(2*blockSize-1) {
		t.Fatalf("unexpected pushdown result: %+v", res)
	}
	// An aggregation that must decode (avg) does hit the corruption.
	if _, err := db.QueryRange(context.Background(), RangeQuery{
		Component: "web", Metric: "cpu",
		From: 0, To: 2 * int64(blockSize),
		Agg: AggAvg, StepMS: 4 * int64(blockSize),
	}); err == nil {
		t.Fatal("decoding aggregation over corrupt chunk: no error")
	}
}

// TestQueryEngineBlockChunkSkip does the same for a durable store's
// sealed block files: corrupt one chunk on disk and verify that queries
// and index-only aggregations not touching it still succeed.
func TestQueryEngineBlockChunkSkip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(1, DurabilityOptions{Dir: dir, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 2 * maxChunkPoints
	samples := make([]Sample, n)
	for i := range samples {
		samples[i] = Sample{Component: "web", Metric: "cpu", T: int64(i), V: float64(i % 251)}
	}
	if err := s.WriteSamples(samples, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the second chunk's payload bytes in the open chunks file.
	blk := s.dur.blocks[0]
	refs := blk.index["web/cpu"]
	if len(refs) != 2 {
		t.Fatalf("want 2 chunks in block, got %d", len(refs))
	}
	f, err := os.OpenFile(filepath.Join(blk.dir, blockChunksName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, refs[1].Offset+chunkHeader+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := s.Query("web", "cpu", 0, int64(maxChunkPoints)); err != nil {
		t.Fatalf("query disjoint from corrupt block chunk: %v", err)
	}
	if _, err := s.Query("web", "cpu", 0, int64(n)); err == nil {
		t.Fatal("query overlapping corrupt block chunk: no error")
	}
	res, err := s.QueryRange(context.Background(), RangeQuery{
		Component: "*", Metric: "*", From: 0, To: int64(n),
		Agg: AggCount, StepMS: 4 * int64(n),
	})
	if err != nil {
		t.Fatalf("index-only count over corrupt block chunk: %v", err)
	}
	if len(res) != 1 || res[0].Points[0].V != float64(n) {
		t.Fatalf("unexpected count: %+v", res)
	}
}

// TestAggregationPushdownAllocs pins "aggregated queries over sealed
// chunks allocate no raw-point slices": an index-only aggregation's
// allocation count must not grow with the number of sealed points,
// because no chunk is ever read or decoded.
func TestAggregationPushdownAllocs(t *testing.T) {
	build := func(pointsPerSeries int) *Sharded {
		s := NewSharded(2)
		var samples []Sample
		for i := 0; i < pointsPerSeries; i++ {
			for c := 0; c < 4; c++ {
				samples = append(samples, Sample{
					Component: "comp" + string(rune('a'+c)), Metric: "m",
					T: int64(i) * 10, V: float64(i ^ c),
				})
			}
		}
		if err := s.WriteSamples(samples, 0); err != nil {
			t.Fatal(err)
		}
		s.Flush()
		return s
	}
	small, big := build(2*blockSize), build(16*blockSize)
	measure := func(s *Sharded, span int64) float64 {
		q := RangeQuery{Component: "*", Metric: "*", From: 0, To: span, Agg: AggMax, StepMS: 2 * span, Parallelism: 1}
		return testing.AllocsPerRun(20, func() {
			if _, err := s.QueryRange(context.Background(), q); err != nil {
				t.Fatal(err)
			}
		})
	}
	a1 := measure(small, int64(2*blockSize)*10)
	a2 := measure(big, int64(16*blockSize)*10)
	// 8x the sealed points must not change the allocation profile beyond
	// noise: every chunk is consumed from its summary.
	if a2 > a1+8 {
		t.Fatalf("index-only aggregation allocations grew with data size: %v -> %v allocs/op", a1, a2)
	}
}

// fuzzStore is a small read-only sharded store shared by fuzz workers:
// four series, two of them long enough to span sealed chunks plus tail.
var fuzzStore struct {
	once sync.Once
	s    *Sharded
}

func fuzzQueryStore(f *testing.F) *Sharded {
	fuzzStore.once.Do(func() {
		s := NewSharded(3)
		var samples []Sample
		for i := 0; i < 1300; i++ {
			samples = append(samples,
				Sample{Component: "web-a", Metric: "cpu_util", T: int64(i) * 7, V: float64(i%97) - 48},
				Sample{Component: "db-b", Metric: "mem_used", T: int64(i)*11 + 3, V: float64(i) * 0.5},
			)
		}
		for i := 0; i < 40; i++ {
			samples = append(samples,
				Sample{Component: "web-a", Metric: "errors", T: int64(i) * 100, V: float64(i * i)},
				Sample{Component: "cache", Metric: "hit_ratio", T: int64(i)*50 + 25, V: 1 / float64(i+1)},
			)
		}
		if err := s.WriteSamples(samples, 0); err != nil {
			f.Fatal(err)
		}
		fuzzStore.s = s
	})
	return fuzzStore.s
}

// FuzzQueryRange fuzzes the /query_range parameter parsing and the
// engine's bucket math: any parameter combination either fails ParseRangeQuery
// cleanly or produces results byte-identical to the decode-everything
// reference — across glob patterns, step=0, inverted ranges, and extreme
// timestamps (the bucket index runs through unsigned arithmetic; a
// signed overflow would diverge from the reference or panic).
func FuzzQueryRange(f *testing.F) {
	f.Add("web-a", "cpu_util", "0", "10000", "avg", "500")
	f.Add("*", "*", "", "", "", "")
	f.Add("w?b*", "*u*", "-5000", "5000", "rate", "333")
	f.Add("db-*", "mem*", "100", "50", "sum", "10") // inverted
	f.Add("*", "*", "0", "9000", "max", "0")        // step=0
	f.Add("*", "*", "-9223372036854775808", "9223372036854775807", "count", "9223372036854775807")
	f.Add("***", "???", "12", "13", "min", "1")
	f.Add("", "", "9999999999999", "", "rate", "9999999999")
	store := fuzzQueryStore(f)
	f.Fuzz(func(t *testing.T, component, metric, from, to, agg, step string) {
		if len(component) > 64 || len(metric) > 64 {
			return // keep the backtracking matchers cheap
		}
		q, err := ParseRangeQuery(component, metric, from, to, agg, step, 20000)
		if err != nil {
			return
		}
		got, err := store.QueryRange(context.Background(), q)
		if err != nil {
			t.Fatalf("QueryRange(%+v): %v", q, err)
		}
		ref := refQueryRange(t, store, q)
		if !sameResults(got, ref) {
			t.Fatalf("%+v: engine %s != reference %s", q, describeResults(got), describeResults(ref))
		}
	})
}

// TestQueryEngineNaNValues pins the engine against the reference for
// NaN values (reachable only through the internal WriteSamples API —
// the line protocol rejects non-finite values): buckets seed from their
// first contribution and update by comparison, so the decode path, the
// summary push-down path, and the naive reference all agree bitwise on
// where NaN lands.
func TestQueryEngineNaNValues(t *testing.T) {
	nan := math.NaN()
	// NaN positions: seeding the first chunk's summary, seeding a later
	// chunk's summary (where a poisoned summary once hid the chunk's
	// real extrema from push-down), and mid-chunk.
	nanPositions := []int{0, blockSize, blockSize / 2}
	build := func(nanAt int) *Sharded {
		s := NewSharded(2)
		samples := make([]Sample, 2*blockSize)
		for i := range samples {
			v := float64(i % 53)
			if i == nanAt {
				v = nan
			}
			samples[i] = Sample{Component: "n", Metric: "m", T: int64(i) * 10, V: v}
		}
		if err := s.WriteSamples(samples, 0); err != nil {
			t.Fatal(err)
		}
		s.Flush() // seal everything so summary push-down is exercised
		return s
	}
	span := int64(2*blockSize) * 10
	for _, nanAt := range nanPositions {
		s := build(nanAt)
		for _, agg := range []Agg{AggMin, AggMax, AggAvg, AggSum, AggCount, AggRate} {
			for _, step := range []int64{span * 2, span / 8} { // push-down and decode widths
				q := RangeQuery{Component: "*", Metric: "*", From: 0, To: span, Agg: agg, StepMS: step}
				got := engineQuery(t, s, q)
				ref := refQueryRange(t, s, q)
				// NaN != NaN defeats DeepEqual; compare bit patterns.
				if len(got) != len(ref) {
					t.Fatalf("nanAt=%d %v step=%d: %d series vs %d", nanAt, agg, step, len(got), len(ref))
				}
				for i := range got {
					if len(got[i].Points) != len(ref[i].Points) {
						t.Fatalf("nanAt=%d %v step=%d: point counts differ", nanAt, agg, step)
					}
					for j := range got[i].Points {
						g, r := got[i].Points[j], ref[i].Points[j]
						if g.T != r.T || math.Float64bits(g.V) != math.Float64bits(r.V) {
							t.Fatalf("nanAt=%d %v step=%d: point %d: got %v/%x want %v/%x",
								nanAt, agg, step, j, g.T, math.Float64bits(g.V), r.T, math.Float64bits(r.V))
						}
					}
				}
			}
		}
	}
}

// TestQueryEngineExtremeTimestamps pins the unsigned bucket math
// directly with points near the int64 extremes (ingested via
// WriteSamples, which does not bound timestamps the way the line
// protocol does).
func TestQueryEngineExtremeTimestamps(t *testing.T) {
	s := NewSharded(2)
	samples := []Sample{
		{Component: "x", Metric: "m", T: math.MinInt64 + 5, V: 1},
		{Component: "x", Metric: "m", T: -1000, V: 2},
		{Component: "x", Metric: "m", T: 1000, V: 3},
		{Component: "x", Metric: "m", T: math.MaxInt64 - 5, V: 4},
	}
	if err := s.WriteSamples(samples, 0); err != nil {
		t.Fatal(err)
	}
	for _, q := range []RangeQuery{
		{Component: "*", Metric: "*", From: math.MinInt64, To: math.MaxInt64, Agg: AggCount, StepMS: math.MaxInt64},
		{Component: "*", Metric: "*", From: math.MinInt64, To: math.MaxInt64, Agg: AggSum, StepMS: 1},
		{Component: "*", Metric: "*", From: math.MinInt64 + 5, To: math.MaxInt64, Agg: AggRate, StepMS: math.MaxInt64},
		{Component: "*", Metric: "*", From: -2000, To: 2000},
	} {
		got := engineQuery(t, s, q)
		if ref := refQueryRange(t, s, q); !sameResults(got, ref) {
			t.Fatalf("%+v: engine %s != reference %s", q, describeResults(got), describeResults(ref))
		}
	}
}
