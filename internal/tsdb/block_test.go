package tsdb

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func blockPoints(n int, base int64) []Point {
	out := make([]Point, n)
	for i := range out {
		out[i] = Point{T: base + int64(i)*500, V: float64(i) * 0.25}
	}
	return out
}

func TestBlockWriteQueryRoundtrip(t *testing.T) {
	dir := t.TempDir()
	series := map[string][]Point{
		"web/cpu": blockPoints(maxChunkPoints+100, 0), // forces a chunk split
		"db/mem":  blockPoints(10, 5000),
	}
	blk, err := writeBlock(dir, 1, map[string]uint64{"0": 3}, series)
	if err != nil {
		t.Fatal(err)
	}
	defer blk.close()
	if len(blk.index["web/cpu"]) != 2 {
		t.Errorf("web/cpu chunks = %d, want 2 (split at %d points)", len(blk.index["web/cpu"]), maxChunkPoints)
	}
	if blk.meta.Points != maxChunkPoints+110 || blk.meta.Series != 2 {
		t.Errorf("meta = %+v", blk.meta)
	}
	if blk.meta.WALCuts["0"] != 3 {
		t.Errorf("WALCuts not persisted: %v", blk.meta.WALCuts)
	}
	for key, want := range series {
		got, err := blk.query(key, 0, 1<<40, nil)
		if err != nil {
			t.Fatalf("query %s: %v", key, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: roundtrip mismatch (%d vs %d points)", key, len(want), len(got))
		}
	}
	// Range query touches only the overlapping chunk.
	got, err := blk.query("web/cpu", 1000, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].T != 1000 || got[1].T != 1500 {
		t.Fatalf("range query = %v", got)
	}
	if blk.hasSeries("nope/metric") {
		t.Error("hasSeries on absent key")
	}
}

func TestBlockReopenAndTmpCleanup(t *testing.T) {
	dir := t.TempDir()
	if _, err := writeBlock(dir, 1, nil, map[string][]Point{"a/b": blockPoints(5, 0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := writeBlock(dir, 2, nil, map[string][]Point{"a/b": blockPoints(5, 9000)}); err != nil {
		t.Fatal(err)
	}
	// A crash mid-flush leaves a tmp- directory behind.
	tmp := filepath.Join(dir, blockTmpPrefix+"b-00000003-0-0")
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, blockChunksName), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	blocks, err := openBlocks(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, b := range blocks {
			b.close()
		}
	}()
	if len(blocks) != 2 {
		t.Fatalf("opened %d blocks, want 2", len(blocks))
	}
	if blocks[0].meta.Seq != 1 || blocks[1].meta.Seq != 2 {
		t.Errorf("blocks out of sequence order: %d, %d", blocks[0].meta.Seq, blocks[1].meta.Seq)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("tmp- directory should have been removed at open")
	}
}

func TestBlockChunkCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	blk, err := writeBlock(dir, 1, nil, map[string][]Point{"a/b": blockPoints(50, 0)})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(blk.dir, blockChunksName)
	blk.close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[chunkHeader+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reblk, err := openBlock(blk.dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reblk.close()
	if _, err := reblk.query("a/b", 0, 1<<40, nil); err == nil {
		t.Fatal("expected CRC error on corrupted chunk")
	}
}
