package tsdb

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// openCrashable opens a durable store with background tickers disabled
// and no explicit fsync, so tests can simulate a hard stop (SIGKILL) by
// simply abandoning the store: nothing is flushed or closed, and the
// next OpenSharded on the directory must recover purely from what the
// engine already put on disk.
func openCrashable(t *testing.T, dir string, shards int) *Sharded {
	t.Helper()
	s, err := OpenSharded(shards, DurabilityOptions{Dir: dir, Fsync: FsyncNever, FlushInterval: -1, CompactInterval: -1})
	if err != nil {
		t.Fatalf("OpenSharded(%s): %v", dir, err)
	}
	return s
}

// recoveryWrite sends one line-protocol batch to every given store.
func recoveryWrite(t *testing.T, samples []Sample, stores ...Store) {
	t.Helper()
	payload := EncodeLineProtocol(samples)
	for _, st := range stores {
		if _, err := st.Write(payload); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
}

// assertSameContents asserts both stores serve byte-identical series
// keys, per-series query results over the full time range, and MaxTime.
func assertSameContents(t *testing.T, got, want ReadStore, label string) {
	t.Helper()
	gk, wk := got.SeriesKeys(), want.SeriesKeys()
	if !reflect.DeepEqual(gk, wk) {
		t.Fatalf("%s: series keys differ: got %d, want %d", label, len(gk), len(wk))
	}
	for _, key := range wk {
		comp, metric := splitKey(key)
		gp, err := got.Query(comp, metric, 0, 1<<62)
		if err != nil {
			t.Fatalf("%s: query %s: %v", label, key, err)
		}
		wp, err := want.Query(comp, metric, 0, 1<<62)
		if err != nil {
			t.Fatalf("%s: reference query %s: %v", label, key, err)
		}
		if !reflect.DeepEqual(gp, wp) {
			t.Fatalf("%s: %s differs: got %d points, want %d", label, key, len(gp), len(wp))
		}
	}
}

func recoveryBatch(batch, comps, mets int) []Sample {
	out := make([]Sample, 0, comps*mets)
	for c := 0; c < comps; c++ {
		for m := 0; m < mets; m++ {
			out = append(out, Sample{
				Component: fmt.Sprintf("comp-%02d", c),
				Metric:    fmt.Sprintf("metric_%02d", m),
				T:         int64(batch) * 500,
				V:         float64(batch*c) + float64(m)*0.25,
			})
		}
	}
	return out
}

func TestDurableRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 4)
	ref := NewSharded(4)
	for i := 0; i < 30; i++ {
		recoveryWrite(t, recoveryBatch(i, 8, 4), s, ref)
	}
	// Hard stop: no Checkpoint, no Close. Everything lives in the WAL.
	re := openCrashable(t, dir, 4)
	defer re.Close()
	assertSameContents(t, re, ref, "wal-only recovery")
	if re.MaxTime() != ref.MaxTime() {
		t.Errorf("MaxTime = %d, want %d", re.MaxTime(), ref.MaxTime())
	}
	if got, want := re.Stats().Points, ref.Stats().Points; got != want {
		t.Errorf("Points = %d, want %d", got, want)
	}
}

func TestDurableRecoveryBlocksPlusWAL(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 3)
	ref := NewSharded(3)
	for i := 0; i < 20; i++ {
		recoveryWrite(t, recoveryBatch(i, 6, 5), s, ref)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint queries must already merge block + memory.
	assertSameContents(t, s, ref, "after checkpoint, before crash")
	for i := 20; i < 35; i++ {
		recoveryWrite(t, recoveryBatch(i, 6, 5), s, ref)
	}
	assertSameContents(t, s, ref, "block + fresh memory")

	// Hard stop with data split across one block and WAL segments.
	re := openCrashable(t, dir, 3)
	assertSameContents(t, re, ref, "block+wal recovery")

	// A second life's checkpoint compacts the replayed WAL into a second
	// block; contents must not change.
	if err := re.Checkpoint(); err != nil {
		t.Fatalf("second checkpoint: %v", err)
	}
	assertSameContents(t, re, ref, "after second-life checkpoint")
	re.Close()

	// Third life: blocks only, WAL empty.
	re2 := openCrashable(t, dir, 3)
	defer re2.Close()
	assertSameContents(t, re2, ref, "blocks-only recovery")
}

// TestDurableRecoveryShardCountChangeAfterCheckpoint: blocks are
// shard-agnostic, so growing the count after a graceful close (empty
// WAL) must be exact.
func TestDurableRecoveryShardCountChangeAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 2)
	ref := NewSharded(2)
	for i := 0; i < 10; i++ {
		recoveryWrite(t, recoveryBatch(i, 5, 3), s, ref)
	}
	if err := s.Close(); err != nil { // graceful: final checkpoint drains the WAL
		t.Fatal(err)
	}
	re := openCrashable(t, dir, 6)
	defer re.Close()
	assertSameContents(t, re, ref, "reshard after checkpoint")
}

// TestDurableRecoveryShardCountChangeWithLiveWAL hard-stops a store and
// reopens it with both fewer and more shards while the data still lives
// in WAL segments: replay routes records by the current hash, so no
// directory is orphaned (shrink) and no point lands in a shard queries
// do not consult (grow). cmd/sieved defaults -shards to GOMAXPROCS, so
// this is exactly what a host change does.
func TestDurableRecoveryShardCountChangeWithLiveWAL(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 4)
	ref := NewSharded(4)
	for i := 0; i < 15; i++ {
		recoveryWrite(t, recoveryBatch(i, 6, 4), s, ref)
	}
	// Hard stop; reopen with FEWER shards: dirs 0002/0003 are stale and
	// must still be replayed, hash-routed onto the 2 new shards.
	re := openCrashable(t, dir, 2)
	assertSameContents(t, re, ref, "shrink reshard with live WAL")
	// A checkpoint seals the rerouted data and retires the stale dirs.
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, stale := range []string{"shard-0002", "shard-0003"} {
		if _, err := os.Stat(filepath.Join(dir, "wal", stale)); !os.IsNotExist(err) {
			t.Errorf("stale WAL dir %s should be removed by the checkpoint", stale)
		}
	}
	for i := 15; i < 20; i++ {
		recoveryWrite(t, recoveryBatch(i, 6, 4), re, ref)
	}
	// Hard stop again; reopen with MORE shards than ever existed.
	re2 := openCrashable(t, dir, 8)
	defer re2.Close()
	assertSameContents(t, re2, ref, "grow reshard with live WAL")
	if got, want := re2.Stats().Points, ref.Stats().Points; got != want {
		t.Fatalf("recovered %d points, want %d", got, want)
	}
}

// TestDurableRestartDefaultShardCount opens every life with shards=0,
// the default of server.Options.Shards and cmd/sieved's -shards flag
// (NewSharded resolves it to GOMAXPROCS). The replay bookkeeping must
// compare WAL directory indices against the resolved count: against the
// raw 0 every live shard directory looks stale, and the first checkpoint
// of the new life would record it as fully covered and delete it out
// from under its writer — silently losing every later write.
func TestDurableRestartDefaultShardCount(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 0)
	ref := NewSharded(0)
	for i := 0; i < 10; i++ {
		recoveryWrite(t, recoveryBatch(i, 5, 3), s, ref)
	}
	// Hard stop; second life, same default count.
	re := openCrashable(t, dir, 0)
	assertSameContents(t, re, ref, "default-shards restart")
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The live WAL dirs must have survived the checkpoint: writes after
	// it still reach durable storage.
	for i := 0; i < re.NumShards(); i++ {
		if _, err := os.Stat(filepath.Join(dir, "wal", fmt.Sprintf("shard-%04d", i))); err != nil {
			t.Fatalf("live WAL dir of shard %d gone after checkpoint: %v", i, err)
		}
	}
	for i := 10; i < 16; i++ {
		recoveryWrite(t, recoveryBatch(i, 5, 3), re, ref)
	}
	// Hard stop again: the third life must see the post-checkpoint writes.
	re2 := openCrashable(t, dir, 0)
	defer re2.Close()
	assertSameContents(t, re2, ref, "default-shards second restart")
	if got, want := re2.Stats().Points, ref.Stats().Points; got != want {
		t.Fatalf("recovered %d points, want %d", got, want)
	}
}

// TestDurableCheckpointFailureSurfaced forces checkpoints to fail (the
// blocks dir is replaced by a regular file, the shape of a persistently
// sick disk) and asserts the failure is visible in Stats instead of
// being swallowed, then clears once checkpoints succeed again — and that
// no data was lost across the failed attempts.
func TestDurableCheckpointFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 2)
	ref := NewSharded(2)
	for i := 0; i < 6; i++ {
		recoveryWrite(t, recoveryBatch(i, 4, 3), s, ref)
	}
	blocksDir := filepath.Join(dir, "blocks")
	if err := os.RemoveAll(blocksDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blocksDir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := s.Checkpoint(); err == nil {
			t.Fatal("checkpoint against a dead blocks dir should fail")
		}
		st := s.Stats()
		if st.CheckpointFailures != i {
			t.Fatalf("CheckpointFailures = %d, want %d", st.CheckpointFailures, i)
		}
		if st.LastCheckpointError == "" {
			t.Fatal("LastCheckpointError empty after a failed checkpoint")
		}
	}
	// Failed cuts must have spliced the data back: nothing lost.
	assertSameContents(t, s, ref, "after failed checkpoints")
	// Disk repaired: the next checkpoint succeeds and clears the error.
	if err := os.Remove(blocksDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(blocksDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after repair: %v", err)
	}
	st := s.Stats()
	if st.CheckpointFailures != 2 {
		t.Fatalf("CheckpointFailures = %d, want 2 (count is cumulative)", st.CheckpointFailures)
	}
	if st.LastCheckpointError != "" {
		t.Fatalf("LastCheckpointError = %q, want cleared", st.LastCheckpointError)
	}
	assertSameContents(t, s, ref, "after recovered checkpoint")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurablePartialWriteReportsStored kills one shard's WAL and writes
// a batch spanning all shards: Write must report exactly the samples the
// healthy shards stored alongside the error, so a client can tell a
// partial success from a clean failure (and not blindly replay the whole
// payload, duplicating the stored points).
func TestDurablePartialWriteReportsStored(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 2)
	batch := recoveryBatch(0, 8, 3)
	// Sever shard 0's WAL out from under it: appends to it now fail.
	if err := s.shards[0].wal.close(); err != nil {
		t.Fatal(err)
	}
	var healthy int
	for _, smp := range batch {
		if s.shardIndex(smp.Key()) != 0 {
			healthy++
		}
	}
	if healthy == 0 || healthy == len(batch) {
		t.Fatalf("batch must span both shards, got %d/%d on shard 1", healthy, len(batch))
	}
	n, err := s.Write(EncodeLineProtocol(batch))
	if err == nil {
		t.Fatal("write through a dead WAL should fail")
	}
	if !errors.Is(err, ErrStorage) {
		t.Fatalf("want ErrStorage-wrapped failure (front ends map it to 5xx), got %v", err)
	}
	if n != healthy {
		t.Fatalf("Write reported %d stored samples, want %d (healthy shard's share)", n, healthy)
	}
	// The healthy shard's samples really are queryable.
	var served int
	for _, key := range s.SeriesKeys() {
		comp, metric := splitKey(key)
		pts, err := s.Query(comp, metric, 0, 1<<62)
		if err != nil {
			t.Fatalf("query %s: %v", key, err)
		}
		served += len(pts)
	}
	if served != healthy {
		t.Fatalf("stored %d points, want %d", served, healthy)
	}
	// No Close: shard 0's WAL is already gone; the store is abandoned
	// like a crashed process.
}

func TestDurableCrashMidFlush(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 2)
	ref := NewSharded(2)
	for i := 0; i < 12; i++ {
		recoveryWrite(t, recoveryBatch(i, 4, 4), s, ref)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 20; i++ {
		recoveryWrite(t, recoveryBatch(i, 4, 4), s, ref)
	}
	// Simulate dying inside the next flush, after the chunks were
	// partially written but before the rename published the block: a
	// tmp- directory exists and the WAL was not pruned.
	tmp := filepath.Join(dir, "blocks", blockTmpPrefix+"b-00000099-0-0")
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, blockChunksName), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	re := openCrashable(t, dir, 2)
	defer re.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("tmp block directory should be removed during recovery")
	}
	assertSameContents(t, re, ref, "mid-flush crash recovery")
}

func TestDurableTruncatedWALTail(t *testing.T) {
	dir := t.TempDir()
	// Single shard so the lost tail is exactly the last written batch.
	s := openCrashable(t, dir, 1)
	ref := NewSharded(1)
	for i := 0; i < 10; i++ {
		recoveryWrite(t, recoveryBatch(i, 4, 4), s, ref)
	}
	// The 11th batch is torn mid-record by the crash.
	recoveryWrite(t, recoveryBatch(10, 4, 4), s)

	shardDir := filepath.Join(dir, "wal", "shard-0000")
	seqs, err := listWALSegments(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(shardDir, walSegmentName(seqs[len(seqs)-1]))
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	re := openCrashable(t, dir, 1)
	defer re.Close()
	// Recovery keeps every fsync-able record before the torn one and
	// nothing after: identical to the reference that never saw batch 10.
	assertSameContents(t, re, ref, "truncated-tail recovery")
}

// TestDurableRecovery100kPoints is the acceptance-scale crash test: over
// 100k points across shards, hard stop with data split between a sealed
// block and live WAL segments, then a restart that must serve identical
// query results with zero loss.
func TestDurableRecovery100kPoints(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 4)
	ref := NewSharded(4)
	const batches, comps, mets = 130, 32, 25 // 130*32*25 = 104,000 points
	for i := 0; i < batches; i++ {
		recoveryWrite(t, recoveryBatch(i, comps, mets), s, ref)
		if i == batches/2 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := s.Stats().Points; got < 100000 {
		t.Fatalf("test must ingest >= 100k points, got %d", got)
	}
	re := openCrashable(t, dir, 4)
	defer re.Close()
	if got, want := re.Stats().Points, ref.Stats().Points; got != want {
		t.Fatalf("recovered %d points, want %d (zero loss)", got, want)
	}
	assertSameContents(t, re, ref, "100k-point recovery")
}

func TestDurableRetentionDropsOldBlocks(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(2, DurabilityOptions{
		Dir: dir, Fsync: FsyncNever, FlushInterval: -1, RetentionMS: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	old := []Sample{{Component: "a", Metric: "m", T: 500, V: 1}, {Component: "b", Metric: "m", T: 900, V: 2}}
	recoveryWrite(t, old, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// New data far beyond the horizon: the first block (maxT 900) is now
	// more than RetentionMS behind the high-water mark.
	recoveryWrite(t, []Sample{{Component: "a", Metric: "m", T: 50_000, V: 3}}, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "blocks"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected 1 surviving block, found %d", len(entries))
	}
	pts, err := s.Query("a", "m", 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].T != 50_000 {
		t.Fatalf("expired points still served: %v", pts)
	}
	// Series b lived only in the dropped block.
	if _, err := s.Query("b", "m", 0, 1<<62); err == nil {
		t.Error("expected unknown-series error after retention dropped b/m")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Retention holds across restart.
	re := openCrashable(t, dir, 2)
	defer re.Close()
	pts, err = re.Query("a", "m", 0, 1<<62)
	if err != nil || len(pts) != 1 {
		t.Fatalf("post-restart query = %v, %v", pts, err)
	}
}

// TestDurableStaleWALSegmentsNotReplayed covers a checkpoint that died
// between publishing its block and pruning the WAL: the stale segments
// hold records the block already covers, and replaying them would
// duplicate every point. Recovery must drop them using the WAL cuts
// recorded in the block's meta.
func TestDurableStaleWALSegmentsNotReplayed(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 1)
	ref := NewSharded(1)
	for i := 0; i < 8; i++ {
		recoveryWrite(t, recoveryBatch(i, 4, 3), s, ref)
	}
	// Stash the live segments, checkpoint (which prunes them), then put
	// them back — exactly the on-disk state of a crash mid-prune.
	shardDir := filepath.Join(dir, "wal", "shard-0000")
	seqs, err := listWALSegments(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	saved := map[string][]byte{}
	for _, seq := range seqs {
		name := walSegmentName(seq)
		data, err := os.ReadFile(filepath.Join(shardDir, name))
		if err != nil {
			t.Fatal(err)
		}
		saved[name] = data
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for name, data := range saved {
		if err := os.WriteFile(filepath.Join(shardDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re := openCrashable(t, dir, 1)
	defer re.Close()
	if got, want := re.Stats().Points, ref.Stats().Points; got != want {
		t.Fatalf("recovered %d points, want %d (stale segments must not replay)", got, want)
	}
	assertSameContents(t, re, ref, "stale-segment recovery")
}

// TestDurableConcurrentIngestCheckpointQuery exercises the cut under
// contention (run with -race in CI): writers, a checkpointer, and readers
// all race, and no point may ever be observed twice or lost.
func TestDurableConcurrentIngestCheckpointQuery(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 4)
	const writers, batchesPerWriter = 4, 25
	// A fully-written series queried throughout: every read must see all
	// of it, whichever side of a checkpoint cut it lands on.
	const stablePoints = 64
	stable := make([]Sample, stablePoints)
	for i := range stable {
		stable[i] = Sample{Component: "stable", Metric: "m", T: int64(i) * 500, V: float64(i)}
	}
	recoveryWrite(t, stable, s)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batchesPerWriter; i++ {
				samples := []Sample{{
					Component: fmt.Sprintf("w%d", w),
					Metric:    "m",
					T:         int64(i) * 500,
					V:         float64(i),
				}}
				if _, err := s.Write(EncodeLineProtocol(samples)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			pts, err := s.Query("stable", "m", 0, 1<<62)
			if err != nil {
				t.Errorf("stable query: %v", err)
				return
			}
			if len(pts) != stablePoints {
				t.Errorf("stable series: saw %d points mid-checkpoint, want %d (cut must be invisible)", len(pts), stablePoints)
				return
			}
			_, _ = s.Query("w0", "m", 0, 1<<62)
			_ = s.SeriesKeys()
			_ = s.Stats()
		}
	}()
	// Query-engine readers racing the same cut: a matcher query and an
	// aggregated query over the fully-written series must see every point
	// exactly once — never duplicated by the overlay/block swap, never
	// hidden by a drained shard — whichever side of a checkpoint the
	// series lands on. The expected sum is stable because the data is
	// in-order (bitwise accumulation order survives the block rewrite).
	wantSum := float64(stablePoints*(stablePoints-1)) / 2
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			res, err := s.QueryMatch("stable", "*", 0, 1<<62)
			if err != nil {
				t.Errorf("stable matcher query: %v", err)
				return
			}
			if len(res) != 1 || len(res[0].Points) != stablePoints {
				t.Errorf("stable matcher: saw %+v mid-checkpoint, want 1 series with %d points", res, stablePoints)
				return
			}
			agg, err := s.QueryRange(context.Background(), RangeQuery{
				Component: "stable", Metric: "m",
				From: 0, To: 1 << 62, Agg: AggSum, StepMS: 1 << 62,
			})
			if err != nil {
				t.Errorf("stable aggregated query: %v", err)
				return
			}
			if len(agg) != 1 || len(agg[0].Points) != 1 || agg[0].Points[0].V != wantSum {
				t.Errorf("stable sum: saw %+v mid-checkpoint, want one bucket of %v", agg, wantSum)
				return
			}
			// Matcher fan-out across everything, including half-written
			// series: counts per series may grow but must never exceed
			// what a writer has acked.
			all, err := s.QueryMatch("*", "*", 0, 1<<62)
			if err != nil {
				t.Errorf("wildcard matcher: %v", err)
				return
			}
			for _, r := range all {
				if r.Component[0] == 'w' && len(r.Points) > batchesPerWriter {
					t.Errorf("%s/%s: %d points exceeds the %d ever written (duplicated by a racing cut)",
						r.Component, r.Metric, len(r.Points), batchesPerWriter)
					return
				}
			}
		}
	}()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openCrashable(t, dir, 4)
	defer re.Close()
	for w := 0; w < writers; w++ {
		pts, err := re.Query(fmt.Sprintf("w%d", w), "m", 0, 1<<62)
		if err != nil {
			t.Fatalf("w%d: %v", w, err)
		}
		if len(pts) != batchesPerWriter {
			t.Errorf("w%d: %d points, want %d", w, len(pts), batchesPerWriter)
		}
	}
}

// copyDirRecursive copies a directory tree — the crash-simulation
// primitive: block directories are preserved aside before compaction
// deletes them, then restored to recreate the exact on-disk state of a
// hard stop inside the compaction protocol.
func copyDirRecursive(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyDirRecursive(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// listBlockDirs returns the published block directory names under a
// store's blocks dir, sorted.
func listBlockDirs(t *testing.T, blocksDir string) []string {
	t.Helper()
	entries, err := os.ReadDir(blocksDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), blockTmpPrefix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// TestDurableRecoveryCompactionTmpDir simulates a hard stop in the
// first compaction crash window: the merged block was still being built
// under its tmp- prefix, the rename never happened. Recovery must remove
// the tmp directory and serve exactly the uncompacted contents.
func TestDurableRecoveryCompactionTmpDir(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 3)
	twin := openCrashable(t, t.TempDir(), 3)
	for i := 0; i < 8; i++ {
		recoveryWrite(t, recoveryBatch(i, 5, 3), s, twin)
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := twin.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	// Fabricate the interrupted merge: a half-built merged block is a
	// tmp- directory with arbitrary contents (here: a copy of a source).
	blocksDir := filepath.Join(dir, "blocks")
	sources := listBlockDirs(t, blocksDir)
	if len(sources) == 0 {
		t.Fatal("no blocks on disk")
	}
	tmpDir := filepath.Join(blocksDir, blockTmpPrefix+sources[0])
	copyDirRecursive(t, filepath.Join(blocksDir, sources[0]), tmpDir)

	// Hard stop (no Close), reopen: tmp dir cleaned, bytes unchanged.
	re := openCrashable(t, dir, 3)
	defer re.Close()
	if _, err := os.Stat(tmpDir); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("tmp compaction dir survived recovery: %v", err)
	}
	assertSameContents(t, re, twin, "tmp-dir crash recovery")
	if got, want := re.Stats().Points, twin.Stats().Points; got != want {
		t.Errorf("Points = %d, want %d", got, want)
	}
}

// TestDurableRecoveryCompactionCrashWindow simulates a hard stop in the
// second compaction crash window: the merged block's rename succeeded
// but the source blocks were not yet deleted, so the store directory
// holds the points twice. Recovery must recognize the sources as covered
// by the merged block's sequence range, delete them, and serve results
// byte-identical to an uncompacted reference store — with Stats.Points
// counted once, not twice.
func TestDurableRecoveryCompactionCrashWindow(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 4)
	twin := openCrashable(t, t.TempDir(), 4)
	for i := 0; i < 12; i++ {
		recoveryWrite(t, recoveryBatch(i, 6, 4), s, twin)
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := twin.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	blocksDir := filepath.Join(dir, "blocks")
	sources := listBlockDirs(t, blocksDir)
	aside := t.TempDir()
	for _, name := range sources {
		copyDirRecursive(t, filepath.Join(blocksDir, name), filepath.Join(aside, name))
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	merged := listBlockDirs(t, blocksDir)
	if len(merged) >= len(sources) {
		t.Fatalf("compaction left %d blocks, had %d sources", len(merged), len(sources))
	}
	// Recreate the crash window: sources back on disk beside the merged
	// block, then a hard stop (no Close, nothing flushed).
	for _, name := range sources {
		if _, err := os.Stat(filepath.Join(blocksDir, name)); errors.Is(err, os.ErrNotExist) {
			copyDirRecursive(t, filepath.Join(aside, name), filepath.Join(blocksDir, name))
		}
	}
	re := openCrashable(t, dir, 4)
	defer re.Close()
	assertSameContents(t, re, twin, "crash-window recovery")
	if got, want := re.Stats().Points, twin.Stats().Points; got != want {
		t.Errorf("Points = %d, want %d (stale sources double-counted?)", got, want)
	}
	// Stale-source cleanup is physical, not just logical: the superseded
	// directories are gone again after the open.
	if got := listBlockDirs(t, blocksDir); !reflect.DeepEqual(got, merged) {
		t.Errorf("blocks on disk after recovery = %v, want %v", got, merged)
	}
}

// TestDurableRecoveryCompanionTmpFile simulates a hard stop while a
// downsampled companion file was being written: the tmp- file inside the
// block directory must be removed on open and the block must serve its
// raw chunks unchanged.
func TestDurableRecoveryCompanionTmpFile(t *testing.T) {
	dir := t.TempDir()
	s := openCrashable(t, dir, 2)
	twin := openCrashable(t, t.TempDir(), 2)
	for i := 0; i < 5; i++ {
		recoveryWrite(t, recoveryBatch(i, 4, 3), s, twin)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := twin.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	blocksDir := filepath.Join(dir, "blocks")
	blocks := listBlockDirs(t, blocksDir)
	if len(blocks) == 0 {
		t.Fatal("no blocks on disk")
	}
	tmpFile := filepath.Join(blocksDir, blocks[0], blockTmpPrefix+downsampledName(300_000))
	if err := os.WriteFile(tmpFile, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := openCrashable(t, dir, 2)
	defer re.Close()
	if _, err := os.Stat(tmpFile); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("tmp companion file survived recovery: %v", err)
	}
	assertSameContents(t, re, twin, "companion tmp-file recovery")
}
