package tsdb

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"github.com/sieve-microservices/sieve/internal/telemetry"
)

// fillStore writes a deterministic workload: enough points per series
// to seal several chunks, so scans exercise skip/summarize/decode.
func fillStore(t *testing.T, s *Sharded, seriesN, ptsPerSeries int) {
	t.Helper()
	for i := 0; i < seriesN; i++ {
		samples := make([]Sample, 0, ptsPerSeries)
		for p := 0; p < ptsPerSeries; p++ {
			samples = append(samples, Sample{
				Component: fmt.Sprintf("comp%d", i),
				Metric:    "cpu",
				T:         int64(p * 100),
				V:         float64(p%17) + float64(i),
			})
		}
		if err := s.WriteSamples(samples, 16*len(samples)); err != nil {
			t.Fatalf("WriteSamples: %v", err)
		}
	}
}

// TestStoreTelemetryCountersMove pins that every storage instrument
// actually moves: WAL append/fsync latency, checkpoint duration and
// drained points, block publishes, retention drops, and the chunk
// skip/summarize/decode split.
func TestStoreTelemetryCountersMove(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(2, DurabilityOptions{
		Dir: dir, Fsync: FsyncAlways, FlushInterval: -1, RetentionMS: 1,
	})
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	defer s.Close()
	reg := telemetry.NewRegistry()
	tel := NewStoreTelemetry(reg)
	s.SetTelemetry(tel)

	fillStore(t, s, 4, 3*blockSize/2)

	if tel.WALAppendSeconds.Count() == 0 {
		t.Fatalf("WAL append histogram did not move")
	}
	if tel.WALFsyncSeconds.Count() == 0 {
		t.Fatalf("WAL fsync histogram did not move (FsyncAlways)")
	}
	if s.WALSegments() == 0 {
		t.Fatalf("WALSegments = 0, want > 0")
	}

	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if tel.CheckpointSeconds.Count() != 1 {
		t.Fatalf("checkpoint histogram count = %d, want 1", tel.CheckpointSeconds.Count())
	}
	wantPts := uint64(4 * 3 * blockSize / 2)
	if got := tel.CheckpointPoints.Value(); got != wantPts {
		t.Fatalf("checkpoint points = %d, want %d", got, wantPts)
	}
	if tel.BlockPublishes.Value() != 1 {
		t.Fatalf("block publishes = %d, want 1", tel.BlockPublishes.Value())
	}

	// An aggregated query over sealed data must consume summaries; a
	// partial-range raw query must decode; a disjoint range must skip.
	if _, err := s.QueryRange(context.Background(), RangeQuery{
		Component: "*", Metric: "*", From: 0, To: 1 << 40, Agg: AggMax, StepMS: 1 << 41,
	}); err != nil {
		t.Fatalf("QueryRange(max): %v", err)
	}
	if tel.ChunksSummarized.Value() == 0 {
		t.Fatalf("no chunks summarized by pushed-down max")
	}
	if _, err := s.QueryRange(context.Background(), RangeQuery{
		Component: "comp0", Metric: "*", From: 50, To: 200,
	}); err != nil {
		t.Fatalf("QueryRange(raw): %v", err)
	}
	if tel.ChunksDecoded.Value() == 0 {
		t.Fatalf("no chunks decoded by partial raw query")
	}

	// Skip counting: a fresh series with two sealed in-memory chunks,
	// queried over a range overlapping only the first, skips the second.
	samples := make([]Sample, 0, 2*blockSize)
	for p := 0; p < 2*blockSize; p++ {
		samples = append(samples, Sample{Component: "fresh", Metric: "cpu", T: int64(p * 100), V: 1})
	}
	if err := s.WriteSamples(samples, 16*len(samples)); err != nil {
		t.Fatalf("WriteSamples(fresh): %v", err)
	}
	if _, err := s.QueryRange(context.Background(), RangeQuery{
		Component: "fresh", Metric: "cpu", From: 0, To: 200,
	}); err != nil {
		t.Fatalf("QueryRange(fresh): %v", err)
	}
	if tel.ChunksSkipped.Value() == 0 {
		t.Fatalf("no chunks skipped by narrow-range query")
	}

	// Retention: write far-future points so every published block falls
	// behind the 1ms horizon, then checkpoint to enforce it.
	if err := s.WriteSamples([]Sample{{Component: "comp0", Metric: "cpu", T: 1 << 50, V: 1}}, 16); err != nil {
		t.Fatalf("WriteSamples(future): %v", err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if tel.RetentionDroppedBlocks.Value() == 0 {
		t.Fatalf("retention dropped no blocks")
	}
}

// TestTelemetryEquivalence pins that installing telemetry changes no
// query bytes: the same workload against an instrumented and an
// uninstrumented durable store answers /query-range-shaped requests
// byte-identically (JSON-encoded results compared).
func TestTelemetryEquivalence(t *testing.T) {
	build := func(withTel bool) (*Sharded, func()) {
		dir := t.TempDir()
		s, err := OpenSharded(3, DurabilityOptions{Dir: dir, FlushInterval: -1})
		if err != nil {
			t.Fatalf("OpenSharded: %v", err)
		}
		if withTel {
			s.SetTelemetry(NewStoreTelemetry(telemetry.NewRegistry()))
		}
		fillStore(t, s, 3, blockSize+37)
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		fillStore(t, s, 2, 41) // post-checkpoint tail data
		return s, func() { s.Close() }
	}
	plain, closePlain := build(false)
	defer closePlain()
	instr, closeInstr := build(true)
	defer closeInstr()

	queries := []RangeQuery{
		{Component: "*", Metric: "*", From: 0, To: 1 << 40},
		{Component: "comp*", Metric: "cpu", From: 1000, To: 30000},
		{Component: "*", Metric: "*", From: 0, To: 1 << 40, Agg: AggMax, StepMS: 5000},
		{Component: "*", Metric: "*", From: 0, To: 1 << 40, Agg: AggAvg, StepMS: 2500},
		{Component: "*", Metric: "*", From: 0, To: 1 << 40, Agg: AggRate, StepMS: 10000},
	}
	for _, q := range queries {
		a, err := plain.QueryRange(context.Background(), q)
		if err != nil {
			t.Fatalf("plain QueryRange(%+v): %v", q, err)
		}
		b, err := instr.QueryRange(context.Background(), q)
		if err != nil {
			t.Fatalf("instrumented QueryRange(%+v): %v", q, err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("telemetry changed query bytes for %+v:\nplain: %s\ninstr: %s", q, aj, bj)
		}
	}
}

// TestIngestParsedMatchesWrite pins that the server's parse-first path
// stores exactly what Write stores.
func TestIngestParsedMatchesWrite(t *testing.T) {
	payload := EncodeLineProtocol([]Sample{
		{Component: "web", Metric: "cpu", T: 1000, V: 0.5},
		{Component: "web", Metric: "cpu", T: 2000, V: 0.75},
		{Component: "db", Metric: "mem", T: 1500, V: 3},
	})
	a := NewSharded(2)
	na, err := a.Write(payload)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	b := NewSharded(2)
	samples, err := ParseLineProtocol(payload)
	if err != nil {
		t.Fatalf("ParseLineProtocol: %v", err)
	}
	nb, err := b.IngestParsed(samples, len(payload), time.Now())
	if err != nil {
		t.Fatalf("IngestParsed: %v", err)
	}
	if na != nb {
		t.Fatalf("stored counts differ: Write=%d IngestParsed=%d", na, nb)
	}
	qa, _ := a.QueryMatch("*", "*", 0, 1<<40)
	qb, _ := b.QueryMatch("*", "*", 0, 1<<40)
	aj, _ := json.Marshal(qa)
	bj, _ := json.Marshal(qb)
	if string(aj) != string(bj) {
		t.Fatalf("IngestParsed stored different data:\nWrite: %s\nIngestParsed: %s", aj, bj)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Points != sb.Points || sa.NetworkInBytes != sb.NetworkInBytes {
		t.Fatalf("accounting differs: %+v vs %+v", sa, sb)
	}
}
