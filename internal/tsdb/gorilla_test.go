package tsdb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompressRoundTripRegularGrid(t *testing.T) {
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{T: int64(i) * 500, V: 20 + 5*math.Sin(float64(i)/10)}
	}
	block, err := CompressBlock(pts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("decoded %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d = %+v, want %+v", i, got[i], pts[i])
		}
	}
}

func TestCompressRatioOnRegularData(t *testing.T) {
	// A regular grid with slowly-varying values must compress well below
	// the raw 16 bytes/point.
	pts := make([]Point, 1000)
	v := 100.0
	for i := range pts {
		pts[i] = Point{T: int64(i) * 500, V: v}
		if i%17 == 0 {
			v += 1
		}
	}
	block, err := CompressBlock(pts)
	if err != nil {
		t.Fatal(err)
	}
	perPoint := float64(len(block)) / float64(len(pts))
	if perPoint > 4 {
		t.Errorf("compressed size = %.2f bytes/point, want < 4", perPoint)
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		pts := make([]Point, n)
		tcur := rng.Int63n(1 << 40)
		for i := range pts {
			tcur += rng.Int63n(10000)
			pts[i] = Point{T: tcur, V: rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)))}
		}
		block, err := CompressBlock(pts)
		if err != nil {
			return false
		}
		got, err := DecompressBlock(block)
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range pts {
			if got[i].T != pts[i].T {
				return false
			}
			// NaN-safe exact bit comparison.
			if math.Float64bits(got[i].V) != math.Float64bits(pts[i].V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompressSpecialValues(t *testing.T) {
	pts := []Point{
		{T: 0, V: 0},
		{T: 500, V: math.Inf(1)},
		{T: 1000, V: math.Inf(-1)},
		{T: 1500, V: math.NaN()},
		{T: 2000, V: -0.0},
		{T: 2500, V: math.MaxFloat64},
		{T: 3000, V: math.SmallestNonzeroFloat64},
	}
	block, err := CompressBlock(pts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if math.Float64bits(got[i].V) != math.Float64bits(pts[i].V) {
			t.Errorf("point %d bits mismatch", i)
		}
	}
}

func TestCompressRejectsUnorderedTimestamps(t *testing.T) {
	if _, err := CompressBlock([]Point{{T: 10}, {T: 5}}); err == nil {
		t.Fatal("expected error for unordered timestamps")
	}
}

func TestCompressEmpty(t *testing.T) {
	block, err := CompressBlock(nil)
	if err != nil || block != nil {
		t.Fatalf("empty compress = %v, %v", block, err)
	}
	pts, err := DecompressBlock(nil)
	if err != nil || pts != nil {
		t.Fatalf("empty decompress = %v, %v", pts, err)
	}
}

func TestDecompressCorruptBlock(t *testing.T) {
	pts := []Point{{T: 0, V: 1}, {T: 500, V: 2}, {T: 1000, V: 3}}
	block, err := CompressBlock(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation must error, not panic or fabricate points.
	if _, err := DecompressBlock(block[:len(block)-2]); err == nil {
		t.Error("expected error for truncated block")
	}
	if _, err := DecompressBlock(block[:3]); err == nil {
		t.Error("expected error for severely truncated block")
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := &bitWriter{}
	w.writeBit(true)
	w.writeBits(0b1011, 4)
	w.writeBits(0xDEADBEEF, 32)
	w.writeBit(false)
	w.writeBits(0x3F, 6)

	r := newBitReader(w.bytes())
	if b, _ := r.readBit(); !b {
		t.Fatal("first bit lost")
	}
	if v, _ := r.readBits(4); v != 0b1011 {
		t.Fatalf("4-bit field = %b", v)
	}
	if v, _ := r.readBits(32); v != 0xDEADBEEF {
		t.Fatalf("32-bit field = %x", v)
	}
	if b, _ := r.readBit(); b {
		t.Fatal("false bit lost")
	}
	if v, _ := r.readBits(6); v != 0x3F {
		t.Fatalf("6-bit field = %x", v)
	}
	if _, err := r.readBits(64); err == nil {
		t.Error("expected exhaustion error")
	}
}

func BenchmarkCompressBlock(b *testing.B) {
	pts := make([]Point, 512)
	for i := range pts {
		pts[i] = Point{T: int64(i) * 500, V: 20 + 5*math.Sin(float64(i)/10)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CompressBlock(pts); err != nil {
			b.Fatal(err)
		}
	}
}
