package tsdb

import (
	"github.com/sieve-microservices/sieve/internal/telemetry"
)

// StoreTelemetry bundles the instruments the storage engine updates:
// WAL append/fsync latency, checkpoint duration and drained volume,
// block publishes and retention drops, and the chunk-level fate split
// (skipped from the index vs consumed as a summary vs decoded) that
// explains where query time goes. Every field is optional — the
// instruments are nil-safe and a nil *StoreTelemetry disables the
// per-scan counting branch entirely — so an uninstrumented store pays
// one nil check per scan.
//
// Install with Sharded.SetTelemetry BEFORE the store serves traffic
// (sieved wires it immediately after OpenSharded): installation is
// ordered against the background tickers by the shard and engine
// locks, but the instrument set itself is fixed after that point.
type StoreTelemetry struct {
	// WALAppendSeconds times successful WAL record appends (encode +
	// write + inline fsync under FsyncAlways), per batch.
	WALAppendSeconds *telemetry.Histogram
	// WALFsyncSeconds times every WAL fsync: the background ticker's
	// flushes and FsyncAlways's group-commit leader syncs.
	WALFsyncSeconds *telemetry.Histogram
	// WALGroupCommitBatches observes, per group-commit fsync, how many
	// appended batches that one fsync made durable — the coalescing
	// factor. A histogram pinned at 1 means no concurrency (every
	// fsync covered exactly its own batch); mass at 4/8/16 is the
	// group-commit win.
	WALGroupCommitBatches *telemetry.Histogram
	// WALFsyncsSaved counts fsyncs avoided by group commit: for a
	// leader sync covering n batches, n-1 fsyncs the pre-group-commit
	// protocol would have issued.
	WALFsyncsSaved *telemetry.Counter
	// WALBytesWritten counts bytes appended to WAL segments (framed
	// record bytes, after series-dictionary compression).
	WALBytesWritten *telemetry.Counter
	// CheckpointSeconds times whole checkpoint runs (cut + block build +
	// WAL prune + retention), success or failure.
	CheckpointSeconds *telemetry.Histogram
	// CheckpointPoints counts points drained from memory into blocks.
	CheckpointPoints *telemetry.Counter
	// BlockPublishes counts immutable blocks published by checkpoints.
	BlockPublishes *telemetry.Counter
	// RetentionDroppedBlocks counts blocks removed by retention.
	RetentionDroppedBlocks *telemetry.Counter
	// ChunksSkipped counts sealed chunks skipped from their index
	// summary alone (time range disjoint from the query).
	ChunksSkipped *telemetry.Counter
	// ChunksSummarized counts chunks consumed by aggregation push-down
	// without a read or decode.
	ChunksSummarized *telemetry.Counter
	// ChunksDecoded counts chunks actually decompressed for a scan.
	ChunksDecoded *telemetry.Counter
	// DownsampledBucketsRead counts downsampled buckets consumed by
	// aggregated queries instead of raw chunk work.
	DownsampledBucketsRead *telemetry.Counter
	// CompactionsRun counts compaction passes started (merge planning +
	// downsampling), whether or not any blocks were merged.
	CompactionsRun *telemetry.Counter
	// CompactionMergedBlocks counts source blocks retired by compaction.
	CompactionMergedBlocks *telemetry.Counter
	// CompactionReclaimedBytes counts chunk bytes freed by merges
	// (source chunk bytes minus merged block chunk bytes).
	CompactionReclaimedBytes *telemetry.Counter
	// CompactionSeconds times individual merge runs (read sources, write
	// merged block, swap, delete sources).
	CompactionSeconds *telemetry.Histogram
	// DownsampleSeconds times building one downsampled companion file.
	DownsampleSeconds *telemetry.Histogram
}

// NewStoreTelemetry creates the storage instrument set on reg under
// the sieve_ namespace.
func NewStoreTelemetry(reg *telemetry.Registry) *StoreTelemetry {
	return &StoreTelemetry{
		WALAppendSeconds: reg.Histogram("sieve_wal_append_seconds",
			"WAL record append latency per batch (including inline fsync under -fsync always)", nil),
		WALFsyncSeconds: reg.Histogram("sieve_wal_fsync_seconds",
			"WAL fsync latency (background ticker flushes and group-commit leader syncs)", nil),
		WALGroupCommitBatches: reg.Histogram("sieve_wal_group_commit_batches",
			"appended batches made durable per group-commit fsync (coalescing factor)",
			[]float64{1, 2, 4, 8, 16, 32, 64}),
		WALFsyncsSaved: reg.Counter("sieve_wal_group_commit_fsyncs_saved_total",
			"fsyncs avoided by group commit (cohort size minus one per leader sync)"),
		WALBytesWritten: reg.Counter("sieve_wal_bytes_written_total",
			"bytes appended to WAL segments"),
		CheckpointSeconds: reg.Histogram("sieve_checkpoint_seconds",
			"checkpoint duration: cut, block build, WAL prune, retention", nil),
		CheckpointPoints: reg.Counter("sieve_checkpoint_points_total",
			"points drained from memory into immutable blocks by checkpoints"),
		BlockPublishes: reg.Counter("sieve_block_publishes_total",
			"immutable blocks published by checkpoints"),
		RetentionDroppedBlocks: reg.Counter("sieve_retention_dropped_blocks_total",
			"blocks removed by retention"),
		ChunksSkipped: reg.Counter("sieve_query_chunks_skipped_total",
			"sealed chunks skipped from index summaries (disjoint time range)"),
		ChunksSummarized: reg.Counter("sieve_query_chunks_summarized_total",
			"chunks consumed by aggregation push-down without decoding"),
		ChunksDecoded: reg.Counter("sieve_query_chunks_decoded_total",
			"chunks decompressed for scans"),
		DownsampledBucketsRead: reg.Counter("sieve_query_downsampled_buckets_total",
			"downsampled buckets consumed by aggregated queries instead of raw chunks"),
		CompactionsRun: reg.Counter("sieve_compactions_total",
			"compaction passes started"),
		CompactionMergedBlocks: reg.Counter("sieve_compaction_merged_blocks_total",
			"source blocks retired by compaction merges"),
		CompactionReclaimedBytes: reg.Counter("sieve_compaction_reclaimed_bytes_total",
			"chunk bytes freed by compaction merges"),
		CompactionSeconds: reg.Histogram("sieve_compaction_seconds",
			"merge-run duration: read sources, write merged block, swap, delete", nil),
		DownsampleSeconds: reg.Histogram("sieve_downsample_seconds",
			"downsampled-companion build duration per block and resolution", nil),
	}
}

// noteChunks flushes one scan's chunk-fate counts. Scans accumulate in
// local ints and flush once here, keeping atomics off the per-chunk
// loop; nil-safe so uninstrumented scans cost one branch.
func (t *StoreTelemetry) noteChunks(skipped, summarized, decoded int) {
	if t == nil {
		return
	}
	t.ChunksSkipped.Add(uint64(skipped))
	t.ChunksSummarized.Add(uint64(summarized))
	t.ChunksDecoded.Add(uint64(decoded))
}

// SetTelemetry installs the instrument set on the store: the shards
// (chunk-scan counting), their WALs (append/fsync latency), and the
// durable engine (checkpoint/retention counters). Call once, before
// the store serves reads or writes.
func (s *Sharded) SetTelemetry(t *StoreTelemetry) {
	for _, sh := range s.shards {
		sh.setTelemetry(t)
	}
	if s.dur != nil {
		s.dur.setTelemetry(t)
	}
}

func (db *DB) setTelemetry(t *StoreTelemetry) {
	db.mu.Lock()
	db.tel = t
	db.mu.Unlock()
	if db.wal != nil {
		var appendH, syncH, groupH *telemetry.Histogram
		var saved, bytes *telemetry.Counter
		if t != nil {
			appendH, syncH, groupH = t.WALAppendSeconds, t.WALFsyncSeconds, t.WALGroupCommitBatches
			saved, bytes = t.WALFsyncsSaved, t.WALBytesWritten
		}
		db.wal.setTelemetry(appendH, syncH, groupH, saved, bytes)
	}
}

func (d *durable) setTelemetry(t *StoreTelemetry) {
	d.mu.Lock()
	d.tel = t
	d.mu.Unlock()
}

// telemetry reads the engine's instrument set under the lock that
// orders it against setTelemetry.
func (d *durable) telemetry() *StoreTelemetry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tel
}

// WALSegments reports the live WAL segment count across shards (0 for
// an in-memory store) — the backlog gauge: a growing count with a
// failing checkpoint means segments are accumulating unboundedly.
func (s *Sharded) WALSegments() int {
	if s.dur == nil {
		return 0
	}
	var n int
	for _, sh := range s.shards {
		n += sh.wal.segmentCount()
	}
	return n
}

// WALSizeBytes reports the bytes held by live WAL segments across
// shards (0 for an in-memory store).
func (s *Sharded) WALSizeBytes() int64 {
	if s.dur == nil {
		return 0
	}
	var n int64
	for _, sh := range s.shards {
		n += sh.wal.sizeBytes()
	}
	return n
}

// BlockCount reports the number of published immutable blocks (0 for
// an in-memory store).
func (s *Sharded) BlockCount() int {
	if s.dur == nil {
		return 0
	}
	_, _, count := s.dur.diskStats()
	return count
}
