package tsdb

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Background compaction and downsampling.
//
// A checkpoint publishes one immutable block per flush, so a long-lived
// store accumulates thousands of tiny blocks: every query then pays a
// per-block meta check, index lookup, and (cold) chunk read per series
// per block. The compactor runs off the ingest path and merges adjacent
// small blocks into larger ones — same block format, same atomic
// tmp-dir + rename publish — and attaches downsampled companion files
// (5m and 1h per-bucket summaries) that aggregated queries consume
// without touching chunk data at all.
//
// Invariants, in order of importance:
//
//   - Byte-identical reads. A merged block preserves the exact storage
//     order of its sources: per series, the concatenation of the
//     sources' scan streams (in covered-sequence order), re-chunked at
//     monotone-run boundaries so every chunk stays internally
//     time-sorted. Raw queries stably re-sort, and aggregation decode
//     folds in storage order, so both see the same bytes before and
//     after a compaction. Downsampled buckets are consumed only when
//     the summary provably reproduces what decoding would yield (see
//     feedDownsampled); sum/avg never consume them — per-bucket partial
//     sums fold in a different order than the point-by-point reference,
//     so those aggregations always decode raw chunks.
//   - Crash safety. The merged block is built under a tmp- prefix and
//     renamed into place; its meta records the covered checkpoint
//     sequence range [MinSeq, MaxSeq]. A crash before the rename leaves
//     a tmp- dir the next open removes; a crash after the rename but
//     before the sources are deleted leaves blocks whose ranges the
//     merged block covers — openBlocks removes them, completing the
//     interrupted compaction (dropSupersededBlocks). Companion files
//     are written tmp + rename inside the block directory and die with
//     it.
//   - Accounting. A compaction moves points between blocks but never
//     changes the point set, so Stats.Points (basePoints) is untouched;
//     retention accounts a merged block's points exactly once when it
//     expires, and the crash-window duplicate sources are removed at
//     open before basePoints is summed.

// downsampleResolutions are the companion resolutions, finest first:
// 5 minutes and 1 hour, the classic Thanos ladder. A query uses the
// coarsest resolution whose bucket width divides its step.
var downsampleResolutions = []int64{5 * 60 * 1000, 60 * 60 * 1000}

// floorDiv returns floor(t / d) for d > 0, exact for every int64 t
// (plain Go division truncates toward zero, which rounds negative
// timestamps the wrong way).
func floorDiv(t, d int64) int64 {
	q := t / d
	if t%d != 0 && t < 0 {
		q--
	}
	return q
}

// downsampleSeries folds one series' points (in storage order) into
// per-bucket summaries on the absolute resMS grid (bucket k covers
// [k*resMS, (k+1)*resMS)). Every per-bucket fact follows the exact
// accumulation rules of aggregator.add on the same feed order — count,
// comparison min/max, sequential-fold sum, first/last displaced by
// strict-less / greater-or-equal timestamp — so consuming a bucket
// summary is bit-identical to decoding its points. Buckets containing
// NaN (order-dependent min/max) or any non-finite fact (JSON cannot
// carry it) are flagged NoSummary with zeroed value fields and are
// never consumed. Bucket assignment uses floorDiv, exact at extreme
// timestamps (no multiply that could overflow).
func downsampleSeries(pts []Point, resMS int64) []dsRef {
	if len(pts) == 0 {
		return nil
	}
	buckets := map[int64]*dsRef{}
	idxs := make([]int64, 0, 8)
	for _, p := range pts {
		idx := floorDiv(p.T, resMS)
		b := buckets[idx]
		if b == nil {
			b = &dsRef{
				Count: 1, MinT: p.T, MaxT: p.T,
				MinV: p.V, MaxV: p.V, FirstV: p.V, LastV: p.V, SumV: p.V,
			}
			if p.V != p.V { // NaN
				b.NoSummary = true
			}
			buckets[idx] = b
			idxs = append(idxs, idx)
			continue
		}
		b.Count++
		if p.V != p.V {
			b.NoSummary = true
		}
		if p.V < b.MinV {
			b.MinV = p.V
		}
		if p.V > b.MaxV {
			b.MaxV = p.V
		}
		b.SumV += p.V
		if p.T < b.MinT {
			b.MinT, b.FirstV = p.T, p.V
		}
		if p.T >= b.MaxT {
			b.MaxT, b.LastV = p.T, p.V
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	out := make([]dsRef, 0, len(idxs))
	for _, idx := range idxs {
		r := *buckets[idx]
		if r.NoSummary ||
			!isFinite(r.MinV) || !isFinite(r.MaxV) ||
			!isFinite(r.FirstV) || !isFinite(r.LastV) || !isFinite(r.SumV) {
			r.NoSummary = true
			r.MinV, r.MaxV, r.FirstV, r.LastV, r.SumV = 0, 0, 0, 0, 0
		}
		out = append(out, r)
	}
	return out
}

// buildDownsampled computes and atomically persists one companion file
// for b, returning the series map to attach. The block is immutable, so
// no lock is needed to read it; the caller serializes against retention
// (which would delete the directory) via flushMu.
func buildDownsampled(b *block, resMS int64) (map[string][]dsRef, error) {
	series := make(map[string][]dsRef, len(b.index))
	for key := range b.index {
		pts, err := b.query(key, math.MinInt64, math.MaxInt64, nil)
		if err != nil {
			return nil, fmt.Errorf("downsampling %s %q: %w", b.dir, key, err)
		}
		if refs := downsampleSeries(pts, resMS); len(refs) > 0 {
			series[key] = refs
		}
	}
	data, err := json.MarshalIndent(dsIndex{Version: 1, ResolutionMS: resMS, Series: series}, "", " ")
	if err != nil {
		return nil, err
	}
	name := downsampledName(resMS)
	tmp := filepath.Join(b.dir, blockTmpPrefix+name)
	if err := writeFileSync(tmp, data); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, name)); err != nil {
		return nil, err
	}
	if err := syncDir(b.dir); err != nil {
		return nil, err
	}
	return series, nil
}

// scanDownsampled tries to answer one block's contribution to an
// aggregated query from a downsampled companion instead of the chunks.
// Resolution selection: the coarsest companion whose bucket width
// divides the query step (a step below 5m divides neither resolution,
// so those queries stay raw — per-resolution eligibility then decides
// authoritatively). Only pushdown-capable aggregations (min/max/count/
// rate) participate: sum and avg fold per-bucket partial sums in a
// different order than the point-by-point reference, so they always
// decode raw to keep the bit-exactness contract. Returns true when the
// block was fully consumed from a companion; false means the caller
// must scan the chunks (never a partial mix within one block).
func scanDownsampled(b *block, key string, q RangeQuery, acc *aggregator, tel *StoreTelemetry) bool {
	if !acc.pushdown || len(b.ds) == 0 {
		return false
	}
	for i := len(downsampleResolutions) - 1; i >= 0; i-- {
		res := downsampleResolutions[i]
		if q.StepMS%res != 0 {
			continue
		}
		refs := b.ds[res][key]
		if len(refs) == 0 {
			// hasSeries was true, so a companion at this resolution that
			// lacks the key cannot represent the block; try a finer one.
			continue
		}
		if feedDownsampled(refs, q, acc, tel) {
			return true
		}
	}
	return false
}

// feedDownsampled feeds a companion's bucket summaries for one series
// into the accumulator — but only if every bucket overlapping the query
// range is provably consumable: fully inside [From, To) (a partially
// overlapping bucket would contribute points the summary cannot split
// out), mapping to a single query bucket (companion buckets sit on the
// absolute grid, query buckets are anchored at From, so an unaligned
// From can make a 5m bucket straddle a 10m query bucket), and carrying
// a trustworthy summary (no NaN, no non-finite facts). One ineligible
// bucket rejects the whole block — all or nothing, so the caller's raw
// fallback never double-feeds.
func feedDownsampled(refs []dsRef, q RangeQuery, acc *aggregator, tel *StoreTelemetry) bool {
	for _, r := range refs {
		if r.MaxT < q.From || r.MinT >= q.To {
			continue
		}
		if r.NoSummary || r.MinT < q.From || r.MaxT >= q.To ||
			acc.bucketIdx(r.MinT) != acc.bucketIdx(r.MaxT) {
			return false
		}
	}
	n := 0
	for _, r := range refs {
		if r.MaxT < q.From || r.MinT >= q.To {
			continue
		}
		acc.chunk(r.agg())
		n++
	}
	if tel != nil {
		tel.DownsampledBucketsRead.Add(uint64(n))
	}
	return true
}

// planCompactRuns groups a snapshot of the block list (ordered by
// covered sequence range) into runs of adjacent blocks to merge: each
// run holds at least two blocks and at most CompactMaxBlockBytes of
// chunk data. Blocks at or above the cap stand alone and end the run on
// either side, so a fully compacted store converges instead of
// rewriting its big blocks forever.
func planCompactRuns(blocks []*block, maxBytes int64) [][]*block {
	var runs [][]*block
	var run []*block
	var runBytes int64
	flush := func() {
		if len(run) >= 2 {
			runs = append(runs, run)
		}
		run, runBytes = nil, 0
	}
	for _, b := range blocks {
		sz := b.meta.ChunkBytes
		if sz >= maxBytes {
			flush()
			continue
		}
		if runBytes+sz > maxBytes {
			flush()
		}
		run = append(run, b)
		runBytes += sz
	}
	flush()
	return runs
}

// mergeRun builds one merged block from an adjacent run of source
// blocks. Per series, the sources' full scan streams are concatenated
// in run order — exactly the order a query's block loop feeds them —
// and split into monotone segments wherever a timestamp strictly
// decreases (late data across checkpoints), so writeBlockParts keeps
// every chunk internally sorted without ever reordering the stream.
func mergeRun(blocksDir string, seq uint64, run []*block) (*block, error) {
	keySet := map[string]struct{}{}
	var totalPts int
	for _, b := range run {
		totalPts += b.meta.Points
		for k := range b.index {
			keySet[k] = struct{}{}
		}
	}
	series := make(map[string][][]Point, len(keySet))
	for key := range keySet {
		var stream []Point
		for _, b := range run {
			if !b.hasSeries(key) {
				continue
			}
			pts, err := b.query(key, math.MinInt64, math.MaxInt64, nil)
			if err != nil {
				return nil, fmt.Errorf("tsdb: compacting %s %q: %w", b.dir, key, err)
			}
			stream = append(stream, pts...)
		}
		if len(stream) == 0 {
			continue
		}
		var segs [][]Point
		start := 0
		for i := 1; i < len(stream); i++ {
			if stream[i].T < stream[i-1].T {
				segs = append(segs, stream[start:i])
				start = i
			}
		}
		series[key] = append(segs, stream[start:])
	}
	cuts := map[string]uint64{}
	level := 0
	for _, b := range run {
		for k, c := range b.meta.WALCuts {
			if c > cuts[k] {
				cuts[k] = c
			}
		}
		if b.meta.Level > level {
			level = b.meta.Level
		}
	}
	if len(cuts) == 0 {
		cuts = nil
	}
	merged, err := writeBlockParts(blocksDir, blockMeta{
		Seq:     seq,
		WALCuts: cuts,
		MinSeq:  run[0].meta.minSeq(),
		MaxSeq:  run[len(run)-1].meta.maxSeq(),
		Level:   level + 1,
	}, series)
	if err != nil {
		return nil, fmt.Errorf("tsdb: writing merged block: %w", err)
	}
	if merged.meta.Points != totalPts {
		// Defensive: a miscount here would silently corrupt Stats.Points
		// and retention accounting; fail the compaction instead.
		_ = merged.close()
		_ = os.RemoveAll(merged.dir)
		return nil, fmt.Errorf("tsdb: merged block holds %d points, sources held %d", merged.meta.Points, totalPts)
	}
	return merged, nil
}

// compact runs one full compaction pass: merge every planned run of
// adjacent small blocks, then (with Downsample enabled) attach missing
// companion files. Each run and each companion holds flushMu for its own
// duration only, so checkpoints interleave between units of work instead
// of stalling behind a whole pass; ingest never blocks (the shard locks
// are untouched — compaction reads only immutable published blocks).
func (d *durable) compact() error {
	if tel := d.telemetry(); tel != nil {
		tel.CompactionsRun.Inc()
	}
	d.mu.RLock()
	snapshot := append([]*block(nil), d.blocks...)
	maxBytes := d.opts.CompactMaxBlockBytes
	d.mu.RUnlock()
	for _, run := range planCompactRuns(snapshot, maxBytes) {
		if err := d.compactRun(run); err != nil {
			return err
		}
	}
	if !d.opts.Downsample {
		return nil
	}
	d.mu.RLock()
	var todo []*block
	for _, b := range d.blocks {
		for _, res := range downsampleResolutions {
			if b.ds[res] == nil {
				todo = append(todo, b)
				break
			}
		}
	}
	d.mu.RUnlock()
	for _, b := range todo {
		if err := d.downsampleBlock(b); err != nil {
			return err
		}
	}
	return nil
}

// compactRun merges one planned run and swaps it into the block list.
// flushMu serializes against checkpoints and retention, so the sources
// cannot be closed or deleted while they are being read; the list swap
// itself runs under mu, atomically for readers. The merged block holds
// the identical point set, so a reader before or after the swap sees
// the same bytes.
func (d *durable) compactRun(run []*block) error {
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	if d.closed {
		return nil
	}
	// Revalidate against retention: a block dropped between planning and
	// now invalidates the run (its neighbors may no longer be adjacent).
	d.mu.Lock()
	live := make(map[*block]bool, len(d.blocks))
	for _, b := range d.blocks {
		live[b] = true
	}
	for _, b := range run {
		if !live[b] {
			d.mu.Unlock()
			return nil
		}
	}
	seq := d.nextSeq
	d.nextSeq++
	d.mu.Unlock()

	var start time.Time
	tel := d.telemetry()
	if tel != nil {
		start = time.Now()
	}
	merged, err := mergeRun(d.blocksDir, seq, run)
	if err != nil {
		return err
	}

	inRun := make(map[*block]bool, len(run))
	var sourceBytes int64
	for _, b := range run {
		inRun[b] = true
		sourceBytes += b.meta.ChunkBytes
	}
	d.mu.Lock()
	kept := make([]*block, 0, len(d.blocks)-len(run)+1)
	for _, b := range d.blocks {
		if b == run[0] {
			kept = append(kept, merged)
		}
		if !inRun[b] {
			kept = append(kept, b)
		}
	}
	d.blocks = kept
	if tel != nil {
		tel.CompactionMergedBlocks.Add(uint64(len(run)))
		if reclaimed := sourceBytes - merged.meta.ChunkBytes; reclaimed > 0 {
			tel.CompactionReclaimedBytes.Add(uint64(reclaimed))
		}
		tel.CompactionSeconds.ObserveSince(start)
	}
	d.mu.Unlock()
	// No reader can reach the sources anymore (the swap ran under mu,
	// and scans hold the read lock for their whole block loop): retire
	// them. A crash between the rename above and these removals leaves
	// blocks the merged meta's sequence range covers; the next open
	// completes the deletion (dropSupersededBlocks).
	var firstErr error
	for _, b := range run {
		if err := b.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := os.RemoveAll(b.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// downsampleBlock attaches every missing companion resolution to one
// block. flushMu keeps retention (and other compaction work) from
// deleting the directory mid-write; the attach itself runs under mu,
// where readers look companions up.
func (d *durable) downsampleBlock(b *block) error {
	d.flushMu.Lock()
	defer d.flushMu.Unlock()
	if d.closed {
		return nil
	}
	d.mu.RLock()
	live := false
	for _, lb := range d.blocks {
		if lb == b {
			live = true
			break
		}
	}
	var missing []int64
	if live {
		for _, res := range downsampleResolutions {
			if b.ds[res] == nil {
				missing = append(missing, res)
			}
		}
	}
	d.mu.RUnlock()
	tel := d.telemetry()
	for _, res := range missing {
		var start time.Time
		if tel != nil {
			start = time.Now()
		}
		series, err := buildDownsampled(b, res)
		if err != nil {
			return err
		}
		d.mu.Lock()
		if b.ds == nil {
			b.ds = map[int64]map[string][]dsRef{}
		}
		b.ds[res] = series
		d.mu.Unlock()
		if tel != nil {
			tel.DownsampleSeconds.ObserveSince(start)
		}
	}
	return nil
}

// compactLoop runs compaction passes on a ticker.
func (d *durable) compactLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := d.compact(); err != nil {
				// Next tick retries; sources are only removed after a
				// successful swap, so a failed pass loses nothing.
				slog.Error("compaction pass failed", "err", err)
			}
		}
	}
}
