package tsdb

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// TestParseLineProtocolRoundtrip pins the decode of a well-formed batch.
func TestParseLineProtocolRoundtrip(t *testing.T) {
	in := []Sample{
		{Component: "web", Metric: "cpu_usage", T: 500, V: 0.25},
		{Component: "redis", Metric: "ops_total", T: 1000, V: 12345},
		{Component: "a b", Metric: "latency_p90", T: -3, V: -1.5e-9},
	}
	got, err := ParseLineProtocol(EncodeLineProtocol(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, in)
	}
}

// TestParseLineProtocolMalformed drives every malformed-line class the
// server may see on the wire: each must produce an error naming the
// offending line, never a panic and never silently stored garbage.
func TestParseLineProtocolMalformed(t *testing.T) {
	cases := []struct {
		name, payload, wantLine string
	}{
		{"no tag separator", "webvalue=1 500", "line 1"},
		{"missing metric tag", "web,m=cpu value=1 500", "line 1"},
		{"missing field section", "web,metric=cpu", "line 1"},
		{"missing value field", "web,metric=cpu v=1 500", "line 1"},
		{"missing timestamp", "web,metric=cpu value=1", "line 1"},
		{"bad value", "web,metric=cpu value=abc 500", "line 1"},
		{"NaN value", "web,metric=cpu value=NaN 500", "line 1"},
		{"negative NaN value", "web,metric=cpu value=-nan 500", "line 1"},
		{"positive infinity", "web,metric=cpu value=+Inf 500", "line 1"},
		{"negative infinity", "web,metric=cpu value=-Inf 500", "line 1"},
		{"bad timestamp", "web,metric=cpu value=1 12h", "line 1"},
		{"float timestamp", "web,metric=cpu value=1 1.5", "line 1"},
		{"timestamp overflow", "web,metric=cpu value=1 99999999999999999999", "line 1"},
		{"nanosecond timestamp", "web,metric=cpu value=1 1700000000000000000", "line 1"},
		{"empty component", ",metric=cpu value=1 500", "line 1"},
		{"empty metric", "web,metric= value=1 500", "line 1"},
		{"error on second line", "web,metric=cpu value=1 500\ngarbage", "line 2"},
		{"blank lines still counted", "\n\nweb,metric=cpu value=1\n", "line 3"},
		{"extra field garbage", "web,metric=cpu value=1 500 700", "line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			samples, err := ParseLineProtocol([]byte(tc.payload))
			if err == nil {
				t.Fatalf("ParseLineProtocol(%q) = %+v, want error", tc.payload, samples)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Fatalf("error %q does not name %s", err, tc.wantLine)
			}
		})
	}
}

// TestParseLineProtocolBlankAndEmpty pins the tolerated degenerate
// payloads: empty bodies and blank lines decode to zero samples.
func TestParseLineProtocolBlankAndEmpty(t *testing.T) {
	for _, payload := range []string{"", "\n", "\n\n\n"} {
		got, err := ParseLineProtocol([]byte(payload))
		if err != nil {
			t.Fatalf("ParseLineProtocol(%q): %v", payload, err)
		}
		if len(got) != 0 {
			t.Fatalf("ParseLineProtocol(%q) = %+v, want none", payload, got)
		}
	}
}

// FuzzParseLineProtocol feeds arbitrary bytes to the parser. Two
// invariants: never panic, and any accepted batch must survive an
// encode/decode roundtrip unchanged (the parser and encoder agree on the
// wire format, and no non-finite value sneaks through).
func FuzzParseLineProtocol(f *testing.F) {
	f.Add([]byte("web,metric=cpu value=0.5 500\n"))
	f.Add([]byte("web,metric=cpu value=NaN 500\n"))
	f.Add([]byte("a,metric=b value=1 2\na,metric=b value=3 4\n"))
	f.Add([]byte(",metric= value= \n"))
	f.Add([]byte("x,metric=y value=1e309 7"))
	f.Add([]byte("\n\nweb,metric=cpu value=-2 -9\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		samples, err := ParseLineProtocol(data)
		if err != nil {
			return
		}
		for _, s := range samples {
			if s.Component == "" || s.Metric == "" {
				t.Fatalf("accepted sample with empty name: %+v", s)
			}
		}
		again, err := ParseLineProtocol(EncodeLineProtocol(samples))
		if err != nil {
			t.Fatalf("re-encoded batch failed to parse: %v", err)
		}
		if !reflect.DeepEqual(samples, again) {
			t.Fatalf("roundtrip mismatch:\nfirst  %+v\nsecond %+v", samples, again)
		}
	})
}

// parseLineProtocolSplit is the pre-optimization parser (strings.Split
// per payload, one substring per line), kept as the benchmark baseline
// so the allocation win of the index-based scanner stays measured.
func parseLineProtocolSplit(data []byte) ([]Sample, error) {
	var out []Sample
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		s, err := parseLineSplit(line)
		if err != nil {
			return nil, fmt.Errorf("tsdb: line %d: %w", i+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parseLineSplit(line string) (Sample, error) {
	var s Sample
	comma := strings.IndexByte(line, ',')
	if comma < 0 {
		return s, fmt.Errorf("missing tag separator in %q", line)
	}
	s.Component = line[:comma]
	rest := line[comma+1:]
	if !strings.HasPrefix(rest, "metric=") {
		return s, fmt.Errorf("missing metric tag in %q", line)
	}
	rest = rest[len("metric="):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return s, fmt.Errorf("missing field section in %q", line)
	}
	s.Metric = rest[:sp]
	rest = rest[sp+1:]
	if !strings.HasPrefix(rest, "value=") {
		return s, fmt.Errorf("missing value field in %q", line)
	}
	rest = rest[len("value="):]
	sp = strings.IndexByte(rest, ' ')
	if sp < 0 {
		return s, fmt.Errorf("missing timestamp in %q", line)
	}
	v, err := strconv.ParseFloat(rest[:sp], 64)
	if err != nil {
		return s, fmt.Errorf("bad value: %w", err)
	}
	t, err := strconv.ParseInt(rest[sp+1:], 10, 64)
	if err != nil {
		return s, fmt.Errorf("bad timestamp: %w", err)
	}
	if s.Component == "" || s.Metric == "" {
		return s, fmt.Errorf("empty component or metric in %q", line)
	}
	s.V = v
	s.T = t
	return s, nil
}

// benchPayload builds a realistic scrape batch: 1000 lines across 50
// components x 20 metrics.
func benchPayload() []byte {
	var samples []Sample
	for c := 0; c < 50; c++ {
		for m := 0; m < 20; m++ {
			samples = append(samples, Sample{
				Component: fmt.Sprintf("component-%02d", c),
				Metric:    fmt.Sprintf("metric_%02d_total", m),
				T:         int64(c*20+m) * 500,
				V:         float64(c) * 1.25e3 / float64(m+1),
			})
		}
	}
	return EncodeLineProtocol(samples)
}

// TestParseLineProtocolMatchesSplitBaseline keeps the optimized parser
// behaviorally identical to the baseline on well-formed input.
func TestParseLineProtocolMatchesSplitBaseline(t *testing.T) {
	payload := benchPayload()
	fast, err := ParseLineProtocol(payload)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := parseLineProtocolSplit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatal("index-based parser disagrees with split baseline")
	}
}

func BenchmarkParseLineProtocol(b *testing.B) {
	payload := benchPayload()
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if _, err := ParseLineProtocol(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("split-baseline", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if _, err := parseLineProtocolSplit(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
