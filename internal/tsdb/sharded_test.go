package tsdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// shardedTestSamples builds a deterministic mixed-series workload large
// enough to cross block-seal boundaries on some series.
func shardedTestSamples(seed int64, n int) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{
			Component: fmt.Sprintf("comp-%d", rng.Intn(13)),
			Metric:    fmt.Sprintf("metric_%d", rng.Intn(7)),
			T:         int64(i) * 100,
			V:         rng.NormFloat64() * 50,
		}
	}
	return out
}

// storeDump reads every series fully back out of a store.
func storeDump(t *testing.T, st Store) map[string][]Point {
	t.Helper()
	out := map[string][]Point{}
	for _, key := range st.SeriesKeys() {
		var comp, metric string
		for i := 0; i < len(key); i++ {
			if key[i] == '/' {
				comp, metric = key[:i], key[i+1:]
				break
			}
		}
		pts, err := st.Query(comp, metric, -1<<62, 1<<62)
		if err != nil {
			t.Fatalf("query %s: %v", key, err)
		}
		out[key] = pts
	}
	return out
}

// TestShardedMatchesDBAtAnyShardCount is the acceptance invariant: the
// same ingest stream stored through 1, 3, or 8 shards (and through the
// single-mutex DB) yields identical series keys, identical points, and
// identical point/series counts. Sharding must never change data.
func TestShardedMatchesDBAtAnyShardCount(t *testing.T) {
	samples := shardedTestSamples(7, 4000)
	payload := EncodeLineProtocol(samples)

	ref := New()
	if n, err := ref.Write(payload); err != nil || n != len(samples) {
		t.Fatalf("DB.Write = %d, %v", n, err)
	}
	want := storeDump(t, ref)
	refStats := ref.Stats()

	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			st := NewSharded(shards)
			if st.NumShards() != shards {
				t.Fatalf("NumShards = %d, want %d", st.NumShards(), shards)
			}
			if n, err := st.Write(payload); err != nil || n != len(samples) {
				t.Fatalf("Sharded.Write = %d, %v", n, err)
			}
			if got := storeDump(t, st); !reflect.DeepEqual(got, want) {
				t.Fatal("sharded store contents differ from single-mutex DB")
			}
			stats := st.Stats()
			if stats.Points != refStats.Points || stats.Series != refStats.Series {
				t.Fatalf("stats points/series = %d/%d, want %d/%d",
					stats.Points, stats.Series, refStats.Points, refStats.Series)
			}
			if stats.NetworkInBytes != len(payload) {
				t.Fatalf("NetworkInBytes = %d, want %d", stats.NetworkInBytes, len(payload))
			}
			if st.MaxTime() != ref.MaxTime() {
				t.Fatalf("MaxTime = %d, want %d", st.MaxTime(), ref.MaxTime())
			}
		})
	}
}

// TestShardedConcurrentWriters hammers one Sharded store from many
// goroutines (the scenario the per-shard locks exist for; run under
// -race in CI) and checks nothing is lost or duplicated.
func TestShardedConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 500
	st := NewSharded(4)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samples := shardedTestSamples(int64(w), perWriter)
			// Half the writers speak the wire format, half push decoded
			// samples, covering both ingest doors.
			if w%2 == 0 {
				payload := EncodeLineProtocol(samples)
				if _, err := st.Write(payload); err != nil {
					t.Error(err)
				}
			} else {
				st.WriteSamples(samples, 0)
			}
		}(w)
	}
	wg.Wait()
	st.Flush()
	if got := st.Stats().Points; got != writers*perWriter {
		t.Fatalf("stored %d points, want %d", got, writers*perWriter)
	}
	total := 0
	for _, pts := range storeDump(t, st) {
		total += len(pts)
	}
	if total != writers*perWriter {
		t.Fatalf("queried %d points back, want %d", total, writers*perWriter)
	}
}

// TestShardedRejectsMalformedPayload: a bad batch must store nothing.
func TestShardedRejectsMalformedPayload(t *testing.T) {
	st := NewSharded(4)
	if _, err := st.Write([]byte("good,metric=a value=1 500\ngarbage\n")); err == nil {
		t.Fatal("want parse error")
	}
	if got := st.Stats().Points; got != 0 {
		t.Fatalf("malformed batch stored %d points", got)
	}
	if st.MaxTime() != 0 {
		t.Fatal("malformed batch advanced MaxTime")
	}
}

// TestShardedDefaultShardCount pins the n<=0 fallback.
func TestShardedDefaultShardCount(t *testing.T) {
	if NewSharded(0).NumShards() < 1 {
		t.Fatal("default shard count must be at least 1")
	}
}
