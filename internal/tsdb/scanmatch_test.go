package tsdb

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// scanToResults replays a ScanMatch into per-series point slices so the
// stream can be compared against QueryMatch output.
func scanToResults(t *testing.T, sc SeriesScanner, component, metric string, from, to int64) []SeriesResult {
	t.Helper()
	var (
		mu   sync.Mutex
		keys []string
		pts  [][]Point
	)
	err := sc.ScanMatch(component, metric, from, to, func(ks []string) {
		keys = append([]string(nil), ks...)
		pts = make([][]Point, len(ks))
	}, func(i int, ts int64, v float64) {
		// Different series may be visited concurrently; per-index slices
		// only need the lock to satisfy the race detector on the header.
		mu.Lock()
		pts[i] = append(pts[i], Point{T: ts, V: v})
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []SeriesResult
	for i, key := range keys {
		if len(pts[i]) == 0 {
			continue
		}
		comp, met := splitKey(key)
		out = append(out, SeriesResult{Component: comp, Metric: met, Points: pts[i]})
	}
	return out
}

// TestScanMatchMatchesQueryMatch pins the streaming contract on both
// stores: under in-order ingest, the per-series point streams delivered
// by ScanMatch are bit-identical to QueryMatch's stably sorted results —
// same keys, same order, same bits — across sealed chunks and tails.
func TestScanMatchMatchesQueryMatch(t *testing.T) {
	build := func(st Store) {
		var samples []Sample
		for c := 0; c < 3; c++ {
			for m := 0; m < 4; m++ {
				for i := 0; i < blockSize+37; i++ {
					v := math.Sin(float64(i)) * float64(c+1)
					if i%97 == 0 {
						v = math.NaN() // NaN points must stream like any other
					}
					samples = append(samples, Sample{
						Component: fmt.Sprintf("comp%d", c),
						Metric:    fmt.Sprintf("metric%d", m),
						T:         int64(i) * 10,
						V:         v,
					})
				}
			}
		}
		if err := st.WriteSamples(samples, 0); err != nil {
			t.Fatal(err)
		}
	}

	stores := map[string]Store{
		"db":      New(),
		"sharded": NewSharded(4),
	}
	for name, st := range stores {
		t.Run(name, func(t *testing.T) {
			build(st)
			sc := st.(SeriesScanner)
			for _, r := range []struct {
				comp, met string
				from, to  int64
			}{
				{"*", "*", 0, int64(blockSize+40) * 10},
				{"comp1", "*", 100, 3000},
				{"*", "metric2", 0, 50},
				{"comp0", "metric0", 400, 400}, // empty range
			} {
				want, err := st.QueryMatch(r.comp, r.met, r.from, r.to)
				if err != nil {
					t.Fatal(err)
				}
				got := scanToResults(t, sc, r.comp, r.met, r.from, r.to)
				if len(got) != len(want) {
					t.Fatalf("%+v: %d series streamed, %d queried", r, len(got), len(want))
				}
				for i := range want {
					if got[i].Component != want[i].Component || got[i].Metric != want[i].Metric {
						t.Fatalf("%+v: series %d is %s/%s, want %s/%s", r, i,
							got[i].Component, got[i].Metric, want[i].Component, want[i].Metric)
					}
					if len(got[i].Points) != len(want[i].Points) {
						t.Fatalf("%+v: series %d has %d streamed points, %d queried", r, i,
							len(got[i].Points), len(want[i].Points))
					}
					for j, p := range want[i].Points {
						g := got[i].Points[j]
						if g.T != p.T || math.Float64bits(g.V) != math.Float64bits(p.V) {
							t.Fatalf("%+v: series %d point %d = %+v, want %+v", r, i, j, g, p)
						}
					}
				}
			}
		})
	}
}

// TestScanMatchAllocs pins the streaming scan's per-point allocation cost
// at zero: growing the sealed data 8x must not change the allocation
// count of a full scan (per-series and per-key costs stay).
func TestScanMatchAllocs(t *testing.T) {
	build := func(points int) *DB {
		db := New()
		samples := make([]Sample, 0, points)
		for i := 0; i < points; i++ {
			samples = append(samples, Sample{
				Component: "c", Metric: "m", T: int64(i), V: float64(i),
			})
		}
		if err := db.WriteSamples(samples, 0); err != nil {
			t.Fatal(err)
		}
		db.Flush()
		return db
	}
	measure := func(db *DB, points int) float64 {
		sink := 0.0
		return testing.AllocsPerRun(20, func() {
			err := db.ScanMatch("*", "*", 0, int64(points), nil, func(_ int, _ int64, v float64) {
				sink += v
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := 2*blockSize, 16*blockSize
	a1 := measure(build(small), small)
	a2 := measure(build(big), big)
	if a2 > a1+8 {
		t.Fatalf("streaming scan allocations grew with point count: %v -> %v allocs/op", a1, a2)
	}
}
