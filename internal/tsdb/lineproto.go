package tsdb

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Sample is one metric observation on the wire.
type Sample struct {
	// Component is the emitting microservice component.
	Component string
	// Metric is the metric name within the component.
	Metric string
	// T is the timestamp in milliseconds.
	T int64
	// V is the value.
	V float64
}

// Key returns the canonical series identifier "component/metric".
func (s Sample) Key() string { return s.Component + "/" + s.Metric }

// AppendLineProtocol encodes a sample in the wire format
//
//	<component>,metric=<name> value=<v> <t>\n
//
// mirroring the InfluxDB line protocol the paper's Telegraf deployment
// speaks, and appends it to dst.
func AppendLineProtocol(dst []byte, s Sample) []byte {
	dst = append(dst, s.Component...)
	dst = append(dst, ",metric="...)
	dst = append(dst, s.Metric...)
	dst = append(dst, " value="...)
	dst = strconv.AppendFloat(dst, s.V, 'g', -1, 64)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, s.T, 10)
	dst = append(dst, '\n')
	return dst
}

// EncodeLineProtocol encodes a batch of samples.
func EncodeLineProtocol(samples []Sample) []byte {
	var dst []byte
	for _, s := range samples {
		dst = AppendLineProtocol(dst, s)
	}
	return dst
}

// ParseLineProtocol decodes a batch encoded by EncodeLineProtocol. Blank
// lines are ignored; any malformed line (including non-finite values,
// which a store must never accept) aborts with an error naming the line
// number.
//
// The payload is converted to a string once and scanned index-based from
// there: component and metric names are substrings sharing that single
// backing copy, and the output slice is pre-sized from the newline
// count. Compared to the old strings.Split path this drops the per-line
// slice (16 bytes/line) and all growth reallocations — a handful of
// allocations per batch regardless of line count (see
// BenchmarkParseLineProtocol).
func ParseLineProtocol(data []byte) ([]Sample, error) {
	out := make([]Sample, 0, bytes.Count(data, []byte{'\n'})+1)
	str := string(data)
	lineNo := 0
	for start := 0; start < len(str); {
		lineNo++
		var line string
		if end := strings.IndexByte(str[start:], '\n'); end < 0 {
			line = str[start:]
			start = len(str)
		} else {
			line = str[start : start+end]
			start += end + 1
		}
		if line == "" {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("tsdb: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	return out, nil
}

var errNonFinite = fmt.Errorf("non-finite value")

// MaxTimestampMS bounds accepted timestamps (~35,000 years in ms). The
// wire format is milliseconds; a value beyond this is unambiguously a
// nanosecond/microsecond unit error (e.g. a Telegraf default), and
// accepting one would permanently poison every store's MaxTime
// high-water mark — and with it the server's sliding analysis window.
// Exported so every ingest edge (line protocol here, remote write in
// internal/server) enforces the same bound.
const MaxTimestampMS = int64(1) << 50

func parseLine(line string) (Sample, error) {
	var s Sample
	comma := strings.IndexByte(line, ',')
	if comma < 0 {
		return s, fmt.Errorf("missing tag separator in %q", line)
	}
	component := line[:comma]
	rest := line[comma+1:]
	if !strings.HasPrefix(rest, "metric=") {
		return s, fmt.Errorf("missing metric tag in %q", line)
	}
	rest = rest[len("metric="):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return s, fmt.Errorf("missing field section in %q", line)
	}
	metric := rest[:sp]
	rest = rest[sp+1:]
	if !strings.HasPrefix(rest, "value=") {
		return s, fmt.Errorf("missing value field in %q", line)
	}
	rest = rest[len("value="):]
	sp = strings.IndexByte(rest, ' ')
	if sp < 0 {
		return s, fmt.Errorf("missing timestamp in %q", line)
	}
	v, err := strconv.ParseFloat(rest[:sp], 64)
	if err != nil {
		return s, fmt.Errorf("bad value: %w", err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return s, fmt.Errorf("%w %q", errNonFinite, rest[:sp])
	}
	t, err := strconv.ParseInt(rest[sp+1:], 10, 64)
	if err != nil {
		return s, fmt.Errorf("bad timestamp: %w", err)
	}
	if t > MaxTimestampMS {
		return s, fmt.Errorf("timestamp %d exceeds the millisecond range (nanosecond unit error?)", t)
	}
	if component == "" || metric == "" {
		return s, fmt.Errorf("empty component or metric in %q", line)
	}
	s.Component = component
	s.Metric = metric
	s.V = v
	s.T = t
	return s, nil
}
