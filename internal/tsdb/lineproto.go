package tsdb

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one metric observation on the wire.
type Sample struct {
	// Component is the emitting microservice component.
	Component string
	// Metric is the metric name within the component.
	Metric string
	// T is the timestamp in milliseconds.
	T int64
	// V is the value.
	V float64
}

// Key returns the canonical series identifier "component/metric".
func (s Sample) Key() string { return s.Component + "/" + s.Metric }

// AppendLineProtocol encodes a sample in the wire format
//
//	<component>,metric=<name> value=<v> <t>\n
//
// mirroring the InfluxDB line protocol the paper's Telegraf deployment
// speaks, and appends it to dst.
func AppendLineProtocol(dst []byte, s Sample) []byte {
	dst = append(dst, s.Component...)
	dst = append(dst, ",metric="...)
	dst = append(dst, s.Metric...)
	dst = append(dst, " value="...)
	dst = strconv.AppendFloat(dst, s.V, 'g', -1, 64)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, s.T, 10)
	dst = append(dst, '\n')
	return dst
}

// EncodeLineProtocol encodes a batch of samples.
func EncodeLineProtocol(samples []Sample) []byte {
	var dst []byte
	for _, s := range samples {
		dst = AppendLineProtocol(dst, s)
	}
	return dst
}

// ParseLineProtocol decodes a batch encoded by EncodeLineProtocol. Blank
// lines are ignored; any malformed line aborts with an error naming the
// line number.
func ParseLineProtocol(data []byte) ([]Sample, error) {
	var out []Sample
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("tsdb: line %d: %w", i+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parseLine(line string) (Sample, error) {
	var s Sample
	comma := strings.IndexByte(line, ',')
	if comma < 0 {
		return s, fmt.Errorf("missing tag separator in %q", line)
	}
	s.Component = line[:comma]
	rest := line[comma+1:]
	if !strings.HasPrefix(rest, "metric=") {
		return s, fmt.Errorf("missing metric tag in %q", line)
	}
	rest = rest[len("metric="):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return s, fmt.Errorf("missing field section in %q", line)
	}
	s.Metric = rest[:sp]
	rest = rest[sp+1:]
	if !strings.HasPrefix(rest, "value=") {
		return s, fmt.Errorf("missing value field in %q", line)
	}
	rest = rest[len("value="):]
	sp = strings.IndexByte(rest, ' ')
	if sp < 0 {
		return s, fmt.Errorf("missing timestamp in %q", line)
	}
	v, err := strconv.ParseFloat(rest[:sp], 64)
	if err != nil {
		return s, fmt.Errorf("bad value: %w", err)
	}
	t, err := strconv.ParseInt(rest[sp+1:], 10, 64)
	if err != nil {
		return s, fmt.Errorf("bad timestamp: %w", err)
	}
	if s.Component == "" || s.Metric == "" {
		return s, fmt.Errorf("empty component or metric in %q", line)
	}
	s.V = v
	s.T = t
	return s, nil
}
