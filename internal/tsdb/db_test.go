package tsdb

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLineProtocolRoundTrip(t *testing.T) {
	samples := []Sample{
		{Component: "web", Metric: "http_requests_mean", T: 1500, V: 123.456},
		{Component: "redis", Metric: "mem_bytes", T: 2000, V: 1e9},
		{Component: "db", Metric: "neg", T: 2500, V: -0.25},
	}
	data := EncodeLineProtocol(samples)
	got, err := ParseLineProtocol(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("parsed %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], samples[i])
		}
	}
}

func TestLineProtocolRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		samples := make([]Sample, n)
		for i := range samples {
			samples[i] = Sample{
				Component: "comp" + string(rune('a'+rng.Intn(26))),
				Metric:    "metric_" + string(rune('a'+rng.Intn(26))),
				T:         rng.Int63n(1 << 42),
				V:         rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6)),
			}
		}
		got, err := ParseLineProtocol(EncodeLineProtocol(samples))
		if err != nil || len(got) != n {
			return false
		}
		for i := range samples {
			if got[i] != samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLineProtocolMalformed(t *testing.T) {
	bad := []string{
		"nocomma value=1 5",
		"c,metric=m 5",
		"c,metric=m value=x 5",
		"c,metric=m value=1 x",
		"c,metric=m value=1",
		"c,wrong=m value=1 5",
		",metric=m value=1 5",
	}
	for _, line := range bad {
		if _, err := ParseLineProtocol([]byte(line)); err == nil {
			t.Errorf("line %q: expected parse error", line)
		}
	}
	// Blank lines are fine.
	if _, err := ParseLineProtocol([]byte("\n\n")); err != nil {
		t.Errorf("blank lines: %v", err)
	}
}

func TestDBWriteQueryRoundTrip(t *testing.T) {
	db := New()
	var samples []Sample
	for i := 0; i < 100; i++ {
		samples = append(samples, Sample{Component: "web", Metric: "cpu", T: int64(i) * 500, V: float64(i)})
	}
	n, err := db.Write(EncodeLineProtocol(samples))
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("wrote %d samples, want 100", n)
	}

	pts, err := db.Query("web", "cpu", 0, 50*500)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("query returned %d points, want 50", len(pts))
	}
	for i, p := range pts {
		if p.T != int64(i)*500 || p.V != float64(i) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}

	if _, err := db.Query("web", "nope", 0, 100); err == nil {
		t.Error("expected error for unknown series")
	}
}

func TestDBQuerySpansSealedBlocks(t *testing.T) {
	db := New()
	// More than blockSize points forces at least one sealed block.
	total := blockSize + 100
	var samples []Sample
	for i := 0; i < total; i++ {
		samples = append(samples, Sample{Component: "c", Metric: "m", T: int64(i), V: float64(i)})
	}
	if _, err := db.Write(EncodeLineProtocol(samples)); err != nil {
		t.Fatal(err)
	}
	pts, err := db.Query("c", "m", 0, int64(total))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != total {
		t.Fatalf("got %d points, want %d", len(pts), total)
	}
	for i, p := range pts {
		if p.V != float64(i) {
			t.Fatalf("point %d = %+v after block seal", i, p)
		}
	}
}

func TestDBStatsAccounting(t *testing.T) {
	db := New()
	var samples []Sample
	for i := 0; i < 600; i++ {
		samples = append(samples, Sample{Component: "c", Metric: "m", T: int64(i) * 500, V: float64(i % 7)})
	}
	payload := EncodeLineProtocol(samples)
	if _, err := db.Write(payload); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Points != 600 || st.Series != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.NetworkInBytes != len(payload) {
		t.Errorf("net in = %d, want %d", st.NetworkInBytes, len(payload))
	}
	if st.NetworkOutBytes != ackBytes {
		t.Errorf("net out = %d, want one ack (%d)", st.NetworkOutBytes, ackBytes)
	}
	if st.IngestCPU <= 0 {
		t.Error("ingest CPU not accounted")
	}

	// Flushing compresses the tail: storage must shrink below raw size.
	raw := 16 * 600
	db.Flush()
	st = db.Stats()
	if st.StorageBytes >= raw {
		t.Errorf("storage after flush = %d, want < raw %d", st.StorageBytes, raw)
	}

	// Queries add network-out traffic.
	before := st.NetworkOutBytes
	if _, err := db.Query("c", "m", 0, 1<<40); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().NetworkOutBytes; got != before+16*600 {
		t.Errorf("net out after query = %d, want %d", got, before+16*600)
	}
}

func TestDBWriteSamples(t *testing.T) {
	db := New()
	samples := []Sample{{Component: "a", Metric: "m", T: 1, V: 2}}
	db.WriteSamples(samples, 42)
	st := db.Stats()
	if st.Points != 1 || st.NetworkInBytes != 42 {
		t.Errorf("stats = %+v", st)
	}
	keys := db.SeriesKeys()
	if len(keys) != 1 || keys[0] != "a/m" {
		t.Errorf("keys = %v", keys)
	}
}

func TestDBWriteRejectsGarbage(t *testing.T) {
	db := New()
	if _, err := db.Write([]byte("garbage")); err == nil {
		t.Error("expected parse error")
	}
	if !strings.Contains(db.Stats().IngestCPU.String(), "") { // stats remain readable
		t.Error("stats unavailable after failed write")
	}
	if db.Stats().Points != 0 {
		t.Error("failed write must not store points")
	}
}
