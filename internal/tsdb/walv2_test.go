package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/sieve-microservices/sieve/internal/telemetry"
)

// frameV1 appends one complete v1 record (header + payload) for batch —
// exactly the bytes a pre-dictionary writer put on disk, used to
// fabricate old-process segments for the mixed-version tests.
func frameV1(buf []byte, batch []Sample) []byte {
	payload := appendWALSamples(nil, batch)
	var hdr [walRecordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// writeV1Segment fabricates a v1-only segment file as an old process
// would have left it.
func writeV1Segment(t *testing.T, dir string, seq uint64, batches ...[]Sample) {
	t.Helper()
	var buf []byte
	for _, b := range batches {
		buf = frameV1(buf, b)
	}
	if err := os.WriteFile(filepath.Join(dir, walSegmentName(seq)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWALV2CodecRoundtrip(t *testing.T) {
	in := []Sample{
		{Component: "web", Metric: "cpu", T: 0, V: 0.5},
		{Component: "db", Metric: "mem_bytes", T: -42, V: -1e300},
		{Component: "web", Metric: "cpu", T: 1 << 40, V: 7},
		{Component: "", Metric: "", T: 5, V: 0},
	}
	dict := map[string]uint64{}
	var frames []byte
	for _, s := range in {
		key := s.Key()
		if _, ok := dict[key]; !ok {
			id := uint64(len(dict))
			dict[key] = id
			frames = appendSeriesFrame(frames, id, s.Component, s.Metric)
		}
	}
	frames = appendSamplesFrameV2(frames, in, func(component, metric string) uint64 {
		return dict[component+"/"+metric]
	})
	// Walk the frames as replay would and collect the decoded samples.
	var dec walDecoder
	var out []Sample
	for off := 0; off < len(frames); {
		length := int(binary.LittleEndian.Uint32(frames[off:]))
		payload := frames[off+walRecordHeader : off+walRecordHeader+length]
		batch, err := dec.decodeWALRecord(payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		out = append(out, batch...)
		off += walRecordHeader + length
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip mismatch:\n in=%v\nout=%v", in, out)
	}
}

// TestWALDictMixedVersionSegmentReplay replays a shard directory holding
// a fabricated v1 segment from an "old process" next to v2 segments
// written by the current writer: recovery must see every sample of both,
// in order.
func TestWALDictMixedVersionSegmentReplay(t *testing.T) {
	dir := t.TempDir()
	old1 := walBatch("old-a", 8, 1000)
	old2 := walBatch("old-b", 8, 2000)
	writeV1Segment(t, dir, 1, old1, old2)

	w, err := openWALWriter(dir, FsyncNever, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	new1 := walBatch("new-a", 8, 3000)
	new2 := walBatch("old-a", 8, 4000) // same series as the v1 segment
	for _, b := range [][]Sample{new1, new2} {
		if _, err := w.append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	var want []Sample
	want = append(want, old1...)
	want = append(want, old2...)
	want = append(want, new1...)
	want = append(want, new2...)
	got, st := replayAll(t, dir)
	if st.Repaired {
		t.Error("unexpected repair on clean mixed-version WAL")
	}
	if st.Records != 4 {
		t.Errorf("Records = %d, want 4 (series records do not count)", st.Records)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("mixed replay mismatch: got %d samples, want %d", len(got), len(want))
	}
}

// TestWALMixedRecordsInOneSegment replays a single segment holding a v1
// record between v2 records — the per-record version dispatch, not just
// per-segment.
func TestWALMixedRecordsInOneSegment(t *testing.T) {
	dir := t.TempDir()
	b1 := walBatch("v2-first", 4, 1000)
	b2 := walBatch("v1-mid", 4, 2000)
	b3 := walBatch("v2-last", 4, 3000)

	var buf []byte
	buf = appendSeriesFrame(buf, 0, "v2-first", "m0")
	buf = appendSeriesFrame(buf, 1, "v2-first", "m1")
	buf = appendSeriesFrame(buf, 2, "v2-first", "m2")
	buf = appendSeriesFrame(buf, 3, "v2-first", "m3")
	ids := map[string]uint64{"m0": 0, "m1": 1, "m2": 2, "m3": 3}
	buf = appendSamplesFrameV2(buf, b1, func(_, metric string) uint64 { return ids[metric] })
	buf = frameV1(buf, b2)
	buf = appendSeriesFrame(buf, 4, "v2-last", "m0")
	buf = appendSeriesFrame(buf, 5, "v2-last", "m1")
	buf = appendSeriesFrame(buf, 6, "v2-last", "m2")
	buf = appendSeriesFrame(buf, 7, "v2-last", "m3")
	buf = appendSamplesFrameV2(buf, b3, func(_, metric string) uint64 { return ids[metric] + 4 })
	if err := os.WriteFile(filepath.Join(dir, walSegmentName(1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	var want []Sample
	want = append(want, b1...)
	want = append(want, b2...)
	want = append(want, b3...)
	got, st := replayAll(t, dir)
	if st.Repaired || st.Records != 3 {
		t.Errorf("stats = %+v, want 3 records, no repair", st)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("mixed-record segment replay mismatch")
	}
}

// TestWALMixedVersionTornTailRepair crashes the log across the version
// boundary: a clean v1 segment, then a v2 segment torn mid-record, then
// a later v1 segment. Repair must keep everything before the tear,
// truncate the tear, and drop the later segment.
func TestWALMixedVersionTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	old := walBatch("old", 8, 1000)
	writeV1Segment(t, dir, 1, old)

	w, err := openWALWriter(dir, FsyncNever, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	kept := walBatch("new", 8, 2000)
	torn := walBatch("new", 8, 3000)
	for _, b := range [][]Sample{kept, torn} {
		if _, err := w.append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// A segment written after the tear, as if the crash raced a roll.
	writeV1Segment(t, dir, 3, walBatch("later", 4, 4000))

	seqs, _ := listWALSegments(dir)
	if len(seqs) != 3 {
		t.Fatalf("expected 3 segments, got %d", len(seqs))
	}
	path := filepath.Join(dir, walSegmentName(2))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	var want []Sample
	want = append(want, old...)
	want = append(want, kept...)
	got, st := replayAll(t, dir)
	if !st.Repaired {
		t.Error("expected repair across the version boundary")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("torn-tail replay: got %d samples, want %d", len(got), len(want))
	}
	if seqs, _ := listWALSegments(dir); len(seqs) != 2 {
		t.Errorf("later segment should be dropped, have %d segments", len(seqs))
	}
	// After repair the directory replays cleanly and identically.
	got2, st2 := replayAll(t, dir)
	if st2.Repaired || !reflect.DeepEqual(want, got2) {
		t.Error("repaired mixed WAL should replay cleanly and identically")
	}
}

// TestMixedVersionStoreRecovery is the store-level mixed-dir pin:
// fabricated v1 segments (an old process's WAL) sit in the shard
// directories when the current process opens, ingests more (v2), hard-
// stops, reopens, checkpoints, and reopens again — byte-identical to a
// reference store fed the same samples at every step, including after a
// shard-count change.
func TestMixedVersionStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	ref := NewSharded(4)

	// An old process's WAL: v1-only segments, all fabricated into shard
	// 0's directory — replay routes by today's hash, not disk position,
	// so placement must not matter.
	shard0 := filepath.Join(dir, "wal", "shard-0000")
	if err := os.MkdirAll(shard0, 0o755); err != nil {
		t.Fatal(err)
	}
	var oldBatches [][]Sample
	for i := 0; i < 4; i++ {
		oldBatches = append(oldBatches, recoveryBatch(i, 6, 4))
	}
	writeV1Segment(t, shard0, 1, oldBatches...)
	for _, b := range oldBatches {
		recoveryWrite(t, b, ref)
	}

	// First life: recover the v1 data, append v2 on top, hard-stop.
	s := openCrashable(t, dir, 4)
	for i := 4; i < 8; i++ {
		recoveryWrite(t, recoveryBatch(i, 6, 4), s, ref)
	}
	assertSameContents(t, s, ref, "mixed dir, first life")

	// Second life: both versions replay into one store.
	re := openCrashable(t, dir, 4)
	assertSameContents(t, re, ref, "mixed v1+v2 recovery")
	if err := re.Checkpoint(); err != nil {
		t.Fatalf("checkpoint over mixed WAL: %v", err)
	}
	assertSameContents(t, re, ref, "after checkpoint of mixed WAL")
	for i := 8; i < 10; i++ {
		recoveryWrite(t, recoveryBatch(i, 6, 4), re, ref)
	}

	// Third life at a different shard count.
	re2 := openCrashable(t, dir, 2)
	assertSameContents(t, re2, ref, "mixed recovery + reshard")
}

// TestWALDictCompressionRatio pins the tentpole's size win on the
// standard ingest-bench workload shape: the v2 dictionary + delta
// encoding must keep WAL bytes per sample at least 2.5x below what the
// v1 encoding of the same batches costs.
func TestWALDictCompressionRatio(t *testing.T) {
	dir := t.TempDir()
	w, err := openWALWriter(dir, FsyncNever, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	var v1Bytes, samples int64
	for i := 0; i < 1024; i++ {
		batch := make([]Sample, 0, 16*8)
		for c := 0; c < 16; c++ {
			for m := 0; m < 8; m++ {
				batch = append(batch, Sample{
					Component: fmt.Sprintf("comp-%03d-%02d", i%32, c),
					Metric:    fmt.Sprintf("metric_%02d", m),
					T:         int64(i) * 500,
					V:         float64(i*c) + float64(m)*0.25,
				})
			}
		}
		if _, err := w.append(batch); err != nil {
			t.Fatal(err)
		}
		v1Bytes += int64(walRecordHeader + len(appendWALSamples(nil, batch)))
		samples += int64(len(batch))
	}
	v2Bytes := w.sizeBytes()
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(v1Bytes) / float64(v2Bytes)
	t.Logf("v1 %.2f B/sample, v2 %.2f B/sample, ratio %.2fx",
		float64(v1Bytes)/float64(samples), float64(v2Bytes)/float64(samples), ratio)
	if ratio < 2.5 {
		t.Errorf("v2 WAL only %.2fx smaller than v1, want >= 2.5x", ratio)
	}
	// The size win must not cost fidelity.
	got, st := replayAll(t, dir)
	if st.Repaired || int64(st.Samples) != samples || int64(len(got)) != samples {
		t.Fatalf("replay of ratio workload: %+v, want %d samples", st, samples)
	}
}

// FuzzWALDecode drives the v2 record decoder with arbitrary payloads
// streamed through one decoder (so fuzzed series records poison later
// sample records, exactly like a corrupt segment would): it must never
// panic, and every decoded sample must resolve to a dictionary entry
// the same stream defined.
func FuzzWALDecode(f *testing.F) {
	f.Add(appendWALSamples(nil, walBatch("c", 4, 1000)))
	var series []byte
	series = appendSeriesFrame(series, 0, "web", "cpu")
	f.Add(series[walRecordHeader:])
	var smp []byte
	smp = appendSamplesFrameV2(smp, []Sample{{Component: "web", Metric: "cpu", T: 5, V: 1}},
		func(string, string) uint64 { return 0 })
	f.Add(smp[walRecordHeader:])
	f.Add([]byte{walV2Marker})
	f.Add([]byte{walV2Marker, walRecSeries, 0x00})
	f.Add([]byte{walV2Marker, walRecSamples, 0x01, 0x00, 0x00})
	f.Add([]byte{walV2Marker, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		var dec walDecoder
		// Feed the payload twice through the same decoder: the second
		// pass sees whatever dictionary the first pass built.
		for pass := 0; pass < 2; pass++ {
			batch, err := dec.decodeWALRecord(data)
			if err != nil {
				continue
			}
			for _, s := range batch {
				if len(data) > 0 && data[0] == walV2Marker {
					found := false
					for _, ident := range dec.dict {
						if ident.component == s.Component && ident.metric == s.Metric {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("decoded sample references identity %q/%q the stream never defined", s.Component, s.Metric)
					}
				}
			}
		}
	})
}

// FuzzWALDecodeRoundtrip fuzzes the encode side: any batch derived from
// the fuzz input must encode to v2 frames that decode back bit-identical.
func FuzzWALDecodeRoundtrip(f *testing.F) {
	f.Add([]byte("seed"), int64(1000), 3.5)
	f.Fuzz(func(t *testing.T, name []byte, baseT int64, v float64) {
		comp := string(name)
		batch := []Sample{
			{Component: comp, Metric: "m0", T: baseT, V: v},
			{Component: comp, Metric: "m1", T: baseT + 1, V: -v},
			{Component: comp, Metric: "m0", T: baseT - 7, V: v * 2},
		}
		var frames []byte
		frames = appendSeriesFrame(frames, 0, comp, "m0")
		frames = appendSeriesFrame(frames, 1, comp, "m1")
		ids := map[string]uint64{"m0": 0, "m1": 1}
		frames = appendSamplesFrameV2(frames, batch, func(_, metric string) uint64 { return ids[metric] })
		var dec walDecoder
		var out []Sample
		for off := 0; off < len(frames); {
			length := int(binary.LittleEndian.Uint32(frames[off:]))
			payload := frames[off+walRecordHeader : off+walRecordHeader+length]
			if got := crc32.Checksum(payload, castagnoli); got != binary.LittleEndian.Uint32(frames[off+4:]) {
				t.Fatal("self-produced frame fails its own CRC")
			}
			b, err := dec.decodeWALRecord(payload)
			if err != nil {
				t.Fatalf("self-produced frame undecodable: %v", err)
			}
			out = append(out, b...)
			off += walRecordHeader + length
		}
		if !reflect.DeepEqual(batch, out) {
			t.Fatalf("roundtrip mismatch:\n in=%v\nout=%v", batch, out)
		}
	})
}

// openGroupCommit opens a durable store under FsyncAlways with the
// background tickers disabled — the group-commit path, crash-simulable
// by abandoning the store.
func openGroupCommit(t testing.TB, dir string, shards int) *Sharded {
	t.Helper()
	s, err := OpenSharded(shards, DurabilityOptions{Dir: dir, Fsync: FsyncAlways, FlushInterval: -1, CompactInterval: -1})
	if err != nil {
		t.Fatalf("OpenSharded(%s): %v", dir, err)
	}
	return s
}

// TestGroupCommitConcurrentEquivalence hammers an FsyncAlways store with
// concurrent writers at shards {1,4} and pins three things: the stored
// contents are byte-identical to an in-memory reference fed the same
// samples, every acked batch survives a hard stop (the FsyncAlways
// contract group commit must not weaken), and the group-commit
// telemetry moved.
func TestGroupCommitConcurrentEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			s := openGroupCommit(t, dir, shards)
			reg := telemetry.NewRegistry()
			tel := NewStoreTelemetry(reg)
			s.SetTelemetry(tel)

			const writers, batches = 8, 20
			ref := NewSharded(shards)
			var wg sync.WaitGroup
			errs := make([]error, writers)
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < batches; i++ {
						// Distinct series per writer: arrival order within
						// any series is deterministic, so the reference
						// store (fed sequentially below) must match.
						batch := []Sample{
							{Component: fmt.Sprintf("writer-%02d", g), Metric: "a", T: int64(i) * 100, V: float64(g*1000 + i)},
							{Component: fmt.Sprintf("writer-%02d", g), Metric: "b", T: int64(i) * 100, V: float64(i)},
						}
						if err := s.WriteSamples(batch, 0); err != nil {
							errs[g] = err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Fatalf("writer %d: %v", g, err)
				}
			}
			for g := 0; g < writers; g++ {
				for i := 0; i < batches; i++ {
					recoveryWrite(t, []Sample{
						{Component: fmt.Sprintf("writer-%02d", g), Metric: "a", T: int64(i) * 100, V: float64(g*1000 + i)},
						{Component: fmt.Sprintf("writer-%02d", g), Metric: "b", T: int64(i) * 100, V: float64(i)},
					}, ref)
				}
			}
			assertSameContents(t, s, ref, "live store vs reference")

			if tel.WALGroupCommitBatches.Count() == 0 {
				t.Error("sieve_wal_group_commit_batches never observed a leader fsync")
			}
			if tel.WALFsyncSeconds.Count() == 0 {
				t.Error("sieve_wal_fsync_seconds never observed")
			}
			if tel.WALBytesWritten.Value() == 0 {
				t.Error("sieve_wal_bytes_written_total is zero after ingest")
			}

			// Hard stop: every acked write was fsynced, so recovery must
			// be byte-identical — no Close, the files are as the crash
			// left them.
			re := openCrashable(t, dir, shards)
			assertSameContents(t, re, ref, "recovery after hard stop")
		})
	}
}

// TestGroupCommitConcurrentIngestCheckpointClose drives the commit queue
// through its lifecycle edges under the race detector: writers block in
// commitWait while checkpoints rotate the WAL out from under them and
// close shuts the queue down mid-flight. Writers may see errors after
// close — the pin is no deadlock, no race, no lost acked data.
func TestGroupCommitConcurrentIngestCheckpointClose(t *testing.T) {
	dir := t.TempDir()
	s := openGroupCommit(t, dir, 4)

	const writers = 6
	stop := make(chan struct{})
	acked := make([][]Sample, writers)
	var wg, warm sync.WaitGroup
	warm.Add(writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if i == 3 {
					// Guarantee real data is in flight before the main
					// goroutine starts checkpointing and closing.
					warm.Done()
				}
				select {
				case <-stop:
					if i < 3 {
						warm.Done()
					}
					return
				default:
				}
				batch := []Sample{{
					Component: fmt.Sprintf("writer-%02d", g),
					Metric:    "m",
					T:         int64(i) * 10,
					V:         float64(i),
				}}
				if err := s.WriteSamples(batch, 0); err != nil {
					// Tolerated only while shutting down.
					select {
					case <-stop:
						if i < 3 {
							warm.Done()
						}
						return
					default:
						t.Errorf("writer %d: %v", g, err)
						if i < 3 {
							warm.Done()
						}
						return
					}
				}
				acked[g] = append(acked[g], batch...)
			}
		}(g)
	}
	warm.Wait()
	for i := 0; i < 3; i++ {
		if err := s.Checkpoint(); err != nil {
			t.Fatalf("checkpoint under concurrent ingest: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	ref := NewSharded(4)
	for _, batches := range acked {
		for _, smp := range batches {
			recoveryWrite(t, []Sample{smp}, ref)
		}
	}
	re := openCrashable(t, dir, 4)
	assertSameContents(t, re, ref, "acked data after checkpoint+close churn")

	// Close while writers are still in flight: appends fail cleanly, no
	// deadlock, no panic.
	dir2 := t.TempDir()
	s2 := openGroupCommit(t, dir2, 2)
	var wg2 sync.WaitGroup
	stop2 := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg2.Add(1)
		go func(g int) {
			defer wg2.Done()
			for i := 0; ; i++ {
				select {
				case <-stop2:
					return
				default:
				}
				_ = s2.WriteSamples([]Sample{{
					Component: fmt.Sprintf("w-%d", g), Metric: "m", T: int64(i), V: 1,
				}}, 0)
			}
		}(g)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("close under fire: %v", err)
	}
	close(stop2)
	wg2.Wait()
}

// TestGroupCommitSingleWriterStillSyncs pins the degenerate cohort: a
// lone FsyncAlways writer gets one fsync per append (cohort size 1, no
// savings) and a clean ack, exactly the pre-group-commit contract.
func TestGroupCommitSingleWriterStillSyncs(t *testing.T) {
	dir := t.TempDir()
	s := openGroupCommit(t, dir, 1)
	reg := telemetry.NewRegistry()
	tel := NewStoreTelemetry(reg)
	s.SetTelemetry(tel)
	for i := 0; i < 5; i++ {
		recoveryWrite(t, walBatch("solo", 4, int64(i)*1000), s)
	}
	if got := tel.WALGroupCommitBatches.Count(); got != 5 {
		t.Errorf("leader fsyncs = %d, want 5 (one per serial append)", got)
	}
	if saved := tel.WALFsyncsSaved.Value(); saved != 0 {
		t.Errorf("fsyncs saved = %d for a serial writer, want 0", saved)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ref := NewSharded(1)
	for i := 0; i < 5; i++ {
		recoveryWrite(t, walBatch("solo", 4, int64(i)*1000), ref)
	}
	re := openCrashable(t, dir, 1)
	assertSameContents(t, re, ref, "serial FsyncAlways recovery")
}

// TestGroupCommitBatchedAppendsShareOneFsync pins the coalescing
// arithmetic deterministically: three appends land before any waiter
// runs, then the first commitWait becomes leader with all three already
// queued — one fsync, cohort size 3, two fsyncs saved. The concurrent
// benches drive the same path under real contention, but whether
// waiters actually pile up there depends on the disk's fsync latency,
// so the counter semantics are pinned here instead.
func TestGroupCommitBatchedAppendsShareOneFsync(t *testing.T) {
	w, err := openWALWriter(t.TempDir(), FsyncAlways, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	groupH := reg.Histogram("batches", "", []float64{1, 2, 4})
	saved := reg.Counter("saved", "")
	w.setTelemetry(nil, nil, groupH, saved, nil)
	var last uint64
	for i := 0; i < 3; i++ {
		seq, err := w.append(walBatch("c", 2, int64(i)*1000))
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	if err := w.commitWait(last); err != nil {
		t.Fatal(err)
	}
	if got := groupH.Count(); got != 1 {
		t.Errorf("leader fsyncs = %d, want 1 for three queued appends", got)
	}
	if got := saved.Value(); got != 2 {
		t.Errorf("fsyncs saved = %d, want 2 (cohort of 3)", got)
	}
	// Earlier members of the cohort are already durable: waiting on them
	// must return immediately without another fsync.
	if err := w.commitWait(1); err != nil {
		t.Fatal(err)
	}
	if got := groupH.Count(); got != 1 {
		t.Errorf("leader fsyncs = %d after waiting on a covered seq, want still 1", got)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALV2SegmentFilesAreSmaller is a plain-bytes sanity check next to
// the ratio pin: the same batch appended twice writes its strings once.
func TestWALV2SegmentFilesAreSmaller(t *testing.T) {
	dir := t.TempDir()
	w, err := openWALWriter(dir, FsyncNever, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	batch := walBatch("component-with-a-long-name", 16, 1000)
	if _, err := w.append(batch); err != nil {
		t.Fatal(err)
	}
	firstSize := w.sizeBytes()
	if _, err := w.append(batch); err != nil {
		t.Fatal(err)
	}
	secondCost := w.sizeBytes() - firstSize
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if secondCost >= firstSize {
		t.Errorf("second append cost %d bytes >= first %d: dictionary not reused", secondCost, firstSize)
	}
	v1Cost := int64(walRecordHeader + len(appendWALSamples(nil, batch)))
	if secondCost*2 >= v1Cost {
		t.Errorf("steady-state v2 append = %d bytes, v1 = %d: want > 2x smaller", secondCost, v1Cost)
	}
}

// TestWALDictRollbackOnWriteFailure forces a write failure and checks
// the dictionary ids assigned by the failed append are taken back: the
// next successful append must re-define its series and replay cleanly.
func TestWALDictRollbackOnWriteFailure(t *testing.T) {
	dir := t.TempDir()
	w, err := openWALWriter(dir, FsyncNever, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ok1 := walBatch("ok", 4, 1000)
	if _, err := w.append(ok1); err != nil {
		t.Fatal(err)
	}
	// Swap the segment file for a closed one: the next write fails after
	// the dictionary speculatively assigned ids for the new series.
	w.mu.Lock()
	live := w.f
	closed, err := os.Open(filepath.Join(dir, walSegmentName(w.seq)))
	if err != nil {
		w.mu.Unlock()
		t.Fatal(err)
	}
	closed.Close()
	w.f = closed
	w.mu.Unlock()
	if _, err := w.append(walBatch("doomed", 4, 2000)); err == nil {
		t.Fatal("append on closed file should fail")
	}
	w.mu.Lock()
	w.f = live
	if w.nextID != 4 {
		t.Errorf("nextID = %d after rollback, want 4 (the ok batch's series)", w.nextID)
	}
	w.mu.Unlock()
	ok2 := walBatch("doomed", 4, 3000)
	if _, err := w.append(ok2); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	var want []Sample
	want = append(want, ok1...)
	want = append(want, ok2...)
	got, st := replayAll(t, dir)
	if st.Repaired {
		t.Error("unexpected repair")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-rollback replay mismatch: got %d samples, want %d", len(got), len(want))
	}
}
