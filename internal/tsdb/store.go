package tsdb

import "context"

// Writer is the ingest half of a store: anything that accepts
// line-protocol payloads. Both local stores (DB, Sharded) and the HTTP
// client in internal/server implement it, so a metrics.Collector can ship
// scrapes to an in-process store or across the network without changing.
type Writer interface {
	// Write ingests a line-protocol payload and returns the number of
	// samples stored.
	Write(payload []byte) (int, error)
}

// ReadStore is the query half of a store: what dataset assembly needs to
// pull every series back out.
type ReadStore interface {
	// Query returns the points of component/metric with T in [from, to).
	Query(component, metric string, from, to int64) ([]Point, error)
	// SeriesKeys returns all component/metric keys in sorted order.
	SeriesKeys() []string
}

// RangeQuerier is the query-engine surface: matcher queries over many
// series at once, raw or aggregated per step bucket, with chunk-skipping
// reads. Dataset assembly prefers it over per-series ReadStore round
// trips when the store provides it.
type RangeQuerier interface {
	// QueryRange returns every series matching the query's globs with
	// points (raw, or one per non-empty step bucket) in [From, To),
	// sorted by series key; series with no points in range are omitted.
	QueryRange(ctx context.Context, q RangeQuery) ([]SeriesResult, error)
	// QueryMatch is QueryRange for raw points: every matching series'
	// points with T in [from, to).
	QueryMatch(componentGlob, metricGlob string, from, to int64) ([]SeriesResult, error)
}

// SeriesVisitor receives one streamed point during a ScanMatch.
// seriesIdx indexes the key slice handed to the scan's begin callback;
// points of one series arrive in canonical storage order from a single
// goroutine, but different series may be visited concurrently, so
// per-series state (indexed by seriesIdx) needs no locking while shared
// state does.
type SeriesVisitor func(seriesIdx int, t int64, v float64)

// SeriesScanner is the streaming read surface: a visitor-style scan that
// decodes chunks directly into the caller's accumulators (window rings,
// bucket grids) with no intermediate []Point or SeriesResult
// materialization. Both local stores implement it; dataset assembly and
// the window cache prefer it over QueryMatch when available.
type SeriesScanner interface {
	// ScanMatch streams every series matching the globs with T in
	// [from, to). begin runs once, before any visit, with the sorted
	// matched keys (the slice is shared with the store — callers must not
	// modify or retain it past the call; unlike QueryMatch's compacted
	// results it may include series with no points in range). visit then
	// receives each in-range point, per the SeriesVisitor contract.
	ScanMatch(componentGlob, metricGlob string, from, to int64, begin func(keys []string), visit SeriesVisitor) error
}

// Store is the full surface shared by the single-mutex DB and the
// sharded store: ingest, query, sealing, and resource accounting.
type Store interface {
	Writer
	ReadStore
	RangeQuerier
	// WriteSamples ingests already-decoded samples, accounting wireBytes
	// as network-in traffic. On a durable store a write-ahead-log failure
	// rejects the batch.
	WriteSamples(samples []Sample, wireBytes int) error
	// MaxTime returns the largest timestamp ingested so far, or 0 when
	// the store is empty — the high-water mark windowed readers slide
	// against.
	MaxTime() int64
	// Flush seals every series' tail so Stats reflects compressed
	// storage.
	Flush()
	// Stats returns a snapshot of the accounting counters.
	Stats() Stats
}

var (
	_ Store = (*DB)(nil)
	_ Store = (*Sharded)(nil)

	_ SeriesScanner = (*DB)(nil)
	_ SeriesScanner = (*Sharded)(nil)
)
