package tsdb

// Writer is the ingest half of a store: anything that accepts
// line-protocol payloads. Both local stores (DB, Sharded) and the HTTP
// client in internal/server implement it, so a metrics.Collector can ship
// scrapes to an in-process store or across the network without changing.
type Writer interface {
	// Write ingests a line-protocol payload and returns the number of
	// samples stored.
	Write(payload []byte) (int, error)
}

// ReadStore is the query half of a store: what dataset assembly needs to
// pull every series back out.
type ReadStore interface {
	// Query returns the points of component/metric with T in [from, to).
	Query(component, metric string, from, to int64) ([]Point, error)
	// SeriesKeys returns all component/metric keys in sorted order.
	SeriesKeys() []string
}

// Store is the full surface shared by the single-mutex DB and the
// sharded store: ingest, query, sealing, and resource accounting.
type Store interface {
	Writer
	ReadStore
	// WriteSamples ingests already-decoded samples, accounting wireBytes
	// as network-in traffic. On a durable store a write-ahead-log failure
	// rejects the batch.
	WriteSamples(samples []Sample, wireBytes int) error
	// MaxTime returns the largest timestamp ingested so far, or 0 when
	// the store is empty — the high-water mark windowed readers slide
	// against.
	MaxTime() int64
	// Flush seals every series' tail so Stats reflects compressed
	// storage.
	Flush()
	// Stats returns a snapshot of the accounting counters.
	Stats() Stats
}

var (
	_ Store = (*DB)(nil)
	_ Store = (*Sharded)(nil)
)
