package tsdb

import (
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a reader runs past the end of its input.
var ErrShortBuffer = errors.New("tsdb: bit buffer exhausted")

// bitWriter packs bits most-significant-first into a byte slice.
type bitWriter struct {
	buf   []byte
	nBits int // bits used in the final byte (0..8; 0 means buf is "full")
}

// writeBit appends a single bit.
func (w *bitWriter) writeBit(bit bool) {
	if w.nBits == 0 || w.nBits == 8 {
		w.buf = append(w.buf, 0)
		w.nBits = 0
	}
	if bit {
		w.buf[len(w.buf)-1] |= 1 << (7 - w.nBits)
	}
	w.nBits++
}

// writeBits appends the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("tsdb: writeBits n=%d", n))
	}
	for i := n - 1; i >= 0; i-- {
		w.writeBit(v>>uint(i)&1 == 1)
	}
}

// bytes returns the encoded buffer (the final byte may be partially used).
func (w *bitWriter) bytes() []byte { return w.buf }

// bitReader consumes bits most-significant-first from a byte slice.
type bitReader struct {
	buf []byte
	pos int // absolute bit position
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

// readBit consumes one bit.
func (r *bitReader) readBit() (bool, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return false, ErrShortBuffer
	}
	bit := r.buf[byteIdx]>>(7-uint(r.pos&7))&1 == 1
	r.pos++
	return bit, nil
}

// readBits consumes n bits and returns them right-aligned.
func (r *bitReader) readBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("tsdb: readBits n=%d", n)
	}
	var v uint64
	for i := 0; i < n; i++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if bit {
			v |= 1
		}
	}
	return v, nil
}
