package tsdb

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
)

// This file pins the query engine against a naive reference
// implementation that decodes EVERY chunk of EVERY series — no
// time-range skipping, no summary push-down, no fan-out — and against
// itself across shard counts, parallelism, and durability states. Any
// divergence (a skipped chunk that mattered, a summary merged into the
// wrong bucket, a fan-out merge reordering series) shows up as a
// byte-level mismatch.

// refMatch is an independent glob matcher (recursive with memoization,
// unlike the engine's iterative backtracker).
func refMatch(pattern, s string) bool {
	type key struct{ pi, si int }
	memo := map[key]int{} // 0 unknown, 1 true, 2 false
	var walk func(pi, si int) bool
	walk = func(pi, si int) bool {
		k := key{pi, si}
		if v := memo[k]; v != 0 {
			return v == 1
		}
		var out bool
		switch {
		case pi == len(pattern):
			out = si == len(s)
		case pattern[pi] == '*':
			out = walk(pi+1, si) || (si < len(s) && walk(pi, si+1))
		case si < len(s) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			out = walk(pi+1, si+1)
		default:
			out = false
		}
		if out {
			memo[k] = 1
		} else {
			memo[k] = 2
		}
		return out
	}
	return walk(0, 0)
}

// refSeriesPoints decompresses one in-memory series completely, in
// storage order (sealed chunks in seal order, then the tail).
func refSeriesPoints(t *testing.T, sr *series) []Point {
	t.Helper()
	var out []Point
	for _, c := range sr.chunks {
		pts, err := DecompressBlock(c.data)
		if err != nil {
			t.Fatalf("reference decode: %v", err)
		}
		out = append(out, pts...)
	}
	return append(out, sr.tail...)
}

// refStorePoints returns every point of key in the store's canonical
// storage order — durable blocks by sequence, the checkpoint overlay,
// then shard memory — decompressing everything.
func refStorePoints(t *testing.T, store Store, key string) []Point {
	t.Helper()
	var out []Point
	switch st := store.(type) {
	case *DB:
		if sr := st.data[key]; sr != nil {
			out = refSeriesPoints(t, sr)
		}
	case *Sharded:
		if st.dur != nil {
			for _, b := range st.dur.blocks {
				for _, ref := range b.index[key] {
					payload, err := b.readChunk(key, ref)
					if err != nil {
						t.Fatalf("reference chunk read: %v", err)
					}
					pts, err := DecompressBlock(payload)
					if err != nil {
						t.Fatalf("reference decode: %v", err)
					}
					out = append(out, pts...)
				}
			}
			if sr := st.dur.flushing[key]; sr != nil {
				out = append(out, refSeriesPoints(t, sr)...)
			}
		}
		sh := st.shards[st.shardIndex(key)]
		if sr := sh.data[key]; sr != nil {
			out = append(out, refSeriesPoints(t, sr)...)
		}
	default:
		t.Fatalf("reference: unsupported store %T", store)
	}
	return out
}

// refAggregate buckets a storage-order point feed naively, mirroring the
// documented semantics: min/max/count are order-independent, sum/avg
// accumulate in feed order, first/last follow "strictly earlier T
// displaces first, greater-or-equal T displaces last".
func refAggregate(pts []Point, q RangeQuery) []Point {
	type refBucket struct {
		count         int64
		min, max, sum float64
		firstT, lastT int64
		firstV, lastV float64
		seen          bool
	}
	step := uint64(q.StepMS)
	buckets := map[uint64]*refBucket{}
	for _, p := range pts {
		idx := (uint64(p.T) - uint64(q.From)) / step
		b := buckets[idx]
		if b == nil {
			b = &refBucket{}
			buckets[idx] = b
		}
		if !b.seen {
			b.seen = true
			b.min, b.max = p.V, p.V
			b.firstT, b.firstV = p.T, p.V
			b.lastT, b.lastV = p.T, p.V
			b.count, b.sum = 1, p.V
			continue
		}
		b.count++
		b.sum += p.V
		if p.V < b.min {
			b.min = p.V
		}
		if p.V > b.max {
			b.max = p.V
		}
		if p.T < b.firstT {
			b.firstT, b.firstV = p.T, p.V
		}
		if p.T >= b.lastT {
			b.lastT, b.lastV = p.T, p.V
		}
	}
	idxs := make([]uint64, 0, len(buckets))
	for idx := range buckets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var out []Point
	for _, idx := range idxs {
		b := buckets[idx]
		var v float64
		switch q.Agg {
		case AggMin:
			v = b.min
		case AggMax:
			v = b.max
		case AggAvg:
			v = b.sum / float64(b.count)
		case AggSum:
			v = b.sum
		case AggCount:
			v = float64(b.count)
		case AggRate:
			if b.lastT == b.firstT {
				continue
			}
			v = (b.lastV - b.firstV) * 1000 / float64(uint64(b.lastT)-uint64(b.firstT))
		}
		out = append(out, Point{T: int64(uint64(q.From) + idx*step), V: v})
	}
	return out
}

// refQueryRange is the decode-everything reference for QueryRange.
func refQueryRange(t *testing.T, store Store, q RangeQuery) []SeriesResult {
	t.Helper()
	keys := store.SeriesKeys()
	var out []SeriesResult
	for _, key := range keys {
		component, metric := splitKey(key)
		if !refMatch(q.Component, component) || !refMatch(q.Metric, metric) {
			continue
		}
		all := refStorePoints(t, store, key)
		var in []Point
		for _, p := range all {
			if p.T >= q.From && p.T < q.To {
				in = append(in, p)
			}
		}
		var pts []Point
		if q.Agg == AggNone {
			pts = append([]Point(nil), in...)
			sort.SliceStable(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
		} else {
			pts = refAggregate(in, q)
		}
		if len(pts) > 0 {
			out = append(out, SeriesResult{Component: component, Metric: metric, Points: pts})
		}
	}
	return out
}

// sameResults compares two result sets, treating nil and empty as equal.
func sameResults(a, b []SeriesResult) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func describeResults(rs []SeriesResult) string {
	total := 0
	for _, r := range rs {
		total += len(r.Points)
	}
	return fmt.Sprintf("%d series / %d points", len(rs), total)
}

// equivSamples generates a randomized scrape-like dataset: comps
// components x mets metrics, one sample per series per tick. Per-series
// timestamps strictly increase (offset per series); with jitter, ~10% of
// adjacent arrivals are swapped across the whole stream, so some series
// see out-of-order arrival that crosses seal boundaries.
func equivSamples(seed int64, comps, mets, ticks int, jitter bool) []Sample {
	rng := rand.New(rand.NewSource(seed))
	compNames := make([]string, comps)
	for c := range compNames {
		switch c % 3 {
		case 0:
			compNames[c] = fmt.Sprintf("web-%02d", c)
		case 1:
			compNames[c] = fmt.Sprintf("db-%02d", c)
		default:
			compNames[c] = fmt.Sprintf("worker%02d", c)
		}
	}
	metNames := make([]string, mets)
	for m := range metNames {
		switch m % 3 {
		case 0:
			metNames[m] = fmt.Sprintf("cpu_util_%d", m)
		case 1:
			metNames[m] = fmt.Sprintf("mem_used_%d", m)
		default:
			metNames[m] = fmt.Sprintf("net_rx_%d", m)
		}
	}
	out := make([]Sample, 0, comps*mets*ticks)
	for i := 0; i < ticks; i++ {
		for c, comp := range compNames {
			for m, met := range metNames {
				out = append(out, Sample{
					Component: comp,
					Metric:    met,
					T:         int64(i)*250 + int64((c*7+m*13)%97),
					V:         rng.NormFloat64() * 100,
				})
			}
		}
	}
	if jitter {
		for i := 0; i+1 < len(out); i += 2 {
			if rng.Intn(10) == 0 {
				out[i], out[i+1] = out[i+1], out[i]
			}
		}
	}
	return out
}

// equivQueries is the matcher/range/aggregation matrix every store state
// is checked against. span is the dataset's max timestamp.
func equivQueries(span int64) []RangeQuery {
	qs := []RangeQuery{
		{Component: "*", Metric: "*", From: 0, To: span + 1},
		{Component: "web*", Metric: "*", From: 0, To: span + 1},
		{Component: "*", Metric: "cpu*", From: span / 4, To: 3 * span / 4},
		{Component: "w?b-00", Metric: "mem_used_?", From: 0, To: span + 1},
		{Component: "db-*", Metric: "*rx*", From: span / 3, To: span/3 + 777},
		{Component: "absent-*", Metric: "*", From: 0, To: span + 1},
		{Component: "*", Metric: "*", From: span / 2, To: span / 2}, // empty range
	}
	for _, agg := range []Agg{AggMin, AggMax, AggAvg, AggSum, AggCount, AggRate} {
		qs = append(qs,
			RangeQuery{Component: "*", Metric: "*", From: 0, To: span + 1, Agg: agg, StepMS: span/16 + 1},
			RangeQuery{Component: "web*", Metric: "cpu*", From: 123, To: span - 321, Agg: agg, StepMS: 997},
			RangeQuery{Component: "*", Metric: "*", From: 0, To: span + 1, Agg: agg, StepMS: 2 * span}, // one bucket
		)
	}
	return qs
}

func engineQuery(t *testing.T, store Store, q RangeQuery) []SeriesResult {
	t.Helper()
	got, err := store.QueryRange(context.Background(), q)
	if err != nil {
		t.Fatalf("QueryRange(%+v): %v", q, err)
	}
	return got
}

// TestQueryEngineEquivalenceInMemory checks engine vs reference on the
// single-mutex DB and on in-memory sharded stores at shard counts
// {1, 4, GOMAXPROCS} and parallelism {0, 1, 4}, on both a fully ordered
// and an out-of-order dataset. All stores must agree with their own
// reference AND with each other byte for byte.
func TestQueryEngineEquivalenceInMemory(t *testing.T) {
	for _, jitter := range []bool{false, true} {
		name := "ordered"
		if jitter {
			name = "jittered"
		}
		t.Run(name, func(t *testing.T) {
			samples := equivSamples(42, 5, 4, 1500, jitter)
			var span int64
			for _, s := range samples {
				if s.T > span {
					span = s.T
				}
			}
			stores := map[string]Store{
				"db":        New(),
				"shards=1":  NewSharded(1),
				"shards=4":  NewSharded(4),
				"shards=np": NewSharded(runtime.GOMAXPROCS(0)),
			}
			order := []string{"db", "shards=1", "shards=4", "shards=np"}
			for _, st := range stores {
				if err := st.WriteSamples(samples, 0); err != nil {
					t.Fatal(err)
				}
			}
			for _, q := range equivQueries(span) {
				var base []SeriesResult
				for i, name := range order {
					st := stores[name]
					ref := refQueryRange(t, st, q)
					for _, par := range []int{0, 1, 4} {
						q := q
						q.Parallelism = par
						got := engineQuery(t, st, q)
						if !sameResults(got, ref) {
							t.Fatalf("%s par=%d %+v: engine %s != reference %s",
								name, par, q, describeResults(got), describeResults(ref))
						}
						if i == 0 && par == 0 {
							base = got
						} else if !sameResults(got, base) {
							t.Fatalf("%s par=%d %+v: differs from %s baseline", name, par, q, order[0])
						}
					}
				}
			}
		})
	}
}

// TestQueryEngineEquivalenceDurable checks engine vs reference on a
// durable store through its lifecycle — mixed blocks+memory, then
// checkpointed, closed, and reopened (all data in sealed blocks) at
// shard counts {1, 4, GOMAXPROCS} — and pins every state byte-identical
// to an in-memory twin holding the same samples (the dataset is ordered,
// so even sum/avg rounding must survive the block rewrite).
func TestQueryEngineEquivalenceDurable(t *testing.T) {
	samples := equivSamples(7, 4, 3, 1200, false)
	var span int64
	for _, s := range samples {
		if s.T > span {
			span = s.T
		}
	}
	twin := NewSharded(4)
	if err := twin.WriteSamples(samples, 0); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s, err := OpenSharded(4, DurabilityOptions{Dir: dir, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	half := len(samples) / 2
	if err := s.WriteSamples(samples[:half], 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSamples(samples[half:], 0); err != nil {
		t.Fatal(err)
	}

	check := func(label string, st Store) {
		t.Helper()
		for _, q := range equivQueries(span) {
			got := engineQuery(t, st, q)
			if ref := refQueryRange(t, st, q); !sameResults(got, ref) {
				t.Fatalf("%s %+v: engine %s != reference %s", label, q, describeResults(got), describeResults(ref))
			}
			if want := engineQuery(t, twin, q); !sameResults(got, want) {
				t.Fatalf("%s %+v: durable %s != in-memory twin %s", label, q, describeResults(got), describeResults(want))
			}
		}
	}
	check("blocks+memory", s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		re, err := OpenSharded(n, DurabilityOptions{Dir: dir, FlushInterval: -1})
		if err != nil {
			t.Fatalf("reopen with %d shards: %v", n, err)
		}
		check(fmt.Sprintf("reopened shards=%d", n), re)
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQueryEngineEquivalenceJitteredDurable runs the same-store
// engine-vs-reference comparison on a durable store fed out-of-order
// arrivals (chunks with overlapping time ranges on both the memory and
// block sides), where skip decisions are easiest to get wrong.
func TestQueryEngineEquivalenceJitteredDurable(t *testing.T) {
	samples := equivSamples(99, 3, 3, 1000, true)
	var span int64
	for _, s := range samples {
		if s.T > span {
			span = s.T
		}
	}
	dir := t.TempDir()
	s, err := OpenSharded(3, DurabilityOptions{Dir: dir, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	third := len(samples) / 3
	if err := s.WriteSamples(samples[:third], 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSamples(samples[third:2*third], 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSamples(samples[2*third:], 0); err != nil {
		t.Fatal(err)
	}
	for _, q := range equivQueries(span) {
		got := engineQuery(t, s, q)
		if ref := refQueryRange(t, s, q); !sameResults(got, ref) {
			t.Fatalf("%+v: engine %s != reference %s", q, describeResults(got), describeResults(ref))
		}
	}
}
