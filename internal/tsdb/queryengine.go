package tsdb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/sieve-microservices/sieve/internal/parallel"
)

// This file is the read-side query engine (the counterpart of the
// durable write-side engine in wal.go/block.go/durable.go): matcher
// queries over many series at once, aggregation push-down computed
// during decode iteration, and the chunk-skipping scan shared by every
// read path.
//
// The layers, bottom up:
//
//   - pointSink / scanChunk: a streaming decode loop over one Gorilla
//     chunk. Chunks are time-ordered, so the scan stops at the first
//     point past the range instead of decoding the remainder.
//   - chunkAgg: the per-chunk summary kept by both the in-memory sealed
//     chunks (memChunk) and the on-disk chunk index (chunkRef). Reads
//     skip disjoint chunks on [MinT, MaxT] alone, and order-independent
//     aggregations (min/max/count/rate) consume whole in-bucket chunks
//     from the summary without reading or decoding them.
//   - aggregator: bucket accumulation for min/max/avg/sum/count/rate on
//     a step grid anchored at the query's From. Raw points never
//     materialize for aggregated queries — every source streams into
//     the accumulator.
//   - DB.QueryRange / Sharded.QueryRange: matcher evaluation. The
//     sharded form fans the matched series out across a worker pool
//     (internal/parallel) and merges results in series-key order, so
//     output is identical at any shard count and parallelism.

// Agg selects the aggregation a range query applies per step bucket.
// AggNone returns raw points.
type Agg uint8

const (
	// AggNone returns raw points (no bucketing).
	AggNone Agg = iota
	// AggMin is the per-bucket minimum value.
	AggMin
	// AggMax is the per-bucket maximum value.
	AggMax
	// AggAvg is the per-bucket arithmetic mean.
	AggAvg
	// AggSum is the per-bucket sum.
	AggSum
	// AggCount is the per-bucket point count.
	AggCount
	// AggRate is the per-bucket per-second rate of change: (last value -
	// first value) / (last T - first T), scaled to seconds. Buckets whose
	// points share one timestamp are omitted (no defined rate).
	AggRate
)

// ParseAgg parses an aggregation name as used by the /query_range `agg`
// parameter. "" and "raw" mean AggNone.
func ParseAgg(s string) (Agg, error) {
	switch s {
	case "", "raw", "none":
		return AggNone, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "avg":
		return AggAvg, nil
	case "sum":
		return AggSum, nil
	case "count":
		return AggCount, nil
	case "rate":
		return AggRate, nil
	}
	return AggNone, fmt.Errorf("tsdb: unknown aggregation %q (want min, max, avg, sum, count, rate, or raw)", s)
}

// String returns the wire name of the aggregation ("raw" for AggNone).
func (a Agg) String() string {
	switch a {
	case AggNone:
		return "raw"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggRate:
		return "rate"
	}
	return fmt.Sprintf("agg(%d)", uint8(a))
}

// RangeQuery is one query-engine request: every series whose component
// and metric match the globs, restricted to T in [From, To), either raw
// (Agg == AggNone) or aggregated per StepMS bucket. Globs support '*'
// (any run) and '?' (any byte); "*"/"*" matches every series.
type RangeQuery struct {
	// Component and Metric are glob patterns over the two halves of the
	// series key.
	Component string
	Metric    string
	// From and To bound the time range: [From, To) in milliseconds.
	From, To int64
	// Agg selects the aggregation; AggNone returns raw points.
	Agg Agg
	// StepMS is the aggregation bucket width in milliseconds, anchored at
	// From (bucket i covers [From+i*StepMS, From+(i+1)*StepMS)). Required
	// (> 0) when Agg is set, and must be 0 when Agg is AggNone.
	StepMS int64
	// Parallelism sizes the per-series fan-out of a sharded store
	// (0 = GOMAXPROCS). Results are identical at any value.
	Parallelism int
}

// Validate checks the query's internal consistency.
func (q RangeQuery) Validate() error {
	if q.From > q.To {
		return fmt.Errorf("tsdb: query range [%d, %d) is inverted", q.From, q.To)
	}
	if q.Agg > AggRate {
		return fmt.Errorf("tsdb: invalid aggregation %d", uint8(q.Agg))
	}
	if q.Agg == AggNone && q.StepMS != 0 {
		return errors.New("tsdb: step requires an aggregation function")
	}
	if q.Agg != AggNone && q.StepMS <= 0 {
		return fmt.Errorf("tsdb: aggregation %s requires step > 0, got %d", q.Agg, q.StepMS)
	}
	return nil
}

// ParseRangeQuery builds a RangeQuery from the /query_range parameter
// strings. Empty component/metric default to "*" (match everything),
// empty from to 0, empty to to defaultTo (callers pass the store's
// MaxTime()+1 so the default range covers everything ingested). The
// returned query is validated.
func ParseRangeQuery(component, metric, from, to, agg, step string, defaultTo int64) (RangeQuery, error) {
	q := RangeQuery{Component: component, Metric: metric, From: 0, To: defaultTo}
	if q.Component == "" {
		q.Component = "*"
	}
	if q.Metric == "" {
		q.Metric = "*"
	}
	var err error
	if from != "" {
		if q.From, err = strconv.ParseInt(from, 10, 64); err != nil {
			return q, fmt.Errorf("tsdb: bad from: %w", err)
		}
	}
	if to != "" {
		if q.To, err = strconv.ParseInt(to, 10, 64); err != nil {
			return q, fmt.Errorf("tsdb: bad to: %w", err)
		}
	}
	if q.Agg, err = ParseAgg(agg); err != nil {
		return q, err
	}
	if step != "" {
		if q.StepMS, err = strconv.ParseInt(step, 10, 64); err != nil {
			return q, fmt.Errorf("tsdb: bad step: %w", err)
		}
	}
	if err := q.Validate(); err != nil {
		return q, err
	}
	return q, nil
}

// SeriesResult is one matched series' answer: raw points, or one point
// per non-empty bucket (T = bucket start) for aggregated queries.
type SeriesResult struct {
	Component string  `json:"component"`
	Metric    string  `json:"metric"`
	Points    []Point `json:"points"`
}

// matchGlob reports whether s matches the glob pattern: '*' matches any
// (possibly empty) run of bytes, '?' any single byte, everything else
// itself. Iterative with single-star backtracking, so adversarial
// patterns stay linear-ish instead of exponential.
func matchGlob(pattern, s string) bool {
	pi, si := 0, 0
	starPi, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			starPi, starSi = pi, si
			pi++
		case starPi >= 0:
			pi = starPi + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

// splitKey splits a series key at its first slash into component and
// metric (the convention of Sample.Key and DatasetFromDB).
func splitKey(key string) (component, metric string) {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i], key[i+1:]
	}
	return key, ""
}

// matchKey applies the query's globs to a series key.
func (q RangeQuery) matchKey(key string) bool {
	component, metric := splitKey(key)
	return matchGlob(q.Component, component) && matchGlob(q.Metric, metric)
}

// chunkAgg summarizes one sealed chunk, in memory (memChunk) or on disk
// (chunkRef): the time range for skip decisions plus the value facts
// that order-independent aggregations need. FirstV and LastV are the
// first and last stored values; chunks are time-sorted, so they carry
// MinT and MaxT respectively. NoSummary disqualifies the chunk from
// summary push-down (it always decodes): set for chunks containing NaN
// — min/max over a sequence with NaN is order-dependent under
// comparison semantics (NaN never wins a comparison but poisons a
// seed), so no single summary value reproduces what decoding yields —
// and, on the persisted side, for any non-finite summary value, which
// JSON cannot carry (see chunkRef). Only WriteSamples can ingest
// non-finite values; the line protocol rejects them.
type chunkAgg struct {
	Count         int
	MinT, MaxT    int64
	MinV, MaxV    float64
	FirstV, LastV float64
	NoSummary     bool
}

// summarizeChunk computes the summary of a time-sorted, non-empty batch.
func summarizeChunk(pts []Point) chunkAgg {
	a := chunkAgg{
		Count: len(pts),
		MinT:  pts[0].T, MaxT: pts[len(pts)-1].T,
		MinV: pts[0].V, MaxV: pts[0].V,
		FirstV: pts[0].V, LastV: pts[len(pts)-1].V,
	}
	for _, p := range pts {
		if p.V != p.V { // NaN
			a.NoSummary = true
		}
		if p.V < a.MinV {
			a.MinV = p.V
		}
		if p.V > a.MaxV {
			a.MaxV = p.V
		}
	}
	return a
}

// pointSink consumes a streamed scan. chunk offers a whole chunk that
// lies entirely inside the query range as its summary; a sink returns
// true to consume it without decoding (aggregation push-down) or false
// to receive the chunk's points through add instead.
type pointSink interface {
	add(Point)
	chunk(chunkAgg) bool
}

// rawSink collects raw points; chunk summaries are always declined
// (raw reads need the actual points).
type rawSink struct{ pts []Point }

func (r *rawSink) add(p Point)         { r.pts = append(r.pts, p) }
func (r *rawSink) chunk(chunkAgg) bool { return false }

// scanChunk streams a compressed chunk's points with T in [from, to) to
// sink. The chunk is time-ordered, so the scan returns at the first
// point past `to` without decoding the rest.
func scanChunk(chunk []byte, from, to int64, sink pointSink) error {
	var it chunkIter
	return scanChunkWith(&it, chunk, from, to, sink)
}

// scanChunkWith is scanChunk with a caller-owned iterator, so loops over
// many chunks (series.scanRange, block scans) reset one stack-resident
// iterator instead of heap-allocating per chunk.
func scanChunkWith(it *chunkIter, chunk []byte, from, to int64, sink pointSink) error {
	ok, err := it.reset(chunk)
	if err != nil || !ok {
		return err
	}
	for {
		ok, err := it.next()
		if err != nil {
			return err
		}
		if !ok || it.cur.T >= to {
			return nil
		}
		if it.cur.T >= from {
			sink.add(it.cur)
		}
	}
}

// bucket accumulates one step bucket, seeded by its first contribution
// (no sentinel extrema: comparison-based updates then treat NaN the same
// way the naive reference does). first/last follow feed order among
// equal timestamps: the first point fed with the minimal T stays first,
// the last point fed with the maximal T becomes last — exactly the order
// a stable sort by T would produce from the storage-order feed.
type bucket struct {
	count         int64
	min, max, sum float64
	firstT, lastT int64
	firstV, lastV float64
}

// aggregator buckets a storage-order point stream on the step grid
// anchored at from. It implements pointSink: whole in-bucket chunks are
// consumed from their summaries when the aggregation allows it (sum and
// avg always decode — a per-chunk subtotal would change float rounding,
// and results must be bit-identical to a naive point-by-point
// reference).
type aggregator struct {
	agg      Agg
	from     int64
	step     uint64
	pushdown bool
	buckets  map[uint64]*bucket
}

func newAggregator(agg Agg, from, stepMS int64) *aggregator {
	return &aggregator{
		agg:  agg,
		from: from,
		step: uint64(stepMS),
		// Order-independent facts come straight from chunk summaries;
		// sum/avg accumulate point by point to keep rounding identical to
		// the naive reference.
		pushdown: agg == AggMin || agg == AggMax || agg == AggCount || agg == AggRate,
		buckets:  map[uint64]*bucket{},
	}
}

// bucketIdx maps a timestamp in [from, to) onto its bucket index. The
// subtraction runs unsigned: t >= from, so the wrapped difference is the
// exact mathematical distance even when int64 subtraction would
// overflow (from can be MinInt64 on an unbounded query).
func (a *aggregator) bucketIdx(t int64) uint64 {
	return (uint64(t) - uint64(a.from)) / a.step
}

// bucketStart inverts bucketIdx, again through unsigned arithmetic.
func (a *aggregator) bucketStart(idx uint64) int64 {
	return int64(uint64(a.from) + idx*a.step)
}

func (a *aggregator) add(p Point) {
	idx := a.bucketIdx(p.T)
	b := a.buckets[idx]
	if b == nil {
		a.buckets[idx] = &bucket{
			count: 1, min: p.V, max: p.V, sum: p.V,
			firstT: p.T, firstV: p.V, lastT: p.T, lastV: p.V,
		}
		return
	}
	b.count++
	if p.V < b.min {
		b.min = p.V
	}
	if p.V > b.max {
		b.max = p.V
	}
	b.sum += p.V
	if p.T < b.firstT {
		b.firstT, b.firstV = p.T, p.V
	}
	if p.T >= b.lastT {
		b.lastT, b.lastV = p.T, p.V
	}
}

func (a *aggregator) chunk(c chunkAgg) bool {
	if !a.pushdown || c.NoSummary {
		return false
	}
	idx := a.bucketIdx(c.MinT)
	if idx != a.bucketIdx(c.MaxT) {
		// The chunk straddles a bucket boundary; decode it.
		return false
	}
	b := a.buckets[idx]
	if b == nil {
		a.buckets[idx] = &bucket{
			count: int64(c.Count), min: c.MinV, max: c.MaxV,
			firstT: c.MinT, firstV: c.FirstV, lastT: c.MaxT, lastV: c.LastV,
		}
		return true
	}
	b.count += int64(c.Count)
	if c.MinV < b.min {
		b.min = c.MinV
	}
	if c.MaxV > b.max {
		b.max = c.MaxV
	}
	// first/last merge mirrors add's feed-order rule: strictly earlier
	// MinT displaces first, greater-or-equal MaxT displaces last.
	if c.MinT < b.firstT {
		b.firstT, b.firstV = c.MinT, c.FirstV
	}
	if c.MaxT >= b.lastT {
		b.lastT, b.lastV = c.MaxT, c.LastV
	}
	return true
}

// points materializes the non-empty buckets in time order: one point per
// bucket, T = bucket start. Rate buckets whose points share a single
// timestamp are omitted.
func (a *aggregator) points() []Point {
	if len(a.buckets) == 0 {
		return nil
	}
	idxs := make([]uint64, 0, len(a.buckets))
	for idx := range a.buckets {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	out := make([]Point, 0, len(idxs))
	for _, idx := range idxs {
		b := a.buckets[idx]
		var v float64
		switch a.agg {
		case AggMin:
			v = b.min
		case AggMax:
			v = b.max
		case AggAvg:
			v = b.sum / float64(b.count)
		case AggSum:
			v = b.sum
		case AggCount:
			v = float64(b.count)
		case AggRate:
			if b.lastT == b.firstT {
				continue
			}
			// Unsigned difference: exact even across a huge bucket.
			dtMS := uint64(b.lastT) - uint64(b.firstT)
			v = (b.lastV - b.firstV) * 1000 / float64(dtMS)
		}
		out = append(out, Point{T: a.bucketStart(idx), V: v})
	}
	return out
}

// matchedKeys filters and sorts the series keys the query matches.
func matchedKeys(set map[string]struct{}, q RangeQuery) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		if q.matchKey(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// compactResults drops empty series from a pre-sized result slice,
// preserving order.
func compactResults(results []SeriesResult) []SeriesResult {
	out := results[:0]
	for _, r := range results {
		if len(r.Points) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// QueryRange evaluates a matcher/aggregation query against the DB: every
// series matching the globs, raw or bucket-aggregated, in series-key
// order. Series with no points in the range are omitted. The whole
// evaluation runs under one lock hold, so the result is a consistent
// snapshot. Result sizes are charged to network-out as /query responses
// are.
func (db *DB) QueryRange(ctx context.Context, q RangeQuery) ([]SeriesResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	set := make(map[string]struct{}, len(db.data))
	for k := range db.data {
		set[k] = struct{}{}
	}
	keys := matchedKeys(set, q)
	results := make([]SeriesResult, len(keys))
	for i, key := range keys {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		component, metric := splitKey(key)
		pts, err := scanOneSeries(db.data[key], q, db.tel)
		if err != nil {
			return nil, fmt.Errorf("tsdb: corrupt block in %q: %w", key, err)
		}
		db.stats.NetworkOutBytes += 16 * len(pts)
		results[i] = SeriesResult{Component: component, Metric: metric, Points: pts}
	}
	return compactResults(results), nil
}

// scanOneSeries evaluates one series under the caller's lock: raw points
// stably sorted by time, or aggregated buckets.
func scanOneSeries(sr *series, q RangeQuery, tel *StoreTelemetry) ([]Point, error) {
	if q.Agg == AggNone {
		pts, err := sr.pointsInRange(q.From, q.To, tel)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
		return pts, nil
	}
	acc := newAggregator(q.Agg, q.From, q.StepMS)
	if err := sr.scanRange(q.From, q.To, acc, tel); err != nil {
		return nil, err
	}
	return acc.points(), nil
}

// QueryMatch is the raw-points matcher query: every series matching the
// globs with T in [from, to), in series-key order.
func (db *DB) QueryMatch(componentGlob, metricGlob string, from, to int64) ([]SeriesResult, error) {
	return db.QueryRange(context.Background(), RangeQuery{
		Component: componentGlob, Metric: metricGlob, From: from, To: to,
	})
}

// QueryRange evaluates a matcher/aggregation query against the sharded
// store: the matched series (in-memory, persisted blocks, and any
// mid-checkpoint overlay) are fanned out across a worker pool and merged
// in series-key order, so the result is identical at any shard count and
// parallelism. Series with no points in the range are omitted;
// aggregated queries never materialize raw points.
//
// On a durable store the checkpoint-cut read lock is held per series,
// not across the whole fan-out: each series is read from one consistent
// side of any concurrent cut (never duplicated, never partially
// drained), while a wide query over cold blocks cannot stall a pending
// checkpoint — and, through the RWMutex writer queue, every other
// reader — for its full duration. Against the cut itself, per-series
// holds cost no observable consistency: a cut only moves points between
// memory and blocks, and reads are byte-identical on either side
// (pinned by the equivalence suite), so a result mixing pre- and
// post-cut series equals the all-pre and all-post results. Retention is
// the exception: a checkpoint racing the fan-out may drop expired
// blocks midway, so with RetentionMS set a single response can reflect
// different history depths across series (concurrent ingest advancing
// the horizon has the same effect); per-query atomicity against data
// expiry is not part of the contract.
func (s *Sharded) QueryRange(ctx context.Context, q RangeQuery) ([]SeriesResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	keys := matchedKeys(s.seriesKeySet(), q)
	results := make([]SeriesResult, len(keys))
	err := parallel.ForEach(ctx, q.Parallelism, len(keys), func(ctx context.Context, i int) error {
		key := keys[i]
		component, metric := splitKey(key)
		pts, err := s.querySeries(key, component, metric, q)
		if err != nil {
			// A series enumerated a moment ago can disappear when block
			// retention races the scan; absence is an empty result, not a
			// failure.
			if errors.Is(err, ErrUnknownSeries) {
				return nil
			}
			return err
		}
		results[i] = SeriesResult{Component: component, Metric: metric, Points: pts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return compactResults(results), nil
}

// querySeries reads one series under its own checkpoint-cut hold.
func (s *Sharded) querySeries(key, component, metric string, q RangeQuery) ([]Point, error) {
	if s.dur != nil {
		s.dur.cutMu.RLock()
		defer s.dur.cutMu.RUnlock()
	}
	if q.Agg == AggNone {
		return s.queryKeyLocked(key, component, metric, q.From, q.To)
	}
	return s.aggregateKeyLocked(key, q)
}

// aggregateKeyLocked streams one series through an aggregator in
// canonical storage order — persisted blocks (in sequence order), the
// checkpoint overlay, then shard memory — which is the same order the
// raw path stably sorts. Caller holds cutMu (durable stores).
func (s *Sharded) aggregateKeyLocked(key string, q RangeQuery) ([]Point, error) {
	acc := newAggregator(q.Agg, q.From, q.StepMS)
	if s.dur != nil {
		if err := s.dur.scanBlocksAgg(key, q, acc); err != nil {
			return nil, err
		}
	}
	if err := s.shards[s.shardIndex(key)].scanSeries(key, q.From, q.To, acc); err != nil {
		return nil, err
	}
	pts := acc.points()
	s.netOut.Add(16 * int64(len(pts)))
	return pts, nil
}

// QueryMatch is the raw-points matcher query: every series matching the
// globs with T in [from, to), in series-key order, fanned out across
// shards and series.
func (s *Sharded) QueryMatch(componentGlob, metricGlob string, from, to int64) ([]SeriesResult, error) {
	return s.QueryRange(context.Background(), RangeQuery{
		Component: componentGlob, Metric: metricGlob, From: from, To: to,
	})
}

// visitSink adapts one series' streamed scan to a SeriesVisitor: every
// decoded point is forwarded with the series' index, and chunk summaries
// are always declined (visitors need the actual points).
type visitSink struct {
	idx   int
	n     int
	visit SeriesVisitor
}

func (s *visitSink) add(p Point) {
	s.visit(s.idx, p.T, p.V)
	s.n++
}

func (s *visitSink) chunk(chunkAgg) bool { return false }

// ScanMatch streams every matching series' points with T in [from, to)
// directly from chunk decode into visit — no []Point or SeriesResult
// materializes. Points arrive in storage order (sealed chunks, then
// tail), which for the in-order ingest the pipeline produces equals
// QueryMatch's stably time-sorted order. The whole scan runs under one
// lock hold, so the result is a consistent snapshot; visits are
// sequential. Streamed volume is charged to network-out as query
// responses are.
func (db *DB) ScanMatch(componentGlob, metricGlob string, from, to int64, begin func(keys []string), visit SeriesVisitor) error {
	q := RangeQuery{Component: componentGlob, Metric: metricGlob, From: from, To: to}
	db.mu.Lock()
	defer db.mu.Unlock()
	set := make(map[string]struct{}, len(db.data))
	for k := range db.data {
		set[k] = struct{}{}
	}
	keys := matchedKeys(set, q)
	if begin != nil {
		begin(keys)
	}
	sink := visitSink{visit: visit}
	for i, key := range keys {
		sink.idx = i
		if err := db.data[key].scanRange(from, to, &sink, db.tel); err != nil {
			return fmt.Errorf("tsdb: corrupt block in %q: %w", key, err)
		}
	}
	db.stats.NetworkOutBytes += 16 * sink.n
	return nil
}

// ScanMatch streams every matching series' points with T in [from, to)
// into visit, fanning the matched series out across a worker pool: one
// series' points arrive in canonical storage order (persisted blocks,
// checkpoint overlay, then shard memory) from a single goroutine, but
// different series are visited concurrently — per-seriesIdx visitor
// state needs no locking, shared state does. Like QueryRange, the
// checkpoint-cut lock is held per series, not across the fan-out.
func (s *Sharded) ScanMatch(componentGlob, metricGlob string, from, to int64, begin func(keys []string), visit SeriesVisitor) error {
	q := RangeQuery{Component: componentGlob, Metric: metricGlob, From: from, To: to}
	keys := matchedKeys(s.seriesKeySet(), q)
	if begin != nil {
		begin(keys)
	}
	return parallel.ForEach(context.Background(), q.Parallelism, len(keys), func(_ context.Context, i int) error {
		sink := visitSink{idx: i, visit: visit}
		if err := s.scanKey(keys[i], from, to, &sink); err != nil {
			// A series enumerated a moment ago can disappear when block
			// retention races the scan; absence is an empty scan, not a
			// failure.
			if errors.Is(err, ErrUnknownSeries) {
				return nil
			}
			return err
		}
		s.netOut.Add(16 * int64(sink.n))
		return nil
	})
}

// scanKey streams one series under its own checkpoint-cut hold, in the
// same canonical order aggregateKeyLocked consumes: persisted blocks (in
// sequence order), the checkpoint overlay, then shard memory.
func (s *Sharded) scanKey(key string, from, to int64, sink pointSink) error {
	if s.dur != nil {
		s.dur.cutMu.RLock()
		defer s.dur.cutMu.RUnlock()
		if err := s.dur.scanBlocks(key, from, to, sink); err != nil {
			return err
		}
	}
	return s.shards[s.shardIndex(key)].scanSeries(key, from, to, sink)
}
