package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func walBatch(comp string, n int, base int64) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{Component: comp, Metric: fmt.Sprintf("m%d", i%4), T: base + int64(i)*500, V: float64(i) * 1.5}
	}
	return out
}

func replayAll(t *testing.T, dir string) ([]Sample, walReplayStats) {
	t.Helper()
	var got []Sample
	st, err := replayWAL(dir, func(s []Sample) { got = append(got, s...) })
	if err != nil {
		t.Fatalf("replayWAL: %v", err)
	}
	return got, st
}

func TestWALSampleCodecRoundtrip(t *testing.T) {
	in := []Sample{
		{Component: "web", Metric: "cpu", T: 0, V: 0.5},
		{Component: "db", Metric: "mem_bytes", T: -42, V: -1e300},
		{Component: "", Metric: "", T: 1 << 40, V: 0},
	}
	out, err := decodeWALSamples(appendWALSamples(nil, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip mismatch:\n in=%v\nout=%v", in, out)
	}
	if _, err := decodeWALSamples([]byte{0xff}); err == nil {
		t.Error("expected error for truncated payload")
	}
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := openWALWriter(dir, FsyncNever, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var want []Sample
	for i := 0; i < 10; i++ {
		b := walBatch(fmt.Sprintf("c%d", i), 16, int64(i)*1000)
		if _, err := w.append(b); err != nil {
			t.Fatalf("append: %v", err)
		}
		want = append(want, b...)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir)
	if st.Repaired {
		t.Error("unexpected repair on clean WAL")
	}
	if st.Records != 10 || st.Samples != 160 {
		t.Errorf("replay stats = %+v, want 10 records / 160 samples", st)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("replayed samples differ from appended")
	}
}

func TestWALSegmentRollAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny segment cap: every record rolls to a new segment.
	w, err := openWALWriter(dir, FsyncNever, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.append(walBatch("c", 8, int64(i)*1000)); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := listWALSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("expected several rolled segments, got %d", len(seqs))
	}
	cut, err := w.rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(walBatch("after", 8, 99000)); err != nil {
		t.Fatal(err)
	}
	if err := w.removeSegmentsBelow(cut); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir)
	for _, s := range got {
		if s.Component != "after" {
			t.Fatalf("pre-cut sample %v survived pruning", s)
		}
	}
	if len(got) != 8 {
		t.Fatalf("got %d post-cut samples, want 8", len(got))
	}
}

func TestWALTruncatedTailRepair(t *testing.T) {
	dir := t.TempDir()
	w, err := openWALWriter(dir, FsyncNever, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var want []Sample
	for i := 0; i < 3; i++ {
		b := walBatch("c", 8, int64(i)*1000)
		if _, err := w.append(b); err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			want = append(want, b...)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// Chop a few bytes off the last record, as a crash mid-write would.
	seqs, _ := listWALSegments(dir)
	path := filepath.Join(dir, walSegmentName(seqs[len(seqs)-1]))
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir)
	if !st.Repaired {
		t.Error("expected Repaired=true for truncated tail")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("got %d samples, want the 16 before the truncated record", len(got))
	}
	// After repair the WAL replays cleanly.
	got2, st2 := replayAll(t, dir)
	if st2.Repaired || !reflect.DeepEqual(want, got2) {
		t.Error("repaired WAL should replay cleanly and identically")
	}
}

func TestWALCorruptRecordDiscardsRest(t *testing.T) {
	dir := t.TempDir()
	// One record per segment, three segments.
	w, err := openWALWriter(dir, FsyncNever, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.append(walBatch("c", 4, int64(i)*1000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := listWALSegments(dir)
	if len(seqs) != 3 {
		t.Fatalf("expected 3 segments, got %d", len(seqs))
	}
	// Flip a payload byte in the middle segment.
	path := filepath.Join(dir, walSegmentName(seqs[1]))
	data, _ := os.ReadFile(path)
	data[walRecordHeader+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir)
	if !st.Repaired {
		t.Error("expected repair")
	}
	if len(got) != 4 {
		t.Fatalf("got %d samples, want only the 4 before the corruption", len(got))
	}
	// Segments after the corruption point are gone.
	seqs, _ = listWALSegments(dir)
	if len(seqs) != 2 {
		t.Fatalf("expected later segment removed, have %d segments", len(seqs))
	}
}
