package autoscale

import (
	"testing"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/loadgen"
)

func scalableSpec() app.Spec {
	return app.Spec{
		Name:   "scaleapp",
		TickMS: 500,
		Components: []app.ComponentSpec{
			{
				Name: "lb", Addr: "10.8.0.1:80", ServiceMS: 1, CapacityPerInstance: 5000,
				Entry: true, Calls: []app.Call{{Target: "api", Prob: 1}},
				Families: []app.Family{
					{Base: "cpu_usage", Driver: app.DriverUtil, Scale: 100, Noise: 0.02},
					{Base: "lb_rate", Driver: app.DriverRate, Noise: 0.02},
				},
			},
			{
				Name: "api", Addr: "10.8.0.2:8080", ServiceMS: 10, CapacityPerInstance: 100,
				Families: []app.Family{
					{Base: "cpu_usage", Driver: app.DriverUtil, Scale: 100, Noise: 0.02},
					{Base: "api_latency_ms", Driver: app.DriverLatency, Noise: 0.02},
				},
			},
		},
	}
}

func TestEngineScalesOutUnderLoadAndInWhenIdle(t *testing.T) {
	a, err := app.New(scalableSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rules := CPUPolicy([]string{"api"}, 80, 10, 5)
	eng, err := NewEngine(a, rules, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Overload api (capacity 100/s per instance).
	for i := 0; i < 30; i++ {
		a.Step(180)
		eng.Step()
	}
	if got := a.Instances("api"); got < 2 {
		t.Fatalf("instances under overload = %d, want >= 2", got)
	}
	peak := a.Instances("api")

	// Near-zero load: scale back in.
	for i := 0; i < 60; i++ {
		a.Step(1)
		eng.Step()
	}
	if got := a.Instances("api"); got >= peak {
		t.Errorf("instances after idle = %d, want < %d", got, peak)
	}

	// Action log is consistent.
	actions := eng.Actions()
	if len(actions) == 0 {
		t.Fatal("no actions recorded")
	}
	for _, act := range actions {
		if act.Component != "api" || (act.Delta != 1 && act.Delta != -1) {
			t.Errorf("bad action %+v", act)
		}
	}
}

func TestEngineRespectsBoundsAndCooldown(t *testing.T) {
	a, err := app.New(scalableSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rules := []Rule{{
		Target: "api", MetricComponent: "api", Metric: "cpu_usage",
		UpThreshold: 10, DownThreshold: 1, MaxInstances: 2,
	}}
	eng, err := NewEngine(a, rules, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a.Step(150)
		eng.Step()
	}
	if got := a.Instances("api"); got > 2 {
		t.Errorf("instances = %d, exceeded MaxInstances 2", got)
	}
	// With cooldown 10 over 50 ticks, at most ~5 actions are possible.
	if got := len(eng.Actions()); got > 5 {
		t.Errorf("%d actions with cooldown 10 over 50 ticks", got)
	}
}

func TestEngineValidation(t *testing.T) {
	a, err := app.New(scalableSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(nil, CPUPolicy([]string{"api"}, 80, 10, 5), 0); err == nil {
		t.Error("expected error for nil app")
	}
	if _, err := NewEngine(a, nil, 0); err == nil {
		t.Error("expected error for no rules")
	}
	bad := []Rule{{Target: "api", MetricComponent: "api", Metric: "cpu_usage", UpThreshold: 10, DownThreshold: 20}}
	if _, err := NewEngine(a, bad, 0); err == nil {
		t.Error("expected error for inverted thresholds")
	}
	ghost := []Rule{{Target: "ghost", MetricComponent: "api", Metric: "cpu_usage", UpThreshold: 20, DownThreshold: 10}}
	if _, err := NewEngine(a, ghost, 0); err == nil {
		t.Error("expected error for unknown target")
	}
}

func TestSievePolicyFromArtifact(t *testing.T) {
	spec := scalableSpec()
	// Give api headroom so latency varies with load instead of pinning at
	// the saturation cap (which would carry no Granger signal).
	spec.Components[1].CapacityPerInstance = 5000
	a, err := app.New(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	art, _, err := core.Run(a, loadgen.Random(3, 200, 500, 4000), core.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rules, key, err := SievePolicy(art, 100, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if key == "" || len(rules) == 0 {
		t.Fatalf("policy = %v guided by %q", rules, key)
	}
	for _, r := range rules {
		if r.Metric == "" || r.Target == "" {
			t.Errorf("incomplete rule %+v", r)
		}
		if r.UpThreshold != 100 || r.DownThreshold != 50 {
			t.Errorf("thresholds not propagated: %+v", r)
		}
	}
	if _, _, err := SievePolicy(nil, 1, 0, 5); err == nil {
		t.Error("expected error for nil artifact")
	}
}

func TestSLATracker(t *testing.T) {
	tr := NewSLATracker(1000, 4)
	// Window 1: all fast -> no violation.
	for i := 0; i < 4; i++ {
		tr.Observe(100)
	}
	// Window 2: slow tail -> p90 over threshold.
	tr.Observe(100)
	tr.Observe(2000)
	tr.Observe(2000)
	tr.Observe(2000)
	if tr.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", tr.Samples())
	}
	if tr.Violations() != 1 {
		t.Errorf("violations = %d, want 1", tr.Violations())
	}
}

func TestRefineThresholds(t *testing.T) {
	// Latency crosses the SLA when the metric passes ~800.
	var metric, lat []float64
	for v := 100.0; v <= 1500; v += 100 {
		metric = append(metric, v)
		if v <= 800 {
			lat = append(lat, 500)
		} else {
			lat = append(lat, 1500)
		}
	}
	up, down, err := RefineThresholds(metric, lat, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if up < 600 || up > 700 {
		t.Errorf("up = %g, want ~640 (80%% of 800, the early-trigger margin)", up)
	}
	if down >= up || down <= 0 {
		t.Errorf("down = %g vs up %g", down, up)
	}
	if _, _, err := RefineThresholds(nil, nil, 1000); err == nil {
		t.Error("expected error for empty calibration")
	}
	// SLA never held: falls back to the minimum.
	up, _, err = RefineThresholds([]float64{500, 300, 400}, []float64{2000, 2000, 2000}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if up > 300 {
		t.Errorf("fallback up = %g, want <= min observed 300", up)
	}
}
