// Package autoscale implements the paper's first case study (§4.1, §6.2):
// an orchestration engine that turns Sieve's dependency graph into
// threshold-based scaling rules. The engine plays the role of Kapacitor
// in the paper's deployment — it streams metric values each tick,
// evaluates rule conditions, and issues scale in/out actions of a single
// instance against the running application, subject to per-component
// cooldowns and instance bounds. Two policy builders are provided: the
// traditional per-component CPU rule (the Amazon-AWS-style baseline of
// Table 4) and the Sieve rule driven by the metric that appears most
// often in Granger relations.
package autoscale

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/metrics"
	"github.com/sieve-microservices/sieve/internal/timeseries"
)

// Rule is one threshold-based scaling rule: when the guiding metric
// crosses UpThreshold the target component gains one instance; below
// DownThreshold it loses one.
type Rule struct {
	// Target is the component whose instance count the rule adjusts.
	Target string
	// MetricComponent and Metric identify the guiding metric.
	MetricComponent, Metric string
	// UpThreshold and DownThreshold bound the metric's comfort band.
	UpThreshold, DownThreshold float64
	// MinInstances and MaxInstances clamp the actions (defaults 1, 10).
	MinInstances, MaxInstances int
}

func (r Rule) validate() error {
	if r.Target == "" || r.Metric == "" || r.MetricComponent == "" {
		return fmt.Errorf("autoscale: incomplete rule %+v", r)
	}
	if r.DownThreshold >= r.UpThreshold {
		return fmt.Errorf("autoscale: rule for %s has inverted thresholds (%g >= %g)",
			r.Target, r.DownThreshold, r.UpThreshold)
	}
	return nil
}

// Action records one executed scaling decision.
type Action struct {
	// TimeMS is the simulation time of the action.
	TimeMS int64
	// Component is the scaled target.
	Component string
	// Delta is +1 (scale out) or -1 (scale in).
	Delta int
	// Instances is the resulting instance count.
	Instances int
}

// probeSmoothing is the EWMA coefficient applied to probe readings.
// Rule engines evaluate windowed streams rather than raw samples
// (Kapacitor's window/mean nodes); smoothing prevents sample noise from
// ping-ponging the scaling decisions.
const probeSmoothing = 0.25

// Probe reads one metric as an instantaneous signal: gauges are read
// directly, counters are converted to per-read deltas (Kapacitor's
// derivative node), and readings are EWMA-smoothed. Unregistered metrics
// read as 0 until they appear.
type Probe struct {
	reg     *metrics.Registry
	metric  string
	last    float64
	seen    bool
	ewma    float64
	started bool
}

// NewProbe creates a probe for component registry reg and metric name.
func NewProbe(reg *metrics.Registry, metric string) *Probe {
	return &Probe{reg: reg, metric: metric}
}

// Value returns the current smoothed value.
func (p *Probe) Value() float64 {
	v, kind, ok := p.reg.Read(p.metric)
	if !ok {
		return 0
	}
	if kind == metrics.KindCounter {
		if !p.seen {
			p.seen = true
			p.last = v
			v = 0
		} else {
			v, p.last = v-p.last, v
		}
	}
	if !p.started {
		p.started = true
		p.ewma = v
	} else {
		p.ewma = probeSmoothing*v + (1-probeSmoothing)*p.ewma
	}
	return p.ewma
}

// Engine evaluates rules against a running application.
type Engine struct {
	app           *app.App
	rules         []Rule
	probes        []*Probe
	cooldownTicks int
	budget        int
	tick          int
	lastAction    map[string]int
	actions       []Action
}

// SetInstanceBudget caps the total instance count across all rule
// targets, modelling a fixed-capacity testbed (the paper ran on 12 VMs).
// Scale-ups that would exceed the budget are denied. 0 removes the cap.
func (e *Engine) SetInstanceBudget(total int) {
	e.budget = total
}

// totalInstances sums the instance counts of the distinct rule targets.
func (e *Engine) totalInstances() int {
	seen := map[string]bool{}
	total := 0
	for _, r := range e.rules {
		if seen[r.Target] {
			continue
		}
		seen[r.Target] = true
		total += e.app.Instances(r.Target)
	}
	return total
}

// NewEngine creates an engine with the given rules. cooldownTicks is the
// minimum number of ticks between consecutive actions on one component
// (0 means every tick is eligible).
func NewEngine(a *app.App, rules []Rule, cooldownTicks int) (*Engine, error) {
	if a == nil {
		return nil, errors.New("autoscale: nil app")
	}
	if len(rules) == 0 {
		return nil, errors.New("autoscale: no rules")
	}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		if a.Registry(r.Target) == nil {
			return nil, fmt.Errorf("autoscale: unknown target component %q", r.Target)
		}
		if a.Registry(r.MetricComponent) == nil {
			return nil, fmt.Errorf("autoscale: unknown metric component %q", r.MetricComponent)
		}
	}
	probes := make([]*Probe, len(rules))
	for i, r := range rules {
		probes[i] = NewProbe(a.Registry(r.MetricComponent), r.Metric)
	}
	return &Engine{
		app:           a,
		rules:         rules,
		probes:        probes,
		cooldownTicks: cooldownTicks,
		lastAction:    map[string]int{},
	}, nil
}

// Step evaluates every rule once; call it after each simulation tick.
func (e *Engine) Step() {
	e.tick++
	for i, r := range e.rules {
		v := e.probes[i].Value()

		var delta int
		switch {
		case v > r.UpThreshold:
			delta = 1
		case v < r.DownThreshold:
			delta = -1
		default:
			continue
		}

		cooldown := e.cooldownTicks
		if delta < 0 {
			cooldown *= scaleInCooldownFactor
		}
		if last, ok := e.lastAction[r.Target]; ok && e.tick-last <= cooldown {
			continue
		}
		cur := e.app.Instances(r.Target)
		next := cur + delta
		min, max := r.MinInstances, r.MaxInstances
		if min <= 0 {
			min = 1
		}
		if max <= 0 {
			max = 10
		}
		if next < min || next > max || next == cur {
			continue
		}
		if delta > 0 && e.budget > 0 && e.totalInstances()+1 > e.budget {
			continue // testbed capacity exhausted
		}
		if err := e.app.Scale(r.Target, next); err != nil {
			continue
		}
		e.lastAction[r.Target] = e.tick
		e.actions = append(e.actions, Action{
			TimeMS:    e.app.Now(),
			Component: r.Target,
			Delta:     delta,
			Instances: next,
		})
	}
}

// Actions returns the executed actions in order.
func (e *Engine) Actions() []Action {
	out := make([]Action, len(e.actions))
	copy(out, e.actions)
	return out
}

// CPUPolicy builds the traditional baseline: one rule per component
// guided by its own cpu_usage gauge, as cloud providers' default
// autoscalers do (§6.2 uses 21%/1% as the refined thresholds).
func CPUPolicy(components []string, up, down float64, maxInstances int) []Rule {
	rules := make([]Rule, 0, len(components))
	for _, c := range components {
		rules = append(rules, Rule{
			Target:          c,
			MetricComponent: c,
			Metric:          "cpu_usage",
			UpThreshold:     up,
			DownThreshold:   down,
			MaxInstances:    maxInstances,
		})
	}
	return rules
}

// maxSieveTargets bounds how many components a Sieve policy scales: the
// guiding metric's own component plus its strongest-related neighbours.
// Scaling every transitively-related component multiplies action churn
// without improving the SLA (each trigger issues one action per target).
const maxSieveTargets = 8

// scaleInCooldownFactor stretches the cooldown for scale-in actions:
// capacity is added quickly but removed conservatively, the standard
// autoscaler asymmetry that prevents decay churn after load spikes.
const scaleInCooldownFactor = 12

// SievePolicy builds rules from a pipeline artifact: the guiding metric
// is the one appearing most often in Granger relations, and the scaled
// targets are the components most strongly related to it (by relation
// count, capped at maxSieveTargets). The paper's refined ShareLatex
// thresholds are 1400 ms (up) and 1120 ms (down) on web's
// http-requests_Project_id_GET_mean.
func SievePolicy(art *core.Artifact, up, down float64, maxInstances int) ([]Rule, string, error) {
	if art == nil || art.Graph == nil {
		return nil, "", errors.New("autoscale: artifact without dependency graph")
	}
	key, n := art.Graph.MostFrequentMetric()
	if n == 0 {
		return nil, "", errors.New("autoscale: dependency graph has no relations")
	}
	slash := strings.IndexByte(key, '/')
	metricComp, metric := key[:slash], key[slash+1:]

	// Targets are the components the dependency graph connects to the
	// guiding metric's component (§4.1: the graph tells the developer
	// which components react together), ranked by relation strength. The
	// component's direct callees from the step-1 call graph are merged
	// in: a dependency whose metric relation was filtered as confounded
	// is still on the request path.
	related := map[string]int{}
	for _, e := range art.Graph.Edges {
		if e.From == metricComp || e.To == metricComp {
			related[e.From]++
			related[e.To]++
		}
	}
	if art.Dataset != nil && art.Dataset.CallGraph != nil {
		for _, callee := range art.Dataset.CallGraph.Callees(metricComp) {
			related[callee]++
		}
	}
	delete(related, metricComp)
	neighbours := make([]string, 0, len(related))
	for t := range related {
		neighbours = append(neighbours, t)
	}
	sort.Slice(neighbours, func(i, j int) bool {
		if related[neighbours[i]] != related[neighbours[j]] {
			return related[neighbours[i]] > related[neighbours[j]]
		}
		return neighbours[i] < neighbours[j]
	})
	if len(neighbours) > maxSieveTargets-1 {
		neighbours = neighbours[:maxSieveTargets-1]
	}
	names := append([]string{metricComp}, neighbours...)
	sort.Strings(names)

	rules := make([]Rule, 0, len(names))
	for _, t := range names {
		rules = append(rules, Rule{
			Target:          t,
			MetricComponent: metricComp,
			Metric:          metric,
			UpThreshold:     up,
			DownThreshold:   down,
			MaxInstances:    maxInstances,
		})
	}
	return rules, key, nil
}

// SLATracker counts violations of a latency SLA of the paper's form:
// "the 90th percentile of request latencies stays below thresholdMS".
// Observations are aggregated into windows; each completed window
// contributes one sample (the paper evaluates 1400 samples over the
// one-hour trace).
type SLATracker struct {
	thresholdMS float64
	windowSize  int
	buf         []float64
	samples     int
	violations  int
}

// NewSLATracker creates a tracker; windowSize is the number of
// observations per sample (>= 1).
func NewSLATracker(thresholdMS float64, windowSize int) *SLATracker {
	if windowSize < 1 {
		windowSize = 1
	}
	return &SLATracker{thresholdMS: thresholdMS, windowSize: windowSize}
}

// Observe records one end-to-end latency observation.
func (s *SLATracker) Observe(latencyMS float64) {
	s.buf = append(s.buf, latencyMS)
	if len(s.buf) < s.windowSize {
		return
	}
	p90 := timeseries.Percentile(s.buf, 90)
	s.samples++
	if p90 > s.thresholdMS {
		s.violations++
	}
	s.buf = s.buf[:0]
}

// Samples returns the number of completed SLA samples.
func (s *SLATracker) Samples() int { return s.samples }

// Violations returns the number of samples that broke the SLA.
func (s *SLATracker) Violations() int { return s.violations }

// RefineThresholds searches for up/down thresholds on a guiding metric
// from a short calibration trace of (metric value, latency) pairs, the
// paper's iterative refinement against the SLA (§4.1 step 3): up is set
// near the largest metric value that still kept latency within the SLA,
// down at a fixed fraction below.
func RefineThresholds(metricValues, latencies []float64, slaMS float64) (up, down float64, err error) {
	if len(metricValues) == 0 || len(metricValues) != len(latencies) {
		return 0, 0, fmt.Errorf("autoscale: calibration needs equal non-empty traces, got %d and %d",
			len(metricValues), len(latencies))
	}
	// Largest metric value observed while the SLA still held.
	best := 0.0
	any := false
	for i, v := range metricValues {
		if latencies[i] <= slaMS && v > best {
			best, any = v, true
		}
	}
	if !any {
		// The SLA never held; fall back to the smallest observed value so
		// the engine scales out aggressively.
		best, _ = timeseries.MinMax(metricValues)
	}
	// Scale out well before the SLA boundary: reactive scaling needs the
	// ramp time of several cooldown periods, so the trigger sits at 80%
	// of the last-safe signal level (the paper refined iteratively until
	// the SLA held; this is the one-shot equivalent).
	up = best * 0.8
	down = up * 0.8
	if down >= up {
		down = up * 0.5
	}
	return up, down, nil
}
