package autoscale

import (
	"testing"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/metrics"
)

func TestProbeGaugeSmoothsReadings(t *testing.T) {
	reg := metrics.NewRegistry("c")
	g := reg.Gauge("m")
	p := NewProbe(reg, "m")

	g.Set(100)
	first := p.Value()
	if first != 100 {
		t.Fatalf("first read = %g, want seeded EWMA 100", first)
	}
	// A spike must be damped by the EWMA.
	g.Set(200)
	second := p.Value()
	if second <= 100 || second >= 200 {
		t.Fatalf("smoothed read = %g, want strictly between 100 and 200", second)
	}
	want := probeSmoothing*200 + (1-probeSmoothing)*100
	if second != want {
		t.Errorf("smoothed read = %g, want %g", second, want)
	}
}

func TestProbeCounterYieldsDeltas(t *testing.T) {
	reg := metrics.NewRegistry("c")
	cnt := reg.Counter("hits_total")
	p := NewProbe(reg, "hits_total")

	cnt.Inc(50)
	if v := p.Value(); v != 0 {
		t.Fatalf("first counter read = %g, want 0 (no baseline yet)", v)
	}
	cnt.Inc(30)
	v := p.Value()
	if v <= 0 || v > 30 {
		t.Fatalf("delta read = %g, want smoothed positive delta <= 30", v)
	}
}

func TestProbeUnknownMetricReadsZero(t *testing.T) {
	reg := metrics.NewRegistry("c")
	p := NewProbe(reg, "ghost")
	if v := p.Value(); v != 0 {
		t.Errorf("unknown metric read = %g, want 0", v)
	}
}

func TestEngineInstanceBudget(t *testing.T) {
	a, err := app.New(scalableSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rules := CPUPolicy([]string{"api", "lb"}, 5, 1, 10) // trigger-happy
	eng, err := NewEngine(a, rules, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetInstanceBudget(4)
	for i := 0; i < 50; i++ {
		a.Step(450) // overload both components
		eng.Step()
	}
	total := a.Instances("api") + a.Instances("lb")
	if total > 4 {
		t.Fatalf("total instances = %d, exceeds budget 4", total)
	}
	if total < 3 {
		t.Errorf("total instances = %d, budget barely used", total)
	}
}

func TestEngineScaleInIsSlowerThanScaleOut(t *testing.T) {
	a, err := app.New(scalableSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rules := []Rule{{
		Target: "api", MetricComponent: "api", Metric: "cpu_usage",
		UpThreshold: 50, DownThreshold: 5, MaxInstances: 10,
	}}
	eng, err := NewEngine(a, rules, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Overload: scale out at the base cooldown cadence.
	for i := 0; i < 40; i++ {
		a.Step(400)
		eng.Step()
	}
	peak := a.Instances("api")
	if peak < 3 {
		t.Fatalf("scale-out too slow: %d instances", peak)
	}
	outActions := len(eng.Actions())

	// Idle: scale-in must be much slower (scaleInCooldownFactor).
	for i := 0; i < 40; i++ {
		a.Step(0.1)
		eng.Step()
	}
	inActions := len(eng.Actions()) - outActions
	if inActions >= outActions {
		t.Errorf("scale-in issued %d actions vs %d scale-outs in the same window; want damped", inActions, outActions)
	}
}
