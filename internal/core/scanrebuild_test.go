package core

import (
	"fmt"
	"math"
	"testing"

	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// queryOnlyStore hides the streaming scan, forcing consumers down the
// materializing QueryMatch path for equivalence comparisons.
type queryOnlyStore struct {
	tsdb.ReadStore
	tsdb.RangeQuerier
}

func scanEquivStore(t *testing.T, points int) *tsdb.DB {
	t.Helper()
	db := tsdb.New()
	var samples []tsdb.Sample
	for c := 0; c < 3; c++ {
		for m := 0; m < 3; m++ {
			for i := 0; i < points; i++ {
				v := math.Cos(float64(i)/7) * float64(c+m+1)
				if i%89 == 0 {
					v = math.NaN()
				}
				samples = append(samples, tsdb.Sample{
					Component: fmt.Sprintf("svc%d", c),
					Metric:    fmt.Sprintf("metric%d", m),
					T:         int64(i) * 50,
					V:         v,
				})
			}
		}
	}
	if err := db.WriteSamples(samples, 0); err != nil {
		t.Fatal(err)
	}
	db.Flush()
	return db
}

func requireSameDataset(t *testing.T, got, want *Dataset) {
	t.Helper()
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%d components, want %d", len(got.Series), len(want.Series))
	}
	for comp, metrics := range want.Series {
		if len(got.Series[comp]) != len(metrics) {
			t.Fatalf("component %q has %d metrics, want %d", comp, len(got.Series[comp]), len(metrics))
		}
		for met, reg := range metrics {
			g := got.Series[comp][met]
			if g == nil {
				t.Fatalf("missing series %s/%s", comp, met)
			}
			if g.Start != reg.Start || g.StepMS != reg.StepMS || len(g.Values) != len(reg.Values) {
				t.Fatalf("series %s/%s grid differs: %+v vs %+v", comp, met, g, reg)
			}
			for i := range reg.Values {
				if math.Float64bits(g.Values[i]) != math.Float64bits(reg.Values[i]) {
					t.Fatalf("series %s/%s value %d = %v, want %v (must be bit-identical)",
						comp, met, i, g.Values[i], reg.Values[i])
				}
			}
		}
	}
}

// TestScanMatchRebuildMatchesQueryMatch pins the streaming decode paths
// bit-for-bit against the materializing ones: a WindowCache full rebuild
// and a DatasetFromDB assembly through ScanMatch must equal the same
// operations through QueryMatch, including incremental tail advances.
func TestScanMatchRebuildMatchesQueryMatch(t *testing.T) {
	const stepMS, points = 500, 700
	db := scanEquivStore(t, points)
	qo := queryOnlyStore{ReadStore: db, RangeQuerier: db}
	windowEnd := int64(points) * 50
	start, mid := int64(0), windowEnd-10*stepMS

	// Full-window dataset assembly.
	wantDS, err := DatasetFromDB(qo, "app", stepMS, start, windowEnd)
	if err != nil {
		t.Fatal(err)
	}
	gotDS, err := DatasetFromDB(db, "app", stepMS, start, windowEnd)
	if err != nil {
		t.Fatal(err)
	}
	requireSameDataset(t, gotDS, wantDS)

	// WindowCache: full rebuild, then an incremental tail advance, both
	// compared against the query-only cache at every step.
	scanCache := NewWindowCache("app", stepMS)
	queryCache := NewWindowCache("app", stepMS)

	width := mid - start
	gotWin, gotStats, err := scanCache.Advance(db, start, mid)
	if err != nil {
		t.Fatal(err)
	}
	wantWin, wantStats, err := queryCache.Advance(qo, start, mid)
	if err != nil {
		t.Fatal(err)
	}
	if !gotStats.FullRebuild || !wantStats.FullRebuild {
		t.Fatalf("first advance was not a full rebuild: %+v vs %+v", gotStats, wantStats)
	}
	requireSameDataset(t, gotWin, wantWin)

	for slide := int64(1); slide <= 4; slide++ {
		s := start + slide*2*stepMS
		gotWin, gotStats, err = scanCache.Advance(db, s, s+width)
		if err != nil {
			t.Fatal(err)
		}
		wantWin, wantStats, err = queryCache.Advance(qo, s, s+width)
		if err != nil {
			t.Fatal(err)
		}
		if gotStats.FullRebuild || wantStats.FullRebuild {
			t.Fatalf("slide %d fell back to a full rebuild: %+v vs %+v", slide, gotStats, wantStats)
		}
		if gotStats.SeriesBorn != wantStats.SeriesBorn || gotStats.SeriesDied != wantStats.SeriesDied ||
			gotStats.CachedSeries != wantStats.CachedSeries {
			t.Fatalf("slide %d stats diverged: %+v vs %+v", slide, gotStats, wantStats)
		}
		requireSameDataset(t, gotWin, wantWin)
	}
}

// TestScanMatchRebuildAllocs pins the streaming full rebuild at zero
// per-point allocations: packing 8x the points into the SAME window on
// the SAME grid (denser sampling) must not change the rebuild's
// allocation count beyond noise — every per-rebuild allocation is per
// series or per grid bucket, never per decoded point.
func TestScanMatchRebuildAllocs(t *testing.T) {
	const stepMS, windowMS = 500, 30_000
	build := func(density int) *tsdb.DB {
		db := tsdb.New()
		var samples []tsdb.Sample
		points := int(windowMS) / 50 * density
		for c := 0; c < 3; c++ {
			for m := 0; m < 3; m++ {
				for i := 0; i < points; i++ {
					samples = append(samples, tsdb.Sample{
						Component: fmt.Sprintf("svc%d", c),
						Metric:    fmt.Sprintf("metric%d", m),
						T:         int64(i) * 50 / int64(density),
						V:         math.Cos(float64(i) / 7),
					})
				}
			}
		}
		if err := db.WriteSamples(samples, 0); err != nil {
			t.Fatal(err)
		}
		db.Flush()
		return db
	}
	measure := func(db *tsdb.DB) float64 {
		c := NewWindowCache("app", stepMS)
		if _, _, err := c.Advance(db, 0, windowMS); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			c.Invalidate()
			if _, _, err := c.Advance(db, 0, windowMS); err != nil {
				t.Fatal(err)
			}
		})
	}
	a1 := measure(build(1))
	a2 := measure(build(8))
	if a2 > a1+8 {
		t.Fatalf("streaming rebuild allocations grew with point count: %v -> %v allocs/op", a1, a2)
	}
}
