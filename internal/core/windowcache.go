package core

import (
	"fmt"
	"math"
	"strings"

	"github.com/sieve-microservices/sieve/internal/timeseries"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// WindowCache assembles sliding-window Datasets incrementally: instead of
// re-querying and re-bucketing the whole window every cycle, it keeps a
// ring buffer of per-series bucket state (sum and observation count per
// grid slot) and, when the window slides forward on the same grid, issues
// ONE matcher query for just the new tail [prevEnd, newEnd), rolls every
// ring forward, and evicts the expired head buckets.
//
// Equivalence contract: the Dataset returned by Advance is bit-identical
// to DatasetFromDB over the same window, provided no point inside the
// already-cached region was written after that region was queried
// (append-mostly ingest). Each bucket's sum accumulates its points in
// store order across tail queries — the same order a single full-window
// query would deliver them — and the gap fill runs from scratch on the
// assembled buckets every cycle, so sliding the window cannot perturb a
// single bit relative to batch assembly. Late writes that land behind the
// cached frontier are invisible until Invalidate (or the server's
// -full-recompute-every) forces a full rebuild.
//
// Incremental reuse requires the new window to stay on the cached grid:
// same step, same width, and a forward slide by a whole number of steps.
// Any other shape (first cycle, width change, backward jump, slide past
// the whole overlap, a store without matcher queries) falls back to the
// full-rebuild path, which is one whole-window query and repopulates the
// rings. A WindowCache is not safe for concurrent use; the online driver
// serializes cycles.
type WindowCache struct {
	appName string
	stepMS  int64

	valid      bool
	start, end int64
	buckets    int
	series     map[string]*seriesRing
}

// seriesRing is one series' bucket state over the current window: slot
// (head+i) % len holds window bucket i.
type seriesRing struct {
	component, metric string
	sums              []float64
	counts            []int
	head              int
}

// AdvanceStats reports what one Advance call did, for RunInfo and /stats.
type AdvanceStats struct {
	// FullRebuild is true when the whole window was re-queried;
	// RebuildReason says why ("" on an incremental advance).
	FullRebuild   bool   `json:"full_rebuild"`
	RebuildReason string `json:"rebuild_reason,omitempty"`
	// TailQueries and FullQueries count store matcher queries issued
	// (an incremental advance is exactly one tail query; an unchanged
	// window is zero).
	TailQueries int `json:"tail_queries"`
	FullQueries int `json:"full_queries"`
	// RolledBuckets is how many grid slots the window slid forward.
	RolledBuckets int `json:"rolled_buckets"`
	// SeriesBorn counts series that first appeared in the tail,
	// SeriesDied series whose last cached point expired out of the
	// window, CachedSeries the ring count after the advance.
	SeriesBorn   int `json:"series_born"`
	SeriesDied   int `json:"series_died"`
	CachedSeries int `json:"cached_series"`
}

// NewWindowCache creates an empty cache; the first Advance is always a
// full rebuild.
func NewWindowCache(appName string, stepMS int64) *WindowCache {
	return &WindowCache{appName: appName, stepMS: stepMS}
}

// Invalidate drops all cached state, forcing the next Advance down the
// full-rebuild path (used on restart and by the periodic full recompute).
func (c *WindowCache) Invalidate() {
	c.valid = false
	c.series = nil
}

// Advance slides the cache to the window [start, end) and returns the
// assembled Dataset (without a call graph), bit-identical to
// DatasetFromDB(db, ...) over the same window under the append-mostly
// contract documented on WindowCache.
func (c *WindowCache) Advance(db tsdb.ReadStore, start, end int64) (*Dataset, AdvanceStats, error) {
	var st AdvanceStats
	if c.stepMS <= 0 {
		return nil, st, fmt.Errorf("core: window cache has non-positive step %d", c.stepMS)
	}
	if end <= start {
		return nil, st, fmt.Errorf("core: empty capture window [%d,%d)", start, end)
	}
	rq, ok := db.(tsdb.RangeQuerier)
	if !ok {
		// No matcher queries: nothing to cache a tail from. Stay on the
		// plain batch path every cycle.
		st.FullRebuild, st.RebuildReason = true, "store lacks matcher queries"
		st.FullQueries = 1
		ds, err := DatasetFromDB(db, c.appName, c.stepMS, start, end)
		return ds, st, err
	}

	if reason := c.rollable(start, end); reason != "" {
		st.FullRebuild, st.RebuildReason = true, reason
		st.FullQueries = 1
		ds, err := c.rebuild(rq, start, end)
		st.CachedSeries = len(c.series)
		return ds, st, err
	}

	delta := start - c.start
	d := int(delta / c.stepMS)
	st.RolledBuckets = d
	if d > 0 {
		for _, r := range c.series {
			r.roll(d)
		}
		// One matcher query for the new tail only. [c.end, end) starts on
		// a bucket boundary of the new window (delta is a whole number of
		// steps and the width is unchanged), so every tail point lands in
		// one of the d freshly-zeroed slots — or tops up the last partial
		// bucket — in the same store order a full-window query would have
		// delivered it. Stores with a streaming scan decode straight into
		// the rings; others materialize the tail once through QueryMatch.
		st.TailQueries = 1
		if sc, ok := rq.(tsdb.SeriesScanner); ok {
			if err := c.scanTail(sc, start, end, &st); err != nil {
				c.Invalidate()
				return nil, st, fmt.Errorf("core: matcher scan over tail: %w", err)
			}
		} else {
			results, err := rq.QueryMatch("*", "*", c.end, end)
			if err != nil {
				c.Invalidate()
				return nil, st, fmt.Errorf("core: matcher query over tail: %w", err)
			}
			for _, res := range results {
				key := res.Component + "/" + res.Metric
				r := c.series[key]
				if r == nil {
					// Born: first points ever inside the window. Everything
					// this series has in [start, c.end) would already be
					// cached if it existed there, so an empty head is exact.
					r = newSeriesRing(res.Component, res.Metric, c.buckets)
					c.series[key] = r
					st.SeriesBorn++
				}
				r.add(res.Points, start, c.stepMS)
			}
		}
		// Death: every cached point expired and nothing arrived.
		for key, r := range c.series {
			if r.empty() {
				delete(c.series, key)
				st.SeriesDied++
			}
		}
	}
	c.start, c.end = start, end

	ds, err := c.assemble()
	st.CachedSeries = len(c.series)
	if err != nil {
		return nil, st, err
	}
	return ds, st, nil
}

// rollable reports whether the cached rings can slide to [start, end),
// returning "" when they can and the rebuild reason when they cannot.
func (c *WindowCache) rollable(start, end int64) string {
	switch {
	case !c.valid:
		return "first cycle"
	case end-start != c.end-c.start:
		return "window width changed"
	case start < c.start:
		return "window moved backwards"
	case (start-c.start)%c.stepMS != 0:
		return "window left the cached grid"
	case start >= c.end:
		return "window advanced past the cached overlap"
	}
	return ""
}

// rebuild reads the whole window once and repopulates the rings. Stores
// with a streaming scan (both local tsdb stores) decode chunks directly
// into the rings — no []Point or SeriesResult materializes between the
// store and the bucket state; others fall back to one QueryMatch.
func (c *WindowCache) rebuild(rq tsdb.RangeQuerier, start, end int64) (*Dataset, error) {
	c.valid = false
	c.start, c.end = start, end
	c.buckets = timeseries.GridBuckets(start, end, c.stepMS)
	c.series = map[string]*seriesRing{}

	if sc, ok := rq.(tsdb.SeriesScanner); ok {
		if err := c.rebuildScan(sc, start, end); err != nil {
			return nil, err
		}
	} else {
		results, err := rq.QueryMatch("*", "*", start, end)
		if err != nil {
			return nil, fmt.Errorf("core: matcher query over window: %w", err)
		}
		for _, res := range results {
			r := newSeriesRing(res.Component, res.Metric, c.buckets)
			r.add(res.Points, start, c.stepMS)
			if r.empty() {
				continue // every point was NaN: batch assembly skips it too
			}
			c.series[res.Component+"/"+res.Metric] = r
		}
	}
	ds, err := c.assemble()
	if err != nil {
		return nil, err
	}
	c.valid = true
	return ds, nil
}

// rebuildScan streams the whole window straight into freshly-created
// rings. Rings are created lazily on a series' first streamed point —
// different series may be visited concurrently, but slot i is written
// only by series i's (single) visiting goroutine, so the lazy creation
// is race-free. Accumulation order within a ring equals the QueryMatch
// path's: one series' points arrive in the same canonical storage order
// the raw query stably sorts, so the assembled buckets are bit-identical
// under the cache's append-mostly contract.
func (c *WindowCache) rebuildScan(sc tsdb.SeriesScanner, start, end int64) error {
	var (
		keys  []string
		rings []*seriesRing
	)
	err := sc.ScanMatch("*", "*", start, end, func(ks []string) {
		keys = ks
		rings = make([]*seriesRing, len(ks))
	}, func(i int, t int64, v float64) {
		r := rings[i]
		if r == nil {
			comp, met := splitStoreKey(keys[i])
			r = newSeriesRing(comp, met, c.buckets)
			rings[i] = r
		}
		r.addPoint(t, v, start, c.stepMS)
	})
	if err != nil {
		return fmt.Errorf("core: matcher scan over window: %w", err)
	}
	for _, r := range rings {
		if r == nil || r.empty() {
			continue // no points, or every point was NaN: batch skips it too
		}
		c.series[r.component+"/"+r.metric] = r
	}
	return nil
}

// scanTail streams the tail range [c.end, end) into the existing rings,
// creating rings for newborn series exactly as the QueryMatch tail path
// does. Tail timestamps all sit at or past c.end > start, so no point
// can land behind the cached frontier.
func (c *WindowCache) scanTail(sc tsdb.SeriesScanner, start, end int64, st *AdvanceStats) error {
	var (
		keys  []string
		rings []*seriesRing
		born  []bool
	)
	err := sc.ScanMatch("*", "*", c.end, end, func(ks []string) {
		keys = ks
		rings = make([]*seriesRing, len(ks))
		born = make([]bool, len(ks))
		for i, k := range ks {
			comp, met := splitStoreKey(k)
			rings[i] = c.series[comp+"/"+met]
		}
	}, func(i int, t int64, v float64) {
		r := rings[i]
		if r == nil {
			// Born: first points ever inside the window. Everything this
			// series has in [start, c.end) would already be cached if it
			// existed there, so an empty head is exact.
			comp, met := splitStoreKey(keys[i])
			r = newSeriesRing(comp, met, c.buckets)
			rings[i] = r
			born[i] = true
		}
		r.addPoint(t, v, start, c.stepMS)
	})
	if err != nil {
		return err
	}
	for i, b := range born {
		if b {
			c.series[rings[i].component+"/"+rings[i].metric] = rings[i]
			st.SeriesBorn++
		}
	}
	return nil
}

// assemble builds the Dataset for the current window from the rings. The
// per-series grid goes through the same timeseries.FromBuckets call as
// Resample, so reconstruction of empty buckets is identical to batch.
func (c *WindowCache) assemble() (*Dataset, error) {
	ds := &Dataset{
		App:    c.appName,
		StepMS: c.stepMS,
		Start:  c.start,
		End:    c.end,
		Series: map[string]map[string]*timeseries.Regular{},
	}
	sums := make([]float64, c.buckets)
	counts := make([]int, c.buckets)
	for _, r := range c.series {
		r.snapshot(sums, counts)
		reg, err := timeseries.FromBuckets(r.metric, c.start, c.stepMS, sums, counts)
		if err != nil {
			continue // no usable points in the window: skipped, not fatal
		}
		if ds.Series[r.component] == nil {
			ds.Series[r.component] = map[string]*timeseries.Regular{}
		}
		ds.Series[r.component][r.metric] = reg
	}
	if len(ds.Series) == 0 {
		return nil, ErrNoSeries
	}
	return ds, nil
}

func newSeriesRing(component, metric string, buckets int) *seriesRing {
	return &seriesRing{
		component: component,
		metric:    metric,
		sums:      make([]float64, buckets),
		counts:    make([]int, buckets),
	}
}

// roll slides the ring forward by d buckets: the head advances and the d
// slots that now form the window's tail are zeroed.
func (r *seriesRing) roll(d int) {
	n := len(r.sums)
	if d >= n {
		d = n
	}
	for i := 0; i < d; i++ {
		slot := (r.head + i) % n
		r.sums[slot], r.counts[slot] = 0, 0
	}
	r.head = (r.head + d) % n
}

// add buckets raw points into the ring in delivery order.
func (r *seriesRing) add(pts []tsdb.Point, start, stepMS int64) {
	for _, p := range pts {
		r.addPoint(p.T, p.V, start, stepMS)
	}
}

// addPoint buckets one raw point into the ring, mirroring Resample's
// accumulation exactly (NaN and out-of-window points skipped, sum += in
// delivery order). The t < start guard must precede the index
// computation: truncation-toward-zero division would otherwise map
// (start-stepMS, start) onto bucket 0.
func (r *seriesRing) addPoint(t int64, v float64, start, stepMS int64) {
	if t < start || math.IsNaN(v) {
		return
	}
	i := int((t - start) / stepMS)
	n := len(r.sums)
	if i >= n {
		return
	}
	slot := (r.head + i) % n
	r.sums[slot] += v
	r.counts[slot]++
}

// empty reports whether no bucket holds an observation.
func (r *seriesRing) empty() bool {
	for _, c := range r.counts {
		if c > 0 {
			return false
		}
	}
	return true
}

// snapshot copies the ring into window order (bucket 0 first).
func (r *seriesRing) snapshot(sums []float64, counts []int) {
	n := len(r.sums)
	for i := 0; i < n; i++ {
		slot := (r.head + i) % n
		sums[i], counts[i] = r.sums[slot], r.counts[slot]
	}
}

// Window returns the currently cached window ([0,0) before the first
// successful Advance).
func (c *WindowCache) Window() (start, end int64) {
	if !c.valid {
		return 0, 0
	}
	return c.start, c.end
}

// AlignWindowEnd returns the exclusive end of the last grid step fully
// completed by maxTime — i.e. aligned DOWN, so a point at a
// grid-aligned maxTime itself sits just past the returned end and only
// enters the window once its step completes. The online driver uses it
// so consecutive incremental windows slide by whole steps. It returns 0
// when not even one full step has completed.
func AlignWindowEnd(maxTime, stepMS int64) int64 {
	if stepMS <= 0 {
		return maxTime + 1
	}
	return (maxTime + 1) / stepMS * stepMS
}

// seriesKeyParts splits a "component/metric" key (helper shared with the
// legacy dataset path).
func seriesKeyParts(key string) (component, metric string, ok bool) {
	slash := strings.IndexByte(key, '/')
	if slash < 0 {
		return "", "", false
	}
	return key[:slash], key[slash+1:], true
}

// splitStoreKey splits a series key the way the tsdb query engine does:
// at the first slash, or (component, "") when there is none — so keys
// streamed by ScanMatch resolve to the same component/metric pair
// QueryMatch results carry.
func splitStoreKey(key string) (component, metric string) {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i], key[i+1:]
	}
	return key, ""
}
