package core

import (
	"strings"
	"testing"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/loadgen"
)

// chainSpec is a three-tier app (lb -> api -> db) with clusterable metric
// families, constants for the variance filter, and counters for the
// stationarity path.
func chainSpec() app.Spec {
	return app.Spec{
		Name:   "chain",
		TickMS: 500,
		Components: []app.ComponentSpec{
			{
				Name: "lb", Addr: "10.9.0.1:80", ServiceMS: 1, CapacityPerInstance: 2000,
				Entry: true, Calls: []app.Call{{Target: "api", Prob: 1}},
				Families: []app.Family{
					{Base: "lb_rate", Driver: app.DriverRate, Noise: 0.03, Variants: []string{"mean", "p95", "max"}},
					{Base: "lb_latency_ms", Driver: app.DriverLatency, Noise: 0.03, Variants: []string{"mean", "p99"}},
					{Base: "lb_bytes_total", Driver: app.DriverRate, Scale: 100, Counter: true},
				},
				Constants: map[string]float64{"lb_version": 2, "lb_limit": 100},
			},
			{
				Name: "api", Addr: "10.9.0.2:8080", ServiceMS: 12, CapacityPerInstance: 400,
				Calls: []app.Call{{Target: "db", Prob: 0.8}},
				Families: []app.Family{
					{Base: "api_rate", Driver: app.DriverRate, Noise: 0.03, Variants: []string{"mean", "p95"}},
					{Base: "api_latency_ms", Driver: app.DriverLatency, Noise: 0.03, Variants: []string{"mean", "p95", "p99"}},
					{Base: "api_mem_mb", Driver: app.DriverMemory, Noise: 0.02},
				},
				Constants: map[string]float64{"api_version": 3},
			},
			{
				Name: "db", Addr: "10.9.0.3:5432", ServiceMS: 5, CapacityPerInstance: 1500,
				Families: []app.Family{
					{Base: "db_rate", Driver: app.DriverRate, Noise: 0.03, Variants: []string{"mean", "p95"}},
					{Base: "db_latency_ms", Driver: app.DriverOwnLatency, Noise: 0.03},
				},
				Constants: map[string]float64{"db_version": 1},
			},
		},
	}
}

func captureChain(t *testing.T, ticks int) (*CaptureResult, *app.App) {
	t.Helper()
	a, err := app.New(chainSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Capture(a, loadgen.Random(5, ticks, 100, 1500), CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res, a
}

func TestCaptureProducesDatasetAndCallGraph(t *testing.T) {
	res, a := captureChain(t, 120)
	ds := res.Dataset
	if got := ds.Components(); len(got) != 3 {
		t.Fatalf("components = %v", got)
	}
	if ds.StepMS != a.TickMS() || ds.Start != 0 || ds.End != a.Now() {
		t.Errorf("window = [%d,%d) step %d", ds.Start, ds.End, ds.StepMS)
	}
	// All metrics captured: lb has 3+2+1 family metrics + 2 constants.
	if got := len(ds.MetricNames("lb")); got != 8 {
		t.Errorf("lb metrics = %d (%v), want 8", got, ds.MetricNames("lb"))
	}
	if ds.TotalMetrics() != 8+7+4 {
		t.Errorf("total metrics = %d, want 19", ds.TotalMetrics())
	}
	if !ds.CallGraph.HasEdge("lb", "api") || !ds.CallGraph.HasEdge("api", "db") {
		t.Error("call graph incomplete")
	}
	// Every series spans the full grid.
	s := ds.Get("api", "api_latency_ms_mean")
	if s == nil || s.Len() != 120 {
		t.Fatalf("api latency series = %+v", s)
	}
	if res.DB.Stats().Points == 0 || res.Collector.Stats().Scrapes != 120 {
		t.Error("monitoring accounting missing")
	}
}

func TestCaptureEmptyPattern(t *testing.T) {
	a, err := app.New(chainSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Capture(a, nil, CaptureOptions{}); err == nil {
		t.Error("expected error for empty pattern")
	}
}

func TestReduceFiltersConstantsAndClustersVariants(t *testing.T) {
	res, _ := captureChain(t, 150)
	red, err := Reduce(res.Dataset, DefaultReduceOptions())
	if err != nil {
		t.Fatal(err)
	}
	lb := red["lb"]
	if lb == nil {
		t.Fatal("no reduction for lb")
	}
	if lb.Total != 8 {
		t.Errorf("lb total = %d, want 8", lb.Total)
	}
	// Both constants must be filtered.
	if !containsStr(lb.Filtered, "lb_version") || !containsStr(lb.Filtered, "lb_limit") {
		t.Errorf("filtered = %v, want constants removed", lb.Filtered)
	}
	// The rate variants share a driver; they must land in one cluster.
	api := red["api"]
	if api.Assignments["api_rate_mean"] != api.Assignments["api_rate_p95"] {
		t.Errorf("rate variants split: %v", api.Assignments)
	}
	// Representatives are cluster members.
	for _, c := range api.Clusters {
		if !containsStr(c.Metrics, c.Representative) {
			t.Errorf("representative %q not in cluster %v", c.Representative, c.Metrics)
		}
	}
	// Reduction must be substantial: 19 metrics -> at most ~12 reps.
	if red.TotalAfter() >= red.TotalBefore() {
		t.Errorf("no reduction: %d -> %d", red.TotalBefore(), red.TotalAfter())
	}
	// Allowlist keys are well-formed.
	for _, k := range red.AllowlistKeys() {
		if !strings.Contains(k, "/") {
			t.Errorf("malformed allowlist key %q", k)
		}
	}
}

func TestIdentifyDependenciesFindsChain(t *testing.T) {
	res, _ := captureChain(t, 200)
	red, err := Reduce(res.Dataset, DefaultReduceOptions())
	if err != nil {
		t.Fatal(err)
	}
	graph, err := IdentifyDependencies(res.Dataset, red, DepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if graph.Tested == 0 {
		t.Fatal("no pairs tested")
	}
	if len(graph.Edges) == 0 {
		t.Fatal("no dependencies found on a causal chain")
	}
	// Edges must only connect communicating components.
	validPairs := map[[2]string]bool{
		{"lb", "api"}: true, {"api", "lb"}: true,
		{"api", "db"}: true, {"db", "api"}: true,
	}
	for _, e := range graph.Edges {
		if !validPairs[[2]string{e.From, e.To}] {
			t.Errorf("edge between non-communicating pair: %+v", e)
		}
		if e.PValue < 0 || e.PValue >= 0.05 {
			t.Errorf("edge with invalid p-value: %+v", e)
		}
		if e.LagMS <= 0 {
			t.Errorf("edge with non-positive lag: %+v", e)
		}
	}
	// Both communicating pairs must be connected by at least one edge in
	// some direction. (Latency dependencies legitimately point upstream:
	// the callee's lagged latency predicts the caller's end-to-end
	// latency. Rate metrics are often bidirectionally confounded by the
	// shared external load and filtered.)
	pairs := graph.ComponentPairs()
	connected := map[[2]string]bool{}
	for _, p := range pairs {
		a, b := p[0], p[1]
		if a > b {
			a, b = b, a
		}
		connected[[2]string{a, b}] = true
	}
	if !connected[[2]string{"api", "lb"}] {
		t.Errorf("lb/api pair unconnected; edges: %+v", graph.Edges)
	}
	if !connected[[2]string{"api", "db"}] {
		t.Errorf("api/db pair unconnected; edges: %+v", graph.Edges)
	}
	// Most-frequent metric must be set and well-formed.
	key, n := graph.MostFrequentMetric()
	if key == "" || n == 0 || !strings.Contains(key, "/") {
		t.Errorf("most frequent metric = %q (%d)", key, n)
	}
	// DOT output is renderable.
	if dot := graph.DOT(); !strings.Contains(dot, "digraph dependencies") {
		t.Errorf("DOT = %q", dot)
	}
}

func TestIdentifyDependenciesRequiresCallGraph(t *testing.T) {
	res, _ := captureChain(t, 100)
	res.Dataset.CallGraph = nil
	red, err := Reduce(res.Dataset, DefaultReduceOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IdentifyDependencies(res.Dataset, red, DepOptions{}); err == nil {
		t.Error("expected error without call graph")
	}
}

func TestRunFullPipeline(t *testing.T) {
	a, err := app.New(chainSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	art, capture, err := Run(a, loadgen.Random(9, 200, 100, 1500), PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if art.App != "chain" || art.Dataset == nil || art.Reduction == nil || art.Graph == nil {
		t.Fatalf("incomplete artifact: %+v", art)
	}
	if capture.DB == nil {
		t.Error("capture handles missing")
	}
	if len(art.Graph.Edges) == 0 {
		t.Error("pipeline found no dependencies")
	}
}

func TestCaptureWithAllowlist(t *testing.T) {
	a, err := app.New(chainSpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Capture(a, loadgen.Constant(200, 50), CaptureOptions{
		Allowlist: []string{"lb/lb_rate_mean", "api/api_latency_ms_mean"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Dataset.TotalMetrics(); got != 2 {
		t.Errorf("allowlisted capture has %d series, want 2", got)
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
