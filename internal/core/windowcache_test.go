package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// legacyStore hides the matcher surface, leaving only the plain
// ReadStore interface. (countingStore, shared with the dataset matcher
// tests, records matcher calls and their ranges.)
type legacyStore struct{ inner tsdb.Store }

func (l *legacyStore) Query(component, metric string, from, to int64) ([]tsdb.Point, error) {
	return l.inner.Query(component, metric, from, to)
}
func (l *legacyStore) SeriesKeys() []string { return l.inner.SeriesKeys() }

// writeWindowFixture ingests a deterministic multi-series stream into
// the store, in time order, covering [0, upToMS): dense and sparse
// series (sparse buckets exercise the spline gap fill), a series born
// mid-stream, one that dies, and an occasional NaN sample (skipped by
// resampling).
func writeWindowFixture(t *testing.T, db tsdb.Store, fromMS, upToMS int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var samples []tsdb.Sample
	for ts := fromMS; ts < upToMS; ts += 250 {
		f := float64(ts)
		samples = append(samples,
			tsdb.Sample{Component: "web", Metric: "req_rate", T: ts, V: 100 + 40*math.Sin(f/3000) + rng.Float64()},
			tsdb.Sample{Component: "db", Metric: "queries", T: ts, V: 60 + 25*math.Sin((f-500)/3000) + rng.Float64()},
		)
		if ts%1500 == 0 { // sparse: known buckets with gaps in between
			samples = append(samples, tsdb.Sample{Component: "web", Metric: "gc_pause", T: ts, V: 5 + rng.Float64()*3})
		}
		if ts >= 30000 { // born mid-stream
			samples = append(samples, tsdb.Sample{Component: "web", Metric: "late_metric", T: ts, V: f / 1000})
		}
		if ts < 15000 { // dies: rolls out of later windows entirely
			samples = append(samples, tsdb.Sample{Component: "db", Metric: "warmup", T: ts, V: 1 + f/500})
		}
		if ts%10000 == 0 { // NaN observations are skipped by Resample
			samples = append(samples, tsdb.Sample{Component: "web", Metric: "req_rate", T: ts, V: math.NaN()})
		}
	}
	if err := db.WriteSamples(samples, 0); err != nil {
		t.Fatal(err)
	}
}

// assertDatasetEqual requires bit-identical datasets (float comparisons
// included: the incremental path promises the same bytes as batch).
func assertDatasetEqual(t *testing.T, got, want *Dataset, label string) {
	t.Helper()
	if got.Start != want.Start || got.End != want.End || got.StepMS != want.StepMS || got.App != want.App {
		t.Fatalf("%s: dataset header mismatch: got [%d,%d) step %d app %q, want [%d,%d) step %d app %q",
			label, got.Start, got.End, got.StepMS, got.App, want.Start, want.End, want.StepMS, want.App)
	}
	if !reflect.DeepEqual(got.Components(), want.Components()) {
		t.Fatalf("%s: components %v, want %v", label, got.Components(), want.Components())
	}
	for _, comp := range want.Components() {
		if !reflect.DeepEqual(got.MetricNames(comp), want.MetricNames(comp)) {
			t.Fatalf("%s: %s metrics %v, want %v", label, comp, got.MetricNames(comp), want.MetricNames(comp))
		}
		for _, m := range want.MetricNames(comp) {
			g, w := got.Get(comp, m), want.Get(comp, m)
			if g.Start != w.Start || g.StepMS != w.StepMS || len(g.Values) != len(w.Values) {
				t.Fatalf("%s: %s/%s grid mismatch", label, comp, m)
			}
			for i := range w.Values {
				if math.Float64bits(g.Values[i]) != math.Float64bits(w.Values[i]) {
					t.Fatalf("%s: %s/%s value[%d] = %v, want %v (not bit-identical)",
						label, comp, m, i, g.Values[i], w.Values[i])
				}
			}
		}
	}
}

// TestWindowCacheMatchesBatchAssembly slides a cache over an evolving
// store and requires every assembled dataset to be bit-identical to a
// from-scratch DatasetFromDB over the same window — across rolls, series
// births and deaths, spline-filled gaps, and full-rebuild fallbacks.
func TestWindowCacheMatchesBatchAssembly(t *testing.T) {
	db := tsdb.New()
	cache := NewWindowCache("test", 500)

	windows := []struct {
		upTo       int64 // ingest frontier before the advance
		start, end int64
		rebuild    bool
		tail       int
	}{
		{upTo: 20000, start: 0, end: 20000, rebuild: true},              // first cycle
		{upTo: 26000, start: 6000, end: 26000, tail: 1},                 // slide by 12 buckets
		{upTo: 26500, start: 6500, end: 26500, tail: 1},                 // slide by 1 bucket
		{upTo: 26500, start: 6500, end: 26500},                          // unchanged: zero queries
		{upTo: 36000, start: 16000, end: 36000, tail: 1},                // births (late_metric) + deaths (warmup)
		{upTo: 36000, start: 16250, end: 36250, rebuild: true},          // off-grid slide falls back
		{upTo: 40000, start: 16000, end: 40000, rebuild: true},          // width change falls back
		{upTo: 80000, start: 60000, end: 80000, rebuild: true, tail: 0}, // slid past the whole overlap
	}
	frontier := int64(0)
	for i, w := range windows {
		if w.upTo > frontier {
			writeWindowFixture(t, db, frontier, w.upTo)
			frontier = w.upTo
		}
		ds, st, err := cache.Advance(db, w.start, w.end)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		if st.FullRebuild != w.rebuild {
			t.Fatalf("window %d: FullRebuild = %v (%s), want %v", i, st.FullRebuild, st.RebuildReason, w.rebuild)
		}
		if !w.rebuild && st.TailQueries != w.tail {
			t.Fatalf("window %d: TailQueries = %d, want %d", i, st.TailQueries, w.tail)
		}
		want, err := DatasetFromDB(db, "test", 500, w.start, w.end)
		if err != nil {
			t.Fatalf("window %d batch: %v", i, err)
		}
		assertDatasetEqual(t, ds, want, fmt.Sprintf("window %d", i))
	}
}

// TestWindowCacheQueryCounts pins the work a warm advance is allowed to
// do: exactly one matcher query covering only the new tail, never the
// full window, and no legacy per-series round trips; an unchanged window
// touches the store not at all.
func TestWindowCacheQueryCounts(t *testing.T) {
	inner := tsdb.New()
	writeWindowFixture(t, inner, 0, 30000)
	db := &countingStore{Store: inner}
	cache := NewWindowCache("test", 500)

	if _, st, err := cache.Advance(db, 0, 20000); err != nil || !st.FullRebuild {
		t.Fatalf("first advance: err=%v rebuild=%v", err, st.FullRebuild)
	}
	if db.matchCalls != 1 || db.matchRanges[0] != [2]int64{0, 20000} {
		t.Fatalf("cold cycle: %d matcher calls %v, want 1 over the window", db.matchCalls, db.matchRanges)
	}

	db.matchCalls, db.matchRanges = 0, nil
	_, st, err := cache.Advance(db, 10000, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullRebuild || st.TailQueries != 1 || st.FullQueries != 0 {
		t.Fatalf("warm cycle stats: %+v, want incremental with exactly one tail query", st)
	}
	if db.matchCalls != 1 {
		t.Fatalf("warm cycle issued %d matcher queries, want exactly 1", db.matchCalls)
	}
	if got, want := db.matchRanges[0], [2]int64{20000, 30000}; got != want {
		t.Fatalf("warm cycle queried %v, want only the tail %v", got, want)
	}
	if db.queryCalls != 0 {
		t.Fatalf("warm cycle issued %d per-series queries, want 0", db.queryCalls)
	}

	// Unchanged window: zero store traffic.
	db.matchCalls, db.matchRanges = 0, nil
	if _, st, err = cache.Advance(db, 10000, 30000); err != nil || st.TailQueries+st.FullQueries != 0 || db.matchCalls != 0 {
		t.Fatalf("no-op cycle: err=%v stats=%+v calls=%d, want zero queries", err, st, db.matchCalls)
	}

	// Invalidate forces the full path again.
	cache.Invalidate()
	db.matchCalls, db.matchRanges = 0, nil
	if _, st, err = cache.Advance(db, 10000, 30000); err != nil || !st.FullRebuild || db.matchCalls != 1 {
		t.Fatalf("post-invalidate: err=%v stats=%+v calls=%d, want one full rebuild", err, st, db.matchCalls)
	}
}

// TestWindowCacheLegacyStoreFallsBack keeps plain ReadStores working:
// every cycle is a batch assembly, still bit-identical.
func TestWindowCacheLegacyStoreFallsBack(t *testing.T) {
	inner := tsdb.New()
	writeWindowFixture(t, inner, 0, 26000)
	db := &legacyStore{inner: inner}
	cache := NewWindowCache("test", 500)

	for _, w := range [][2]int64{{0, 20000}, {6000, 26000}} {
		ds, st, err := cache.Advance(db, w[0], w[1])
		if err != nil {
			t.Fatal(err)
		}
		if !st.FullRebuild || st.RebuildReason != "store lacks matcher queries" {
			t.Fatalf("legacy store advance: %+v, want full rebuild via batch path", st)
		}
		want, err := DatasetFromDB(db, "test", 500, w[0], w[1])
		if err != nil {
			t.Fatal(err)
		}
		assertDatasetEqual(t, ds, want, "legacy")
	}
}

// TestWindowCacheLateWriteRepairedByInvalidate documents the engine's
// one blind spot and its remedy: a write landing behind the cached
// frontier is invisible to tail queries, and a forced full rebuild (the
// -full-recompute-every self-heal) restores batch equality.
func TestWindowCacheLateWriteRepairedByInvalidate(t *testing.T) {
	db := tsdb.New()
	writeWindowFixture(t, db, 0, 22000)
	cache := NewWindowCache("test", 500)
	if _, _, err := cache.Advance(db, 0, 20000); err != nil {
		t.Fatal(err)
	}

	// Late write: lands inside the already-cached region.
	if err := db.WriteSamples([]tsdb.Sample{{Component: "web", Metric: "req_rate", T: 12345, V: 9999}}, 0); err != nil {
		t.Fatal(err)
	}
	ds, _, err := cache.Advance(db, 2000, 22000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DatasetFromDB(db, "test", 500, 2000, 22000)
	if err != nil {
		t.Fatal(err)
	}
	lateBucket := (12345 - 2000) / 500
	if math.Float64bits(ds.Get("web", "req_rate").Values[lateBucket]) == math.Float64bits(want.Get("web", "req_rate").Values[lateBucket]) {
		t.Fatal("late write should be invisible to the incremental path (the documented blind spot); equal values mean this test lost its subject")
	}

	cache.Invalidate()
	ds, st, err := cache.Advance(db, 2000, 22000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRebuild {
		t.Fatalf("post-invalidate advance did not rebuild: %+v", st)
	}
	assertDatasetEqual(t, ds, want, "after repair")
}

// TestWindowCacheSurvivesFailedCycle: a later pipeline stage failing
// after assembly abandons the run but not the cache — the next advance
// rolls from the already-advanced state and still matches batch.
func TestWindowCacheSurvivesFailedCycle(t *testing.T) {
	db := tsdb.New()
	writeWindowFixture(t, db, 0, 26000)
	cache := NewWindowCache("test", 500)
	if _, _, err := cache.Advance(db, 0, 20000); err != nil {
		t.Fatal(err)
	}
	ds, st, err := cache.Advance(db, 6000, 26000)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullRebuild {
		t.Fatalf("advance after abandoned cycle rebuilt: %+v", st)
	}
	want, err := DatasetFromDB(db, "test", 500, 6000, 26000)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetEqual(t, ds, want, "after failed cycle")
}
