package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/loadgen"
	"github.com/sieve-microservices/sieve/internal/metrics"
	"github.com/sieve-microservices/sieve/internal/timeseries"
	"github.com/sieve-microservices/sieve/internal/trace"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// ErrNoSeries reports that a capture window held no series at all.
// Callers that slide windows over a live store treat it as "waiting for
// data" rather than a pipeline failure: a window can legitimately be
// empty when ingest has not reached it yet, or when every series in it
// is filtered out of analysis (e.g. the server's reserved
// self-telemetry component).
var ErrNoSeries = errors.New("core: capture produced no series")

// Dataset is the captured observation of one load run: every metric as a
// regular time series plus the call graph.
type Dataset struct {
	// App names the application.
	App string
	// StepMS is the sampling grid (the paper's 500 ms discretization).
	StepMS int64
	// Start and End bound the capture window in milliseconds.
	Start, End int64
	// Series maps component -> metric -> resampled series.
	Series map[string]map[string]*timeseries.Regular
	// CallGraph holds the observed component communication.
	CallGraph *callgraph.Graph
}

// Components returns the components present in the dataset, sorted.
func (d *Dataset) Components() []string {
	out := make([]string, 0, len(d.Series))
	for c := range d.Series {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// MetricNames returns a component's captured metric names, sorted.
func (d *Dataset) MetricNames(component string) []string {
	m := d.Series[component]
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalMetrics counts all captured series.
func (d *Dataset) TotalMetrics() int {
	n := 0
	for _, m := range d.Series {
		n += len(m)
	}
	return n
}

// Get returns one series or nil.
func (d *Dataset) Get(component, metric string) *timeseries.Regular {
	return d.Series[component][metric]
}

// CaptureResult bundles the dataset with the monitoring-plane state so
// experiments can inspect resource accounting (Table 3) and tracer
// overhead (Fig. 5).
type CaptureResult struct {
	// Dataset is the resampled capture.
	Dataset *Dataset
	// DB is the backing store with its resource accounting.
	DB *tsdb.DB
	// Collector reports the scrape-side accounting.
	Collector *metrics.Collector
	// Tracer is the syscall tracer used for the call graph.
	Tracer *trace.Tracer
}

// CaptureOptions tunes Capture.
type CaptureOptions struct {
	// ScrapeEvery scrapes metrics every N ticks (default 1).
	ScrapeEvery int
	// TracerCapacity bounds the syscall ring buffer (default 1<<18).
	TracerCapacity int
	// Allowlist, when non-nil, restricts collection to these
	// component/metric keys (used to measure the reduced pipeline).
	Allowlist []string
	// OnTick, when non-nil, runs after each simulation step (after the
	// scrape), receiving the tick index and simulated time.
	OnTick func(tick int, nowMS int64)
}

// Capture performs Sieve's step 1: drive the application with the load
// pattern, scrape all component registries into a fresh store each tick,
// record the syscall stream, and return the resampled dataset plus the
// monitoring-plane handles.
func Capture(a *app.App, pattern loadgen.Pattern, opts CaptureOptions) (*CaptureResult, error) {
	return CaptureContext(context.Background(), a, pattern, opts)
}

// CaptureContext is Capture with cancellation: the context is checked on
// every simulation tick, so a cancellation mid-load surfaces as ctx.Err()
// without draining the remaining pattern. Capture itself stays
// single-threaded — the simulation advances one global clock, so there
// is nothing to fan out.
func CaptureContext(ctx context.Context, a *app.App, pattern loadgen.Pattern, opts CaptureOptions) (*CaptureResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(pattern) == 0 {
		return nil, errors.New("core: empty load pattern")
	}
	scrapeEvery := opts.ScrapeEvery
	if scrapeEvery <= 0 {
		scrapeEvery = 1
	}
	capacity := opts.TracerCapacity
	if capacity <= 0 {
		capacity = 1 << 18
	}

	db := tsdb.New()
	coll, err := metrics.NewCollector(db, a.Registries()...)
	if err != nil {
		return nil, err
	}
	if opts.Allowlist != nil {
		coll.SetAllowlist(opts.Allowlist)
	}
	tr := trace.NewTracer(capacity, nil)
	a.AttachTracer(tr)

	start := a.Now()
	var scrapeErr error
	loadgen.DriveContext(ctx, a, pattern, func(tick int, nowMS int64) {
		if tick%scrapeEvery == 0 && scrapeErr == nil {
			if _, err := coll.ScrapeOnce(nowMS); err != nil {
				scrapeErr = err
			}
		}
		if opts.OnTick != nil {
			opts.OnTick(tick, nowMS)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if scrapeErr != nil {
		return nil, fmt.Errorf("core: scraping during capture: %w", scrapeErr)
	}
	end := a.Now()

	ds, err := DatasetFromDB(db, a.Name(), a.TickMS(), start, end)
	if err != nil {
		return nil, err
	}
	ds.CallGraph = callgraph.FromSyscallEvents(tr.Events())
	return &CaptureResult{Dataset: ds, DB: db, Collector: coll, Tracer: tr}, nil
}

// DatasetFromDB reads every series in the store — any tsdb.ReadStore,
// including the sharded server store — resamples it onto the given grid,
// and assembles a Dataset (without a call graph).
//
// Stores that provide the streaming scan (tsdb.SeriesScanner: DB,
// Sharded) decode chunks directly into the bucket grid — no []Point or
// SeriesResult materializes. Stores that only provide the query engine
// (tsdb.RangeQuerier) are read with ONE matcher query over the whole
// window instead of a SeriesKeys call plus one Query round trip per
// series. All three paths produce bit-identical datasets.
//
// Online callers that assemble overlapping windows cycle after cycle
// should use a WindowCache instead: it keeps per-series bucket state
// across calls and reads only the window's new tail, producing the same
// bytes this full read would.
func DatasetFromDB(db tsdb.ReadStore, appName string, stepMS, start, end int64) (*Dataset, error) {
	if end <= start {
		return nil, fmt.Errorf("core: empty capture window [%d,%d)", start, end)
	}
	ds := &Dataset{
		App:    appName,
		StepMS: stepMS,
		Start:  start,
		End:    end,
		Series: map[string]map[string]*timeseries.Regular{},
	}
	if sc, ok := db.(tsdb.SeriesScanner); ok && stepMS > 0 {
		if err := datasetFromScan(ds, sc, start, end, stepMS); err != nil {
			return nil, err
		}
	} else if rq, ok := db.(tsdb.RangeQuerier); ok {
		results, err := rq.QueryMatch("*", "*", start, end)
		if err != nil {
			return nil, fmt.Errorf("core: matcher query over window: %w", err)
		}
		for _, res := range results {
			addResampled(ds, res.Component, res.Metric, res.Points, start, end, stepMS)
		}
	} else {
		for _, key := range db.SeriesKeys() {
			component, metric, ok := seriesKeyParts(key)
			if !ok {
				return nil, fmt.Errorf("core: malformed series key %q", key)
			}
			pts, err := db.Query(component, metric, start, end)
			if err != nil {
				return nil, fmt.Errorf("core: reading %q: %w", key, err)
			}
			addResampled(ds, component, metric, pts, start, end, stepMS)
		}
	}
	if len(ds.Series) == 0 {
		return nil, ErrNoSeries
	}
	return ds, nil
}

// datasetFromScan assembles the dataset through the store's streaming
// scan: every matched series' points decode straight into one flat
// bucket grid (series i owns sums[i*n:(i+1)*n]), then each occupied row
// goes through the same timeseries.FromBuckets second half Resample
// uses. The accumulation (skip guards, += order) is statement-for-
// statement Resample's own loop, so the assembled dataset is
// bit-identical to the QueryMatch path — without materializing a single
// []Point or SeriesResult. Rows are disjoint, so the store may visit
// different series concurrently.
func datasetFromScan(ds *Dataset, sc tsdb.SeriesScanner, start, end, stepMS int64) error {
	n := timeseries.GridBuckets(start, end, stepMS)
	var (
		keys   []string
		sums   []float64
		counts []int
	)
	err := sc.ScanMatch("*", "*", start, end, func(ks []string) {
		keys = ks
		sums = make([]float64, len(ks)*n)
		counts = make([]int, len(ks)*n)
	}, func(i int, t int64, v float64) {
		if t < start || t >= end || math.IsNaN(v) {
			return
		}
		b := int((t - start) / stepMS)
		sums[i*n+b] += v
		counts[i*n+b]++
	})
	if err != nil {
		return fmt.Errorf("core: matcher scan over window: %w", err)
	}
	for i, key := range keys {
		component, metric := splitStoreKey(key)
		reg, err := timeseries.FromBuckets(metric, start, stepMS, sums[i*n:(i+1)*n], counts[i*n:(i+1)*n])
		if err != nil {
			continue // no usable points in the window: skipped, not fatal
		}
		if ds.Series[component] == nil {
			ds.Series[component] = map[string]*timeseries.Regular{}
		}
		ds.Series[component][metric] = reg
	}
	return nil
}

// addResampled resamples one series' raw points onto the grid and adds
// it to the dataset. Series with no usable points in the window (e.g.
// created at the very end) are skipped, not fatal.
func addResampled(ds *Dataset, component, metric string, pts []tsdb.Point, start, end, stepMS int64) {
	raw := &timeseries.Series{Name: metric}
	for _, p := range pts {
		raw.Append(p.T, p.V)
	}
	reg, err := timeseries.Resample(raw, start, end, stepMS)
	if err != nil {
		return
	}
	if ds.Series[component] == nil {
		ds.Series[component] = map[string]*timeseries.Regular{}
	}
	ds.Series[component][metric] = reg
}
