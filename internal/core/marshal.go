package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/timeseries"
)

// artifactJSON is the serialized form of an Artifact. Time series are
// stored as raw value arrays with grid parameters; the call graph as an
// edge list. The format is versioned so persisted artifacts from older
// releases fail loudly instead of decoding garbage.
type artifactJSON struct {
	Version   int                  `json:"version"`
	App       string               `json:"app"`
	StepMS    int64                `json:"step_ms"`
	Start     int64                `json:"start"`
	End       int64                `json:"end"`
	Series    []seriesJSON         `json:"series"`
	CallGraph []callEdgeJSON       `json:"call_graph"`
	Reduction []reductionJSON      `json:"reduction"`
	Edges     []DependencyEdge     `json:"dependency_edges"`
	GraphMeta dependencyGraphStats `json:"dependency_graph_stats"`
}

type seriesJSON struct {
	Component string    `json:"component"`
	Metric    string    `json:"metric"`
	Start     int64     `json:"start"`
	StepMS    int64     `json:"step_ms"`
	Values    []float64 `json:"values"`
}

type callEdgeJSON struct {
	Caller string `json:"caller"`
	Callee string `json:"callee"`
	Calls  int    `json:"calls"`
}

type reductionJSON struct {
	Component  string    `json:"component"`
	Total      int       `json:"total"`
	Filtered   []string  `json:"filtered,omitempty"`
	K          int       `json:"k"`
	Silhouette float64   `json:"silhouette"`
	Clusters   []Cluster `json:"clusters"`
}

type dependencyGraphStats struct {
	Bidirectional int `json:"bidirectional"`
	Tested        int `json:"tested"`
}

// artifactFormatVersion guards persisted artifacts against format drift.
const artifactFormatVersion = 1

// MarshalArtifact serializes an artifact to JSON. NaN values cannot occur
// in pipeline outputs (the reducer rejects NaN series), so the standard
// JSON encoder suffices.
func MarshalArtifact(a *Artifact) ([]byte, error) {
	if a == nil || a.Dataset == nil {
		return nil, errors.New("core: nil artifact or dataset")
	}
	out := artifactJSON{
		Version: artifactFormatVersion,
		App:     a.App,
		StepMS:  a.Dataset.StepMS,
		Start:   a.Dataset.Start,
		End:     a.Dataset.End,
	}
	for _, comp := range a.Dataset.Components() {
		for _, metric := range a.Dataset.MetricNames(comp) {
			s := a.Dataset.Series[comp][metric]
			out.Series = append(out.Series, seriesJSON{
				Component: comp,
				Metric:    metric,
				Start:     s.Start,
				StepMS:    s.StepMS,
				Values:    s.Values,
			})
		}
	}
	if a.Dataset.CallGraph != nil {
		for _, e := range a.Dataset.CallGraph.Edges() {
			out.CallGraph = append(out.CallGraph, callEdgeJSON{Caller: e.Caller, Callee: e.Callee, Calls: e.Calls})
		}
	}
	for _, comp := range a.Dataset.Components() {
		cr := a.Reduction[comp]
		if cr == nil {
			continue
		}
		out.Reduction = append(out.Reduction, reductionJSON{
			Component:  cr.Component,
			Total:      cr.Total,
			Filtered:   cr.Filtered,
			K:          cr.K,
			Silhouette: cr.Silhouette,
			Clusters:   cr.Clusters,
		})
	}
	if a.Graph != nil {
		out.Edges = a.Graph.Edges
		out.GraphMeta = dependencyGraphStats{Bidirectional: a.Graph.Bidirectional, Tested: a.Graph.Tested}
	}
	return json.MarshalIndent(out, "", " ")
}

// UnmarshalArtifact reconstructs an artifact serialized by
// MarshalArtifact.
func UnmarshalArtifact(data []byte) (*Artifact, error) {
	var in artifactJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: decoding artifact: %w", err)
	}
	if in.Version != artifactFormatVersion {
		return nil, fmt.Errorf("core: artifact format version %d, want %d", in.Version, artifactFormatVersion)
	}

	ds := &Dataset{
		App:    in.App,
		StepMS: in.StepMS,
		Start:  in.Start,
		End:    in.End,
		Series: map[string]map[string]*timeseries.Regular{},
	}
	for _, s := range in.Series {
		if s.Component == "" || s.Metric == "" {
			return nil, fmt.Errorf("core: series with empty identity %+v", s)
		}
		if ds.Series[s.Component] == nil {
			ds.Series[s.Component] = map[string]*timeseries.Regular{}
		}
		ds.Series[s.Component][s.Metric] = &timeseries.Regular{
			Name:   s.Metric,
			Start:  s.Start,
			StepMS: s.StepMS,
			Values: s.Values,
		}
	}
	ds.CallGraph = callgraph.New()
	for _, e := range in.CallGraph {
		ds.CallGraph.AddCall(e.Caller, e.Callee, e.Calls)
	}

	red := Reduction{}
	for _, r := range in.Reduction {
		cr := &ComponentReduction{
			Component:   r.Component,
			Total:       r.Total,
			Filtered:    r.Filtered,
			K:           r.K,
			Silhouette:  r.Silhouette,
			Clusters:    r.Clusters,
			Assignments: map[string]int{},
		}
		for _, c := range r.Clusters {
			for _, m := range c.Metrics {
				cr.Assignments[m] = c.ID
			}
		}
		red[r.Component] = cr
	}

	return &Artifact{
		App:       in.App,
		Dataset:   ds,
		Reduction: red,
		Graph: &DependencyGraph{
			Edges:         in.Edges,
			Bidirectional: in.GraphMeta.Bidirectional,
			Tested:        in.GraphMeta.Tested,
		},
	}, nil
}
