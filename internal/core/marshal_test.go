package core

import (
	"encoding/json"
	"testing"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/loadgen"
)

func TestArtifactMarshalRoundTrip(t *testing.T) {
	a, err := app.New(chainSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	art, _, err := Run(a, loadgen.Random(5, 150, 100, 1500), PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}

	data, err := MarshalArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalArtifact(data)
	if err != nil {
		t.Fatal(err)
	}

	if got.App != art.App {
		t.Errorf("app = %q, want %q", got.App, art.App)
	}
	if got.Dataset.TotalMetrics() != art.Dataset.TotalMetrics() {
		t.Errorf("series count = %d, want %d", got.Dataset.TotalMetrics(), art.Dataset.TotalMetrics())
	}
	// Series values survive exactly.
	for _, comp := range art.Dataset.Components() {
		for _, metric := range art.Dataset.MetricNames(comp) {
			orig := art.Dataset.Get(comp, metric)
			back := got.Dataset.Get(comp, metric)
			if back == nil {
				t.Fatalf("series %s/%s lost", comp, metric)
			}
			if back.Start != orig.Start || back.StepMS != orig.StepMS || len(back.Values) != len(orig.Values) {
				t.Fatalf("series %s/%s shape changed", comp, metric)
			}
			for i := range orig.Values {
				if back.Values[i] != orig.Values[i] {
					t.Fatalf("series %s/%s value %d changed", comp, metric, i)
				}
			}
		}
	}
	// Call graph edges survive.
	for _, e := range art.Dataset.CallGraph.Edges() {
		if got.Dataset.CallGraph.Calls(e.Caller, e.Callee) != e.Calls {
			t.Errorf("call edge %s->%s lost", e.Caller, e.Callee)
		}
	}
	// Reduction: assignments are rebuilt from clusters.
	for comp, cr := range art.Reduction {
		back := got.Reduction[comp]
		if back == nil {
			t.Fatalf("reduction for %s lost", comp)
		}
		if back.K != cr.K || back.Total != cr.Total || len(back.Clusters) != len(cr.Clusters) {
			t.Errorf("%s reduction changed: %+v vs %+v", comp, back, cr)
		}
		for m, id := range cr.Assignments {
			if back.Assignments[m] != id {
				t.Errorf("%s assignment for %s changed", comp, m)
			}
		}
	}
	// Dependency graph survives with metadata.
	if len(got.Graph.Edges) != len(art.Graph.Edges) {
		t.Errorf("edges = %d, want %d", len(got.Graph.Edges), len(art.Graph.Edges))
	}
	if got.Graph.Tested != art.Graph.Tested || got.Graph.Bidirectional != art.Graph.Bidirectional {
		t.Error("graph stats lost")
	}
	// The restored artifact is usable downstream: MostFrequentMetric
	// agrees.
	wantKey, wantN := art.Graph.MostFrequentMetric()
	gotKey, gotN := got.Graph.MostFrequentMetric()
	if wantKey != gotKey || wantN != gotN {
		t.Errorf("most frequent metric = %s(%d), want %s(%d)", gotKey, gotN, wantKey, wantN)
	}
}

func TestUnmarshalArtifactRejectsBadInput(t *testing.T) {
	if _, err := UnmarshalArtifact([]byte("not json")); err == nil {
		t.Error("expected error for malformed JSON")
	}
	// Wrong version.
	bad, _ := json.Marshal(map[string]any{"version": 99})
	if _, err := UnmarshalArtifact(bad); err == nil {
		t.Error("expected error for unknown format version")
	}
	// Series with empty identity.
	bad, _ = json.Marshal(map[string]any{
		"version": 1,
		"series":  []map[string]any{{"component": "", "metric": "m"}},
	})
	if _, err := UnmarshalArtifact(bad); err == nil {
		t.Error("expected error for empty component")
	}
}

func TestMarshalArtifactNil(t *testing.T) {
	if _, err := MarshalArtifact(nil); err == nil {
		t.Error("expected error for nil artifact")
	}
	if _, err := MarshalArtifact(&Artifact{}); err == nil {
		t.Error("expected error for artifact without dataset")
	}
}
