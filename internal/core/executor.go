package core

import (
	"context"

	"github.com/sieve-microservices/sieve/internal/parallel"
)

// This file is the pipeline's concurrent executor: every stage that fans
// out — Reduce over components, IdentifyDependencies over communicating
// component pairs — dispatches through runTasks. The generic worker-pool
// primitive itself lives in internal/parallel so internal/kshape (which
// core imports, so it cannot import core back) can reuse it for the
// silhouette sweep.
//
// Determinism contract: a task only writes to its own index's slot, the
// caller merges slots in index order, and any per-task randomness is
// seeded from stable inputs (component name, candidate k). The merged
// output is therefore bit-identical to the sequential path at any worker
// count.

// runTasks fans n index-addressed tasks out to a pool sized by the given
// Parallelism knob (0 = GOMAXPROCS, <0 clamps to 1). It returns the
// first task error or the context's error on cancellation.
func runTasks(ctx context.Context, parallelism, n int, task func(ctx context.Context, i int) error) error {
	return parallel.ForEach(ctx, parallelism, n, task)
}

// runTasksWorker is runTasks with the executing worker's id passed to
// each task, for stages that thread per-worker scratch buffers through
// the fan-out (IdentifyDependencies' pooled Granger workspace).
func runTasksWorker(ctx context.Context, parallelism, n int, task func(ctx context.Context, worker, i int) error) error {
	return parallel.ForEachWorker(ctx, parallelism, n, task)
}

// innerBudget sizes a pool nested inside an outer fan-out of outerTasks
// tasks (Reduce's per-component silhouette sweeps). When the outer stage
// already fills the budget, nested pools run sequentially — without this
// a 16-way Reduce would spawn 16 sweeps of up to 16 workers each,
// oversubscribing CPU-bound goroutines ~outerTasks-fold. With fewer
// outer tasks than workers, the leftover budget is split evenly
// (ceiling) so small topologies still use the whole machine. Worker
// counts never affect results, only scheduling.
func innerBudget(parallelism, outerTasks int) int {
	w := parallel.Workers(parallelism)
	if outerTasks <= 0 || outerTasks >= w {
		return 1
	}
	return (w + outerTasks - 1) / outerTasks
}
