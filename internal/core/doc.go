// Package core orchestrates the three-step Sieve pipeline (§2.3): load
// the application while recording metrics and the call graph (step 1,
// Capture), reduce each component's metrics to representatives via
// variance filtering and k-Shape clustering (step 2, Reduce), and
// identify inter-component dependencies with pairwise Granger-causality
// tests restricted to communicating components (step 3,
// IdentifyDependencies). The pipeline's end product is an Artifact —
// the windowed Dataset, per-component reductions, and a typed
// dependency graph — that the autoscaling and RCA engines consume and
// that marshal.go serializes for offline comparison.
//
// The Context variants of every stage (executor.go) add cancellation
// and a deterministic worker pool sized by the Parallelism options:
// Reduce fans out per component, IdentifyDependencies per communicating
// pair, and results are bit-identical at any worker count.
//
// Batch mode drives all three steps from a simulated load session
// (Run); online mode skips step 1 and assembles the Dataset from any
// tsdb.ReadStore over a sliding window (DatasetFromDB), which is how
// the sieved server re-runs steps 2-3 over live ingested data.
//
// For overlapping windows the online path has incremental counterparts:
// WindowCache assembles each cycle from ring-buffered bucket state with
// one tail-only store query (bit-identical to DatasetFromDB), and
// ReduceWarmContext carries clustering state across cycles via
// WarmState, skipping the silhouette sweep while quality holds
// (opt-in: warm results may differ from batch).
package core
