package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/sieve-microservices/sieve/internal/granger"
	"github.com/sieve-microservices/sieve/internal/parallel"
)

// DepOptions tunes Sieve's step 3.
type DepOptions struct {
	// DelayMS is the conservative inter-component delay bound used to
	// derive the Granger lag order from the sampling grid; 0 means the
	// paper's 500 ms.
	DelayMS int64
	// Alpha is the F-test significance level; 0 means 0.05.
	Alpha float64
	// KeepBidirectional retains bidirectional edges instead of filtering
	// them as spurious (used by the ablation bench; the paper filters).
	KeepBidirectional bool
	// Parallelism sizes the worker pool that fans the per-pair Granger
	// tests out (one task per communicating component pair); 0 means
	// runtime.GOMAXPROCS(0), values below 1 clamp to a single worker.
	// The graph is bit-identical at any setting.
	Parallelism int
}

func (o DepOptions) withDefaults() DepOptions {
	if o.DelayMS <= 0 {
		o.DelayMS = 500
	}
	if o.Alpha <= 0 {
		o.Alpha = granger.DefaultAlpha
	}
	return o
}

// DependencyEdge is one inferred metric-level dependency: From's metric
// Granger-causes To's metric.
type DependencyEdge struct {
	// From and To are components; direction follows the causality.
	From, To string
	// FromMetric and ToMetric are the representative metrics involved.
	FromMetric, ToMetric string
	// LagMS is the predictive lag in milliseconds (lag order x grid).
	LagMS int64
	// PValue and F come from the winning F-test.
	PValue, F float64
}

// DependencyGraph is the output of step 3.
type DependencyGraph struct {
	// Edges are all retained metric-level dependencies.
	Edges []DependencyEdge
	// Bidirectional counts the edges filtered as spurious.
	Bidirectional int
	// Tested counts the metric pairs examined.
	Tested int
}

// ComponentPairs returns the distinct (from, to) component pairs with at
// least one edge, sorted.
func (g *DependencyGraph) ComponentPairs() [][2]string {
	seen := map[[2]string]bool{}
	for _, e := range g.Edges {
		seen[[2]string{e.From, e.To}] = true
	}
	out := make([][2]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// EdgesBetween returns the edges from one component to another.
func (g *DependencyGraph) EdgesBetween(from, to string) []DependencyEdge {
	var out []DependencyEdge
	for _, e := range g.Edges {
		if e.From == from && e.To == to {
			out = append(out, e)
		}
	}
	return out
}

// MetricFrequency counts how often each component/metric participates in
// an edge (either side). The autoscaling engine picks the most frequent
// metric as its scaling signal (§4.1 step 1).
func (g *DependencyGraph) MetricFrequency() map[string]int {
	freq := map[string]int{}
	for _, e := range g.Edges {
		freq[e.From+"/"+e.FromMetric]++
		freq[e.To+"/"+e.ToMetric]++
	}
	return freq
}

// MostFrequentMetric returns the component/metric key appearing in the
// most Granger relations, with its count (ties broken lexicographically
// for determinism).
func (g *DependencyGraph) MostFrequentMetric() (string, int) {
	freq := g.MetricFrequency()
	keys := make([]string, 0, len(freq))
	for k := range freq {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best, bestN := "", 0
	for _, k := range keys {
		if freq[k] > bestN {
			best, bestN = k, freq[k]
		}
	}
	return best, bestN
}

// DOT renders the component-level dependency graph in Graphviz format.
func (g *DependencyGraph) DOT() string {
	counts := map[[2]string]int{}
	for _, e := range g.Edges {
		counts[[2]string{e.From, e.To}]++
	}
	var b strings.Builder
	b.WriteString("digraph dependencies {\n")
	for _, p := range g.ComponentPairs() {
		fmt.Fprintf(&b, "  %q -> %q [label=%d];\n", p[0], p[1], counts[p])
	}
	b.WriteString("}\n")
	return b.String()
}

// IdentifyDependencies performs Sieve's step 3: for every communicating
// component pair (from the call graph), it Granger-tests each
// representative metric of one side against each representative of the
// other, in both directions, keeping significant unidirectional
// relationships and discarding bidirectional ones as confounded (§3.3).
func IdentifyDependencies(ds *Dataset, red Reduction, opts DepOptions) (*DependencyGraph, error) {
	return IdentifyDependenciesContext(context.Background(), ds, red, opts)
}

// pairResult collects one communicating pair's Granger outcomes; slots
// are merged in pair order so the parallel path stays deterministic.
type pairResult struct {
	edges         []DependencyEdge
	tested        int
	bidirectional int
}

// IdentifyDependenciesContext is IdentifyDependencies with cancellation
// and a worker pool: one task per communicating component pair (the
// cluster-pair Granger tests run inside the task), fanned out to
// opts.Parallelism workers. Edges and the Tested/Bidirectional counters
// are accumulated per task and merged race-free in pair order before the
// final sort (whose comparator is tie-free over the edge fields), so the
// graph is bit-identical to the sequential path at any worker count.
func IdentifyDependenciesContext(ctx context.Context, ds *Dataset, red Reduction, opts DepOptions) (*DependencyGraph, error) {
	return identifyDependencies(ctx, ds, red, opts, granger.DirectionWith)
}

// IdentifyDependenciesCached is IdentifyDependenciesContext running every
// pair test through a granger.Cache: pairs whose representative series
// are byte-identical to a previous cycle (unchanged window content, or a
// re-run without new data) reuse the memoized direction instead of
// re-fitting the OLS models. Results are bit-identical to the uncached
// path — the cache keys on series content, so only truly dirty edges
// recompute. The call advances the cache's eviction generation; passing a
// nil cache degrades to the uncached path.
func IdentifyDependenciesCached(ctx context.Context, ds *Dataset, red Reduction, opts DepOptions, cache *granger.Cache) (*DependencyGraph, error) {
	if cache == nil {
		return identifyDependencies(ctx, ds, red, opts, granger.DirectionWith)
	}
	cache.NextGeneration()
	return identifyDependencies(ctx, ds, red, opts, cache.DirectionWith)
}

// directionFunc is granger.DirectionWith or a cache's memoized
// equivalent; the scratch is the executing worker's pooled buffer set.
type directionFunc func(x, y []float64, opts granger.Options, s *granger.Scratch) (granger.Causality, *granger.TestResult, *granger.TestResult, error)

func identifyDependencies(ctx context.Context, ds *Dataset, red Reduction, opts DepOptions, direction directionFunc) (*DependencyGraph, error) {
	opts = opts.withDefaults()
	if ds.CallGraph == nil {
		return nil, fmt.Errorf("core: dataset has no call graph")
	}
	maxLag := granger.LagSamples(opts.DelayMS, ds.StepMS)
	gopts := granger.Options{MaxLag: maxLag, Alpha: opts.Alpha}

	pairs := ds.CallGraph.CommunicatingPairs()
	results := make([]pairResult, len(pairs))
	// One Granger scratch per pool worker: tasks index by worker id, so
	// buffer reuse is race-free without any locking or sync.Pool.
	scratches := make([]granger.Scratch, parallel.Workers(opts.Parallelism))
	err := runTasksWorker(ctx, opts.Parallelism, len(pairs), func(ctx context.Context, worker, i int) error {
		scratch := &scratches[worker]
		a, b := pairs[i][0], pairs[i][1]
		ra, rb := red[a], red[b]
		if ra == nil || rb == nil {
			return nil
		}
		res := &results[i]
		for _, ca := range ra.Clusters {
			if err := ctx.Err(); err != nil {
				return err
			}
			for _, cb := range rb.Clusters {
				sa := ds.Get(a, ca.Representative)
				sb := ds.Get(b, cb.Representative)
				if sa == nil || sb == nil {
					continue
				}
				res.tested++
				dir, xy, yx, err := direction(sa.Values, sb.Values, gopts, scratch)
				if err != nil {
					// Series too short or degenerate for this pair; skip.
					continue
				}
				switch dir {
				case granger.XCausesY:
					res.edges = append(res.edges, edgeFrom(a, b, ca.Representative, cb.Representative, xy, ds.StepMS))
				case granger.YCausesX:
					res.edges = append(res.edges, edgeFrom(b, a, cb.Representative, ca.Representative, yx, ds.StepMS))
				case granger.Bidirectional:
					if opts.KeepBidirectional {
						res.edges = append(res.edges,
							edgeFrom(a, b, ca.Representative, cb.Representative, xy, ds.StepMS),
							edgeFrom(b, a, cb.Representative, ca.Representative, yx, ds.StepMS))
					} else {
						res.bidirectional++
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &DependencyGraph{}
	for i := range results {
		out.Edges = append(out.Edges, results[i].edges...)
		out.Tested += results[i].tested
		out.Bidirectional += results[i].bidirectional
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		ei, ej := out.Edges[i], out.Edges[j]
		if ei.From != ej.From {
			return ei.From < ej.From
		}
		if ei.To != ej.To {
			return ei.To < ej.To
		}
		if ei.FromMetric != ej.FromMetric {
			return ei.FromMetric < ej.FromMetric
		}
		return ei.ToMetric < ej.ToMetric
	})
	return out, nil
}

func edgeFrom(from, to, fromMetric, toMetric string, t *granger.TestResult, stepMS int64) DependencyEdge {
	return DependencyEdge{
		From:       from,
		To:         to,
		FromMetric: fromMetric,
		ToMetric:   toMetric,
		LagMS:      int64(t.Lag) * stepMS,
		PValue:     t.PValue,
		F:          t.F,
	}
}
