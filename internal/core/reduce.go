package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/sieve-microservices/sieve/internal/kshape"
	"github.com/sieve-microservices/sieve/internal/timeseries"
)

// ReduceOptions tunes Sieve's step 2.
type ReduceOptions struct {
	// KMin and KMax bound the silhouette sweep over cluster counts;
	// defaults 2 and 7 (the paper found 7 sufficient for components with
	// up to 300 metrics).
	KMin, KMax int
	// VarianceThreshold drops unvarying metrics; 0 means the paper's
	// 0.002.
	VarianceThreshold float64
	// Seed drives the deterministic clustering restarts.
	Seed int64
	// NameSeeding uses metric-name similarity for initial assignments
	// (the paper's convergence optimization). Defaults to true via
	// DefaultReduceOptions.
	NameSeeding bool
	// Parallelism sizes the worker pool that fans the per-component
	// reductions (and each component's silhouette sweep) out; 0 means
	// runtime.GOMAXPROCS(0), values below 1 clamp to a single worker.
	// The result is bit-identical at any setting.
	Parallelism int
}

// DefaultReduceOptions returns the paper's parameters.
func DefaultReduceOptions() ReduceOptions {
	return ReduceOptions{
		KMin:              2,
		KMax:              7,
		VarianceThreshold: timeseries.LowVarianceThreshold,
		NameSeeding:       true,
	}
}

func (o ReduceOptions) withDefaults() ReduceOptions {
	if o.KMin <= 0 {
		o.KMin = 2
	}
	if o.KMax < o.KMin {
		o.KMax = 7
	}
	if o.VarianceThreshold <= 0 {
		o.VarianceThreshold = timeseries.LowVarianceThreshold
	}
	return o
}

// Cluster describes one metric cluster of a component.
type Cluster struct {
	// ID is the cluster index within the component.
	ID int
	// Metrics are the member metric names, sorted.
	Metrics []string
	// Representative is the member closest (SBD) to the centroid; it is
	// the metric Sieve keeps monitoring for this cluster.
	Representative string
}

// ComponentReduction is the outcome of step 2 for one component.
type ComponentReduction struct {
	// Component names the microservice.
	Component string
	// Total is the number of captured metrics before any filtering.
	Total int
	// Filtered lists metrics dropped by the variance filter, sorted.
	Filtered []string
	// Clusters are the k-Shape clusters over the surviving metrics.
	Clusters []Cluster
	// K is the chosen cluster count, Silhouette its quality score.
	K int
	// Silhouette is the clustering quality in [-1, 1].
	Silhouette float64
	// Assignments maps surviving metric names to cluster IDs.
	Assignments map[string]int
}

// Representatives returns the representative metric names, sorted.
func (r *ComponentReduction) Representatives() []string {
	out := make([]string, 0, len(r.Clusters))
	for _, c := range r.Clusters {
		out = append(out, c.Representative)
	}
	sort.Strings(out)
	return out
}

// Reduction is the step-2 result for the whole application.
type Reduction map[string]*ComponentReduction

// TotalBefore sums captured metrics across components.
func (r Reduction) TotalBefore() int {
	n := 0
	for _, cr := range r {
		n += cr.Total
	}
	return n
}

// TotalAfter sums representative metrics across components.
func (r Reduction) TotalAfter() int {
	n := 0
	for _, cr := range r {
		n += len(cr.Clusters)
	}
	return n
}

// AllowlistKeys returns the representative series as "component/metric"
// keys for the collector allowlist, sorted.
func (r Reduction) AllowlistKeys() []string {
	var out []string
	for comp, cr := range r {
		for _, c := range cr.Clusters {
			out = append(out, comp+"/"+c.Representative)
		}
	}
	sort.Strings(out)
	return out
}

// Reduce performs Sieve's step 2 on every component: drop unvarying
// metrics (var <= threshold), cluster the rest with k-Shape choosing k by
// silhouette, and pick each cluster's representative (smallest SBD to the
// centroid).
func Reduce(ds *Dataset, opts ReduceOptions) (Reduction, error) {
	return ReduceContext(context.Background(), ds, opts)
}

// ReduceContext is Reduce with cancellation and a worker pool: one task
// per component, fanned out to opts.Parallelism workers. Clustering seeds
// stay per-component, so the reduction is bit-identical to the
// sequential path at any worker count.
func ReduceContext(ctx context.Context, ds *Dataset, opts ReduceOptions) (Reduction, error) {
	opts = opts.withDefaults()
	components := ds.Components()
	crs := make([]*ComponentReduction, len(components))
	// Each component's silhouette sweep gets the worker budget left over
	// by the component-level fan-out (usually 1 — see innerBudget).
	sweepOpts := opts
	sweepOpts.Parallelism = innerBudget(opts.Parallelism, len(components))
	err := runTasks(ctx, opts.Parallelism, len(components), func(ctx context.Context, i int) error {
		cr, err := reduceComponent(ctx, ds, components[i], sweepOpts)
		if err != nil {
			return fmt.Errorf("core: reducing %s: %w", components[i], err)
		}
		crs[i] = cr
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := Reduction{}
	for i, component := range components {
		out[component] = crs[i]
	}
	return out, nil
}

func reduceComponent(ctx context.Context, ds *Dataset, component string, opts ReduceOptions) (*ComponentReduction, error) {
	cr, kept, series := filterComponent(ds, component, opts)
	if len(kept) < 2 {
		return cr, nil
	}
	var seedNames []string
	if opts.NameSeeding {
		seedNames = kept
	}
	sweep, err := kshape.ChooseKContext(ctx, series, seedNames, opts.KMin, opts.KMax, opts.Seed, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	finishReduction(cr, kept, series, sweep)
	return cr, nil
}

// filterComponent applies the variance filter (§3.2: unvarying metrics
// carry no load signal) and handles the trivial 0/1-survivor cases; kept
// and series (sorted by metric name) feed the clustering step.
func filterComponent(ds *Dataset, component string, opts ReduceOptions) (cr *ComponentReduction, kept []string, series [][]float64) {
	seriesByName := ds.Series[component]
	cr = &ComponentReduction{
		Component:   component,
		Total:       len(seriesByName),
		Assignments: map[string]int{},
	}

	names := make([]string, 0, len(seriesByName))
	for name := range seriesByName {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		vals := seriesByName[name].Values
		if timeseries.Variance(vals) <= opts.VarianceThreshold || timeseries.HasNaN(vals) {
			cr.Filtered = append(cr.Filtered, name)
			continue
		}
		kept = append(kept, name)
		series = append(series, vals)
	}
	if len(kept) == 1 {
		cr.K = 1
		cr.Clusters = []Cluster{{ID: 0, Metrics: kept, Representative: kept[0]}}
		cr.Assignments[kept[0]] = 0
	}
	return cr, kept, series
}

// finishReduction turns a clustering result into the component's
// reduction: dense cluster IDs, sorted member lists, and the member
// closest (SBD) to each centroid as the representative.
func finishReduction(cr *ComponentReduction, kept []string, series [][]float64, sweep *kshape.SweepResult) {
	cr.K = sweep.K
	cr.Silhouette = sweep.Silhouette

	for c := 0; c < sweep.K; c++ {
		members := sweep.Members(c)
		if len(members) == 0 {
			continue
		}
		cluster := Cluster{ID: len(cr.Clusters)}
		bestDist, bestName := 3.0, ""
		for _, idx := range members {
			name := kept[idx]
			cluster.Metrics = append(cluster.Metrics, name)
			d, _ := kshape.SBD(sweep.Centroids[c], timeseries.ZNormalize(series[idx]))
			if d < bestDist {
				bestDist, bestName = d, name
			}
		}
		sort.Strings(cluster.Metrics)
		cluster.Representative = bestName
		for _, name := range cluster.Metrics {
			cr.Assignments[name] = cluster.ID
		}
		cr.Clusters = append(cr.Clusters, cluster)
	}
}
