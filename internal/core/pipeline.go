package core

import (
	"context"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/loadgen"
)

// Artifact is the end product of a full pipeline run on one application
// version: everything downstream engines (autoscaling, RCA) consume.
type Artifact struct {
	// App names the application.
	App string
	// Dataset is the step-1 capture.
	Dataset *Dataset
	// Reduction is the step-2 output.
	Reduction Reduction
	// Graph is the step-3 dependency graph.
	Graph *DependencyGraph
}

// PipelineOptions bundles the per-step options.
type PipelineOptions struct {
	// Capture configures step 1.
	Capture CaptureOptions
	// Reduce configures step 2.
	Reduce ReduceOptions
	// Deps configures step 3.
	Deps DepOptions
	// Parallelism is the pipeline-wide worker-pool size, applied to any
	// stage whose own Parallelism is left at 0; 0 means
	// runtime.GOMAXPROCS(0). Results are bit-identical at any setting.
	Parallelism int
}

// Run executes the full three-step pipeline against an application under
// the given load pattern and returns the artifact plus the capture
// handles (for resource accounting).
func Run(a *app.App, pattern loadgen.Pattern, opts PipelineOptions) (*Artifact, *CaptureResult, error) {
	return RunContext(context.Background(), a, pattern, opts)
}

// RunContext is Run with cancellation: the context is threaded through
// every stage, and each stage fans its independent units of work
// (components in Reduce, communicating pairs in IdentifyDependencies,
// candidate cluster counts in the silhouette sweep) out to a worker
// pool sized by the Parallelism knobs.
func RunContext(ctx context.Context, a *app.App, pattern loadgen.Pattern, opts PipelineOptions) (*Artifact, *CaptureResult, error) {
	if opts.Reduce.Parallelism == 0 {
		opts.Reduce.Parallelism = opts.Parallelism
	}
	if opts.Deps.Parallelism == 0 {
		opts.Deps.Parallelism = opts.Parallelism
	}
	capture, err := CaptureContext(ctx, a, pattern, opts.Capture)
	if err != nil {
		return nil, nil, err
	}
	red, err := ReduceContext(ctx, capture.Dataset, opts.Reduce)
	if err != nil {
		return nil, nil, err
	}
	graph, err := IdentifyDependenciesContext(ctx, capture.Dataset, red, opts.Deps)
	if err != nil {
		return nil, nil, err
	}
	return &Artifact{
		App:       a.Name(),
		Dataset:   capture.Dataset,
		Reduction: red,
		Graph:     graph,
	}, capture, nil
}
