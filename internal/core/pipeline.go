package core

import (
	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/loadgen"
)

// Artifact is the end product of a full pipeline run on one application
// version: everything downstream engines (autoscaling, RCA) consume.
type Artifact struct {
	// App names the application.
	App string
	// Dataset is the step-1 capture.
	Dataset *Dataset
	// Reduction is the step-2 output.
	Reduction Reduction
	// Graph is the step-3 dependency graph.
	Graph *DependencyGraph
}

// PipelineOptions bundles the per-step options.
type PipelineOptions struct {
	// Capture configures step 1.
	Capture CaptureOptions
	// Reduce configures step 2.
	Reduce ReduceOptions
	// Deps configures step 3.
	Deps DepOptions
}

// Run executes the full three-step pipeline against an application under
// the given load pattern and returns the artifact plus the capture
// handles (for resource accounting).
func Run(a *app.App, pattern loadgen.Pattern, opts PipelineOptions) (*Artifact, *CaptureResult, error) {
	cap, err := Capture(a, pattern, opts.Capture)
	if err != nil {
		return nil, nil, err
	}
	red, err := Reduce(cap.Dataset, opts.Reduce)
	if err != nil {
		return nil, nil, err
	}
	graph, err := IdentifyDependencies(cap.Dataset, red, opts.Deps)
	if err != nil {
		return nil, nil, err
	}
	return &Artifact{
		App:       a.Name(),
		Dataset:   cap.Dataset,
		Reduction: red,
		Graph:     graph,
	}, cap, nil
}
