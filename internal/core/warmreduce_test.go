package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/sieve-microservices/sieve/internal/timeseries"
)

// warmTestDataset builds a two-component dataset with two clear shape
// families per component (plus one constant metric that the variance
// filter drops). shift slides the signals in time, imitating the next
// cycle's window over drifting-but-stationary content.
func warmTestDataset(shift int) *Dataset {
	const n = 128
	mk := func(name string, seed int64, f func(t float64) float64) *timeseries.Regular {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = f(float64(i+shift)) + 0.05*rng.NormFloat64()
		}
		return &timeseries.Regular{Name: name, StepMS: 500, Values: vals}
	}
	sine := func(t float64) float64 { return math.Sin(t / 9) }
	ramp := func(t float64) float64 { return math.Mod(t, 40) / 40 }
	ds := &Dataset{
		App: "warmtest", StepMS: 500, Start: int64(shift) * 500, End: int64(shift+n) * 500,
		Series: map[string]map[string]*timeseries.Regular{
			"svc-a": {
				"cpu_user_mean":  mk("cpu_user_mean", 1, sine),
				"cpu_sys_mean":   mk("cpu_sys_mean", 2, sine),
				"cpu_total_mean": mk("cpu_total_mean", 3, sine),
				"req_rate_mean":  mk("req_rate_mean", 4, ramp),
				"req_rate_p95":   mk("req_rate_p95", 5, ramp),
				"build_info":     {Name: "build_info", StepMS: 500, Values: make([]float64, n)},
			},
			"svc-b": {
				"io_read_mean":  mk("io_read_mean", 6, sine),
				"io_write_mean": mk("io_write_mean", 7, sine),
				"queue_depth":   mk("queue_depth", 8, ramp),
				"queue_wait":    mk("queue_wait", 9, ramp),
			},
		},
	}
	return ds
}

// TestReduceWarmFirstCycleMatchesBatch: with no carried state every
// component goes through the full sweep, so the result is the batch
// reduction bit for bit.
func TestReduceWarmFirstCycleMatchesBatch(t *testing.T) {
	ds := warmTestDataset(0)
	opts := DefaultReduceOptions()

	batch, err := ReduceContext(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	state := NewWarmState()
	warm, stats, err := ReduceWarmContext(context.Background(), ds, opts, WarmOptions{}, state)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SweptComponents != 2 || stats.WarmComponents != 0 {
		t.Fatalf("first cycle stats = %+v, want 2 swept / 0 warm", stats)
	}
	if !reflect.DeepEqual(warm, batch) {
		t.Fatalf("first warm cycle diverged from batch:\nwarm:  %+v\nbatch: %+v", warm, batch)
	}
}

// TestReduceWarmCyclesHoldQuality: subsequent cycles on drifted content
// take the warm path, keep the chosen k, and report silhouettes within
// the configured tolerance of the sweep baseline — the engine's
// acceptance rule, asserted from the outside.
func TestReduceWarmCyclesHoldQuality(t *testing.T) {
	opts := DefaultReduceOptions()
	wopts := WarmOptions{ResweepEvery: 100, SilhouetteTolerance: DefaultWarmSilhouetteTolerance}
	state := NewWarmState()

	base, stats, err := ReduceWarmContext(context.Background(), warmTestDataset(0), opts, wopts, state)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SweptComponents != 2 {
		t.Fatalf("baseline cycle stats = %+v", stats)
	}

	for cycle := 1; cycle <= 4; cycle++ {
		red, stats, err := ReduceWarmContext(context.Background(), warmTestDataset(cycle*3), opts, wopts, state)
		if err != nil {
			t.Fatal(err)
		}
		if stats.WarmComponents != 2 || stats.SweptComponents != 0 {
			t.Fatalf("cycle %d stats = %+v, want 2 warm / 0 swept", cycle, stats)
		}
		for comp, cr := range red {
			if cr.K != base[comp].K {
				t.Fatalf("cycle %d: %s k drifted %d -> %d on a warm cycle", cycle, comp, base[comp].K, cr.K)
			}
			if cr.Silhouette < base[comp].Silhouette-wopts.SilhouetteTolerance {
				t.Fatalf("cycle %d: %s warm silhouette %.4f below baseline %.4f - tolerance %.2f",
					cycle, comp, cr.Silhouette, base[comp].Silhouette, wopts.SilhouetteTolerance)
			}
		}
	}
}

// TestReduceWarmResweepReconverges: when the cadence forces a full
// sweep, the component's reduction is exactly what a batch reduction of
// the same dataset produces — the warm shortcut leaves no residue.
func TestReduceWarmResweepReconverges(t *testing.T) {
	opts := DefaultReduceOptions()
	wopts := WarmOptions{ResweepEvery: 2, SilhouetteTolerance: 0.5}
	state := NewWarmState()

	// Cycle 0: sweep. Cycles 1-2: warm. Cycle 3: warmCycles hits the
	// cadence, every component re-sweeps.
	for cycle := 0; cycle <= 2; cycle++ {
		_, stats, err := ReduceWarmContext(context.Background(), warmTestDataset(cycle), opts, wopts, state)
		if err != nil {
			t.Fatal(err)
		}
		wantWarm := 2
		if cycle == 0 {
			wantWarm = 0
		}
		if stats.WarmComponents != wantWarm {
			t.Fatalf("cycle %d stats = %+v, want %d warm", cycle, stats, wantWarm)
		}
	}
	ds := warmTestDataset(3)
	red, stats, err := ReduceWarmContext(context.Background(), ds, opts, wopts, state)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SweptComponents != 2 || stats.WarmComponents != 0 {
		t.Fatalf("resweep cycle stats = %+v, want 2 swept", stats)
	}
	batch, err := ReduceContext(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(red, batch) {
		t.Fatalf("forced resweep did not reconverge to batch:\ngot:  %+v\nwant: %+v", red, batch)
	}
}

// TestReduceWarmMetricSetChangeForcesSweep: a metric the seed never saw
// makes the component ineligible for the warm path.
func TestReduceWarmMetricSetChangeForcesSweep(t *testing.T) {
	opts := DefaultReduceOptions()
	state := NewWarmState()
	if _, _, err := ReduceWarmContext(context.Background(), warmTestDataset(0), opts, WarmOptions{}, state); err != nil {
		t.Fatal(err)
	}

	ds := warmTestDataset(1)
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 128)
	for i := range vals {
		vals[i] = math.Cos(float64(i)/5) + 0.05*rng.NormFloat64()
	}
	ds.Series["svc-a"]["brand_new_metric"] = &timeseries.Regular{Name: "brand_new_metric", StepMS: 500, Values: vals}

	_, stats, err := ReduceWarmContext(context.Background(), ds, opts, WarmOptions{}, state)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SweptComponents != 1 || stats.WarmComponents != 1 {
		t.Fatalf("stats = %+v, want the changed component swept and the other warm", stats)
	}
}

// TestReduceWarmParallelismDeterminism: warm reduction is bit-identical
// at any worker count, like the batch path.
func TestReduceWarmParallelismDeterminism(t *testing.T) {
	opts := DefaultReduceOptions()
	var want Reduction
	for _, workers := range []int{1, 4} {
		opts.Parallelism = workers
		state := NewWarmState()
		if _, _, err := ReduceWarmContext(context.Background(), warmTestDataset(0), opts, WarmOptions{}, state); err != nil {
			t.Fatal(err)
		}
		red, _, err := ReduceWarmContext(context.Background(), warmTestDataset(2), opts, WarmOptions{}, state)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = red
		} else if !reflect.DeepEqual(red, want) {
			t.Fatalf("warm reduction differs at %d workers", workers)
		}
	}
}
