package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/loadgen"
)

// TestReduceParallelismDeterminism asserts the per-component fan-out
// produces the same reduction as the sequential loop at several worker
// counts.
func TestReduceParallelismDeterminism(t *testing.T) {
	res, _ := captureChain(t, 150)
	opts := DefaultReduceOptions()
	opts.Parallelism = 1
	seq, err := Reduce(res.Dataset, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 4, 16} {
		opts.Parallelism = par
		got, err := ReduceContext(context.Background(), res.Dataset, opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("parallelism %d: reduction differs from sequential", par)
		}
	}
}

// TestIdentifyDependenciesParallelismDeterminism asserts the per-pair
// fan-out merges edges and counters identically to the sequential loop.
func TestIdentifyDependenciesParallelismDeterminism(t *testing.T) {
	res, _ := captureChain(t, 150)
	red, err := Reduce(res.Dataset, DefaultReduceOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DepOptions{Parallelism: 1}
	seq, err := IdentifyDependencies(res.Dataset, red, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Tested == 0 {
		t.Fatal("no pairs tested; fixture too small")
	}
	for _, par := range []int{0, 2, 8} {
		got, err := IdentifyDependenciesContext(context.Background(), res.Dataset, red, DepOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("parallelism %d: graph differs from sequential", par)
		}
	}
}

// TestReduceContextCanceled asserts a canceled context surfaces as
// context.Canceled instead of a partial reduction.
func TestReduceContextCanceled(t *testing.T) {
	res, _ := captureChain(t, 120)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReduceContext(ctx, res.Dataset, DefaultReduceOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestIdentifyDependenciesContextCanceled mirrors the Reduce case for
// step 3.
func TestIdentifyDependenciesContextCanceled(t *testing.T) {
	res, _ := captureChain(t, 120)
	red, err := Reduce(res.Dataset, DefaultReduceOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := IdentifyDependenciesContext(ctx, res.Dataset, red, DepOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCaptureContextCancelMidLoad asserts cancellation during the load
// phase aborts the drive loop promptly instead of draining the pattern.
func TestCaptureContextCancelMidLoad(t *testing.T) {
	a, err := app.New(chainSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	const cancelAt = 10
	opts := CaptureOptions{OnTick: func(tick int, _ int64) {
		if tick == cancelAt {
			cancel()
		}
	}}
	_, err = CaptureContext(ctx, a, loadgen.Constant(500, 100000), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ticks := a.Now() / a.TickMS(); ticks > cancelAt+1 {
		t.Errorf("app advanced %d ticks after cancellation at tick %d", ticks, cancelAt)
	}
}

// TestInnerBudget pins the nested-pool sizing: sequential once the
// outer fan-out fills the budget, ceiling-split leftovers otherwise.
func TestInnerBudget(t *testing.T) {
	cases := []struct {
		parallelism, outer, want int
	}{
		{16, 16, 1}, // outer fills the pool
		{16, 20, 1}, // outer exceeds the pool
		{16, 15, 2}, // ceil(16/15)
		{16, 3, 6},  // ceil(16/3)
		{1, 5, 1},   // sequential stays sequential
		{8, 0, 1},   // empty outer stage
		{-4, 10, 1}, // negative clamps to one worker
	}
	for _, c := range cases {
		if got := innerBudget(c.parallelism, c.outer); got != c.want {
			t.Errorf("innerBudget(%d, %d) = %d, want %d", c.parallelism, c.outer, got, c.want)
		}
	}
}

// TestDOTMatchesEdgesBetween pins the single-pass DOT rendering to the
// per-pair EdgesBetween counts it replaced.
func TestDOTMatchesEdgesBetween(t *testing.T) {
	g := &DependencyGraph{Edges: []DependencyEdge{
		{From: "a", To: "b", FromMetric: "m1", ToMetric: "m2"},
		{From: "a", To: "b", FromMetric: "m3", ToMetric: "m4"},
		{From: "b", To: "c", FromMetric: "m5", ToMetric: "m6"},
	}}
	dot := g.DOT()
	for _, p := range g.ComponentPairs() {
		want := fmt.Sprintf("%q -> %q [label=%d];", p[0], p[1], len(g.EdgesBetween(p[0], p[1])))
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %s in:\n%s", want, dot)
		}
	}
	if strings.Count(dot, "->") != 2 {
		t.Errorf("DOT has %d edges, want 2:\n%s", strings.Count(dot, "->"), dot)
	}
}
