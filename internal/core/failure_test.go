package core

import (
	"math/rand"
	"testing"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/loadgen"
	"github.com/sieve-microservices/sieve/internal/timeseries"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// TestPipelineSurvivesScrapeGaps injects gaps into the capture (dropped
// scrapes, as from timeouts or lost packets) and checks the pipeline
// still produces a usable artifact via spline reconstruction (§3.2).
func TestPipelineSurvivesScrapeGaps(t *testing.T) {
	a, err := app.New(chainSpec(), 13)
	if err != nil {
		t.Fatal(err)
	}
	// Scrape only every 3rd tick: two thirds of the grid slots are gaps
	// the resampler has to reconstruct.
	res, err := Capture(a, loadgen.Random(4, 180, 100, 1500), CaptureOptions{ScrapeEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds := res.Dataset
	s := ds.Get("api", "api_latency_ms_mean")
	if s == nil {
		t.Fatal("series missing")
	}
	if s.Len() != 180 {
		t.Fatalf("series length = %d, want full 180-slot grid", s.Len())
	}
	if timeseries.HasNaN(s.Values) {
		t.Fatal("gaps not reconstructed")
	}
	red, err := Reduce(ds, DefaultReduceOptions())
	if err != nil {
		t.Fatal(err)
	}
	graph, err := IdentifyDependencies(ds, red, DepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if graph.Tested == 0 {
		t.Error("no pairs tested on gappy capture")
	}
}

// TestPipelineSurvivesMetricAppearingMidRun verifies that lazily-created
// series (error paths firing late) are clamped into full-grid series and
// do not break reduction.
func TestPipelineSurvivesMetricAppearingMidRun(t *testing.T) {
	spec := chainSpec()
	// The fault makes the api emit errors; arm it halfway through by
	// toggling the fault through the OnTick hook.
	a, err := app.New(spec, 17)
	if err != nil {
		t.Fatal(err)
	}
	spec.Components[2].Families = append(spec.Components[2].Families,
		app.Family{Base: "late_series", Driver: app.DriverErrors, Phase: app.PhaseFaultyOnly})

	b, err := app.New(spec, 17)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	res, err := Capture(b, loadgen.Constant(200, 120), CaptureOptions{
		OnTick: func(tick int, nowMS int64) {
			if tick == 60 {
				b.SetFault(true)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Dataset.Get("db", "late_series")
	if s == nil {
		t.Fatal("late series not captured")
	}
	if s.Len() != 120 {
		t.Fatalf("late series length = %d, want clamped to the full grid", s.Len())
	}
	if _, err := Reduce(res.Dataset, DefaultReduceOptions()); err != nil {
		t.Fatalf("reduction failed on late series: %v", err)
	}
}

// TestPipelineSurvivesTracerOverflow forces ring-buffer drops and checks
// the call graph stays usable (connect/accept pairs may be lost, but the
// pipeline must not fail).
func TestPipelineSurvivesTracerOverflow(t *testing.T) {
	a, err := app.New(chainSpec(), 19)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Capture(a, loadgen.Constant(500, 150), CaptureOptions{TracerCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tracer.Stats().Dropped == 0 {
		t.Fatal("test setup: expected ring drops")
	}
	// The graph may be partial but the pipeline completes.
	red, err := Reduce(res.Dataset, DefaultReduceOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IdentifyDependencies(res.Dataset, red, DepOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestReduceSurvivesPathologicalSeries feeds constant, spiky and
// NaN-tainted series through reduction directly.
func TestReduceSurvivesPathologicalSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mk := func(vals []float64) *timeseries.Regular {
		return &timeseries.Regular{StepMS: 500, Values: vals}
	}
	noisy := make([]float64, 60)
	spiky := make([]float64, 60)
	nan := make([]float64, 60)
	for i := range noisy {
		noisy[i] = rng.NormFloat64()
		if i == 30 {
			spiky[i] = 1e12
		}
		nan[i] = rng.NormFloat64()
	}
	nan[10] = nan[10] * 0 / 0 // NaN

	ds := &Dataset{
		App:    "patho",
		StepMS: 500,
		End:    60 * 500,
		Series: map[string]map[string]*timeseries.Regular{
			"c": {
				"constant": mk(make([]float64, 60)),
				"noisy":    mk(noisy),
				"spiky":    mk(spiky),
				"nan":      mk(nan),
			},
		},
	}
	red, err := Reduce(ds, DefaultReduceOptions())
	if err != nil {
		t.Fatal(err)
	}
	cr := red["c"]
	if !containsStr(cr.Filtered, "constant") {
		t.Error("constant series must be filtered")
	}
	if !containsStr(cr.Filtered, "nan") {
		t.Error("NaN series must be filtered, not clustered")
	}
	for _, c := range cr.Clusters {
		if c.Representative == "" {
			t.Error("cluster without representative")
		}
	}
}

// TestDatasetFromDBSkipsUnusableSeries covers series entirely outside
// the capture window.
func TestDatasetFromDBSkipsUnusableSeries(t *testing.T) {
	db := tsdb.New()
	db.WriteSamples([]tsdb.Sample{
		{Component: "a", Metric: "inside", T: 100, V: 1},
		{Component: "a", Metric: "inside", T: 600, V: 2},
		{Component: "b", Metric: "outside", T: 99999, V: 3},
	}, 0)
	ds, err := DatasetFromDB(db, "x", 500, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Get("a", "inside") == nil {
		t.Error("in-window series lost")
	}
	if ds.Get("b", "outside") != nil {
		t.Error("out-of-window series must be skipped")
	}
	if _, err := DatasetFromDB(db, "x", 500, 1000, 1000); err == nil {
		t.Error("expected error for empty window")
	}
}
