package core

import (
	"context"
	"fmt"
	"math"

	"github.com/sieve-microservices/sieve/internal/kshape"
)

// WarmOptions tunes warm-started online reduction (opt-in: batch Reduce
// semantics are untouched; only callers that thread a WarmState through
// consecutive cycles get the shortcut).
type WarmOptions struct {
	// ResweepEvery forces a full silhouette sweep after this many
	// consecutive warm cycles per component, bounding how long a stale k
	// can survive; 0 means DefaultWarmResweepEvery, negative disables
	// the cadence entirely (quality degradation and metric-set changes
	// still force sweeps).
	ResweepEvery int
	// SilhouetteTolerance is how far a warm cycle's silhouette may fall
	// below the component's last full-sweep score before the shortcut is
	// abandoned and the component is re-swept; 0 means
	// DefaultWarmSilhouetteTolerance, negative means any degradation
	// triggers a re-sweep.
	SilhouetteTolerance float64
}

// DefaultWarmResweepEvery is the default full-sweep cadence (in cycles).
const DefaultWarmResweepEvery = 10

// DefaultWarmSilhouetteTolerance is the default allowed silhouette drop
// relative to the last full sweep before a re-sweep is forced.
const DefaultWarmSilhouetteTolerance = 0.05

func (o WarmOptions) withDefaults() WarmOptions {
	switch {
	case o.ResweepEvery == 0:
		o.ResweepEvery = DefaultWarmResweepEvery
	case o.ResweepEvery < 0:
		o.ResweepEvery = math.MaxInt // never on cadence alone
	}
	switch {
	case o.SilhouetteTolerance == 0:
		o.SilhouetteTolerance = DefaultWarmSilhouetteTolerance
	case o.SilhouetteTolerance < 0:
		// "Any degradation re-sweeps": clamp to exactly zero rather than
		// letting a negative value demand improvement over the baseline,
		// which would silently disable the warm path in steady state.
		o.SilhouetteTolerance = 0
	}
	return o
}

// WarmState carries clustering state across online cycles: per component,
// the k the last full sweep converged on, the latest raw cluster
// assignments by metric name (the warm seed), and the sweep's silhouette
// (the quality baseline degradation is measured against). A fresh (or
// Reset) state makes the next ReduceWarmContext identical to a batch
// ReduceContext. Not safe for concurrent use; the online driver
// serializes cycles.
type WarmState struct {
	components map[string]*componentWarm
}

type componentWarm struct {
	k int
	// assignments maps metric name -> raw kshape cluster index (not the
	// dense Cluster.ID renumbering), so it can seed the next cycle.
	assignments map[string]int
	// sweepSilhouette is the score of the last full sweep.
	sweepSilhouette float64
	// warmCycles counts consecutive warm cycles since that sweep.
	warmCycles int
}

// NewWarmState creates an empty warm state.
func NewWarmState() *WarmState {
	return &WarmState{components: map[string]*componentWarm{}}
}

// Reset drops all carried state; the next cycle fully re-sweeps every
// component (used by the online driver's periodic full recompute and
// after restart).
func (s *WarmState) Reset() {
	s.components = map[string]*componentWarm{}
}

// WarmStats reports how many components took which path in one cycle.
type WarmStats struct {
	// WarmComponents were clustered from the previous cycle's
	// assignments at a fixed k (no sweep).
	WarmComponents int `json:"warm_components"`
	// SweptComponents went through the full silhouette sweep (first
	// sight, cadence reached, warm quality degraded, or metric set
	// changed).
	SweptComponents int `json:"swept_components"`
	// TrivialComponents had fewer than two clusterable metrics.
	TrivialComponents int `json:"trivial_components"`
}

// ReduceWarmContext is ReduceContext with warm-started clustering: each
// component is seeded from state's previous assignments and clustered
// once at the previously chosen k, skipping the silhouette sweep, as long
// as (1) the metric set still matches the seed, (2) fewer than
// opts.ResweepEvery warm cycles have passed since the last full sweep,
// and (3) the warm silhouette stays within opts.SilhouetteTolerance of
// the last sweep's score. Violating any of these re-sweeps the component
// and resets its baseline. Warm results may differ from a from-scratch
// batch reduction (that is the trade: the sweep is skipped entirely), so
// this path is opt-in and never used when bit-identical artifacts are
// required.
func ReduceWarmContext(ctx context.Context, ds *Dataset, opts ReduceOptions, wopts WarmOptions, state *WarmState) (Reduction, WarmStats, error) {
	var stats WarmStats
	if state == nil {
		return nil, stats, fmt.Errorf("core: warm reduce needs a WarmState")
	}
	if state.components == nil {
		state.components = map[string]*componentWarm{}
	}
	opts = opts.withDefaults()
	wopts = wopts.withDefaults()
	components := ds.Components()

	type outcome struct {
		cr   *ComponentReduction
		warm *componentWarm // nil for trivial components
		took string         // "warm", "sweep", "trivial"
	}
	outcomes := make([]outcome, len(components))
	sweepOpts := opts
	sweepOpts.Parallelism = innerBudget(opts.Parallelism, len(components))
	err := runTasks(ctx, opts.Parallelism, len(components), func(ctx context.Context, i int) error {
		cr, warm, took, err := reduceComponentWarm(ctx, ds, components[i], sweepOpts, wopts, state.components[components[i]])
		if err != nil {
			return fmt.Errorf("core: reducing %s: %w", components[i], err)
		}
		outcomes[i] = outcome{cr: cr, warm: warm, took: took}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}

	// State is mutated only here, after the fan-out, in component order:
	// tasks read the previous cycle's entries and never write.
	out := Reduction{}
	next := map[string]*componentWarm{}
	for i, component := range components {
		out[component] = outcomes[i].cr
		if outcomes[i].warm != nil {
			next[component] = outcomes[i].warm
		}
		switch outcomes[i].took {
		case "warm":
			stats.WarmComponents++
		case "sweep":
			stats.SweptComponents++
		default:
			stats.TrivialComponents++
		}
	}
	state.components = next
	return out, stats, nil
}

// reduceComponentWarm reduces one component, taking the warm path when
// the carried state allows it and falling back to the full sweep
// otherwise. It returns the reduction, the state to carry into the next
// cycle (nil for trivial components), and which path was taken.
func reduceComponentWarm(ctx context.Context, ds *Dataset, component string, opts ReduceOptions, wopts WarmOptions, prev *componentWarm) (*ComponentReduction, *componentWarm, string, error) {
	cr, kept, series := filterComponent(ds, component, opts)
	if len(kept) < 2 {
		return cr, nil, "trivial", nil
	}

	// dist survives a rejected warm attempt so the fallback sweep does
	// not recompute the O(n^2) pairwise matrix it just paid for.
	var dist [][]float64
	if initial, ok := warmSeed(prev, kept, wopts); ok {
		sweep, warmDist, err := kshape.ClusterWarmContext(ctx, series, initial, prev.k, opts.Seed)
		if err != nil {
			return nil, nil, "", err
		}
		if sweep.Silhouette >= prev.sweepSilhouette-wopts.SilhouetteTolerance {
			finishReduction(cr, kept, series, sweep)
			return cr, &componentWarm{
				k:               prev.k,
				assignments:     rawAssignments(kept, sweep.Assignments),
				sweepSilhouette: prev.sweepSilhouette,
				warmCycles:      prev.warmCycles + 1,
			}, "warm", nil
		}
		// Quality degraded past the tolerance: fall through to a sweep.
		dist = warmDist
	}

	var seedNames []string
	if opts.NameSeeding {
		seedNames = kept
	}
	sweep, err := kshape.ChooseKFromDist(ctx, series, dist, seedNames, opts.KMin, opts.KMax, opts.Seed, opts.Parallelism)
	if err != nil {
		return nil, nil, "", err
	}
	finishReduction(cr, kept, series, sweep)
	return cr, &componentWarm{
		k:               sweep.K,
		assignments:     rawAssignments(kept, sweep.Assignments),
		sweepSilhouette: sweep.Silhouette,
	}, "sweep", nil
}

// warmSeed maps the previous cycle's assignments onto the current metric
// set, reporting false (forcing a sweep) when there is no previous state,
// the re-sweep cadence is due, k no longer fits the survivor count, or
// any current metric was never assigned (new metrics have no seed).
func warmSeed(prev *componentWarm, kept []string, wopts WarmOptions) ([]int, bool) {
	if prev == nil || prev.warmCycles >= wopts.ResweepEvery {
		return nil, false
	}
	if prev.k < 2 || prev.k > len(kept) {
		return nil, false
	}
	initial := make([]int, len(kept))
	for i, name := range kept {
		a, ok := prev.assignments[name]
		if !ok || a < 0 || a >= prev.k {
			return nil, false
		}
		initial[i] = a
	}
	return initial, true
}

// rawAssignments records a clustering's raw cluster index per metric name
// for the next cycle's seed.
func rawAssignments(kept []string, assign []int) map[string]int {
	out := make(map[string]int, len(kept))
	for i, name := range kept {
		out[name] = assign[i]
	}
	return out
}
