package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// legacyReadStore hides the query engine from DatasetFromDB, forcing the
// pre-matcher path: SeriesKeys plus one Query round trip per series.
type legacyReadStore struct{ s tsdb.ReadStore }

func (l legacyReadStore) Query(component, metric string, from, to int64) ([]tsdb.Point, error) {
	return l.s.Query(component, metric, from, to)
}
func (l legacyReadStore) SeriesKeys() []string { return l.s.SeriesKeys() }

// TestDatasetFromDBMatcherEquivalence pins the matcher-query rewrite of
// DatasetFromDB: the single QueryMatch over the window must produce a
// dataset — and a marshaled pipeline artifact — bit-identical to the
// legacy per-series round-trip path, on both the single-mutex DB and the
// sharded store.
func TestDatasetFromDBMatcherEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var samples []tsdb.Sample
	for i := 0; i < 900; i++ {
		for c := 0; c < 3; c++ {
			for m := 0; m < 3; m++ {
				samples = append(samples, tsdb.Sample{
					Component: fmt.Sprintf("svc-%d", c),
					Metric:    fmt.Sprintf("metric_%d", m),
					T:         int64(i) * 500,
					V:         rng.NormFloat64()*10 + float64(c*m),
				})
			}
		}
	}
	// One series entirely outside the window: both paths must skip it.
	samples = append(samples, tsdb.Sample{Component: "svc-0", Metric: "late", T: 10_000_000, V: 1})

	stores := map[string]tsdb.Store{"db": tsdb.New(), "sharded": tsdb.NewSharded(4)}
	for name, store := range stores {
		t.Run(name, func(t *testing.T) {
			if err := store.WriteSamples(samples, 0); err != nil {
				t.Fatal(err)
			}
			const start, end, step = 0, 450_000, 500
			viaMatcher, err := DatasetFromDB(store, "app", step, start, end)
			if err != nil {
				t.Fatal(err)
			}
			viaLegacy, err := DatasetFromDB(legacyReadStore{store}, "app", step, start, end)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(viaMatcher.Series, viaLegacy.Series) {
				t.Fatal("matcher-path dataset differs from legacy per-series path")
			}
			if viaMatcher.Get("svc-0", "late") != nil {
				t.Fatal("out-of-window series must be skipped")
			}

			// Full artifact round trip: reduce both datasets and compare the
			// serialized artifacts byte for byte.
			marshal := func(ds *Dataset) []byte {
				t.Helper()
				red, err := Reduce(ds, DefaultReduceOptions())
				if err != nil {
					t.Fatal(err)
				}
				data, err := MarshalArtifact(&Artifact{App: "app", Dataset: ds, Reduction: red, Graph: &DependencyGraph{}})
				if err != nil {
					t.Fatal(err)
				}
				return data
			}
			if a, b := marshal(viaMatcher), marshal(viaLegacy); !bytes.Equal(a, b) {
				t.Fatal("marshaled artifacts differ between matcher and legacy dataset paths")
			}
		})
	}
}

// TestDatasetFromDBUsesSingleMatcherQuery verifies the fast path is
// actually taken: a RangeQuerier store records the calls it serves, and
// dataset assembly must issue exactly one matcher query and zero
// per-series Query round trips.
func TestDatasetFromDBUsesSingleMatcherQuery(t *testing.T) {
	store := &countingStore{Store: tsdb.NewSharded(2)}
	if err := store.WriteSamples([]tsdb.Sample{
		{Component: "a", Metric: "m", T: 0, V: 1},
		{Component: "a", Metric: "m", T: 500, V: 2},
		{Component: "b", Metric: "n", T: 0, V: 3},
		{Component: "b", Metric: "n", T: 500, V: 4},
	}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := DatasetFromDB(store, "app", 500, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if store.matchCalls != 1 || store.queryCalls != 0 || store.keysCalls != 0 {
		t.Fatalf("want 1 matcher call and no per-series round trips, got match=%d query=%d keys=%d",
			store.matchCalls, store.queryCalls, store.keysCalls)
	}
}

type countingStore struct {
	tsdb.Store
	matchCalls, queryCalls, keysCalls int
	// matchRanges records each matcher query's [from, to) so the window
	// cache tests can pin tail-only reads.
	matchRanges [][2]int64
}

func (c *countingStore) QueryMatch(componentGlob, metricGlob string, from, to int64) ([]tsdb.SeriesResult, error) {
	c.matchCalls++
	c.matchRanges = append(c.matchRanges, [2]int64{from, to})
	return c.Store.QueryMatch(componentGlob, metricGlob, from, to)
}

func (c *countingStore) Query(component, metric string, from, to int64) ([]tsdb.Point, error) {
	c.queryCalls++
	return c.Store.Query(component, metric, from, to)
}

func (c *countingStore) SeriesKeys() []string {
	c.keysCalls++
	return c.Store.SeriesKeys()
}
