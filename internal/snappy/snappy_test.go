package snappy

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// TestDecodeGoldenVectors pins the decoder against hand-assembled
// element streams, independent of our encoder's choices — a decoder that
// only understands its own encoder's output would pass round-trips and
// still reject real Prometheus bodies.
func TestDecodeGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"empty", []byte{0x00}, ""},
		// Literal "abc": preamble 3, tag (3-1)<<2|00 = 0x08.
		{"literal", []byte{0x03, 0x08, 'a', 'b', 'c'}, "abc"},
		// One-extra-byte literal length form for a 61-byte literal.
		{"literal-len1", append([]byte{61, 60 << 2, 60}, bytes.Repeat([]byte{'x'}, 61)...), strings.Repeat("x", 61)},
		// "abcabcabc": literal "abc" then copy1 offset 3 length 6
		// (overlapping run-length copy).
		{"overlap-copy1", []byte{0x09, 0x08, 'a', 'b', 'c', (6-4)<<2 | tagCopy1, 0x03}, "abcabcabc"},
		// Same stream with the copy in copy2 form.
		{"copy2", []byte{0x09, 0x08, 'a', 'b', 'c', (6-1)<<2 | tagCopy2, 0x03, 0x00}, "abcabcabc"},
		// And in copy4 form.
		{"copy4", []byte{0x09, 0x08, 'a', 'b', 'c', (6-1)<<2 | tagCopy4, 0x03, 0x00, 0x00, 0x00}, "abcabcabc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Decode(tc.in)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if string(got) != tc.want {
				t.Fatalf("Decode = %q, want %q", got, tc.want)
			}
		})
	}
}

// malformedFrames is the shared corpus of invalid inputs: every one must
// fail with an error, never panic or return partial plaintext.
func malformedFrames() map[string][]byte {
	return map[string][]byte{
		"empty-input":           {},
		"preamble-only-nonzero": {0x05},
		"truncated-varint":      {0x80, 0x80},
		"varint-overflow":       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02},
		"preamble-too-large":    binary.AppendUvarint(nil, 1<<40),
		"literal-past-input":    {0x05, 0x10, 'a'},
		"literal-past-output":   {0x01, 0x10, 'a', 'b', 'c', 'd', 'e'},
		"literal-len-truncated": {0x80, 0x01, 60 << 2},
		"copy-before-start":     {0x04, 0x08, 'a', 'b', 'c', 0x01 | 1<<2, 0x09},
		"copy-zero-offset":      {0x06, 0x08, 'a', 'b', 'c', (6-1)<<2 | tagCopy2, 0x00, 0x00},
		"copy-past-output":      {0x04, 0x08, 'a', 'b', 'c', 63<<2 | tagCopy2, 0x03, 0x00},
		"copy1-truncated":       {0x08, 0x08, 'a', 'b', 'c', 0x01},
		"copy4-truncated":       {0x08, 0x08, 'a', 'b', 'c', tagCopy4, 0x03, 0x00},
		"output-short":          {0x09, 0x08, 'a', 'b', 'c'},
		"trailing-garbage":      {0x03, 0x08, 'a', 'b', 'c', 0xff},
	}
}

func TestDecodeMalformed(t *testing.T) {
	for name, in := range malformedFrames() {
		t.Run(name, func(t *testing.T) {
			if out, err := Decode(in); err == nil {
				t.Fatalf("Decode accepted malformed input, returned %q", out)
			}
		})
	}
}

// TestEncodeDecodeRoundTrip drives the encoder across compressible,
// incompressible, and boundary-sized inputs and requires exact recovery.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inputs := map[string][]byte{
		"empty":         {},
		"one-byte":      {'z'},
		"short":         []byte("abc"),
		"run":           bytes.Repeat([]byte{'r'}, 1000),
		"repeats":       bytes.Repeat([]byte("abcdefgh"), 500),
		"sixty-one":     bytes.Repeat([]byte{'q'}, 61),
		"block-exact":   bytes.Repeat([]byte("0123456789abcdef"), 1<<12), // exactly 64 KiB
		"block-plus":    bytes.Repeat([]byte("0123456789abcdef"), 1<<12+3),
		"three-blocks":  bytes.Repeat([]byte("remote write on-ramp "), 10000),
		"text":          []byte(strings.Repeat("web,metric=cpu value=0.5 500\n", 2000)),
		"long-literal":  make([]byte, 70000), // filled below: no 4-byte repeats
		"short-literal": {1, 2, 3},
	}
	lit := inputs["long-literal"]
	for i := range lit {
		lit[i] = byte(rng.Intn(256))
	}
	for name, in := range inputs {
		t.Run(name, func(t *testing.T) {
			enc := Encode(in)
			got, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode(Encode(...)): %v", err)
			}
			if !bytes.Equal(got, in) {
				t.Fatalf("round trip mismatch: %d bytes in, %d out", len(in), len(got))
			}
		})
	}
}

// TestEncodeCompresses sanity-checks that the encoder actually finds
// matches: a highly repetitive input must shrink substantially.
func TestEncodeCompresses(t *testing.T) {
	in := bytes.Repeat([]byte("sieve remote write "), 4096)
	enc := Encode(in)
	if len(enc) > len(in)/10 {
		t.Fatalf("repetitive input compressed %d -> %d, expected at least 10x", len(in), len(enc))
	}
}

// TestDecodedLen pins the preamble fast path the server's size limit
// rides on.
func TestDecodedLen(t *testing.T) {
	enc := Encode(bytes.Repeat([]byte{'a'}, 12345))
	n, _, err := DecodedLen(enc)
	if err != nil || n != 12345 {
		t.Fatalf("DecodedLen = %d, %v; want 12345", n, err)
	}
	if _, _, err := DecodedLen(nil); err == nil {
		t.Fatal("DecodedLen accepted empty input")
	}
}

// FuzzSnappyDecode fuzzes both directions: data as plaintext must
// round-trip exactly through Encode/Decode, and data as a compressed
// frame must either decode (and then re-round-trip) or fail cleanly —
// never panic, never over-allocate past the validated preamble.
func FuzzSnappyDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("abcabcabcabc"))
	f.Add(Encode(bytes.Repeat([]byte("sieve"), 100)))
	for _, in := range malformedFrames() {
		f.Add(in)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		enc := Encode(data)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(...)): %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
		// data as a frame: bound the preamble like the server does, so
		// a fuzzed 4 GiB length claim doesn't allocate 4 GiB.
		if n, _, err := DecodedLen(data); err != nil || n > 1<<22 {
			return
		}
		plain, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(Encode(plain))
		if err != nil || !bytes.Equal(again, plain) {
			t.Fatalf("re-round-trip of decoded frame failed: %v", err)
		}
	})
}

// TestAppendDecodeReusesBuffer pins the pooled decode path: with a
// buffer big enough from a previous request, AppendDecode allocates
// nothing, and the output matches Decode byte for byte.
func TestAppendDecodeReusesBuffer(t *testing.T) {
	plain := bytes.Repeat([]byte("sieve snappy reuse pin, "), 512)
	src := Encode(plain)
	fresh, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, plain) {
		t.Fatal("Decode roundtrip mismatch")
	}
	buf := make([]byte, len(plain))
	allocs := testing.AllocsPerRun(20, func() {
		out, err := AppendDecode(buf, src)
		if err != nil {
			t.Fatal(err)
		}
		buf = out
	})
	if allocs != 0 {
		t.Errorf("AppendDecode with sufficient capacity: %.1f allocs/run, want 0", allocs)
	}
	if !bytes.Equal(buf, plain) {
		t.Fatal("AppendDecode output differs from plaintext")
	}
	// A too-small buffer grows instead of corrupting.
	out, err := AppendDecode(make([]byte, 3), src)
	if err != nil || !bytes.Equal(out, plain) {
		t.Fatalf("AppendDecode growth path: err=%v, match=%v", err, bytes.Equal(out, plain))
	}
}
