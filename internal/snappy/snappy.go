// Package snappy implements the snappy block format — the compression
// Prometheus remote write wraps every request body in — with zero
// dependencies. Only the serving path needs Decode; Encode exists so the
// HTTP client and the tests can produce real remote-write bodies (and so
// the fuzzer can round-trip arbitrary plaintext), and is a conventional
// greedy hash-table matcher whose output any spec-conforming decoder
// accepts. This is the raw block format (varint preamble + element
// stream), not the framing format (chunked stream with CRCs) — remote
// write uses the former.
//
// Format (little-endian throughout):
//
//	preamble: uvarint decompressed length
//	elements: tag byte, low 2 bits select the kind
//	  00 literal: length-1 in tag>>2; 60..63 mean 1..4 extra length bytes
//	  01 copy1:   length-4 in (tag>>2)&7, offset = (tag>>5)<<8 | next byte
//	  10 copy2:   length-1 in tag>>2, offset = 2 bytes
//	  11 copy4:   length-1 in tag>>2, offset = 4 bytes
//
// Copies may overlap their own output (offset < length) — that is the
// run-length encoding case and must be copied byte-by-byte forward.
package snappy

import (
	"encoding/binary"
	"errors"
	"fmt"
)

var (
	// ErrCorrupt reports an undecodable element stream.
	ErrCorrupt = errors.New("snappy: corrupt input")
	// ErrTooLarge reports a preamble length beyond what the caller (or
	// the format's 32-bit preamble contract) allows.
	ErrTooLarge = errors.New("snappy: decoded length too large")
)

const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03

	// maxDecodedLen is the format-level ceiling on the preamble: the
	// spec stores a 32-bit length. Callers enforce their own (smaller)
	// policy limit before allocating.
	maxDecodedLen = 1<<32 - 1
)

// DecodedLen parses the preamble and returns the decompressed length
// plus the number of preamble bytes. It reads at most 5 bytes, so a
// server can reject an oversized request before allocating anything.
func DecodedLen(src []byte) (n int, preamble int, err error) {
	v, sz := binary.Uvarint(src)
	if sz <= 0 {
		return 0, 0, ErrCorrupt
	}
	if v > maxDecodedLen {
		return 0, 0, ErrTooLarge
	}
	return int(v), sz, nil
}

// Decode decompresses src and returns the plaintext. The preamble length
// is trusted only as an allocation hint after validation: the element
// stream must produce exactly that many bytes, no more and no fewer.
func Decode(src []byte) ([]byte, error) {
	return AppendDecode(nil, src)
}

// AppendDecode decompresses src into dst's storage, growing it only when
// the plaintext outsizes dst's capacity, and returns the plaintext slice
// (len = decompressed length). The pooled-buffer form of Decode: a server
// decompressing similar-sized requests reuses one buffer across all of
// them. dst's length is ignored; its contents are overwritten.
func AppendDecode(dst, src []byte) ([]byte, error) {
	n, sz, err := DecodedLen(src)
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	dst = dst[:n]
	if err := decodeBody(dst, src[sz:]); err != nil {
		return nil, err
	}
	return dst, nil
}

// decodeBody fills dst exactly from the element stream in src.
func decodeBody(dst, src []byte) error {
	var d, s int
	for s < len(src) {
		tag := src[s]
		var length, offset int
		switch tag & 0x03 {
		case tagLiteral:
			length = int(tag >> 2)
			s++
			if length >= 60 {
				extra := length - 59 // 1..4 length bytes follow
				if s+extra > len(src) {
					return ErrCorrupt
				}
				length = 0
				for i := extra - 1; i >= 0; i-- {
					length = length<<8 | int(src[s+i])
				}
				s += extra
				if length < 0 || length > maxDecodedLen-1 {
					return ErrCorrupt
				}
			}
			length++
			if s+length > len(src) || d+length > len(dst) {
				return ErrCorrupt
			}
			copy(dst[d:], src[s:s+length])
			d += length
			s += length
			continue
		case tagCopy1:
			if s+2 > len(src) {
				return ErrCorrupt
			}
			length = 4 + int(tag>>2)&0x07
			offset = int(tag&0xe0)<<3 | int(src[s+1])
			s += 2
		case tagCopy2:
			if s+3 > len(src) {
				return ErrCorrupt
			}
			length = 1 + int(tag>>2)
			offset = int(binary.LittleEndian.Uint16(src[s+1:]))
			s += 3
		case tagCopy4:
			if s+5 > len(src) {
				return ErrCorrupt
			}
			length = 1 + int(tag>>2)
			u := binary.LittleEndian.Uint32(src[s+1:])
			if u > maxDecodedLen {
				return ErrCorrupt
			}
			offset = int(u)
			s += 5
		}
		if offset <= 0 || offset > d || d+length > len(dst) {
			return ErrCorrupt
		}
		// Overlapping copies (offset < length) repeat recent output, so
		// a forward byte loop is the semantics, not an optimization
		// fallback. copy() would read stale bytes.
		for i := 0; i < length; i++ {
			dst[d+i] = dst[d+i-offset]
		}
		d += length
	}
	if d != len(dst) {
		return ErrCorrupt
	}
	return nil
}

// Encode compresses src into the block format. The output always starts
// with the uvarint preamble; an empty src encodes to just the preamble
// byte 0x00.
func Encode(src []byte) []byte {
	if len(src) > maxDecodedLen {
		// The preamble cannot represent it; callers never get close
		// (request bodies are capped far below 4 GiB).
		panic(fmt.Sprintf("snappy: source too large: %d", len(src)))
	}
	dst := make([]byte, 0, binary.MaxVarintLen32+len(src)+len(src)/6+8)
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	// Compress in independent 64 KiB windows so every match offset fits
	// the 2-byte copy2 form.
	for len(src) > 0 {
		blk := src
		if len(blk) > maxBlockSize {
			blk = blk[:maxBlockSize]
		}
		dst = encodeBlock(dst, blk)
		src = src[len(blk):]
	}
	return dst
}

const (
	maxBlockSize  = 1 << 16
	hashTableBits = 14
	minMatchLen   = 4
)

// encodeBlock appends the element stream for one ≤64 KiB window: a
// greedy scan with a 4-byte hash table, emitting a literal for the gap
// before each match and extending every match as far as it goes.
func encodeBlock(dst, src []byte) []byte {
	if len(src) < minMatchLen {
		return emitLiteral(dst, src)
	}
	var table [1 << hashTableBits]int32 // candidate position +1; 0 = empty
	lit := 0                            // start of the pending literal run
	i := 0
	for i+minMatchLen <= len(src) {
		h := hash4(binary.LittleEndian.Uint32(src[i:]))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || binary.LittleEndian.Uint32(src[cand:]) != binary.LittleEndian.Uint32(src[i:]) {
			i++
			continue
		}
		// Extend the match beyond the seed 4 bytes.
		length := minMatchLen
		for i+length < len(src) && src[cand+length] == src[i+length] {
			length++
		}
		dst = emitLiteral(dst, src[lit:i])
		dst = emitCopy(dst, i-cand, length)
		i += length
		lit = i
	}
	return emitLiteral(dst, src[lit:])
}

func hash4(u uint32) uint32 {
	return (u * 0x1e35a7bd) >> (32 - hashTableBits)
}

// emitLiteral appends a literal element (split if over the one-extra-
// byte length form's reach; blocks are ≤64 KiB so two bytes suffice).
func emitLiteral(dst, lit []byte) []byte {
	for len(lit) > 0 {
		n := len(lit)
		switch {
		case n <= 60:
			dst = append(dst, byte(n-1)<<2|tagLiteral)
		case n <= 1<<8:
			dst = append(dst, 60<<2|tagLiteral, byte(n-1))
		default:
			if n > 1<<16 {
				n = 1 << 16
			}
			dst = append(dst, 61<<2|tagLiteral, byte(n-1), byte((n-1)>>8))
		}
		dst = append(dst, lit[:n]...)
		lit = lit[n:]
	}
	return dst
}

// emitCopy appends copy elements covering length bytes at the given
// offset. Long matches chunk into 64-byte copy2 elements; the tail picks
// copy1 when it fits (short length, offset < 2048), else copy2.
func emitCopy(dst []byte, offset, length int) []byte {
	for length >= 68 {
		dst = append(dst, 63<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	if length > 64 {
		// Leave a tail in 4..64 so the final element is always valid.
		dst = append(dst, 59<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 60
	}
	if length >= 4 && length <= 11 && offset < 2048 {
		dst = append(dst, byte(offset>>8)<<5|byte(length-4)<<2|tagCopy1, byte(offset))
		return dst
	}
	return append(dst, byte(length-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
}
