package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTracerCapturesInOrder(t *testing.T) {
	tr := NewTracer(16, nil)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{TimeMS: int64(i), Process: "web", Type: EventWrite, Bytes: i})
	}
	events := tr.Events()
	if len(events) != 5 {
		t.Fatalf("captured %d events, want 5", len(events))
	}
	for i, e := range events {
		if e.TimeMS != int64(i) {
			t.Fatalf("event %d at t=%d", i, e.TimeMS)
		}
	}
	st := tr.Stats()
	if st.Observed != 5 || st.Captured != 5 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.EncodedBytes == 0 {
		t.Error("encode work not accounted")
	}
}

func TestTracerRingOverflowDropsOldest(t *testing.T) {
	tr := NewTracer(4, nil)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{TimeMS: int64(i)})
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d, want 4", len(events))
	}
	if events[0].TimeMS != 6 || events[3].TimeMS != 9 {
		t.Errorf("ring window = [%d..%d], want [6..9]", events[0].TimeMS, events[3].TimeMS)
	}
	if tr.Stats().Dropped != 6 {
		t.Errorf("dropped = %d, want 6", tr.Stats().Dropped)
	}
}

func TestTracerFilter(t *testing.T) {
	onlyConnect := func(e *Event) bool { return e.Type == EventConnect }
	tr := NewTracer(16, onlyConnect)
	tr.Emit(Event{Type: EventConnect})
	tr.Emit(Event{Type: EventRead})
	tr.Emit(Event{Type: EventWrite})
	tr.Emit(Event{Type: EventConnect})
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("filter kept %d events, want 2", got)
	}
	st := tr.Stats()
	if st.Observed != 4 || st.Captured != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Encoding happens before filtering (ring-driver semantics).
	if st.EncodedBytes == 0 {
		t.Error("filtered events must still cost encoding")
	}
}

func TestEventEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := Event{
			TimeMS:  rng.Int63n(1 << 40),
			PID:     rng.Intn(1 << 16),
			Process: "proc" + string(rune('a'+rng.Intn(26))),
			Type:    EventType(1 + rng.Intn(5)),
			FD:      rng.Intn(1024),
			Local:   "10.0.0.1:80",
			Remote:  "10.0.0.2:12345",
			Bytes:   rng.Intn(1 << 20),
		}
		buf := appendEvent(nil, &e)
		got, n, ok := DecodeEvent(buf)
		return ok && n == len(buf) && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeEventTruncated(t *testing.T) {
	e := Event{TimeMS: 5, Process: "web", Type: EventRead, Local: "a:1", Remote: "b:2", Bytes: 9}
	buf := appendEvent(nil, &e)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, ok := DecodeEvent(buf[:cut]); ok {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestEventTypeString(t *testing.T) {
	names := map[EventType]string{
		EventConnect: "connect", EventAccept: "accept", EventRead: "read",
		EventWrite: "write", EventClose: "close", EventType(0): "unknown",
	}
	for et, want := range names {
		if got := et.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(et), got, want)
		}
	}
}

func TestPacketCapture(t *testing.T) {
	pc := NewPacketCapture(8)
	pc.Capture(Packet{TimeMS: 1500, Src: "a:1", Dst: "b:2", Payload: make([]byte, 100)})
	pc.Capture(Packet{TimeMS: 1600, Src: "a:1", Dst: "b:2", Payload: make([]byte, 4)})
	pc.Capture(Packet{TimeMS: 1700, Src: "b:2", Dst: "c:3", Payload: make([]byte, 50)})

	st := pc.Stats()
	if st.Records != 3 {
		t.Fatalf("records = %d, want 3", st.Records)
	}
	// Payloads snap to 8 bytes: 16+8 + 16+4 + 16+8 = 68.
	if st.Bytes != 68 {
		t.Errorf("bytes = %d, want 68 (snaplen truncation)", st.Bytes)
	}
	pairs := pc.AddressPairs()
	if pairs[[2]string{"a:1", "b:2"}] != 2 || pairs[[2]string{"b:2", "c:3"}] != 1 {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestPacketCaptureDefaultSnapLen(t *testing.T) {
	pc := NewPacketCapture(0)
	pc.Capture(Packet{Payload: make([]byte, 100)})
	if pc.Stats().Bytes != 116 {
		t.Errorf("default snaplen must keep whole payload: %d", pc.Stats().Bytes)
	}
}
