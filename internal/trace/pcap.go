package trace

import (
	"encoding/binary"
	"sync"
)

// Packet is one network packet offered to the capturer.
type Packet struct {
	// TimeMS is the capture timestamp in milliseconds.
	TimeMS int64
	// Src and Dst are endpoint addresses ("host:port").
	Src, Dst string
	// Payload is the packet body.
	Payload []byte
}

// DefaultSnapLen mirrors tcpdump's classic default capture length.
const DefaultSnapLen = 262144

// PacketCapture is a tcpdump-like capturer: each packet costs a record
// header write plus a bounded payload copy. Unlike the syscall tracer it
// records no process context, which is why the paper prefers sysdig: raw
// addresses must be mapped to components externally and break under NAT
// (§3.1). It is safe for concurrent use.
type PacketCapture struct {
	mu      sync.Mutex
	snapLen int
	records int
	bytes   int
	// keepRecords retains decoded headers for call-pair extraction.
	pairs map[[2]string]int
	buf   []byte
}

// NewPacketCapture creates a capturer; snapLen <= 0 uses DefaultSnapLen.
func NewPacketCapture(snapLen int) *PacketCapture {
	if snapLen <= 0 {
		snapLen = DefaultSnapLen
	}
	return &PacketCapture{snapLen: snapLen, pairs: map[[2]string]int{}}
}

// Capture records one packet: a 16-byte pcap record header plus the
// truncated payload copy, the real per-packet work tcpdump performs.
func (p *PacketCapture) Capture(pkt Packet) {
	p.mu.Lock()
	defer p.mu.Unlock()

	n := len(pkt.Payload)
	if n > p.snapLen {
		n = p.snapLen
	}
	// pcap record header: ts_sec, ts_usec, incl_len, orig_len.
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(pkt.TimeMS/1000))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(pkt.TimeMS%1000)*1000)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(n))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(pkt.Payload)))

	p.buf = p.buf[:0]
	p.buf = append(p.buf, hdr[:]...)
	p.buf = append(p.buf, pkt.Payload[:n]...)

	p.records++
	p.bytes += len(p.buf)
	p.pairs[[2]string{pkt.Src, pkt.Dst}]++
}

// PcapStats summarizes capture activity.
type PcapStats struct {
	// Records is the number of captured packets.
	Records int
	// Bytes is the total pcap record volume (headers + snapped payloads).
	Bytes int
}

// Stats returns a snapshot of the counters.
func (p *PacketCapture) Stats() PcapStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PcapStats{Records: p.records, Bytes: p.bytes}
}

// AddressPairs returns the observed (src, dst) address pairs with packet
// counts. Mapping these to components requires external knowledge of the
// address plan — the context gap relative to the syscall tracer.
func (p *PacketCapture) AddressPairs() map[[2]string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[[2]string]int, len(p.pairs))
	for k, v := range p.pairs {
		out[k] = v
	}
	return out
}
