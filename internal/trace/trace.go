// Package trace provides the call-graph capture substrate. The paper uses
// sysdig, a kernel-module syscall tracer, to observe which microservice
// components talk to each other without instrumenting the application
// (§3.1). This reproduction cannot load kernel modules, so the simulated
// network layer emits the same event stream the kernel would: one event
// per network syscall (connect/accept/read/write/close) carrying process
// context. The tracer performs real per-event work — binary encoding into
// a bounded ring buffer behind a user filter — so the overhead comparison
// of Fig. 5 measures an actual cost, and a tcpdump-like packet capturer
// (pcap.go) provides the comparison point with less context.
package trace

import (
	"encoding/binary"
	"sync"
)

// EventType enumerates the traced network syscalls.
type EventType int

// Traced syscall kinds.
const (
	// EventConnect is an outbound connection attempt.
	EventConnect EventType = iota + 1
	// EventAccept is an accepted inbound connection.
	EventAccept
	// EventRead is a read/recv on a socket.
	EventRead
	// EventWrite is a write/send on a socket.
	EventWrite
	// EventClose is a socket close.
	EventClose
)

// String returns the syscall name.
func (t EventType) String() string {
	switch t {
	case EventConnect:
		return "connect"
	case EventAccept:
		return "accept"
	case EventRead:
		return "read"
	case EventWrite:
		return "write"
	case EventClose:
		return "close"
	default:
		return "unknown"
	}
}

// Event is one captured syscall with process context (what sysdig's
// kernel driver attaches that raw packet capture cannot).
type Event struct {
	// TimeMS is the capture timestamp in milliseconds.
	TimeMS int64
	// PID is the emitting process id.
	PID int
	// Process is the component name owning the socket.
	Process string
	// Type is the traced syscall.
	Type EventType
	// FD is the socket file descriptor.
	FD int
	// Local and Remote are the socket endpoint addresses ("host:port").
	Local, Remote string
	// Bytes is the payload size for read/write events.
	Bytes int
}

// Filter selects which events are kept; nil keeps everything. Sieve
// installs a filter for network syscalls from the monitored components.
type Filter func(*Event) bool

// Stats summarizes tracer activity.
type Stats struct {
	// Observed counts all events offered to the tracer.
	Observed int
	// Captured counts events that passed the filter and were stored.
	Captured int
	// Dropped counts events evicted from the ring by overflow.
	Dropped int
	// EncodedBytes is the total size of the encoded event records, the
	// work the kernel driver would perform per event.
	EncodedBytes int
}

// Tracer is a sysdig-like event sink: bounded ring buffer, user filter,
// binary encoding per event. It is safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of oldest event
	count   int
	filter  Filter
	stats   Stats
	scratch []byte
}

// NewTracer creates a tracer with the given ring capacity (events). A
// zero or negative capacity defaults to 64k events, roughly sysdig's
// default buffer.
func NewTracer(capacity int, filter Filter) *Tracer {
	if capacity <= 0 {
		capacity = 64 * 1024
	}
	return &Tracer{ring: make([]Event, capacity), filter: filter}
}

// Emit offers an event to the tracer: it is encoded (the real per-event
// cost), filtered, and stored in the ring, evicting the oldest event on
// overflow.
func (t *Tracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Observed++

	// Encode first: the kernel driver serializes every event into the
	// shared ring before user-space filtering can see it.
	t.scratch = appendEvent(t.scratch[:0], &e)
	t.stats.EncodedBytes += len(t.scratch)

	if t.filter != nil && !t.filter(&e) {
		return
	}
	if t.count == len(t.ring) {
		t.start = (t.start + 1) % len(t.ring)
		t.count--
		t.stats.Dropped++
	}
	t.ring[(t.start+t.count)%len(t.ring)] = e
	t.count++
	t.stats.Captured++
}

// Events returns the captured events in arrival order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.ring[(t.start+i)%len(t.ring)]
	}
	return out
}

// Stats returns a snapshot of the tracer counters.
func (t *Tracer) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// appendEvent serializes an event in a compact binary format comparable
// to sysdig's on-ring record layout.
func appendEvent(dst []byte, e *Event) []byte {
	dst = binary.AppendVarint(dst, e.TimeMS)
	dst = binary.AppendVarint(dst, int64(e.PID))
	dst = binary.AppendUvarint(dst, uint64(len(e.Process)))
	dst = append(dst, e.Process...)
	dst = append(dst, byte(e.Type))
	dst = binary.AppendVarint(dst, int64(e.FD))
	dst = binary.AppendUvarint(dst, uint64(len(e.Local)))
	dst = append(dst, e.Local...)
	dst = binary.AppendUvarint(dst, uint64(len(e.Remote)))
	dst = append(dst, e.Remote...)
	dst = binary.AppendVarint(dst, int64(e.Bytes))
	return dst
}

// DecodeEvent parses a record produced by appendEvent; it is used by
// tests to verify the encoding is lossless and by tooling that replays
// persisted traces. It returns the event and the number of bytes
// consumed.
func DecodeEvent(buf []byte) (Event, int, bool) {
	var e Event
	off := 0
	read := func() (int64, bool) {
		v, n := binary.Varint(buf[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	readU := func() (uint64, bool) {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	readStr := func() (string, bool) {
		n, ok := readU()
		if !ok || off+int(n) > len(buf) {
			return "", false
		}
		s := string(buf[off : off+int(n)])
		off += int(n)
		return s, true
	}

	var ok bool
	var v int64
	if v, ok = read(); !ok {
		return e, 0, false
	}
	e.TimeMS = v
	if v, ok = read(); !ok {
		return e, 0, false
	}
	e.PID = int(v)
	if e.Process, ok = readStr(); !ok {
		return e, 0, false
	}
	if off >= len(buf) {
		return e, 0, false
	}
	e.Type = EventType(buf[off])
	off++
	if v, ok = read(); !ok {
		return e, 0, false
	}
	e.FD = int(v)
	if e.Local, ok = readStr(); !ok {
		return e, 0, false
	}
	if e.Remote, ok = readStr(); !ok {
		return e, 0, false
	}
	if v, ok = read(); !ok {
		return e, 0, false
	}
	e.Bytes = int(v)
	return e, off, true
}
