// Package promremote implements the Prometheus remote-write 1.0 wire
// payload — a snappy-compressed protobuf WriteRequest — with zero
// dependencies: a hand-rolled protobuf wire-format decoder (and an
// encoder for the client and tests) covering exactly the fields the
// receiver consumes, plus the deterministic label→series mapping that
// turns a Prometheus metric into sieve's (component, metric) model.
//
// The message subset (prometheus/prompb types, proto3 field numbers):
//
//	WriteRequest { repeated TimeSeries timeseries = 1; }
//	TimeSeries   { repeated Label labels = 1; repeated Sample samples = 2; }
//	Label        { string name = 1; string value = 2; }
//	Sample       { double value = 1; int64 timestamp = 2; }
//
// Unknown fields are skipped (forward compatibility: real senders attach
// metadata and exemplars); unknown wire types, truncated or overlong
// varints, and nested lengths that overrun their enclosing message are
// errors. The decoder is non-recursive and allocates proportionally to
// the decoded content, so a fuzzer-shaped input cannot blow the stack or
// amplify memory beyond its own size.
package promremote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// MetricNameLabel is the reserved Prometheus label carrying the metric
// name.
const MetricNameLabel = "__name__"

// ErrCorrupt reports an undecodable protobuf payload.
var ErrCorrupt = errors.New("promremote: corrupt protobuf payload")

// Label is one name/value pair of a series' identity.
type Label struct {
	Name  string
	Value string
}

// Sample is one observation: value at a millisecond timestamp (the
// remote-write wire unit, which is also sieve's native unit).
type Sample struct {
	Value       float64
	TimestampMS int64
}

// TimeSeries is one labeled series with its samples.
type TimeSeries struct {
	Labels  []Label
	Samples []Sample
}

// WriteRequest is the decoded request body.
type WriteRequest struct {
	TimeSeries []TimeSeries
}

// SampleCount returns the total number of samples across all series —
// the unit the server's per-request limit is expressed in.
func (w *WriteRequest) SampleCount() int {
	n := 0
	for i := range w.TimeSeries {
		n += len(w.TimeSeries[i].Samples)
	}
	return n
}

// protobuf wire types.
const (
	wireVarint = 0
	wireI64    = 1
	wireLen    = 2
	wireI32    = 5
)

// Unmarshal decodes a WriteRequest from protobuf wire format.
//
// The input is converted to one string up front; every label name and
// value is then a zero-allocation substring of it, the same trick the
// line-protocol parser uses to keep ingest allocation flat. That is safe
// because the store never retains sample strings — series keys are fresh
// concatenations and the WAL copies bytes — so the backing buffer dies
// with the request. A counting pre-pass sizes every slice exactly, so
// decoding a request costs one buffer conversion plus two short slice
// allocations per series.
func Unmarshal(data []byte) (*WriteRequest, error) {
	var w WriteRequest
	if err := UnmarshalInto(&w, data); err != nil {
		return nil, err
	}
	return &w, nil
}

// UnmarshalInto decodes a WriteRequest into w, reusing w's TimeSeries
// backing array and each element's Labels/Samples slices from a previous
// decode — the pooled form of Unmarshal, which makes steady-state decode
// allocation per request one string conversion (plus growth the first
// few requests). On error w holds partially decoded content and must not
// be read, but remains safe to reuse. Reused slices may pin the previous
// request's backing string until overwritten, which is bounded by one
// request's size per pooled scratch.
func UnmarshalInto(w *WriteRequest, data []byte) error {
	s := string(data)
	n, err := countMessages(s, 1)
	if err != nil {
		return err
	}
	if cap(w.TimeSeries) < n {
		w.TimeSeries = make([]TimeSeries, 0, n)
	}
	w.TimeSeries = w.TimeSeries[:0]
	for len(s) > 0 {
		field, typ, rest, err := readTag(s)
		if err != nil {
			return err
		}
		s = rest
		if field == 1 && typ == wireLen {
			msg, rest, err := readBytes(s)
			if err != nil {
				return err
			}
			s = rest
			// Extend in place so the element keeps its old Labels/Samples
			// capacity for unmarshalTimeSeriesInto to reuse.
			w.TimeSeries = w.TimeSeries[:len(w.TimeSeries)+1]
			if err := unmarshalTimeSeriesInto(&w.TimeSeries[len(w.TimeSeries)-1], msg); err != nil {
				return err
			}
			continue
		}
		if s, err = skipField(s, typ); err != nil {
			return err
		}
	}
	return nil
}

// countMessages skims data counting length-delimited occurrences of
// field, validating nothing beyond what a skip requires — the decode
// pass re-checks everything.
func countMessages(data string, field int) (int, error) {
	n := 0
	for len(data) > 0 {
		f, typ, rest, err := readTag(data)
		if err != nil {
			return 0, err
		}
		data = rest
		if f == field && typ == wireLen {
			n++
		}
		if data, err = skipField(data, typ); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// unmarshalTimeSeriesInto decodes one TimeSeries message into ts,
// reusing ts.Labels/ts.Samples capacity when it suffices.
func unmarshalTimeSeriesInto(ts *TimeSeries, data string) error {
	nLabels, nSamples := 0, 0
	for s := data; len(s) > 0; {
		f, typ, rest, err := readTag(s)
		if err != nil {
			return err
		}
		s = rest
		switch {
		case f == 1 && typ == wireLen:
			nLabels++
		case f == 2 && typ == wireLen:
			nSamples++
		}
		if s, err = skipField(s, typ); err != nil {
			return err
		}
	}
	if cap(ts.Labels) < nLabels {
		ts.Labels = make([]Label, 0, nLabels)
	}
	ts.Labels = ts.Labels[:0]
	if cap(ts.Samples) < nSamples {
		ts.Samples = make([]Sample, 0, nSamples)
	}
	ts.Samples = ts.Samples[:0]
	for len(data) > 0 {
		field, typ, rest, err := readTag(data)
		if err != nil {
			return err
		}
		data = rest
		if typ == wireLen && (field == 1 || field == 2) {
			msg, rest, err := readBytes(data)
			if err != nil {
				return err
			}
			data = rest
			switch field {
			case 1:
				l, err := unmarshalLabel(msg)
				if err != nil {
					return err
				}
				ts.Labels = append(ts.Labels, l)
			case 2:
				s, err := unmarshalSample(msg)
				if err != nil {
					return err
				}
				ts.Samples = append(ts.Samples, s)
			}
			continue
		}
		if data, err = skipField(data, typ); err != nil {
			return err
		}
	}
	return nil
}

func unmarshalLabel(data string) (Label, error) {
	var l Label
	for len(data) > 0 {
		field, typ, rest, err := readTag(data)
		if err != nil {
			return l, err
		}
		data = rest
		if typ == wireLen && (field == 1 || field == 2) {
			b, rest, err := readBytes(data)
			if err != nil {
				return l, err
			}
			data = rest
			if field == 1 {
				l.Name = b
			} else {
				l.Value = b
			}
			continue
		}
		if data, err = skipField(data, typ); err != nil {
			return l, err
		}
	}
	return l, nil
}

func unmarshalSample(data string) (Sample, error) {
	var s Sample
	for len(data) > 0 {
		field, typ, rest, err := readTag(data)
		if err != nil {
			return s, err
		}
		data = rest
		switch {
		case field == 1 && typ == wireI64:
			if len(data) < 8 {
				return s, ErrCorrupt
			}
			s.Value = math.Float64frombits(le64(data))
			data = data[8:]
		case field == 2 && typ == wireVarint:
			v, rest, err := readVarint(data)
			if err != nil {
				return s, err
			}
			data = rest
			s.TimestampMS = int64(v)
		default:
			var err error
			if data, err = skipField(data, typ); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// le64 reads a little-endian uint64 from the first 8 bytes of s (caller
// checked the length) — binary.LittleEndian needs a []byte, and
// converting would allocate.
func le64(s string) uint64 {
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}

// readVarint decodes a base-128 varint, rejecting truncated input and
// encodings longer than 10 bytes or carrying bits past the 64th.
func readVarint(data string) (uint64, string, error) {
	var v uint64
	for i := 0; i < len(data); i++ {
		b := data[i]
		if i == 9 && b > 1 {
			return 0, "", ErrCorrupt // overflows 64 bits
		}
		v |= uint64(b&0x7f) << (7 * i)
		if b < 0x80 {
			return v, data[i+1:], nil
		}
		if i == 9 {
			return 0, "", ErrCorrupt // 11th continuation byte
		}
	}
	return 0, "", ErrCorrupt
}

func readTag(data string) (field int, typ int, rest string, err error) {
	v, rest, err := readVarint(data)
	if err != nil {
		return 0, 0, "", err
	}
	if v>>3 == 0 || v>>3 > math.MaxInt32 {
		return 0, 0, "", ErrCorrupt
	}
	return int(v >> 3), int(v & 7), rest, nil
}

// readBytes decodes a length-delimited field, rejecting lengths that
// overrun the enclosing message.
func readBytes(data string) (string, string, error) {
	n, rest, err := readVarint(data)
	if err != nil {
		return "", "", err
	}
	if n > uint64(len(rest)) {
		return "", "", ErrCorrupt
	}
	return rest[:n], rest[n:], nil
}

func skipField(data string, typ int) (string, error) {
	switch typ {
	case wireVarint:
		_, rest, err := readVarint(data)
		return rest, err
	case wireI64:
		if len(data) < 8 {
			return "", ErrCorrupt
		}
		return data[8:], nil
	case wireLen:
		_, rest, err := readBytes(data)
		return rest, err
	case wireI32:
		if len(data) < 4 {
			return "", ErrCorrupt
		}
		return data[4:], nil
	default:
		// Groups (3/4) are pre-proto3 and never valid here.
		return "", ErrCorrupt
	}
}

// Marshal encodes a WriteRequest into protobuf wire format, fields in
// ascending number order — byte-compatible with what prompb produces for
// the same message, so the tests double as an interop pin.
func Marshal(w *WriteRequest) []byte {
	var dst []byte
	for i := range w.TimeSeries {
		dst = appendMessage(dst, 1, marshalTimeSeries(&w.TimeSeries[i]))
	}
	return dst
}

func marshalTimeSeries(ts *TimeSeries) []byte {
	var dst []byte
	for _, l := range ts.Labels {
		var lb []byte
		lb = appendMessage(lb, 1, []byte(l.Name))
		lb = appendMessage(lb, 2, []byte(l.Value))
		dst = appendMessage(dst, 1, lb)
	}
	for _, s := range ts.Samples {
		var sb []byte
		sb = append(sb, 1<<3|wireI64)
		sb = binary.LittleEndian.AppendUint64(sb, math.Float64bits(s.Value))
		sb = append(sb, 2<<3|wireVarint)
		sb = binary.AppendUvarint(sb, uint64(s.TimestampMS))
		dst = appendMessage(dst, 2, sb)
	}
	return dst
}

func appendMessage(dst []byte, field int, msg []byte) []byte {
	dst = append(dst, byte(field<<3|wireLen))
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}

// MapSeries resolves a label set to sieve's series identity:
// MetricNameLabel becomes the metric, componentLabel (the receiver's
// -remote-write-component-label, e.g. "job") becomes the component, and
// every remaining label folds into the metric name as a sorted
// `{k=v,...}` suffix — deterministic, so the same Prometheus series
// always lands in the same sieve series regardless of label wire order.
// Label names and values are sanitized: bytes that would collide with
// the series-key ("/") or line-protocol (",", " ", "\n", "\r", "\t")
// syntax become "_", keeping every mapped series round-trippable through
// EncodeLineProtocol and glob-queryable.
func MapSeries(labels []Label, componentLabel string) (component, metric string, err error) {
	var name string
	var rest []Label
	for _, l := range labels {
		switch l.Name {
		case MetricNameLabel:
			if name != "" {
				return "", "", fmt.Errorf("promremote: duplicate %s label", MetricNameLabel)
			}
			name = l.Value
		case componentLabel:
			if component != "" {
				return "", "", fmt.Errorf("promremote: duplicate %q label", componentLabel)
			}
			component = l.Value
		default:
			rest = append(rest, l)
		}
	}
	if name == "" {
		return "", "", fmt.Errorf("promremote: series has no %s label", MetricNameLabel)
	}
	if component == "" {
		return "", "", fmt.Errorf("promremote: series has no %q label (the component label the receiver maps on)", componentLabel)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].Name < rest[j].Name })
	for i := 1; i < len(rest); i++ {
		if rest[i].Name == rest[i-1].Name {
			return "", "", fmt.Errorf("promremote: duplicate %q label", rest[i].Name)
		}
	}
	metric = sanitize(name)
	if len(rest) > 0 {
		var b strings.Builder
		b.WriteString(metric)
		b.WriteByte('{')
		for i, l := range rest {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(sanitize(l.Name))
			b.WriteByte('=')
			b.WriteString(sanitize(l.Value))
		}
		b.WriteByte('}')
		metric = b.String()
	}
	return sanitize(component), metric, nil
}

// sanitize replaces bytes that are structural in the series key, the
// line protocol, or the fold syntax itself.
func sanitize(s string) string {
	clean := func(r rune) rune {
		switch r {
		case '/', ',', ' ', '\n', '\r', '\t', '=', '{', '}':
			return '_'
		}
		return r
	}
	return strings.Map(clean, s)
}
