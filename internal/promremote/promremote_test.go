package promremote

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"testing"
)

func sampleRequest() *WriteRequest {
	return &WriteRequest{TimeSeries: []TimeSeries{
		{
			Labels: []Label{
				{Name: "__name__", Value: "http_requests_total"},
				{Name: "job", Value: "api"},
				{Name: "instance", Value: "10.0.0.1:8080"},
			},
			Samples: []Sample{{Value: 1027, TimestampMS: 1500}, {Value: 1031.25, TimestampMS: 2000}},
		},
		{
			Labels:  []Label{{Name: "__name__", Value: "up"}, {Name: "job", Value: "db"}},
			Samples: []Sample{{Value: 1, TimestampMS: 1500}},
		},
	}}
}

// TestMarshalUnmarshalRoundTrip pins the codec against itself.
func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	want := sampleRequest()
	got, err := Unmarshal(Marshal(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.SampleCount() != 3 {
		t.Fatalf("SampleCount = %d, want 3", got.SampleCount())
	}
}

// TestUnmarshalGoldenBytes decodes a hand-assembled wire payload —
// independent of Marshal — so the decoder is pinned to the protobuf
// spec, not to our encoder's habits. The bytes are what prompb would
// produce for WriteRequest{ts{labels:[{__name__,up},{job,db}],
// samples:[{1, 1500}]}}.
func TestUnmarshalGoldenBytes(t *testing.T) {
	label := func(name, value string) []byte {
		var b []byte
		b = append(b, 0x0a, byte(len(name)))
		b = append(b, name...)
		b = append(b, 0x12, byte(len(value)))
		b = append(b, value...)
		return b
	}
	l1, l2 := label("__name__", "up"), label("job", "db")
	var sample []byte
	sample = append(sample, 0x09) // field 1, 64-bit
	sample = binary.LittleEndian.AppendUint64(sample, math.Float64bits(1))
	sample = append(sample, 0x10, 0xdc, 0x0b) // field 2 varint 1500
	var ts []byte
	ts = append(ts, 0x0a, byte(len(l1)))
	ts = append(ts, l1...)
	ts = append(ts, 0x0a, byte(len(l2)))
	ts = append(ts, l2...)
	ts = append(ts, 0x12, byte(len(sample)))
	ts = append(ts, sample...)
	var req []byte
	req = append(req, 0x0a, byte(len(ts)))
	req = append(req, ts...)

	got, err := Unmarshal(req)
	if err != nil {
		t.Fatal(err)
	}
	want := &WriteRequest{TimeSeries: []TimeSeries{{
		Labels:  []Label{{Name: "__name__", Value: "up"}, {Name: "job", Value: "db"}},
		Samples: []Sample{{Value: 1, TimestampMS: 1500}},
	}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden decode mismatch:\n got %+v\nwant %+v", got, want)
	}
	// And our encoder must emit exactly these bytes (interop pin).
	if enc := Marshal(want); !bytes.Equal(enc, req) {
		t.Fatalf("Marshal differs from prompb layout:\n got %x\nwant %x", enc, req)
	}
}

// TestUnmarshalSkipsUnknownFields pins forward compatibility: real
// senders attach metadata (WriteRequest field 3) and exemplars
// (TimeSeries field 3) that the receiver must ignore, not reject.
func TestUnmarshalSkipsUnknownFields(t *testing.T) {
	base := Marshal(sampleRequest())
	var in []byte
	// WriteRequest field 3 (metadata), length-delimited garbage.
	in = append(in, 0x1a, 0x03, 0x01, 0x02, 0x03)
	in = append(in, base...)
	// Field 7 varint, field 9 fixed32, field 8 fixed64 at top level.
	in = append(in, 0x38, 0xff, 0x01)
	in = append(in, 0x4d, 1, 2, 3, 4)
	in = append(in, 0x41, 1, 2, 3, 4, 5, 6, 7, 8)
	got, err := Unmarshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleRequest()) {
		t.Fatal("unknown fields changed the decoded message")
	}
}

// malformedPayloads is the corpus of invalid wire payloads: every entry
// must error, never panic.
func malformedPayloads() map[string][]byte {
	valid := Marshal(sampleRequest())
	truncated := append([]byte{}, valid[:len(valid)-3]...)
	overlongLen := []byte{0x0a, 0xff, 0xff, 0xff, 0xff, 0x7f} // length way past input
	return map[string][]byte{
		"truncated-message":   truncated,
		"truncated-varint":    {0x08, 0x80, 0x80, 0x80},
		"overlong-varint":     {0x08, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
		"varint-overflow-bit": {0x08, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"nested-len-overflow": overlongLen,
		"zero-field-number":   {0x02, 0x00},
		"group-wire-type":     {0x0b},
		"sample-short-double": {0x0a, 0x04, 0x12, 0x02, 0x09, 0x00},
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	for name, in := range malformedPayloads() {
		t.Run(name, func(t *testing.T) {
			if got, err := Unmarshal(in); err == nil {
				t.Fatalf("Unmarshal accepted malformed payload: %+v", got)
			}
		})
	}
}

func TestMapSeries(t *testing.T) {
	cases := []struct {
		name       string
		labels     []Label
		compLabel  string
		wantComp   string
		wantMetric string
		wantErr    bool
	}{
		{
			name: "plain",
			labels: []Label{
				{Name: "__name__", Value: "up"}, {Name: "job", Value: "db"},
			},
			compLabel: "job", wantComp: "db", wantMetric: "up",
		},
		{
			name: "folds-sorted-regardless-of-wire-order",
			labels: []Label{
				{Name: "zone", Value: "b"}, {Name: "job", Value: "api"},
				{Name: "__name__", Value: "http_requests_total"}, {Name: "code", Value: "200"},
			},
			compLabel: "job", wantComp: "api",
			wantMetric: "http_requests_total{code=200,zone=b}",
		},
		{
			name: "instance-as-component-label",
			labels: []Label{
				{Name: "__name__", Value: "up"}, {Name: "job", Value: "api"},
				{Name: "instance", Value: "10.0.0.1:8080"},
			},
			compLabel: "instance", wantComp: "10.0.0.1:8080",
			wantMetric: "up{job=api}",
		},
		{
			name: "sanitizes-structural-bytes",
			labels: []Label{
				{Name: "__name__", Value: "disk/used bytes"}, {Name: "job", Value: "a,b c"},
				{Name: "path", Value: "/var=data{x}"},
			},
			compLabel: "job", wantComp: "a_b_c",
			wantMetric: "disk_used_bytes{path=_var_data_x_}",
		},
		{name: "missing-name", labels: []Label{{Name: "job", Value: "x"}}, compLabel: "job", wantErr: true},
		{name: "missing-component", labels: []Label{{Name: "__name__", Value: "up"}}, compLabel: "job", wantErr: true},
		{
			name: "duplicate-label",
			labels: []Label{
				{Name: "__name__", Value: "up"}, {Name: "job", Value: "x"},
				{Name: "a", Value: "1"}, {Name: "a", Value: "2"},
			},
			compLabel: "job", wantErr: true,
		},
		{
			name: "duplicate-name-label",
			labels: []Label{
				{Name: "__name__", Value: "up"}, {Name: "__name__", Value: "down"},
				{Name: "job", Value: "x"},
			},
			compLabel: "job", wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			comp, metric, err := MapSeries(tc.labels, tc.compLabel)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("MapSeries = %q/%q, want error", comp, metric)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if comp != tc.wantComp || metric != tc.wantMetric {
				t.Fatalf("MapSeries = %q/%q, want %q/%q", comp, metric, tc.wantComp, tc.wantMetric)
			}
		})
	}
}

// FuzzRemoteWriteDecode: arbitrary bytes must never panic the decoder;
// a payload that decodes must survive a Marshal/Unmarshal round trip
// (unknown fields excepted — the re-marshal drops them, which is the
// documented contract).
func FuzzRemoteWriteDecode(f *testing.F) {
	f.Add(Marshal(sampleRequest()))
	f.Add([]byte{})
	for _, in := range malformedPayloads() {
		f.Add(in)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(Marshal(w))
		if err != nil {
			t.Fatalf("re-decode of re-marshal failed: %v", err)
		}
		if !reflect.DeepEqual(again, w) {
			t.Fatal("marshal/unmarshal round trip not a fixed point")
		}
		for _, ts := range w.TimeSeries {
			// Mapping must be total: error or valid identity, no panics.
			_, _, _ = MapSeries(ts.Labels, "job")
		}
	})
}

// bigRequest builds a request with nSeries series of nSamples each, the
// shape the allocation-scaling test feeds UnmarshalInto.
func bigRequest(nSeries, nSamples int) *WriteRequest {
	w := &WriteRequest{TimeSeries: make([]TimeSeries, nSeries)}
	for i := range w.TimeSeries {
		ts := &w.TimeSeries[i]
		ts.Labels = []Label{
			{Name: MetricNameLabel, Value: fmt.Sprintf("metric_%d", i)},
			{Name: "job", Value: "web"},
			{Name: "instance", Value: "host-1:9100"},
		}
		ts.Samples = make([]Sample, nSamples)
		for j := range ts.Samples {
			ts.Samples[j] = Sample{Value: float64(i*nSamples + j), TimestampMS: int64(j) * 1000}
		}
	}
	return w
}

// TestUnmarshalIntoAllocationScaling pins the pooled decoder's
// steady-state cost: after one warm-up decode, UnmarshalInto allocates a
// small constant per request — the one string conversion of the payload
// — independent of how many series the request carries. Unmarshal (the
// fresh-struct form) pays at least two slice allocations per series, so
// a regression that drops the reuse shows up as hundreds of allocs here.
func TestUnmarshalIntoAllocationScaling(t *testing.T) {
	for _, nSeries := range []int{16, 256} {
		data := Marshal(bigRequest(nSeries, 4))
		var w WriteRequest
		if err := UnmarshalInto(&w, data); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if err := UnmarshalInto(&w, data); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 2 {
			t.Errorf("UnmarshalInto(%d series): %.1f allocs/run after warm-up, want <= 2", nSeries, allocs)
		}
	}
}

// TestUnmarshalIntoMatchesUnmarshal pins reuse correctness: decoding a
// big request into scratch that previously held a bigger one yields
// exactly what a fresh Unmarshal does.
func TestUnmarshalIntoMatchesUnmarshal(t *testing.T) {
	big := Marshal(bigRequest(64, 8))
	small := Marshal(bigRequest(3, 2))
	var w WriteRequest
	if err := UnmarshalInto(&w, big); err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalInto(&w, small); err != nil {
		t.Fatal(err)
	}
	fresh, err := Unmarshal(small)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.TimeSeries, fresh.TimeSeries) {
		t.Fatal("reused decode differs from fresh decode")
	}
	if w.SampleCount() != 6 {
		t.Fatalf("SampleCount = %d, want 6", w.SampleCount())
	}
}
