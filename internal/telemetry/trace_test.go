package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestTraceRingRecordsSlowOpsOnly(t *testing.T) {
	r := NewTraceRing(8, 50*time.Millisecond, nil)
	op := r.Op("fast")
	sp := op.Start()
	sp.End() // far under threshold
	if got := r.Snapshot(0); len(got) != 0 {
		t.Fatalf("fast span recorded: %+v", got)
	}

	slow := r.Op("slow")
	sp = slow.Start()
	sp.start = time.Now().Add(-time.Second) // backdate instead of sleeping
	sp.Stage("phase1", 600*time.Millisecond)
	sp.FieldInt("items", 42)
	sp.Field("kind", "test")
	if d := sp.End(); d < time.Second {
		t.Fatalf("duration = %v, want >= 1s", d)
	}
	traces := r.Snapshot(0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Op != "slow" || len(tr.Stages) != 1 || tr.Stages[0].Name != "phase1" {
		t.Fatalf("trace = %+v", tr)
	}
	if len(tr.Fields) != 2 || tr.Fields[0].Value != "42" || tr.Fields[1].Value != "test" {
		t.Fatalf("fields = %+v", tr.Fields)
	}
}

func TestTraceRingEvictsOldestAndSortsSlowestFirst(t *testing.T) {
	r := NewTraceRing(3, 0, nil) // zero threshold: record everything
	op := r.Op("op")
	for _, ms := range []int{10, 40, 20, 30} {
		sp := op.Start()
		sp.start = time.Now().Add(-time.Duration(ms) * time.Millisecond)
		sp.End()
	}
	traces := r.Snapshot(0)
	if len(traces) != 3 {
		t.Fatalf("ring kept %d, want 3", len(traces))
	}
	// The 10ms trace (oldest) was evicted; order is slowest-first.
	for i := 1; i < len(traces); i++ {
		if traces[i].duration > traces[i-1].duration {
			t.Fatalf("not sorted slowest-first: %+v", traces)
		}
	}
	if traces[len(traces)-1].Millis < 15 {
		t.Fatalf("oldest trace not evicted: %+v", traces)
	}
	if got := r.Snapshot(2); len(got) != 2 {
		t.Fatalf("Snapshot(2) returned %d", len(got))
	}
	if r.Total() != 4 {
		t.Fatalf("total = %d, want 4", r.Total())
	}
}

func TestTraceRingLogsOncePerCrossing(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	r := NewTraceRing(8, 50*time.Millisecond, func(tr *Trace) {
		mu.Lock()
		logged = append(logged, tr.Op)
		mu.Unlock()
	})
	op := r.Op("cycle")
	runSlow := func() {
		sp := op.Start()
		sp.start = time.Now().Add(-time.Second)
		sp.End()
	}
	runFast := func() { sp := op.Start(); sp.End() }

	runSlow()
	runSlow() // still slow: no second log
	if len(logged) != 1 {
		t.Fatalf("logged %d times while persistently slow, want 1", len(logged))
	}
	runFast() // recovery resets the latch
	runSlow() // new crossing logs again
	if len(logged) != 2 {
		t.Fatalf("logged %d times after recovery+crossing, want 2", len(logged))
	}
}

func TestNegativeThresholdDisablesRecording(t *testing.T) {
	r := NewTraceRing(8, -1, nil)
	op := r.Op("anything")
	sp := op.Start()
	sp.start = time.Now().Add(-time.Minute)
	sp.End()
	if got := r.Snapshot(0); len(got) != 0 {
		t.Fatalf("negative threshold recorded traces: %+v", got)
	}
}

// The fast path — span start, stages, fields, sub-threshold end — must
// not allocate: spans wrap every request and pipeline cycle.
func TestFastPathSpanDoesNotAllocate(t *testing.T) {
	r := NewTraceRing(8, time.Hour, nil)
	op := r.Op("hot")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := op.Start()
		sp.Stage("a", time.Microsecond)
		sp.FieldInt("n", 7)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("fast-path span: %v allocs/op, want 0", allocs)
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(16, 0, func(*Trace) {})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			op := r.Op("worker")
			for i := 0; i < 200; i++ {
				sp := op.Start()
				sp.FieldInt("i", int64(i))
				sp.End()
				if i%10 == 0 {
					r.Snapshot(4)
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != 8*200 {
		t.Fatalf("total = %d, want %d", r.Total(), 8*200)
	}
}
