package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4): a `# HELP` and `# TYPE`
// comment per metric followed by its sample lines, histograms expanded
// to cumulative `_bucket{le="..."}` lines plus `_sum` and `_count`.
// Collect hooks run first so mirrored gauges are fresh. Output order
// is deterministic (sorted by metric name).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var bucketCounts []uint64
	for _, e := range r.collect() {
		if e.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		switch {
		case e.c != nil:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.c.Value())
		case e.gf != nil:
			fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(e.gf()))
		case e.g != nil:
			fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(e.g.Value()))
		case e.h != nil:
			h := e.h
			if cap(bucketCounts) < len(h.counts) {
				bucketCounts = make([]uint64, len(h.counts))
			}
			counts := bucketCounts[:len(h.counts)]
			n, sum := h.snapshot(counts)
			var cum uint64
			for i, b := range h.bounds {
				cum += counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", e.name, formatFloat(b), cum)
			}
			// The +Inf bucket equals the total count by construction.
			cum += counts[len(h.bounds)]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum)
			fmt.Fprintf(bw, "%s_sum %s\n", e.name, formatFloat(sum))
			fmt.Fprintf(bw, "%s_count %d\n", e.name, n)
		}
	}
	return bw.Flush()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Lint validates a Prometheus text exposition payload: metric-name and
// label syntax, TYPE declarations preceding their samples, parseable
// values, non-decreasing histogram buckets ending in a `+Inf` bucket
// that matches `_count`, and a `_sum` line per histogram. It is the
// exposition-format gate the CI scrape test runs over `GET /metrics`
// output; it returns the first violation found.
func Lint(data []byte) error {
	types := map[string]string{}    // base name -> declared TYPE
	seenSample := map[string]bool{} // base name -> sample emitted
	type histState struct {
		lastLE    float64
		infCount  uint64
		haveInf   bool
		haveSum   bool
		haveCount bool
		count     uint64
	}
	hists := map[string]*histState{}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validName(name) {
				return fmt.Errorf("line %d: invalid metric name %q in %s comment", lineNo, name, fields[1])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE comment missing type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", lineNo, fields[3])
				}
				if seenSample[name] {
					return fmt.Errorf("line %d: TYPE for %s appears after its samples", lineNo, name)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				types[name] = fields[3]
				if fields[3] == "histogram" {
					hists[name] = &histState{lastLE: math.Inf(-1)}
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if _, ok := hists[trimmed]; ok {
					base = trimmed
				}
				break
			}
		}
		seenSample[base] = true
		if _, declared := types[base]; !declared {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, name)
		}

		if hs, ok := hists[base]; ok && base != name {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: %s missing le label", lineNo, name)
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
					}
				}
				if bound <= hs.lastLE {
					return fmt.Errorf("line %d: histogram %s buckets not ascending (le=%q)", lineNo, base, le)
				}
				if value < 0 || value != math.Trunc(value) {
					return fmt.Errorf("line %d: bucket count %v not a non-negative integer", lineNo, value)
				}
				if uint64(value) < hs.infCount {
					return fmt.Errorf("line %d: histogram %s bucket counts not cumulative", lineNo, base)
				}
				hs.lastLE = bound
				hs.infCount = uint64(value)
				if math.IsInf(bound, 1) {
					hs.haveInf = true
				}
			case strings.HasSuffix(name, "_sum"):
				hs.haveSum = true
			case strings.HasSuffix(name, "_count"):
				hs.haveCount = true
				hs.count = uint64(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, hs := range hists {
		if !seenSample[name] {
			continue
		}
		if !hs.haveInf {
			return fmt.Errorf("histogram %s missing +Inf bucket", name)
		}
		if !hs.haveSum || !hs.haveCount {
			return fmt.Errorf("histogram %s missing _sum or _count", name)
		}
		if hs.count != hs.infCount {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", name, hs.count, hs.infCount)
		}
	}
	return nil
}

// parseSample parses `name{label="v",...} value [timestamp]`.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = map[string]string{}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			key := strings.TrimSpace(rest[:eq])
			if !validName(key) || strings.Contains(key, ":") {
				return "", nil, 0, fmt.Errorf("invalid label name %q", key)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' && j+1 < len(rest) {
					val.WriteByte(rest[j+1])
					j++
					continue
				}
				if c == '"' {
					rest = rest[j+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels[key] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
	} else {
		rest = rest[i:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q: %v", fields[1], err)
		}
	}
	return name, labels, value, nil
}
