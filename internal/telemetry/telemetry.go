// Package telemetry is sieved's self-observability layer: a
// dependency-free registry of counters, gauges, and fixed-bucket
// histograms whose hot-path updates are single atomic operations and
// allocate nothing (pinned by allocation tests), plus the Prometheus
// text exposition writer behind GET /metrics, the flattened Readings
// view the self-scrape loop feeds back into the TSDB, and the slow-op
// trace ring behind GET /debug/traces.
//
// Design rules, in the order they were chosen:
//
//   - Updates must be safe on the ingest and query hot paths: Counter,
//     Gauge, and Histogram mutate through sync/atomic only (no mutex,
//     no map lookup, no allocation). Callers hold the instrument
//     pointer, obtained once at wiring time from a Registry.
//   - Every instrument method is nil-receiver safe and a no-op on nil,
//     so instrumented packages (tsdb, server) carry optional instrument
//     pointers without sprinkling nil checks through their hot loops —
//     an uninstrumented store pays one predictable branch per update
//     site.
//   - Reads (exposition, self-scrape) take best-effort atomic
//     snapshots: a histogram scraped mid-update may be off by the
//     in-flight observation, which is the standard Prometheus client
//     contract.
//
// The package depends on the standard library alone.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; nil is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float metric stored as atomic bits. The
// zero value is ready to use; nil is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the current value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the current value (CAS loop; delta may be negative).
// No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets is the default histogram bucket layout for
// operation latencies, in seconds: 10µs to 10s, roughly 1-2.5-5 per
// decade. Fsync, chunk decode, and whole pipeline cycles all land
// inside it.
var DefLatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram: cumulative-on-read per-bucket
// atomic counters plus an atomic float sum. Observe is lock-free and
// allocation-free. Obtain histograms from a Registry (the bucket slice
// is fixed at creation); nil is a no-op.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets,
	// strictly ascending; an implicit +Inf bucket follows.
	bounds []float64
	// counts[i] counts observations v <= bounds[i] (and > bounds[i-1]);
	// counts[len(bounds)] is the +Inf bucket. Non-cumulative in memory,
	// accumulated at read time.
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation. Lock-free, allocation-free; no-op
// on a nil receiver. NaN observations are dropped (they would poison
// the sum and land in no meaningful bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || v != v {
		return
	}
	// Linear scan: the bucket list is short (~20) and latencies cluster
	// in the early buckets, so this beats binary search in practice and
	// keeps the loop branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start: the one-liner
// for latency call sites. No-op on a nil receiver.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot copies the per-bucket counts (non-cumulative) plus count and
// sum. Best-effort consistency: buckets are read one by one.
func (h *Histogram) snapshot(counts []uint64) (n uint64, sum float64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.count.Load(), math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the target bucket, the same estimator
// Prometheus's histogram_quantile uses. Returns NaN when the histogram
// is empty (or nil); observations in the +Inf bucket clamp to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	counts := make([]uint64, len(h.counts))
	total, _ := h.snapshot(counts)
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: clamp like Prometheus.
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			if c == 0 {
				return upper
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lower + (upper-lower)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// metric kinds as exposition TYPE names.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// metricEntry is one registered metric.
type metricEntry struct {
	name string
	help string
	kind string
	c    *Counter
	g    *Gauge
	gf   func() float64
	h    *Histogram
}

// Registry holds named metrics. Registration (Counter/Gauge/...) takes
// a mutex and may allocate; it happens once at wiring time. Updates go
// through the returned instrument pointers and never touch the
// registry. Reads (WritePrometheus, Readings) are snapshot-consistent
// per instrument.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metricEntry
	names   []string // sorted, rebuilt on registration
	hooks   []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metricEntry{}}
}

// validName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register get-or-creates an entry, panicking on a name/kind collision
// (a programming error, same contract as the component metrics
// registry).
func (r *Registry) register(name, help, kind string, make func() *metricEntry) *metricEntry {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := make()
	e.name, e.help, e.kind = name, help, kind
	r.metrics[name] = e
	r.names = append(r.names, name)
	sort.Strings(r.names)
	return e
}

// Counter returns the counter with the given name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func() *metricEntry {
		return &metricEntry{c: &Counter{}}
	}).c
}

// Gauge returns the gauge with the given name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func() *metricEntry {
		return &metricEntry{g: &Gauge{}}
	}).g
}

// GaugeFunc registers a gauge whose value is computed by fn at read
// time (exposition and self-scrape). fn must be safe for concurrent
// calls. Registering the same name twice panics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; ok {
		panic(fmt.Sprintf("telemetry: %s already registered", name))
	}
	r.metrics[name] = &metricEntry{name: name, help: help, kind: kindGauge, gf: fn}
	r.names = append(r.names, name)
	sort.Strings(r.names)
}

// Histogram returns the histogram with the given name, creating it on
// first use with the given finite bucket upper bounds (strictly
// ascending; nil means DefLatencyBuckets). An implicit +Inf bucket is
// always appended. Bounds are fixed at creation; a second call with
// different bounds returns the original histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, func() *metricEntry {
		return &metricEntry{h: newHistogram(bounds)}
	}).h
}

// OnCollect registers a hook run (in registration order) at the start
// of every WritePrometheus and Readings call, before instruments are
// read — the place to refresh gauges that mirror external state (store
// point counts, WAL sizes) from one snapshot instead of one callback
// per gauge.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// collect runs the hooks and returns the entries in sorted-name order.
func (r *Registry) collect() []*metricEntry {
	r.mu.RLock()
	hooks := r.hooks
	entries := make([]*metricEntry, len(r.names))
	for i, n := range r.names {
		entries[i] = r.metrics[n]
	}
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
	return entries
}

// Reading is one flattened metric value, the unit the self-scrape loop
// writes into the TSDB. Histograms expand to <name>_count, <name>_sum,
// <name>_p50, and <name>_p99 (quantiles omitted while empty), so
// latency distributions become analyzable series without a bucket
// explosion.
type Reading struct {
	Name  string
	Value float64
}

// Readings runs the collect hooks and returns every metric flattened
// to (name, value) pairs in deterministic (sorted-name) order.
func (r *Registry) Readings() []Reading {
	entries := r.collect()
	out := make([]Reading, 0, len(entries)+3*8)
	for _, e := range entries {
		switch {
		case e.c != nil:
			out = append(out, Reading{e.name, float64(e.c.Value())})
		case e.gf != nil:
			out = append(out, Reading{e.name, e.gf()})
		case e.g != nil:
			out = append(out, Reading{e.name, e.g.Value()})
		case e.h != nil:
			n := e.h.Count()
			out = append(out, Reading{e.name + "_count", float64(n)})
			out = append(out, Reading{e.name + "_sum", e.h.Sum()})
			if n > 0 {
				out = append(out, Reading{e.name + "_p50", e.h.Quantile(0.50)})
				out = append(out, Reading{e.name + "_p99", e.h.Quantile(0.99)})
			}
		}
	}
	return out
}
