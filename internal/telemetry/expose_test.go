package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "total requests")
	c.Add(7)
	g := r.Gauge("temp", "temperature")
	g.Set(-3.5)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP reqs_total total requests\n",
		"# TYPE reqs_total counter\n",
		"reqs_total 7\n",
		"# TYPE temp gauge\n",
		"temp -3.5\n",
		"# TYPE lat_seconds histogram\n",
		"lat_seconds_bucket{le=\"0.1\"} 2\n",
		"lat_seconds_bucket{le=\"1\"} 2\n",
		"lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"lat_seconds_sum 2.1\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("Lint rejected our own exposition: %v\n%s", err, out)
	}
}

func TestWritePrometheusRunsCollectHooks(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("mirrored", "")
	r.OnCollect(func() { g.Set(99) })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(buf.String(), "mirrored 99\n") {
		t.Fatalf("collect hook did not refresh gauge:\n%s", buf.String())
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "")
	r.Counter("aaa_total", "")
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("exposition not deterministic")
	}
	if strings.Index(a.String(), "aaa_total") > strings.Index(a.String(), "zzz_total") {
		t.Fatalf("metrics not sorted by name:\n%s", a.String())
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"sample without TYPE", "orphan_total 3\n"},
		{"TYPE after sample", "# TYPE x counter\nx 1\n# TYPE x counter\n"},
		{"bad type name", "# TYPE x widget\nx 1\n"},
		{"bad metric name", "# TYPE 2x counter\n2x 1\n"},
		{"bad value", "# TYPE x counter\nx notanumber\n"},
		{"unquoted label", "# TYPE x counter\nx{a=b} 1\n"},
		{"unterminated label", "# TYPE x counter\nx{a=\"b} 1\n"},
		{
			"non-ascending buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		},
		{
			"count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		},
		{
			"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		},
		{
			"missing sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		},
	}
	for _, tc := range cases {
		if err := Lint([]byte(tc.text)); err == nil {
			t.Errorf("%s: lint accepted invalid exposition:\n%s", tc.name, tc.text)
		}
	}
}

func TestLintAcceptsValidCorpus(t *testing.T) {
	valid := strings.Join([]string{
		`# HELP up whether the target is up`,
		`# TYPE up gauge`,
		`up 1`,
		`# TYPE reqs_total counter`,
		`reqs_total{method="get",path="/x\"y"} 1027 1395066363000`,
		`reqs_total{method="post"} 3`,
		`# TYPE h histogram`,
		`h_bucket{le="0.05"} 24054`,
		`h_bucket{le="+Inf"} 24588`,
		`h_sum 53423.1`,
		`h_count 24588`,
		``,
	}, "\n")
	if err := Lint([]byte(valid)); err != nil {
		t.Fatalf("lint rejected valid exposition: %v", err)
	}
}
