package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatalf("second registration returned a different counter")
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	called := false
	r.GaugeFunc("test_func", "computed", func() float64 { called = true; return 42 })
	rds := r.Readings()
	if !called {
		t.Fatalf("GaugeFunc not evaluated by Readings")
	}
	want := map[string]float64{"test_total": 5, "test_gauge": 1.5, "test_func": 42}
	for _, rd := range rds {
		if w, ok := want[rd.Name]; ok && rd.Value != w {
			t.Fatalf("reading %s = %v, want %v", rd.Name, rd.Value, w)
		}
		delete(want, rd.Name)
	}
	if len(want) != 0 {
		t.Fatalf("missing readings: %v", want)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments must read as zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("nil histogram quantile must be NaN")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %v, want 106", got)
	}
	counts := make([]uint64, len(h.counts))
	h.snapshot(counts)
	// 0.5 and 1 land in le=1; 1.5 in le=2; 3 in le=4; 100 in +Inf.
	wantCounts := []uint64{2, 1, 1, 1}
	for i, w := range wantCounts {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, counts[i], w, counts)
		}
	}
	// NaN must be dropped, not counted.
	h.Observe(math.NaN())
	if h.Count() != 5 {
		t.Fatalf("NaN observation was counted")
	}
	// Quantiles: interpolated within buckets, +Inf clamps to top bound.
	if q := h.Quantile(1.0); q != 4 {
		t.Fatalf("p100 = %v, want clamp to 4", q)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 2 {
		t.Fatalf("p50 = %v, want within (0, 2]", q)
	}
	empty := newHistogram([]float64{1})
	if !math.IsNaN(empty.Quantile(0.99)) {
		t.Fatalf("empty histogram quantile must be NaN")
	}
}

func TestHistogramReadingsFlatten(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("op_seconds", "op latency", []float64{0.1, 1})
	rds := r.Readings()
	byName := func(rds []Reading) map[string]float64 {
		m := map[string]float64{}
		for _, rd := range rds {
			m[rd.Name] = rd.Value
		}
		return m
	}
	m := byName(rds)
	if m["op_seconds_count"] != 0 || m["op_seconds_sum"] != 0 {
		t.Fatalf("empty histogram readings = %v", m)
	}
	if _, ok := m["op_seconds_p99"]; ok {
		t.Fatalf("empty histogram must omit quantile readings (NaN is unwritable)")
	}
	h.Observe(0.05)
	h.Observe(0.5)
	m = byName(r.Readings())
	if m["op_seconds_count"] != 2 || m["op_seconds_sum"] != 0.55 {
		t.Fatalf("histogram readings = %v", m)
	}
	for _, q := range []string{"op_seconds_p50", "op_seconds_p99"} {
		v, ok := m[q]
		if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v (ok=%v), want finite", q, v, ok)
		}
	}
}

func TestRegistryPanicsOnKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on counter-vs-gauge name collision")
		}
	}()
	r.Gauge("dual_total", "")
}

func TestRegistryRejectsInvalidNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "2leading", "has-dash", "has space", "has{brace"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted, want panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

// The zero-allocation pin for every hot-path update: counters, gauges,
// and histogram observations must not allocate — they run on the
// ingest, WAL, and query paths.
func TestHotPathUpdatesDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_seconds", "", nil)
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter.Add", func() { c.Add(1) }},
		{"counter.Inc", func() { c.Inc() }},
		{"gauge.Set", func() { g.Set(3.7) }},
		{"gauge.Add", func() { g.Add(1.1) }},
		{"histogram.Observe", func() { h.Observe(0.003) }},
		{"nil histogram.Observe", func() { (*Histogram)(nil).Observe(1) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestConcurrentUpdatesAreConsistent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_seconds", "", []float64{0.5})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), 0.25*workers*per; math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
}
