package telemetry

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpanParts bounds the per-span stage and field arrays. Spans are
// plain stack values sized for the operations sieved traces (a
// pipeline cycle has four stages; requests use a handful of fields);
// parts beyond the cap are dropped rather than allocated.
const maxSpanParts = 8

// TraceStage is one timed sub-step of a completed trace.
type TraceStage struct {
	Name     string  `json:"name"`
	Millis   float64 `json:"ms"`
	duration time.Duration
}

// TraceField is one key/value annotation on a completed trace —
// correlated counters (samples written, series scanned, cache hits)
// captured at operation time.
type TraceField struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Trace is one recorded slow operation, built only after a span
// crosses the ring's threshold (the fast path never materializes one).
type Trace struct {
	Op          string       `json:"op"`
	StartUnixMS int64        `json:"start_unix_ms"`
	Millis      float64      `json:"ms"`
	Stages      []TraceStage `json:"stages,omitempty"`
	Fields      []TraceField `json:"fields,omitempty"`
	duration    time.Duration
}

// TraceRing keeps the most recent slow operations — spans whose total
// duration crossed a fixed threshold — in a fixed-size ring.
// Sub-threshold spans touch nothing but one atomic load, so tracing
// every request and pipeline cycle is safe. Snapshot returns the
// retained traces sorted slowest-first, which is what GET /debug/traces
// serves.
type TraceRing struct {
	threshold time.Duration
	logFn     func(*Trace)

	mu    sync.Mutex
	buf   []*Trace
	next  int
	total uint64
}

// NewTraceRing creates a ring retaining the most recent `capacity`
// over-threshold traces. A zero threshold records every span (useful
// in tests); a negative threshold disables recording entirely. logFn,
// if non-nil, is called once per operation name each time that
// operation transitions from fast to slow (checkpoint-health style
// state-change logging, so a persistently slow op logs once, not once
// per request).
func NewTraceRing(capacity int, threshold time.Duration, logFn func(*Trace)) *TraceRing {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceRing{
		threshold: threshold,
		logFn:     logFn,
		buf:       make([]*Trace, 0, capacity),
	}
}

// Threshold returns the slow-op threshold the ring was built with.
func (r *TraceRing) Threshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.threshold
}

// Total returns the number of traces recorded since startup (including
// ones the ring has since evicted).
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

func (r *TraceRing) record(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
	} else {
		r.buf[r.next] = t
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Snapshot returns up to n retained traces, slowest first (n <= 0
// means all). The returned traces are immutable once recorded.
func (r *TraceRing) Snapshot(n int) []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*Trace, len(r.buf))
	copy(out, r.buf)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].duration > out[j].duration })
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Op is a named traced operation. Create one per operation at wiring
// time (ring.Op("write")); its Start method is the per-request entry
// point. The slow bit tracks the fast/slow state for once-per-crossing
// logging with one atomic load on the fast path.
type Op struct {
	ring *TraceRing
	name string
	slow atomic.Bool
}

// Op returns a handle for the named operation. Nil-receiver safe:
// spans started from a nil ring's ops are no-ops beyond timekeeping.
func (r *TraceRing) Op(name string) *Op {
	return &Op{ring: r, name: name}
}

// Span measures one in-flight operation. It is a plain value — fixed
// arrays, no pointers to itself — so the fast path (start, a few
// stages/fields, sub-threshold end) allocates nothing. Not safe for
// concurrent use; a span belongs to the goroutine that started it.
type Span struct {
	op    *Op
	start time.Time

	nstages   int
	stageName [maxSpanParts]string
	stageDur  [maxSpanParts]time.Duration

	nfields  int
	fieldKey [maxSpanParts]string
	fieldStr [maxSpanParts]string
	fieldInt [maxSpanParts]int64
	fieldIsI [maxSpanParts]bool
}

// Start begins a span for this operation.
func (o *Op) Start() Span {
	return Span{op: o, start: time.Now()}
}

// Stage records a named sub-step duration (dropped beyond the cap).
func (s *Span) Stage(name string, d time.Duration) {
	if s.nstages >= maxSpanParts {
		return
	}
	s.stageName[s.nstages] = name
	s.stageDur[s.nstages] = d
	s.nstages++
}

// Field attaches a string annotation (dropped beyond the cap).
func (s *Span) Field(key, value string) {
	if s.nfields >= maxSpanParts {
		return
	}
	s.fieldKey[s.nfields] = key
	s.fieldStr[s.nfields] = value
	s.nfields++
}

// FieldInt attaches an integer annotation. The integer is kept raw and
// only formatted if the span turns out slow, keeping the fast path
// allocation-free.
func (s *Span) FieldInt(key string, value int64) {
	if s.nfields >= maxSpanParts {
		return
	}
	s.fieldKey[s.nfields] = key
	s.fieldInt[s.nfields] = value
	s.fieldIsI[s.nfields] = true
	s.nfields++
}

// End completes the span and returns its duration. If the duration
// crossed the ring's threshold, the span is materialized into a Trace
// and recorded; on a fast→slow transition for this op the ring's logFn
// fires once. Sub-threshold ends cost one time.Since and one atomic
// load.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	o := s.op
	if o == nil || o.ring == nil {
		return d
	}
	r := o.ring
	if r.threshold < 0 || d < r.threshold {
		// Fast: reset the slow latch so the next crossing logs again.
		if o.slow.Load() {
			o.slow.Store(false)
		}
		return d
	}
	t := &Trace{
		Op:          o.name,
		StartUnixMS: s.start.UnixMilli(),
		Millis:      float64(d) / float64(time.Millisecond),
		duration:    d,
	}
	if s.nstages > 0 {
		t.Stages = make([]TraceStage, s.nstages)
		for i := 0; i < s.nstages; i++ {
			t.Stages[i] = TraceStage{
				Name:     s.stageName[i],
				Millis:   float64(s.stageDur[i]) / float64(time.Millisecond),
				duration: s.stageDur[i],
			}
		}
	}
	if s.nfields > 0 {
		t.Fields = make([]TraceField, s.nfields)
		for i := 0; i < s.nfields; i++ {
			v := s.fieldStr[i]
			if s.fieldIsI[i] {
				v = strconv.FormatInt(s.fieldInt[i], 10)
			}
			t.Fields[i] = TraceField{Key: s.fieldKey[i], Value: v}
		}
	}
	r.record(t)
	if o.slow.CompareAndSwap(false, true) && r.logFn != nil {
		r.logFn(t)
	}
	return d
}
