package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/sieve-microservices/sieve/internal/telemetry"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// ReservedComponent is the component namespace the self-scrape loop
// writes sieved's own telemetry under. While self-scrape is enabled,
// /write rejects payloads targeting it so application data and
// self-telemetry cannot collide, and the online pipeline's analysis
// surface filters it out so dogfooded metrics never leak into
// artifacts.
const ReservedComponent = "sieve"

// telemetrySet bundles every server-level instrument plus the shared
// registry and the slow-op trace ring. It is created once in New;
// handlers and the pipeline hold the instrument pointers, so hot-path
// updates never touch the registry.
type telemetrySet struct {
	reg      *telemetry.Registry
	storeTel *tsdb.StoreTelemetry

	// /write: request latency plus the accept/reject split.
	writeSeconds    *telemetry.Histogram
	ingestSamples   *telemetry.Counter
	parseRejects    *telemetry.Counter
	reservedRejects *telemetry.Counter
	storageErrors   *telemetry.Counter

	// /api/v1/write (Prometheus remote write): latency, accepted
	// samples, and the per-class reject split the backpressure contract
	// documents — snappy (400), protobuf (400), label/timestamp mapping
	// (400), size (413), sample limit (429) — plus dropped non-finite
	// values (staleness markers), which are not rejects.
	remoteWriteSeconds     *telemetry.Histogram
	remoteIngestSamples    *telemetry.Counter
	remoteSnappyRejects    *telemetry.Counter
	remoteProtoRejects     *telemetry.Counter
	remoteMappingRejects   *telemetry.Counter
	remoteSizeRejects      *telemetry.Counter
	remoteLimitRejects     *telemetry.Counter
	remoteDroppedNonFinite *telemetry.Counter

	// Query latency, split by how the engine can evaluate the request:
	// push-down aggregations ride chunk summaries, decode aggregations
	// must decompress, raw reads stream points out.
	querySeconds  *telemetry.Histogram
	rangePushdown *telemetry.Histogram
	rangeDecode   *telemetry.Histogram
	rangeRaw      *telemetry.Histogram

	// Online pipeline: whole-cycle plus the per-stage breakdown that
	// StageTimings already measures, lifted into histograms.
	cycleSeconds     *telemetry.Histogram
	assembleSeconds  *telemetry.Histogram
	reduceSeconds    *telemetry.Histogram
	depsSeconds      *telemetry.Histogram
	marshalSeconds   *telemetry.Histogram
	pipelineRuns     *telemetry.Counter
	pipelineFailures *telemetry.Counter
	forcedRecomputes *telemetry.Counter
	grangerHits      *telemetry.Counter
	grangerMisses    *telemetry.Counter

	// Self-scrape loop health.
	selfScrapes       *telemetry.Counter
	selfScrapeSamples *telemetry.Counter
	selfScrapeErrors  *telemetry.Counter

	// Slow-op tracing: one Op handle per traced operation.
	ring          *telemetry.TraceRing
	opWrite       *telemetry.Op
	opRemoteWrite *telemetry.Op
	opQuery       *telemetry.Op
	opRange       *telemetry.Op
	opCycle       *telemetry.Op
}

// newTelemetrySet builds the registry, every server instrument, the
// storage instrument set, the store-mirroring gauges, and the trace
// ring. store may not yet serve traffic: the caller installs storeTel
// via SetTelemetry before the first request.
func newTelemetrySet(store *tsdb.Sharded, slowOp time.Duration) *telemetrySet {
	reg := telemetry.NewRegistry()
	t := &telemetrySet{
		reg:      reg,
		storeTel: tsdb.NewStoreTelemetry(reg),

		writeSeconds: reg.Histogram("sieve_http_write_seconds",
			"POST /write request latency (read + parse + store)", nil),
		ingestSamples: reg.Counter("sieve_ingest_samples_total",
			"samples accepted into the store via /write"),
		parseRejects: reg.Counter("sieve_ingest_parse_rejects_total",
			"/write payloads rejected by the line-protocol parser"),
		reservedRejects: reg.Counter("sieve_ingest_reserved_rejects_total",
			"/write payloads rejected for targeting the reserved self-telemetry component"),
		storageErrors: reg.Counter("sieve_ingest_storage_errors_total",
			"/write requests failed by the storage engine (WAL append/fsync)"),

		remoteWriteSeconds: reg.Histogram("sieve_http_remote_write_seconds",
			"POST /api/v1/write request latency (read + snappy + proto + map + store)", nil),
		remoteIngestSamples: reg.Counter("sieve_remote_write_samples_total",
			"samples accepted into the store via /api/v1/write"),
		remoteSnappyRejects: reg.Counter("sieve_remote_write_snappy_rejects_total",
			"/api/v1/write payloads rejected by the snappy decoder (400)"),
		remoteProtoRejects: reg.Counter("sieve_remote_write_proto_rejects_total",
			"/api/v1/write payloads rejected by the protobuf decoder (400)"),
		remoteMappingRejects: reg.Counter("sieve_remote_write_mapping_rejects_total",
			"/api/v1/write payloads rejected by label mapping or timestamp bounds (400)"),
		remoteSizeRejects: reg.Counter("sieve_remote_write_size_rejects_total",
			"/api/v1/write payloads rejected for compressed or decompressed size (413)"),
		remoteLimitRejects: reg.Counter("sieve_remote_write_sample_limit_rejects_total",
			"/api/v1/write payloads rejected for exceeding the per-request sample limit (429)"),
		remoteDroppedNonFinite: reg.Counter("sieve_remote_write_dropped_nonfinite_total",
			"non-finite remote-write sample values dropped (Prometheus staleness markers)"),

		querySeconds: reg.Histogram("sieve_query_seconds",
			"GET /query request latency", nil),
		rangePushdown: reg.Histogram("sieve_query_range_pushdown_seconds",
			"GET /query_range latency for push-down aggregations (min/max/count/rate)", nil),
		rangeDecode: reg.Histogram("sieve_query_range_decode_seconds",
			"GET /query_range latency for decode aggregations (sum/avg)", nil),
		rangeRaw: reg.Histogram("sieve_query_range_raw_seconds",
			"GET /query_range latency for raw point reads", nil),

		cycleSeconds: reg.Histogram("sieve_pipeline_cycle_seconds",
			"whole online pipeline cycle duration", nil),
		assembleSeconds: reg.Histogram("sieve_pipeline_assemble_seconds",
			"pipeline dataset-assembly stage duration", nil),
		reduceSeconds: reg.Histogram("sieve_pipeline_reduce_seconds",
			"pipeline metric-reduction stage duration", nil),
		depsSeconds: reg.Histogram("sieve_pipeline_deps_seconds",
			"pipeline dependency-identification stage duration", nil),
		marshalSeconds: reg.Histogram("sieve_pipeline_marshal_seconds",
			"pipeline artifact-marshal stage duration", nil),
		pipelineRuns: reg.Counter("sieve_pipeline_runs_total",
			"completed pipeline cycles (artifact published)"),
		pipelineFailures: reg.Counter("sieve_pipeline_failures_total",
			"failed pipeline cycles (previous artifact kept)"),
		forcedRecomputes: reg.Counter("sieve_pipeline_forced_recomputes_total",
			"cycles that dropped all incremental state on the FullRecomputeEvery cadence"),
		grangerHits: reg.Counter("sieve_granger_cache_hits_total",
			"Granger pair tests served from the fingerprint cache"),
		grangerMisses: reg.Counter("sieve_granger_cache_misses_total",
			"Granger pair tests computed fresh"),

		selfScrapes: reg.Counter("sieve_selfscrape_total",
			"self-scrape passes (telemetry written into the store)"),
		selfScrapeSamples: reg.Counter("sieve_selfscrape_samples_total",
			"samples the self-scrape loop wrote under the reserved component"),
		selfScrapeErrors: reg.Counter("sieve_selfscrape_errors_total",
			"self-scrape passes that failed to write"),
	}
	t.ring = telemetry.NewTraceRing(64, slowOp, func(tr *telemetry.Trace) {
		slog.Warn("slow operation (entered slow state, retained in /debug/traces)",
			"op", tr.Op, "ms", tr.Millis, "threshold", slowOp)
	})
	t.opWrite = t.ring.Op("write")
	t.opRemoteWrite = t.ring.Op("remote_write")
	t.opQuery = t.ring.Op("query")
	t.opRange = t.ring.Op("query_range")
	t.opCycle = t.ring.Op("pipeline_cycle")

	// Store-state gauges, refreshed from one Stats snapshot per collect
	// instead of one store round trip per gauge.
	var snap struct {
		stats    tsdb.Stats
		segments int
		walBytes int64
		blocks   int
		maxTime  int64
	}
	reg.OnCollect(func() {
		snap.stats = store.Stats()
		snap.segments = store.WALSegments()
		snap.walBytes = store.WALSizeBytes()
		snap.blocks = store.BlockCount()
		snap.maxTime = store.MaxTime()
	})
	reg.GaugeFunc("sieve_store_points", "points resident in the store",
		func() float64 { return float64(snap.stats.Points) })
	reg.GaugeFunc("sieve_store_series", "distinct series in the store",
		func() float64 { return float64(snap.stats.Series) })
	reg.GaugeFunc("sieve_store_storage_bytes", "compressed bytes held by sealed chunks",
		func() float64 { return float64(snap.stats.StorageBytes) })
	reg.GaugeFunc("sieve_store_network_in_bytes", "wire bytes accepted by ingest",
		func() float64 { return float64(snap.stats.NetworkInBytes) })
	reg.GaugeFunc("sieve_store_network_out_bytes", "wire bytes acknowledged to writers",
		func() float64 { return float64(snap.stats.NetworkOutBytes) })
	reg.GaugeFunc("sieve_store_max_time_ms", "ingest high-water mark (ms)",
		func() float64 { return float64(snap.maxTime) })
	reg.GaugeFunc("sieve_store_checkpoint_failures", "failed checkpoint attempts since open",
		func() float64 { return float64(snap.stats.CheckpointFailures) })
	reg.GaugeFunc("sieve_wal_segments", "live WAL segments across shards",
		func() float64 { return float64(snap.segments) })
	reg.GaugeFunc("sieve_wal_size_bytes", "bytes held by live WAL segments",
		func() float64 { return float64(snap.walBytes) })
	reg.GaugeFunc("sieve_store_blocks", "published immutable blocks",
		func() float64 { return float64(snap.blocks) })
	return t
}

// Telemetry exposes the server's metric registry (embedders, tests).
func (s *Server) Telemetry() *telemetry.Registry { return s.tel.reg }

// handleMetrics serves the Prometheus text exposition of every
// registered metric.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.tel.reg.WritePrometheus(w)
}

// selfScrapeEnabled reports whether the reserved-component contract is
// in force.
func (s *Server) selfScrapeEnabled() bool { return s.opts.SelfScrapeInterval > 0 }

// advanceAppMaxTime lifts the application-data high-water mark to t.
// Monotonic under concurrent writers: losers of the CAS re-check
// against the new value.
func (s *Server) advanceAppMaxTime(t int64) {
	for {
		cur := s.appMaxTime.Load()
		if t <= cur || s.appMaxTime.CompareAndSwap(cur, t) {
			return
		}
	}
}

// analysisMaxTime returns the high-water mark the pipeline window
// slides against. Normally the store's MaxTime; with self-scrape
// enabled the store's mark includes wall-clock telemetry writes that
// analysis filters out, which would drag the window past application
// data ingested at older timestamps — so the window anchors to the
// newest /write-ingested sample instead. This keeps artifacts
// byte-identical with self-scrape on or off (TestSelfScrapeEquivalence).
func (s *Server) analysisMaxTime() int64 {
	if !s.selfScrapeEnabled() {
		return s.store.MaxTime()
	}
	return s.appMaxTime.Load()
}

// SelfScrapeOnce flattens the current registry state and writes it into
// the server's own store under the reserved component — the dogfooding
// path: sieved's telemetry becomes ordinary series, queryable through
// /query_range?component=sieve and durable under -data-dir. Histograms
// expand to _count/_sum/_p50/_p99 series; NaN and Inf readings (empty
// histograms) are skipped because the store has no representation for
// them. Returns the number of samples written.
func (s *Server) SelfScrapeOnce() (int, error) {
	ts := s.opts.SelfScrapeClock()
	readings := s.tel.reg.Readings()
	samples := make([]tsdb.Sample, 0, len(readings))
	for _, rd := range readings {
		if math.IsNaN(rd.Value) || math.IsInf(rd.Value, 0) {
			continue
		}
		samples = append(samples, tsdb.Sample{
			Component: ReservedComponent,
			// The sieve_ prefix is redundant inside the sieve component.
			Metric: strings.TrimPrefix(rd.Name, "sieve_"),
			T:      ts,
			V:      rd.Value,
		})
	}
	if err := s.store.WriteSamples(samples, 0); err != nil {
		s.tel.selfScrapeErrors.Inc()
		return 0, err
	}
	s.tel.selfScrapes.Inc()
	s.tel.selfScrapeSamples.Add(uint64(len(samples)))
	return len(samples), nil
}

// selfScrapeLoop runs SelfScrapeOnce every SelfScrapeInterval until ctx
// is done. Write failures are counted and logged once per failing
// state, not per tick.
func (s *Server) selfScrapeLoop(ctx context.Context) {
	ticker := time.NewTicker(s.opts.SelfScrapeInterval)
	defer ticker.Stop()
	failing := false
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if _, err := s.SelfScrapeOnce(); err != nil {
				if !failing {
					failing = true
					slog.Error("self-scrape failing", "err", err)
				}
			} else if failing {
				failing = false
				slog.Info("self-scrape recovered")
			}
		}
	}
}

// HealthCheck is one readiness check inside the /healthz body.
type HealthCheck struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// HealthResponse is the GET /healthz (and /readyz) body.
type HealthResponse struct {
	// Status is "ok" when every check passes, "degraded" otherwise.
	// /healthz always answers 200 (liveness: the process serves);
	// /readyz answers 503 while degraded.
	Status string                 `json:"status"`
	Checks map[string]HealthCheck `json:"checks"`
}

// health evaluates the readiness checks: recovery (complete by
// construction once the server answers — New replays blocks and WAL
// before returning), checkpoint health (a durable store whose
// checkpoints fail is accumulating WAL segments unboundedly), and the
// online loop (stalled when the driver is running but no cycle — not
// even an ErrNoData skip — has completed within 3x the interval).
func (s *Server) health() HealthResponse {
	checks := map[string]HealthCheck{
		"recovery": {OK: true, Detail: "store recovered before serving"},
	}
	st := s.store.Stats()
	ck := HealthCheck{OK: true}
	if st.LastCheckpointError != "" {
		ck.OK = false
		ck.Detail = "checkpoint failing (" +
			strconv.Itoa(st.CheckpointFailures) + " failures): " + st.LastCheckpointError
	} else if st.CheckpointFailures > 0 {
		ck.Detail = "recovered after " + strconv.Itoa(st.CheckpointFailures) + " failures"
	}
	checks["checkpoint"] = ck

	pl := HealthCheck{OK: true}
	if started := s.driverStartNS.Load(); started == 0 {
		pl.Detail = "driver not started"
	} else {
		last := started
		if v := s.lastCycleNS.Load(); v > last {
			last = v
		}
		if v := s.lastNoDataNS.Load(); v > last {
			last = v
		}
		if age := time.Duration(time.Now().UnixNano() - last); age > 3*s.opts.Interval {
			pl.OK = false
			pl.Detail = "online loop stalled: no completed cycle for " +
				age.Round(time.Second).String() + " (interval " + s.opts.Interval.String() + ")"
		}
	}
	checks["pipeline"] = pl

	resp := HealthResponse{Status: "ok", Checks: checks}
	for _, c := range checks {
		if !c.OK {
			resp.Status = "degraded"
		}
	}
	return resp
}

// handleHealthz is the liveness probe: always 200 while the process
// serves, with the readiness detail in the body.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.health())
}

// handleReadyz is the readiness probe: 503 while any check fails.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	w.Header().Set("Content-Type", "application/json")
	if h.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(h)
}

// TracesResponse is the GET /debug/traces body.
type TracesResponse struct {
	// ThresholdMS is the slow-op threshold; operations faster than it
	// are never retained.
	ThresholdMS float64 `json:"threshold_ms"`
	// Total counts traces recorded since startup, including evicted
	// ones.
	Total  uint64             `json:"total"`
	Traces []*telemetry.Trace `json:"traces"`
}

// handleTraces serves the slow-op ring, slowest first. ?n=K bounds the
// count (default: everything retained).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			httpError(w, http.StatusBadRequest, "bad n: %q", v)
			return
		}
		n = parsed
	}
	traces := s.tel.ring.Snapshot(n)
	if traces == nil {
		traces = []*telemetry.Trace{}
	}
	writeJSON(w, TracesResponse{
		ThresholdMS: float64(s.tel.ring.Threshold()) / float64(time.Millisecond),
		Total:       s.tel.ring.Total(),
		Traces:      traces,
	})
}

// analysisStore is the online pipeline's view of the store while
// self-scrape is enabled: every read surface (ReadStore, RangeQuerier,
// SeriesScanner) minus the reserved component, so dogfooded telemetry
// series are queryable over HTTP but invisible to dataset assembly —
// artifacts stay byte-identical with self-scrape on or off (pinned by
// TestSelfScrapeEquivalence).
type analysisStore struct {
	st *tsdb.Sharded
}

func reservedKey(key string) bool {
	return strings.HasPrefix(key, ReservedComponent+"/")
}

func (a analysisStore) Query(component, metric string, from, to int64) ([]tsdb.Point, error) {
	return a.st.Query(component, metric, from, to)
}

func (a analysisStore) SeriesKeys() []string {
	keys := a.st.SeriesKeys()
	out := keys[:0:0]
	for _, k := range keys {
		if !reservedKey(k) {
			out = append(out, k)
		}
	}
	return out
}

func dropReserved(results []tsdb.SeriesResult) []tsdb.SeriesResult {
	out := results[:0]
	for _, r := range results {
		if r.Component != ReservedComponent {
			out = append(out, r)
		}
	}
	return out
}

func (a analysisStore) QueryRange(ctx context.Context, q tsdb.RangeQuery) ([]tsdb.SeriesResult, error) {
	results, err := a.st.QueryRange(ctx, q)
	if err != nil {
		return nil, err
	}
	return dropReserved(results), nil
}

func (a analysisStore) QueryMatch(componentGlob, metricGlob string, from, to int64) ([]tsdb.SeriesResult, error) {
	results, err := a.st.QueryMatch(componentGlob, metricGlob, from, to)
	if err != nil {
		return nil, err
	}
	return dropReserved(results), nil
}

// ScanMatch filters the reserved component out of a streamed scan:
// begin hands the caller a compacted key slice and visits are remapped
// to its indices. The remap table is written in begin, which the store
// orders before every visit, so concurrent per-series visits read it
// safely.
func (a analysisStore) ScanMatch(componentGlob, metricGlob string, from, to int64, begin func(keys []string), visit tsdb.SeriesVisitor) error {
	var remap []int
	return a.st.ScanMatch(componentGlob, metricGlob, from, to, func(keys []string) {
		remap = make([]int, len(keys))
		kept := make([]string, 0, len(keys))
		for i, k := range keys {
			if reservedKey(k) {
				remap[i] = -1
				continue
			}
			remap[i] = len(kept)
			kept = append(kept, k)
		}
		begin(kept)
	}, func(seriesIdx int, t int64, v float64) {
		if ni := remap[seriesIdx]; ni >= 0 {
			visit(ni, t, v)
		}
	})
}
