package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/loadgen"
	"github.com/sieve-microservices/sieve/internal/metrics"
	"github.com/sieve-microservices/sieve/internal/promremote"
	"github.com/sieve-microservices/sieve/internal/snappy"
	"github.com/sieve-microservices/sieve/internal/trace"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// postRemote posts raw bytes to /api/v1/write with the remote-write
// headers and returns status, response headers, and body.
func postRemote(t *testing.T, base string, body []byte) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/api/v1/write", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-protobuf")
	req.Header.Set("Content-Encoding", "snappy")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// encodeRemote renders a WriteRequest exactly as a remote-write sender
// would put it on the wire.
func encodeRemote(req *promremote.WriteRequest) []byte {
	return snappy.Encode(promremote.Marshal(req))
}

func TestRemoteWriteStoresSamples(t *testing.T) {
	s, hs, c := newTestServer(t, Options{})
	samples := []tsdb.Sample{
		{Component: "web", Metric: "cpu", T: 500, V: 0.25},
		{Component: "web", Metric: "cpu", T: 1000, V: 0.5},
		{Component: "db", Metric: "qps", T: 500, V: 120},
	}
	n, err := c.WriteRemote(samples)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(samples) {
		t.Fatalf("acked %d samples, want %d", n, len(samples))
	}
	pts, err := s.Store().Query("web", "cpu", 0, 1<<40)
	if err != nil || len(pts) != 2 {
		t.Fatalf("web/cpu: %d points, err %v; want 2", len(pts), err)
	}
	if pts[0].V != 0.25 || pts[1].V != 0.5 || pts[0].T != 500 || pts[1].T != 1000 {
		t.Fatalf("web/cpu points = %+v", pts)
	}
	// Extra labels fold into the metric name as a sorted {k=v,...}
	// suffix — the documented mapping for real Prometheus senders whose
	// series carry more than __name__ and job.
	req := &promremote.WriteRequest{TimeSeries: []promremote.TimeSeries{{
		Labels: []promremote.Label{
			{Name: "instance", Value: "host-1:9100"},
			{Name: promremote.MetricNameLabel, Value: "cpu"},
			{Name: "job", Value: "web"},
		},
		Samples: []promremote.Sample{{Value: 1.5, TimestampMS: 1500}},
	}}}
	code, _, body := postRemote(t, hs.URL, encodeRemote(req))
	if code != http.StatusNoContent {
		t.Fatalf("folded-label write: status %d, body %s", code, body)
	}
	pts, err = s.Store().Query("web", "cpu{instance=host-1:9100}", 0, 1<<40)
	if err != nil || len(pts) != 1 {
		t.Fatalf("folded metric: %d points, err %v; want 1", len(pts), err)
	}
}

func TestRemoteWriteComponentLabelOption(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{RemoteWriteComponentLabel: "instance"})
	req := &promremote.WriteRequest{TimeSeries: []promremote.TimeSeries{{
		Labels: []promremote.Label{
			{Name: promremote.MetricNameLabel, Value: "cpu"},
			{Name: "instance", Value: "edge-7"},
		},
		Samples: []promremote.Sample{{Value: 2, TimestampMS: 500}},
	}}}
	code, _, body := postRemote(t, hs.URL, encodeRemote(req))
	if code != http.StatusNoContent {
		t.Fatalf("status %d, body %s", code, body)
	}
	if pts, err := s.Store().Query("edge-7", "cpu", 0, 1<<40); err != nil || len(pts) != 1 {
		t.Fatalf("edge-7/cpu: %d points, err %v; want 1", len(pts), err)
	}
	// Claiming __name__ as the component label cannot mean anything.
	if _, err := New(Options{RemoteWriteComponentLabel: promremote.MetricNameLabel}); err == nil {
		t.Fatal("New accepted __name__ as the component label")
	}
}

// TestRemoteWriteRejectClasses pins every documented reject: the status
// code, the Retry-After contract, and — most importantly — that a
// rejected request stores nothing.
func TestRemoteWriteRejectClasses(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{
		MaxBodyBytes:          256,
		RemoteWriteMaxBytes:   1 << 10,
		RemoteWriteMaxSamples: 4,
		RemoteWriteRetryAfter: 3 * time.Second,
	})
	series := func(n int, startT int64) *promremote.WriteRequest {
		req := &promremote.WriteRequest{TimeSeries: []promremote.TimeSeries{{
			Labels: []promremote.Label{
				{Name: promremote.MetricNameLabel, Value: "cpu"},
				{Name: "job", Value: "web"},
			},
		}}}
		for i := 0; i < n; i++ {
			req.TimeSeries[0].Samples = append(req.TimeSeries[0].Samples,
				promremote.Sample{Value: float64(i), TimestampMS: startT + int64(i)*500})
		}
		return req
	}
	// Incompressible payload: snappy falls back to literals, so the
	// compressed body tracks the input size and blows MaxBodyBytes.
	incompressible := make([]byte, 1<<10)
	x := uint32(2463534242)
	for i := range incompressible {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		incompressible[i] = byte(x)
	}
	cases := []struct {
		name       string
		body       []byte
		wantStatus int
		wantInBody string
	}{
		{"compressed over MaxBodyBytes", snappy.Encode(incompressible),
			http.StatusRequestEntityTooLarge, "compressed"},
		{"decompression bomb preamble", []byte{0x80, 0x80, 0x80, 0x80, 0x04}, // claims 1 GiB, carries nothing
			http.StatusRequestEntityTooLarge, "decompressed"},
		{"undecodable snappy preamble", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
			http.StatusBadRequest, "snappy"},
		{"corrupt snappy body", []byte{0x04, 0xf0}, // claims 4 literal bytes, truncated element
			http.StatusBadRequest, "snappy"},
		{"undecodable protobuf", snappy.Encode([]byte{0x0a}), // field 1 LEN, missing length
			http.StatusBadRequest, "protobuf"},
		{"missing metric name", encodeRemote(&promremote.WriteRequest{TimeSeries: []promremote.TimeSeries{{
			Labels:  []promremote.Label{{Name: "job", Value: "web"}},
			Samples: []promremote.Sample{{Value: 1, TimestampMS: 500}},
		}}}), http.StatusBadRequest, promremote.MetricNameLabel},
		{"missing component label", encodeRemote(&promremote.WriteRequest{TimeSeries: []promremote.TimeSeries{{
			Labels:  []promremote.Label{{Name: promremote.MetricNameLabel, Value: "cpu"}},
			Samples: []promremote.Sample{{Value: 1, TimestampMS: 500}},
		}}}), http.StatusBadRequest, "job"},
		{"sample limit", encodeRemote(series(5, 500)), http.StatusTooManyRequests, "limit"},
		{"timestamp past range", encodeRemote(&promremote.WriteRequest{TimeSeries: []promremote.TimeSeries{{
			Labels: []promremote.Label{
				{Name: promremote.MetricNameLabel, Value: "cpu"},
				{Name: "job", Value: "web"},
			},
			Samples: []promremote.Sample{{Value: 1, TimestampMS: tsdb.MaxTimestampMS + 1}},
		}}}), http.StatusBadRequest, "timestamp"},
		// Second series unmappable: the whole request must be rejected
		// before anything reaches the store — no partial garbage.
		{"atomic reject across series", encodeRemote(&promremote.WriteRequest{TimeSeries: []promremote.TimeSeries{
			{
				Labels: []promremote.Label{
					{Name: promremote.MetricNameLabel, Value: "cpu"},
					{Name: "job", Value: "web"},
				},
				Samples: []promremote.Sample{{Value: 1, TimestampMS: 500}},
			},
			{
				Labels:  []promremote.Label{{Name: "job", Value: "web"}},
				Samples: []promremote.Sample{{Value: 2, TimestampMS: 500}},
			},
		}}), http.StatusBadRequest, promremote.MetricNameLabel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, hdr, body := postRemote(t, hs.URL, tc.body)
			if code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", code, tc.wantStatus, body)
			}
			if !strings.Contains(body, tc.wantInBody) {
				t.Fatalf("body %q does not mention %q", body, tc.wantInBody)
			}
			if code == http.StatusTooManyRequests {
				if hdr.Get("Retry-After") != "3" {
					t.Fatalf("Retry-After = %q, want %q", hdr.Get("Retry-After"), "3")
				}
			}
			if pts := s.Store().Stats().Points; pts != 0 {
				t.Fatalf("reject stored %d points", pts)
			}
		})
	}
	// An exactly-at-limit request still lands.
	code, _, body := postRemote(t, hs.URL, encodeRemote(series(4, 500)))
	if code != http.StatusNoContent {
		t.Fatalf("at-limit write: status %d, body %s", code, body)
	}
	if pts := s.Store().Stats().Points; pts != 4 {
		t.Fatalf("stored %d points, want 4", pts)
	}
}

// TestRemoteWriteDropsNonFiniteValues: Prometheus staleness markers are
// NaN samples; they must be dropped and the rest of the request stored.
func TestRemoteWriteDropsNonFiniteValues(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{})
	req := &promremote.WriteRequest{TimeSeries: []promremote.TimeSeries{{
		Labels: []promremote.Label{
			{Name: promremote.MetricNameLabel, Value: "cpu"},
			{Name: "job", Value: "web"},
		},
		Samples: []promremote.Sample{
			{Value: math.NaN(), TimestampMS: 500},
			{Value: 0.75, TimestampMS: 1000},
			{Value: math.Inf(1), TimestampMS: 1500},
		},
	}}}
	code, hdr, body := postRemote(t, hs.URL, encodeRemote(req))
	if code != http.StatusNoContent {
		t.Fatalf("status %d, body %s", code, body)
	}
	if ack := hdr.Get("X-Sieve-Samples"); ack != "1" {
		t.Fatalf("acked %q samples, want 1 (non-finite dropped)", ack)
	}
	pts, err := s.Store().Query("web", "cpu", 0, 1<<40)
	if err != nil || len(pts) != 1 || pts[0].V != 0.75 {
		t.Fatalf("points %+v, err %v; want the single finite sample", pts, err)
	}
}

func TestRemoteWriteReservedComponent(t *testing.T) {
	_, _, c := newTestServer(t, Options{SelfScrapeInterval: time.Hour})
	_, err := c.WriteRemote([]tsdb.Sample{{Component: ReservedComponent, Metric: "cpu", T: 500, V: 1}})
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("want reserved-component reject, got %v", err)
	}
}

// teeWriter forwards line-protocol payloads to a client while keeping a
// copy, so the identical samples can be replayed through the
// remote-write on-ramp.
type teeWriter struct {
	inner    *Client
	payloads [][]byte
}

func (w *teeWriter) Write(p []byte) (int, error) {
	w.payloads = append(w.payloads, bytes.Clone(p))
	return w.inner.Write(p)
}

// rangeBody fetches a raw GET /query_range body: equivalence is pinned
// on the exact bytes a client sees.
func rangeBody(t *testing.T, base, query string) string {
	t.Helper()
	resp, err := http.Get(base + "/query_range?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query_range %s: status %d, body %s", query, resp.StatusCode, b)
	}
	return string(b)
}

// artifactSansElapsed fetches /artifact with the one nondeterministic
// field (elapsed_ms, wall-clock) removed, re-marshaled with sorted keys.
func artifactSansElapsed(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/artifact: status %d", resp.StatusCode)
	}
	delete(env, "elapsed_ms")
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRemoteWriteEquivalence is the acceptance pin for the new on-ramp:
// a realistic load session ingested once through line-protocol /write
// and once through /api/v1/write must be indistinguishable downstream —
// byte-identical /query_range responses and an identical analysis
// artifact — at 1 and 4 shards.
func TestRemoteWriteEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		opts := Options{AppName: "chain", Shards: shards, MinWindowSamples: 32}
		_, hsLine, cLine := newTestServer(t, opts)
		_, hsRemote, cRemote := newTestServer(t, opts)

		a, err := app.New(chainSpec(), 1)
		if err != nil {
			t.Fatal(err)
		}
		tr := trace.NewTracer(1<<18, nil)
		a.AttachTracer(tr)
		tee := &teeWriter{inner: cLine}
		coll, err := metrics.NewCollector(tee, a.Registries()...)
		if err != nil {
			t.Fatal(err)
		}
		if err := loadgen.DriveCollector(context.Background(), a, loadgen.Constant(400, 96), coll, 1); err != nil {
			t.Fatal(err)
		}
		g := callgraph.FromSyscallEvents(tr.Events())
		if err := cLine.PostCallGraph(g); err != nil {
			t.Fatal(err)
		}
		if err := cRemote.PostCallGraph(g); err != nil {
			t.Fatal(err)
		}

		// Replay the exact captured scrapes through remote write.
		var lineTotal, remoteTotal int
		for _, p := range tee.payloads {
			samples, err := tsdb.ParseLineProtocol(p)
			if err != nil {
				t.Fatal(err)
			}
			lineTotal += len(samples)
			n, err := cRemote.WriteRemote(samples)
			if err != nil {
				t.Fatal(err)
			}
			remoteTotal += n
		}
		if lineTotal == 0 || remoteTotal != lineTotal {
			t.Fatalf("shards=%d: remote acked %d samples, line path carried %d", shards, remoteTotal, lineTotal)
		}

		for _, q := range []string{
			"from=0&to=" + to62(),
			"component=*&metric=*rate*&from=0&to=" + to62(),
			"agg=max&step=60000&from=0&to=" + to62(),
		} {
			if lb, rb := rangeBody(t, hsLine.URL, q), rangeBody(t, hsRemote.URL, q); lb != rb {
				t.Fatalf("shards=%d: /query_range?%s differs between ingest paths", shards, q)
			}
		}

		infoL, err := cLine.RunPipeline()
		if err != nil {
			t.Fatal(err)
		}
		infoR, err := cRemote.RunPipeline()
		if err != nil {
			t.Fatal(err)
		}
		if infoL.Series == 0 || infoL.Clusters == 0 {
			t.Fatalf("shards=%d: pipeline analyzed nothing: %+v", shards, infoL)
		}
		if infoL.Series != infoR.Series || infoL.Clusters != infoR.Clusters {
			t.Fatalf("shards=%d: pipeline runs diverge: line %+v remote %+v", shards, infoL, infoR)
		}
		if la, ra := artifactSansElapsed(t, hsLine.URL), artifactSansElapsed(t, hsRemote.URL); la != ra {
			t.Fatalf("shards=%d: artifacts differ between ingest paths", shards)
		}
	}
}

func to62() string { return "4611686018427387904" } // 1<<62, beyond any test timestamp

// TestRemoteWriteEquivalenceSurvivesHardStop extends the pin across a
// crash: remote-written data goes through the same WAL as /write data,
// so after a kill (no shutdown, no checkpoint) both recover to
// byte-identical /query_range responses.
func TestRemoteWriteEquivalenceSurvivesHardStop(t *testing.T) {
	for _, shards := range []int{1, 4} {
		var samples []tsdb.Sample
		for step := int64(1); step <= 200; step++ {
			for _, comp := range []string{"web", "api", "db"} {
				for m := 0; m < 3; m++ {
					samples = append(samples, tsdb.Sample{
						Component: comp, Metric: "m" + strings.Repeat("x", m),
						T: step * 500, V: float64(m) + math.Sin(float64(step)/7),
					})
				}
			}
		}
		dirLine, dirRemote := t.TempDir(), t.TempDir()
		opts := func(dir string) Options {
			return Options{DataDir: dir, Fsync: "never", FlushInterval: -1, Shards: shards}
		}
		_, hsLine, cLine := newTestServer(t, opts(dirLine))
		_, hsRemote, cRemote := newTestServer(t, opts(dirRemote))
		if _, err := cLine.Write(tsdb.EncodeLineProtocol(samples)); err != nil {
			t.Fatal(err)
		}
		if n, err := cRemote.WriteRemote(samples); err != nil || n != len(samples) {
			t.Fatalf("remote write: %d acked, err %v", n, err)
		}
		q := "from=0&to=" + to62()
		want := rangeBody(t, hsLine.URL, q)
		if got := rangeBody(t, hsRemote.URL, q); got != want {
			t.Fatalf("shards=%d: pre-kill /query_range differs between ingest paths", shards)
		}
		// Hard stop both: listener gone, stores abandoned with live WALs.
		hsLine.Close()
		hsRemote.Close()
		s2Line, hs2Line, _ := newTestServer(t, opts(dirLine))
		s2Remote, hs2Remote, _ := newTestServer(t, opts(dirRemote))
		defer s2Line.Close()
		defer s2Remote.Close()
		if got := rangeBody(t, hs2Line.URL, q); got != want {
			t.Fatalf("shards=%d: line path not byte-identical after recovery", shards)
		}
		if got := rangeBody(t, hs2Remote.URL, q); got != want {
			t.Fatalf("shards=%d: remote path not byte-identical after recovery", shards)
		}
	}
}
