package server

import (
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/sieve-microservices/sieve/internal/promremote"
	"github.com/sieve-microservices/sieve/internal/snappy"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// handleRemoteWrite is POST /api/v1/write: the Prometheus remote-write
// 1.0 receiver. The body is a snappy-compressed protobuf WriteRequest;
// labels map to sieve's model via promremote.MapSeries (__name__ →
// metric, Options.RemoteWriteComponentLabel → component, the rest folded
// into the metric name), and the mapped samples feed the exact same
// IngestParsed path as /write — WAL coverage, partial-failure
// accounting, reserved-component enforcement, and window-anchor
// advancement are identical by construction (pinned by the equivalence
// suite in remotewrite_test.go).
//
// Backpressure contract, checked in this order so nothing is stored on a
// reject:
//
//	413 — decompressed size over RemoteWriteMaxBytes (read from the
//	      snappy preamble, before any allocation)
//	429 + Retry-After — more than RemoteWriteMaxSamples samples
//	400 — undecodable snappy/protobuf, unmappable labels, or a
//	      timestamp past the millisecond range
//	500 — storage errors, as on /write (clients must retry, not drop)
//
// Non-finite sample values (Prometheus staleness markers are NaN) are
// dropped and counted, not rejected: every live Prometheus sends them at
// target churn, and failing the whole request would make the receiver
// unusable against real agents.
func (s *Server) handleRemoteWrite(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := s.tel.opRemoteWrite.Start()
	defer func() {
		s.tel.remoteWriteSeconds.ObserveSince(start)
		sp.End()
	}()
	sc, _ := s.rwScratch.Get().(*remoteWriteScratch)
	if sc == nil {
		sc = &remoteWriteScratch{}
	}
	// Every buffer below is stored back on sc before use, so returning
	// the scratch on any exit path keeps whatever growth this request
	// caused.
	defer s.rwScratch.Put(sc)
	body, err := appendReadAll(sc.body[:0], io.LimitReader(r.Body, s.opts.MaxBodyBytes+1))
	sc.body = body
	if err != nil {
		s.writeErrors.Add(1)
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.opts.MaxBodyBytes {
		s.writeErrors.Add(1)
		s.tel.remoteSizeRejects.Inc()
		httpError(w, http.StatusRequestEntityTooLarge, "compressed payload exceeds %d bytes", s.opts.MaxBodyBytes)
		return
	}
	sp.FieldInt("bytes", int64(len(body)))
	// The preamble carries the decompressed length: enforce the limit
	// before allocating, so a 4-byte bomb claiming 4 GiB costs nothing.
	declen, _, err := snappy.DecodedLen(body)
	if err != nil {
		s.writeErrors.Add(1)
		s.tel.remoteSnappyRejects.Inc()
		httpError(w, http.StatusBadRequest, "snappy: undecodable preamble")
		return
	}
	if int64(declen) > s.opts.RemoteWriteMaxBytes {
		s.writeErrors.Add(1)
		s.tel.remoteSizeRejects.Inc()
		httpError(w, http.StatusRequestEntityTooLarge,
			"decompressed payload %d exceeds %d bytes", declen, s.opts.RemoteWriteMaxBytes)
		return
	}
	plain, err := snappy.AppendDecode(sc.plain, body)
	if err != nil {
		s.writeErrors.Add(1)
		s.tel.remoteSnappyRejects.Inc()
		httpError(w, http.StatusBadRequest, "snappy: %v", err)
		return
	}
	sc.plain = plain
	req := &sc.req
	if err := promremote.UnmarshalInto(req, plain); err != nil {
		s.writeErrors.Add(1)
		s.tel.remoteProtoRejects.Inc()
		httpError(w, http.StatusBadRequest, "protobuf: %v", err)
		return
	}
	if c := req.SampleCount(); c > s.opts.RemoteWriteMaxSamples {
		s.writeErrors.Add(1)
		s.tel.remoteLimitRejects.Inc()
		// Retry-After tells a well-behaved sender to back off and
		// re-shard its batches rather than hammer the same oversized
		// request.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RemoteWriteRetryAfter)))
		httpError(w, http.StatusTooManyRequests,
			"request carries %d samples, limit %d", c, s.opts.RemoteWriteMaxSamples)
		return
	}
	samples := sc.samples[:0]
	if cap(samples) < req.SampleCount() {
		samples = make([]tsdb.Sample, 0, req.SampleCount())
	}
	var batchMaxT int64
	dropped := 0
	for i := range req.TimeSeries {
		ts := &req.TimeSeries[i]
		component, metric, err := promremote.MapSeries(ts.Labels, s.opts.RemoteWriteComponentLabel)
		if err != nil {
			s.writeErrors.Add(1)
			s.tel.remoteMappingRejects.Inc()
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if s.selfScrapeEnabled() && component == ReservedComponent {
			s.writeErrors.Add(1)
			s.tel.reservedRejects.Inc()
			httpError(w, http.StatusBadRequest,
				"component %q is reserved for self-telemetry while self-scrape is enabled", ReservedComponent)
			return
		}
		for _, smp := range ts.Samples {
			if math.IsNaN(smp.Value) || math.IsInf(smp.Value, 0) {
				dropped++
				continue
			}
			if smp.TimestampMS > tsdb.MaxTimestampMS {
				// Same bound the line-protocol parser enforces: one
				// poisoned timestamp would drag the analysis window into
				// the far future forever.
				s.writeErrors.Add(1)
				s.tel.remoteMappingRejects.Inc()
				httpError(w, http.StatusBadRequest,
					"timestamp %d exceeds the millisecond range", smp.TimestampMS)
				return
			}
			if smp.TimestampMS > batchMaxT {
				batchMaxT = smp.TimestampMS
			}
			samples = append(samples, tsdb.Sample{
				Component: component, Metric: metric,
				T: smp.TimestampMS, V: smp.Value,
			})
		}
	}
	if dropped > 0 {
		s.tel.remoteDroppedNonFinite.Add(uint64(dropped))
	}
	sc.samples = samples
	sp.FieldInt("samples", int64(len(samples)))
	// Wire accounting charges the compressed bytes — that is what
	// crossed the network.
	n, err := s.store.IngestParsed(samples, len(body), start)
	if err != nil {
		s.writeErrors.Add(1)
		s.samples.Add(int64(n))
		s.tel.remoteIngestSamples.Add(uint64(n))
		status := http.StatusBadRequest
		if errors.Is(err, tsdb.ErrStorage) {
			status = http.StatusInternalServerError
			s.tel.storageErrors.Inc()
		}
		writeErrorBody(w, status, n, err)
		return
	}
	s.writes.Add(1)
	s.samples.Add(int64(n))
	s.tel.remoteIngestSamples.Add(uint64(n))
	if s.selfScrapeEnabled() {
		s.advanceAppMaxTime(batchMaxT)
	}
	w.Header().Set("X-Sieve-Samples", strconv.Itoa(n))
	w.WriteHeader(http.StatusNoContent)
}

// retryAfterSeconds renders a backoff duration as the whole-second
// Retry-After form, never below 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// remoteWriteScratch is one request's reusable buffers, pooled on
// Server.rwScratch. The decoded WriteRequest's label/value strings are
// substrings of a per-request conversion inside UnmarshalInto, so reuse
// pins at most one stale request's plaintext until overwritten.
type remoteWriteScratch struct {
	body    []byte
	plain   []byte
	req     promremote.WriteRequest
	samples []tsdb.Sample
}

// appendReadAll reads r to EOF into buf's storage (the pooled form of
// io.ReadAll), returning the filled slice.
func appendReadAll(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
