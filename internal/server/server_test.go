package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/app/sharelatex"
	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/loadgen"
	"github.com/sieve-microservices/sieve/internal/metrics"
	"github.com/sieve-microservices/sieve/internal/trace"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs, NewClient(hs.URL)
}

// chainSpec is a small three-component topology for fast server tests.
func chainSpec() app.Spec {
	return app.Spec{
		Name:   "chain",
		TickMS: 500,
		Components: []app.ComponentSpec{
			{
				Name: "lb", Addr: "10.9.0.1:80", ServiceMS: 2, CapacityPerInstance: 4000,
				Entry: true, Calls: []app.Call{{Target: "api", Prob: 1}},
				Families: []app.Family{
					{Base: "lb_rate", Driver: app.DriverRate, Noise: 0.02, Variants: []string{"mean", "p95"}},
					{Base: "lb_latency_ms", Driver: app.DriverLatency, Noise: 0.02},
				},
			},
			{
				Name: "api", Addr: "10.9.0.2:8080", ServiceMS: 8, CapacityPerInstance: 2000,
				Calls: []app.Call{{Target: "db", Prob: 0.9}},
				Families: []app.Family{
					{Base: "api_rate", Driver: app.DriverRate, Noise: 0.02},
					{Base: "api_util", Driver: app.DriverUtil, Noise: 0.02},
				},
			},
			{
				Name: "db", Addr: "10.9.0.3:5432", ServiceMS: 5, CapacityPerInstance: 1500,
				Families: []app.Family{
					{Base: "db_rate", Driver: app.DriverRate, Noise: 0.03},
					{Base: "db_latency_ms", Driver: app.DriverOwnLatency, Noise: 0.03},
				},
			},
		},
	}
}

// driveOverHTTP runs a load session against the app, shipping every
// scrape through the client's /write and uploading the traced call
// graph, exactly as an external deployment would.
func driveOverHTTP(t *testing.T, a *app.App, pattern loadgen.Pattern, c *Client) {
	t.Helper()
	tr := trace.NewTracer(1<<18, nil)
	a.AttachTracer(tr)
	coll, err := metrics.NewCollector(c, a.Registries()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadgen.DriveCollector(context.Background(), a, pattern, coll, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.PostCallGraph(callgraph.FromSyscallEvents(tr.Events())); err != nil {
		t.Fatal(err)
	}
}

// TestServerEndToEndShareLatex is the acceptance path: boot sieved on a
// loopback listener, drive a ShareLatex load session through HTTP
// /write, and assert /artifact returns a non-empty reduction and
// dependency graph with a live autoscaling signal.
func TestServerEndToEndShareLatex(t *testing.T) {
	_, _, c := newTestServer(t, Options{AppName: "sharelatex"})

	if _, err := c.Artifact(); !errors.Is(err, ErrNoArtifact) {
		t.Fatalf("artifact before any run: err = %v, want ErrNoArtifact", err)
	}

	a, err := sharelatex.New(42)
	if err != nil {
		t.Fatal(err)
	}
	driveOverHTTP(t, a, loadgen.Random(7, 150, 200, 2500), c)

	info, err := c.RunPipeline()
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 || info.Series == 0 || info.Clusters == 0 {
		t.Fatalf("run info = %+v", info)
	}

	res, err := c.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	art := res.Artifact
	if art.Reduction.TotalBefore() == 0 || art.Reduction.TotalAfter() == 0 {
		t.Fatalf("empty reduction: %d -> %d", art.Reduction.TotalBefore(), art.Reduction.TotalAfter())
	}
	if art.Reduction.TotalAfter() >= art.Reduction.TotalBefore() {
		t.Fatalf("reduction did not reduce: %d -> %d",
			art.Reduction.TotalBefore(), art.Reduction.TotalAfter())
	}
	if len(art.Graph.Edges) == 0 {
		t.Fatal("dependency graph is empty")
	}
	if res.Signal.Metric == "" || res.Signal.Relations == 0 {
		t.Fatalf("no autoscaling signal: %+v", res.Signal)
	}
	if !strings.Contains(res.Signal.Metric, "/") {
		t.Fatalf("signal %q is not a component/metric key", res.Signal.Metric)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Points == 0 || st.Series == 0 || st.Writes < 150 || st.Generation != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// The ingested series are queryable back out over HTTP.
	e := art.Graph.Edges[0]
	pts, err := c.Query(e.From, e.FromMetric, 0, st.MaxTimeMS+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatalf("query %s/%s returned no points", e.From, e.FromMetric)
	}
}

// TestServerWindowSlides verifies the online driver's sliding window:
// more ingest + another run advances the generation and the window end.
func TestServerWindowSlides(t *testing.T) {
	_, _, c := newTestServer(t, Options{
		AppName:          "chain",
		WindowMS:         50 * 500, // keep the window shorter than the session
		MinWindowSamples: 32,
	})
	a, err := app.New(chainSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	driveOverHTTP(t, a, loadgen.Random(5, 100, 100, 1500), c)
	first, err := c.RunPipeline()
	if err != nil {
		t.Fatal(err)
	}
	if got := first.End - first.Start; got > 50*500+1 {
		t.Fatalf("window spans %dms, want <= %d", got, 50*500+1)
	}

	coll, err := metrics.NewCollector(c, a.Registries()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadgen.DriveCollector(context.Background(), a, loadgen.Random(6, 60, 100, 1500), coll, 1); err != nil {
		t.Fatal(err)
	}
	second, err := c.RunPipeline()
	if err != nil {
		t.Fatal(err)
	}
	if second.Generation != first.Generation+1 {
		t.Fatalf("generation = %d, want %d", second.Generation, first.Generation+1)
	}
	if second.End <= first.End || second.Start <= first.Start {
		t.Fatalf("window did not slide: [%d,%d) then [%d,%d)",
			first.Start, first.End, second.Start, second.End)
	}

	res, err := c.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != second.Generation {
		t.Fatalf("artifact generation = %d, want %d", res.Generation, second.Generation)
	}
}

// TestServerWithoutCallGraph: with no topology the pipeline still runs,
// publishing a reduction with an empty dependency graph.
func TestServerWithoutCallGraph(t *testing.T) {
	_, _, c := newTestServer(t, Options{AppName: "chain", MinWindowSamples: 32})
	a, err := app.New(chainSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := metrics.NewCollector(c, a.Registries()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadgen.DriveCollector(context.Background(), a, loadgen.Random(5, 80, 100, 1500), coll, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunPipeline(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifact.Reduction.TotalAfter() == 0 {
		t.Fatal("no reduction without a call graph")
	}
	if len(res.Artifact.Graph.Edges) != 0 {
		t.Fatal("dependency edges without any call graph")
	}
}

// TestServerMalformedRequests drives every malformed-input class at the
// HTTP surface: the server must answer with a 4xx and keep serving,
// never panic and never store partial garbage.
func TestServerMalformedRequests(t *testing.T) {
	s, hs, c := newTestServer(t, Options{MaxBodyBytes: 1 << 10})
	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"write empty body", "POST", "/write", "", http.StatusBadRequest},
		{"write garbage", "POST", "/write", "complete garbage", http.StatusBadRequest},
		{"write missing timestamp", "POST", "/write", "web,metric=cpu value=1", http.StatusBadRequest},
		{"write bad timestamp", "POST", "/write", "web,metric=cpu value=1 12h", http.StatusBadRequest},
		{"write NaN value", "POST", "/write", "web,metric=cpu value=NaN 500", http.StatusBadRequest},
		{"write infinite value", "POST", "/write", "web,metric=cpu value=+Inf 500", http.StatusBadRequest},
		{"write empty component", "POST", "/write", ",metric=cpu value=1 500", http.StatusBadRequest},
		{"write bad line in batch", "POST", "/write", "web,metric=cpu value=1 500\ngarbage", http.StatusBadRequest},
		{"write oversized body", "POST", "/write", strings.Repeat("x", 2<<10), http.StatusRequestEntityTooLarge},
		{"write wrong method", "GET", "/write", "", http.StatusMethodNotAllowed},
		{"query missing params", "GET", "/query", "", http.StatusBadRequest},
		{"query unknown series", "GET", "/query?component=no&metric=pe", "", http.StatusNotFound},
		{"query bad from", "GET", "/query?component=a&metric=b&from=xyz", "", http.StatusBadRequest},
		{"query bad to", "GET", "/query?component=a&metric=b&to=1.5", "", http.StatusBadRequest},
		{"artifact before first run", "GET", "/artifact", "", http.StatusNotFound},
		{"run with empty store", "POST", "/run", "", http.StatusConflict},
		{"callgraph invalid json", "POST", "/callgraph", "{not json", http.StatusBadRequest},
		{"callgraph wrong shape", "POST", "/callgraph", `{"caller":"a"}`, http.StatusBadRequest},
		{"unknown path", "GET", "/nope", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, hs.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("%s %s -> %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
			}
		})
	}
	if got := s.Store().Stats().Points; got != 0 {
		t.Fatalf("malformed traffic stored %d points", got)
	}
	// The server survived all of it and still ingests good data.
	if n, err := c.Write([]byte("web,metric=cpu value=0.5 500\n")); err != nil || n != 1 {
		t.Fatalf("healthy write after abuse: n=%d err=%v", n, err)
	}
}

// TestServerOptionValidation pins New's rejection of nonsense windows.
func TestServerOptionValidation(t *testing.T) {
	if _, err := New(Options{StepMS: 1000, WindowMS: 500}); err == nil {
		t.Fatal("step > window must be rejected")
	}
}
