package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"reflect"
	"sync"
	"testing"

	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// writeQuerySeries ingests a deterministic multi-series dataset through
// the HTTP write path.
func writeQuerySeries(t *testing.T, c *Client) {
	t.Helper()
	var samples []tsdb.Sample
	for i := 0; i < 200; i++ {
		samples = append(samples,
			tsdb.Sample{Component: "web-a", Metric: "cpu_util", T: int64(i) * 100, V: float64(i % 10)},
			tsdb.Sample{Component: "web-b", Metric: "cpu_util", T: int64(i) * 100, V: float64(i % 7)},
			tsdb.Sample{Component: "db", Metric: "mem_used", T: int64(i)*100 + 50, V: float64(i)},
		)
	}
	if _, err := c.Write(tsdb.EncodeLineProtocol(samples)); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRangeEndpoint(t *testing.T) {
	s, hs, c := newTestServer(t, Options{Shards: 4})
	writeQuerySeries(t, c)

	// Matcher over the web components, raw: must byte-equal per-series
	// /query round trips merged in key order.
	res, err := c.QueryRange(tsdb.RangeQuery{Component: "web-*", Metric: "*", From: 0, To: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Component != "web-a" || res[1].Component != "web-b" {
		t.Fatalf("unexpected matcher results: %+v", res)
	}
	for _, r := range res {
		want, err := c.Query(r.Component, r.Metric, 0, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Points, want) {
			t.Fatalf("%s/%s: matcher points differ from /query", r.Component, r.Metric)
		}
	}

	// Aggregated: one avg bucket per 5000ms, server-side push-down. The
	// local store must agree with the HTTP round trip exactly (JSON
	// float64 round-trips bit-exact via Go's shortest-form encoding).
	aq := tsdb.RangeQuery{Component: "*", Metric: "cpu*", From: 0, To: 20000, Agg: tsdb.AggAvg, StepMS: 5000}
	res, err = c.QueryRange(aq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Store().QueryRange(context.Background(), aq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("HTTP aggregated results differ from local engine:\n got %+v\nwant %+v", res, want)
	}

	// No matches: 200 with an empty result list, not an error.
	res, err = c.QueryRange(tsdb.RangeQuery{Component: "absent-*", Metric: "*", From: 0, To: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("want no results, got %+v", res)
	}

	// Default from/to (omitted): covers everything ingested.
	httpGet := func(query string) (int, string) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/query_range?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	status, body := httpGet("component=db")
	if status != http.StatusOK {
		t.Fatalf("default-range query: %d %s", status, body)
	}
	var qr QueryRangeResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 1 || len(qr.Results[0].Points) != 200 {
		t.Fatalf("default-range query missed points: %s", body)
	}

	// Malformed parameters are client errors.
	for _, bad := range []url.Values{
		{"from": {"10"}, "to": {"5"}},
		{"step": {"100"}},                    // step without agg
		{"agg": {"max"}},                     // agg without step
		{"agg": {"median"}, "step": {"100"}}, // unknown agg
		{"from": {"not-a-number"}},
	} {
		if status, body := httpGet(bad.Encode()); status != http.StatusBadRequest {
			t.Errorf("params %v: got %d %s, want 400", bad, status, body)
		}
	}
}

// TestQueryRangeDurableConcurrentCheckpoint drives /query_range over
// real HTTP while the durable store checkpoints underneath: results for
// a fully-written series must stay byte-stable throughout the cut.
func TestQueryRangeDurableConcurrentCheckpoint(t *testing.T) {
	s, _, c := newTestServer(t, Options{Shards: 4, DataDir: t.TempDir(), FlushInterval: -1})
	t.Cleanup(func() { s.Close() })
	writeQuerySeries(t, c)

	baseline, err := c.QueryRange(tsdb.RangeQuery{Component: "*", Metric: "*", From: 0, To: 1 << 40, Agg: tsdb.AggCount, StepMS: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if err := s.Store().Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 40; i++ {
		got, err := c.QueryRange(tsdb.RangeQuery{Component: "*", Metric: "*", From: 0, To: 1 << 40, Agg: tsdb.AggCount, StepMS: 1 << 40})
		if err != nil {
			t.Fatalf("query_range during checkpoint: %v", err)
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Fatalf("results changed mid-checkpoint:\n got %+v\nwant %+v", got, baseline)
		}
	}
	wg.Wait()
}

// TestQueryRangeMatchesAcrossRestart pins that a restarted durable
// server answers /query_range byte-identically to the life that wrote
// the data (the read-path analogue of the /query recovery pin).
func TestQueryRangeMatchesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, _, c1 := newTestServer(t, Options{Shards: 4, DataDir: dir, FlushInterval: -1})
	writeQuerySeries(t, c1)
	queries := []tsdb.RangeQuery{
		{Component: "*", Metric: "*", From: 0, To: 1 << 40},
		{Component: "web-?", Metric: "cpu*", From: 3000, To: 17000, Agg: tsdb.AggAvg, StepMS: 1000},
		{Component: "*", Metric: "*", From: 0, To: 1 << 40, Agg: tsdb.AggRate, StepMS: 4000},
	}
	before := make([][]tsdb.SeriesResult, len(queries))
	for i, q := range queries {
		res, err := c1.QueryRange(q)
		if err != nil {
			t.Fatal(err)
		}
		before[i] = res
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _, c2 := newTestServer(t, Options{Shards: 4, DataDir: dir, FlushInterval: -1})
	t.Cleanup(func() { s2.Close() })
	for i, q := range queries {
		res, err := c2.QueryRange(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, before[i]) {
			t.Fatalf("query %d differs across restart:\n got %+v\nwant %+v", i, res, before[i])
		}
	}
}
