package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/loadgen"
	"github.com/sieve-microservices/sieve/internal/telemetry"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// obsOptions is the observability-suite server baseline: batch pipeline
// over the chain topology with self-scrape enabled under an injected
// deterministic clock (wall-clock skew is exercised separately by
// TestSelfScrapeWallClockSkew).
func obsOptions(clock func() int64) Options {
	return Options{
		AppName:            "chain",
		WindowMS:           50 * 500,
		MinWindowSamples:   32,
		CallGraph:          chainGraph(),
		SelfScrapeInterval: time.Hour, // enables the contract; no loop without Start
		SelfScrapeClock:    clock,
	}
}

func getBody(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestMetricsExpositionLints pins the /metrics contract: the body
// parses as valid Prometheus 0.0.4 text exposition (the same validator
// CI's exposition-format gate uses), carries the versioned content
// type, and includes instruments from every layer.
func TestMetricsExpositionLints(t *testing.T) {
	var ts atomic.Int64
	s, hs, c := newTestServer(t, obsOptions(func() int64 { return ts.Add(1) }))
	a, err := app.New(chainSpec(), 5)
	if err != nil {
		t.Fatal(err)
	}
	driveChunk(t, a, c, loadgen.Random(5, 60, 100, 1500))
	if _, err := s.RunPipelineOnce(context.Background()); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if _, err := s.SelfScrapeOnce(); err != nil {
		t.Fatalf("self-scrape: %v", err)
	}

	status, hdr, body := getBody(t, hs.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if err := telemetry.Lint(body); err != nil {
		t.Fatalf("exposition failed lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"sieve_http_write_seconds_bucket",
		"sieve_ingest_samples_total",
		"sieve_query_range_raw_seconds",
		"sieve_pipeline_cycle_seconds_count",
		"sieve_store_points",
		"sieve_selfscrape_samples_total",
		"sieve_query_chunks_decoded_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
}

// TestSelfScrapeEquivalence is the dogfooding pin: with the scrape
// clock held below the application data's high-water mark, enabling
// telemetry + self-scrape changes neither the published artifact bytes
// nor the /query_range response bytes of any non-sieve series, while
// sieved's own series become queryable under the reserved component.
func TestSelfScrapeEquivalence(t *testing.T) {
	const seed = 7
	pattern := loadgen.Random(seed, 70, 100, 1500)
	base := Options{
		AppName: "chain", WindowMS: 50 * 500, MinWindowSamples: 32,
		CallGraph: chainGraph(),
	}

	plain, plainHTTP, cPlain := newTestServer(t, base)
	var ts atomic.Int64
	obs, obsHTTP, cObs := newTestServer(t, obsOptions(func() int64 { return ts.Add(1) }))

	// Identical byte streams: the app simulator is deterministic by seed.
	for _, d := range []struct {
		c *Client
	}{{cPlain}, {cObs}} {
		a, err := app.New(chainSpec(), seed)
		if err != nil {
			t.Fatal(err)
		}
		driveChunk(t, a, d.c, pattern)
	}

	// Scrapes land before and after the cycle; all at tiny timestamps.
	for i := 0; i < 2; i++ {
		if _, err := obs.SelfScrapeOnce(); err != nil {
			t.Fatalf("self-scrape %d: %v", i, err)
		}
	}
	if _, err := plain.RunPipelineOnce(context.Background()); err != nil {
		t.Fatalf("plain pipeline: %v", err)
	}
	if _, err := obs.RunPipelineOnce(context.Background()); err != nil {
		t.Fatalf("observed pipeline: %v", err)
	}
	if _, err := obs.SelfScrapeOnce(); err != nil {
		t.Fatalf("post-run self-scrape: %v", err)
	}

	if got, want := marshaledArtifact(t, obs), marshaledArtifact(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("self-scrape changed the artifact (%d vs %d bytes)", len(got), len(want))
	}
	for _, q := range []string{
		"/query_range?component=lb*",
		"/query_range?component=api*&metric=api_rate*",
		"/query_range?component=db*&agg=max&step=5000",
		"/query_range?component=lb*&agg=avg&step=2500",
	} {
		_, _, a := getBody(t, plainHTTP.URL+q)
		_, _, b := getBody(t, obsHTTP.URL+q)
		if !bytes.Equal(a, b) {
			t.Fatalf("self-scrape changed %s bytes:\nplain: %s\nobs:   %s", q, a, b)
		}
	}

	// The dogfooded series exist under the reserved component...
	results, err := cObs.QueryRange(tsdb.RangeQuery{Component: "sieve", Metric: "*", From: 0, To: 1 << 40})
	if err != nil {
		t.Fatalf("querying sieve component: %v", err)
	}
	found := map[string]bool{}
	for _, r := range results {
		found[r.Metric] = true
	}
	for _, want := range []string{"http_write_seconds_count", "ingest_samples_total", "store_points"} {
		if !found[want] {
			t.Fatalf("self-scrape wrote no sieve/%s series (got %d series)", want, len(results))
		}
	}

	// ...and /write rejects the reserved component only while self-scrape
	// is enabled.
	payload := tsdb.EncodeLineProtocol([]tsdb.Sample{{Component: "sieve", Metric: "x", T: 100, V: 1}})
	resp, err := http.Post(obsHTTP.URL+"/write", "text/plain", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reserved write on observed server: status = %d, want 400", resp.StatusCode)
	}
	if n, err := cPlain.Write(payload); err != nil || n != 1 {
		t.Fatalf("reserved component should be writable without self-scrape: n=%d err=%v", n, err)
	}
}

// TestSelfScrapeWallClockSkew pins the window anchor under realistic
// skew: self-scrape stamps samples with the wall clock, which runs far
// ahead of application data ingested at historical timestamps (replays,
// backfills, simulator feeds). The pipeline window must stay anchored
// to /write-ingested data — artifact bytes identical to a server
// without self-scrape — and a store holding nothing but recovered
// self-telemetry must read as ErrNoData ("waiting"), not a failing
// pipeline.
func TestSelfScrapeWallClockSkew(t *testing.T) {
	const seed = 11
	pattern := loadgen.Random(seed, 70, 100, 1500)
	base := Options{
		AppName: "chain", WindowMS: 50 * 500, MinWindowSamples: 32,
		CallGraph: chainGraph(),
	}
	plain, _, cPlain := newTestServer(t, base)
	var ts atomic.Int64
	ts.Store(1_700_000_000_000) // wall-clock ms, ~7 orders above app data
	obs, _, cObs := newTestServer(t, obsOptions(func() int64 { return ts.Add(1) }))

	for _, c := range []*Client{cPlain, cObs} {
		a, err := app.New(chainSpec(), seed)
		if err != nil {
			t.Fatal(err)
		}
		driveChunk(t, a, c, pattern)
	}
	// Scrapes before the cycle drag the raw store's MaxTime to wall
	// clock; the analysis window must not follow it.
	if _, err := obs.SelfScrapeOnce(); err != nil {
		t.Fatalf("self-scrape: %v", err)
	}
	if _, err := plain.RunPipelineOnce(context.Background()); err != nil {
		t.Fatalf("plain pipeline: %v", err)
	}
	if _, err := obs.RunPipelineOnce(context.Background()); err != nil {
		t.Fatalf("observed pipeline with clock skew: %v", err)
	}
	if got, want := marshaledArtifact(t, obs), marshaledArtifact(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("wall-clock self-scrape moved the analysis window (artifact %d vs %d bytes)", len(got), len(want))
	}

	// Second life over a store that only ever held self-telemetry: the
	// recovered high-water mark is all reserved-component data, so the
	// window holds nothing analyzable. That is "waiting for data", not a
	// pipeline failure.
	dir := t.TempDir()
	durable := obsOptions(func() int64 { return ts.Add(1) })
	durable.DataDir = dir
	first, err := New(durable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.SelfScrapeOnce(); err != nil {
		t.Fatalf("self-scrape: %v", err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	second, err := New(durable)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if _, err := second.RunPipelineOnce(context.Background()); !errors.Is(err, ErrNoData) {
		t.Fatalf("pipeline over a self-telemetry-only store: err = %v, want ErrNoData", err)
	}
}

// TestHealthzReadiness pins the probe semantics: /healthz is always
// 200 (liveness), /readyz flips to 503 when the online loop goes
// silent for 3x the interval, and both a completed cycle and an
// ErrNoData skip count as liveness.
func TestHealthzReadiness(t *testing.T) {
	s, hs, _ := newTestServer(t, Options{Interval: time.Second})

	decode := func(body []byte) HealthResponse {
		var h HealthResponse
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("decoding health body: %v", err)
		}
		return h
	}

	status, _, body := getBody(t, hs.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz status = %d", status)
	}
	h := decode(body)
	if h.Status != "ok" || !h.Checks["pipeline"].OK || h.Checks["pipeline"].Detail != "driver not started" {
		t.Fatalf("fresh server health = %+v", h)
	}

	// Driver started long ago, no cycle since: stalled.
	s.driverStartNS.Store(time.Now().Add(-time.Minute).UnixNano())
	status, _, body = getBody(t, hs.URL+"/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("stalled /readyz status = %d, want 503", status)
	}
	if h = decode(body); h.Status != "degraded" || h.Checks["pipeline"].OK {
		t.Fatalf("stalled health = %+v", h)
	}
	// Liveness is unaffected.
	if status, _, _ = getBody(t, hs.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("stalled /healthz status = %d, want 200", status)
	}

	// A completed cycle refreshes readiness.
	s.lastCycleNS.Store(time.Now().UnixNano())
	if status, _, _ = getBody(t, hs.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz after cycle = %d, want 200", status)
	}

	// So does an ErrNoData skip: an unfilled window is waiting, not
	// stalled.
	s.lastCycleNS.Store(0)
	s.lastNoDataNS.Store(time.Now().UnixNano())
	if status, _, _ = getBody(t, hs.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz after ErrNoData = %d, want 200", status)
	}

	// The real path sets the stamps too: RunPipelineOnce on an empty
	// store is an ErrNoData skip.
	s.lastNoDataNS.Store(0)
	s.driverStartNS.Store(time.Now().Add(-time.Minute).UnixNano())
	if _, err := s.RunPipelineOnce(context.Background()); err == nil {
		t.Fatal("pipeline on empty store should fail")
	}
	if s.lastNoDataNS.Load() == 0 {
		t.Fatal("ErrNoData run did not stamp lastNoDataNS")
	}
	if status, _, _ = getBody(t, hs.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz after real ErrNoData run = %d, want 200", status)
	}
}

// TestDebugTracesRecordsSlowOps drops the slow-op threshold to 1ns so
// every request is "slow", then pins the /debug/traces contract:
// slowest-first ordering, the ?n bound, and per-op annotations.
func TestDebugTracesRecordsSlowOps(t *testing.T) {
	opts := obsOptions(func() int64 { return 1 })
	opts.SlowOpThreshold = time.Nanosecond
	_, hs, c := newTestServer(t, opts)

	payload := tsdb.EncodeLineProtocol([]tsdb.Sample{
		{Component: "web", Metric: "cpu", T: 1000, V: 0.5},
		{Component: "web", Metric: "cpu", T: 1500, V: 0.6},
	})
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryRange(tsdb.RangeQuery{Component: "*", Metric: "*", From: 0, To: 1 << 40}); err != nil {
		t.Fatal(err)
	}

	status, _, body := getBody(t, hs.URL+"/debug/traces")
	if status != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", status)
	}
	var tr TracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("decoding traces: %v", err)
	}
	if tr.Total < 2 || len(tr.Traces) < 2 {
		t.Fatalf("traces = %d retained / %d total, want >= 2", len(tr.Traces), tr.Total)
	}
	ops := map[string]bool{}
	for i, tc := range tr.Traces {
		ops[tc.Op] = true
		if i > 0 && tc.Millis > tr.Traces[i-1].Millis {
			t.Fatalf("traces not slowest-first at %d: %v then %v", i, tr.Traces[i-1].Millis, tc.Millis)
		}
	}
	if !ops["write"] || !ops["query_range"] {
		t.Fatalf("traced ops = %v, want write and query_range", ops)
	}
	var wrote *telemetry.Trace
	for _, tc := range tr.Traces {
		if tc.Op == "write" {
			wrote = tc
			break
		}
	}
	fields := map[string]string{}
	for _, f := range wrote.Fields {
		fields[f.Key] = f.Value
	}
	if fields["samples"] != "2" {
		t.Fatalf("write trace fields = %v, want samples=2", fields)
	}

	status, _, body = getBody(t, hs.URL+"/debug/traces?n=1")
	if err := json.Unmarshal(body, &tr); err != nil || status != http.StatusOK {
		t.Fatalf("traces?n=1: status %d err %v", status, err)
	}
	if len(tr.Traces) != 1 {
		t.Fatalf("traces?n=1 returned %d", len(tr.Traces))
	}
	if status, _, _ = getBody(t, hs.URL+"/debug/traces?n=bogus"); status != http.StatusBadRequest {
		t.Fatalf("traces?n=bogus status = %d, want 400", status)
	}
}

// TestTelemetryConcurrentAccess hammers every observability surface at
// once — ingest, /metrics exposition, self-scrape writes, pipeline
// cycles, /debug/traces and /healthz readers — and then lints the
// final exposition. Run under -race in CI, this is the pin that the
// atomic instruments, the trace ring, and the health stamps are safe
// against the server's real concurrency.
func TestTelemetryConcurrentAccess(t *testing.T) {
	var ts atomic.Int64
	opts := obsOptions(func() int64 { return ts.Add(1) })
	opts.MinWindowSamples = 8
	opts.SlowOpThreshold = time.Nanosecond
	s, hs, c := newTestServer(t, opts)

	var tick atomic.Int64
	writeBatch := func(w int) []byte {
		base := tick.Add(1) * 500
		samples := make([]tsdb.Sample, 0, 16)
		for comp := 0; comp < 4; comp++ {
			for m := 0; m < 4; m++ {
				samples = append(samples, tsdb.Sample{
					Component: fmt.Sprintf("web-%d", comp),
					Metric:    fmt.Sprintf("m%d", m),
					T:         base,
					V:         float64((int(base/500)*7+comp*3+m)%13) + 0.25*float64(m),
				})
			}
		}
		return tsdb.EncodeLineProtocol(samples)
	}
	// Pre-fill so pipeline cycles have a window to chew on.
	for i := 0; i < 32; i++ {
		if _, err := c.Write(writeBatch(0)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	run := func(n int, fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				fn(i)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		w := w
		run(40, func(i int) {
			if _, err := c.Write(writeBatch(w)); err != nil {
				t.Error(err)
			}
		})
	}
	run(20, func(int) { getBody(t, hs.URL+"/metrics") })
	run(20, func(int) {
		if _, err := s.SelfScrapeOnce(); err != nil {
			t.Error(err)
		}
	})
	run(6, func(int) { _, _ = s.RunPipelineOnce(context.Background()) })
	run(20, func(int) { getBody(t, hs.URL+"/debug/traces") })
	run(20, func(int) { getBody(t, hs.URL+"/healthz") })
	run(10, func(int) {
		if _, err := c.QueryRange(tsdb.RangeQuery{Component: "web*", Metric: "*", From: 0, To: 1 << 40}); err != nil {
			t.Error(err)
		}
	})
	wg.Wait()

	_, _, body := getBody(t, hs.URL+"/metrics")
	if err := telemetry.Lint(body); err != nil {
		t.Fatalf("post-hammer exposition failed lint: %v", err)
	}
}
