package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/core"
)

// ErrNoData reports that the store does not yet hold enough data to
// cover a meaningful analysis window; the background driver treats it as
// "try again next tick", POST /run surfaces it as 409.
var ErrNoData = errors.New("server: not enough ingested data for a pipeline run")

// RunInfo summarizes one completed pipeline run (also the POST /run
// response body).
type RunInfo struct {
	// Generation increments on every published artifact.
	Generation int64 `json:"generation"`
	// Start and End bound the analysis window in ingest-time ms.
	Start int64 `json:"window_start_ms"`
	End   int64 `json:"window_end_ms"`
	// Elapsed is the wall time of the run.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Series is the number of series analyzed, Clusters the reduced
	// metric count, Edges the dependency count.
	Series   int `json:"series"`
	Clusters int `json:"clusters"`
	Edges    int `json:"edges"`
}

// snapshotGraph returns the current topology, or an empty graph when
// none was configured or uploaded (the pipeline then reduces metrics but
// infers no dependencies).
func (s *Server) snapshotGraph() *callgraph.Graph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.graph == nil {
		return callgraph.New()
	}
	return s.graph
}

// RunPipelineOnce executes one windowed pipeline cycle: slide the window
// to the store's high-water mark, assemble a dataset from the sharded
// store, run Reduce + Granger with the configured parallelism, and
// publish the new artifact. Runs are serialized; readers keep seeing the
// previous artifact until the new one is swapped in.
func (s *Server) RunPipelineOnce(ctx context.Context) (*RunInfo, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	started := time.Now()

	hi := s.store.MaxTime()
	if hi == 0 {
		return nil, fmt.Errorf("%w: store is empty", ErrNoData)
	}
	lo := hi - s.opts.WindowMS
	if lo < 0 {
		lo = 0
	}
	end := hi + 1 // window is [lo, hi] inclusive of the newest point
	if got := (hi - lo) / s.opts.StepMS; got < int64(s.opts.MinWindowSamples) {
		return nil, fmt.Errorf("%w: window spans %d of %d required grid steps",
			ErrNoData, got, s.opts.MinWindowSamples)
	}

	ds, err := core.DatasetFromDB(s.store, s.opts.AppName, s.opts.StepMS, lo, end)
	if err != nil {
		return nil, s.recordErr(fmt.Errorf("assembling window dataset: %w", err))
	}
	ds.CallGraph = s.snapshotGraph()

	red, err := core.ReduceContext(ctx, ds, *s.opts.Reduce)
	if err != nil {
		return nil, s.recordErr(fmt.Errorf("reduce: %w", err))
	}
	graph, err := core.IdentifyDependenciesContext(ctx, ds, red, s.opts.Deps)
	if err != nil {
		return nil, s.recordErr(fmt.Errorf("identify dependencies: %w", err))
	}
	art := &core.Artifact{App: s.opts.AppName, Dataset: ds, Reduction: red, Graph: graph}
	data, err := core.MarshalArtifact(art)
	if err != nil {
		return nil, s.recordErr(fmt.Errorf("marshaling artifact: %w", err))
	}

	info := RunInfo{
		Generation: s.generation.Add(1),
		Start:      lo,
		End:        end,
		Elapsed:    time.Since(started),
		Series:     ds.TotalMetrics(),
		Clusters:   red.TotalAfter(),
		Edges:      len(graph.Edges),
	}
	// The autoscaling signal only changes when the artifact does;
	// compute it once here instead of on every /artifact poll.
	metric, relations := graph.MostFrequentMetric()

	s.runs.Add(1)
	s.mu.Lock()
	s.artifact = art
	s.artifactJSON = data
	s.signal = Signal{Metric: metric, Relations: relations}
	s.lastRun = info
	s.lastErr = ""
	s.mu.Unlock()
	return &info, nil
}

// recordErr remembers the failure for /stats and passes it through.
func (s *Server) recordErr(err error) error {
	s.mu.Lock()
	s.lastErr = err.Error()
	s.mu.Unlock()
	return err
}

// Start launches the background driver: one pipeline run every
// opts.Interval until ctx is done. ErrNoData ticks are silently skipped
// (the window just has not filled yet); other errors are kept for
// /stats. Start returns immediately.
func (s *Server) Start(ctx context.Context) {
	go func() {
		ticker := time.NewTicker(s.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if _, err := s.RunPipelineOnce(ctx); err != nil && ctx.Err() != nil {
					return
				}
			}
		}
	}()
}

// Artifact returns the latest published artifact (nil before the first
// completed run) and its run info.
func (s *Server) Artifact() (*core.Artifact, RunInfo) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.artifact, s.lastRun
}
