package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/granger"
	"github.com/sieve-microservices/sieve/internal/telemetry"
)

// ErrNoData reports that the store does not yet hold enough data to
// cover a meaningful analysis window; the background driver treats it as
// "try again next tick", POST /run surfaces it as 409.
var ErrNoData = errors.New("server: not enough ingested data for a pipeline run")

// StageTimings is the per-stage elapsed breakdown of one pipeline run,
// so a cycle-time regression is attributable to the stage that caused
// it.
type StageTimings struct {
	// Assemble covers dataset assembly (store queries + resampling, or
	// the incremental cache advance).
	Assemble time.Duration `json:"assemble_ns"`
	// Reduce covers step 2 (variance filter + clustering).
	Reduce time.Duration `json:"reduce_ns"`
	// Deps covers step 3 (Granger tests over representative pairs).
	Deps time.Duration `json:"deps_ns"`
	// Marshal covers artifact serialization.
	Marshal time.Duration `json:"marshal_ns"`
}

// String renders the breakdown for the state-change log line.
func (t StageTimings) String() string {
	return fmt.Sprintf("assemble %s, reduce %s, deps %s, marshal %s",
		t.Assemble.Round(time.Microsecond), t.Reduce.Round(time.Microsecond),
		t.Deps.Round(time.Microsecond), t.Marshal.Round(time.Microsecond))
}

// RunInfo summarizes one completed pipeline run (also the POST /run
// response body).
type RunInfo struct {
	// Generation increments on every published artifact.
	Generation int64 `json:"generation"`
	// Start and End bound the analysis window in ingest-time ms.
	Start int64 `json:"window_start_ms"`
	End   int64 `json:"window_end_ms"`
	// Elapsed is the wall time of the run.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Stages breaks Elapsed down per pipeline stage.
	Stages StageTimings `json:"stages"`
	// Series is the number of series analyzed, Clusters the reduced
	// metric count, Edges the dependency count.
	Series   int `json:"series"`
	Clusters int `json:"clusters"`
	Edges    int `json:"edges"`

	// Incremental reports whether the run used the incremental engine;
	// the remaining fields describe what it reused vs recomputed.
	Incremental bool `json:"incremental,omitempty"`
	// ForcedFullRecompute is true when this cycle hit the
	// FullRecomputeEvery cadence and dropped all carried state first.
	ForcedFullRecompute bool `json:"forced_full_recompute,omitempty"`
	// Assembly reports the window cache's work (tail vs full queries,
	// rolled buckets, series births/deaths). Nil on batch runs.
	Assembly *core.AdvanceStats `json:"assembly,omitempty"`
	// WarmReduce reports how many components were warm-started vs fully
	// re-swept. Nil when warm start is off.
	WarmReduce *core.WarmStats `json:"warm_reduce,omitempty"`
	// GrangerCacheHits/Misses count this run's memoized vs freshly
	// computed pair tests (zero when the cache is off).
	GrangerCacheHits   int64 `json:"granger_cache_hits,omitempty"`
	GrangerCacheMisses int64 `json:"granger_cache_misses,omitempty"`
}

// onlineState is the state the incremental engine carries from one
// pipeline cycle to the next. It is guarded by Server.runMu (cycles are
// serialized) and lives only in memory: a restarted server starts cold
// and the first cycle rebuilds everything through the full path.
type onlineState struct {
	// cache is the ring-buffered sliding-window dataset cache (nil
	// unless Options.Incremental).
	cache *core.WindowCache
	// gcache memoizes Granger pair tests by series content (nil unless
	// Options.Incremental); hits are bit-identical to recomputation.
	gcache *granger.Cache
	// warm carries clustering assignments across cycles (nil unless
	// Options.WarmStart).
	warm *core.WarmState
	// cycles counts completed runs since the state was created, driving
	// the FullRecomputeEvery cadence.
	cycles int64
}

// reset drops all carried state so the next cycle recomputes from
// scratch (the periodic full recompute).
func (o *onlineState) reset() {
	if o.cache != nil {
		o.cache.Invalidate()
	}
	if o.gcache != nil {
		o.gcache.Flush()
	}
	if o.warm != nil {
		o.warm.Reset()
	}
}

// snapshotGraph returns the current topology, or an empty graph when
// none was configured or uploaded (the pipeline then reduces metrics but
// infers no dependencies).
func (s *Server) snapshotGraph() *callgraph.Graph {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.graph == nil {
		return callgraph.New()
	}
	return s.graph
}

// pipelineWindow picks the analysis window for this cycle. Batch mode
// keeps the historical shape [hi-WindowMS, hi+1). Incremental mode
// aligns the exclusive end down to the sampling grid so consecutive
// windows slide by whole steps and the cache's rings can roll instead of
// rebuilding; the window is then exactly WindowMS wide once the store
// has filled it.
func (s *Server) pipelineWindow(hi int64) (lo, end int64, err error) {
	if s.opts.Incremental {
		end = core.AlignWindowEnd(hi, s.opts.StepMS)
		if end <= 0 {
			return 0, 0, fmt.Errorf("%w: ingested data spans less than one grid step", ErrNoData)
		}
		lo = end - s.opts.WindowMS
		if lo < 0 {
			lo = 0
		}
		if got := (end - lo) / s.opts.StepMS; got < int64(s.opts.MinWindowSamples) {
			return 0, 0, fmt.Errorf("%w: window spans %d of %d required grid steps",
				ErrNoData, got, s.opts.MinWindowSamples)
		}
		return lo, end, nil
	}
	lo = hi - s.opts.WindowMS
	if lo < 0 {
		lo = 0
	}
	end = hi + 1 // window is [lo, hi] inclusive of the newest point
	if got := (hi - lo) / s.opts.StepMS; got < int64(s.opts.MinWindowSamples) {
		return 0, 0, fmt.Errorf("%w: window spans %d of %d required grid steps",
			ErrNoData, got, s.opts.MinWindowSamples)
	}
	return lo, end, nil
}

// RunPipelineOnce executes one windowed pipeline cycle: slide the window
// to the store's high-water mark, assemble a dataset from the sharded
// store, run Reduce + Granger with the configured parallelism, and
// publish the new artifact. Runs are serialized; readers keep seeing the
// previous artifact until the new one is swapped in.
//
// With Options.Incremental the cycle carries state: dataset assembly
// reads only the window's new tail through the ring-buffered cache,
// Granger pair tests whose inputs did not change byte-for-byte are
// served from the fingerprint cache (both bit-identical to a
// from-scratch run under append-mostly ingest), and — opt-in via
// Options.WarmStart — clustering is seeded from the previous cycle's
// assignments, skipping the silhouette sweep while quality holds.
func (s *Server) RunPipelineOnce(ctx context.Context) (*RunInfo, error) {
	sp := s.tel.opCycle.Start()
	info, err := s.runPipelineOnce(ctx, &sp)
	// Health stamps for /healthz: a completed cycle and an ErrNoData
	// skip both prove the loop is alive (the window just has not filled
	// on the latter); only silence stalls the readiness check.
	now := time.Now().UnixNano()
	switch {
	case err == nil:
		s.lastCycleNS.Store(now)
	case errors.Is(err, ErrNoData):
		s.lastNoDataNS.Store(now)
	}
	sp.End()
	return info, err
}

func (s *Server) runPipelineOnce(ctx context.Context, sp *telemetry.Span) (*RunInfo, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	started := time.Now()

	hi := s.analysisMaxTime()
	if hi == 0 {
		return nil, fmt.Errorf("%w: store is empty", ErrNoData)
	}
	lo, end, err := s.pipelineWindow(hi)
	if err != nil {
		return nil, err
	}

	info := RunInfo{Incremental: s.opts.Incremental}
	carriesState := s.online.cache != nil || s.online.gcache != nil || s.online.warm != nil
	if carriesState && s.opts.FullRecomputeEvery > 0 && s.online.cycles > 0 &&
		s.online.cycles%int64(s.opts.FullRecomputeEvery) == 0 {
		// Periodic self-heal: drop every cache so this cycle recomputes
		// from scratch (repairs drift from late-arriving writes behind
		// the cached frontier, and re-sweeps every component).
		s.online.reset()
		info.ForcedFullRecompute = true
	}

	stage := time.Now()
	var ds *core.Dataset
	if s.online.cache != nil {
		var ast core.AdvanceStats
		ds, ast, err = s.online.cache.Advance(s.analysis, lo, end)
		info.Assembly = &ast
		if ast.FullRebuild {
			s.fullRebuilds.Add(1)
		}
		s.tailQueries.Add(int64(ast.TailQueries))
	} else {
		ds, err = core.DatasetFromDB(s.analysis, s.opts.AppName, s.opts.StepMS, lo, end)
	}
	info.Stages.Assemble = time.Since(stage)
	if err != nil {
		if errors.Is(err, core.ErrNoSeries) {
			// The window held nothing analyzable — ingest has not reached
			// it, or everything in it is filtered out (the reserved
			// self-telemetry component). That is waiting, not failing.
			return nil, fmt.Errorf("%w: window holds no analyzable series", ErrNoData)
		}
		return nil, s.recordErr(fmt.Errorf("assembling window dataset: %w", err))
	}
	ds.CallGraph = s.snapshotGraph()

	stage = time.Now()
	var red core.Reduction
	if s.online.warm != nil {
		var wst core.WarmStats
		red, wst, err = core.ReduceWarmContext(ctx, ds, *s.opts.Reduce, core.WarmOptions{
			ResweepEvery:        s.opts.WarmResweepEvery,
			SilhouetteTolerance: s.opts.WarmSilhouetteTolerance,
		}, s.online.warm)
		info.WarmReduce = &wst
		s.warmComponents.Add(int64(wst.WarmComponents))
		s.sweptComponents.Add(int64(wst.SweptComponents))
	} else {
		red, err = core.ReduceContext(ctx, ds, *s.opts.Reduce)
	}
	info.Stages.Reduce = time.Since(stage)
	if err != nil {
		return nil, s.recordErr(fmt.Errorf("reduce: %w", err))
	}

	stage = time.Now()
	var graph *core.DependencyGraph
	if s.online.gcache != nil {
		h0, m0, _ := s.online.gcache.Stats()
		graph, err = core.IdentifyDependenciesCached(ctx, ds, red, s.opts.Deps, s.online.gcache)
		h1, m1, _ := s.online.gcache.Stats()
		info.GrangerCacheHits, info.GrangerCacheMisses = int64(h1-h0), int64(m1-m0)
		s.grangerHits.Add(info.GrangerCacheHits)
		s.grangerMisses.Add(info.GrangerCacheMisses)
	} else {
		graph, err = core.IdentifyDependenciesContext(ctx, ds, red, s.opts.Deps)
	}
	info.Stages.Deps = time.Since(stage)
	if err != nil {
		return nil, s.recordErr(fmt.Errorf("identify dependencies: %w", err))
	}

	stage = time.Now()
	art := &core.Artifact{App: s.opts.AppName, Dataset: ds, Reduction: red, Graph: graph}
	data, err := core.MarshalArtifact(art)
	info.Stages.Marshal = time.Since(stage)
	if err != nil {
		return nil, s.recordErr(fmt.Errorf("marshaling artifact: %w", err))
	}

	info.Generation = s.generation.Add(1)
	info.Start, info.End = lo, end
	info.Elapsed = time.Since(started)
	info.Series = ds.TotalMetrics()
	info.Clusters = red.TotalAfter()
	info.Edges = len(graph.Edges)

	// Lift the run's breakdown into the telemetry registry and the
	// cycle span (the span only materializes if the cycle crossed the
	// slow-op threshold).
	s.tel.cycleSeconds.Observe(info.Elapsed.Seconds())
	s.tel.assembleSeconds.Observe(info.Stages.Assemble.Seconds())
	s.tel.reduceSeconds.Observe(info.Stages.Reduce.Seconds())
	s.tel.depsSeconds.Observe(info.Stages.Deps.Seconds())
	s.tel.marshalSeconds.Observe(info.Stages.Marshal.Seconds())
	s.tel.pipelineRuns.Inc()
	if info.ForcedFullRecompute {
		s.tel.forcedRecomputes.Inc()
	}
	s.tel.grangerHits.Add(uint64(info.GrangerCacheHits))
	s.tel.grangerMisses.Add(uint64(info.GrangerCacheMisses))
	sp.Stage("assemble", info.Stages.Assemble)
	sp.Stage("reduce", info.Stages.Reduce)
	sp.Stage("deps", info.Stages.Deps)
	sp.Stage("marshal", info.Stages.Marshal)
	sp.FieldInt("generation", info.Generation)
	sp.FieldInt("series", int64(info.Series))
	sp.FieldInt("clusters", int64(info.Clusters))
	sp.FieldInt("edges", int64(info.Edges))

	// The autoscaling signal only changes when the artifact does;
	// compute it once here instead of on every /artifact poll.
	metric, relations := graph.MostFrequentMetric()

	s.online.cycles++
	s.runs.Add(1)
	s.mu.Lock()
	s.artifact = art
	s.artifactJSON = data
	s.signal = Signal{Metric: metric, Relations: relations}
	s.lastRun = info
	s.lastErr = ""
	recovered := s.runFailing
	s.runFailing = false
	s.mu.Unlock()
	if recovered {
		// Mirror the durable store's checkpoint health reporting: log
		// once per state change, with the stage breakdown so the
		// recovery cycle's cost is attributable.
		slog.Info("pipeline recovered",
			"generation", info.Generation,
			"window_start_ms", lo, "window_end_ms", end,
			"assemble", info.Stages.Assemble.Round(time.Microsecond),
			"reduce", info.Stages.Reduce.Round(time.Microsecond),
			"deps", info.Stages.Deps.Round(time.Microsecond),
			"marshal", info.Stages.Marshal.Round(time.Microsecond))
	}
	return &info, nil
}

// recordErr remembers the failure for /stats, passes it through, and —
// like the durable store's checkpoint health — logs once per
// failing -> recovered state change, never per tick. Context
// cancellation is the caller abandoning the run (a disconnected POST
// /run, shutdown mid-cycle), not a pipeline fault: it is remembered in
// lastErr but never flips the failing state or logs.
func (s *Server) recordErr(err error) error {
	canceled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if !canceled {
		s.tel.pipelineFailures.Inc()
	}
	s.mu.Lock()
	s.lastErr = err.Error()
	transition := !canceled && !s.runFailing
	if !canceled {
		s.runFailing = true
	}
	s.mu.Unlock()
	if transition {
		slog.Error("pipeline failing, kept serving last artifact",
			"generation", s.generation.Load(), "err", err)
	}
	return err
}

// Start launches the background driver: one pipeline run every
// opts.Interval until ctx is done. ErrNoData ticks are silently skipped
// (the window just has not filled yet); other errors are kept for
// /stats. With Options.SelfScrapeInterval it also starts the
// self-scrape loop. Start returns immediately.
func (s *Server) Start(ctx context.Context) {
	s.driverStartNS.CompareAndSwap(0, time.Now().UnixNano())
	if s.selfScrapeEnabled() {
		go s.selfScrapeLoop(ctx)
	}
	go func() {
		ticker := time.NewTicker(s.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if _, err := s.RunPipelineOnce(ctx); err != nil && ctx.Err() != nil {
					return
				}
			}
		}
	}()
}

// Artifact returns the latest published artifact (nil before the first
// completed run) and its run info.
func (s *Server) Artifact() (*core.Artifact, RunInfo) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.artifact, s.lastRun
}
