package server

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/loadgen"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// durableOptions returns server options backed by dir, with background
// tickers and fsync disabled so a test can hard-stop the server (no
// Close) and recovery must work from what the engine wrote on its own.
func durableOptions(dir string) Options {
	return Options{DataDir: dir, Fsync: "never", FlushInterval: -1, Shards: 3}
}

// queryBody fetches the raw GET /query response body: recovery is
// asserted on the exact bytes a client would see.
func queryBody(t *testing.T, base, component, metric string) (int, string) {
	t.Helper()
	q := url.Values{}
	q.Set("component", component)
	q.Set("metric", metric)
	q.Set("from", "0")
	q.Set("to", fmt.Sprint(int64(1)<<60))
	resp, err := http.Get(base + "/query?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerRecoversAfterHardStop is the end-to-end crash test: drive a
// real load session over HTTP into a durable server, kill it without any
// shutdown, boot a fresh server on the same directory, and require every
// /query response to be byte-identical to the pre-kill server's.
func TestServerRecoversAfterHardStop(t *testing.T) {
	dir := t.TempDir()
	s1, hs1, c1 := newTestServer(t, durableOptions(dir))
	a, err := app.New(chainSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	driveOverHTTP(t, a, loadgen.Constant(400, 96), c1)

	st1, err := c1.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st1.Durable || st1.DataDir != dir {
		t.Fatalf("stats should report durability: %+v", st1)
	}
	if st1.Points == 0 {
		t.Fatal("no points ingested")
	}
	keys := s1.store.SeriesKeys()
	if len(keys) == 0 {
		t.Fatal("no series ingested")
	}
	want := make(map[string]string, len(keys))
	for _, key := range keys {
		comp, metric, _ := strings.Cut(key, "/")
		code, body := queryBody(t, hs1.URL, comp, metric)
		if code != http.StatusOK {
			t.Fatalf("pre-kill query %s: status %d", key, code)
		}
		want[key] = body
	}
	// Hard stop: close only the HTTP listener; the store is abandoned
	// mid-air with live WAL segments and no checkpoint.
	hs1.Close()

	s2, hs2, c2 := newTestServer(t, durableOptions(dir))
	defer s2.Close()
	st2, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Points != st1.Points || st2.Series != st1.Series {
		t.Fatalf("recovered %d points / %d series, want %d / %d",
			st2.Points, st2.Series, st1.Points, st1.Series)
	}
	if st2.MaxTimeMS != st1.MaxTimeMS {
		t.Fatalf("recovered MaxTime %d, want %d (window anchor must survive)", st2.MaxTimeMS, st1.MaxTimeMS)
	}
	for key, wantBody := range want {
		comp, metric, _ := strings.Cut(key, "/")
		code, body := queryBody(t, hs2.URL, comp, metric)
		if code != http.StatusOK {
			t.Fatalf("post-restart query %s: status %d", key, code)
		}
		if body != wantBody {
			t.Fatalf("post-restart /query for %s is not byte-identical", key)
		}
	}
}

// TestServerRecoveryAfterCheckpointAndGracefulClose covers the other two
// shutdown paths: data split across a sealed block and the WAL, and a
// graceful Close that checkpoints everything.
func TestServerRecoveryAfterCheckpointAndGracefulClose(t *testing.T) {
	dir := t.TempDir()
	s1, hs1, c1 := newTestServer(t, durableOptions(dir))
	write := func(c *Client, batch int) {
		t.Helper()
		var samples []tsdb.Sample
		for m := 0; m < 6; m++ {
			samples = append(samples, tsdb.Sample{
				Component: "comp", Metric: fmt.Sprintf("m%d", m),
				T: int64(batch) * 500, V: float64(batch * m),
			})
		}
		if _, err := c.Write(tsdb.EncodeLineProtocol(samples)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		write(c1, i)
	}
	if err := s1.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 70; i++ {
		write(c1, i)
	}
	_, wantBody := queryBody(t, hs1.URL, "comp", "m3")
	hs1.Close() // hard stop: block + WAL on disk

	s2, hs2, _ := newTestServer(t, durableOptions(dir))
	_, gotBody := queryBody(t, hs2.URL, "comp", "m3")
	if gotBody != wantBody {
		t.Fatal("block+WAL recovery: /query not byte-identical")
	}
	if err := s2.Close(); err != nil { // graceful: final checkpoint
		t.Fatal(err)
	}
	hs2.Close()

	s3, hs3, _ := newTestServer(t, durableOptions(dir))
	defer s3.Close()
	_, gotBody = queryBody(t, hs3.URL, "comp", "m3")
	if gotBody != wantBody {
		t.Fatal("blocks-only recovery after graceful close: /query not byte-identical")
	}
}

// TestServerInMemoryUnchanged pins that an empty DataDir keeps the
// original non-durable behavior.
func TestServerInMemoryUnchanged(t *testing.T) {
	s, _, c := newTestServer(t, Options{})
	if s.store.Durable() {
		t.Fatal("store should be in-memory without DataDir")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close on in-memory server must be a no-op, got %v", err)
	}
	if _, err := c.Write([]byte("web,metric=cpu value=0.5 500")); err != nil {
		t.Fatalf("write after no-op Close: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Durable || st.DataDir != "" {
		t.Fatalf("stats should report in-memory: %+v", st)
	}
}

// TestServerBadFsyncPolicy pins option validation.
func TestServerBadFsyncPolicy(t *testing.T) {
	_, err := New(Options{DataDir: t.TempDir(), Fsync: "sometimes"})
	if err == nil {
		t.Fatal("expected error for unknown fsync policy")
	}
}
