package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startServeListener runs serveListener on an OS-assigned port and
// returns the base URL, the cancel that triggers graceful shutdown, and
// the channel carrying its return value.
func startServeListener(t *testing.T, opts Options) (base string, cancel context.CancelFunc, done chan error) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() { done <- s.serveListener(ctx, ln) }()
	return "http://" + ln.Addr().String(), cancel, done
}

// TestServeListenerHeaderTimeout is the slowloris regression test: a
// client that sends half a header line and stalls must be disconnected
// once ReadHeaderTimeout elapses. The old serveListener built
// http.Server with no timeouts at all, so the connection (and its
// goroutine) lived forever and this test hangs on that code.
func TestServeListenerHeaderTimeout(t *testing.T) {
	base, cancel, done := startServeListener(t, Options{
		ReadHeaderTimeout: 150 * time.Millisecond,
		ShutdownTimeout:   time.Second,
	})
	defer func() {
		cancel()
		<-done
	}()
	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /write HTTP/1.1\r\nHost: sieved\r\nX-Slow")); err != nil {
		t.Fatal(err)
	}
	// The server must act on its own: Go's http.Server answers a
	// header-read timeout with "408 Request Timeout" and closes, so the
	// next read yields bytes or EOF well before our safety deadline. On
	// the old, timeout-less server nothing ever arrives and this read
	// blocks until the deadline.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); isTimeout(err) {
		t.Fatalf("connection still open past ReadHeaderTimeout (read err: %v)", err)
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// TestServeListenerShutdownForceClosesStalledWriter pins the shutdown
// ordering fix: when the graceful drain times out because a /write
// client stalls mid-body, the server must force-close that connection
// BEFORE Close() checkpoints and closes the WAL. The old code skipped
// the force-close, so serveListener returned with the writer still
// connected — this test fails there on the conn-severed assertion.
func TestServeListenerShutdownForceClosesStalledWriter(t *testing.T) {
	base, cancel, done := startServeListener(t, Options{
		DataDir:         t.TempDir(),
		Fsync:           "never",
		FlushInterval:   -1,
		ShutdownTimeout: 200 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Full headers, half the promised body: the handler blocks reading.
	if _, err := conn.Write([]byte("POST /write HTTP/1.1\r\nHost: sieved\r\nContent-Length: 64\r\n\r\nweb,metric=")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the handler enter the body read
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveListener: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveListener did not return: shutdown hangs on the stalled writer")
	}
	// The stalled connection must be dead: no late body delivery can
	// reach a checkpointed, closed store.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil || isTimeout(err) {
		t.Fatalf("stalled writer still connected after shutdown returned (read err: %v)", err)
	}
}

// TestClientContextCancelsInflightRequest pins the context threading: a
// hung server must not pin the caller for the client's full 30s
// timeout once its context is canceled. The old Client built requests
// with http.NewRequest (no context), so cancellation had no effect and
// this test times out there.
func TestClientContextCancelsInflightRequest(t *testing.T) {
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hang until the test ends
	}))
	defer func() { close(release); hs.Close() }()
	c := NewClient(hs.URL)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.WriteContext(ctx, []byte("web,metric=cpu value=0.5 500"))
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled in chain, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the context is not threaded through", elapsed)
	}
}

// TestClientAckHeaderDiagnostics pins the missing-vs-malformed split: a
// 2xx response without the ack header and one with a garbage value must
// produce different errors, the latter naming the offending value. The
// old code reported both as "missing X-Sieve-Samples ack header".
func TestClientAckHeaderDiagnostics(t *testing.T) {
	var header string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if header != "" {
			w.Header().Set("X-Sieve-Samples", header)
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer hs.Close()
	c := NewClient(hs.URL)

	header = ""
	_, err := c.Write([]byte("web,metric=cpu value=0.5 500"))
	if err == nil || !strings.Contains(err.Error(), "missing X-Sieve-Samples") {
		t.Fatalf("missing header: got %v, want a missing-header error", err)
	}

	header = "not-a-number"
	_, err = c.Write([]byte("web,metric=cpu value=0.5 500"))
	if err == nil || !strings.Contains(err.Error(), "malformed X-Sieve-Samples") ||
		!strings.Contains(err.Error(), `"not-a-number"`) {
		t.Fatalf("malformed header: got %v, want a malformed-header error naming the value", err)
	}

	header = "7"
	n, err := c.Write([]byte("web,metric=cpu value=0.5 500"))
	if err != nil || n != 7 {
		t.Fatalf("valid header: got %d, %v", n, err)
	}
}

// TestServeListenerGracefulShutdownStillDrains pins that the force-close
// path did not break the normal case: an idle server shuts down
// gracefully, closes its store, and a fresh boot recovers the data.
func TestServeListenerGracefulShutdownStillDrains(t *testing.T) {
	dir := t.TempDir()
	base, cancel, done := startServeListener(t, Options{
		DataDir: dir, Fsync: "never", FlushInterval: -1, ShutdownTimeout: 2 * time.Second,
	})
	c := NewClient(base)
	if _, err := c.Write([]byte("web,metric=cpu value=0.5 500")); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The graceful path checkpointed: a fresh server on the same dir
	// serves the point.
	s2, err := New(Options{DataDir: dir, Fsync: "never", FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	pts, err := s2.Store().Query("web", "cpu", 0, 1<<40)
	if err != nil || len(pts) != 1 {
		t.Fatalf("recovered %d points, err %v; want 1", len(pts), err)
	}
}
