package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/promremote"
	"github.com/sieve-microservices/sieve/internal/snappy"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// Client speaks the sieved HTTP API. It implements tsdb.Writer, so a
// metrics.Collector pointed at a Client ships its scrapes over real HTTP
// instead of into an in-process store — the wiring that lets the bundled
// application simulators drive a sieved server end to end.
//
// Every call has a context-first variant (WriteContext, QueryContext,
// ...) so callers in the repo's context-aware pipelines (DriveContext
// etc.) can cancel an in-flight request instead of waiting out the full
// client timeout against a hung server; the context-free methods are
// wrappers over context.Background().
type Client struct {
	base string
	hc   *http.Client
}

var _ tsdb.Writer = (*Client)(nil)

// apiError carries the HTTP status of a failed call so callers can
// distinguish "not yet" (404) from real failures, plus the server's
// stored-sample count for partially failed writes.
type apiError struct {
	status int
	msg    string
	stored int
}

func (e *apiError) Error() string { return e.msg }

// NewClient creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:8086").
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{Timeout: 30 * time.Second}}
}

// do issues a request under ctx and decodes the 2xx JSON body into out
// (skipped when out is nil); non-2xx responses become errors carrying
// the server's message. hdr entries are set verbatim on the request.
func (c *Client) do(ctx context.Context, method, path string, hdr map[string]string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var je struct {
			Error  string `json:"error"`
			Stored int    `json:"stored"`
		}
		detail := resp.Status
		if json.Unmarshal(msg, &je) == nil && je.Error != "" {
			detail = je.Error + " (" + resp.Status + ")"
		}
		return &apiError{status: resp.StatusCode, msg: fmt.Sprintf("server: %s %s: %s", method, path, detail), stored: je.Stored}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if h, ok := out.(*http.Header); ok {
		*h = resp.Header.Clone()
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ackedSamples extracts the stored-sample count from a 2xx write
// response, distinguishing a missing ack header (a proxy or an
// incompatible server swallowed it) from a malformed one (the offending
// value is reported verbatim).
func ackedSamples(h http.Header) (int, error) {
	v := h.Get("X-Sieve-Samples")
	if v == "" {
		return 0, fmt.Errorf("server: missing X-Sieve-Samples ack header")
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("server: malformed X-Sieve-Samples ack header %q: %w", v, err)
	}
	return n, nil
}

// Write ships a line-protocol payload to POST /write and returns the
// number of samples the server stored (tsdb.Writer). The count is
// meaningful alongside a non-nil error: a multi-shard durable server
// can fail partially, and the stored subset is hash-routed — not a
// payload prefix — so the count is for accounting and reconciliation
// (via Query), never a resume cursor.
func (c *Client) Write(payload []byte) (int, error) {
	return c.WriteContext(context.Background(), payload)
}

// WriteContext is Write under a caller-controlled context.
func (c *Client) WriteContext(ctx context.Context, payload []byte) (int, error) {
	var h http.Header
	hdr := map[string]string{"Content-Type": "text/plain; charset=utf-8"}
	if err := c.do(ctx, http.MethodPost, "/write", hdr, payload, &h); err != nil {
		var ae *apiError
		if errors.As(err, &ae) {
			return ae.stored, err
		}
		return 0, err
	}
	return ackedSamples(h)
}

// WriteSamples encodes and ships decoded samples.
func (c *Client) WriteSamples(samples []tsdb.Sample) (int, error) {
	return c.WriteContext(context.Background(), tsdb.EncodeLineProtocol(samples))
}

// WriteRemote ships samples through POST /api/v1/write as a Prometheus
// remote-write 1.0 request (snappy-compressed protobuf), the wire format
// real agents speak — so loadgen and the simulators can exercise the
// remote-write on-ramp end to end. Samples are grouped into one
// TimeSeries per series in first-appearance order, labeled
// {__name__: metric, job: component}; point the server's
// RemoteWriteComponentLabel anywhere other than "job" and these writes
// will be rejected, by design.
func (c *Client) WriteRemote(samples []tsdb.Sample) (int, error) {
	return c.WriteRemoteContext(context.Background(), samples)
}

// WriteRemoteContext is WriteRemote under a caller-controlled context.
func (c *Client) WriteRemoteContext(ctx context.Context, samples []tsdb.Sample) (int, error) {
	body := snappy.Encode(promremote.Marshal(remoteRequest(samples)))
	hdr := map[string]string{
		"Content-Type":                      "application/x-protobuf",
		"Content-Encoding":                  "snappy",
		"X-Prometheus-Remote-Write-Version": "0.1.0",
	}
	var h http.Header
	if err := c.do(ctx, http.MethodPost, "/api/v1/write", hdr, body, &h); err != nil {
		var ae *apiError
		if errors.As(err, &ae) {
			return ae.stored, err
		}
		return 0, err
	}
	return ackedSamples(h)
}

// remoteRequest groups flat samples into a WriteRequest, one TimeSeries
// per component/metric pair in first-appearance order.
func remoteRequest(samples []tsdb.Sample) *promremote.WriteRequest {
	var req promremote.WriteRequest
	index := map[string]int{}
	for _, s := range samples {
		key := s.Key()
		i, ok := index[key]
		if !ok {
			i = len(req.TimeSeries)
			index[key] = i
			req.TimeSeries = append(req.TimeSeries, promremote.TimeSeries{
				Labels: []promremote.Label{
					{Name: promremote.MetricNameLabel, Value: s.Metric},
					{Name: "job", Value: s.Component},
				},
			})
		}
		req.TimeSeries[i].Samples = append(req.TimeSeries[i].Samples,
			promremote.Sample{Value: s.V, TimestampMS: s.T})
	}
	return &req
}

// PostCallGraph uploads (replacing) the server's component topology.
func (c *Client) PostCallGraph(g *callgraph.Graph) error {
	return c.PostCallGraphContext(context.Background(), g)
}

// PostCallGraphContext is PostCallGraph under a caller-controlled
// context.
func (c *Client) PostCallGraphContext(ctx context.Context, g *callgraph.Graph) error {
	var edges []CallEdge
	for _, e := range g.Edges() {
		edges = append(edges, CallEdge{Caller: e.Caller, Callee: e.Callee, Calls: e.Calls})
	}
	body, err := json.Marshal(edges)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, "/callgraph", map[string]string{"Content-Type": "application/json"}, body, nil)
}

// RunPipeline forces one synchronous pipeline run.
func (c *Client) RunPipeline() (*RunInfo, error) {
	return c.RunPipelineContext(context.Background())
}

// RunPipelineContext is RunPipeline under a caller-controlled context.
func (c *Client) RunPipelineContext(ctx context.Context) (*RunInfo, error) {
	var info RunInfo
	if err := c.do(ctx, http.MethodPost, "/run", nil, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (*StatsResponse, error) {
	return c.StatsContext(context.Background())
}

// StatsContext is Stats under a caller-controlled context.
func (c *Client) StatsContext(ctx context.Context) (*StatsResponse, error) {
	var st StatsResponse
	if err := c.do(ctx, http.MethodGet, "/stats", nil, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Query reads one series' points with T in [from, to).
func (c *Client) Query(component, metric string, from, to int64) ([]tsdb.Point, error) {
	return c.QueryContext(context.Background(), component, metric, from, to)
}

// QueryContext is Query under a caller-controlled context.
func (c *Client) QueryContext(ctx context.Context, component, metric string, from, to int64) ([]tsdb.Point, error) {
	q := url.Values{}
	q.Set("component", component)
	q.Set("metric", metric)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("to", strconv.FormatInt(to, 10))
	var resp QueryResponse
	if err := c.do(ctx, http.MethodGet, "/query?"+q.Encode(), nil, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// QueryRange evaluates a matcher/aggregation query server-side via
// GET /query_range: every series matching the query's component/metric
// globs with T in [From, To), raw or aggregated per StepMS bucket
// (q.Parallelism is a server-side concern and is not transmitted). An
// empty match returns an empty slice, not an error. The query is
// validated before it is sent, so an inconsistent one (e.g. StepMS
// without Agg, which the wire format could not even express) fails here
// exactly as it would against a local store.
func (c *Client) QueryRange(q tsdb.RangeQuery) ([]tsdb.SeriesResult, error) {
	return c.QueryRangeContext(context.Background(), q)
}

// QueryRangeContext is QueryRange under a caller-controlled context.
func (c *Client) QueryRangeContext(ctx context.Context, q tsdb.RangeQuery) ([]tsdb.SeriesResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	v := url.Values{}
	if q.Component != "" {
		v.Set("component", q.Component)
	}
	if q.Metric != "" {
		v.Set("metric", q.Metric)
	}
	v.Set("from", strconv.FormatInt(q.From, 10))
	v.Set("to", strconv.FormatInt(q.To, 10))
	if q.Agg != tsdb.AggNone {
		v.Set("agg", q.Agg.String())
		v.Set("step", strconv.FormatInt(q.StepMS, 10))
	}
	var resp QueryRangeResponse
	if err := c.do(ctx, http.MethodGet, "/query_range?"+v.Encode(), nil, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// ArtifactResult is a fetched artifact: the decoded pipeline output plus
// the envelope metadata.
type ArtifactResult struct {
	Generation  int64
	WindowStart int64
	WindowEnd   int64
	Signal      Signal
	Artifact    *core.Artifact
}

// ErrNoArtifact reports that the server has not completed a pipeline run
// yet.
var ErrNoArtifact = errors.New("server: no artifact published yet")

// Artifact fetches and decodes the latest artifact.
func (c *Client) Artifact() (*ArtifactResult, error) {
	return c.ArtifactContext(context.Background())
}

// ArtifactContext is Artifact under a caller-controlled context.
func (c *Client) ArtifactContext(ctx context.Context) (*ArtifactResult, error) {
	var env ArtifactEnvelope
	if err := c.do(ctx, http.MethodGet, "/artifact", nil, nil, &env); err != nil {
		var ae *apiError
		if errors.As(err, &ae) && ae.status == http.StatusNotFound {
			return nil, ErrNoArtifact
		}
		return nil, err
	}
	art, err := core.UnmarshalArtifact(env.Artifact)
	if err != nil {
		return nil, fmt.Errorf("server: decoding artifact: %w", err)
	}
	return &ArtifactResult{
		Generation:  env.Generation,
		WindowStart: env.WindowStart,
		WindowEnd:   env.WindowEnd,
		Signal:      env.Signal,
		Artifact:    art,
	}, nil
}

// ListenAndServe binds addr, starts the background pipeline driver, and
// serves HTTP until ctx is done, then shuts down gracefully. It is the
// cmd/sieved entry point; tests use Handler with httptest instead.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serveListener(ctx, ln)
}

// timeoutOrOff maps the Options convention (0 = default applied in
// withDefaults, negative = disabled) onto http.Server's (0 = no
// timeout).
func timeoutOrOff(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

func (s *Server) serveListener(ctx context.Context, ln net.Listener) error {
	s.Start(ctx)
	// Header/read/idle timeouts bound what one misbehaving client can
	// hold: without ReadHeaderTimeout a slowloris drips header bytes and
	// keeps the connection (and its goroutine) forever.
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: timeoutOrOff(s.opts.ReadHeaderTimeout),
		ReadTimeout:       timeoutOrOff(s.opts.ReadTimeout),
		IdleTimeout:       timeoutOrOff(s.opts.IdleTimeout),
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), s.opts.ShutdownTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			// Graceful drain timed out: in-flight requests (e.g. a
			// writer stalled mid-body) are still connected. Force-close
			// them before touching the store — Close() below checkpoints
			// and closes the WAL, and a still-connected writer completing
			// its body after that would write into a closed engine.
			_ = hs.Close()
		}
		<-errc
		// Graceful shutdown: with a durable store, checkpoint remaining
		// memory into a block and close the WAL — only after no
		// connection can deliver another write.
		return s.Close()
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		_ = s.Close()
		return err
	}
}
