package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// Client speaks the sieved HTTP API. It implements tsdb.Writer, so a
// metrics.Collector pointed at a Client ships its scrapes over real HTTP
// instead of into an in-process store — the wiring that lets the bundled
// application simulators drive a sieved server end to end.
type Client struct {
	base string
	hc   *http.Client
}

var _ tsdb.Writer = (*Client)(nil)

// apiError carries the HTTP status of a failed call so callers can
// distinguish "not yet" (404) from real failures, plus the server's
// stored-sample count for partially failed writes.
type apiError struct {
	status int
	msg    string
	stored int
}

func (e *apiError) Error() string { return e.msg }

// NewClient creates a client for the server at baseURL (e.g.
// "http://127.0.0.1:8086").
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{Timeout: 30 * time.Second}}
}

// do issues a request and decodes the 2xx JSON body into out (skipped
// when out is nil); non-2xx responses become errors carrying the
// server's message.
func (c *Client) do(method, path string, contentType string, body []byte, out any) error {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var je struct {
			Error  string `json:"error"`
			Stored int    `json:"stored"`
		}
		detail := resp.Status
		if json.Unmarshal(msg, &je) == nil && je.Error != "" {
			detail = je.Error + " (" + resp.Status + ")"
		}
		return &apiError{status: resp.StatusCode, msg: fmt.Sprintf("server: %s %s: %s", method, path, detail), stored: je.Stored}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if h, ok := out.(*http.Header); ok {
		*h = resp.Header.Clone()
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Write ships a line-protocol payload to POST /write and returns the
// number of samples the server stored (tsdb.Writer). The count is
// meaningful alongside a non-nil error: a multi-shard durable server
// can fail partially, and the stored subset is hash-routed — not a
// payload prefix — so the count is for accounting and reconciliation
// (via Query), never a resume cursor.
func (c *Client) Write(payload []byte) (int, error) {
	var h http.Header
	if err := c.do(http.MethodPost, "/write", "text/plain; charset=utf-8", payload, &h); err != nil {
		var ae *apiError
		if errors.As(err, &ae) {
			return ae.stored, err
		}
		return 0, err
	}
	n, err := strconv.Atoi(h.Get("X-Sieve-Samples"))
	if err != nil {
		return 0, fmt.Errorf("server: missing X-Sieve-Samples ack header")
	}
	return n, nil
}

// WriteSamples encodes and ships decoded samples.
func (c *Client) WriteSamples(samples []tsdb.Sample) (int, error) {
	return c.Write(tsdb.EncodeLineProtocol(samples))
}

// PostCallGraph uploads (replacing) the server's component topology.
func (c *Client) PostCallGraph(g *callgraph.Graph) error {
	var edges []CallEdge
	for _, e := range g.Edges() {
		edges = append(edges, CallEdge{Caller: e.Caller, Callee: e.Callee, Calls: e.Calls})
	}
	body, err := json.Marshal(edges)
	if err != nil {
		return err
	}
	return c.do(http.MethodPost, "/callgraph", "application/json", body, nil)
}

// RunPipeline forces one synchronous pipeline run.
func (c *Client) RunPipeline() (*RunInfo, error) {
	var info RunInfo
	if err := c.do(http.MethodPost, "/run", "", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (*StatsResponse, error) {
	var st StatsResponse
	if err := c.do(http.MethodGet, "/stats", "", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Query reads one series' points with T in [from, to).
func (c *Client) Query(component, metric string, from, to int64) ([]tsdb.Point, error) {
	q := url.Values{}
	q.Set("component", component)
	q.Set("metric", metric)
	q.Set("from", strconv.FormatInt(from, 10))
	q.Set("to", strconv.FormatInt(to, 10))
	var resp QueryResponse
	if err := c.do(http.MethodGet, "/query?"+q.Encode(), "", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Points, nil
}

// QueryRange evaluates a matcher/aggregation query server-side via
// GET /query_range: every series matching the query's component/metric
// globs with T in [From, To), raw or aggregated per StepMS bucket
// (q.Parallelism is a server-side concern and is not transmitted). An
// empty match returns an empty slice, not an error. The query is
// validated before it is sent, so an inconsistent one (e.g. StepMS
// without Agg, which the wire format could not even express) fails here
// exactly as it would against a local store.
func (c *Client) QueryRange(q tsdb.RangeQuery) ([]tsdb.SeriesResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	v := url.Values{}
	if q.Component != "" {
		v.Set("component", q.Component)
	}
	if q.Metric != "" {
		v.Set("metric", q.Metric)
	}
	v.Set("from", strconv.FormatInt(q.From, 10))
	v.Set("to", strconv.FormatInt(q.To, 10))
	if q.Agg != tsdb.AggNone {
		v.Set("agg", q.Agg.String())
		v.Set("step", strconv.FormatInt(q.StepMS, 10))
	}
	var resp QueryRangeResponse
	if err := c.do(http.MethodGet, "/query_range?"+v.Encode(), "", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// ArtifactResult is a fetched artifact: the decoded pipeline output plus
// the envelope metadata.
type ArtifactResult struct {
	Generation  int64
	WindowStart int64
	WindowEnd   int64
	Signal      Signal
	Artifact    *core.Artifact
}

// ErrNoArtifact reports that the server has not completed a pipeline run
// yet.
var ErrNoArtifact = errors.New("server: no artifact published yet")

// Artifact fetches and decodes the latest artifact.
func (c *Client) Artifact() (*ArtifactResult, error) {
	var env ArtifactEnvelope
	if err := c.do(http.MethodGet, "/artifact", "", nil, &env); err != nil {
		var ae *apiError
		if errors.As(err, &ae) && ae.status == http.StatusNotFound {
			return nil, ErrNoArtifact
		}
		return nil, err
	}
	art, err := core.UnmarshalArtifact(env.Artifact)
	if err != nil {
		return nil, fmt.Errorf("server: decoding artifact: %w", err)
	}
	return &ArtifactResult{
		Generation:  env.Generation,
		WindowStart: env.WindowStart,
		WindowEnd:   env.WindowEnd,
		Signal:      env.Signal,
		Artifact:    art,
	}, nil
}

// ListenAndServe binds addr, starts the background pipeline driver, and
// serves HTTP until ctx is done, then shuts down gracefully. It is the
// cmd/sieved entry point; tests use Handler with httptest instead.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serveListener(ctx, ln)
}

func (s *Server) serveListener(ctx context.Context, ln net.Listener) error {
	s.Start(ctx)
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx)
		<-errc
		// Graceful shutdown: with a durable store, checkpoint remaining
		// memory into a block and close the WAL — only after no request
		// can write anymore.
		return s.Close()
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		_ = s.Close()
		return err
	}
}
