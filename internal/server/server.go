package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/granger"
	"github.com/sieve-microservices/sieve/internal/promremote"
	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// Options configures a Server.
type Options struct {
	// AppName labels produced artifacts (default "sieved").
	AppName string
	// Shards is the store partition count; 0 means GOMAXPROCS.
	Shards int
	// StepMS is the analysis sampling grid (default 500, the paper's
	// discretization).
	StepMS int64
	// WindowMS is the width of the sliding analysis window: each
	// pipeline run covers the most recent WindowMS of ingested data
	// (default 240000 = 480 grid steps).
	WindowMS int64
	// Interval is the cadence of the background pipeline driver started
	// by Start (default 30s).
	Interval time.Duration
	// MinWindowSamples is the minimum number of grid steps the window
	// must span before the pipeline runs (default 64; Granger needs a
	// non-trivial series length).
	MinWindowSamples int
	// Parallelism sizes the analysis worker pools (0 = GOMAXPROCS).
	Parallelism int
	// QueryParallelism sizes the per-series fan-out of /query_range
	// matcher queries against the sharded store (0 = GOMAXPROCS).
	// Results are identical at any value; this only bounds how many
	// series are read concurrently per request.
	QueryParallelism int
	// Reduce overrides the step-2 options; nil means the paper's
	// defaults (core.DefaultReduceOptions, including name seeding). A
	// non-nil value is used exactly as given.
	Reduce *core.ReduceOptions
	// Deps overrides the step-3 options; the zero value means the
	// paper's defaults.
	Deps core.DepOptions
	// CallGraph, when non-nil, is the static component topology used to
	// restrict Granger testing. It can also be uploaded (or replaced)
	// at runtime via POST /callgraph. With no topology at all the
	// pipeline still runs, producing an empty dependency graph.
	CallGraph *callgraph.Graph
	// MaxBodyBytes bounds a single /write payload and a single
	// /api/v1/write compressed body (default 32 MiB).
	MaxBodyBytes int64

	// RemoteWriteComponentLabel is the Prometheus label the
	// /api/v1/write receiver maps to sieve's component (default "job";
	// "instance" is the other common choice). The reserved __name__
	// label is always the metric and cannot be chosen here.
	RemoteWriteComponentLabel string
	// RemoteWriteMaxBytes bounds the decompressed size of one
	// /api/v1/write request (default 64 MiB). The limit is enforced
	// from the snappy preamble before any allocation; over-limit
	// requests get 413.
	RemoteWriteMaxBytes int64
	// RemoteWriteMaxSamples bounds the samples in one /api/v1/write
	// request (default 1,000,000). Over-limit requests get 429 with a
	// Retry-After header so senders re-shard instead of hammering.
	RemoteWriteMaxSamples int
	// RemoteWriteRetryAfter is the backoff the 429 advertises (default
	// 1s; sub-second values round up to the header's 1s floor).
	RemoteWriteRetryAfter time.Duration

	// ReadHeaderTimeout, ReadTimeout, and IdleTimeout configure the
	// listener's http.Server (defaults 10s, 5m, 2m; negative disables
	// one). Without them a single slow-headers client (slowloris) holds
	// a connection — and eventually the whole accept queue — forever.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
	// ShutdownTimeout bounds the graceful drain on shutdown (default
	// 5s): past it, in-flight connections are force-closed before the
	// store checkpoints, so a stalled writer can never race the final
	// WAL checkpoint.
	ShutdownTimeout time.Duration

	// Incremental switches the online pipeline to the incremental
	// engine: window ends are aligned down to the sampling grid so
	// consecutive cycles slide by whole steps, dataset assembly keeps a
	// ring-buffered bucket cache and queries only the window's new tail,
	// and Granger pair tests are memoized by series content. Results are
	// bit-identical to a from-scratch run on the same window as long as
	// ingest is append-mostly (no writes landing behind the cached
	// frontier); FullRecomputeEvery bounds the drift when it is not.
	Incremental bool
	// FullRecomputeEvery, with Incremental, drops all carried state
	// every N cycles so the pipeline recomputes from scratch — the
	// self-heal against late-arriving writes the tail queries missed.
	// 0 never forces a recompute.
	FullRecomputeEvery int
	// WarmStart seeds each component's clustering from the previous
	// cycle's assignments at the previously chosen k, skipping the
	// silhouette sweep while quality holds (re-sweeping every
	// WarmResweepEvery cycles, or when the warm silhouette drops more
	// than WarmSilhouetteTolerance below the last full sweep's score).
	// Opt-in: warm results may differ from a from-scratch reduction.
	WarmStart bool
	// WarmResweepEvery is the forced full-sweep cadence in cycles
	// (0 = core.DefaultWarmResweepEvery, negative = never on cadence
	// alone — degradation and metric-set changes still re-sweep). Only
	// meaningful with WarmStart.
	WarmResweepEvery int
	// WarmSilhouetteTolerance is the allowed warm-cycle silhouette drop
	// before a re-sweep (0 = core.DefaultWarmSilhouetteTolerance,
	// negative = any degradation re-sweeps). Only meaningful with
	// WarmStart.
	WarmSilhouetteTolerance float64

	// DataDir, when non-empty, makes the store durable: every write is
	// appended to a per-shard CRC-checked WAL under DataDir before it is
	// acknowledged, a background flusher seals memory into immutable
	// Gorilla-compressed block directories, and New recovers the
	// previous life's data (blocks + WAL replay) before the server takes
	// traffic. Empty keeps today's pure in-memory store.
	DataDir string
	// Retention drops on-disk blocks whose newest point is more than
	// this much ingest time behind the store's high-water mark (0 keeps
	// everything). Only meaningful with DataDir.
	Retention time.Duration
	// Fsync is the WAL fsync policy: "interval" (default; background
	// fsync every 200ms), "always" (fsync per write batch), or "never"
	// (leave it to the OS). Only meaningful with DataDir.
	Fsync string
	// FlushInterval is the cadence of the background block flusher
	// (default 60s; negative disables it, leaving checkpoints to
	// shutdown). Only meaningful with DataDir.
	FlushInterval time.Duration
	// CompactInterval is the cadence of the background compactor that
	// merges adjacent small blocks and builds downsampled companion
	// files (default 5m; negative disables it). Only meaningful with
	// DataDir.
	CompactInterval time.Duration
	// CompactMaxBlockBytes caps a merged block's chunk bytes (default
	// 64 MiB). Only meaningful with DataDir.
	CompactMaxBlockBytes int64
	// Downsample enables 5m/1h downsampled companions on compacted
	// blocks, answering coarse-step aggregated /query_range requests
	// without touching chunk data. Only meaningful with DataDir.
	Downsample bool

	// SelfScrapeInterval, when positive, makes Start also run the
	// self-scrape loop: every interval the server flattens its own
	// telemetry registry and writes it into its own store under the
	// reserved "sieve" component, through the same ingest path as
	// application data — so sieved's health history is queryable via
	// /query_range?component=sieve and durable under DataDir. While
	// enabled, /write rejects the reserved component and the online
	// pipeline's analysis surface filters it out (artifacts are
	// unchanged). Zero or negative disables the loop.
	SelfScrapeInterval time.Duration
	// SelfScrapeClock stamps self-scrape samples in ingest-time ms
	// (default time.Now().UnixMilli). The pipeline window anchors to
	// /write-ingested data regardless of this clock (see
	// analysisMaxTime), so skew against application timestamps only
	// moves where the telemetry series land on the time axis; tests
	// inject a deterministic counter.
	SelfScrapeClock func() int64
	// SlowOpThreshold is the latency above which a request or pipeline
	// cycle is retained in the /debug/traces ring and logged once per
	// fast->slow transition (default 1s; negative disables tracing).
	SlowOpThreshold time.Duration
}

func (o Options) withDefaults() Options {
	if o.AppName == "" {
		o.AppName = "sieved"
	}
	if o.StepMS <= 0 {
		o.StepMS = 500
	}
	if o.WindowMS <= 0 {
		o.WindowMS = 480 * o.StepMS
	}
	if o.Interval <= 0 {
		o.Interval = 30 * time.Second
	}
	if o.MinWindowSamples <= 0 {
		o.MinWindowSamples = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.RemoteWriteComponentLabel == "" {
		o.RemoteWriteComponentLabel = "job"
	}
	if o.RemoteWriteMaxBytes <= 0 {
		o.RemoteWriteMaxBytes = 64 << 20
	}
	if o.RemoteWriteMaxSamples <= 0 {
		o.RemoteWriteMaxSamples = 1_000_000
	}
	if o.RemoteWriteRetryAfter <= 0 {
		o.RemoteWriteRetryAfter = time.Second
	}
	if o.ReadHeaderTimeout == 0 {
		o.ReadHeaderTimeout = 10 * time.Second
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 5 * time.Minute
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.ShutdownTimeout <= 0 {
		o.ShutdownTimeout = 5 * time.Second
	}
	if o.SelfScrapeClock == nil {
		o.SelfScrapeClock = func() int64 { return time.Now().UnixMilli() }
	}
	if o.SlowOpThreshold == 0 {
		o.SlowOpThreshold = time.Second
	}
	if o.Reduce == nil {
		d := core.DefaultReduceOptions()
		o.Reduce = &d
	} else {
		cp := *o.Reduce
		o.Reduce = &cp
	}
	if o.Reduce.Parallelism == 0 {
		o.Reduce.Parallelism = o.Parallelism
	}
	if o.Deps.Parallelism == 0 {
		o.Deps.Parallelism = o.Parallelism
	}
	return o
}

// Server is the sieved daemon: sharded ingestion plus the online
// windowed pipeline.
type Server struct {
	opts  Options
	store *tsdb.Sharded
	mux   *http.ServeMux

	// tel is the self-observability bundle (registry, instruments,
	// trace ring); always non-nil after New.
	tel *telemetrySet
	// analysis is the read surface the online pipeline assembles
	// datasets from: the store itself, or (with self-scrape enabled)
	// a view of it that filters out the reserved telemetry component.
	analysis tsdb.ReadStore
	// appMaxTime is the high-water mark of /write-ingested application
	// data (ms). With self-scrape enabled the store's own MaxTime is
	// dragged forward by wall-clock telemetry writes that analysis
	// filters out, so the pipeline window anchors here instead (see
	// analysisMaxTime). Seeded from the store at New for recovered data.
	appMaxTime atomic.Int64

	// Health stamps for /healthz readiness (unix nanos): when the
	// background driver started, the last completed cycle, and the last
	// ErrNoData skip (the window not having filled is "waiting", not
	// "stalled").
	driverStartNS atomic.Int64
	lastCycleNS   atomic.Int64
	lastNoDataNS  atomic.Int64

	// Ingest counters (atomics: the write path must not serialize).
	writes      atomic.Int64
	writeErrors atomic.Int64
	samples     atomic.Int64

	// mu guards the published artifact and the topology.
	mu           sync.RWMutex
	graph        *callgraph.Graph
	artifact     *core.Artifact
	artifactJSON json.RawMessage
	signal       Signal
	lastRun      RunInfo
	lastErr      string
	runFailing   bool // drives once-per-state-change pipeline logging

	// runMu serializes pipeline runs (driver tick vs POST /run) and
	// guards the incremental engine's carried state.
	runMu      sync.Mutex
	online     onlineState
	generation atomic.Int64
	runs       atomic.Int64

	// Cumulative incremental-engine counters for /stats (atomics: read
	// by handlers while a run is in flight).
	fullRebuilds    atomic.Int64
	tailQueries     atomic.Int64
	grangerHits     atomic.Int64
	grangerMisses   atomic.Int64
	warmComponents  atomic.Int64
	sweptComponents atomic.Int64

	// rwScratch recycles the remote-write request scratch (body and
	// decompress buffers, decoded WriteRequest, mapped samples) across
	// requests — the per-sample allocation gap vs line protocol was
	// dominated by those four per-request allocations scaling with
	// payload size. Safe to pool: IngestParsed retains nothing (the WAL
	// copies bytes, the shards copy points and build fresh key strings).
	rwScratch sync.Pool
}

// New creates a Server with its backing sharded store. With
// Options.DataDir set the store is durable: New recovers the previous
// life's blocks and WAL before returning, so the server answers /query
// identically to the store that was killed.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.StepMS > opts.WindowMS {
		return nil, fmt.Errorf("server: step %dms exceeds window %dms", opts.StepMS, opts.WindowMS)
	}
	if opts.FullRecomputeEvery < 0 {
		return nil, fmt.Errorf("server: negative FullRecomputeEvery %d", opts.FullRecomputeEvery)
	}
	if opts.RemoteWriteComponentLabel == promremote.MetricNameLabel {
		return nil, fmt.Errorf("server: RemoteWriteComponentLabel cannot be the reserved %s label", promremote.MetricNameLabel)
	}
	var store *tsdb.Sharded
	if opts.DataDir != "" {
		policy, err := tsdb.ParseFsyncPolicy(opts.Fsync)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		store, err = tsdb.OpenSharded(opts.Shards, tsdb.DurabilityOptions{
			Dir:                  opts.DataDir,
			Fsync:                policy,
			FlushInterval:        opts.FlushInterval,
			RetentionMS:          opts.Retention.Milliseconds(),
			CompactInterval:      opts.CompactInterval,
			CompactMaxBlockBytes: opts.CompactMaxBlockBytes,
			Downsample:           opts.Downsample,
		})
		if err != nil {
			return nil, fmt.Errorf("server: opening durable store: %w", err)
		}
	} else {
		store = tsdb.NewSharded(opts.Shards)
	}
	s := &Server{
		opts:  opts,
		store: store,
		graph: opts.CallGraph,
	}
	// Wire self-observability before the store can serve traffic:
	// SetTelemetry is only safe pre-serving, and handlers reach the
	// instruments through s.tel without nil checks.
	s.tel = newTelemetrySet(store, opts.SlowOpThreshold)
	store.SetTelemetry(s.tel.storeTel)
	if opts.SelfScrapeInterval > 0 {
		s.analysis = analysisStore{st: store}
		// Anchor the pipeline window at the recovered data's high-water
		// mark; later /write batches advance it (self-scrape writes do
		// not — see analysisMaxTime).
		s.appMaxTime.Store(store.MaxTime())
	} else {
		s.analysis = store
	}
	// The incremental engine's carried state. It lives only in memory:
	// after a restart the caches start cold and the first cycle goes
	// through the full-rebuild path against the recovered store.
	if opts.Incremental {
		s.online.cache = core.NewWindowCache(opts.AppName, opts.StepMS)
		s.online.gcache = granger.NewCache()
	}
	if opts.WarmStart {
		s.online.warm = core.NewWarmState()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /write", s.handleWrite)
	mux.HandleFunc("POST /api/v1/write", s.handleRemoteWrite)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /query_range", s.handleQueryRange)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /artifact", s.handleArtifact)
	mux.HandleFunc("POST /callgraph", s.handleCallGraph)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP handler (for tests and embedding). Embedders
// of a durable server must call Close when done serving.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the backing sharded store (read-mostly: stats, queries).
func (s *Server) Store() *tsdb.Sharded { return s.store }

// Close flushes and closes a durable store (final checkpoint: remaining
// memory is sealed into a block, the WAL pruned). No-op for an
// in-memory server; safe to call twice. ListenAndServe calls it on
// graceful shutdown.
func (s *Server) Close() error { return s.store.Close() }

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeErrorBody mirrors the historical /write error shape: the stored
// count in header and body alongside the error. A multi-shard durable
// store can fail partially: n samples were stored before the error. The
// stored subset is hash-routed, not a payload prefix, so resending any
// of the payload duplicates points — reconcile via /query.
func writeErrorBody(w http.ResponseWriter, status, stored int, err error) {
	w.Header().Set("X-Sieve-Samples", strconv.Itoa(stored))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "stored": stored})
}

// handleWrite parses the payload itself (rather than delegating to
// store.Write) so rejects are classified — parser vs reserved component
// vs storage — before anything is stored. IngestParsed keeps the
// storage and accounting semantics identical to Write (pinned by
// TestIngestParsedMatchesWrite in internal/tsdb).
func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := s.tel.opWrite.Start()
	defer func() {
		s.tel.writeSeconds.ObserveSince(start)
		sp.End()
	}()
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes+1))
	if err != nil {
		s.writeErrors.Add(1)
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.opts.MaxBodyBytes {
		s.writeErrors.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge, "payload exceeds %d bytes", s.opts.MaxBodyBytes)
		return
	}
	if len(body) == 0 {
		s.writeErrors.Add(1)
		httpError(w, http.StatusBadRequest, "empty body")
		return
	}
	sp.FieldInt("bytes", int64(len(body)))
	samples, err := tsdb.ParseLineProtocol(body)
	if err != nil {
		// Parse errors are the client's (400); nothing was stored.
		s.writeErrors.Add(1)
		s.tel.parseRejects.Inc()
		writeErrorBody(w, http.StatusBadRequest, 0, err)
		return
	}
	var batchMaxT int64
	if s.selfScrapeEnabled() {
		for i := range samples {
			if samples[i].Component == ReservedComponent {
				s.writeErrors.Add(1)
				s.tel.reservedRejects.Inc()
				httpError(w, http.StatusBadRequest,
					"component %q is reserved for self-telemetry while self-scrape is enabled", ReservedComponent)
				return
			}
			if samples[i].T > batchMaxT {
				batchMaxT = samples[i].T
			}
		}
	}
	n, err := s.store.IngestParsed(samples, len(body), start)
	sp.FieldInt("samples", int64(n))
	if err != nil {
		// Storage errors are ours (500), even when nothing was stored —
		// a full disk must not read as "malformed payload" to a client
		// that drops 4xx as permanent.
		s.writeErrors.Add(1)
		s.samples.Add(int64(n))
		s.tel.ingestSamples.Add(uint64(n))
		status := http.StatusBadRequest
		if errors.Is(err, tsdb.ErrStorage) {
			status = http.StatusInternalServerError
			s.tel.storageErrors.Inc()
		}
		writeErrorBody(w, status, n, err)
		return
	}
	s.writes.Add(1)
	s.samples.Add(int64(n))
	s.tel.ingestSamples.Add(uint64(n))
	if s.selfScrapeEnabled() {
		s.advanceAppMaxTime(batchMaxT)
	}
	w.Header().Set("X-Sieve-Samples", strconv.Itoa(n))
	w.WriteHeader(http.StatusNoContent)
}

// QueryResponse is the GET /query body.
type QueryResponse struct {
	Component string       `json:"component"`
	Metric    string       `json:"metric"`
	Points    []tsdb.Point `json:"points"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := s.tel.opQuery.Start()
	defer func() {
		s.tel.querySeconds.ObserveSince(start)
		sp.End()
	}()
	q := r.URL.Query()
	component, metric := q.Get("component"), q.Get("metric")
	sp.Field("component", component)
	sp.Field("metric", metric)
	if component == "" || metric == "" {
		httpError(w, http.StatusBadRequest, "component and metric query parameters are required")
		return
	}
	parse := func(key string, fallback int64) (int64, error) {
		v := q.Get(key)
		if v == "" {
			return fallback, nil
		}
		return strconv.ParseInt(v, 10, 64)
	}
	from, err := parse("from", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad from: %v", err)
		return
	}
	to, err := parse("to", s.store.MaxTime()+1)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad to: %v", err)
		return
	}
	pts, err := s.store.Query(component, metric, from, to)
	if err != nil {
		// Only "never heard of that series" is a 404; anything else
		// (corrupt chunk, I/O failure) is a storage error the client
		// must not mistake for absence.
		if errors.Is(err, tsdb.ErrUnknownSeries) {
			httpError(w, http.StatusNotFound, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, QueryResponse{Component: component, Metric: metric, Points: pts})
}

// QueryRangeResponse is the GET /query_range body: the resolved query
// echo plus one entry per matched series with points in range, sorted by
// series key. Aggregated queries return one point per non-empty bucket,
// T = bucket start.
type QueryRangeResponse struct {
	From    int64               `json:"from"`
	To      int64               `json:"to"`
	Agg     string              `json:"agg"`
	StepMS  int64               `json:"step_ms,omitempty"`
	Results []tsdb.SeriesResult `json:"results"`
}

// handleQueryRange serves the query engine over HTTP: component/metric
// glob matchers, optional aggregation push-down (agg + step), evaluated
// with chunk-skipping reads and per-series fan-out. Unlike /query, an
// empty match is a 200 with no results — a matcher that matches nothing
// is an answer, not an error.
func (s *Server) handleQueryRange(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := s.tel.opRange.Start()
	defer sp.End()
	p := r.URL.Query()
	q, err := tsdb.ParseRangeQuery(
		p.Get("component"), p.Get("metric"),
		p.Get("from"), p.Get("to"),
		p.Get("agg"), p.Get("step"),
		s.store.MaxTime()+1,
	)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Latency split by evaluation strategy: push-down aggregations
	// (min/max/count/rate) ride chunk summaries, sum/avg must decode,
	// raw reads stream points out. The split makes "queries got slow"
	// attributable to the path that regressed.
	defer func() {
		switch q.Agg {
		case tsdb.AggNone:
			s.tel.rangeRaw.ObserveSince(start)
		case tsdb.AggSum, tsdb.AggAvg:
			s.tel.rangeDecode.ObserveSince(start)
		default:
			s.tel.rangePushdown.ObserveSince(start)
		}
	}()
	sp.Field("component", q.Component)
	sp.Field("metric", q.Metric)
	sp.Field("agg", q.Agg.String())
	q.Parallelism = s.opts.QueryParallelism
	results, err := s.store.QueryRange(r.Context(), q)
	sp.FieldInt("results", int64(len(results)))
	if err != nil {
		if r.Context().Err() != nil {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	if results == nil {
		results = []tsdb.SeriesResult{}
	}
	writeJSON(w, QueryRangeResponse{
		From: q.From, To: q.To, Agg: q.Agg.String(), StepMS: q.StepMS,
		Results: results,
	})
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	App      string `json:"app"`
	Shards   int    `json:"shards"`
	StepMS   int64  `json:"step_ms"`
	WindowMS int64  `json:"window_ms"`
	DataDir  string `json:"data_dir,omitempty"`
	Durable  bool   `json:"durable"`

	Points          int   `json:"points"`
	Series          int   `json:"series"`
	StorageBytes    int   `json:"storage_bytes"`
	NetworkInBytes  int   `json:"network_in_bytes"`
	NetworkOutBytes int   `json:"network_out_bytes"`
	IngestCPUMS     int64 `json:"ingest_cpu_ms"`
	MaxTimeMS       int64 `json:"max_time_ms"`

	// Checkpoint health of a durable store: failed attempts since open
	// and the latest failure message ("" while healthy). A growing count
	// means WAL segments are piling up with no blocks being written.
	CheckpointFailures  int    `json:"checkpoint_failures,omitempty"`
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`

	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	Samples     int64 `json:"samples"`

	Generation   int64  `json:"generation"`
	PipelineRuns int64  `json:"pipeline_runs"`
	LastError    string `json:"last_error,omitempty"`

	// Incremental-engine health: cumulative counts since boot of full
	// window rebuilds vs tail-only advances, memoized vs recomputed
	// Granger pair tests, and warm-started vs fully re-swept component
	// reductions. LastRun carries the most recent run's per-stage
	// elapsed breakdown so cycle-time regressions are attributable.
	Incremental        bool     `json:"incremental,omitempty"`
	WarmStart          bool     `json:"warm_start,omitempty"`
	FullRebuilds       int64    `json:"full_rebuilds,omitempty"`
	TailQueries        int64    `json:"tail_queries,omitempty"`
	GrangerCacheHits   int64    `json:"granger_cache_hits,omitempty"`
	GrangerCacheMisses int64    `json:"granger_cache_misses,omitempty"`
	WarmComponents     int64    `json:"warm_components,omitempty"`
	SweptComponents    int64    `json:"swept_components,omitempty"`
	LastRun            *RunInfo `json:"last_run,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	s.mu.RLock()
	lastErr := s.lastErr
	var lastRun *RunInfo
	if s.lastRun.Generation > 0 {
		run := s.lastRun
		lastRun = &run
	}
	s.mu.RUnlock()
	writeJSON(w, StatsResponse{
		App:                 s.opts.AppName,
		Shards:              s.store.NumShards(),
		StepMS:              s.opts.StepMS,
		WindowMS:            s.opts.WindowMS,
		DataDir:             s.store.DataDir(),
		Durable:             s.store.Durable(),
		Points:              st.Points,
		Series:              st.Series,
		StorageBytes:        st.StorageBytes,
		NetworkInBytes:      st.NetworkInBytes,
		NetworkOutBytes:     st.NetworkOutBytes,
		IngestCPUMS:         st.IngestCPU.Milliseconds(),
		MaxTimeMS:           s.store.MaxTime(),
		CheckpointFailures:  st.CheckpointFailures,
		LastCheckpointError: st.LastCheckpointError,
		Writes:              s.writes.Load(),
		WriteErrors:         s.writeErrors.Load(),
		Samples:             s.samples.Load(),
		Generation:          s.generation.Load(),
		PipelineRuns:        s.runs.Load(),
		LastError:           lastErr,
		Incremental:         s.opts.Incremental,
		WarmStart:           s.opts.WarmStart,
		FullRebuilds:        s.fullRebuilds.Load(),
		TailQueries:         s.tailQueries.Load(),
		GrangerCacheHits:    s.grangerHits.Load(),
		GrangerCacheMisses:  s.grangerMisses.Load(),
		WarmComponents:      s.warmComponents.Load(),
		SweptComponents:     s.sweptComponents.Load(),
		LastRun:             lastRun,
	})
}

// Signal is the live autoscaling signal derived from the dependency
// graph: the metric appearing in the most Granger relations (§4.1).
type Signal struct {
	Metric    string `json:"metric"`
	Relations int    `json:"relations"`
}

// ArtifactEnvelope is the GET /artifact body: the serialized artifact
// plus the run metadata and the live autoscaling signal.
type ArtifactEnvelope struct {
	Generation  int64           `json:"generation"`
	App         string          `json:"app"`
	WindowStart int64           `json:"window_start_ms"`
	WindowEnd   int64           `json:"window_end_ms"`
	ElapsedMS   int64           `json:"elapsed_ms"`
	Signal      Signal          `json:"signal"`
	Artifact    json.RawMessage `json:"artifact"`
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.artifactJSON == nil {
		httpError(w, http.StatusNotFound, "no artifact yet: the pipeline has not completed a run")
		return
	}
	writeJSON(w, ArtifactEnvelope{
		Generation:  s.lastRun.Generation,
		App:         s.opts.AppName,
		WindowStart: s.lastRun.Start,
		WindowEnd:   s.lastRun.End,
		ElapsedMS:   s.lastRun.Elapsed.Milliseconds(),
		Signal:      s.signal,
		Artifact:    s.artifactJSON,
	})
}

// CallEdge is one edge of an uploaded topology.
type CallEdge struct {
	Caller string `json:"caller"`
	Callee string `json:"callee"`
	Calls  int    `json:"calls"`
}

func (s *Server) handleCallGraph(w http.ResponseWriter, r *http.Request) {
	var edges []CallEdge
	dec := json.NewDecoder(io.LimitReader(r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(&edges); err != nil {
		httpError(w, http.StatusBadRequest, "decoding call graph: %v", err)
		return
	}
	g := callgraph.New()
	for _, e := range edges {
		n := e.Calls
		if n <= 0 {
			n = 1
		}
		g.AddCall(e.Caller, e.Callee, n)
	}
	s.mu.Lock()
	s.graph = g
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	info, err := s.RunPipelineOnce(r.Context())
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNoData):
			status = http.StatusConflict
		case r.Context().Err() != nil:
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, "%v", err)
		return
	}
	writeJSON(w, info)
}
