// Package server turns the batch Sieve pipeline into a long-running
// service: sieved. It exposes the InfluxDB-style line protocol over
// HTTP (POST /write), backed by the hash-partitioned tsdb.Sharded store
// so concurrent writers scale with cores, and keeps the pipeline's
// Artifact fresh by re-running Reduce + Granger over a sliding time
// window of the ingested data (the online driver in online.go). The
// latest artifact — with the live autoscaling signal from
// MostFrequentMetric — is served from GET /artifact.
//
// Endpoints:
//
//	POST /write      line-protocol batch; 204 + X-Sieve-Samples on success
//	GET  /query      ?component=&metric=&from=&to= -> JSON points
//	GET  /stats      store + server counters
//	GET  /artifact   latest pipeline output (404 until the first run)
//	POST /callgraph  JSON [{"caller","callee","calls"}] topology upload
//	POST /run        force one synchronous pipeline run
//
// # Durability
//
// With Options.DataDir set, the store is the durable engine of
// internal/tsdb: every acknowledged write is covered by a per-shard
// write-ahead log, a background flusher seals memory into immutable
// Gorilla-compressed blocks, and Options.Retention bounds disk use. New
// recovers the previous life's data — block files plus WAL replay —
// before the server takes traffic, so a restarted sieved anchors its
// sliding analysis window at the recovered high-water mark and answers
// /query byte-identically to the store that was killed. ListenAndServe
// checkpoints and closes the store on graceful shutdown; embedders
// using Handler call Server.Close themselves.
//
// # Incremental execution
//
// With Options.Incremental the online driver carries state across
// cycles (onlineState in online.go): dataset assembly rolls a
// ring-buffered window cache forward with one tail-only store query,
// and Granger pair tests are memoized by series-content fingerprints —
// both bit-identical to a from-scratch run under append-mostly ingest,
// with Options.FullRecomputeEvery as the periodic self-heal. The
// opt-in Options.WarmStart additionally seeds clustering from the
// previous cycle and skips the silhouette sweep while quality holds.
// RunInfo and /stats break every cycle down per stage and report cache
// hit/recompute counts. The carried state is memory-only: a restarted
// server rebuilds it through the full path on its first cycle.
package server
