package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/core"
	"github.com/sieve-microservices/sieve/internal/loadgen"
	"github.com/sieve-microservices/sieve/internal/metrics"
)

// chainGraph is the static topology of chainSpec, configured identically
// on every server under comparison so Granger testing runs on both.
func chainGraph() *callgraph.Graph {
	g := callgraph.New()
	g.AddCall("lb", "api", 100)
	g.AddCall("api", "db", 100)
	return g
}

// incrementalOptions are the equivalence-suite server options: warm
// start OFF (bit-identity required), everything else incremental.
func incrementalOptions(shards int) Options {
	return Options{
		AppName:          "chain",
		Shards:           shards,
		WindowMS:         50 * 500,
		MinWindowSamples: 32,
		CallGraph:        chainGraph(),
		Incremental:      true,
	}
}

// driveChunk advances the app by one pattern chunk, shipping scrapes
// over the client's /write. The same app instance keeps its clock across
// chunks, so an incremental server sees a continuous stream.
func driveChunk(t *testing.T, a *app.App, c *Client, chunk loadgen.Pattern) {
	t.Helper()
	coll, err := metrics.NewCollector(c, a.Registries()...)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadgen.DriveCollector(context.Background(), a, chunk, coll, 1); err != nil {
		t.Fatal(err)
	}
}

// marshaledArtifact returns the published artifact's canonical bytes.
func marshaledArtifact(t *testing.T, s *Server) []byte {
	t.Helper()
	art, _ := s.Artifact()
	if art == nil {
		t.Fatal("no artifact published")
	}
	data, err := core.MarshalArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// referenceArtifact replays the full ingest prefix into a fresh batch
// store (the deterministic simulators reproduce the exact byte stream)
// and runs ONE from-scratch pipeline cycle on it, returning the
// marshaled artifact and run info. opts should match the incremental
// server's analysis knobs; the reference is always cold.
func referenceArtifact(t *testing.T, opts Options, pattern loadgen.Pattern, seed int64) ([]byte, *RunInfo) {
	t.Helper()
	opts.DataDir = "" // reference runs in memory
	ref, _, c := newTestServer(t, opts)
	a, err := app.New(chainSpec(), seed)
	if err != nil {
		t.Fatal(err)
	}
	driveChunk(t, a, c, pattern)
	info, err := ref.RunPipelineOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if asm := info.Assembly; asm == nil || !asm.FullRebuild {
		t.Fatalf("reference run was not a full rebuild: %+v", asm)
	}
	return marshaledArtifact(t, ref), info
}

// TestIncrementalEquivalence is the suite's core pin: with warm start
// disabled, the artifact (and its marshaled bytes) published after K
// incremental cycles must bit-equal a from-scratch run over the same
// window — at multiple shard counts — while each warm cycle does
// asymptotically less work: exactly one tail store query, zero
// full-window queries.
func TestIncrementalEquivalence(t *testing.T) {
	// The first chunk fills the 50-step window; later chunks slide it by
	// 20 steps, keeping a 60% overlap for the rings to reuse.
	const seed = 11
	cuts := []int{60, 80, 100, 120}
	pattern := loadgen.Random(5, cuts[len(cuts)-1], 100, 1500)

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, _, c := newTestServer(t, incrementalOptions(shards))
			a, err := app.New(chainSpec(), seed)
			if err != nil {
				t.Fatal(err)
			}
			prev := 0
			for cycle, cut := range cuts {
				driveChunk(t, a, c, pattern[prev:cut])
				prev = cut
				info, err := s.RunPipelineOnce(context.Background())
				if err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
				asm := info.Assembly
				if asm == nil {
					t.Fatalf("cycle %d: incremental run reported no assembly stats", cycle)
				}
				if cycle == 0 {
					if !asm.FullRebuild || asm.FullQueries != 1 {
						t.Fatalf("cycle 0 should cold-start with one full query: %+v", asm)
					}
				} else {
					if asm.FullRebuild || asm.TailQueries != 1 || asm.FullQueries != 0 {
						t.Fatalf("cycle %d should be one tail query, no full rebuild: %+v", cycle, asm)
					}
				}

				got := marshaledArtifact(t, s)
				want, refInfo := referenceArtifact(t, incrementalOptions(1), pattern[:cut], seed)
				if refInfo.Start != info.Start || refInfo.End != info.End {
					t.Fatalf("cycle %d: window mismatch: incremental [%d,%d), reference [%d,%d)",
						cycle, info.Start, info.End, refInfo.Start, refInfo.End)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("cycle %d (shards=%d): incremental artifact diverged from from-scratch run (%d vs %d bytes)",
						cycle, shards, len(got), len(want))
				}
				if cycle > 0 && info.GrangerCacheHits+info.GrangerCacheMisses == 0 {
					t.Fatalf("cycle %d: granger cache saw no traffic", cycle)
				}
			}
		})
	}
}

// TestIncrementalRerunWithoutNewData: a cycle on an unchanged window
// costs no store queries and memoizes every Granger pair, and the
// artifact bytes stay identical.
func TestIncrementalRerunWithoutNewData(t *testing.T) {
	s, _, c := newTestServer(t, incrementalOptions(2))
	a, err := app.New(chainSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	driveChunk(t, a, c, loadgen.Random(5, 80, 100, 1500))
	if _, err := s.RunPipelineOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := marshaledArtifact(t, s)

	info, err := s.RunPipelineOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	asm := info.Assembly
	if asm.FullRebuild || asm.TailQueries != 0 || asm.FullQueries != 0 {
		t.Fatalf("no-new-data cycle still queried the store: %+v", asm)
	}
	if info.GrangerCacheMisses != 0 || info.GrangerCacheHits == 0 {
		t.Fatalf("no-new-data cycle recomputed Granger pairs: hits=%d misses=%d",
			info.GrangerCacheHits, info.GrangerCacheMisses)
	}
	if !bytes.Equal(first, marshaledArtifact(t, s)) {
		t.Fatal("unchanged window produced different artifact bytes")
	}
}

// TestIncrementalForcedFullRecompute: the FullRecomputeEvery cadence
// drops all carried state — the cycle full-rebuilds, re-tests every
// pair — and still lands on the same bytes as the reference.
func TestIncrementalForcedFullRecompute(t *testing.T) {
	const seed, chunkTicks = 17, 60
	opts := incrementalOptions(2)
	opts.FullRecomputeEvery = 2
	s, _, c := newTestServer(t, opts)
	a, err := app.New(chainSpec(), seed)
	if err != nil {
		t.Fatal(err)
	}
	pattern := loadgen.Random(9, chunkTicks*3, 100, 1500)
	var infos []*RunInfo
	for cycle := 0; cycle < 3; cycle++ {
		driveChunk(t, a, c, pattern[cycle*chunkTicks:(cycle+1)*chunkTicks])
		info, err := s.RunPipelineOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		infos = append(infos, info)
	}
	if infos[0].ForcedFullRecompute || infos[1].ForcedFullRecompute {
		t.Fatalf("cadence fired early: %+v %+v", infos[0], infos[1])
	}
	if !infos[2].ForcedFullRecompute || !infos[2].Assembly.FullRebuild {
		t.Fatalf("cycle 2 should force a full recompute: %+v", infos[2])
	}
	if infos[2].GrangerCacheHits != 0 {
		t.Fatalf("forced recompute should start from a flushed granger cache, got %d hits", infos[2].GrangerCacheHits)
	}
	got := marshaledArtifact(t, s)
	want, _ := referenceArtifact(t, incrementalOptions(1), pattern, seed)
	if !bytes.Equal(got, want) {
		t.Fatal("forced full recompute diverged from reference")
	}
}

// TestIncrementalRestartMidSequence: checkpoint, hard-stop (no Close),
// and reopen the durable store mid-sequence, at a different shard count.
// The incremental state is memory-only, so the revived server must
// rebuild through the full path — and end up bit-equal to a from-scratch
// run over the recovered data plus the post-restart tail.
func TestIncrementalRestartMidSequence(t *testing.T) {
	// Chunk cuts keep the post-restart window overlapping the recovered
	// data, so the revived pipeline genuinely reads what the store
	// replayed, not just fresh ingest.
	const seed = 23
	cuts := []int{60, 80}
	dir := t.TempDir()
	pattern := loadgen.Random(13, 100, 100, 1500)

	opts := incrementalOptions(3)
	opts.DataDir, opts.Fsync, opts.FlushInterval = dir, "never", -1
	s1, hs1, c1 := newTestServer(t, opts)
	a, err := app.New(chainSpec(), seed)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for cycle, cut := range cuts {
		driveChunk(t, a, c1, pattern[prev:cut])
		prev = cut
		if _, err := s1.RunPipelineOnce(context.Background()); err != nil {
			t.Fatalf("pre-kill cycle %d: %v", cycle, err)
		}
	}
	// Checkpoint (seals memory into a block, prunes WAL), then SIGKILL:
	// the HTTP listener dies, the store is abandoned un-Closed.
	if err := s1.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	hs1.Close()

	opts2 := incrementalOptions(2) // recover at a different shard count
	opts2.DataDir, opts2.Fsync, opts2.FlushInterval = dir, "never", -1
	s2, _, c2 := newTestServer(t, opts2)
	driveChunk(t, a, c2, pattern[cuts[1]:])
	info, err := s2.RunPipelineOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if asm := info.Assembly; asm == nil || !asm.FullRebuild || asm.RebuildReason != "first cycle" {
		t.Fatalf("post-restart cycle should rebuild via the full path: %+v", info.Assembly)
	}

	got := marshaledArtifact(t, s2)
	want, refInfo := referenceArtifact(t, incrementalOptions(1), pattern, seed)
	if refInfo.Start != info.Start || refInfo.End != info.End {
		t.Fatalf("window mismatch after restart: [%d,%d) vs reference [%d,%d)",
			info.Start, info.End, refInfo.Start, refInfo.End)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-restart incremental artifact diverged from from-scratch run over the recovered data")
	}

	// A second post-restart cycle rides the rebuilt rings again.
	driveChunk(t, a, c2, loadgen.Constant(400, 20))
	info2, err := s2.RunPipelineOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info2.Assembly.FullRebuild || info2.Assembly.TailQueries != 1 {
		t.Fatalf("second post-restart cycle should be incremental: %+v", info2.Assembly)
	}
}

// TestIncrementalWarmStartOnline: with warm start ON the pipeline keeps
// publishing, warm cycles engage (skipping the sweep), reported
// silhouettes stay within the configured tolerance of each component's
// last sweep baseline, and the cumulative warm/swept counters feed
// /stats. (The acceptance rule itself — warm quality vs baseline, and
// re-sweep reconvergence to the batch reduction — is pinned bitwise by
// the core warm-reduce tests; this exercises the wiring on live HTTP
// ingest.)
func TestIncrementalWarmStartOnline(t *testing.T) {
	// First chunk fills the window, later chunks slide it by 20 of 50
	// steps so cluster shapes persist across cycles.
	cuts := []int{60, 80, 100, 120}
	opts := incrementalOptions(2)
	opts.WarmStart = true
	opts.WarmResweepEvery = 2
	s, _, c := newTestServer(t, opts)
	a, err := app.New(chainSpec(), 29)
	if err != nil {
		t.Fatal(err)
	}
	pattern := loadgen.Random(21, cuts[len(cuts)-1], 100, 1500)

	// A sweep (re)sets a component's baseline; warm cycles must hold
	// within tolerance of it. Sweeps can legitimately happen off-cadence
	// (metric-set change, quality degradation), so track per component
	// by comparing each cycle's K: equal K + warm accounting means the
	// invariant the core layer enforces was applied here too.
	baseline := map[string]float64{}
	prev := 0
	for cycle, cut := range cuts {
		driveChunk(t, a, c, pattern[prev:cut])
		prev = cut
		info, err := s.RunPipelineOnce(context.Background())
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if info.WarmReduce == nil {
			t.Fatalf("cycle %d: warm-start run missing WarmReduce stats", cycle)
		}
		if cycle == 0 && info.WarmReduce.WarmComponents != 0 {
			t.Fatalf("cycle 0 cannot be warm: %+v", info.WarmReduce)
		}
		art, _ := s.Artifact()
		if info.WarmReduce.SweptComponents > 0 {
			for comp, cr := range art.Reduction {
				baseline[comp] = cr.Silhouette
			}
			continue
		}
		for comp, cr := range art.Reduction {
			if len(cr.Clusters) < 2 {
				continue // trivial components carry no silhouette
			}
			if cr.Silhouette < baseline[comp]-core.DefaultWarmSilhouetteTolerance-1e-12 {
				t.Fatalf("cycle %d: %s silhouette %.4f fell beyond tolerance below baseline %.4f",
					cycle, comp, cr.Silhouette, baseline[comp])
			}
		}
	}
	if s.warmComponents.Load() == 0 {
		t.Fatal("warm path never engaged over four overlapping cycles")
	}
	if s.sweptComponents.Load() == 0 {
		t.Fatal("no component ever swept (cycle 0 must sweep)")
	}
}

// TestIncrementalCancelledRunIsNotFailure: a caller abandoning a run
// (disconnected POST /run, shutdown mid-cycle) must not flip the
// pipeline into the failing state or trigger the failing/recovered log
// pair — and the next cycle still works off consistent carried state.
func TestIncrementalCancelledRunIsNotFailure(t *testing.T) {
	s, _, c := newTestServer(t, incrementalOptions(2))
	a, err := app.New(chainSpec(), 37)
	if err != nil {
		t.Fatal(err)
	}
	driveChunk(t, a, c, loadgen.Random(7, 80, 100, 1500))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunPipelineOnce(ctx); err == nil {
		t.Fatal("cancelled run should error")
	}
	s.mu.RLock()
	failing := s.runFailing
	s.mu.RUnlock()
	if failing {
		t.Fatal("cancelled run flipped the pipeline into the failing state")
	}
	if _, err := s.RunPipelineOnce(context.Background()); err != nil {
		t.Fatalf("run after abandoned cycle: %v", err)
	}
}

// TestOnlineStateRacesIngestAndReaders exercises the incremental
// engine's carried state against concurrent ingest, /artifact readers,
// and /stats polls (run under -race in CI).
func TestOnlineStateRacesIngestAndReaders(t *testing.T) {
	opts := incrementalOptions(4)
	opts.WarmStart = true
	opts.FullRecomputeEvery = 3
	s, hs, c := newTestServer(t, opts)
	a, err := app.New(chainSpec(), 31)
	if err != nil {
		t.Fatal(err)
	}
	driveChunk(t, a, c, loadgen.Random(7, 80, 100, 1500))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // ingest racing the pipeline
		defer wg.Done()
		coll, err := metrics.NewCollector(c, a.Registries()...)
		if err != nil {
			t.Error(err)
			return
		}
		for ctx.Err() == nil {
			if err := loadgen.DriveCollector(ctx, a, loadgen.Constant(300, 5), coll, 1); err != nil {
				return
			}
		}
	}()
	go func() { // artifact readers
		defer wg.Done()
		for ctx.Err() == nil {
			resp, err := http.Get(hs.URL + "/artifact")
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	go func() { // stats readers
		defer wg.Done()
		for ctx.Err() == nil {
			if _, err := c.Stats(); err != nil {
				return
			}
		}
	}()

	for i := 0; i < 6; i++ {
		if _, err := s.RunPipelineOnce(ctx); err != nil && ctx.Err() == nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	cancel()
	wg.Wait()
	if gen := s.generation.Load(); gen < 6 {
		t.Fatalf("generation = %d, want >= 6", gen)
	}
}
