// Package parallel provides the deterministic worker-pool primitive
// behind the pipeline's concurrent stages. Tasks are addressed by index,
// so callers write results into pre-sized slices and merge them in task
// order afterwards — the output is bit-identical to a sequential loop at
// any worker count. The package is separate from internal/core (which
// hosts the pipeline-facing executor) so that internal/kshape, which core
// imports, can fan out its silhouette sweep through the same pool.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Workers resolves a Parallelism knob to an effective worker count:
// 0 means runtime.GOMAXPROCS(0), anything below 1 clamps to 1.
func Workers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// ForEach runs task(ctx, i) for every i in [0, n) on up to workers
// goroutines (workers is resolved via Workers). A task failure cancels
// the derived context so in-flight siblings can stop early and workers
// stop claiming queued tasks (a task claimed concurrently with the
// cancellation may still start, with an already-canceled ctx). Error selection approximates the sequential
// loop: among the observed failures, the lowest task index wins, and a
// real error is never displaced by a sibling echoing the cancellation it
// triggered (a lower-index task aborted mid-flight by that cancellation
// reports an echo rather than the error it might eventually have hit, so
// exact sequential equivalence of the error value is best-effort). When
// the parent context is canceled before every task has completed,
// ForEach returns ctx.Err() promptly without draining the remaining
// tasks; once all n tasks have finished successfully it returns nil, as
// the sequential loop would.
//
// Tasks receive only their index: callers keep determinism by writing
// into a pre-allocated slot per index and merging in index order after
// ForEach returns.
func ForEach(ctx context.Context, workers, n int, task func(ctx context.Context, i int) error) error {
	return ForEachWorker(ctx, workers, n, func(ctx context.Context, _, i int) error {
		return task(ctx, i)
	})
}

// ForEachWorker is ForEach with the executing worker's id (in
// [0, Workers(workers))) passed to each task. The id lets callers thread
// per-worker scratch buffers through the fan-out — index into a pre-sized
// slice of scratches, no sync.Pool, race-detector clean — while the
// worker count stays an execution detail that never affects results.
// The sequential fast path always reports worker 0.
func ForEachWorker(ctx context.Context, workers, n int, task func(ctx context.Context, worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := task(ctx, 0, i); err != nil {
				return err
			}
		}
		return nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu        sync.Mutex
		next      int
		completed int
		firstErr  error
		errIdx    int
		wg        sync.WaitGroup
	)
	// fail records the failure the sequential loop would have surfaced:
	// lowest task index wins, and a cancellation echo (a sibling
	// returning ctx.Err() because an earlier failure canceled the pool)
	// never displaces a real error.
	fail := func(i int, err error) {
		mu.Lock()
		echo := errors.Is(err, context.Canceled)
		switch {
		case firstErr == nil:
			firstErr, errIdx = err, i
		case !echo && errors.Is(firstErr, context.Canceled):
			firstErr, errIdx = err, i
		case echo == errors.Is(firstErr, context.Canceled) && i < errIdx:
			firstErr, errIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	claim := func() int {
		mu.Lock()
		i := next
		next++
		mu.Unlock()
		return i
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := claim()
				if i >= n {
					return
				}
				if err := task(ctx, worker, i); err != nil {
					fail(i, err)
					return
				}
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	// Like the sequential loop, a cancellation racing the tail of the
	// run only surfaces if some task was actually left undone.
	if completed < n {
		return parent.Err()
	}
	return nil
}
