package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != 1 {
		t.Errorf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestForEachRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			counts := make([]int32, n)
			err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
				atomic.AddInt32(&counts[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("task %d ran %d times", i, c)
				}
			}
		})
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatalf("ForEach with 0 tasks: %v", err)
	}
}

func TestForEachDeterministicMerge(t *testing.T) {
	const n = 64
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 8} {
		got := make([]int, n)
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			got[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran int32
		err := ForEach(context.Background(), workers, 50, func(_ context.Context, i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 7 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
	}
}

func TestForEachErrorStopsDispatch(t *testing.T) {
	boom := errors.New("boom")
	var started int32
	err := ForEach(context.Background(), 2, 1000, func(ctx context.Context, i int) error {
		atomic.AddInt32(&started, 1)
		if i == 0 {
			return boom
		}
		// Siblings should observe the cancellation instead of draining the
		// whole queue.
		select {
		case <-ctx.Done():
		case <-time.After(time.Second):
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := atomic.LoadInt32(&started); n > 10 {
		t.Errorf("%d tasks started after failure; dispatch did not stop", n)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	errA := errors.New("task 3")
	errB := errors.New("task 47")
	for round := 0; round < 20; round++ {
		err := ForEach(context.Background(), 8, 48, func(_ context.Context, i int) error {
			switch i {
			case 3:
				// Fail late, so the higher-index failure is observed first.
				time.Sleep(10 * time.Millisecond)
				return errA
			case 47:
				return errB
			default:
				return nil
			}
		})
		if !errors.Is(err, errA) {
			t.Fatalf("round %d: err = %v, want the lowest-index failure %v", round, err, errA)
		}
	}
}

func TestForEachRealErrorBeatsCancellationEcho(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(context.Background(), 8, 16, func(ctx context.Context, i int) error {
		if i == 10 {
			return boom
		}
		// Lower-index siblings echo the cancellation that the real
		// failure triggered; they must not mask it.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Second):
			return nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestForEachCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForEach(ctx, 4, 100, func(_ context.Context, i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachCancelAfterLastTaskStillSucceeds(t *testing.T) {
	// A cancellation racing the very end of the run must not discard a
	// fully computed result set — the sequential loop would have
	// finished too.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 32
	var done int32
	err := ForEach(ctx, 4, n, func(_ context.Context, i int) error {
		if atomic.AddInt32(&done, 1) == n {
			cancel()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want nil: every task completed before the cancellation", err)
	}
}

func TestForEachCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForEach(ctx, 2, 1000, func(_ context.Context, i int) error {
		if atomic.AddInt32(&ran, 1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Errorf("all %d tasks ran despite cancellation", n)
	}
}
