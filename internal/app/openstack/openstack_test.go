package openstack

import (
	"strings"
	"testing"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/trace"
)

func TestSpecBuildsWithSixteenComponents(t *testing.T) {
	a, err := New(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.Components()); got != 16 {
		t.Errorf("components = %d, want 16", got)
	}
}

func TestTable5PopulationTotals(t *testing.T) {
	if got := TotalMetrics(); got != 508 {
		t.Errorf("total metrics = %d, want 508 (Table 5)", got)
	}
	// Table 5's rows sum to 22 new / 98 discarded (its totals row prints
	// 22/91, inconsistent with its own rows; we follow the rows).
	newM, discarded := ChangedMetrics()
	if newM != 22 || discarded != 98 {
		t.Errorf("changed = %d new / %d discarded, want 22/98 (Table 5 rows)", newM, discarded)
	}
}

func TestSpecBudgetsMatchTable5(t *testing.T) {
	// Every component's family list (plus constants) must expand to
	// exactly its Table 5 total, with the phase split matching the
	// new/discarded columns.
	spec := Spec()
	for _, c := range spec.Components {
		pop := populations[c.Name]
		var always, healthy, faulty int
		for _, f := range c.Families {
			n := 1
			if len(f.Variants) > 0 {
				n = len(f.Variants)
			}
			switch f.Phase {
			case app.PhaseHealthyOnly:
				healthy += n
			case app.PhaseFaultyOnly:
				faulty += n
			default:
				always += n
			}
		}
		always += len(c.Constants)
		if always+healthy+faulty != pop.total {
			t.Errorf("%s: %d metrics, want %d", c.Name, always+healthy+faulty, pop.total)
		}
		if healthy != pop.discarded {
			t.Errorf("%s: %d healthy-only, want %d", c.Name, healthy, pop.discarded)
		}
		if faulty != pop.new {
			t.Errorf("%s: %d faulty-only, want %d", c.Name, faulty, pop.new)
		}
	}
}

func TestFaultFlipsHeadlineMetrics(t *testing.T) {
	correct, err := New(1, false)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := New(1, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		correct.Step(150)
		faulty.Step(150)
	}

	cNova := correct.Registry("nova-api").Names()
	fNova := faulty.Registry("nova-api").Names()
	if !has(cNova, "nova_instances_in_state_ACTIVE") || has(cNova, "nova_instances_in_state_ERROR") {
		t.Errorf("correct nova-api population wrong: %v", filter(cNova, "state"))
	}
	if has(fNova, "nova_instances_in_state_ACTIVE") || !has(fNova, "nova_instances_in_state_ERROR") {
		t.Errorf("faulty nova-api population wrong: %v", filter(fNova, "state"))
	}

	fNeutron := faulty.Registry("neutron-server").Names()
	if !has(fNeutron, "neutron_ports_in_status_DOWN") {
		t.Error("faulty neutron-server must export ports DOWN")
	}
	if faulty.ErrorRate("neutron-server") <= correct.ErrorRate("neutron-server") {
		t.Error("fault must raise neutron-server error rate")
	}
}

func TestCallGraphShape(t *testing.T) {
	a, err := New(1, false)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer(1<<16, nil)
	a.AttachTracer(tr)
	for i := 0; i < 20; i++ {
		a.Step(200)
	}
	g := callgraph.FromSyscallEvents(tr.Events())
	for _, edge := range [][2]string{
		{"haproxy", "nova-api"},
		{"nova-api", "rabbitmq"},
		{"rabbitmq", "nova-compute"},
		{"nova-compute", "nova-libvirt"},
		{"neutron-server", "mariadb"},
		{"keystone", "memcached"},
	} {
		if !g.HasEdge(edge[0], edge[1]) {
			t.Errorf("missing call edge %s -> %s", edge[0], edge[1])
		}
	}
}

func has(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func filter(names []string, substr string) []string {
	var out []string
	for _, n := range names {
		if strings.Contains(n, substr) {
			out = append(out, n)
		}
	}
	return out
}
