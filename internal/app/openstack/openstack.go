// Package openstack defines the simulated OpenStack Kolla deployment used
// by the paper's root-cause-analysis case study (§4.2, §6.3): 16
// components (Nova, Neutron, Glance, Keystone services plus RabbitMQ,
// memcached, MariaDB and an haproxy front) exporting 508 metrics, and a
// fault switch reproducing Launchpad bug #1533942 — the crash of
// Neutron's Open vSwitch agent that leaves VM launches failing with
// "No valid host was found".
//
// Metric populations are phase-gated so the correct (C) and faulty (F)
// versions differ exactly as Table 5 reports: series on dead code paths
// disappear (discarded), error-path series are created lazily (new). The
// headline pair is Nova API's nova_instances_in_state_ACTIVE (C only)
// versus nova_instances_in_state_ERROR (F only), linked to Neutron
// server's neutron_ports_in_status_DOWN (F only).
package openstack

import (
	"fmt"

	"github.com/sieve-microservices/sieve/internal/app"
)

// TickMS is the simulation step.
const TickMS = 500

// population pins a component's Table 5 metric counts.
type population struct {
	total     int // metrics in the union of both versions
	discarded int // present in C only (PhaseHealthyOnly)
	new       int // present in F only (PhaseFaultyOnly)
}

// populations reproduces Table 5's Changed (New/Discarded) and Total
// columns per component.
var populations = map[string]population{
	"nova-api":           {total: 59, discarded: 22, new: 7},
	"nova-libvirt":       {total: 39, discarded: 21, new: 0},
	"nova-scheduler":     {total: 30, discarded: 7, new: 7},
	"neutron-server":     {total: 42, discarded: 10, new: 2},
	"rabbitmq":           {total: 57, discarded: 6, new: 5},
	"neutron-l3-agent":   {total: 39, discarded: 7, new: 0},
	"nova-novncproxy":    {total: 12, discarded: 7, new: 0},
	"glance-api":         {total: 27, discarded: 5, new: 0},
	"neutron-dhcp-agent": {total: 35, discarded: 4, new: 0},
	"nova-compute":       {total: 41, discarded: 3, new: 0},
	"glance-registry":    {total: 23, discarded: 3, new: 0},
	"haproxy":            {total: 14, discarded: 1, new: 1},
	"nova-conductor":     {total: 29, discarded: 2, new: 0},
	"keystone":           {total: 21},
	"mariadb":            {total: 20},
	"memcached":          {total: 20},
}

// namedFamilies returns the hand-written, semantically meaningful metric
// families per component, including the Fig. 8 headline metrics. All
// remaining budget is filled with generated families.
func namedFamilies(name string) []app.Family {
	switch name {
	case "nova-api":
		return []app.Family{
			{Base: "nova_instances_in_state_ACTIVE", Driver: app.DriverRate, Scale: 4, Noise: 0.05, Phase: app.PhaseHealthyOnly},
			{Base: "nova_instances_launched_total", Driver: app.DriverRate, Counter: true, Phase: app.PhaseHealthyOnly},
			{Base: "nova_instances_in_state_ERROR", Driver: app.DriverErrors, Scale: 3, Noise: 0.05, Phase: app.PhaseFaultyOnly},
			{Base: "nova_boot_failures_total", Driver: app.DriverErrors, Counter: true, Phase: app.PhaseFaultyOnly},
			{Base: "nova_api_request_time", Driver: app.DriverLatency, Scale: 1, Noise: 0.05,
				Variants: []string{"mean", "p95"}},
			{Base: "nova_api_requests_total", Driver: app.DriverRate, Counter: true},
		}
	case "neutron-server":
		return []app.Family{
			{Base: "neutron_ports_in_status_ACTIVE", Driver: app.DriverRate, Scale: 6, Noise: 0.05, Phase: app.PhaseHealthyOnly},
			{Base: "neutron_ports_in_status_DOWN", Driver: app.DriverErrors, Scale: 5, Noise: 0.05, Phase: app.PhaseFaultyOnly},
			{Base: "neutron_port_create_time_ms", Driver: app.DriverLatency, Scale: 0.8, Noise: 0.06},
			{Base: "neutron_api_requests_total", Driver: app.DriverRate, Counter: true},
		}
	case "rabbitmq":
		return app.QueueBrokerFamilies() // includes messages, messages_ack-diff
	case "nova-libvirt":
		return []app.Family{
			{Base: "usage", Driver: app.DriverUtil, Scale: 100, Noise: 0.05},
			{Base: "active_anon", Driver: app.DriverMemory, Scale: 1 << 18, Noise: 0.04},
			{Base: "domains_running", Driver: app.DriverRate, Scale: 2, Noise: 0.06, Phase: app.PhaseHealthyOnly},
			{Base: "vcpu_time_total", Driver: app.DriverUtil, Scale: 8, Counter: true, Phase: app.PhaseHealthyOnly},
		}
	case "nova-scheduler":
		return []app.Family{
			{Base: "scheduler_host_selections_total", Driver: app.DriverRate, Counter: true, Phase: app.PhaseHealthyOnly},
			{Base: "scheduler_no_valid_host_total", Driver: app.DriverErrors, Counter: true, Phase: app.PhaseFaultyOnly},
			{Base: "scheduler_run_time_ms", Driver: app.DriverOwnLatency, Scale: 1.2, Noise: 0.08},
		}
	default:
		return nil
	}
}

// Spec returns the OpenStack application spec. It panics if a component's
// named families plus constants exceed the Table 5 budget (a programming
// error caught by the package tests).
func Spec() app.Spec {
	host := func(i int) string { return fmt.Sprintf("10.2.0.%d:9000", i) }

	type def struct {
		name      string
		idx       int
		serviceMS float64
		capacity  float64
		entry     bool
		calls     []app.Call
		fault     *app.FaultImpact
		memMB     float64
	}
	defs := []def{
		{name: "haproxy", idx: 1, serviceMS: 1.5, capacity: 3000, entry: true,
			calls: []app.Call{
				{Target: "nova-api", Prob: 0.55},
				{Target: "keystone", Prob: 0.2},
				{Target: "glance-api", Prob: 0.1},
				{Target: "neutron-server", Prob: 0.1},
				{Target: "nova-novncproxy", Prob: 0.05},
			}, memMB: 96},
		{name: "nova-api", idx: 2, serviceMS: 25, capacity: 180,
			calls: []app.Call{
				{Target: "keystone", Prob: 0.8},
				{Target: "rabbitmq", Prob: 1.5},
				{Target: "mariadb", Prob: 1.0},
				{Target: "glance-api", Prob: 0.4},
				{Target: "neutron-server", Prob: 0.7},
			},
			fault: &app.FaultImpact{ErrorRate: 2.5, LatencyFactor: 1.3}, memMB: 512},
		{name: "rabbitmq", idx: 3, serviceMS: 2, capacity: 5000,
			calls: []app.Call{
				{Target: "nova-scheduler", Prob: 0.4},
				{Target: "nova-conductor", Prob: 0.6},
				{Target: "nova-compute", Prob: 0.5},
				{Target: "neutron-l3-agent", Prob: 0.2},
				{Target: "neutron-dhcp-agent", Prob: 0.2},
			},
			fault: &app.FaultImpact{UtilFactor: 1.2}, memMB: 384},
		{name: "nova-scheduler", idx: 4, serviceMS: 15, capacity: 300,
			calls: []app.Call{{Target: "mariadb", Prob: 0.6}},
			fault: &app.FaultImpact{UtilFactor: 1.4, ErrorRate: 1.5}, memMB: 256},
		{name: "nova-conductor", idx: 5, serviceMS: 8, capacity: 500,
			calls: []app.Call{{Target: "mariadb", Prob: 1.0}}, memMB: 256},
		{name: "nova-compute", idx: 6, serviceMS: 40, capacity: 120,
			calls: []app.Call{
				{Target: "nova-libvirt", Prob: 1.0},
				{Target: "neutron-server", Prob: 0.5},
				{Target: "glance-api", Prob: 0.3},
			},
			fault: &app.FaultImpact{DropRate: 0.7, ErrorRate: 1.0}, memMB: 768},
		{name: "nova-libvirt", idx: 7, serviceMS: 60, capacity: 80, memMB: 512},
		{name: "nova-novncproxy", idx: 8, serviceMS: 5, capacity: 600,
			calls: []app.Call{{Target: "nova-api", Prob: 0.5}}, memMB: 128},
		{name: "neutron-server", idx: 9, serviceMS: 20, capacity: 250,
			calls: []app.Call{
				{Target: "mariadb", Prob: 0.8},
				{Target: "rabbitmq", Prob: 0.4},
			},
			fault: &app.FaultImpact{ErrorRate: 4, LatencyFactor: 1.6}, memMB: 384},
		{name: "neutron-l3-agent", idx: 10, serviceMS: 12, capacity: 300,
			calls: []app.Call{{Target: "neutron-server", Prob: 0.3}},
			fault: &app.FaultImpact{DropRate: 0.5, ErrorRate: 0.5}, memMB: 192},
		{name: "neutron-dhcp-agent", idx: 11, serviceMS: 10, capacity: 300,
			calls: []app.Call{{Target: "neutron-server", Prob: 0.3}}, memMB: 192},
		{name: "glance-api", idx: 12, serviceMS: 18, capacity: 280,
			calls: []app.Call{
				{Target: "glance-registry", Prob: 0.9},
				{Target: "keystone", Prob: 0.3},
			}, memMB: 256},
		{name: "glance-registry", idx: 13, serviceMS: 7, capacity: 450,
			calls: []app.Call{{Target: "mariadb", Prob: 0.8}}, memMB: 192},
		{name: "keystone", idx: 14, serviceMS: 9, capacity: 800,
			calls: []app.Call{
				{Target: "mariadb", Prob: 0.7},
				{Target: "memcached", Prob: 1.2},
			}, memMB: 256},
		{name: "mariadb", idx: 15, serviceMS: 4, capacity: 4000, memMB: 1024},
		{name: "memcached", idx: 16, serviceMS: 0.5, capacity: 10000, memMB: 128},
	}

	comps := make([]app.ComponentSpec, 0, len(defs))
	for _, d := range defs {
		pop, ok := populations[d.name]
		if !ok {
			panic(fmt.Sprintf("openstack: no population for %q", d.name))
		}
		constants := map[string]float64{
			d.name + "_build_info": 1,
			d.name + "_version":    13,
			d.name + "_worker_cap": 8,
		}

		named := namedFamilies(d.name)
		var alwaysNamed, healthyNamed, faultyNamed int
		for _, f := range named {
			n := 1
			if len(f.Variants) > 0 {
				n = len(f.Variants)
			}
			switch f.Phase {
			case app.PhaseHealthyOnly:
				healthyNamed += n
			case app.PhaseFaultyOnly:
				faultyNamed += n
			default:
				alwaysNamed += n
			}
		}

		alwaysBudget := pop.total - pop.discarded - pop.new
		fillAlways := alwaysBudget - alwaysNamed - len(constants)
		fillHealthy := pop.discarded - healthyNamed
		fillFaulty := pop.new - faultyNamed
		if fillAlways < 0 || fillHealthy < 0 || fillFaulty < 0 {
			panic(fmt.Sprintf("openstack: %s over budget (always=%d healthy=%d faulty=%d)",
				d.name, fillAlways, fillHealthy, fillFaulty))
		}

		fams := append([]app.Family{}, named...)
		fams = append(fams, app.GenFamilies(d.name, fillAlways, app.PhaseAlways)...)
		fams = append(fams, app.GenFamilies(d.name+"_healthy", fillHealthy, app.PhaseHealthyOnly)...)
		fams = append(fams, app.GenFamilies(d.name+"_errpath", fillFaulty, app.PhaseFaultyOnly)...)

		comps = append(comps, app.ComponentSpec{
			Name:                d.name,
			Addr:                host(d.idx),
			ServiceMS:           d.serviceMS,
			CapacityPerInstance: d.capacity,
			Instances:           1,
			Entry:               d.entry,
			Calls:               d.calls,
			Families:            fams,
			Constants:           constants,
			MemBaseMB:           d.memMB,
			Fault:               d.fault,
		})
	}
	return app.Spec{Name: "openstack", TickMS: TickMS, Components: comps}
}

// New builds a ready-to-run OpenStack simulation; faulty selects the
// version with Launchpad bug #1533942 active.
func New(seed int64, faulty bool) (*app.App, error) {
	a, err := app.New(Spec(), seed)
	if err != nil {
		return nil, err
	}
	a.SetFault(faulty)
	return a, nil
}

// TotalMetrics returns the Table 5 union-population total (508).
func TotalMetrics() int {
	n := 0
	for _, p := range populations {
		n += p.total
	}
	return n
}

// ChangedMetrics returns the changed-metric totals summed over Table 5's
// per-component rows: 22 new and 98 discarded. (The paper's totals row
// prints 113 changed (22/91), which does not equal the sum of its own
// rows, 120 (22/98); this reproduction follows the rows.)
func ChangedMetrics() (newMetrics, discarded int) {
	for _, p := range populations {
		newMetrics += p.new
		discarded += p.discarded
	}
	return newMetrics, discarded
}
