package app

import (
	"testing"

	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/trace"
)

// miniSpec is a three-tier test application: lb -> api -> db.
func miniSpec() Spec {
	return Spec{
		Name:   "mini",
		TickMS: 500,
		Components: []ComponentSpec{
			{
				Name: "lb", Addr: "10.0.0.1:80", ServiceMS: 1, CapacityPerInstance: 1000,
				Entry: true, Calls: []Call{{Target: "api", Prob: 1}},
				Families:  []Family{{Base: "lb_rate", Driver: DriverRate, Noise: 0.01}},
				Constants: map[string]float64{"lb_version": 1},
			},
			{
				Name: "api", Addr: "10.0.0.2:8080", ServiceMS: 10, CapacityPerInstance: 100,
				Calls: []Call{{Target: "db", Prob: 0.5}},
				Families: []Family{
					{Base: "api_latency", Driver: DriverLatency, Variants: []string{"mean", "p95"}, Noise: 0.01},
					{Base: "api_requests_total", Driver: DriverRate, Counter: true},
					{Base: "api_errors", Driver: DriverErrors},
				},
				Fault: &FaultImpact{ErrorRate: 5, LatencyFactor: 2},
			},
			{
				Name: "db", Addr: "10.0.0.3:5432", ServiceMS: 4, CapacityPerInstance: 500,
				Families: []Family{
					{Base: "db_rate", Driver: DriverRate, Noise: 0.01},
					{Base: "db_err_path", Driver: DriverErrors, Phase: PhaseFaultyOnly},
					{Base: "db_ok_path", Driver: DriverRate, Phase: PhaseHealthyOnly},
				},
			},
		},
	}
}

func TestNewValidation(t *testing.T) {
	good := miniSpec()

	bad := good
	bad.TickMS = 0
	if _, err := New(bad, 1); err == nil {
		t.Error("expected error for zero tick")
	}

	bad = good
	bad.Components = nil
	if _, err := New(bad, 1); err == nil {
		t.Error("expected error for empty app")
	}

	bad = miniSpec()
	bad.Components = append(bad.Components, bad.Components[0])
	if _, err := New(bad, 1); err == nil {
		t.Error("expected error for duplicate component")
	}

	bad = miniSpec()
	bad.Components[0].Calls = []Call{{Target: "ghost", Prob: 1}}
	if _, err := New(bad, 1); err == nil {
		t.Error("expected error for unknown call target")
	}

	bad = miniSpec()
	bad.Components[1].CapacityPerInstance = 0
	if _, err := New(bad, 1); err == nil {
		t.Error("expected error for zero capacity")
	}
}

func TestLoadPropagatesWithLag(t *testing.T) {
	a, err := New(miniSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	// Tick 1: only the entry sees load.
	a.Step(100)
	if got := a.comps["lb"].arrival; got != 100 {
		t.Fatalf("lb arrival = %g, want 100", got)
	}
	if got := a.comps["api"].arrival; got != 0 {
		t.Fatalf("api arrival at tick 1 = %g, want 0 (one-tick lag)", got)
	}
	// Tick 2: api sees lb's flow; db not yet.
	a.Step(100)
	if got := a.comps["api"].arrival; got != 100 {
		t.Fatalf("api arrival at tick 2 = %g, want 100", got)
	}
	if got := a.comps["db"].arrival; got != 0 {
		t.Fatalf("db arrival at tick 2 = %g, want 0", got)
	}
	// Tick 3: db sees api's flow halved by call probability.
	a.Step(100)
	if got := a.comps["db"].arrival; got != 50 {
		t.Fatalf("db arrival at tick 3 = %g, want 50", got)
	}
	if a.Now() != 1500 {
		t.Errorf("clock = %d, want 1500", a.Now())
	}
}

func TestLatencyIncludesLaggedDownstream(t *testing.T) {
	a, err := New(miniSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.Step(100)
	}
	api := a.comps["api"]
	// api latency = own + 0.5 * db latency (lagged). db own latency is at
	// least its 4ms service time, so api.latency must exceed own.
	if api.latency <= api.ownLatency {
		t.Errorf("api latency %g does not include downstream share (own %g)", api.latency, api.ownLatency)
	}
	if a.EntryLatencyMS() <= 0 {
		t.Error("entry latency must be positive under load")
	}
}

func TestScalingReducesUtilizationAndLatency(t *testing.T) {
	a, err := New(miniSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.Step(90) // api at 90% utilization with one instance
	}
	utilBefore := a.Utilization("api")
	latBefore := a.comps["api"].ownLatency

	if err := a.Scale("api", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.Step(90)
	}
	utilAfter := a.Utilization("api")
	latAfter := a.comps["api"].ownLatency

	if utilAfter >= utilBefore/2 {
		t.Errorf("util after scale-out = %g, want well below %g", utilAfter, utilBefore)
	}
	if latAfter >= latBefore {
		t.Errorf("latency after scale-out = %g, want below %g", latAfter, latBefore)
	}
	if a.Instances("api") != 3 {
		t.Errorf("instances = %d, want 3", a.Instances("api"))
	}
	if err := a.Scale("ghost", 2); err == nil {
		t.Error("expected error scaling unknown component")
	}
	if err := a.Scale("api", 0); err != nil {
		t.Fatal(err)
	}
	if a.Instances("api") != 1 {
		t.Error("scale clamps to minimum 1 instance")
	}
}

func TestOverloadProducesErrors(t *testing.T) {
	a, err := New(miniSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.Step(250) // api capacity is 100/s
	}
	if got := a.ErrorRate("api"); got <= 0 {
		t.Errorf("overloaded api error rate = %g, want positive", got)
	}
	if got := a.ErrorRate("lb"); got != 0 {
		t.Errorf("underloaded lb error rate = %g, want 0", got)
	}
}

func TestFaultTogglesStateAndMetricPopulation(t *testing.T) {
	a, err := New(miniSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy phase: db_ok_path exists, db_err_path must not.
	for i := 0; i < 5; i++ {
		a.Step(100)
	}
	names := a.Registry("db").Names()
	if !containsStr(names, "db_ok_path") {
		t.Error("healthy run must create db_ok_path")
	}
	if containsStr(names, "db_err_path") {
		t.Error("healthy run must not create db_err_path")
	}

	// Faulty version (fresh app): error-path series appear, healthy-only
	// series never materialize.
	b, err := New(miniSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b.SetFault(true)
	if !b.FaultActive() {
		t.Fatal("fault flag lost")
	}
	for i := 0; i < 5; i++ {
		b.Step(100)
	}
	names = b.Registry("db").Names()
	if containsStr(names, "db_ok_path") {
		t.Error("faulty run must not create db_ok_path")
	}
	if !containsStr(names, "db_err_path") {
		t.Error("faulty run must create db_err_path")
	}
	// The api fault impact adds errors and latency.
	if b.ErrorRate("api") < 5 {
		t.Errorf("faulty api error rate = %g, want >= 5", b.ErrorRate("api"))
	}
}

func TestMetricsExportedAndCountersMonotone(t *testing.T) {
	a, err := New(miniSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i := 0; i < 20; i++ {
		a.Step(100)
		cur := a.Registry("api").Counter("api_requests_total").Value()
		if cur < prev {
			t.Fatalf("counter decreased: %g -> %g", prev, cur)
		}
		prev = cur
	}
	if prev <= 0 {
		t.Error("counter never advanced")
	}
	// Gauges follow their drivers.
	if got := a.Registry("lb").Gauge("lb_rate").Value(); got < 80 || got > 120 {
		t.Errorf("lb_rate = %g, want ~100", got)
	}
	// Constants exported.
	if got := a.Registry("lb").Gauge("lb_version").Value(); got != 1 {
		t.Errorf("constant = %g, want 1", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		a, err := New(miniSpec(), 7)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 30; i++ {
			a.Step(100 + float64(i))
			out = append(out, a.Registry("api").Gauge("api_latency_mean").Value())
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("divergence at tick %d: %g vs %g", i, x[i], y[i])
		}
	}
}

func TestTraceEventsYieldCallGraph(t *testing.T) {
	a, err := New(miniSpec(), 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer(4096, nil)
	pc := trace.NewPacketCapture(128)
	a.AttachTracer(tr)
	a.AttachPacketCapture(pc)
	for i := 0; i < 10; i++ {
		a.Step(100)
	}
	g := callgraph.FromSyscallEvents(tr.Events())
	if !g.HasEdge("lb", "api") {
		t.Error("callgraph missing lb->api")
	}
	if !g.HasEdge("api", "db") {
		t.Error("callgraph missing api->db")
	}
	if g.HasEdge("db", "api") || g.HasEdge("api", "lb") {
		t.Error("callgraph has reversed edges")
	}
	if pc.Stats().Records == 0 {
		t.Error("packet capture saw no traffic")
	}
}

func TestUnknownComponentAccessors(t *testing.T) {
	a, err := New(miniSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Registry("ghost") != nil {
		t.Error("Registry(ghost) must be nil")
	}
	if a.Instances("ghost") != 0 || a.Utilization("ghost") != 0 || a.ErrorRate("ghost") != 0 {
		t.Error("unknown component accessors must return zero values")
	}
	if len(a.Components()) != 3 || len(a.Registries()) != 3 {
		t.Error("component enumeration wrong")
	}
	if a.Name() != "mini" || a.TickMS() != 500 {
		t.Error("spec accessors wrong")
	}
}

func containsStr(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
