package sharelatex

import (
	"testing"

	"github.com/sieve-microservices/sieve/internal/app"
	"github.com/sieve-microservices/sieve/internal/callgraph"
	"github.com/sieve-microservices/sieve/internal/trace"
)

func TestSpecBuilds(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.Components()); got != 15 {
		t.Errorf("components = %d, want 15 (LB + web + real-time + 9 services + 3 stores)", got)
	}
}

func TestMetricPopulationNearPaper(t *testing.T) {
	// The paper reports 889 unique metrics for ShareLatex (§6.1.2). The
	// simulator should land in the same ballpark.
	spec := Spec()
	total := 0
	for _, c := range spec.Components {
		total += app.CountMetrics(c.Families, c.Constants)
	}
	if total < 800 || total > 980 {
		t.Errorf("total metric population = %d, want ~889 (800..980)", total)
	}
}

func TestRunExportsHubMetric(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.Step(200)
	}
	reg := a.Registry("web")
	if reg == nil {
		t.Fatal("web registry missing")
	}
	found := false
	for _, n := range reg.Names() {
		if n == HubMetric {
			found = true
		}
	}
	if !found {
		t.Fatalf("hub metric %q not exported by web", HubMetric)
	}
}

func TestCallGraphShape(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer(1<<16, nil)
	a.AttachTracer(tr)
	for i := 0; i < 20; i++ {
		a.Step(300)
	}
	g := callgraph.FromSyscallEvents(tr.Events())
	for _, edge := range [][2]string{
		{"haproxy", "web"},
		{"haproxy", "real-time"},
		{"web", "doc-updater"},
		{"doc-updater", "mongodb"},
		{"doc-updater", "redis"},
		{"real-time", "redis"},
		{"clsi", "postgresql"},
	} {
		if !g.HasEdge(edge[0], edge[1]) {
			t.Errorf("missing call edge %s -> %s", edge[0], edge[1])
		}
	}
	if g.HasEdge("mongodb", "web") {
		t.Error("datastores must not call services")
	}
}

func TestLoadReachesAllComponents(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		a.Step(400)
	}
	for _, name := range a.Components() {
		if a.Utilization(name) <= 0 {
			t.Errorf("component %s saw no load", name)
		}
	}
}
