// Package sharelatex defines the simulated ShareLatex deployment used by
// the paper's autoscaling case study (§4.1, §6.2): a load balancer
// (haproxy), the web frontend, the real-time editing service, nine further
// node.js microservices, a KV store (redis) and two databases (mongodb,
// postgresql) — 15 components exporting ~889 metrics, matching the
// population reported in §6.1.2.
package sharelatex

import (
	"fmt"

	"github.com/sieve-microservices/sieve/internal/app"
)

// TickMS is the simulation step, matching Sieve's 500 ms discretization.
const TickMS = 500

// HubMetric is the metric the paper found to appear most often in Granger
// relations and used as the autoscaling trigger (§6.2).
const HubMetric = "http-requests_Project_id_GET_mean"

// Spec returns the ShareLatex application spec.
func Spec() app.Spec {
	var comps []app.ComponentSpec
	host := func(i int) string { return fmt.Sprintf("10.1.0.%d:8080", i) }

	constants := func(service string, n int) map[string]float64 {
		m := map[string]float64{
			service + "_build_info":      1,
			service + "_max_connections": 1024,
			service + "_version":         3,
		}
		extra := []string{"_limit_bytes", "_pool_size", "_config_hash"}
		for i := 0; i < n-3 && i < len(extra); i++ {
			m[service+extra[i]] = float64(100 * (i + 1))
		}
		return m
	}

	// node.js microservice template: system + HTTP + service-specific tail.
	node := func(name string, idx int, serviceMS, capacity float64, calls []app.Call, extraFams ...app.Family) app.ComponentSpec {
		fams := app.SystemFamilies()
		fams = append(fams, app.HTTPServiceFamilies(fmt.Sprintf("http-requests_%s_POST", name))...)
		fams = append(fams, app.GenFamilies(name, 12, app.PhaseAlways)...)
		fams = append(fams, extraFams...)
		return app.ComponentSpec{
			Name:                name,
			Addr:                host(idx),
			ServiceMS:           serviceMS,
			CapacityPerInstance: capacity,
			Instances:           1,
			Calls:               calls,
			Families:            fams,
			Constants:           constants(name, 6),
			MemBaseMB:           256,
		}
	}

	// haproxy: the entry load balancer.
	haproxyFams := app.SystemFamilies()
	haproxyFams = append(haproxyFams,
		app.Family{Base: "haproxy_sessions", Driver: app.DriverRate, Scale: 2, Noise: 0.05,
			Variants: []string{"current", "rate", "max_observed"}},
		app.Family{Base: "haproxy_backend_response_ms", Driver: app.DriverLatency, Scale: 1, Noise: 0.05,
			Variants: []string{"mean", "p95"}},
		app.Family{Base: "haproxy_queue_current", Driver: app.DriverQueue, Scale: 1, Noise: 0.1},
		app.Family{Base: "haproxy_retries_total", Driver: app.DriverErrors, Counter: true},
		app.Family{Base: "haproxy_bytes_in_total", Driver: app.DriverRate, Scale: 1100, Counter: true},
		app.Family{Base: "haproxy_bytes_out_total", Driver: app.DriverRate, Scale: 5200, Counter: true},
	)
	haproxyFams = append(haproxyFams, app.GenFamilies("haproxy", 16, app.PhaseAlways)...)
	comps = append(comps, app.ComponentSpec{
		Name:                "haproxy",
		Addr:                "10.1.0.1:80",
		ServiceMS:           1.2,
		CapacityPerInstance: 4000,
		Instances:           1,
		Entry:               true,
		Calls: []app.Call{
			{Target: "web", Prob: 0.8},
			{Target: "real-time", Prob: 0.2},
		},
		Families:  haproxyFams,
		Constants: constants("haproxy", 6),
		MemBaseMB: 128,
	})

	// web: the hub frontend. Exports the paper's hub metric.
	webFams := app.SystemFamilies()
	webFams = append(webFams,
		app.Family{Base: "http-requests_Project_id_GET", Driver: app.DriverLatency, Scale: 1, Noise: 0.04,
			Variants: []string{"mean", "p50", "p95", "p99", "count"}},
	)
	webFams = append(webFams, app.HTTPServiceFamilies("http-requests_editor_POST")...)
	webFams = append(webFams, app.GenFamilies("web", 14, app.PhaseAlways)...)
	comps = append(comps, app.ComponentSpec{
		Name:                "web",
		Addr:                host(2),
		ServiceMS:           18,
		CapacityPerInstance: 220,
		Instances:           1,
		Calls: []app.Call{
			{Target: "chat", Prob: 0.1},
			{Target: "clsi", Prob: 0.15},
			{Target: "contacts", Prob: 0.05},
			{Target: "docstore", Prob: 0.4},
			{Target: "doc-updater", Prob: 0.5},
			{Target: "filestore", Prob: 0.2},
			{Target: "spelling", Prob: 0.15},
			{Target: "tags", Prob: 0.05},
			{Target: "track-changes", Prob: 0.1},
			{Target: "postgresql", Prob: 0.3},
			{Target: "redis", Prob: 0.6},
		},
		Families:  webFams,
		Constants: constants("web", 6),
		MemBaseMB: 512,
	})

	comps = append(comps,
		node("real-time", 3, 6, 700, []app.Call{
			{Target: "redis", Prob: 1.2},
			{Target: "doc-updater", Prob: 0.7},
		}),
		node("chat", 4, 8, 500, []app.Call{{Target: "mongodb", Prob: 1.0}}),
		node("clsi", 5, 120, 60, []app.Call{{Target: "postgresql", Prob: 0.8}}),
		node("contacts", 6, 7, 500, []app.Call{{Target: "mongodb", Prob: 1.0}}),
		node("doc-updater", 7, 10, 400, []app.Call{
			{Target: "mongodb", Prob: 0.8},
			{Target: "redis", Prob: 1.5},
			{Target: "track-changes", Prob: 0.4},
		}),
		node("docstore", 8, 9, 450, []app.Call{{Target: "mongodb", Prob: 1.1}}),
		node("filestore", 9, 25, 250, nil),
		node("spelling", 10, 12, 350, []app.Call{{Target: "mongodb", Prob: 0.5}}),
		node("tags", 11, 6, 500, []app.Call{{Target: "mongodb", Prob: 0.9}}),
		node("track-changes", 12, 11, 350, []app.Call{{Target: "mongodb", Prob: 1.2}}),
	)

	// Datastores.
	dbComp := func(name string, idx int, kind string, serviceMS, capacity float64, extra int) app.ComponentSpec {
		fams := app.SystemFamilies()
		fams = append(fams, app.DatastoreFamilies(kind)...)
		fams = append(fams, app.GenFamilies(kind, extra, app.PhaseAlways)...)
		return app.ComponentSpec{
			Name:                name,
			Addr:                host(idx),
			ServiceMS:           serviceMS,
			CapacityPerInstance: capacity,
			Instances:           1,
			Families:            fams,
			Constants:           constants(kind, 6),
			MemBaseMB:           1024,
		}
	}
	comps = append(comps,
		dbComp("mongodb", 13, "mongodb", 4, 6000, 16),
		dbComp("postgresql", 14, "postgres", 5, 2000, 16),
		dbComp("redis", 15, "redis", 0.8, 8000, 16),
	)

	return app.Spec{Name: "sharelatex", TickMS: TickMS, Components: comps}
}

// New builds a ready-to-run ShareLatex simulation.
func New(seed int64) (*app.App, error) {
	return app.New(Spec(), seed)
}
