package app

import (
	"strings"
	"testing"
)

func TestSystemFamiliesCount(t *testing.T) {
	if got := CountMetrics(SystemFamilies(), nil); got != 25 {
		t.Errorf("system families export %d metrics, want 25", got)
	}
}

func TestGenFamiliesExactCountAndDeterminism(t *testing.T) {
	a := GenFamilies("svc", 17, PhaseAlways)
	if got := CountMetrics(a, nil); got != 17 {
		t.Errorf("generated %d metrics, want 17", got)
	}
	b := GenFamilies("svc", 17, PhaseAlways)
	for i := range a {
		if a[i].Base != b[i].Base || a[i].Driver != b[i].Driver ||
			a[i].Scale != b[i].Scale || a[i].Noise != b[i].Noise ||
			a[i].Counter != b[i].Counter || a[i].Phase != b[i].Phase {
			t.Fatalf("GenFamilies not deterministic at %d", i)
		}
	}
	for _, f := range a {
		if !strings.HasPrefix(f.Base, "svc_") {
			t.Errorf("family %q missing prefix", f.Base)
		}
		if f.Phase != PhaseAlways {
			t.Errorf("family %q has phase %v", f.Base, f.Phase)
		}
	}
	if got := CountMetrics(GenFamilies("x", 0, PhaseAlways), nil); got != 0 {
		t.Errorf("zero request generated %d", got)
	}
}

func TestCountMetricsWithVariantsAndConstants(t *testing.T) {
	fams := []Family{
		{Base: "a", Variants: []string{"x", "y", "z"}},
		{Base: "b"},
	}
	consts := map[string]float64{"c1": 1, "c2": 2}
	if got := CountMetrics(fams, consts); got != 6 {
		t.Errorf("CountMetrics = %d, want 6", got)
	}
}
