package app

import "fmt"

// SystemFamilies returns the standard per-component system metric set
// (CPU, memory, network, disk, load, runtime), 25 metrics in the shape a
// Telegraf host agent exports. The same signal appears in several
// correlated variants, which is exactly the redundancy k-Shape collapses.
func SystemFamilies() []Family {
	return []Family{
		// CPU sampling over sub-second windows is jittery in real hosts;
		// app-level latency aggregates are much smoother. The noise gap
		// is what makes latency metrics more Granger-predictive (and thus
		// the paper's preferred scaling signals).
		{Base: "cpu_usage", Driver: DriverUtil, Scale: 100, Noise: 0.25,
			Variants: []string{"", "user", "system", "iowait", "percentile_95"}}, // 5
		{Base: "cpu_seconds_total", Driver: DriverUtil, Scale: 4, Counter: true},                  // 1
		{Base: "load", Driver: DriverQueue, Scale: 1, Noise: 0.3, Variants: []string{"1m", "5m"}}, // 2
		{Base: "memory", Driver: DriverMemory, Scale: 1 << 20, Noise: 0.02,
			Variants: []string{"rss_bytes", "heap_bytes", "working_set_bytes", "cache_bytes"}}, // 4
		{Base: "net", Driver: DriverRate, Scale: 900, Noise: 0.12, Counter: true,
			Variants: []string{"in_bytes_total", "out_bytes_total", "in_packets_total", "out_packets_total"}}, // 4
		{Base: "net_rx_rate", Driver: DriverRate, Scale: 900, Noise: 0.15},  // 1
		{Base: "net_tx_rate", Driver: DriverRate, Scale: 2100, Noise: 0.15}, // 1
		{Base: "disk", Driver: DriverRate, Scale: 120, Noise: 0.15, Counter: true,
			Variants: []string{"read_bytes_total", "write_bytes_total", "io_time_seconds_total"}}, // 3
		{Base: "open_fds", Driver: DriverQueue, Scale: 6, Noise: 0.1},                              // 1
		{Base: "threads", Driver: DriverUtil, Scale: 30, Noise: 0.05},                              // 1
		{Base: "context_switches_total", Driver: DriverRate, Scale: 40, Noise: 0.2, Counter: true}, // 1
		{Base: "uptime_seconds_total", Driver: DriverConst, Counter: true},                         // 1
	}
}

// HTTPServiceFamilies returns the app-level metric set of an HTTP-serving
// component: request rates, latency percentiles, error tracking, queue
// depths. prefix names the request family; the paper's ShareLatex hub
// metric is web's "http-requests_Project_id_GET_mean".
func HTTPServiceFamilies(prefix string) []Family {
	return []Family{
		{Base: prefix, Driver: DriverLatency, Scale: 1, Noise: 0.04,
			Variants: []string{"mean", "p50", "p95", "p99", "max"}}, // 5
		{Base: prefix + "_count_total", Driver: DriverRate, Counter: true},     // 1
		{Base: "http_request_rate", Driver: DriverRate, Scale: 1, Noise: 0.12}, // 1
		{Base: "http_requests_total", Driver: DriverRate, Counter: true},       // 1
		{Base: "http_5xx_rate", Driver: DriverErrors, Scale: 1, Noise: 0.1},    // 1
		{Base: "http_5xx_total", Driver: DriverErrors, Counter: true},          // 1
		{Base: "http_queue", Driver: DriverQueue, Scale: 1, Noise: 0.08,
			Variants: []string{"depth", "backlog"}}, // 2
		{Base: "http_inflight_requests", Driver: DriverQueue, Scale: 0.8, Noise: 0.1},   // 1
		{Base: "response_time_own_ms", Driver: DriverOwnLatency, Scale: 1, Noise: 0.05}, // 1
		{Base: "event_loop_lag_ms", Driver: DriverOwnLatency, Scale: 0.08, Noise: 0.15}, // 1
		{Base: "gc_pause_ms", Driver: DriverMemory, Scale: 0.01, Noise: 0.25},           // 1
		{Base: "active_sessions", Driver: DriverRate, Scale: 2.5, Noise: 0.15},          // 1
	}
}

// DatastoreFamilies returns the metric set of a database-style component
// (query latencies, operation counters, connection pools, cache
// behaviour).
func DatastoreFamilies(kind string) []Family {
	return []Family{
		{Base: kind + "_query_time", Driver: DriverLatency, Scale: 0.7, Noise: 0.05,
			Variants: []string{"mean", "p95", "p99"}}, // 3
		{Base: kind + "_ops", Driver: DriverRate, Scale: 1, Noise: 0.12, Counter: true,
			Variants: []string{"insert_total", "query_total", "update_total", "delete_total"}}, // 4
		{Base: kind + "_ops_rate", Driver: DriverRate, Scale: 1, Noise: 0.12}, // 1
		{Base: kind + "_connections", Driver: DriverQueue, Scale: 3, Noise: 0.08,
			Variants: []string{"active", "idle", "waiting"}}, // 3
		{Base: kind + "_slow_queries_total", Driver: DriverErrors, Scale: 0.3, Counter: true},         // 1
		{Base: kind + "_lock_wait_ms", Driver: DriverOwnLatency, Scale: 0.3, Noise: 0.15},             // 1
		{Base: kind + "_cache_hit_ratio", Driver: DriverConst, Scale: 0.93, Noise: 0.01},              // 1
		{Base: kind + "_cache_used_bytes", Driver: DriverMemory, Scale: 1 << 19, Noise: 0.03},         // 1
		{Base: kind + "_wal_bytes_total", Driver: DriverRate, Scale: 300, Noise: 0.15, Counter: true}, // 1
	}
}

// QueueBrokerFamilies returns the metric set of a message broker
// (RabbitMQ-style): message counters, queue depths, consumer stats.
func QueueBrokerFamilies() []Family {
	return []Family{
		{Base: "messages", Driver: DriverQueue, Scale: 4, Noise: 0.1,
			Variants: []string{"", "ready", "unacknowledged"}}, // 3
		{Base: "messages_ack-diff", Driver: DriverRate, Scale: 0.9, Noise: 0.1},               // 1
		{Base: "messages_published_total", Driver: DriverRate, Counter: true},                 // 1
		{Base: "messages_delivered_total", Driver: DriverRate, Scale: 0.98, Counter: true},    // 1
		{Base: "messages_redelivered_total", Driver: DriverErrors, Scale: 0.5, Counter: true}, // 1
		{Base: "consumers", Driver: DriverConst, Scale: 12, Noise: 0.02},                      // 1
		{Base: "channel_count", Driver: DriverQueue, Scale: 1.5, Noise: 0.05},                 // 1
		{Base: "publish_rate", Driver: DriverRate, Scale: 1, Noise: 0.12},                     // 1
		{Base: "deliver_rate", Driver: DriverRate, Scale: 0.97, Noise: 0.12},                  // 1
	}
}

// GenFamilies generates n single-metric families named prefix_0..n-1 with
// drivers, scales and noise rotating deterministically — the long tail of
// component-specific metrics every real service exports. All families get
// the given phase; OpenStack's Table 5 metric populations are built from
// these.
func GenFamilies(prefix string, n int, phase Phase) []Family {
	drivers := []Driver{DriverUtil, DriverRate, DriverLatency, DriverQueue, DriverMemory, DriverOwnLatency}
	if phase != PhaseAlways {
		// Phase-gated metrics belong to one code path (a healthy-path
		// feature or an error path), so they co-move: error-path series
		// track the error rate and the request flow that triggers it.
		// Concentrating their drivers makes them cluster together, as the
		// paper observed for its novel metrics (§6.3 step 3).
		drivers = []Driver{DriverRate, DriverErrors}
	}
	out := make([]Family, 0, n)
	for i := 0; i < n; i++ {
		d := drivers[i%len(drivers)]
		noise := 0.04 + 0.02*float64(i%4)
		switch d {
		case DriverUtil:
			// Utilization-derived metrics carry the jitter of sub-second
			// CPU sampling (see SystemFamilies).
			noise += 0.2
		case DriverRate:
			// Rate metrics carry Poisson counting noise over the 500 ms
			// sampling buckets.
			noise += 0.08
		}
		out = append(out, Family{
			Base:    fmt.Sprintf("%s_%02d", prefix, i),
			Driver:  d,
			Scale:   1 + float64(i%9)*0.5,
			Noise:   noise,
			Counter: i%11 == 7,
			Phase:   phase,
		})
	}
	return out
}

// CountMetrics returns the number of metrics a family list will export
// (variants expanded), used by topology builders to audit their totals.
func CountMetrics(fams []Family, constants map[string]float64) int {
	n := len(constants)
	for _, f := range fams {
		if len(f.Variants) == 0 {
			n++
		} else {
			n += len(f.Variants)
		}
	}
	return n
}
