// Package app is a deterministic discrete-event simulator for
// microservices-based applications: the experiment substrate standing in
// for the paper's real ShareLatex and OpenStack deployments. Components
// form a call graph; external load enters at entry components and
// propagates downstream with a one-tick lag, which is precisely the
// delayed predictive structure Sieve's Granger analysis is designed to
// find. Every component exports metric families through a
// metrics.Registry (system metrics, app metrics, redundant variants,
// constants, and lazily-created error-path series), the simulated socket
// layer emits sysdig-style syscall events and tcpdump-style packets for
// call-graph extraction, instance counts can be scaled at runtime for the
// autoscaling case study, and a global fault switch reproduces
// version-to-version anomalies for the RCA case study.
package app

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/sieve-microservices/sieve/internal/metrics"
	"github.com/sieve-microservices/sieve/internal/trace"
)

// Driver identifies which piece of simulated component state feeds a
// metric family.
type Driver int

// Drivers for metric families.
const (
	// DriverUtil is the component's utilization in [0, ~1.2].
	DriverUtil Driver = iota + 1
	// DriverRate is the arrival rate (requests/second).
	DriverRate
	// DriverLatency is the end-to-end latency at this component (ms),
	// including lagged downstream contributions.
	DriverLatency
	// DriverOwnLatency is the component-local latency (ms).
	DriverOwnLatency
	// DriverErrors is the error rate (errors/second).
	DriverErrors
	// DriverMemory is the memory footprint (bytes-scale driver).
	DriverMemory
	// DriverQueue is the queue depth (requests).
	DriverQueue
	// DriverConst is a constant 1.0 (for build-info style metrics that the
	// variance filter must discard).
	DriverConst
)

// Phase gates a metric family on the application's fault state. Series
// are created lazily on first write, exactly like Ceilometer/Telegraf
// deployments: an error-path series does not exist until the error path
// runs, and a healthy-path series stops being produced when its code path
// dies. This is what makes metric populations differ between the paper's
// correct and faulty versions (Table 5).
type Phase int

// Family phases.
const (
	// PhaseAlways emits in both versions.
	PhaseAlways Phase = iota + 1
	// PhaseHealthyOnly emits only while no fault is active.
	PhaseHealthyOnly
	// PhaseFaultyOnly emits only while the fault is active.
	PhaseFaultyOnly
)

// Family declares a group of related exported metrics derived from one
// driver: one metric per variant suffix, each with its own deterministic
// distortion, mirroring how real components export redundant views of the
// same signal ("cpu_usage", "cpu_usage_percentile", ...).
type Family struct {
	// Base is the metric name prefix.
	Base string
	// Driver selects the state signal.
	Driver Driver
	// Variants are name suffixes; an empty string uses Base alone.
	Variants []string
	// Scale multiplies the driver value.
	Scale float64
	// Noise is the relative noise standard deviation per sample.
	Noise float64
	// Counter accumulates value*dt into a monotone counter instead of
	// setting a gauge (produces the paper's non-stationary series).
	Counter bool
	// Phase gates emission on the fault state (default PhaseAlways).
	Phase Phase
}

// Call declares a downstream dependency: each request arriving at the
// owner triggers Prob calls to Target (may exceed 1 for fan-out).
type Call struct {
	// Target is the callee component name.
	Target string
	// Prob is the expected number of downstream calls per request.
	Prob float64
}

// FaultImpact describes how an active fault distorts one component.
type FaultImpact struct {
	// ErrorRate adds a fixed error rate (errors/second).
	ErrorRate float64
	// UtilFactor multiplies utilization (e.g. retry storms); 0 means 1.
	UtilFactor float64
	// LatencyFactor multiplies own latency; 0 means 1.
	LatencyFactor float64
	// DropRate multiplies the request flow forwarded downstream
	// (0 keeps all, 1 drops everything).
	DropRate float64
}

// ComponentSpec declares one microservice component.
type ComponentSpec struct {
	// Name is the component name (unique).
	Name string
	// Addr is the simulated listen address ("10.0.0.k:port").
	Addr string
	// ServiceMS is the base service time per request in milliseconds.
	ServiceMS float64
	// CapacityPerInstance is requests/second one instance sustains.
	CapacityPerInstance float64
	// Instances is the initial instance count (>= 1).
	Instances int
	// Entry marks a component receiving external load.
	Entry bool
	// Calls are downstream dependencies.
	Calls []Call
	// Families are the exported metric groups.
	Families []Family
	// Constants are metrics exported once with fixed values (version
	// numbers, limits) that the variance filter must remove.
	Constants map[string]float64
	// MemBaseMB is the idle memory footprint.
	MemBaseMB float64
	// Fault, when non-nil, is applied while the application fault is
	// active.
	Fault *FaultImpact
}

// Spec declares a full application.
type Spec struct {
	// Name labels the application.
	Name string
	// TickMS is the simulation step in milliseconds.
	TickMS int64
	// Components are the microservices.
	Components []ComponentSpec
}

// component is the runtime state of one microservice.
type component struct {
	spec      ComponentSpec
	reg       *metrics.Registry
	instances int
	rng       *rand.Rand

	// Current-tick signals.
	arrival    float64
	util       float64
	ownLatency float64
	latency    float64
	errRate    float64
	memMB      float64
	queue      float64

	// Previous-tick signals (the propagation lag Granger detects).
	prevArrival float64
	prevLatency float64

	memDrift float64
}

// App is a running application simulation.
type App struct {
	spec   Spec
	comps  map[string]*component
	order  []string
	nowMS  int64
	fault  bool
	tracer *trace.Tracer
	pcap   *trace.PacketCapture
	// nextEphemeral hands out client port numbers for trace events.
	nextEphemeral int
	rng           *rand.Rand
}

// New builds an application from its spec. Component names must be
// unique, calls must reference declared components, and every component
// needs positive capacity.
func New(spec Spec, seed int64) (*App, error) {
	if spec.TickMS <= 0 {
		return nil, fmt.Errorf("app: non-positive tick %d", spec.TickMS)
	}
	if len(spec.Components) == 0 {
		return nil, fmt.Errorf("app: %q has no components", spec.Name)
	}
	a := &App{
		spec:          spec,
		comps:         map[string]*component{},
		nextEphemeral: 40000,
		rng:           rand.New(rand.NewSource(seed)),
	}
	for _, cs := range spec.Components {
		if _, dup := a.comps[cs.Name]; dup {
			return nil, fmt.Errorf("app: duplicate component %q", cs.Name)
		}
		if cs.CapacityPerInstance <= 0 {
			return nil, fmt.Errorf("app: component %q has non-positive capacity", cs.Name)
		}
		inst := cs.Instances
		if inst < 1 {
			inst = 1
		}
		c := &component{
			spec:      cs,
			reg:       metrics.NewRegistry(cs.Name),
			instances: inst,
			rng:       rand.New(rand.NewSource(seed ^ int64(hashName(cs.Name)))),
			memMB:     cs.MemBaseMB,
		}
		a.comps[cs.Name] = c
		a.order = append(a.order, cs.Name)
	}
	sort.Strings(a.order)
	for _, cs := range spec.Components {
		for _, call := range cs.Calls {
			if _, ok := a.comps[call.Target]; !ok {
				return nil, fmt.Errorf("app: %q calls unknown component %q", cs.Name, call.Target)
			}
		}
	}
	// Export constants immediately; they exist from the first scrape.
	for _, c := range a.comps {
		for name, v := range c.spec.Constants {
			c.reg.Gauge(name).Set(v)
		}
	}
	return a, nil
}

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Name returns the application name.
func (a *App) Name() string { return a.spec.Name }

// Now returns the simulation clock in milliseconds.
func (a *App) Now() int64 { return a.nowMS }

// TickMS returns the simulation step.
func (a *App) TickMS() int64 { return a.spec.TickMS }

// Components returns the component names in sorted order.
func (a *App) Components() []string {
	out := make([]string, len(a.order))
	copy(out, a.order)
	return out
}

// Registry returns the metric registry of a component, or nil when the
// component does not exist.
func (a *App) Registry(name string) *metrics.Registry {
	c := a.comps[name]
	if c == nil {
		return nil
	}
	return c.reg
}

// Registries returns all registries in component-name order.
func (a *App) Registries() []*metrics.Registry {
	out := make([]*metrics.Registry, 0, len(a.order))
	for _, n := range a.order {
		out = append(out, a.comps[n].reg)
	}
	return out
}

// AttachTracer installs a sysdig-like tracer receiving socket events.
func (a *App) AttachTracer(t *trace.Tracer) { a.tracer = t }

// AttachPacketCapture installs a tcpdump-like capturer.
func (a *App) AttachPacketCapture(p *trace.PacketCapture) { a.pcap = p }

// SetFault toggles the application-wide fault (the RCA case study's
// faulty version).
func (a *App) SetFault(active bool) { a.fault = active }

// FaultActive reports the fault state.
func (a *App) FaultActive() bool { return a.fault }

// Scale sets a component's instance count (minimum 1).
func (a *App) Scale(name string, instances int) error {
	c := a.comps[name]
	if c == nil {
		return fmt.Errorf("app: unknown component %q", name)
	}
	if instances < 1 {
		instances = 1
	}
	c.instances = instances
	return nil
}

// Instances returns a component's instance count (0 for unknown names).
func (a *App) Instances(name string) int {
	c := a.comps[name]
	if c == nil {
		return 0
	}
	return c.instances
}

// Utilization returns a component's current utilization (0 for unknown).
func (a *App) Utilization(name string) float64 {
	c := a.comps[name]
	if c == nil {
		return 0
	}
	return c.util
}

// EntryLatencyMS returns the end-to-end latency currently observed at the
// first entry component, the quantity SLAs are written against.
func (a *App) EntryLatencyMS() float64 {
	for _, n := range a.order {
		if a.comps[n].spec.Entry {
			return a.comps[n].latency
		}
	}
	return 0
}

// ErrorRate returns a component's current error rate (errors/second).
func (a *App) ErrorRate(name string) float64 {
	c := a.comps[name]
	if c == nil {
		return 0
	}
	return c.errRate
}

// Step advances the simulation one tick with the given external load
// (requests/second) applied to every entry component.
func (a *App) Step(externalRPS float64) {
	if externalRPS < 0 {
		externalRPS = 0
	}

	// Phase 1: compute this tick's arrivals from external load plus the
	// previous tick's upstream flows (one-tick propagation lag).
	arrivals := map[string]float64{}
	for _, n := range a.order {
		c := a.comps[n]
		if c.spec.Entry {
			arrivals[n] += externalRPS
		}
	}
	for _, n := range a.order {
		c := a.comps[n]
		flow := c.prevArrival
		if a.fault && c.spec.Fault != nil && c.spec.Fault.DropRate > 0 {
			flow *= 1 - math.Min(c.spec.Fault.DropRate, 1)
		}
		for _, call := range c.spec.Calls {
			arrivals[call.Target] += flow * call.Prob
		}
	}

	// Phase 2: update every component's state from its arrivals, then
	// fold in the callees' lagged latency (end-to-end latency responds to
	// downstream congestion one tick later — the structure Granger finds).
	for _, n := range a.order {
		a.comps[n].update(arrivals[n], a.fault)
	}
	for _, n := range a.order {
		a.comps[n].addDownstreamLatency(func(target string) float64 {
			return a.comps[target].prevLatency
		})
	}

	// Phase 3: export metrics and emit trace traffic.
	dt := float64(a.spec.TickMS) / 1000
	for _, n := range a.order {
		a.comps[n].export(dt, a.fault, a.comps[n].rng)
	}
	a.emitTraffic()

	// Phase 4: roll the lagged state and advance the clock.
	for _, n := range a.order {
		c := a.comps[n]
		c.prevArrival = c.arrival
		c.prevLatency = c.latency
	}
	a.nowMS += a.spec.TickMS
}

// update recomputes a component's signals for this tick.
func (c *component) update(arrival float64, fault bool) {
	c.arrival = arrival
	capacity := float64(c.instances) * c.spec.CapacityPerInstance
	util := arrival / capacity
	latFactor := 1.0
	errRate := 0.0

	if fault && c.spec.Fault != nil {
		f := c.spec.Fault
		if f.UtilFactor > 0 {
			util *= f.UtilFactor
		}
		if f.LatencyFactor > 0 {
			latFactor = f.LatencyFactor
		}
		errRate += f.ErrorRate
	}
	c.util = util

	// Queueing growth: service time stretched as utilization approaches
	// saturation (an M/M/1-flavoured fluid approximation, capped), plus
	// an unbounded backlog term past saturation — overload latency grows
	// with the excess arrival rate instead of plateauing, so saturating a
	// component visibly breaks latency SLAs.
	effUtil := math.Min(util, 0.95)
	c.ownLatency = c.spec.ServiceMS * latFactor * (1 + effUtil/(1-effUtil))
	if util > 1 {
		c.ownLatency += c.spec.ServiceMS * latFactor * (util - 1) * 25
	}

	// Overload sheds requests as errors.
	if util > 1 {
		errRate += (util - 1) * capacity
	}
	c.errRate = errRate

	// End-to-end latency: own latency plus the lagged latency of callees,
	// weighted by call probability (the previous tick's value — the
	// causality lag).
	c.latency = c.ownLatency
	c.queue = arrival * c.ownLatency / 1000

	// Memory: base + utilization coupling + slow random-walk drift.
	c.memDrift += c.rng.NormFloat64() * 0.1
	if c.memDrift < -c.spec.MemBaseMB/4 {
		c.memDrift = -c.spec.MemBaseMB / 4
	}
	c.memMB = c.spec.MemBaseMB*(1+0.5*math.Min(util, 2)) + c.memDrift
}

// addDownstreamLatency folds callee latency into the caller; called by
// App.Step via export after all updates so the lagged values are used.
func (c *component) addDownstreamLatency(getPrevLatency func(string) float64) {
	for _, call := range c.spec.Calls {
		frac := call.Prob
		if frac > 1 {
			frac = 1 // parallel fan-out: latency adds once
		}
		c.latency += frac * getPrevLatency(call.Target)
	}
}

// export writes every metric family for this tick.
func (c *component) export(dt float64, fault bool, rng *rand.Rand) {
	for _, fam := range c.spec.Families {
		switch fam.Phase {
		case PhaseHealthyOnly:
			if fault {
				continue
			}
		case PhaseFaultyOnly:
			if !fault {
				continue
			}
		}
		base := c.driverValue(fam.Driver) * scaleOr1(fam.Scale)
		variants := fam.Variants
		if len(variants) == 0 {
			variants = []string{""}
		}
		for vi, suffix := range variants {
			name := fam.Base
			if suffix != "" {
				name = fam.Base + "_" + suffix
			}
			// Each variant is a deterministic distortion of the driver:
			// same shape, different scale/offset, plus sampling noise —
			// what k-Shape must cluster back together.
			v := base * (1 + 0.15*float64(vi))
			if fam.Noise > 0 {
				v += rng.NormFloat64() * fam.Noise * (math.Abs(base) + 1e-9)
			}
			if fam.Counter {
				c.reg.Counter(name).Inc(math.Max(v, 0) * dt)
			} else {
				c.reg.Gauge(name).Set(v)
			}
		}
	}
}

func (c *component) driverValue(d Driver) float64 {
	switch d {
	case DriverUtil:
		// Reported CPU saturates below the true backlog: IO- and
		// event-loop-bound services (node.js, API servers) peg their
		// bottleneck resource while host CPU plateaus, which is why CPU
		// is a poor SLA proxy — the paper's core motivation. True
		// utilization remains visible via latency and queue drivers.
		return 1 - math.Exp(-0.9*c.util)
	case DriverRate:
		return c.arrival
	case DriverLatency:
		return c.latency
	case DriverOwnLatency:
		return c.ownLatency
	case DriverErrors:
		return c.errRate
	case DriverMemory:
		return c.memMB
	case DriverQueue:
		return c.queue
	case DriverConst:
		return 1
	default:
		return 0
	}
}

func scaleOr1(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

// emitTraffic generates syscall events and packets for each active edge:
// one connection handshake plus a request/response byte exchange per tick
// per edge (bounded, so the tracer load stays realistic).
func (a *App) emitTraffic() {
	if a.tracer == nil && a.pcap == nil {
		return
	}
	for _, n := range a.order {
		c := a.comps[n]
		if c.arrival <= 0 {
			continue
		}
		for _, call := range c.spec.Calls {
			target := a.comps[call.Target]
			flow := c.arrival * call.Prob
			if flow <= 0 {
				continue
			}
			clientAddr := fmt.Sprintf("%s:%d", hostOf(c.spec.Addr), a.nextEphemeral)
			a.nextEphemeral++
			if a.nextEphemeral > 60000 {
				a.nextEphemeral = 40000
			}
			reqBytes := 200 + int(flow)
			respBytes := 500 + int(flow*3)

			if a.tracer != nil {
				a.tracer.Emit(trace.Event{TimeMS: a.nowMS, Process: c.spec.Name, Type: trace.EventConnect, Local: clientAddr, Remote: target.spec.Addr})
				a.tracer.Emit(trace.Event{TimeMS: a.nowMS, Process: target.spec.Name, Type: trace.EventAccept, Local: target.spec.Addr, Remote: clientAddr})
				a.tracer.Emit(trace.Event{TimeMS: a.nowMS, Process: c.spec.Name, Type: trace.EventWrite, Local: clientAddr, Remote: target.spec.Addr, Bytes: reqBytes})
				a.tracer.Emit(trace.Event{TimeMS: a.nowMS, Process: target.spec.Name, Type: trace.EventRead, Local: target.spec.Addr, Remote: clientAddr, Bytes: reqBytes})
				a.tracer.Emit(trace.Event{TimeMS: a.nowMS, Process: target.spec.Name, Type: trace.EventWrite, Local: target.spec.Addr, Remote: clientAddr, Bytes: respBytes})
				a.tracer.Emit(trace.Event{TimeMS: a.nowMS, Process: c.spec.Name, Type: trace.EventClose, Local: clientAddr, Remote: target.spec.Addr})
			}
			if a.pcap != nil {
				a.pcap.Capture(trace.Packet{TimeMS: a.nowMS, Src: clientAddr, Dst: target.spec.Addr, Payload: make([]byte, min(reqBytes, 1500))})
				a.pcap.Capture(trace.Packet{TimeMS: a.nowMS, Src: target.spec.Addr, Dst: clientAddr, Payload: make([]byte, min(respBytes, 1500))})
			}
		}
	}
}

func hostOf(addr string) string {
	for i := 0; i < len(addr); i++ {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
