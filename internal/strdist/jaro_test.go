package strdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestJaroKnownValues(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.944444},
		{"DIXON", "DICKSONX", 0.766667},
		{"CRATE", "TRACE", 0.733333},
		{"", "", 1},
		{"abc", "", 0},
		{"", "abc", 0},
		{"same", "same", 1},
		{"abc", "xyz", 0},
	}
	for _, tt := range tests {
		if got := Jaro(tt.a, tt.b); !almostEqual(got, tt.want, 1e-5) {
			t.Errorf("Jaro(%q,%q) = %.6f, want %.6f", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.961111},
		{"DWAYNE", "DUANE", 0.840000},
		{"cpu_usage", "cpu_usage", 1},
	}
	for _, tt := range tests {
		if got := JaroWinkler(tt.a, tt.b); !almostEqual(got, tt.want, 1e-5) {
			t.Errorf("JaroWinkler(%q,%q) = %.6f, want %.6f", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestJaroPrefixBoostOrdering(t *testing.T) {
	// Metric-name intuition: a shared family prefix must score higher
	// with Jaro-Winkler than with plain Jaro.
	a, b := "cpu_usage_mean", "cpu_usage_p95"
	if JaroWinkler(a, b) <= Jaro(a, b) {
		t.Errorf("JaroWinkler(%q,%q) = %g not boosted above Jaro = %g", a, b, JaroWinkler(a, b), Jaro(a, b))
	}
}

func TestJaroProperties(t *testing.T) {
	letters := []byte("abcdefg_")
	randStr := func(rng *rand.Rand) string {
		n := rng.Intn(12)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = letters[rng.Intn(len(letters))]
		}
		return string(buf)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randStr(rng), randStr(rng)
		j := Jaro(a, b)
		jw := JaroWinkler(a, b)
		if j < 0 || j > 1 || jw < 0 || jw > 1 {
			return false
		}
		if !almostEqual(Jaro(a, b), Jaro(b, a), 1e-12) {
			return false // symmetry
		}
		if Jaro(a, a) != 1 {
			return false // identity
		}
		return jw >= j-1e-12 // Winkler never decreases the score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJaroDistance(t *testing.T) {
	if got := JaroDistance("same", "same"); got != 0 {
		t.Errorf("JaroDistance identical = %g, want 0", got)
	}
	if got := JaroDistance("abc", "xyz"); got != 1 {
		t.Errorf("JaroDistance disjoint = %g, want 1", got)
	}
}
