// Package strdist implements the string-similarity metrics Sieve uses to
// seed k-Shape cluster assignments from metric names (§3.2): developers
// tend to name related metrics similarly ("cpu_usage",
// "cpu_usage_percentile"), so Jaro similarity over names provides a good
// initial clustering that speeds convergence without affecting the final
// result.
package strdist

// Jaro returns the Jaro similarity of two strings in [0, 1]; 1 means
// identical, 0 means no matching characters. Comparison is byte-wise,
// which is adequate for ASCII metric names.
func Jaro(a, b string) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	// Characters match if equal and within the standard search window.
	window := max(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	aMatched := make([]bool, la)
	bMatched := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bMatched[j] || a[i] != b[j] {
				continue
			}
			aMatched[i] = true
			bMatched[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among the matched characters.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !aMatched[i] {
			continue
		}
		for !bMatched[j] {
			j++
		}
		if a[i] != b[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity, which boosts the Jaro
// score for strings sharing a common prefix (up to 4 bytes) with the
// standard scaling factor 0.1. Metric families usually share prefixes, so
// this is the default metric for name-based pre-clustering.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	for prefix < len(a) && prefix < len(b) && prefix < 4 && a[prefix] == b[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// JaroDistance returns 1 - Jaro(a, b), a dissimilarity in [0, 1].
func JaroDistance(a, b string) float64 {
	return 1 - Jaro(a, b)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
