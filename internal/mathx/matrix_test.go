package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasicOps(t *testing.T) {
	m := MatrixFromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %g, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Errorf("Set/At round trip failed")
	}
	row := m.Row(1)
	row[0] = 100 // must not alias the matrix
	if m.At(1, 0) != 4 {
		t.Errorf("Row must copy: matrix mutated to %g", m.At(1, 0))
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	tr := m.T()
	if tr.Rows() != 2 || tr.Cols() != 3 {
		t.Fatalf("transpose shape = %dx%d, want 2x3", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := a.MulVec([]float64{1, 2, 3})
	want := []float64{7, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Square well-conditioned system has an exact solution.
	a := MatrixFromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	x, err := SolveLeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveLeastSquaresRecoversPlantedCoefficients(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 80, 4
		truth := make([]float64, p)
		for i := range truth {
			truth[i] = rng.NormFloat64() * 3
		}
		a := NewMatrix(n, p)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < p; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				s += v * truth[j]
			}
			y[i] = s // noiseless: LS must recover exactly
		}
		x, err := SolveLeastSquares(a, y)
		if err != nil {
			return false
		}
		for j := range truth {
			if !almostEqual(x[j], truth[j], 1e-7*(1+math.Abs(truth[j]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolveLeastSquaresMinimizesResidual(t *testing.T) {
	// Overdetermined noisy system: the LS residual must not beat a small
	// perturbation of the solution.
	rng := rand.New(rand.NewSource(11))
	n, p := 50, 3
	a := NewMatrix(n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		y[i] = rng.NormFloat64()
	}
	x, err := SolveLeastSquares(a, y)
	if err != nil {
		t.Fatal(err)
	}
	rss := func(sol []float64) float64 {
		pred := a.MulVec(sol)
		var s float64
		for i := range pred {
			d := y[i] - pred[i]
			s += d * d
		}
		return s
	}
	base := rss(x)
	for j := 0; j < p; j++ {
		pert := append([]float64(nil), x...)
		pert[j] += 0.01
		if rss(pert) < base-1e-12 {
			t.Fatalf("perturbing coefficient %d improved RSS: %g < %g", j, rss(pert), base)
		}
	}
}

func TestSolveLeastSquaresSingular(t *testing.T) {
	// Second column is an exact copy of the first.
	a := MatrixFromRows([][]float64{
		{1, 1},
		{2, 2},
		{3, 3},
	})
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLeastSquaresShapeErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLeastSquares(a, []float64{1, 2}); err == nil {
		t.Error("expected error for underdetermined system")
	}
	b := NewMatrix(3, 1)
	if _, err := SolveLeastSquares(b, []float64{1, 2}); err == nil {
		t.Error("expected error for row/response mismatch")
	}
}

func TestPowerIterationDiagonal(t *testing.T) {
	s := MatrixFromRows([][]float64{
		{5, 0, 0},
		{0, 2, 0},
		{0, 0, 1},
	})
	v, lambda := PowerIteration(s, 500, 1e-12)
	if !almostEqual(lambda, 5, 1e-6) {
		t.Fatalf("eigenvalue = %g, want 5", lambda)
	}
	if !almostEqual(math.Abs(v[0]), 1, 1e-5) || math.Abs(v[1]) > 1e-4 || math.Abs(v[2]) > 1e-4 {
		t.Fatalf("eigenvector = %v, want +/-e1", v)
	}
}

func TestPowerIterationSymmetric(t *testing.T) {
	// Known symmetric matrix with dominant eigenpair lambda=3, v=(1,1)/sqrt2.
	s := MatrixFromRows([][]float64{
		{2, 1},
		{1, 2},
	})
	v, lambda := PowerIteration(s, 500, 1e-12)
	if !almostEqual(lambda, 3, 1e-8) {
		t.Fatalf("eigenvalue = %g, want 3", lambda)
	}
	if !almostEqual(math.Abs(v[0]), 1/math.Sqrt2, 1e-6) || !almostEqual(math.Abs(v[1]), 1/math.Sqrt2, 1e-6) {
		t.Fatalf("eigenvector = %v, want (1,1)/sqrt2 up to sign", v)
	}
}

func TestPowerIterationEmpty(t *testing.T) {
	v, lambda := PowerIteration(NewMatrix(0, 0), 10, 1e-9)
	if v != nil || lambda != 0 {
		t.Errorf("empty matrix: got %v, %g", v, lambda)
	}
}

func TestMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}
