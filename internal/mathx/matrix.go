package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system is (numerically) rank
// deficient and no unique solution exists.
var ErrSingular = errors.New("mathx: matrix is singular or rank deficient")

// Matrix is a dense, row-major matrix of float64 values. The zero value is
// an empty matrix; use NewMatrix to allocate one with a shape.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix allocates an r-by-c zero matrix. It panics if r or c is
// negative.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// MatrixFromRows builds a matrix from a slice of equal-length rows, copying
// the data. It panics on ragged input.
func MatrixFromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("mathx: ragged rows in MatrixFromRows")
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Resize reshapes m to r-by-c in place, reusing the backing array when it
// is large enough. The contents are unspecified afterwards; callers must
// write every cell before reading. It returns m, and panics on a negative
// dimension.
func (m *Matrix) Resize(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", r, c))
	}
	if cap(m.data) < r*c {
		m.data = make([]float64, r*c)
	} else {
		m.data = m.data[:r*c]
	}
	m.rows, m.cols = r, c
	return m
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	return m.TInto(NewMatrix(m.cols, m.rows))
}

// TInto writes the transpose of m into dst (resized to fit) and returns
// dst.
func (m *Matrix) TInto(dst *Matrix) *Matrix {
	dst.Resize(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			dst.data[j*dst.cols+i] = m.data[i*m.cols+j]
		}
	}
	return dst
}

// Mul returns the matrix product m*b. It panics on a shape mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	return m.MulInto(NewMatrix(m.rows, b.cols), b)
}

// MulInto writes the matrix product m*b into dst (resized and zeroed) and
// returns dst. The accumulation order matches Mul exactly. It panics on a
// shape mismatch.
func (m *Matrix) MulInto(dst *Matrix, b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mathx: Mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := dst.Resize(m.rows, b.cols)
	for i := range out.data {
		out.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			rowB := b.data[k*b.cols : (k+1)*b.cols]
			rowO := out.data[i*out.cols : (i+1)*out.cols]
			for j, v := range rowB {
				rowO[j] += a * v
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x. It panics on a shape
// mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	return m.MulVecInto(make([]float64, m.rows), x)
}

// MulVecInto writes the matrix-vector product m*x into out (capacity >=
// Rows) and returns out[:Rows]. It panics on a shape mismatch.
func (m *Matrix) MulVecInto(out []float64, x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("mathx: MulVec shape mismatch %dx%d * %d", m.rows, m.cols, len(x)))
	}
	out = out[:m.rows]
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// LSScratch holds the QR workspace reused by SolveLeastSquaresInto: the
// factored copy of the design and the reflected response. The zero value
// is ready to use; a scratch must not be used concurrently.
type LSScratch struct {
	r Matrix
	y []float64
}

// SolveLeastSquares solves min_x ||A*x - b||_2 using Householder QR.
// A must have at least as many rows as columns; it returns ErrSingular when
// A is numerically rank deficient.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	var s LSScratch
	return SolveLeastSquaresInto(nil, a, b, &s)
}

// SolveLeastSquaresInto is SolveLeastSquares with a caller-owned solution
// buffer and QR workspace, so repeated solves allocate nothing. dst may
// be nil or short, in which case the solution is freshly allocated; the
// factorization itself is bit-identical to SolveLeastSquares (same copy
// of A, same reflector arithmetic).
func SolveLeastSquaresInto(dst []float64, a *Matrix, b []float64, s *LSScratch) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("mathx: design has %d rows but response has %d", a.rows, len(b))
	}
	if a.rows < a.cols {
		return nil, fmt.Errorf("mathx: underdetermined system %dx%d", a.rows, a.cols)
	}
	n, p := a.rows, a.cols
	if p == 0 {
		return nil, errors.New("mathx: empty design matrix")
	}

	r := s.r.Resize(n, p)
	copy(r.data, a.data)
	if cap(s.y) < n {
		s.y = make([]float64, n)
	}
	y := s.y[:n]
	copy(y, b)

	// Householder QR: for each column k, reflect so that the subdiagonal
	// becomes zero; apply the same reflection to y.
	for k := 0; k < p; k++ {
		// norm of column k below (and including) the diagonal
		var norm float64
		for i := k; i < n; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm == 0 {
			return nil, ErrSingular
		}
		// Give norm the sign of the pivot so the reflector head
		// v[k] = pivot/norm + 1 stays >= 1 (numerically stable choice).
		if r.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < n; i++ {
			r.Set(i, k, r.At(i, k)/norm)
		}
		r.Set(k, k, r.At(k, k)+1)

		// Apply the reflector to the remaining columns.
		for j := k + 1; j < p; j++ {
			var s float64
			for i := k; i < n; i++ {
				s += r.At(i, k) * r.At(i, j)
			}
			s = -s / r.At(k, k)
			for i := k; i < n; i++ {
				r.Set(i, j, r.At(i, j)+s*r.At(i, k))
			}
		}
		// Apply the reflector to y.
		var s float64
		for i := k; i < n; i++ {
			s += r.At(i, k) * y[i]
		}
		s = -s / r.At(k, k)
		for i := k; i < n; i++ {
			y[i] += s * r.At(i, k)
		}
		// Store the diagonal of R (the reflectors live below it).
		r.Set(k, k, norm)
	}

	// Back substitution on the p-by-p upper triangle. The diagonal of R now
	// holds -norm values from the loop above; check conditioning.
	if cap(dst) < p {
		dst = make([]float64, p)
	}
	x := dst[:p]
	for k := p - 1; k >= 0; k-- {
		d := -r.At(k, k) // sign flipped by the reflector construction
		if math.Abs(d) < 1e-12 {
			return nil, ErrSingular
		}
		s := y[k]
		for j := k + 1; j < p; j++ {
			s -= r.At(k, j) * x[j]
		}
		x[k] = -s / r.At(k, k)
	}
	return x, nil
}

// PowerIteration computes the dominant eigenvector (and eigenvalue) of a
// square symmetric matrix using deterministic power iteration. It starts
// from a fixed seed vector, iterates at most maxIter times, and stops once
// successive normalized iterates differ by less than tol in Euclidean norm.
// It panics if s is not square.
func PowerIteration(s *Matrix, maxIter int, tol float64) (vec []float64, eigenvalue float64) {
	if s.rows != s.cols {
		panic(fmt.Sprintf("mathx: PowerIteration needs a square matrix, got %dx%d", s.rows, s.cols))
	}
	n := s.rows
	if n == 0 {
		return nil, 0
	}
	v := make([]float64, n)
	// Deterministic, non-degenerate start: a mildly sloped vector avoids
	// being orthogonal to the dominant eigenvector in common cases.
	for i := range v {
		v[i] = 1 + float64(i%7)/7
	}
	normalize(v)

	prev := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		copy(prev, v)
		w := s.MulVec(v)
		nw := normalize(w)
		if nw == 0 {
			// s annihilated v; restart with an orthogonal-ish direction.
			for i := range w {
				w[i] = float64(1 + (i*31)%13)
			}
			normalize(w)
		}
		copy(v, w)
		// Eigenvectors are sign-ambiguous; compare against both signs.
		if vecDist(v, prev) < tol || vecDistNeg(v, prev) < tol {
			break
		}
	}
	// Rayleigh quotient for the eigenvalue.
	w := s.MulVec(v)
	var lambda float64
	for i := range v {
		lambda += v[i] * w[i]
	}
	return v, lambda
}

// DominantEigen computes the dominant eigenvector (and Rayleigh-quotient
// eigenvalue) of an implicit symmetric linear operator on R^n, given as
// apply(dst, src) writing op*src into dst. This avoids materializing the
// n-by-n matrix when the operator has cheap structure (k-Shape's centroid
// extraction applies Q·AᵀA·Q through the member matrix A directly).
// Iteration is deterministic and stops after maxIter steps or when
// successive normalized iterates agree within tol (up to sign).
func DominantEigen(n int, apply func(dst, src []float64), maxIter int, tol float64) (vec []float64, eigenvalue float64) {
	var s EigenScratch
	return DominantEigenWith(n, apply, maxIter, tol, &s)
}

// EigenScratch holds DominantEigenWith's three iteration vectors. The
// zero value is ready to use; a scratch must not be used concurrently.
type EigenScratch struct {
	v, w, prev []float64
}

func (s *EigenScratch) buffers(n int) (v, w, prev []float64) {
	if cap(s.v) < n {
		s.v = make([]float64, n)
	}
	if cap(s.w) < n {
		s.w = make([]float64, n)
	}
	if cap(s.prev) < n {
		s.prev = make([]float64, n)
	}
	return s.v[:n], s.w[:n], s.prev[:n]
}

// DominantEigenWith is DominantEigen with caller-owned iteration vectors,
// so repeated extractions allocate nothing. The returned vector aliases
// the scratch and is only valid until the next call with the same
// scratch; callers that keep it must copy (k-Shape z-normalizes it into a
// fresh slice anyway).
func DominantEigenWith(n int, apply func(dst, src []float64), maxIter int, tol float64, s *EigenScratch) (vec []float64, eigenvalue float64) {
	if n == 0 {
		return nil, 0
	}
	v, w, prev := s.buffers(n)
	for i := range v {
		v[i] = 1 + float64(i%7)/7
	}
	normalize(v)

	for iter := 0; iter < maxIter; iter++ {
		copy(prev, v)
		apply(w, v)
		if normalize(w) == 0 {
			for i := range w {
				w[i] = float64(1 + (i*31)%13)
			}
			normalize(w)
		}
		copy(v, w)
		if vecDist(v, prev) < tol || vecDistNeg(v, prev) < tol {
			break
		}
	}
	apply(w, v)
	var lambda float64
	for i := range v {
		lambda += v[i] * w[i]
	}
	return v, lambda
}

func normalize(v []float64) float64 {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	if n == 0 {
		return 0
	}
	for i := range v {
		v[i] /= n
	}
	return n
}

func vecDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func vecDistNeg(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] + b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
