package mathx

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestNextPow2(t *testing.T) {
	tests := []struct {
		in, want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1023, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, tt := range tests {
		if got := NextPow2(tt.in); got != tt.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	tests := []struct {
		in   int
		want bool
	}{
		{0, false}, {1, true}, {2, true}, {3, false}, {4, true}, {6, false}, {-4, false}, {1 << 20, true},
	}
	for _, tt := range tests {
		if got := IsPow2(tt.in); got != tt.want {
			t.Errorf("IsPow2(%d) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestFFTKnownTransform(t *testing.T) {
	// FFT of [1,0,0,0] is all ones; FFT of [1,1,1,1] is [4,0,0,0].
	x := []complex128{1, 0, 0, 0}
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("FFT(delta)[%d] = %v, want 1", i, v)
		}
	}
	y := []complex128{1, 1, 1, 1}
	FFT(y)
	want := []complex128{4, 0, 0, 0}
	for i, v := range y {
		if cmplx.Abs(v-want[i]) > 1e-12 {
			t.Errorf("FFT(ones)[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestFFTMatchesDFTDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	direct := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		direct[k] = s
	}
	got := make([]complex128, n)
	copy(got, x)
	FFT(got)
	for k := range got {
		if cmplx.Abs(got[k]-direct[k]) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, direct DFT = %v", k, got[k], direct[k])
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(8)) // 2..256
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		FFT(x)
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return almostEqual(timeEnergy, freqEnergy, 1e-7*(1+timeEnergy))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(6))
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			sum[i] = a[i] + b[i]
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two input")
		}
	}()
	FFT(make([]complex128, 3))
}

// bruteCrossCorrelate is the O(n^2) reference for CrossCorrelate.
func bruteCrossCorrelate(a, b []float64) []float64 {
	n := len(a)
	r := make([]float64, 2*n-1)
	for s := -(n - 1); s <= n-1; s++ {
		var sum float64
		for t := 0; t < n; t++ {
			u := t - s
			if u >= 0 && u < n {
				sum += a[t] * b[u]
			}
		}
		r[s+n-1] = sum
	}
	return r
}

func TestCrossCorrelateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 5, 17, 64, 100} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		got := CrossCorrelate(a, b)
		want := bruteCrossCorrelate(a, b)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d, want %d", n, len(got), len(want))
		}
		for i := range got {
			if !almostEqual(got[i], want[i], 1e-8*(1+math.Abs(want[i]))) {
				t.Fatalf("n=%d: r[%d] = %g, want %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestCrossCorrelateShiftDetection(t *testing.T) {
	// b is a copy of a delayed by 3 samples; the correlation peak must sit
	// at shift +3 (a needs to slide right... i.e. b lags a).
	n := 32
	a := make([]float64, n)
	b := make([]float64, n)
	a[5] = 1
	b[8] = 1 // delayed copy
	r := CrossCorrelate(a, b)
	best, bestVal := 0, math.Inf(-1)
	for i, v := range r {
		if v > bestVal {
			bestVal, best = v, i
		}
	}
	shift := best - (n - 1)
	if shift != -3 {
		t.Fatalf("peak at shift %d, want -3 (r[k]=sum a[t]b[t-s])", shift)
	}
}

func TestCrossCorrelatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	CrossCorrelate([]float64{1, 2}, []float64{1})
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{1, 1})
	want := []float64{1, 3, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if got := Convolve(nil, []float64{1}); got != nil {
		t.Errorf("Convolve(nil, x) = %v, want nil", got)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%17), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkCrossCorrelate4096(b *testing.B) {
	n := 4096
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) / 10)
		y[i] = math.Cos(float64(i) / 10)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CrossCorrelate(x, y)
	}
}
