package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		x, mu, sigma, want float64
	}{
		{0, 0, 1, 0.5},
		{1.959964, 0, 1, 0.975},
		{-1.644854, 0, 1, 0.05},
		{10, 10, 2, 0.5},
		{12, 10, 2, 0.8413447},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.x, tt.mu, tt.sigma); !almostEqual(got, tt.want, 1e-6) {
			t.Errorf("NormalCDF(%g,%g,%g) = %.7f, want %.7f", tt.x, tt.mu, tt.sigma, got, tt.want)
		}
	}
	if got := NormalCDF(0, 0, -1); !math.IsNaN(got) {
		t.Errorf("negative sigma: got %g, want NaN", got)
	}
}

func TestStdNormalCDF(t *testing.T) {
	if got := StdNormalCDF(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Phi(0) = %g, want 0.5", got)
	}
	if got := StdNormalCDF(1.281552); !almostEqual(got, 0.9, 1e-6) {
		t.Errorf("Phi(1.2816) = %g, want 0.9", got)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Critical values: t_{0.975,df}.
	tests := []struct {
		t, df, want float64
	}{
		{0, 5, 0.5},
		{2.085963, 20, 0.975},
		{-2.085963, 20, 0.025},
		{1.812461, 10, 0.95},
		{12.7062, 1, 0.975},
	}
	for _, tt := range tests {
		if got := StudentTCDF(tt.t, tt.df); !almostEqual(got, tt.want, 1e-5) {
			t.Errorf("StudentTCDF(%g, %g) = %.6f, want %.6f", tt.t, tt.df, got, tt.want)
		}
	}
	if got := StudentTCDF(math.Inf(1), 3); got != 1 {
		t.Errorf("CDF(+inf) = %g, want 1", got)
	}
	if got := StudentTCDF(math.Inf(-1), 3); got != 0 {
		t.Errorf("CDF(-inf) = %g, want 0", got)
	}
	if got := StudentTCDF(1, 0); !math.IsNaN(got) {
		t.Errorf("df=0: got %g, want NaN", got)
	}
}

func TestFCDFKnownValues(t *testing.T) {
	// Critical values F_{0.95}(d1,d2) from standard tables.
	tests := []struct {
		f, d1, d2, want float64
	}{
		{3.325835, 5, 10, 0.95},
		{4.964603, 1, 10, 0.95},
		{4.102821, 2, 10, 0.95},
		{0, 3, 7, 0},
	}
	for _, tt := range tests {
		if got := FCDF(tt.f, tt.d1, tt.d2); !almostEqual(got, tt.want, 1e-5) {
			t.Errorf("FCDF(%g;%g,%g) = %.6f, want %.6f", tt.f, tt.d1, tt.d2, got, tt.want)
		}
	}
}

func TestFSurvivalComplementsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d1 := 1 + float64(rng.Intn(30))
		d2 := 1 + float64(rng.Intn(60))
		x := rng.Float64() * 10
		c := FCDF(x, d1, d2)
		s := FSurvival(x, d1, d2)
		return almostEqual(c+s, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFSurvivalTail(t *testing.T) {
	// A very large F statistic has a tiny but positive p-value; the direct
	// survival form must not round it to a negative or exactly-zero-by-
	// cancellation value.
	p := FSurvival(80, 3, 100)
	if p <= 0 || p > 1e-10 {
		t.Errorf("FSurvival(80;3,100) = %g, want tiny positive", p)
	}
	if got := FSurvival(0, 3, 10); got != 1 {
		t.Errorf("FSurvival(0) = %g, want 1", got)
	}
	if got := FSurvival(1, 0, 10); !math.IsNaN(got) {
		t.Errorf("d1=0: got %g, want NaN", got)
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	tests := []struct {
		x, k, want float64
	}{
		{3.841459, 1, 0.95},
		{18.30704, 10, 0.95},
		{0, 4, 0},
		{4, 4, 0.59399415},
	}
	for _, tt := range tests {
		if got := ChiSquareCDF(tt.x, tt.k); !almostEqual(got, tt.want, 1e-5) {
			t.Errorf("ChiSquareCDF(%g,%g) = %.6f, want %.6f", tt.x, tt.k, got, tt.want)
		}
	}
	if got := ChiSquareSurvival(3.841459, 1); !almostEqual(got, 0.05, 1e-5) {
		t.Errorf("ChiSquareSurvival = %g, want 0.05", got)
	}
	if got := ChiSquareCDF(1, 0); !math.IsNaN(got) {
		t.Errorf("k=0: got %g, want NaN", got)
	}
}

func TestCDFsAreMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		df := 1 + float64(rng.Intn(40))
		x1 := rng.NormFloat64() * 3
		x2 := rng.NormFloat64() * 3
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		if StudentTCDF(x1, df) > StudentTCDF(x2, df)+1e-12 {
			return false
		}
		return StdNormalCDF(x1) <= StdNormalCDF(x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
