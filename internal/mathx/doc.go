// Package mathx provides the numerical building blocks used across the
// Sieve reproduction: a radix-2 FFT with padding-based cross-correlation,
// small dense linear algebra (Householder QR least squares, power-iteration
// eigensolver), and the special functions (regularized incomplete beta and
// gamma) that back the statistical distribution CDFs needed by the F-test,
// the Augmented Dickey-Fuller test, and the Granger causality machinery.
//
// Everything is implemented from scratch on top of the Go standard library;
// the implementations favour numerical robustness for the moderate problem
// sizes Sieve encounters (time series of 10^2..10^5 points, regression
// designs with tens of columns).
package mathx
