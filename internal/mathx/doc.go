// Package mathx provides the numerical building blocks used across the
// Sieve reproduction: a radix-2 FFT with padding-based cross-correlation,
// small dense linear algebra (Householder QR least squares, power-iteration
// eigensolver), and the special functions (regularized incomplete beta and
// gamma) that back the statistical distribution CDFs needed by the F-test,
// the Augmented Dickey-Fuller test, and the Granger causality machinery.
//
// Everything is implemented from scratch on top of the Go standard library;
// the implementations favour numerical robustness for the moderate problem
// sizes Sieve encounters (time series of 10^2..10^5 points, regression
// designs with tens of columns).
//
// # Concurrency
//
// The pure entry points — FFT, IFFT, RealFFT, RealIFFT, CrossCorrelate,
// Convolve, SolveLeastSquares, DominantEigen, and the distribution
// functions — are safe for concurrent use: their only shared state is
// the process-wide twiddle-table cache, which is internally locked and
// holds immutable tables. The scratch-carrying variants
// (CrossCorrelateInto, ConvolveInto, SolveLeastSquaresInto,
// DominantEigenWith) are safe for concurrent use with DISTINCT scratch
// values; the scratch types themselves (FFTScratch, LSScratch,
// EigenScratch — and the Scratch types layered on them in
// internal/stats, internal/granger, and internal/kshape) must never be
// shared between goroutines. Fan-outs keep one scratch per worker,
// indexed by parallel.ForEachWorker's worker id.
package mathx
