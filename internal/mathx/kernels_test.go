package mathx

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// referenceFFT is the historical transform with the twiddle recurrence
// inline per butterfly column — the form the per-stage table cache
// replaced. The tables are generated with the identical recurrence, so
// the cached transform must reproduce this output bit for bit.
func referenceFFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 1 {
		return x
	}
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return x
}

// TestKernelFFTTwiddleTableBitIdentical pins the table-driven transform
// to the inline-recurrence reference: identical bits, both directions,
// across sizes — the invariant that makes this PR's kernel changes
// invisible to every consumer of FFT-based math.
func TestKernelFFTTwiddleTableBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for size := 2; size <= 4096; size <<= 1 {
		for _, inverse := range []bool{false, true} {
			x := make([]complex128, size)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			want := referenceFFT(append([]complex128(nil), x...), inverse)
			got := fft(append([]complex128(nil), x...), inverse)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("size %d inverse %v: entry %d = %v, reference %v", size, inverse, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRealSpectrumMatchesComplexFFT checks the half-size real-input path
// against the plain complex transform (numerically — the two factor the
// butterflies differently, so equality is up to rounding).
func TestRealSpectrumMatchesComplexFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 7, 16, 100, 255, 1024} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		m := NextPow2(2*n - 1)
		got := RealFFT(make([]complex128, m), x, m)

		full := make([]complex128, m)
		for i, v := range x {
			full[i] = complex(v, 0)
		}
		want := FFT(full)
		for k := range want {
			scale := 1 + math.Hypot(real(want[k]), imag(want[k]))
			if math.Abs(real(got[k])-real(want[k])) > 1e-9*scale ||
				math.Abs(imag(got[k])-imag(want[k])) > 1e-9*scale {
				t.Fatalf("n=%d: bin %d = %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

// TestRealSpectrumRoundTrip checks RealIFFT(RealFFT(x)) == x up to
// rounding, the pairing every correlation in the repo relies on.
func TestRealSpectrumRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range []int{1, 2, 8, 64, 512} {
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec := RealFFT(make([]complex128, m), x, m)
		back := RealIFFT(make([]float64, m), spec)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
				t.Fatalf("m=%d: sample %d round-tripped to %v, want %v", m, i, back[i], x[i])
			}
		}
	}
}

// TestKernelCrossCorrelateScratchAllocs pins the steady-state allocation
// count of the Into kernels at zero once the scratch is warm.
func TestKernelCrossCorrelateScratchAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 500
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	var s FFTScratch
	dst := make([]float64, 2*n-1)
	CrossCorrelateInto(dst, a, b, &s) // warm the scratch and twiddle cache

	if allocs := testing.AllocsPerRun(50, func() {
		CrossCorrelateInto(dst, a, b, &s)
	}); allocs != 0 {
		t.Fatalf("warm CrossCorrelateInto allocates %v times per call, want 0", allocs)
	}
	conv := make([]float64, 2*n-1)
	ConvolveInto(conv, a, b, &s)
	if allocs := testing.AllocsPerRun(50, func() {
		ConvolveInto(conv, a, b, &s)
	}); allocs != 0 {
		t.Fatalf("warm ConvolveInto allocates %v times per call, want 0", allocs)
	}
}
