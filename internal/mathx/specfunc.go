package mathx

import (
	"math"
)

// maxCFIterations bounds the continued-fraction evaluations; the fractions
// converge in a handful of steps for the parameter ranges used by the
// statistical tests, so this is a safety net rather than a tuning knob.
const maxCFIterations = 300

// cfEpsilon is the relative convergence tolerance for continued fractions.
const cfEpsilon = 3e-14

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x in [0, 1]. It returns NaN outside that domain. The
// implementation follows the classic Lentz continued-fraction expansion
// with the symmetry transform applied when x is past the distribution bulk
// so the fraction converges quickly.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta := logBeta(a, b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const tiny = 1e-30
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxCFIterations; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < cfEpsilon {
			break
		}
	}
	return h
}

// logBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b).
func logBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegLowerIncGamma computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0. It returns NaN outside that
// domain. A series expansion is used for x < a+1 and a continued fraction
// for the complement otherwise.
func RegLowerIncGamma(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// gammaSeries evaluates P(a,x) via its power series.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxCFIterations; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*cfEpsilon {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a,x) = 1 - P(a,x) via the Lentz continued fraction.
func gammaCF(a, x float64) float64 {
	const tiny = 1e-30
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxCFIterations; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < cfEpsilon {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
