package mathx

import "math"

// NormalCDF returns P(X <= x) for X ~ Normal(mu, sigma). sigma must be
// positive; NaN is returned otherwise.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 || math.IsNaN(sigma) {
		return math.NaN()
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// StdNormalCDF returns P(Z <= z) for the standard normal distribution.
func StdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// StudentTCDF returns P(T <= t) for Student's t distribution with df
// degrees of freedom (df > 0).
func StudentTCDF(t, df float64) float64 {
	if df <= 0 || math.IsNaN(t) {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	// I_{df/(df+t^2)}(df/2, 1/2) is 2*P(T > |t|).
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// FCDF returns P(X <= f) for the F distribution with (d1, d2) degrees of
// freedom. Both must be positive; f < 0 yields 0.
func FCDF(f, d1, d2 float64) float64 {
	if d1 <= 0 || d2 <= 0 || math.IsNaN(f) {
		return math.NaN()
	}
	if f <= 0 {
		return 0
	}
	x := d1 * f / (d1*f + d2)
	return RegIncBeta(d1/2, d2/2, x)
}

// FSurvival returns P(X > f) for the F distribution with (d1, d2) degrees
// of freedom, computed in a form that stays accurate for large f where
// 1 - FCDF would cancel.
func FSurvival(f, d1, d2 float64) float64 {
	if d1 <= 0 || d2 <= 0 || math.IsNaN(f) {
		return math.NaN()
	}
	if f <= 0 {
		return 1
	}
	x := d2 / (d2 + d1*f)
	return RegIncBeta(d2/2, d1/2, x)
}

// ChiSquareCDF returns P(X <= x) for the chi-squared distribution with k
// degrees of freedom (k > 0).
func ChiSquareCDF(x, k float64) float64 {
	if k <= 0 || math.IsNaN(x) {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	return RegLowerIncGamma(k/2, x/2)
}

// ChiSquareSurvival returns P(X > x) for the chi-squared distribution with
// k degrees of freedom.
func ChiSquareSurvival(x, k float64) float64 {
	c := ChiSquareCDF(x, k)
	if math.IsNaN(c) {
		return math.NaN()
	}
	return 1 - c
}
