package mathx

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// NextPow2 returns the smallest power of two that is >= n. It returns 1 for
// n <= 1. The result is used to pad series before FFT-based correlation.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// twiddleCache holds one twiddle table per butterfly stage size and
// direction, shared by every transform in the process. A stage table is
// immutable after creation, so concurrent transforms only contend on the
// RWMutex read path. Tables are small (size/2 entries) and only one per
// power of two ever exists per direction, so the cache is effectively
// bounded by the largest transform the process has seen.
var twiddleCache struct {
	sync.RWMutex
	fwd map[int][]complex128
	inv map[int][]complex128
}

// stageTwiddles returns the twiddle table for one butterfly stage of the
// given size: entry k holds the k-th factor produced by the multiplicative
// recurrence w *= exp(sign*2*pi*i/size) starting from 1. The recurrence —
// including its accumulated rounding — is exactly what the pre-table
// transform computed inline per butterfly column, so table-driven output
// is bit-identical to the historical inline form.
func stageTwiddles(size int, inverse bool) []complex128 {
	twiddleCache.RLock()
	m := twiddleCache.fwd
	if inverse {
		m = twiddleCache.inv
	}
	tab := m[size]
	twiddleCache.RUnlock()
	if tab != nil {
		return tab
	}

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	step := sign * 2 * math.Pi / float64(size)
	wStep := complex(math.Cos(step), math.Sin(step))
	tab = make([]complex128, size/2)
	w := complex(1, 0)
	for k := range tab {
		tab[k] = w
		w *= wStep
	}

	twiddleCache.Lock()
	if inverse {
		if twiddleCache.inv == nil {
			twiddleCache.inv = map[int][]complex128{}
		}
		twiddleCache.inv[size] = tab
	} else {
		if twiddleCache.fwd == nil {
			twiddleCache.fwd = map[int][]complex128{}
		}
		twiddleCache.fwd[size] = tab
	}
	twiddleCache.Unlock()
	return tab
}

// FFT computes the forward discrete Fourier transform of x in place and
// returns x. The length of x must be a power of two; FFT panics otherwise
// (callers pad with NextPow2 first). The transform is unnormalized:
// X[k] = sum_j x[j] * exp(-2*pi*i*j*k/n).
func FFT(x []complex128) []complex128 {
	return fft(x, false)
}

// IFFT computes the inverse discrete Fourier transform of x in place and
// returns x, normalizing by 1/n so that IFFT(FFT(x)) == x up to rounding.
// The length of x must be a power of two.
func IFFT(x []complex128) []complex128 {
	fft(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return x
}

// fft is an iterative radix-2 Cooley-Tukey transform. inverse selects the
// conjugate twiddle factors (without the 1/n normalization). Twiddles come
// from the per-stage cache, so a steady-state transform allocates nothing.
func fft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("mathx: FFT length %d is not a power of two", n))
	}
	if n == 1 {
		return x
	}

	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}

	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		tab := stageTwiddles(size, inverse)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * tab[k]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return x
}

// RealFFT computes the unnormalized forward DFT of the real series x,
// zero-padded to length m (a power of two >= len(x)), writing the full
// complex spectrum into dst[:m] and returning it. It packs the even/odd
// samples of x into one half-size complex transform, so a real input
// costs half a complex FFT. Each series is transformed alone — never
// packed pairwise with another — so a series' spectrum depends only on
// its own samples; the spectrum caches in internal/kshape rely on that
// for exact batched == pairwise distance equality.
func RealFFT(dst []complex128, x []float64, m int) []complex128 {
	if !IsPow2(m) || m < len(x) {
		panic(fmt.Sprintf("mathx: RealFFT pad %d must be a power of two >= input length %d", m, len(x)))
	}
	dst = dst[:m]
	if m == 1 {
		v := 0.0
		if len(x) > 0 {
			v = x[0]
		}
		dst[0] = complex(v, 0)
		return dst
	}

	// Pack z[j] = x[2j] + i*x[2j+1] (zero-padded) and transform at half
	// size.
	h := m / 2
	for j := 0; j < h; j++ {
		var re, im float64
		if 2*j < len(x) {
			re = x[2*j]
		}
		if 2*j+1 < len(x) {
			im = x[2*j+1]
		}
		dst[j] = complex(re, im)
	}
	fft(dst[:h], false)

	// Unpack: with E and O the DFTs of the even and odd samples,
	//   E_k = (Z[k] + conj(Z[h-k])) / 2
	//   O_k = (Z[k] - conj(Z[h-k])) / (2i)
	//   X[k] = E_k + W_m^k * O_k,  X[k+h] = E_k - W_m^k * O_k
	// where W_m^k is exactly the forward stage-m twiddle table entry.
	// Processing index pairs (k, h-k) together makes the unpack in-place.
	tab := stageTwiddles(m, false)
	z0 := dst[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[h] = complex(real(z0)-imag(z0), 0)
	for k := 1; k <= h/2; k++ {
		j := h - k
		zk, zj := dst[k], dst[j]

		ek := complex((real(zk)+real(zj))/2, (imag(zk)-imag(zj))/2)
		ok := complex((imag(zk)+imag(zj))/2, (real(zj)-real(zk))/2)
		tk := tab[k] * ok
		dst[k] = ek + tk
		dst[k+h] = ek - tk

		if j != k {
			ej := complex((real(zj)+real(zk))/2, (imag(zj)-imag(zk))/2)
			oj := complex((imag(zj)+imag(zk))/2, (real(zk)-real(zj))/2)
			tj := tab[j] * oj
			dst[j] = ej + tj
			dst[j+h] = ej - tj
		}
	}
	return dst
}

// RealIFFT inverts a conjugate-symmetric spectrum — e.g. any product of
// RealFFT spectra (with or without conjugation of one operand, both real
// inputs) — into its real time-domain signal, normalizing by 1/m like
// IFFT. spec (length m, a power of two) is consumed as scratch; dst must
// have capacity for m values. It runs one half-size complex inverse
// transform instead of a full-size one.
func RealIFFT(dst []float64, spec []complex128) []float64 {
	m := len(spec)
	if !IsPow2(m) {
		panic(fmt.Sprintf("mathx: RealIFFT length %d is not a power of two", m))
	}
	dst = dst[:m]
	if m == 1 {
		dst[0] = real(spec[0])
		return dst
	}

	// Re-pack the spectrum of the interleaved half-size signal:
	//   E_k = (P[k] + P[k+h]) / 2
	//   O_k = (P[k] - P[k+h]) / 2 * exp(+2*pi*i*k/m)
	//   Z[k] = E_k + i*O_k
	// then one half-size inverse transform recovers z[j] whose real and
	// imaginary parts are the even and odd output samples. Each slot k is
	// read before it is written, so the re-pack is in-place.
	h := m / 2
	tab := stageTwiddles(m, true)
	for k := 0; k < h; k++ {
		pk, ph := spec[k], spec[k+h]
		ek := complex((real(pk)+real(ph))/2, (imag(pk)+imag(ph))/2)
		ok := complex((real(pk)-real(ph))/2, (imag(pk)-imag(ph))/2) * tab[k]
		spec[k] = complex(real(ek)-imag(ok), imag(ek)+real(ok))
	}
	z := spec[:h]
	fft(z, true)
	// The /2 folded into E and O above plus this /h totals the 1/m
	// normalization of a full-size IFFT.
	nh := complex(float64(h), 0)
	for j := 0; j < h; j++ {
		v := z[j] / nh
		dst[2*j] = real(v)
		dst[2*j+1] = imag(v)
	}
	return dst
}

// FFTScratch holds the reusable transform buffers of CrossCorrelateInto
// and ConvolveInto. The zero value is ready to use; buffers grow to the
// largest padded size seen and are reused across calls. A scratch must
// not be used concurrently — fan-outs keep one per worker.
type FFTScratch struct {
	fa, fb []complex128
	rt     []float64
}

// spectra returns the two padded spectrum buffers at size m.
func (s *FFTScratch) spectra(m int) (fa, fb []complex128) {
	if cap(s.fa) < m {
		s.fa = make([]complex128, m)
	}
	if cap(s.fb) < m {
		s.fb = make([]complex128, m)
	}
	return s.fa[:m], s.fb[:m]
}

// realBuf returns the real inverse-transform output buffer at size m.
func (s *FFTScratch) realBuf(m int) []float64 {
	if cap(s.rt) < m {
		s.rt = make([]float64, m)
	}
	return s.rt[:m]
}

// realSpectra is the pad+transform prologue shared by CrossCorrelateInto
// and ConvolveInto: both operands' full spectra at padded size m.
func realSpectra(a, b []float64, m int, s *FFTScratch) (fa, fb []complex128) {
	fa, fb = s.spectra(m)
	RealFFT(fa, a, m)
	RealFFT(fb, b, m)
	return fa, fb
}

// CrossCorrelate computes the full linear cross-correlation of two
// equal-length real series via FFT. The result r has length 2n-1 where
// n = len(a) == len(b); entry r[k] corresponds to shift s = k-(n-1) and
// holds
//
//	r[k] = sum_t a[t] * b[t-s]
//
// i.e. positive shifts slide b to the right relative to a. This is the
// quantity CC_w used by the k-Shape shape-based distance. CrossCorrelate
// panics if the lengths differ or are zero.
func CrossCorrelate(a, b []float64) []float64 {
	checkCorrLengths(a, b)
	var s FFTScratch
	return CrossCorrelateInto(make([]float64, 2*len(a)-1), a, b, &s)
}

// CrossCorrelateInto is CrossCorrelate writing into dst (capacity >=
// 2n-1) with caller-owned scratch, so steady-state correlation allocates
// nothing. It returns dst[:2n-1].
func CrossCorrelateInto(dst []float64, a, b []float64, s *FFTScratch) []float64 {
	checkCorrLengths(a, b)
	n := len(a)
	m := NextPow2(2*n - 1)
	fa, fb := realSpectra(a, b, m, s)
	for i := range fa {
		// Correlation uses the conjugate of the second operand's spectrum.
		fa[i] *= complex(real(fb[i]), -imag(fb[i]))
	}
	// The product spectrum is conjugate-symmetric (both inputs are real),
	// so the real inverse transform applies.
	inv := s.realBuf(m)
	RealIFFT(inv, fa)

	// The circular correlation wraps negative shifts to the tail of the
	// buffer; unwrap into [-(n-1), n-1] order.
	dst = dst[:2*n-1]
	for sh := -(n - 1); sh <= n-1; sh++ {
		idx := sh
		if idx < 0 {
			idx += m
		}
		dst[sh+n-1] = inv[idx]
	}
	return dst
}

func checkCorrLengths(a, b []float64) {
	if len(a) == 0 || len(a) != len(b) {
		panic(fmt.Sprintf("mathx: CrossCorrelate needs equal non-empty lengths, got %d and %d", len(a), len(b)))
	}
}

// Convolve computes the full linear convolution of two real series via FFT.
// The result has length len(a)+len(b)-1.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	var s FFTScratch
	return ConvolveInto(make([]float64, len(a)+len(b)-1), a, b, &s)
}

// ConvolveInto is Convolve writing into dst (capacity >= len(a)+len(b)-1)
// with caller-owned scratch. It returns dst[:len(a)+len(b)-1], or nil
// when either input is empty.
func ConvolveInto(dst []float64, a, b []float64, s *FFTScratch) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	m := NextPow2(outLen)
	fa, fb := realSpectra(a, b, m, s)
	for i := range fa {
		fa[i] *= fb[i]
	}
	inv := s.realBuf(m)
	RealIFFT(inv, fa)
	dst = dst[:outLen]
	copy(dst, inv[:outLen])
	return dst
}
