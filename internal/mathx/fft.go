package mathx

import (
	"fmt"
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two that is >= n. It returns 1 for
// n <= 1. The result is used to pad series before FFT-based correlation.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the forward discrete Fourier transform of x in place and
// returns x. The length of x must be a power of two; FFT panics otherwise
// (callers pad with NextPow2 first). The transform is unnormalized:
// X[k] = sum_j x[j] * exp(-2*pi*i*j*k/n).
func FFT(x []complex128) []complex128 {
	return fft(x, false)
}

// IFFT computes the inverse discrete Fourier transform of x in place and
// returns x, normalizing by 1/n so that IFFT(FFT(x)) == x up to rounding.
// The length of x must be a power of two.
func IFFT(x []complex128) []complex128 {
	fft(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return x
}

// fft is an iterative radix-2 Cooley-Tukey transform. inverse selects the
// conjugate twiddle factors (without the 1/n normalization).
func fft(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("mathx: FFT length %d is not a power of two", n))
	}
	if n == 1 {
		return x
	}

	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}

	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		// Twiddle factor advanced multiplicatively per butterfly column.
		wStep := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return x
}

// CrossCorrelate computes the full linear cross-correlation of two
// equal-length real series via FFT. The result r has length 2n-1 where
// n = len(a) == len(b); entry r[k] corresponds to shift s = k-(n-1) and
// holds
//
//	r[k] = sum_t a[t] * b[t-s]
//
// i.e. positive shifts slide b to the right relative to a. This is the
// quantity CC_w used by the k-Shape shape-based distance. CrossCorrelate
// panics if the lengths differ or are zero.
func CrossCorrelate(a, b []float64) []float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		panic(fmt.Sprintf("mathx: CrossCorrelate needs equal non-empty lengths, got %d and %d", len(a), len(b)))
	}
	m := NextPow2(2*n - 1)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i := 0; i < n; i++ {
		fa[i] = complex(a[i], 0)
		fb[i] = complex(b[i], 0)
	}
	FFT(fa)
	FFT(fb)
	for i := range fa {
		// Correlation uses the conjugate of the second operand's spectrum.
		fa[i] *= complexConj(fb[i])
	}
	IFFT(fa)

	// The circular correlation wraps negative shifts to the tail of the
	// buffer; unwrap into [-(n-1), n-1] order.
	r := make([]float64, 2*n-1)
	for s := -(n - 1); s <= n-1; s++ {
		idx := s
		if idx < 0 {
			idx += m
		}
		r[s+n-1] = real(fa[idx])
	}
	return r
}

// Convolve computes the full linear convolution of two real series via FFT.
// The result has length len(a)+len(b)-1.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	m := NextPow2(outLen)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	FFT(fa)
	FFT(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

func complexConj(c complex128) complex128 {
	return complex(real(c), -imag(c))
}
