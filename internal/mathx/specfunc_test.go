package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegIncBetaIdentities(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.77, 0.99} {
		if got := RegIncBeta(1, 1, x); !almostEqual(got, x, 1e-12) {
			t.Errorf("I_%g(1,1) = %g, want %g", x, got, x)
		}
	}
	// I_0.5(a,a) = 0.5 by symmetry.
	for _, a := range []float64{0.5, 1, 2, 7.5, 30} {
		if got := RegIncBeta(a, a, 0.5); !almostEqual(got, 0.5, 1e-10) {
			t.Errorf("I_0.5(%g,%g) = %g, want 0.5", a, a, got)
		}
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// Reference values from scipy.special.betainc.
	tests := []struct {
		a, b, x, want float64
	}{
		{2, 3, 0.4, 0.5248},
		{2, 2, 0.25, 0.15625},
		{5, 5, 0.3, 0.09880866},
		{0.5, 0.5, 0.5, 0.5},
		// I_0.9(10,2) = 11*0.9^10*0.1 + 0.9^11 by the binomial identity.
		{10, 2, 0.9, 0.69735688},
	}
	for _, tt := range tests {
		if got := RegIncBeta(tt.a, tt.b, tt.x); !almostEqual(got, tt.want, 1e-6) {
			t.Errorf("I_%g(%g,%g) = %.8f, want %.8f", tt.x, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %g, want 0", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %g, want 1", got)
	}
	if got := RegIncBeta(-1, 3, 0.5); !math.IsNaN(got) {
		t.Errorf("invalid a: got %g, want NaN", got)
	}
	if got := RegIncBeta(1, 3, math.NaN()); !math.IsNaN(got) {
		t.Errorf("NaN x: got %g, want NaN", got)
	}
}

func TestRegIncBetaSymmetryProperty(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.5 + rng.Float64()*20
		b := 0.5 + rng.Float64()*20
		x := rng.Float64()
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegIncBetaMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.5 + rng.Float64()*10
		b := 0.5 + rng.Float64()*10
		x1 := rng.Float64()
		x2 := rng.Float64()
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return RegIncBeta(a, b, x1) <= RegIncBeta(a, b, x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegLowerIncGammaExponentialIdentity(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.01, 0.5, 1, 2, 5, 20} {
		want := 1 - math.Exp(-x)
		if got := RegLowerIncGamma(1, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
}

func TestRegLowerIncGammaKnownValues(t *testing.T) {
	// Reference values from scipy.special.gammainc.
	tests := []struct {
		a, x, want float64
	}{
		{0.5, 0.5, 0.68268949},
		{2, 2, 0.59399415},
		{5, 5, 0.55950671},
		{10, 3, 0.0011025},
	}
	for _, tt := range tests {
		if got := RegLowerIncGamma(tt.a, tt.x); !almostEqual(got, tt.want, 1e-6) {
			t.Errorf("P(%g,%g) = %.8f, want %.8f", tt.a, tt.x, got, tt.want)
		}
	}
}

func TestRegLowerIncGammaBounds(t *testing.T) {
	if got := RegLowerIncGamma(2, 0); got != 0 {
		t.Errorf("P(2,0) = %g, want 0", got)
	}
	if got := RegLowerIncGamma(0, 1); !math.IsNaN(got) {
		t.Errorf("P(0,1) = %g, want NaN", got)
	}
	if got := RegLowerIncGamma(2, -1); !math.IsNaN(got) {
		t.Errorf("P(2,-1) = %g, want NaN", got)
	}
	// Large x saturates to 1.
	if got := RegLowerIncGamma(3, 1000); !almostEqual(got, 1, 1e-12) {
		t.Errorf("P(3,1000) = %g, want 1", got)
	}
}
