// Package metrics provides the metric registry that simulated components
// export their telemetry through, and the Telegraf-like collector that
// scrapes registries into the tsdb store. Together they form the
// monitoring plane whose overhead Sieve reduces (Table 3): the collector
// can scrape either the full metric population or a reduced allowlist.
package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// Kind distinguishes metric semantics.
type Kind int

// Metric kinds. Counters accumulate monotonically (the paper's canonical
// non-stationary series); gauges hold instantaneous values.
const (
	// KindGauge is an instantaneous value.
	KindGauge Kind = iota + 1
	// KindCounter is a monotonically accumulating value.
	KindCounter
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindCounter:
		return "counter"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Gauge is a settable instantaneous metric. The zero value is unusable;
// obtain gauges from a Registry.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores the current value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add increments the current value (may be negative).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Counter is a monotonically increasing metric.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds a non-negative delta; negative deltas are ignored to preserve
// monotonicity.
func (c *Counter) Inc(delta float64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the accumulated value.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

type entry struct {
	kind    Kind
	gauge   *Gauge
	counter *Counter
}

// Registry holds the metrics of one component.
type Registry struct {
	component string

	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry creates an empty registry for the named component.
func NewRegistry(component string) *Registry {
	return &Registry{component: component, entries: map[string]*entry{}}
}

// Component returns the owning component's name.
func (r *Registry) Component() string { return r.component }

// Gauge returns the gauge with the given name, creating it on first use.
// It panics if the name is already registered as a counter (a programming
// error).
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		e = &entry{kind: KindGauge, gauge: &Gauge{}}
		r.entries[name] = e
	}
	if e.kind != KindGauge {
		panic(fmt.Sprintf("metrics: %s/%s registered as %v, requested as gauge", r.component, name, e.kind))
	}
	return e.gauge
}

// Counter returns the counter with the given name, creating it on first
// use. It panics if the name is already registered as a gauge.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		e = &entry{kind: KindCounter, counter: &Counter{}}
		r.entries[name] = e
	}
	if e.kind != KindCounter {
		panic(fmt.Sprintf("metrics: %s/%s registered as %v, requested as counter", r.component, name, e.kind))
	}
	return e.counter
}

// Names returns the registered metric names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Read returns a metric's current value and kind without creating it;
// ok is false when the name is unregistered.
func (r *Registry) Read(name string) (value float64, kind Kind, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, found := r.entries[name]
	if !found {
		return 0, 0, false
	}
	switch e.kind {
	case KindGauge:
		return e.gauge.Value(), KindGauge, true
	case KindCounter:
		return e.counter.Value(), KindCounter, true
	default:
		return 0, 0, false
	}
}

// Reading is one scraped metric value.
type Reading struct {
	// Component and Metric identify the series.
	Component, Metric string
	// Kind is the metric's semantics.
	Kind Kind
	// Value is the value at scrape time.
	Value float64
}

// Snapshot reads every metric, sorted by name.
func (r *Registry) Snapshot() []Reading {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Reading, 0, len(r.entries))
	for name, e := range r.entries {
		v := 0.0
		switch e.kind {
		case KindGauge:
			v = e.gauge.Value()
		case KindCounter:
			v = e.counter.Value()
		}
		out = append(out, Reading{Component: r.component, Metric: name, Kind: e.kind, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Metric < out[j].Metric })
	return out
}
