package metrics

import (
	"strings"
	"sync"
	"testing"

	"github.com/sieve-microservices/sieve/internal/tsdb"
)

func TestGaugeAndCounter(t *testing.T) {
	r := NewRegistry("web")
	g := r.Gauge("cpu_usage")
	g.Set(0.5)
	g.Add(0.25)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %g, want 0.75", got)
	}

	c := r.Counter("requests_total")
	c.Inc(3)
	c.Inc(2)
	c.Inc(-5) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %g, want 5", got)
	}
}

func TestRegistryIdentityAndNames(t *testing.T) {
	r := NewRegistry("web")
	if r.Component() != "web" {
		t.Errorf("component = %q", r.Component())
	}
	g1 := r.Gauge("m")
	g2 := r.Gauge("m")
	if g1 != g2 {
		t.Error("same name must return the same gauge")
	}
	r.Counter("z_total")
	r.Gauge("a_first")
	names := r.Names()
	if len(names) != 3 || names[0] != "a_first" || names[2] != "z_total" {
		t.Errorf("names = %v", names)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry("web")
	r.Gauge("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when re-registering gauge as counter")
		}
	}()
	r.Counter("m")
}

func TestSnapshotSortedAndTyped(t *testing.T) {
	r := NewRegistry("db")
	r.Gauge("b_gauge").Set(2)
	r.Counter("a_counter").Inc(1)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d readings", len(snap))
	}
	if snap[0].Metric != "a_counter" || snap[0].Kind != KindCounter || snap[0].Value != 1 {
		t.Errorf("first reading = %+v", snap[0])
	}
	if snap[1].Metric != "b_gauge" || snap[1].Kind != KindGauge || snap[1].Value != 2 {
		t.Errorf("second reading = %+v", snap[1])
	}
	if snap[0].Component != "db" {
		t.Errorf("component = %q", snap[0].Component)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry("web")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits_total").Inc(1)
				r.Gauge("load").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != 8000 {
		t.Errorf("concurrent counter = %g, want 8000", got)
	}
}

func TestCollectorScrapesIntoDB(t *testing.T) {
	db := tsdb.New()
	web := NewRegistry("web")
	redis := NewRegistry("redis")
	web.Gauge("cpu").Set(0.5)
	web.Counter("reqs_total").Inc(10)
	redis.Gauge("mem").Set(100)

	c, err := NewCollector(db, web, redis)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.ScrapeOnce(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("shipped %d samples, want 3", n)
	}
	pts, err := db.Query("web", "cpu", 0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].V != 0.5 || pts[0].T != 1000 {
		t.Errorf("stored point = %+v", pts)
	}

	st := c.Stats()
	if st.Scrapes != 1 || st.BytesSent == 0 || st.EncodeCPU <= 0 {
		t.Errorf("collector stats = %+v", st)
	}
	if db.Stats().NetworkInBytes != st.BytesSent {
		t.Error("db net-in must equal collector bytes sent")
	}
}

func TestCollectorAllowlistReducesTraffic(t *testing.T) {
	mkTargets := func() []*Registry {
		web := NewRegistry("web")
		for _, m := range []string{"cpu", "mem", "net", "disk", "extra1", "extra2"} {
			web.Gauge(m).Set(1)
		}
		return []*Registry{web}
	}

	full := tsdb.New()
	cFull, err := NewCollector(full, mkTargets()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cFull.ScrapeOnce(0); err != nil {
		t.Fatal(err)
	}

	reduced := tsdb.New()
	cRed, err := NewCollector(reduced, mkTargets()...)
	if err != nil {
		t.Fatal(err)
	}
	cRed.SetAllowlist([]string{"web/cpu"})
	n, err := cRed.ScrapeOnce(0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reduced scrape shipped %d samples, want 1", n)
	}
	if cRed.Stats().BytesSent >= cFull.Stats().BytesSent {
		t.Errorf("allowlist did not reduce traffic: %d vs %d", cRed.Stats().BytesSent, cFull.Stats().BytesSent)
	}

	// Clearing the filter restores full shipping.
	cRed.SetAllowlist(nil)
	n, err = cRed.ScrapeOnce(1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("after clearing allowlist shipped %d, want 6", n)
	}
}

func TestNewCollectorNilDB(t *testing.T) {
	if _, err := NewCollector(nil); err == nil {
		t.Fatal("expected error for nil db")
	}
}

func TestKindString(t *testing.T) {
	if KindGauge.String() != "gauge" || KindCounter.String() != "counter" {
		t.Error("kind names wrong")
	}
	if !strings.HasPrefix(Kind(9).String(), "Kind(") {
		t.Error("unknown kind formatting")
	}
}

// TestScrapeOnceEmptyAllowlistSkipsWrite: an allowlist matching nothing
// must not ship an empty payload (remote writers reject empty bodies).
func TestScrapeOnceEmptyAllowlistSkipsWrite(t *testing.T) {
	db := tsdb.New()
	web := NewRegistry("web")
	web.Gauge("cpu").Set(0.5)
	c, err := NewCollector(db, web)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAllowlist([]string{"nothing/matches"})
	n, err := c.ScrapeOnce(500)
	if err != nil || n != 0 {
		t.Fatalf("ScrapeOnce = %d, %v; want 0, nil", n, err)
	}
	if got := c.Stats().Scrapes; got != 1 {
		t.Fatalf("scrapes = %d, want 1", got)
	}
	if got := db.Stats().NetworkInBytes; got != 0 {
		t.Fatalf("empty scrape shipped %d wire bytes", got)
	}
}
