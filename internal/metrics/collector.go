package metrics

import (
	"errors"
	"time"

	"github.com/sieve-microservices/sieve/internal/tsdb"
)

// Collector scrapes a set of registries and ships the readings to a tsdb
// writer over the line-protocol wire format, mirroring the paper's
// Telegraf -> InfluxDB pipeline. The writer can be an in-process store
// (tsdb.DB, tsdb.Sharded) or the sieved HTTP client, so the same
// collector drives both the offline pipeline and a remote server. An
// optional allowlist restricts which series are shipped; Sieve installs
// its representative-metric set here to realize the Table 3 overhead
// reduction.
type Collector struct {
	targets []*Registry
	db      tsdb.Writer
	// allow, when non-nil, keeps only listed "component/metric" keys.
	allow map[string]bool

	scrapeCPU time.Duration
	bytesOut  int
	scrapes   int
}

// NewCollector creates a collector shipping to db.
func NewCollector(db tsdb.Writer, targets ...*Registry) (*Collector, error) {
	if db == nil {
		return nil, errors.New("metrics: nil db")
	}
	return &Collector{targets: targets, db: db}, nil
}

// SetAllowlist restricts future scrapes to the given component/metric
// keys (formatted "component/metric"). Passing nil removes the filter.
func (c *Collector) SetAllowlist(keys []string) {
	if keys == nil {
		c.allow = nil
		return
	}
	c.allow = make(map[string]bool, len(keys))
	for _, k := range keys {
		c.allow[k] = true
	}
}

// ScrapeOnce reads every target registry at the given (simulated)
// timestamp, encodes the readings, and writes them to the store. It
// returns the number of samples shipped. Encode time is attributed to the
// collector, parse/store time to the DB.
func (c *Collector) ScrapeOnce(nowMS int64) (int, error) {
	start := time.Now()
	var samples []tsdb.Sample
	for _, r := range c.targets {
		for _, reading := range r.Snapshot() {
			s := tsdb.Sample{
				Component: reading.Component,
				Metric:    reading.Metric,
				T:         nowMS,
				V:         reading.Value,
			}
			if c.allow != nil && !c.allow[s.Key()] {
				continue
			}
			samples = append(samples, s)
		}
	}
	payload := tsdb.EncodeLineProtocol(samples)
	c.scrapeCPU += time.Since(start)
	c.bytesOut += len(payload)
	c.scrapes++

	// A scrape can legitimately yield nothing (an allowlist matching no
	// current series); skip the wire round-trip rather than ship an
	// empty payload remote writers reject.
	if len(samples) == 0 {
		return 0, nil
	}
	n, err := c.db.Write(payload)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// CollectorStats summarizes the collector side of the pipeline.
type CollectorStats struct {
	// Scrapes is the number of completed scrape rounds.
	Scrapes int
	// BytesSent counts line-protocol bytes shipped to the store.
	BytesSent int
	// EncodeCPU is the cumulative wall time spent snapshotting and
	// encoding.
	EncodeCPU time.Duration
}

// Stats returns a snapshot of the collector counters.
func (c *Collector) Stats() CollectorStats {
	return CollectorStats{Scrapes: c.scrapes, BytesSent: c.bytesOut, EncodeCPU: c.scrapeCPU}
}
