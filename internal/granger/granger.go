package granger

import (
	"errors"
	"fmt"
	"math"

	"github.com/sieve-microservices/sieve/internal/mathx"
	"github.com/sieve-microservices/sieve/internal/stats"
	"github.com/sieve-microservices/sieve/internal/timeseries"
)

// Scratch pools one worker's Granger buffers: the two reusable flat lag
// designs plus the shared regression workspace (QR factorizations,
// normal-equation solves, ADF design) that every fit in a Test run
// cycles through. The zero value is ready to use. A Scratch must not be
// shared between concurrent goroutines — the dependency-extraction
// fan-out keeps one per worker, indexed by the pool's worker id. Returned
// TestResults never alias the scratch (they are scalar-only), so cached
// results stay valid however the scratch is reused afterwards.
type Scratch struct {
	stats      stats.Scratch
	restricted mathx.Matrix
	unrestrict mathx.Matrix
}

// DefaultAlpha is the significance level for rejecting the null
// hypothesis "X does not Granger-cause Y".
const DefaultAlpha = 0.05

// ErrSeriesTooShort is returned when the series cannot support the
// requested lag order.
var ErrSeriesTooShort = errors.New("granger: series too short for requested lag")

// DefaultOwnLags is the default autoregressive order of the restricted
// model. Using more own-history lags than cross lags hardens the test
// against false reverse causality: when the underlying load has
// second-order dynamics (ramps), a single own lag cannot capture them and
// the reverse direction spuriously "helps" by echoing the driver's past.
const DefaultOwnLags = 3

// Options configures a causality test.
type Options struct {
	// MaxLag is the largest cross lag order (in samples) to test; each
	// lag in 1..MaxLag is tried and the most predictive one is kept. With
	// the paper's 500 ms grid and its conservative 500 ms delay bound
	// this is 1, the default when 0.
	MaxLag int
	// OwnLags is the autoregressive order of y's own history in both
	// models; 0 means DefaultOwnLags (the effective order is at least the
	// cross lag under test).
	OwnLags int
	// Alpha is the significance level; 0 means DefaultAlpha.
	Alpha float64
	// ADFLags sets the augmentation lags for the stationarity check; < 0
	// selects the Schwert default.
	ADFLags int
	// SkipStationarity disables the ADF pre-check (used by tests and when
	// the caller has already differenced).
	SkipStationarity bool
}

func (o Options) withDefaults() Options {
	if o.MaxLag <= 0 {
		o.MaxLag = 1
	}
	if o.OwnLags <= 0 {
		o.OwnLags = DefaultOwnLags
	}
	if o.Alpha <= 0 {
		o.Alpha = DefaultAlpha
	}
	return o
}

// TestResult reports one directed Granger test X -> Y.
type TestResult struct {
	// F and PValue come from the nested-model F-test at the chosen lag.
	F, PValue float64
	// Lag is the lag order (samples) that maximized significance.
	Lag int
	// Significant reports PValue < alpha.
	Significant bool
	// DifferencedX and DifferencedY report whether the stationarity
	// pre-check first-differenced an input.
	DifferencedX, DifferencedY bool
}

// Test reports whether x Granger-causes y. Both series must have equal
// length; constants and too-short series yield a non-significant result
// rather than an error when they cannot carry causal signal.
func Test(x, y []float64, opts Options) (*TestResult, error) {
	var s Scratch
	return TestWith(x, y, opts, &s)
}

// TestWith is Test with caller-owned scratch: lag designs and regression
// workspace come from s, so a steady-state test performs O(1) small
// allocations per pair instead of O(lags·rows). Results are bit-identical
// to Test.
func TestWith(x, y []float64, opts Options, s *Scratch) (*TestResult, error) {
	opts = opts.withDefaults()
	if len(x) != len(y) {
		return nil, fmt.Errorf("granger: length mismatch %d vs %d", len(x), len(y))
	}

	res := &TestResult{PValue: 1, Lag: opts.MaxLag}

	// A constant series can neither cause nor be caused on this sample.
	if timeseries.IsConstant(x) || timeseries.IsConstant(y) {
		return res, nil
	}

	if !opts.SkipStationarity {
		x, y, res.DifferencedX, res.DifferencedY = makeStationaryPair(x, y, opts.ADFLags, s)
		if timeseries.IsConstant(x) || timeseries.IsConstant(y) {
			return res, nil
		}
	}

	// Need n - maxL observations and 1+ownLags+crossLag unrestricted
	// parameters with residual degrees of freedom to spare.
	maxOwn := opts.OwnLags
	if opts.MaxLag > maxOwn {
		maxOwn = opts.MaxLag
	}
	minLen := 2*maxOwn + opts.MaxLag + 8
	if len(y) < minLen {
		return nil, fmt.Errorf("%w: have %d samples, need >= %d", ErrSeriesTooShort, len(y), minLen)
	}

	best := res
	for lag := 1; lag <= opts.MaxLag; lag++ {
		ownLags := opts.OwnLags
		if lag > ownLags {
			ownLags = lag
		}
		f, p, err := testAtLag(x, y, lag, ownLags, s)
		if err != nil {
			// Degenerate designs at this lag (e.g. near-collinear
			// histories) are skipped, not fatal: other lags may work.
			continue
		}
		if best.PValue == 1 && best.F == 0 || p < best.PValue {
			best = &TestResult{
				F:            f,
				PValue:       p,
				Lag:          lag,
				DifferencedX: res.DifferencedX,
				DifferencedY: res.DifferencedY,
			}
		}
	}
	best.Significant = best.PValue < opts.Alpha
	return best, nil
}

// lagDesign writes the intercept-plus-lags design directly into the flat
// reusable matrix dst: column 0 is the constant 1, columns 1..ownLags are
// y shifted by 1..ownLags samples, and columns ownLags+1..ownLags+crossLag
// are x shifted by 1..crossLag (crossLag 0 gives the restricted model).
// Cell values match what DesignWithIntercept built from intermediate
// [][]float64 lag columns, without materializing them.
func lagDesign(dst *mathx.Matrix, x, y []float64, crossLag, ownLags int) *mathx.Matrix {
	rows := len(y) - ownLags
	dst.Resize(rows, 1+ownLags+crossLag)
	for r := 0; r < rows; r++ {
		dst.Set(r, 0, 1)
		for i := 1; i <= ownLags; i++ {
			dst.Set(r, i, y[ownLags-i+r])
		}
		for i := 1; i <= crossLag; i++ {
			dst.Set(r, ownLags+i, x[ownLags-i+r])
		}
	}
	return dst
}

// testAtLag runs the nested F-test with crossLag lags of x added to
// ownLags autoregressive lags of y (ownLags >= crossLag). The F-test
// consumes only the fits' RSS/P/N scalars, so both regressions can share
// the scratch sequentially.
func testAtLag(x, y []float64, crossLag, ownLags int, s *Scratch) (f, p float64, err error) {
	resp := y[ownLags:]

	restricted, err := stats.FitOLSWith(resp, lagDesign(&s.restricted, x, y, 0, ownLags), &s.stats)
	if err != nil {
		return 0, 0, err
	}
	unrestricted, err := stats.FitOLSWith(resp, lagDesign(&s.unrestrict, x, y, crossLag, ownLags), &s.stats)
	if err != nil {
		return 0, 0, err
	}

	ft, err := stats.CompareOLS(restricted, unrestricted)
	if err != nil {
		return 0, 0, err
	}
	return ft.F, ft.PValue, nil
}

// makeStationaryPair differences whichever series fails the ADF test and
// trims the other so both stay aligned on the same time base (differencing
// drops the first sample).
func makeStationaryPair(x, y []float64, adfLags int, s *Scratch) (outX, outY []float64, dx, dy bool) {
	outX, dx = stats.EnsureStationaryWith(x, adfLags, &s.stats)
	outY, dy = stats.EnsureStationaryWith(y, adfLags, &s.stats)
	switch {
	case dx && !dy:
		outY = y[1:]
	case dy && !dx:
		outX = x[1:]
	}
	return outX, outY, dx, dy
}

// Causality classifies the relationship between two metrics.
type Causality int

// Causality values. Bidirectional relationships indicate a hidden common
// driver (§3.3) and are filtered out of the dependency graph.
const (
	// None: neither direction is significant.
	None Causality = iota + 1
	// XCausesY: only X -> Y is significant.
	XCausesY
	// YCausesX: only Y -> X is significant.
	YCausesX
	// Bidirectional: both directions are significant (spurious).
	Bidirectional
)

// String returns a human-readable name.
func (c Causality) String() string {
	switch c {
	case None:
		return "none"
	case XCausesY:
		return "x->y"
	case YCausesX:
		return "y->x"
	case Bidirectional:
		return "bidirectional"
	default:
		return fmt.Sprintf("Causality(%d)", int(c))
	}
}

// Direction runs the test in both directions and classifies the result.
// It returns the per-direction test results alongside the classification.
func Direction(x, y []float64, opts Options) (Causality, *TestResult, *TestResult, error) {
	var s Scratch
	return DirectionWith(x, y, opts, &s)
}

// DirectionWith is Direction with caller-owned scratch shared by both
// directed tests.
func DirectionWith(x, y []float64, opts Options, s *Scratch) (Causality, *TestResult, *TestResult, error) {
	xy, err := TestWith(x, y, opts, s)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("granger: x->y: %w", err)
	}
	yx, err := TestWith(y, x, opts, s)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("granger: y->x: %w", err)
	}
	switch {
	case xy.Significant && yx.Significant:
		return Bidirectional, xy, yx, nil
	case xy.Significant:
		return XCausesY, xy, yx, nil
	case yx.Significant:
		return YCausesX, xy, yx, nil
	default:
		return None, xy, yx, nil
	}
}

// LagSamples converts a wall-clock delay bound into a lag order on a
// sampling grid, rounding up and enforcing a minimum of one sample. Sieve
// uses a conservative 500 ms delay with a 500 ms grid, i.e. lag 1.
func LagSamples(delayMS, stepMS int64) int {
	if stepMS <= 0 || delayMS <= 0 {
		return 1
	}
	l := int(math.Ceil(float64(delayMS) / float64(stepMS)))
	if l < 1 {
		l = 1
	}
	return l
}
