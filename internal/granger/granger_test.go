package granger

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// causalPair builds y driven by lagged x: y_t = beta*x_{t-lag} + noise.
func causalPair(rng *rand.Rand, n, lag int, beta, noise float64) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for t := 0; t < n; t++ {
		x[t] = rng.NormFloat64()
	}
	for t := lag; t < n; t++ {
		y[t] = beta*x[t-lag] + rng.NormFloat64()*noise
	}
	return x, y
}

func TestDetectsPlantedCausality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := causalPair(rng, 400, 1, 0.9, 0.3)
	res, err := Test(x, y, Options{MaxLag: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Fatalf("planted X->Y not detected: p=%g", res.PValue)
	}
	if res.PValue > 1e-6 {
		t.Errorf("p = %g, want tiny for strong signal", res.PValue)
	}
	if res.Lag != 1 {
		t.Errorf("lag = %d, want 1", res.Lag)
	}
}

func TestDirectionOfPlantedChain(t *testing.T) {
	// A single draw can produce a borderline reverse p-value (that is
	// what alpha=0.05 means), so demand a majority across seeds.
	correct := 0
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		x, y := causalPair(rng, 500, 1, 0.9, 0.3)
		dir, _, _, err := Direction(x, y, Options{MaxLag: 1})
		if err != nil {
			t.Fatal(err)
		}
		if dir == XCausesY {
			correct++
		}
	}
	if correct < 8 {
		t.Fatalf("planted chain direction recovered in %d/%d trials, want >= 8", correct, trials)
	}
}

func TestIndependentSeriesNotSignificant(t *testing.T) {
	// Across seeds, independent noise should rarely appear causal.
	falsePositives := 0
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 300)
		y := make([]float64, 300)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		res, err := Test(x, y, Options{MaxLag: 1, SkipStationarity: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant {
			falsePositives++
		}
	}
	// Expected ~5% at alpha=0.05; allow generous slack.
	if falsePositives > 7 {
		t.Errorf("%d/%d false positives, want about 2", falsePositives, trials)
	}
}

func TestHigherLagDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := causalPair(rng, 600, 3, 0.9, 0.3)
	res, err := Test(x, y, Options{MaxLag: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Fatalf("lag-3 causality missed: p=%g", res.PValue)
	}
	if res.Lag < 3 {
		t.Errorf("best lag = %d, want >= 3 (the true lag)", res.Lag)
	}
}

func TestNonStationaryInputsAreDifferenced(t *testing.T) {
	// Random-walk driver with y responding to x's increments. Without
	// differencing this setup is the classic spurious-regression trap.
	rng := rand.New(rand.NewSource(6))
	n := 500
	x := make([]float64, n)
	for t := 1; t < n; t++ {
		x[t] = x[t-1] + rng.NormFloat64()
	}
	y := make([]float64, n)
	for t := 2; t < n; t++ {
		y[t] = y[t-1] + 0.9*(x[t-1]-x[t-2]) + rng.NormFloat64()*0.3
	}
	res, err := Test(x, y, Options{MaxLag: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DifferencedX || !res.DifferencedY {
		t.Errorf("expected both series differenced, got x=%v y=%v", res.DifferencedX, res.DifferencedY)
	}
	if !res.Significant {
		t.Errorf("causality on differenced series missed: p=%g", res.PValue)
	}
}

func TestSpuriousRegressionFiltered(t *testing.T) {
	// Two independent random walks: with the ADF pre-check the test
	// differences both and should mostly stay quiet.
	falsePositives := 0
	const trials = 30
	for seed := int64(50); seed < 50+trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 400
		x := make([]float64, n)
		y := make([]float64, n)
		for t := 1; t < n; t++ {
			x[t] = x[t-1] + rng.NormFloat64()
			y[t] = y[t-1] + rng.NormFloat64()
		}
		res, err := Test(x, y, Options{MaxLag: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Significant {
			falsePositives++
		}
	}
	if falsePositives > 5 {
		t.Errorf("%d/%d spurious causal findings on independent walks", falsePositives, trials)
	}
}

func TestConstantSeriesIsNeverCausal(t *testing.T) {
	x := make([]float64, 100)
	rng := rand.New(rand.NewSource(7))
	y := make([]float64, 100)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	res, err := Test(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Error("constant X flagged as causal")
	}
	res, err = Test(y, x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Error("constant Y flagged as caused")
	}
}

func TestBidirectionalCommonDriver(t *testing.T) {
	// Both x and y driven by a shared hidden z with weight on the older
	// lag (non-invertible moving averages): neither side's own history
	// recovers z, so each side's history genuinely helps predict the
	// other — the bidirectional signature of a confounder that Sieve
	// filters (§3.3).
	rng := rand.New(rand.NewSource(8))
	n := 2000
	z := make([]float64, n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for t := 2; t < n; t++ {
		x[t] = 0.3*z[t-1] + 0.9*z[t-2] + rng.NormFloat64()*0.1
		y[t] = 0.4*z[t-1] + 0.85*z[t-2] + rng.NormFloat64()*0.1
	}
	dir, _, _, err := Direction(x, y, Options{MaxLag: 2, SkipStationarity: true})
	if err != nil {
		t.Fatal(err)
	}
	if dir != Bidirectional {
		t.Errorf("direction = %v, want bidirectional for common driver", dir)
	}
}

func TestErrorsAndEdgeCases(t *testing.T) {
	if _, err := Test([]float64{1, 2}, []float64{1}, Options{}); err == nil {
		t.Error("expected length-mismatch error")
	}
	short := []float64{1, 2, 3, 1, 2, 3}
	if _, err := Test(short, short, Options{MaxLag: 2, SkipStationarity: true}); !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("short series: err = %v, want ErrSeriesTooShort", err)
	}
}

func TestPValueBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(200)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		res, err := Test(x, y, Options{MaxLag: 1 + rng.Intn(3), SkipStationarity: true})
		if err != nil {
			return false
		}
		return res.PValue >= 0 && res.PValue <= 1 && res.F >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCausalityString(t *testing.T) {
	tests := []struct {
		c    Causality
		want string
	}{
		{None, "none"},
		{XCausesY, "x->y"},
		{YCausesX, "y->x"},
		{Bidirectional, "bidirectional"},
		{Causality(99), "Causality(99)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}

func TestLagSamples(t *testing.T) {
	tests := []struct {
		delay, step int64
		want        int
	}{
		{500, 500, 1},
		{1000, 500, 2},
		{750, 500, 2},
		{0, 500, 1},
		{500, 0, 1},
		{100, 500, 1},
	}
	for _, tt := range tests {
		if got := LagSamples(tt.delay, tt.step); got != tt.want {
			t.Errorf("LagSamples(%d,%d) = %d, want %d", tt.delay, tt.step, got, tt.want)
		}
	}
}
