package granger

import (
	"math/rand"
	"testing"
)

// coupledPair synthesizes y driven by x's past, so the test exercises the
// full path: stationarity checks, both lag designs, both fits, F-test.
func coupledPair(rng *rand.Rand, n int) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for t := 1; t < n; t++ {
		x[t] = 0.5*x[t-1] + rng.NormFloat64()
		y[t] = 0.4*y[t-1] + 0.8*x[t-1] + 0.1*rng.NormFloat64()
	}
	return x, y
}

// TestScratchDirectionMatchesFresh pins the pooling invariant: a Scratch
// reused across many pairs (the dependency fan-out's per-worker pattern)
// produces bit-identical classifications and statistics to fresh-state
// calls.
func TestScratchDirectionMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	opts := Options{MaxLag: 2}
	var reused Scratch
	for pair := 0; pair < 5; pair++ {
		x, y := coupledPair(rng, 120)
		wantDir, wantXY, wantYX, wantErr := Direction(x, y, opts)
		gotDir, gotXY, gotYX, gotErr := DirectionWith(x, y, opts, &reused)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("pair %d: error mismatch: %v vs %v", pair, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if gotDir != wantDir {
			t.Fatalf("pair %d: direction %v, fresh %v", pair, gotDir, wantDir)
		}
		if *gotXY != *wantXY || *gotYX != *wantYX {
			t.Fatalf("pair %d: results %+v/%+v, fresh %+v/%+v", pair, gotXY, gotYX, wantXY, wantYX)
		}
	}
}

// TestScratchDirectionAllocs pins the steady-state allocation COUNT of a
// pooled Granger direction test as independent of series length: the lag
// designs and regression workspace come from the scratch, so longer
// windows grow bytes, not allocation counts.
func TestScratchDirectionAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	opts := Options{MaxLag: 1}
	measure := func(n int) float64 {
		x, y := coupledPair(rng, n)
		var s Scratch
		if _, _, _, err := DirectionWith(x, y, opts, &s); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if _, _, _, err := DirectionWith(x, y, opts, &s); err != nil {
				t.Fatal(err)
			}
		})
	}
	a1 := measure(128)
	a2 := measure(1024)
	// 8x the samples must not change the allocation count beyond noise:
	// every O(rows) buffer is pooled.
	if a2 > a1+8 {
		t.Fatalf("pooled Granger allocations grew with series length: %v -> %v allocs/op", a1, a2)
	}
}
