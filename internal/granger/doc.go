// Package granger implements the Granger-causality machinery Sieve
// uses to infer metric dependencies between communicating components
// (§3.3). A metric X "Granger-causes" Y when the history of X improves
// the prediction of Y beyond what Y's own history achieves; the
// comparison is a nested-model F-test between
//
//	restricted:    y_t = a0 + Σ_{i=1..L} a_i·y_{t-i}
//	unrestricted:  y_t = a0 + Σ_{i=1..L} a_i·y_{t-i} + Σ_{i=1..L} b_i·x_{t-i}
//
// over lags L up to the configured delay bound (the paper uses 500 ms
// of grid steps). Non-stationary inputs (detected with the Augmented
// Dickey-Fuller test) are first-differenced, since the F-test finds
// spurious regressions on unit-root series (Granger & Newbold 1974).
// Bidirectional results are treated as spurious — a hidden confounder
// driving both metrics — and filtered by the caller via Direction.
//
// Direction is the entry point the pipeline's step 3 calls once per
// (representative metric, representative metric) pair of communicating
// components: it runs Test both ways and returns the winning causality
// with the lag and F-test p-value that become a DependencyEdge in the
// artifact's graph.
package granger
