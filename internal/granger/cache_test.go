package granger

import (
	"math"
	"math/rand"
	"testing"
)

// causalPair returns an x that Granger-causes y (y echoes x's past).
func cachedCausalPair(n int, seed int64) (x, y []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)/7) + 0.1*rng.NormFloat64()
	}
	for i := 1; i < n; i++ {
		y[i] = 0.8*x[i-1] + 0.1*rng.NormFloat64()
	}
	return x, y
}

func TestFingerprintContentSensitivity(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("equal content must hash equal")
	}
	b[2] = math.Nextafter(3, 4)
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("a one-ULP change must change the fingerprint")
	}
	if Fingerprint([]float64{}) != Fingerprint(nil) {
		t.Fatal("empty and nil series are the same content")
	}
}

// TestCacheDirectionBitIdentical: a hit returns exactly what the
// uncached Direction computed, and the second identical call is a hit.
func TestCacheDirectionBitIdentical(t *testing.T) {
	x, y := cachedCausalPair(128, 3)
	opts := Options{MaxLag: 1}

	wantDir, wantXY, wantYX, wantErr := Direction(x, y, opts)
	if wantErr != nil {
		t.Fatal(wantErr)
	}

	c := NewCache()
	for call := 0; call < 2; call++ {
		dir, xy, yx, err := c.Direction(x, y, opts)
		if err != nil {
			t.Fatal(err)
		}
		if dir != wantDir || *xy != *wantXY || *yx != *wantYX {
			t.Fatalf("call %d: cached result diverged: dir=%v xy=%+v yx=%+v", call, dir, xy, yx)
		}
	}
	if hits, misses, entries := c.Stats(); hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("hits=%d misses=%d entries=%d, want 1/1/1", hits, misses, entries)
	}

	// Any content change is a miss (a dirty edge recomputes).
	y2 := append([]float64(nil), y...)
	y2[len(y2)-1] += 0.5
	if _, _, _, err := c.Direction(x, y2, opts); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("after content change: hits=%d misses=%d, want 1/2", hits, misses)
	}

	// Different options on identical content are a different key.
	if _, _, _, err := c.Direction(x, y, Options{MaxLag: 2}); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 3 {
		t.Fatalf("after options change: hits=%d misses=%d, want 1/3", hits, misses)
	}
}

// TestCacheCachesErrors: deterministic failures (series too short) are
// memoized too, so a dirty-edge scan does not re-derive them each cycle.
func TestCacheCachesErrors(t *testing.T) {
	short := []float64{1, 2, 1.5}
	c := NewCache()
	_, _, _, err1 := c.Direction(short, short, Options{})
	_, _, _, err2 := c.Direction(short, short, Options{})
	if err1 == nil || err2 == nil {
		t.Fatal("short series should error")
	}
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want the error memoized", hits, misses)
	}
}

// TestCacheGenerationEviction: entries untouched for two generations are
// dropped; touched ones survive.
func TestCacheGenerationEviction(t *testing.T) {
	x, y := cachedCausalPair(128, 5)
	a, b := cachedCausalPair(128, 9)
	c := NewCache()
	opts := Options{MaxLag: 1}

	if _, _, _, err := c.Direction(x, y, opts); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Direction(a, b, opts); err != nil {
		t.Fatal(err)
	}

	// Cycle 1 touches only (x, y); cycle 2 the same. After cycle 2's
	// sweep, (a, b) is two generations cold and gone.
	for i := 0; i < 2; i++ {
		c.NextGeneration()
		if _, _, _, err := c.Direction(x, y, opts); err != nil {
			t.Fatal(err)
		}
	}
	c.NextGeneration()
	if _, _, entries := c.Stats(); entries != 1 {
		t.Fatalf("entries=%d after eviction sweeps, want 1 (only the live pair)", entries)
	}

	// The evicted pair recomputes as a miss, bit-identical still.
	wantDir, _, _, _ := Direction(a, b, opts)
	dir, _, _, err := c.Direction(a, b, opts)
	if err != nil || dir != wantDir {
		t.Fatalf("recomputed evicted pair: dir=%v err=%v, want %v", dir, err, wantDir)
	}

	c.Flush()
	if hits, misses, entries := c.Stats(); hits != 0 || misses != 0 || entries != 0 {
		t.Fatalf("flush left hits=%d misses=%d entries=%d", hits, misses, entries)
	}
}
