package granger

import (
	"math"
	"sync"
)

// Fingerprint is a cheap content hash of a series: FNV-1a over the
// length followed by the raw float64 bits, so distinct-length series
// (including zero-extended prefixes) hash differently. Two series with
// equal fingerprints are treated as identical inputs by the Cache;
// since a Granger test depends on nothing but the two value slices,
// reusing a result on a fingerprint match is exact up to the ~2^-64
// collision probability of a 64-bit content hash.
func Fingerprint(v []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	mix := func(h, b uint64) uint64 {
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= prime64
		}
		return h
	}
	h := mix(offset64, uint64(len(v)))
	for _, x := range v {
		h = mix(h, math.Float64bits(x))
	}
	return h
}

// cacheKey identifies one Direction call: both inputs by content and the
// options that change the outcome.
type cacheKey struct {
	fx, fy   uint64
	lx, ly   int
	maxLag   int
	ownLags  int
	adfLags  int
	alpha    float64
	skipStat bool
}

// cacheEntry is one memoized Direction outcome. Entries are immutable
// after insertion: the TestResult pointers are shared with every cache
// hit, and callers only read them.
type cacheEntry struct {
	dir    Causality
	xy, yx *TestResult
	err    error
	gen    uint64
}

// Cache memoizes Direction calls by the content fingerprints of both
// series. The online pipeline re-tests every representative pair each
// cycle even though, between cycles without new data (or for series whose
// window did not change), the inputs are byte-identical; the cache turns
// those re-tests into map hits. An edge is recomputed exactly when one of
// its series' bytes changed — a rolled window tail, a representative that
// switched cluster, a differently-shaped reduction — so cached results
// are always bit-identical to a fresh computation and the cache stays
// safe even for runs that must match batch output exactly.
//
// Eviction is generational mark-and-sweep: the driver calls
// NextGeneration once per cycle, entries untouched for two consecutive
// generations are dropped (the window rolled past them).
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	gen     uint64
	hits    uint64
	misses  uint64
}

// NewCache creates an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[cacheKey]*cacheEntry{}}
}

// Direction is Cache-memoized granger.Direction: on a key hit the stored
// classification and test results are returned without touching the
// series again; on a miss the test runs and the outcome (errors included
// — they are deterministic in the inputs) is stored. Safe for concurrent
// use; two goroutines racing on the same missing key both compute the
// identical result and one insert wins.
func (c *Cache) Direction(x, y []float64, opts Options) (Causality, *TestResult, *TestResult, error) {
	var s Scratch
	return c.DirectionWith(x, y, opts, &s)
}

// DirectionWith is Direction with caller-owned scratch used on misses.
// Stored results are scalar-only TestResults that never alias the
// scratch, so a hit returned to one caller stays valid while another
// caller's scratch is reused.
func (c *Cache) DirectionWith(x, y []float64, opts Options, s *Scratch) (Causality, *TestResult, *TestResult, error) {
	eff := opts.withDefaults()
	key := cacheKey{
		fx: Fingerprint(x), fy: Fingerprint(y),
		lx: len(x), ly: len(y),
		maxLag: eff.MaxLag, ownLags: eff.OwnLags, adfLags: eff.ADFLags,
		alpha: eff.Alpha, skipStat: eff.SkipStationarity,
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		e.gen = c.gen
		c.hits++
		c.mu.Unlock()
		return e.dir, e.xy, e.yx, e.err
	}
	c.misses++
	gen := c.gen
	c.mu.Unlock()

	dir, xy, yx, err := DirectionWith(x, y, opts, s)
	c.mu.Lock()
	c.entries[key] = &cacheEntry{dir: dir, xy: xy, yx: yx, err: err, gen: gen}
	c.mu.Unlock()
	return dir, xy, yx, err
}

// NextGeneration starts a new cycle: entries not touched since the
// previous generation (their pair disappeared, or its content changed and
// the old key went cold) are evicted so a long-running driver's cache
// tracks the live edge set instead of growing without bound.
func (c *Cache) NextGeneration() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	for k, e := range c.entries {
		if c.gen-e.gen > 1 {
			delete(c.entries, k)
		}
	}
}

// Flush drops every entry and resets the hit/miss counters (the online
// driver's periodic full recompute).
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[cacheKey]*cacheEntry{}
	c.gen, c.hits, c.misses = 0, 0, 0
}

// Stats returns the cumulative hit/miss counters and the live entry
// count.
func (c *Cache) Stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
