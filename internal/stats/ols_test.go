package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sieve-microservices/sieve/internal/mathx"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestFitOLSKnownSmallExample(t *testing.T) {
	// y = 1 + 2x fitted through exact points.
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7}
	design, err := DesignWithIntercept(x)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitOLS(y, design)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Coef[0], 1, 1e-9) || !almostEqual(m.Coef[1], 2, 1e-9) {
		t.Fatalf("coef = %v, want [1 2]", m.Coef)
	}
	if !almostEqual(m.RSS, 0, 1e-18) {
		t.Errorf("RSS = %g, want 0", m.RSS)
	}
	if !almostEqual(m.R2(), 1, 1e-12) {
		t.Errorf("R2 = %g, want 1", m.R2())
	}
	if m.DegreesOfFreedom() != 2 {
		t.Errorf("df = %d, want 2", m.DegreesOfFreedom())
	}
}

func TestFitOLSRecoversPlantedWithNoise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 400
		b0, b1, b2 := rng.NormFloat64()*2, rng.NormFloat64()*2, rng.NormFloat64()*2
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x1[i] = rng.NormFloat64()
			x2[i] = rng.NormFloat64()
			y[i] = b0 + b1*x1[i] + b2*x2[i] + rng.NormFloat64()*0.1
		}
		design, err := DesignWithIntercept(x1, x2)
		if err != nil {
			return false
		}
		m, err := FitOLS(y, design)
		if err != nil {
			return false
		}
		return almostEqual(m.Coef[0], b0, 0.05) &&
			almostEqual(m.Coef[1], b1, 0.05) &&
			almostEqual(m.Coef[2], b2, 0.05)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFitOLSStdErrKnown(t *testing.T) {
	// For y ~ 1 with intercept only, StdErr(intercept) = s/sqrt(n) with
	// s^2 the sample variance (n-1 denominator).
	y := []float64{1, 2, 3, 4, 5, 6}
	m, err := FitOLS(y, InterceptOnly(len(y)))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Coef[0], 3.5, 1e-12) {
		t.Fatalf("intercept = %g, want 3.5", m.Coef[0])
	}
	s2 := m.RSS / float64(len(y)-1)
	want := math.Sqrt(s2 / float64(len(y)))
	if !almostEqual(m.StdErr[0], want, 1e-9) {
		t.Errorf("StdErr = %g, want %g", m.StdErr[0], want)
	}
}

func TestFitOLSErrors(t *testing.T) {
	if _, err := FitOLS([]float64{1, 2}, mathx.NewMatrix(3, 1)); err == nil {
		t.Error("expected row-count mismatch error")
	}
	if _, err := FitOLS([]float64{1, 2}, mathx.NewMatrix(2, 0)); err == nil {
		t.Error("expected empty-design error")
	}
	if _, err := FitOLS([]float64{1, 2}, mathx.NewMatrix(2, 2)); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("n<=p: err = %v, want ErrTooFewObservations", err)
	}
	// Collinear design must surface the singularity.
	design, _ := DesignWithIntercept([]float64{1, 1, 1, 1})
	if _, err := FitOLS([]float64{1, 2, 3, 4}, design); err == nil {
		t.Error("expected singularity error for collinear design")
	}
}

func TestOLSTStat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 5*x[i] + rng.NormFloat64()*0.5
	}
	design, _ := DesignWithIntercept(x)
	m, err := FitOLS(y, design)
	if err != nil {
		t.Fatal(err)
	}
	if ts := m.TStat(1); ts < 20 {
		t.Errorf("t-stat for strong predictor = %g, want large", ts)
	}
	if !math.IsNaN(m.TStat(5)) {
		t.Error("out-of-range TStat must be NaN")
	}
}

func TestDesignWithInterceptShape(t *testing.T) {
	d, err := DesignWithIntercept([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 2 || d.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", d.Rows(), d.Cols())
	}
	if d.At(0, 0) != 1 || d.At(1, 0) != 1 {
		t.Error("first column must be the intercept")
	}
	if d.At(1, 2) != 4 {
		t.Errorf("At(1,2) = %g, want 4", d.At(1, 2))
	}
	if _, err := DesignWithIntercept(); err == nil {
		t.Error("expected error with no columns")
	}
	if _, err := DesignWithIntercept([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged columns")
	}
}
