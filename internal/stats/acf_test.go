package stats

import (
	"math/rand"
	"testing"
)

func TestACFWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	y := make([]float64, 2000)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	acf, err := ACF(y, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 {
		t.Errorf("acf[0] = %g, want 1", acf[0])
	}
	for k := 1; k <= 5; k++ {
		if acf[k] > 0.08 || acf[k] < -0.08 {
			t.Errorf("white-noise acf[%d] = %g, want ~0", k, acf[k])
		}
	}
}

func TestACFAR1(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	phi := 0.7
	y := ar1(rng, 5000, phi)
	acf, err := ACF(y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(acf[1], phi, 0.05) {
		t.Errorf("AR(1) acf[1] = %g, want ~%g", acf[1], phi)
	}
	if !almostEqual(acf[2], phi*phi, 0.07) {
		t.Errorf("AR(1) acf[2] = %g, want ~%g", acf[2], phi*phi)
	}
}

func TestACFConstant(t *testing.T) {
	acf, err := ACF([]float64{2, 2, 2, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 || acf[1] != 0 || acf[2] != 0 {
		t.Errorf("constant acf = %v, want [1 0 0]", acf)
	}
}

func TestACFErrors(t *testing.T) {
	if _, err := ACF([]float64{1, 2}, -1); err == nil {
		t.Error("expected error for negative maxLag")
	}
	if _, err := ACF([]float64{1, 2}, 2); err == nil {
		t.Error("expected error for maxLag >= n")
	}
}

func TestLjungBox(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	noise := make([]float64, 1000)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	_, pNoise, err := LjungBox(noise, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pNoise < 0.01 {
		t.Errorf("white noise Ljung-Box p = %g, want comfortably above 0.01", pNoise)
	}

	series := ar1(rng, 1000, 0.6)
	_, pAR, err := LjungBox(series, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pAR > 1e-10 {
		t.Errorf("AR(1) Ljung-Box p = %g, want tiny", pAR)
	}
}
