package stats

import (
	"fmt"
	"math"

	"github.com/sieve-microservices/sieve/internal/mathx"
)

// FTestResult is the outcome of a nested-model F-test.
type FTestResult struct {
	// F is the test statistic.
	F float64
	// PValue is P(F_dist >= F) under the null that the restricted model
	// suffices.
	PValue float64
	// DF1 and DF2 are the numerator and denominator degrees of freedom.
	DF1, DF2 int
}

// FTestNested compares a restricted model (rssR, pR parameters) against an
// unrestricted model that nests it (rssU, pU parameters, pU > pR), both
// fitted on n observations:
//
//	F = ((rssR - rssU)/(pU - pR)) / (rssU/(n - pU))
//
// The null hypothesis is that the extra pU-pR parameters contribute
// nothing. This is the comparison Sieve uses to test whether the lagged
// history of metric X improves the prediction of metric Y (§3.3).
func FTestNested(rssR, rssU float64, pR, pU, n int) (*FTestResult, error) {
	if pU <= pR {
		return nil, fmt.Errorf("stats: unrestricted model must add parameters (pR=%d pU=%d)", pR, pU)
	}
	if n <= pU {
		return nil, fmt.Errorf("%w: n=%d pU=%d", ErrTooFewObservations, n, pU)
	}
	if rssR < 0 || rssU < 0 {
		return nil, fmt.Errorf("stats: negative RSS (rssR=%g rssU=%g)", rssR, rssU)
	}
	df1 := pU - pR
	df2 := n - pU

	var f float64
	switch {
	case rssU == 0 && rssR == rssU:
		// Both models fit perfectly; the extra parameters add nothing.
		f = 0
	case rssU == 0:
		f = math.Inf(1)
	default:
		f = ((rssR - rssU) / float64(df1)) / (rssU / float64(df2))
	}
	if f < 0 {
		// Numerical jitter: the unrestricted fit can come out a hair worse.
		f = 0
	}

	var p float64
	if math.IsInf(f, 1) {
		p = 0
	} else {
		p = mathx.FSurvival(f, float64(df1), float64(df2))
	}
	return &FTestResult{F: f, PValue: p, DF1: df1, DF2: df2}, nil
}

// CompareOLS runs FTestNested on two fitted models sharing the same
// response. The restricted model must be nested in the unrestricted one;
// only the parameter counts and RSS values are consulted.
func CompareOLS(restricted, unrestricted *OLS) (*FTestResult, error) {
	if restricted.N != unrestricted.N {
		return nil, fmt.Errorf("stats: models fitted on different sample sizes (%d vs %d)", restricted.N, unrestricted.N)
	}
	return FTestNested(restricted.RSS, unrestricted.RSS, restricted.P, unrestricted.P, restricted.N)
}
