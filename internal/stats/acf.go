package stats

import (
	"fmt"
	"math"

	"github.com/sieve-microservices/sieve/internal/mathx"
	"github.com/sieve-microservices/sieve/internal/timeseries"
)

// ACF returns the sample autocorrelation function of y at lags 0..maxLag
// (inclusive). Lag 0 is always 1 for a non-constant series; a constant
// series returns all zeros beyond lag 0 by convention.
func ACF(y []float64, maxLag int) ([]float64, error) {
	n := len(y)
	if maxLag < 0 {
		return nil, fmt.Errorf("stats: negative maxLag %d", maxLag)
	}
	if maxLag >= n {
		return nil, fmt.Errorf("stats: maxLag %d >= series length %d", maxLag, n)
	}
	out := make([]float64, maxLag+1)
	out[0] = 1
	m := timeseries.Mean(y)
	var denom float64
	for _, v := range y {
		d := v - m
		denom += d * d
	}
	if denom == 0 {
		return out, nil
	}
	for k := 1; k <= maxLag; k++ {
		var num float64
		for t := k; t < n; t++ {
			num += (y[t] - m) * (y[t-k] - m)
		}
		out[k] = num / denom
	}
	return out, nil
}

// LjungBox runs the Ljung-Box portmanteau test for autocorrelation up to
// maxLag. It returns the Q statistic and the chi-squared p-value with
// maxLag degrees of freedom; a small p-value indicates the series is not
// white noise.
func LjungBox(y []float64, maxLag int) (q, pValue float64, err error) {
	acf, err := ACF(y, maxLag)
	if err != nil {
		return 0, 0, err
	}
	n := float64(len(y))
	for k := 1; k <= maxLag; k++ {
		q += acf[k] * acf[k] / (n - float64(k))
	}
	q *= n * (n + 2)
	pValue = mathx.ChiSquareSurvival(q, float64(maxLag))
	if math.IsNaN(pValue) {
		return q, 0, fmt.Errorf("stats: Ljung-Box p-value undefined for maxLag=%d", maxLag)
	}
	return q, pValue, nil
}
