// Package stats implements the regression and hypothesis-testing machinery
// Sieve's dependency extraction is built on: ordinary least squares with
// the diagnostics needed for nested-model F-tests, the Augmented
// Dickey-Fuller unit-root test used to detect non-stationary metrics, and
// autocorrelation utilities.
package stats

import (
	"errors"
	"fmt"
	"math"

	"github.com/sieve-microservices/sieve/internal/mathx"
)

// ErrTooFewObservations is returned when a model has no residual degrees
// of freedom.
var ErrTooFewObservations = errors.New("stats: too few observations for the requested model")

// OLS holds a fitted ordinary-least-squares regression.
type OLS struct {
	// Coef are the fitted coefficients, one per design column.
	Coef []float64
	// Residuals are y - X*Coef.
	Residuals []float64
	// RSS is the residual sum of squares.
	RSS float64
	// TSS is the total sum of squares around the response mean.
	TSS float64
	// N is the number of observations, P the number of design columns.
	N, P int
	// StdErr are the coefficient standard errors (sqrt of the diagonal of
	// sigma^2 (X'X)^-1).
	StdErr []float64
	// sigma2 is the residual variance estimate RSS/(N-P).
	sigma2 float64
}

// Scratch pools the regression workspace reused across FitOLSWith and
// ADFWith calls: QR factorizations, the prediction vector, the normal
// matrix of the standard-error solves, and the ADF design. The zero
// value is ready to use. A Scratch must not be shared between concurrent
// goroutines; fan-outs keep one per worker. Only the workspace is
// pooled — every fitted model's Coef/Residuals/StdErr slices are fresh,
// so results never alias the scratch and stay valid across later calls.
type Scratch struct {
	ls    mathx.LSScratch // QR workspace of the main solve
	lsStd mathx.LSScratch // QR workspace of the p-by-p std-err solves
	pred  []float64
	xt    mathx.Matrix
	xtx   mathx.Matrix
	e     []float64
	col   []float64

	// ADF buffers (see ADFWith).
	resp   []float64
	design mathx.Matrix
}

// FitOLS fits y ~ X by least squares. X must have len(y) rows and at least
// one column, and there must be at least one residual degree of freedom
// (N > P). The returned model includes coefficient standard errors, which
// the ADF test needs for its t-statistic.
func FitOLS(y []float64, x *mathx.Matrix) (*OLS, error) {
	var s Scratch
	return FitOLSWith(y, x, &s)
}

// FitOLSWith is FitOLS with caller-owned scratch: the QR and
// normal-equation intermediates come from s, so a steady-state fit
// performs O(1) small allocations (the returned model and its slices)
// regardless of design size. Results are bit-identical to FitOLS.
func FitOLSWith(y []float64, x *mathx.Matrix, s *Scratch) (*OLS, error) {
	n, p := x.Rows(), x.Cols()
	if n != len(y) {
		return nil, fmt.Errorf("stats: %d observations but %d design rows", len(y), n)
	}
	if p == 0 {
		return nil, errors.New("stats: empty design matrix")
	}
	if n <= p {
		return nil, fmt.Errorf("%w: n=%d p=%d", ErrTooFewObservations, n, p)
	}

	coef, err := mathx.SolveLeastSquaresInto(nil, x, y, &s.ls)
	if err != nil {
		return nil, fmt.Errorf("stats: solving normal equations: %w", err)
	}

	if cap(s.pred) < n {
		s.pred = make([]float64, n)
	}
	pred := x.MulVecInto(s.pred[:n], coef)
	res := make([]float64, n)
	var rss float64
	for i := range y {
		res[i] = y[i] - pred[i]
		rss += res[i] * res[i]
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var tss float64
	for _, v := range y {
		d := v - mean
		tss += d * d
	}

	m := &OLS{
		Coef:      coef,
		Residuals: res,
		RSS:       rss,
		TSS:       tss,
		N:         n,
		P:         p,
		sigma2:    rss / float64(n-p),
	}
	m.StdErr, err = coefStdErr(x, m.sigma2, s)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// R2 returns the coefficient of determination. A response with zero
// variance yields NaN.
func (m *OLS) R2() float64 {
	if m.TSS == 0 {
		return math.NaN()
	}
	return 1 - m.RSS/m.TSS
}

// DegreesOfFreedom returns the residual degrees of freedom N-P.
func (m *OLS) DegreesOfFreedom() int { return m.N - m.P }

// TStat returns the t-statistic Coef[j]/StdErr[j].
func (m *OLS) TStat(j int) float64 {
	if j < 0 || j >= len(m.Coef) {
		return math.NaN()
	}
	if m.StdErr[j] == 0 {
		return math.Inf(sign(m.Coef[j]))
	}
	return m.Coef[j] / m.StdErr[j]
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// coefStdErr computes sqrt(sigma2 * diag((X'X)^-1)) by solving X'X e_j for
// each basis vector with the QR solver. Designs here are small (tens of
// columns), so the O(p^4) cost is irrelevant. The transpose, normal
// matrix, basis vector, and solve workspace all come from the scratch;
// only the returned slice is fresh.
func coefStdErr(x *mathx.Matrix, sigma2 float64, s *Scratch) ([]float64, error) {
	p := x.Cols()
	xt := x.TInto(&s.xt)
	xtx := xt.MulInto(&s.xtx, x)
	if cap(s.e) < p {
		s.e = make([]float64, p)
	}
	e := s.e[:p]
	out := make([]float64, p)
	for j := 0; j < p; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := mathx.SolveLeastSquaresInto(s.col, xtx, e, &s.lsStd)
		if err != nil {
			return nil, fmt.Errorf("stats: X'X singular computing std errors: %w", err)
		}
		s.col = col
		v := col[j] * sigma2
		if v < 0 {
			v = 0
		}
		out[j] = math.Sqrt(v)
	}
	return out, nil
}

// DesignWithIntercept builds a design matrix whose first column is the
// constant 1 followed by the given predictor columns. All columns must
// share the same length.
func DesignWithIntercept(cols ...[]float64) (*mathx.Matrix, error) {
	if len(cols) == 0 {
		return nil, errors.New("stats: no predictor columns")
	}
	n := len(cols[0])
	for i, c := range cols {
		if len(c) != n {
			return nil, fmt.Errorf("stats: column %d has %d rows, want %d", i, len(c), n)
		}
	}
	m := mathx.NewMatrix(n, len(cols)+1)
	for i := 0; i < n; i++ {
		m.Set(i, 0, 1)
		for j, c := range cols {
			m.Set(i, j+1, c[i])
		}
	}
	return m, nil
}

// InterceptOnly builds an n-by-1 design of ones, the restricted model for
// "y is predicted by its mean alone".
func InterceptOnly(n int) *mathx.Matrix {
	m := mathx.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		m.Set(i, 0, 1)
	}
	return m
}
