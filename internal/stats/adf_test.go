package stats

import (
	"math"
	"math/rand"
	"testing"
)

func randomWalk(rng *rand.Rand, n int) []float64 {
	y := make([]float64, n)
	for i := 1; i < n; i++ {
		y[i] = y[i-1] + rng.NormFloat64()
	}
	return y
}

func ar1(rng *rand.Rand, n int, phi float64) []float64 {
	y := make([]float64, n)
	for i := 1; i < n; i++ {
		y[i] = phi*y[i-1] + rng.NormFloat64()
	}
	return y
}

func TestADFRejectsStationaryAR1(t *testing.T) {
	// Strongly mean-reverting series: unit root must be rejected.
	hits := 0
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		y := ar1(rng, 500, 0.3)
		res, err := ADF(y, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stationary {
			hits++
		}
	}
	if hits < 9 {
		t.Errorf("ADF detected stationarity in %d/10 AR(0.3) draws, want >= 9", hits)
	}
}

func TestADFKeepsUnitRoot(t *testing.T) {
	// Random walks: the unit-root null should survive most of the time.
	keeps := 0
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		y := randomWalk(rng, 500)
		res, err := ADF(y, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stationary {
			keeps++
		}
	}
	if keeps < 8 {
		t.Errorf("ADF kept the unit root in %d/10 random walks, want >= 8 (5%% level)", keeps)
	}
}

func TestADFMonotoneCounter(t *testing.T) {
	// A deterministic increasing counter (CPU-seconds style) is the
	// paper's canonical non-stationary metric.
	y := make([]float64, 200)
	for i := range y {
		y[i] = float64(i) * 3
	}
	// Add slight noise to avoid an exactly singular design.
	rng := rand.New(rand.NewSource(5))
	for i := range y {
		y[i] += rng.NormFloat64() * 0.01
	}
	res, err := ADF(y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stationary {
		t.Errorf("monotone counter flagged stationary (stat=%g)", res.Stat)
	}
}

func TestADFConstantSeries(t *testing.T) {
	y := make([]float64, 50)
	for i := range y {
		y[i] = 7
	}
	res, err := ADF(y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary {
		t.Error("constant series must be reported stationary")
	}
	if !math.IsInf(res.Stat, -1) {
		t.Errorf("constant series stat = %g, want -inf", res.Stat)
	}
}

func TestADFTooShort(t *testing.T) {
	if _, err := ADF([]float64{1, 2, 3}, 2); err == nil {
		t.Error("expected error for a too-short series")
	}
}

func TestDefaultADFLags(t *testing.T) {
	tests := []struct {
		n, want int
	}{
		{0, 0},
		{100, 12},
		{50, 10},
		{16, 5},
		{10, 2},
	}
	for _, tt := range tests {
		if got := DefaultADFLags(tt.n); got != tt.want {
			t.Errorf("DefaultADFLags(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestEnsureStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	walk := randomWalk(rng, 400)
	out, differenced := EnsureStationary(walk, 2)
	if !differenced {
		t.Fatal("random walk should be differenced")
	}
	if len(out) != len(walk)-1 {
		t.Fatalf("differenced length = %d, want %d", len(out), len(walk)-1)
	}

	stationary := ar1(rng, 400, 0.2)
	out, differenced = EnsureStationary(stationary, 2)
	if differenced {
		t.Error("stationary AR(1) should pass through unchanged")
	}
	if len(out) != len(stationary) {
		t.Error("pass-through must preserve length")
	}

	short := []float64{1, 2, 3}
	out, differenced = EnsureStationary(short, 2)
	if differenced || len(out) != 3 {
		t.Error("too-short series must be returned unchanged")
	}
}
