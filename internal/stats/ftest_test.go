package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestFTestNestedKnownArithmetic(t *testing.T) {
	// Hand-computed: rssR=100, rssU=80, pR=2, pU=4, n=54 ->
	// F = ((100-80)/2)/(80/50) = 10/1.6 = 6.25, df=(2,50).
	res, err := FTestNested(100, 80, 2, 4, 54)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.F, 6.25, 1e-12) {
		t.Errorf("F = %g, want 6.25", res.F)
	}
	if res.DF1 != 2 || res.DF2 != 50 {
		t.Errorf("df = (%d,%d), want (2,50)", res.DF1, res.DF2)
	}
	// F_{0.95}(2,50) ~ 3.18, so 6.25 must be significant at 5%.
	if res.PValue >= 0.05 || res.PValue <= 0 {
		t.Errorf("p = %g, want small positive", res.PValue)
	}
}

func TestFTestDetectsTruePredictor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 2*x[i] + rng.NormFloat64()
	}
	restricted, err := FitOLS(y, InterceptOnly(n))
	if err != nil {
		t.Fatal(err)
	}
	design, _ := DesignWithIntercept(x)
	unrestricted, err := FitOLS(y, design)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CompareOLS(restricted, unrestricted)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("true predictor p = %g, want tiny", res.PValue)
	}
}

func TestFTestRejectsIrrelevantPredictor(t *testing.T) {
	// With an irrelevant regressor, p-values should rarely be tiny.
	// Use a fixed seed; p must not be below 0.001 for this draw.
	rng := rand.New(rand.NewSource(17))
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	restricted, _ := FitOLS(y, InterceptOnly(n))
	design, _ := DesignWithIntercept(x)
	unrestricted, _ := FitOLS(y, design)
	res, err := CompareOLS(restricted, unrestricted)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Errorf("irrelevant predictor p = %g, suspiciously small", res.PValue)
	}
}

func TestFTestEdgeCases(t *testing.T) {
	if _, err := FTestNested(10, 8, 3, 3, 100); err == nil {
		t.Error("expected error when pU <= pR")
	}
	if _, err := FTestNested(10, 8, 1, 2, 2); err == nil {
		t.Error("expected error when n <= pU")
	}
	if _, err := FTestNested(-1, 8, 1, 2, 100); err == nil {
		t.Error("expected error for negative RSS")
	}
	// Perfect unrestricted fit with imperfect restricted fit: F = +inf, p=0.
	res, err := FTestNested(5, 0, 1, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.F, 1) || res.PValue != 0 {
		t.Errorf("perfect fit: F=%g p=%g, want +inf and 0", res.F, res.PValue)
	}
	// Both perfect: no evidence for the extra parameters.
	res, err = FTestNested(0, 0, 1, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.F != 0 || res.PValue != 1 {
		t.Errorf("both perfect: F=%g p=%g, want 0 and 1", res.F, res.PValue)
	}
	// Numerical jitter: rssU slightly above rssR clamps to F=0.
	res, err = FTestNested(10, 10.000001, 1, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.F != 0 {
		t.Errorf("jitter: F=%g, want 0", res.F)
	}
	if _, err := CompareOLS(&OLS{N: 10, P: 1}, &OLS{N: 20, P: 2}); err == nil {
		t.Error("expected error for mismatched sample sizes")
	}
}
