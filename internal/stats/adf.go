package stats

import (
	"fmt"
	"math"

	"github.com/sieve-microservices/sieve/internal/timeseries"
)

// ADFResult is the outcome of an Augmented Dickey-Fuller unit-root test.
type ADFResult struct {
	// Stat is the Dickey-Fuller t-statistic on the lagged level term.
	Stat float64
	// Lags is the number of augmentation lags used.
	Lags int
	// CriticalValues holds the MacKinnon critical values at 1%, 5% and
	// 10% for the constant-only regression.
	CriticalValues [3]float64
	// Stationary reports whether the unit-root null was rejected at the
	// 5% level (Stat < CriticalValues[1]).
	Stationary bool
}

// macKinnonConstOnly are asymptotic critical values for the ADF test with
// a constant and no trend (MacKinnon 2010), at 1%, 5% and 10%.
var macKinnonConstOnly = [3]float64{-3.43, -2.86, -2.57}

// DefaultADFLags returns the Schwert rule-of-thumb lag order
// floor(12*(n/100)^(1/4)) capped so the regression keeps enough residual
// degrees of freedom.
func DefaultADFLags(n int) int {
	if n <= 0 {
		return 0
	}
	l := int(math.Floor(12 * math.Pow(float64(n)/100, 0.25)))
	if maxL := n/2 - 3; l > maxL {
		l = maxL
	}
	if l < 0 {
		l = 0
	}
	return l
}

// ADF runs the Augmented Dickey-Fuller test with a constant (no trend):
//
//	Δy_t = α + γ·y_{t-1} + Σ_{i=1..lags} δ_i·Δy_{t-i} + ε_t
//
// The null hypothesis is γ = 0 (unit root, non-stationary); it is rejected
// when the t-statistic on γ is below the 5% MacKinnon critical value.
// Sieve first-differences series that fail this test before Granger
// analysis (§3.3). Pass lags < 0 to use DefaultADFLags.
func ADF(y []float64, lags int) (*ADFResult, error) {
	var s Scratch
	return ADFWith(y, lags, &s)
}

// ADFWith is ADF with caller-owned scratch: the lag design is written
// directly into a reusable flat matrix (cell for cell what
// DesignWithIntercept built from intermediate columns) and the
// regression runs through FitOLSWith, so a steady-state test performs
// O(1) allocations. Results are bit-identical to ADF.
func ADFWith(y []float64, lags int, s *Scratch) (*ADFResult, error) {
	n := len(y)
	if lags < 0 {
		lags = DefaultADFLags(n)
	}
	// Need rows = n-1-lags observations and 2+lags parameters with at
	// least a few residual degrees of freedom.
	rows := n - 1 - lags
	params := 2 + lags
	if rows < params+3 {
		return nil, fmt.Errorf("%w: ADF with %d lags needs more than %d samples", ErrTooFewObservations, lags, n)
	}
	if timeseries.IsConstant(y) {
		// A constant series is trivially stationary; the regression would
		// be singular, so answer directly.
		return &ADFResult{
			Stat:           math.Inf(-1),
			Lags:           lags,
			CriticalValues: macKinnonConstOnly,
			Stationary:     true,
		}, nil
	}

	dy := timeseries.Diff(y) // dy[t] = y[t+1]-y[t], length n-1

	// Response Δy_t and design [1, y_{t-1}, Δy_{t-1}..Δy_{t-lags}] for
	// t = lags..n-2 (index into dy), filled row by row.
	if cap(s.resp) < rows {
		s.resp = make([]float64, rows)
	}
	resp := s.resp[:rows]
	design := s.design.Resize(rows, params)
	for r := 0; r < rows; r++ {
		t := lags + r
		resp[r] = dy[t]
		design.Set(r, 0, 1)
		design.Set(r, 1, y[t])
		for i := 1; i <= lags; i++ {
			design.Set(r, 1+i, dy[t-i])
		}
	}

	model, err := FitOLSWith(resp, design, s)
	if err != nil {
		return nil, fmt.Errorf("stats: ADF regression: %w", err)
	}
	// Column 0 is the intercept; column 1 is γ on y_{t-1}.
	stat := model.TStat(1)
	return &ADFResult{
		Stat:           stat,
		Lags:           lags,
		CriticalValues: macKinnonConstOnly,
		Stationary:     stat < macKinnonConstOnly[1],
	}, nil
}

// EnsureStationary returns a series suitable for Granger testing: the
// input itself when the ADF test deems it stationary, otherwise its first
// difference (padding is not applied; the result is one sample shorter).
// The returned bool reports whether differencing was applied. Series too
// short to test are returned unchanged.
func EnsureStationary(y []float64, lags int) ([]float64, bool) {
	var s Scratch
	return EnsureStationaryWith(y, lags, &s)
}

// EnsureStationaryWith is EnsureStationary with caller-owned regression
// scratch.
func EnsureStationaryWith(y []float64, lags int, s *Scratch) ([]float64, bool) {
	res, err := ADFWith(y, lags, s)
	if err != nil || res.Stationary {
		return y, false
	}
	return timeseries.Diff(y), true
}
