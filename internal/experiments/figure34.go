package experiments

import (
	"fmt"
	"strings"

	"github.com/sieve-microservices/sieve/internal/kshape"
)

// Figure3 regenerates Fig. 3: pairwise Adjusted Mutual Information
// between the cluster assignments of independent randomized-load runs,
// per ShareLatex component. The paper reports an average AMI of 0.597
// over its worst-case randomized workloads and concludes the clustering
// is consistent.
func (s *Suite) Figure3() (*Result, error) {
	runs, err := s.shareLatexPipelines()
	if err != nil {
		return nil, err
	}
	if len(runs) < 3 {
		return nil, fmt.Errorf("experiments: figure3 needs >= 3 runs, have %d", len(runs))
	}

	pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	perComponent := map[string][]float64{}
	var sum float64
	var count int

	components := sortedKeys(runs[0].artifact.Reduction)
	for _, comp := range components {
		for _, p := range pairs {
			a := runs[p[0]].artifact.Reduction[comp]
			b := runs[p[1]].artifact.Reduction[comp]
			if a == nil || b == nil {
				continue
			}
			// AMI over the metrics clustered in both runs (the variance
			// filter can differ slightly between workloads).
			var la, lb []int
			for metric, ca := range a.Assignments {
				cb, ok := b.Assignments[metric]
				if !ok {
					continue
				}
				la = append(la, ca)
				lb = append(lb, cb)
			}
			if len(la) < 2 {
				continue
			}
			ami, err := kshape.AMI(la, lb)
			if err != nil {
				return nil, err
			}
			perComponent[comp] = append(perComponent[comp], ami)
			sum += ami
			count++
		}
	}
	if count == 0 {
		return nil, fmt.Errorf("experiments: figure3 computed no AMI scores")
	}
	avg := sum / float64(count)

	var b strings.Builder
	b.WriteString("Figure 3: pairwise AMI of cluster assignments across randomized runs\n")
	b.WriteString("Component        AMI(1,2)  AMI(1,3)  AMI(2,3)\n")
	for _, comp := range components {
		scores := perComponent[comp]
		if len(scores) != 3 {
			continue
		}
		fmt.Fprintf(&b, "%-16s %8.3f  %8.3f  %8.3f\n", comp, scores[0], scores[1], scores[2])
	}
	fmt.Fprintf(&b, "Average AMI: %.3f (paper: 0.597; random assignments score ~0)\n", avg)

	return &Result{
		ID:    "figure3",
		Title: "Clustering consistency across randomized workloads (AMI)",
		Text:  b.String(),
		Values: map[string]float64{
			"average_ami": avg,
		},
	}, nil
}

// Figure4 regenerates Fig. 4: the number of metrics per ShareLatex
// component before and after Sieve's reduction, averaged over the
// randomized runs. The paper reduces 889 metrics to 65 on average.
func (s *Suite) Figure4() (*Result, error) {
	runs, err := s.shareLatexPipelines()
	if err != nil {
		return nil, err
	}

	before := map[string]float64{}
	after := map[string]float64{}
	for _, run := range runs {
		for comp, cr := range run.artifact.Reduction {
			before[comp] += float64(cr.Total)
			after[comp] += float64(len(cr.Clusters))
		}
	}
	n := float64(len(runs))
	var totalBefore, totalAfter float64
	var b strings.Builder
	b.WriteString("Figure 4: average number of metrics before/after Sieve's reduction\n")
	b.WriteString("Component        Before   After   Reduction\n")
	for _, comp := range sortedKeys(before) {
		bf, af := before[comp]/n, after[comp]/n
		totalBefore += bf
		totalAfter += af
		fmt.Fprintf(&b, "%-16s %6.1f  %6.1f   %5.1fx\n", comp, bf, af, safeRatio(bf, af))
	}
	fmt.Fprintf(&b, "%-16s %6.1f  %6.1f   %5.1fx\n", "TOTAL", totalBefore, totalAfter, safeRatio(totalBefore, totalAfter))
	fmt.Fprintf(&b, "(paper: 889 -> 65, 13.7x, averaged over five runs)\n")

	return &Result{
		ID:    "figure4",
		Title: "Metric reduction per component",
		Text:  b.String(),
		Values: map[string]float64{
			"total_before":     totalBefore,
			"total_after":      totalAfter,
			"reduction_factor": safeRatio(totalBefore, totalAfter),
		},
	}, nil
}

func safeRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
