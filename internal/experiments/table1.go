package experiments

import (
	"fmt"
	"strings"

	"github.com/sieve-microservices/sieve/internal/app/openstack"
	"github.com/sieve-microservices/sieve/internal/app/sharelatex"
)

// Table1 regenerates Table 1: the metric populations exposed by the
// evaluated applications. The paper reports 889 metrics for ShareLatex
// and 17,608 for OpenStack's full API surface (our simulator reproduces
// the 508-metric deployment slice of Table 5; see EXPERIMENTS.md).
func (s *Suite) Table1() (*Result, error) {
	slApp, err := sharelatex.New(s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Warm both fault phases so every lazily-created series registers.
	warmApp(slApp, 20, 500)
	slCount := 0
	for _, reg := range slApp.Registries() {
		slCount += reg.Len()
	}

	osCorrect, err := openstack.New(s.cfg.Seed, false)
	if err != nil {
		return nil, err
	}
	warmApp(osCorrect, 20, 300)
	osFaulty, err := openstack.New(s.cfg.Seed, true)
	if err != nil {
		return nil, err
	}
	warmApp(osFaulty, 20, 300)

	// Union across versions: a metric counts if either version exports it.
	union := map[string]bool{}
	for _, reg := range osCorrect.Registries() {
		for _, n := range reg.Names() {
			union[reg.Component()+"/"+n] = true
		}
	}
	for _, reg := range osFaulty.Registries() {
		for _, n := range reg.Names() {
			union[reg.Component()+"/"+n] = true
		}
	}
	osCount := len(union)

	var b strings.Builder
	b.WriteString("Table 1: Metrics exposed by microservices-based applications\n")
	b.WriteString("Application      Number of metrics (paper)   Number of metrics (this repro)\n")
	fmt.Fprintf(&b, "ShareLatex       889                         %d\n", slCount)
	fmt.Fprintf(&b, "OpenStack        17,608 (full API surface)   %d (deployment slice, Table 5)\n", osCount)

	return &Result{
		ID:    "table1",
		Title: "Metrics exposed by microservices-based applications",
		Text:  b.String(),
		Values: map[string]float64{
			"sharelatex_metrics": float64(slCount),
			"openstack_metrics":  float64(osCount),
		},
	}, nil
}
