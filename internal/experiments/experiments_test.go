package experiments

import (
	"strings"
	"testing"
)

// smokeConfig is even smaller than QuickConfig: just enough load for the
// pipelines to find structure.
func smokeConfig() Config {
	return Config{
		ShareLatexTicks: 150,
		ShareLatexRuns:  3,
		OpenStackTicks:  150,
		AutoscaleTicks:  600,
		HTTPRequests:    500,
		Seed:            42,
	}
}

// TestAllExperimentsSmoke regenerates every artifact end to end on the
// smallest viable configuration and sanity-checks the headline values.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite (slow)")
	}
	suite := NewSuite(smokeConfig())
	results, err := suite.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("got %d results, want %d", len(results), len(IDs()))
	}

	byID := map[string]*Result{}
	for _, r := range results {
		if r.Text == "" || r.Title == "" {
			t.Errorf("%s: empty output", r.ID)
		}
		byID[r.ID] = r
	}

	// Table 1: metric populations near the paper's.
	if v := byID["table1"].Values["sharelatex_metrics"]; v < 800 || v > 980 {
		t.Errorf("table1 sharelatex metrics = %g, want ~889", v)
	}
	if v := byID["table1"].Values["openstack_metrics"]; v != 508 {
		t.Errorf("table1 openstack metrics = %g, want 508", v)
	}

	// Figure 3: consistent clustering (clearly above random).
	if v := byID["figure3"].Values["average_ami"]; v < 0.3 {
		t.Errorf("figure3 average AMI = %g, want clearly above random", v)
	}

	// Figure 4: an order-of-magnitude style reduction.
	if v := byID["figure4"].Values["reduction_factor"]; v < 4 {
		t.Errorf("figure4 reduction factor = %g, want >= 4", v)
	}

	// Figure 5: wall-clock overheads are machine-load dependent at smoke
	// size, so only sanity-check them (the paper-scale run in
	// EXPERIMENTS.md carries the real numbers).
	if v := byID["figure5"].Values["native_seconds"]; v <= 0 {
		t.Errorf("figure5 native time = %g, want positive", v)
	}
	if v := byID["figure5"].Values["sysdig_overhead_pct"]; v < -30 || v > 500 {
		t.Errorf("figure5 sysdig overhead = %g%%, implausible", v)
	}

	// Table 3: every resource dimension must shrink substantially.
	for _, k := range []string{"cpu_reduction_pct", "db_reduction_pct", "net_in_reduction_pct", "net_out_reduction_pct"} {
		if v := byID["table3"].Values[k]; v < 25 {
			t.Errorf("table3 %s = %g%%, want substantial reduction", k, v)
		}
	}

	// Figure 6: a non-trivial dependency graph with a hub metric.
	if v := byID["figure6"].Values["edges"]; v < 5 {
		t.Errorf("figure6 edges = %g, want a connected graph", v)
	}

	// Table 4: both replays completed with sane outputs.
	if v := byID["table4"].Values["sieve_rule_violations"]; v < 0 {
		t.Errorf("table4 sieve violations = %g", v)
	}

	// Table 5: the Table 5 metric populations reproduce exactly.
	if v := byID["table5"].Values["total_metrics"]; v != 508 {
		t.Errorf("table5 total = %g, want 508", v)
	}
	if v := byID["table5"].Values["total_new"]; v != 22 {
		t.Errorf("table5 new = %g, want 22", v)
	}
	if v := byID["table5"].Values["nova_api_novelty_pos"]; v != 1 {
		t.Errorf("table5 nova-api position = %g, want 1", v)
	}
	if v := byID["table5"].Values["neutron_final_rank"]; v < 1 || v > 5 {
		t.Errorf("table5 neutron-server final rank = %g, want top-5", v)
	}

	// Figure 7: novel metrics concentrate in a minority of clusters, and
	// the threshold sweep shrinks the inspection surface monotonically.
	f7 := byID["figure7"].Values
	if f7["clusters_novel"] <= 0 || f7["clusters_novel"] >= f7["clusters_total"] {
		t.Errorf("figure7 novel clusters = %g of %g", f7["clusters_novel"], f7["clusters_total"])
	}
	if f7["metrics_t00"] < f7["metrics_t70"] {
		t.Errorf("figure7 sweep not shrinking: %g at t=0 vs %g at t=0.7", f7["metrics_t00"], f7["metrics_t70"])
	}

	// Figure 8: the headline root-cause metrics surface among suspects.
	if v := byID["figure8"].Values["headline_metric_suspects"]; v < 1 {
		t.Errorf("figure8 headline suspects = %g, want >= 1", v)
	}
}

func TestByIDUnknown(t *testing.T) {
	suite := NewSuite(smokeConfig())
	if _, err := suite.ByID("table9"); err == nil {
		t.Error("expected error for unknown id")
	}
	if !strings.Contains(strings.Join(IDs(), ","), "figure6") {
		t.Error("IDs missing figure6")
	}
}
